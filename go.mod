module fhdnn

go 1.22
