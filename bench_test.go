// Benchmarks that regenerate every table and figure of the FHDnn paper's
// evaluation section. Each benchmark runs the corresponding experiment
// driver at the Small scale and reports its headline numbers as custom
// metrics, so `go test -bench=. -benchmem` both times the harness and
// re-derives the paper's comparisons. Set FHDNN_SCALE=medium for the
// heavier configuration.
package fhdnn_test

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"os"
	"testing"

	"fhdnn/internal/compress"
	"fhdnn/internal/experiments"
	"fhdnn/internal/flnet"
	"fhdnn/internal/hdc"
)

func benchScale() experiments.Scale {
	switch os.Getenv("FHDNN_SCALE") {
	case "medium":
		return experiments.Medium()
	case "paper":
		return experiments.Paper()
	}
	s := experiments.Small()
	// keep each bench iteration well under a second where possible
	s.TrainPerClass = 20
	s.TestPerClass = 8
	s.Rounds = 8
	return s
}

// BenchmarkFig4NoiseRobustness regenerates Figure 4: Gaussian noise added
// in HD space is suppressed by the linear decode.
func BenchmarkFig4NoiseRobustness(b *testing.B) {
	s := benchScale()
	var suppression float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig4NoiseRobustness(s, []float64{5, 10, 20})
		suppression = rows[0].Suppression
	}
	b.ReportMetric(suppression, "suppression@5dB")
}

// BenchmarkFig5PartialInfo regenerates Figure 5: similarity retention and
// accuracy under hypervector dimension removal.
func BenchmarkFig5PartialInfo(b *testing.B) {
	s := benchScale()
	var acc80 float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig5PartialInfo(s, []float64{0, 0.8})
		acc80 = rows[1].Accuracy
	}
	b.ReportMetric(acc80, "acc@80%removed")
}

// BenchmarkFig6Hyperparams regenerates Figure 6: the hyperparameter sweep
// (reduced grid) with mean curves and spread.
func BenchmarkFig6Hyperparams(b *testing.B) {
	s := benchScale()
	s.Rounds = 6
	grid := experiments.HyperGrid{E: []int{1, 2}, B: []int{10}, C: []float64{0.2, 0.5}}
	var hdRounds, cnnRounds float64
	for i := 0; i < b.N; i++ {
		results := experiments.Fig6Hyperparams(s, grid, 0)
		for _, r := range results {
			if r.Distribution != "iid" {
				continue
			}
			if r.Model == "FHDnn" {
				hdRounds = float64(r.RoundsToTarget)
			} else {
				cnnRounds = float64(r.RoundsToTarget)
			}
		}
	}
	b.ReportMetric(hdRounds, "FHDnn-rounds-to-target")
	b.ReportMetric(cnnRounds, "CNN-rounds-to-target")
}

// BenchmarkFig7Accuracy regenerates Figure 7 per dataset: accuracy of
// FHDnn vs the CNN baseline over communication rounds.
func BenchmarkFig7Accuracy(b *testing.B) {
	for _, name := range experiments.DatasetNames {
		b.Run(name, func(b *testing.B) {
			s := benchScale()
			var hd, cnn float64
			for i := 0; i < b.N; i++ {
				res := experiments.Fig7Accuracy(s, []string{name})
				hd = res[0].FHDnn.FinalAccuracy()
				cnn = res[0].ResNet.FinalAccuracy()
			}
			b.ReportMetric(hd, "FHDnn-acc")
			b.ReportMetric(cnn, "CNN-acc")
		})
	}
}

// BenchmarkTable1EdgeDevices regenerates Table 1 from the calibrated device
// models.
func BenchmarkTable1EdgeDevices(b *testing.B) {
	var rpiFHD, rpiCNN float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1EdgeDevices()
		for _, r := range rows {
			if r.Device == "Raspberry Pi" {
				rpiFHD, rpiCNN = r.FHDnnSec, r.ResNetSec
			}
		}
	}
	b.ReportMetric(rpiFHD, "RPi-FHDnn-s")
	b.ReportMetric(rpiCNN, "RPi-ResNet-s")
}

// BenchmarkFig8Unreliable regenerates Figure 8, one sub-benchmark per error
// model (packet loss / Gaussian noise / bit errors), IID split.
func BenchmarkFig8Unreliable(b *testing.B) {
	cases := []struct {
		name   string
		levels experiments.Fig8Levels
	}{
		{"packetloss", experiments.Fig8Levels{PacketLoss: []float64{0.2}}},
		{"gaussian", experiments.Fig8Levels{SNRdB: []float64{10}}},
		{"biterrors", experiments.Fig8Levels{BER: []float64{1e-4}}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			s := benchScale()
			s.Rounds = 6
			var hd, cnn float64
			for i := 0; i < b.N; i++ {
				rows := experiments.Fig8Unreliable(s, c.levels, []string{"iid"})
				hd = rows[0].FHDnnAcc
				cnn = rows[0].CNNAcc
			}
			b.ReportMetric(hd, "FHDnn-acc")
			b.ReportMetric(cnn, "CNN-acc")
		})
	}
}

// BenchmarkComm regenerates the Sec. 4.4 communication-efficiency numbers
// at the paper's link constants.
func BenchmarkComm(b *testing.B) {
	var dataRatio, timeRatio float64
	for i := 0; i < b.N; i++ {
		rows := experiments.CommEfficiency(25, 75, 100)
		dataRatio = float64(rows[1].DataBytes) / float64(rows[0].DataBytes)
		timeRatio = float64(rows[1].ClockTime) / float64(rows[0].ClockTime)
	}
	b.ReportMetric(dataRatio, "data-ratio(x)")
	b.ReportMetric(timeRatio, "clocktime-ratio(x)")
}

// BenchmarkEq4SNRGain regenerates the Eq. 4 verification: bundling N noisy
// client models improves SNR by 10*log10(N) dB.
func BenchmarkEq4SNRGain(b *testing.B) {
	s := benchScale()
	var gain16 float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Eq4NoisySNRGain(s, []int{1, 16}, 10)
		gain16 = rows[1].GainDB
	}
	b.ReportMetric(gain16, "gain@N=16(dB)")
}

// BenchmarkConvergence regenerates the Sec. 3.6 convergence diagnostics.
func BenchmarkConvergence(b *testing.B) {
	s := benchScale()
	var hdPlateau float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Convergence(s, 0.1)
		hdPlateau = float64(rows[0].RoundsToPlateau)
	}
	b.ReportMetric(hdPlateau, "FHDnn-plateau-round")
}

// BenchmarkCompressionBaselines regenerates the compressed-CNN vs FHDnn
// comparison.
func BenchmarkCompressionBaselines(b *testing.B) {
	s := benchScale()
	s.Rounds = 5
	var fhd, fp16 float64
	for i := 0; i < b.N; i++ {
		rows := experiments.CompressionComparison(s)
		for _, r := range rows {
			switch r.Strategy {
			case "FHDnn":
				fhd = r.Accuracy
			case "CNN float16":
				fp16 = r.Accuracy
			}
		}
	}
	b.ReportMetric(fhd, "FHDnn-acc")
	b.ReportMetric(fp16, "CNN-fp16-acc")
}

// BenchmarkAblationDim sweeps hypervector dimensionality (DESIGN.md Sec 4).
func BenchmarkAblationDim(b *testing.B) {
	s := benchScale()
	s.Rounds = 5
	var accHigh float64
	for i := 0; i < b.N; i++ {
		rows := experiments.AblationDim(s, []int{512, 4096})
		accHigh = rows[1].Accuracy
	}
	b.ReportMetric(accHigh, "acc@d=4096")
}

// BenchmarkAblationSign compares bipolar vs raw random-projection encoding.
func BenchmarkAblationSign(b *testing.B) {
	s := benchScale()
	s.Rounds = 5
	var sign, raw float64
	for i := 0; i < b.N; i++ {
		rows := experiments.AblationSign(s)
		sign, raw = rows[0].Accuracy, rows[1].Accuracy
	}
	b.ReportMetric(sign, "acc-sign")
	b.ReportMetric(raw, "acc-raw")
}

// BenchmarkAblationQuantizer isolates the Sec. 3.5.2 quantizer under bit
// errors.
func BenchmarkAblationQuantizer(b *testing.B) {
	s := benchScale()
	s.Rounds = 5
	var with, without float64
	for i := 0; i < b.N; i++ {
		rows := experiments.AblationQuantizer(s, 1e-3)
		with, without = rows[0].Accuracy, rows[1].Accuracy
	}
	b.ReportMetric(with, "acc-quantized")
	b.ReportMetric(without, "acc-float32")
}

// BenchmarkAblationRefine sweeps local refinement epochs.
func BenchmarkAblationRefine(b *testing.B) {
	s := benchScale()
	s.Rounds = 5
	var acc float64
	for i := 0; i < b.N; i++ {
		rows := experiments.AblationRefine(s, []int{1, 4})
		acc = rows[1].Accuracy
	}
	b.ReportMetric(acc, "acc@E=4")
}

// BenchmarkWireBytesPerRound measures the actual uplink bytes one
// federated round costs on the live flnet wire protocol, per negotiated
// codec: two clients push a 10x2048 HD model through real HTTP each
// iteration and the server's own /v1/stats byte counter is divided by the
// number of completed rounds. "legacy" is the unenveloped raw-model
// serialization old clients send; "raw" is the same float32 payload
// inside the self-describing envelope. The int8 row is the paper's
// headline: roughly 4x fewer wire bytes per round than raw float32.
func BenchmarkWireBytesPerRound(b *testing.B) {
	const k, d, clientsPerRound = 10, 2048, 2
	cases := []struct {
		name  string
		codec compress.Codec // nil = legacy raw-model format
	}{
		{"legacy", nil},
		{"raw", compress.Raw{}},
		{"float16", compress.Float16{}},
		{"int8", compress.Int8{}},
		{"topk", compress.TopK{Frac: 0.1}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			srv, err := flnet.NewServer(flnet.ServerConfig{
				NumClasses: k, Dim: d, MinUpdates: clientsPerRound})
			if err != nil {
				b.Fatal(err)
			}
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()
			ctx := context.Background()
			clients := make([]*flnet.Client, clientsPerRound)
			for i := range clients {
				clients[i] = &flnet.Client{
					BaseURL: ts.URL, ID: fmt.Sprintf("bench-%d", i), Codec: c.codec}
				// observe the codec advertisement before the timed loop
				if _, err := clients[i].Round(ctx); err != nil {
					b.Fatal(err)
				}
			}
			m := hdc.NewModel(k, d)
			rng := rand.New(rand.NewSource(1))
			flat := m.Flat()
			for i := range flat {
				flat[i] = float32(rng.NormFloat64())
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				round := srv.Round()
				for _, cl := range clients {
					if err := cl.PushUpdate(ctx, round, m); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.StopTimer()
			st := srv.Stats()
			if st.Round != b.N+1 {
				b.Fatalf("completed %d rounds, want %d", st.Round-1, b.N)
			}
			b.ReportMetric(float64(st.BytesReceived)/float64(b.N), "wire-bytes/round")
		})
	}
}

// BenchmarkAblationExtractor compares random-conv and SimCLR-pretrained
// frozen extractors.
func BenchmarkAblationExtractor(b *testing.B) {
	s := benchScale()
	s.Rounds = 4
	var rnd, sim float64
	for i := 0; i < b.N; i++ {
		rows := experiments.AblationExtractor(s, 3)
		rnd, sim = rows[0].Accuracy, rows[1].Accuracy
	}
	b.ReportMetric(rnd, "acc-randconv")
	b.ReportMetric(sim, "acc-simclr")
}
