// Package fhdnn is a from-scratch Go reproduction of "FHDnn: Communication
// Efficient and Robust Federated Learning for AIoT Networks" (DAC 2022).
//
// The implementation lives under internal/: tensor and nn provide the
// numeric and neural-network substrate, hdc the hyperdimensional computing
// library, fl the federated learning framework, channel/link/device the
// network and edge-device models, core the composed FHDnn system, and
// experiments the per-table/per-figure drivers. See DESIGN.md for the
// system inventory and EXPERIMENTS.md for paper-vs-measured results.
//
// The benchmarks in bench_test.go regenerate every table and figure of the
// paper's evaluation:
//
//	go test -bench=. -benchmem
package fhdnn
