package tensor

// Blocked, register-tiled GEMM kernels. All three layouts (plain, A^T, B^T)
// share the same structure: output rows are distributed over the shared
// worker pool in contiguous blocks, and the k-reduction for every output
// element is a single serial accumulator chain in ascending k order. That
// last property is the determinism guarantee: the chain is the same whether
// an element is computed by an unrolled kernel, an edge loop, or a different
// worker, so results are bit-identical to the naive triple loop for every
// worker count and every (m, n, k) shape. Multiplies are written as
// float32(a*b) — the explicit conversion forces IEEE rounding of the
// product, so implementations that would otherwise fuse multiply-add (e.g.
// arm64 FMA) produce the same bits as those that do not.
//
// Two gc-specific constraints shape the code: 16 float32 accumulators spill
// on amd64 (16 XMM registers shared with operand streams), so tiles keep at
// most 8 accumulators live; and per-element slice indexing emits a bounds
// check per load, so all 4-wide windows go through (*[4]float32) array
// pointers — one check per window, none per element.

const (
	// parallelCutoff is the approximate multiply-add count below which
	// dispatching to the worker pool costs more than it saves.
	parallelCutoff = 32 * 1024
)

// gemm computes C = A*B (or C += A*B when accum) for row-major flat slices:
// A is m x k, B is k x n, C is m x n.
func gemm(c, a, b []float32, m, k, n int, accum bool) {
	if Workers() <= 1 || m < 2 || m*n*k < parallelCutoff {
		gemmRows(c, a, b, 0, m, k, n, accum)
		return
	}
	ParallelFor(m, func(lo, hi int) {
		gemmRows(c, a, b, lo, hi, k, n, accum)
	})
}

// gemmRows computes rows [rlo, rhi) of C = A*B. Each output row is built by
// streaming four rows of B at a time against four A coefficients; four
// output elements are in flight per step, so their (independent) accumulator
// chains hide the float-add latency that would serialize a single chain.
// Per element the adds still happen in ascending k order.
func gemmRows(c, a, b []float32, rlo, rhi, k, n int, accum bool) {
	for i := rlo; i < rhi; i++ {
		arow := a[i*k : i*k+k]
		crow := c[i*n : i*n+n]
		if !accum {
			for j := range crow {
				crow[j] = 0
			}
		}
		n4 := n &^ 3
		kk := 0
		for ; kk+4 <= k; kk += 4 {
			av := (*[4]float32)(arow[kk:])
			av0, av1, av2, av3 := av[0], av[1], av[2], av[3]
			b0 := b[(kk+0)*n : (kk+0)*n+n]
			b1 := b[(kk+1)*n : (kk+1)*n+n]
			b2 := b[(kk+2)*n : (kk+2)*n+n]
			b3 := b[(kk+3)*n : (kk+3)*n+n]
			if n4 > 0 {
				saxpyQuad(crow, b0, b1, b2, b3, av, n4)
			}
			for j := n4; j < n; j++ {
				s := crow[j]
				s += float32(av0 * b0[j])
				s += float32(av1 * b1[j])
				s += float32(av2 * b2[j])
				s += float32(av3 * b3[j])
				crow[j] = s
			}
		}
		for ; kk < k; kk++ {
			av := arow[kk]
			brow := b[kk*n : kk*n+n]
			for j, bv := range brow {
				crow[j] += float32(av * bv)
			}
		}
	}
}

// gemmTransB computes C = A*B^T (or += when accum): A is m x k, B is n x k
// (row j of B is column j of B^T), C is m x n. It backs Linear and Conv2D
// forward passes, input gradients, and the contrastive loss.
//
// Above a size cutoff, B is transposed into a pooled k x n scratch tile
// (see pack.go) and the multiply runs through the AXPY-layout kernel and
// its saxpyQuad microkernel. Both paths reduce every output element by
// the same single ascending-k accumulator chain, so they are bit-identical
// to each other, to the naive triple loop, and across worker counts; the
// cutoff is purely a throughput knob.
func gemmTransB(c, a, b []float32, m, k, n int, accum bool) {
	if m >= transBPackMinRows && m*n*k >= transBPackCutoff {
		pb := getPackBuf(k * n)
		bt := pb.data[:k*n]
		guardNoAlias("gemmTransB pack scratch", bt, a, b)
		guardNoAlias("gemmTransB pack scratch", bt, c, nil)
		packTransB(bt, b, k, n)
		if Workers() <= 1 || m < 2 || m*n*k < parallelCutoff {
			gemmRows(c, a, bt, 0, m, k, n, accum)
		} else {
			ParallelFor(m, func(lo, hi int) {
				gemmRows(c, a, bt, lo, hi, k, n, accum)
			})
		}
		putPackBuf(pb)
		return
	}
	if Workers() <= 1 || m < 2 || m*n*k < parallelCutoff {
		gemmTransBRows(c, a, b, 0, m, k, n, accum)
		return
	}
	ParallelFor(m, func(lo, hi int) {
		gemmTransBRows(c, a, b, lo, hi, k, n, accum)
	})
}

// gemmTransBRows computes rows [rlo, rhi) of C = A*B^T with 2x4 register
// tiles (eight independent accumulator chains) and the k loop unrolled four
// wide through array pointers. It remains the small-shape path: below
// transBPackCutoff the pack + pool round trip of the tiled path costs more
// than it saves.
func gemmTransBRows(c, a, b []float32, rlo, rhi, k, n int, accum bool) {
	i := rlo
	for ; i+2 <= rhi; i += 2 {
		a0 := a[(i+0)*k : (i+0)*k+k]
		a1 := a[(i+1)*k : (i+1)*k+k]
		c0 := c[(i+0)*n : (i+0)*n+n]
		c1 := c[(i+1)*n : (i+1)*n+n]
		j := 0
		for ; j+4 <= n; j += 4 {
			b0 := b[(j+0)*k : (j+0)*k+k]
			b1 := b[(j+1)*k : (j+1)*k+k]
			b2 := b[(j+2)*k : (j+2)*k+k]
			b3 := b[(j+3)*k : (j+3)*k+k]
			var s00, s01, s02, s03 float32
			var s10, s11, s12, s13 float32
			if accum {
				cw0 := (*[4]float32)(c0[j:])
				cw1 := (*[4]float32)(c1[j:])
				s00, s01, s02, s03 = cw0[0], cw0[1], cw0[2], cw0[3]
				s10, s11, s12, s13 = cw1[0], cw1[1], cw1[2], cw1[3]
			}
			kk := 0
			for ; kk+4 <= k; kk += 4 {
				pa0 := (*[4]float32)(a0[kk:])
				pa1 := (*[4]float32)(a1[kk:])
				pb0 := (*[4]float32)(b0[kk:])
				pb1 := (*[4]float32)(b1[kk:])
				pb2 := (*[4]float32)(b2[kk:])
				pb3 := (*[4]float32)(b3[kk:])
				for t := 0; t < 4; t++ {
					bv0, bv1, bv2, bv3 := pb0[t], pb1[t], pb2[t], pb3[t]
					av := pa0[t]
					s00 += float32(av * bv0)
					s01 += float32(av * bv1)
					s02 += float32(av * bv2)
					s03 += float32(av * bv3)
					av = pa1[t]
					s10 += float32(av * bv0)
					s11 += float32(av * bv1)
					s12 += float32(av * bv2)
					s13 += float32(av * bv3)
				}
			}
			for ; kk < k; kk++ {
				bv0, bv1, bv2, bv3 := b0[kk], b1[kk], b2[kk], b3[kk]
				av := a0[kk]
				s00 += float32(av * bv0)
				s01 += float32(av * bv1)
				s02 += float32(av * bv2)
				s03 += float32(av * bv3)
				av = a1[kk]
				s10 += float32(av * bv0)
				s11 += float32(av * bv1)
				s12 += float32(av * bv2)
				s13 += float32(av * bv3)
			}
			cw0 := (*[4]float32)(c0[j:])
			cw1 := (*[4]float32)(c1[j:])
			cw0[0], cw0[1], cw0[2], cw0[3] = s00, s01, s02, s03
			cw1[0], cw1[1], cw1[2], cw1[3] = s10, s11, s12, s13
		}
		for ; j < n; j++ {
			brow := b[j*k : j*k+k]
			var s0, s1 float32
			if accum {
				s0, s1 = c0[j], c1[j]
			}
			for kk, bv := range brow {
				s0 += float32(a0[kk] * bv)
				s1 += float32(a1[kk] * bv)
			}
			c0[j], c1[j] = s0, s1
		}
	}
	for ; i < rhi; i++ {
		arow := a[i*k : i*k+k]
		crow := c[i*n : i*n+n]
		j := 0
		for ; j+4 <= n; j += 4 {
			b0 := b[(j+0)*k : (j+0)*k+k]
			b1 := b[(j+1)*k : (j+1)*k+k]
			b2 := b[(j+2)*k : (j+2)*k+k]
			b3 := b[(j+3)*k : (j+3)*k+k]
			var s0, s1, s2, s3 float32
			if accum {
				cw := (*[4]float32)(crow[j:])
				s0, s1, s2, s3 = cw[0], cw[1], cw[2], cw[3]
			}
			for kk, av := range arow {
				s0 += float32(av * b0[kk])
				s1 += float32(av * b1[kk])
				s2 += float32(av * b2[kk])
				s3 += float32(av * b3[kk])
			}
			cw := (*[4]float32)(crow[j:])
			cw[0], cw[1], cw[2], cw[3] = s0, s1, s2, s3
		}
		for ; j < n; j++ {
			brow := b[j*k : j*k+k]
			var s float32
			if accum {
				s = crow[j]
			}
			for kk, bv := range brow {
				s += float32(arow[kk] * bv)
			}
			crow[j] = s
		}
	}
}

// gemmTransA computes C = A^T*B (or += when accum): A is k x m, B is k x n,
// C is m x n. Used for weight gradients (grad^T * input). Both operands are
// read down their columns with row stride, so the kernel walks k in the
// outer tile loop and keeps eight accumulators live.
func gemmTransA(c, a, b []float32, m, k, n int, accum bool) {
	if Workers() <= 1 || m < 2 || m*n*k < parallelCutoff {
		gemmTransARows(c, a, b, 0, m, m, k, n, accum)
		return
	}
	ParallelFor(m, func(lo, hi int) {
		gemmTransARows(c, a, b, lo, hi, m, k, n, accum)
	})
}

func gemmTransARows(c, a, b []float32, rlo, rhi, m, k, n int, accum bool) {
	i := rlo
	for ; i+2 <= rhi; i += 2 {
		c0 := c[(i+0)*n : (i+0)*n+n]
		c1 := c[(i+1)*n : (i+1)*n+n]
		j := 0
		for ; j+4 <= n; j += 4 {
			var s00, s01, s02, s03 float32
			var s10, s11, s12, s13 float32
			if accum {
				cw0 := (*[4]float32)(c0[j:])
				cw1 := (*[4]float32)(c1[j:])
				s00, s01, s02, s03 = cw0[0], cw0[1], cw0[2], cw0[3]
				s10, s11, s12, s13 = cw1[0], cw1[1], cw1[2], cw1[3]
			}
			ai, bi := i, j
			for kk := 0; kk < k; kk++ {
				apair := (*[2]float32)(a[ai:])
				brow := (*[4]float32)(b[bi:])
				bv0, bv1, bv2, bv3 := brow[0], brow[1], brow[2], brow[3]
				av := apair[0]
				s00 += float32(av * bv0)
				s01 += float32(av * bv1)
				s02 += float32(av * bv2)
				s03 += float32(av * bv3)
				av = apair[1]
				s10 += float32(av * bv0)
				s11 += float32(av * bv1)
				s12 += float32(av * bv2)
				s13 += float32(av * bv3)
				ai += m
				bi += n
			}
			cw0 := (*[4]float32)(c0[j:])
			cw1 := (*[4]float32)(c1[j:])
			cw0[0], cw0[1], cw0[2], cw0[3] = s00, s01, s02, s03
			cw1[0], cw1[1], cw1[2], cw1[3] = s10, s11, s12, s13
		}
		for ; j < n; j++ {
			var s0, s1 float32
			if accum {
				s0, s1 = c0[j], c1[j]
			}
			ai, bi := i, j
			for kk := 0; kk < k; kk++ {
				bv := b[bi]
				s0 += float32(a[ai+0] * bv)
				s1 += float32(a[ai+1] * bv)
				ai += m
				bi += n
			}
			c0[j], c1[j] = s0, s1
		}
	}
	for ; i < rhi; i++ {
		crow := c[i*n : i*n+n]
		j := 0
		for ; j+4 <= n; j += 4 {
			var s0, s1, s2, s3 float32
			if accum {
				cw := (*[4]float32)(crow[j:])
				s0, s1, s2, s3 = cw[0], cw[1], cw[2], cw[3]
			}
			ai, bi := i, j
			for kk := 0; kk < k; kk++ {
				brow := (*[4]float32)(b[bi:])
				av := a[ai]
				s0 += float32(av * brow[0])
				s1 += float32(av * brow[1])
				s2 += float32(av * brow[2])
				s3 += float32(av * brow[3])
				ai += m
				bi += n
			}
			cw := (*[4]float32)(crow[j:])
			cw[0], cw[1], cw[2], cw[3] = s0, s1, s2, s3
		}
		for ; j < n; j++ {
			var s float32
			if accum {
				s = crow[j]
			}
			ai, bi := i, j
			for kk := 0; kk < k; kk++ {
				s += float32(a[ai] * b[bi])
				ai += m
				bi += n
			}
			crow[j] = s
		}
	}
}

// matVecRows computes y[i] = dot(A[i,:], x) for rows [lo, hi). Four rows are
// processed per pass over x; each row keeps its own single accumulator chain.
func matVecRows(y, a, x []float32, lo, hi, n int) {
	i := lo
	for ; i+4 <= hi; i += 4 {
		r0 := a[(i+0)*n : (i+0)*n+n]
		r1 := a[(i+1)*n : (i+1)*n+n]
		r2 := a[(i+2)*n : (i+2)*n+n]
		r3 := a[(i+3)*n : (i+3)*n+n]
		var s0, s1, s2, s3 float32
		j := 0
		for ; j+4 <= n; j += 4 {
			px := (*[4]float32)(x[j:])
			p0 := (*[4]float32)(r0[j:])
			p1 := (*[4]float32)(r1[j:])
			p2 := (*[4]float32)(r2[j:])
			p3 := (*[4]float32)(r3[j:])
			for t := 0; t < 4; t++ {
				xv := px[t]
				s0 += float32(p0[t] * xv)
				s1 += float32(p1[t] * xv)
				s2 += float32(p2[t] * xv)
				s3 += float32(p3[t] * xv)
			}
		}
		for ; j < n; j++ {
			xv := x[j]
			s0 += float32(r0[j] * xv)
			s1 += float32(r1[j] * xv)
			s2 += float32(r2[j] * xv)
			s3 += float32(r3[j] * xv)
		}
		y[i], y[i+1], y[i+2], y[i+3] = s0, s1, s2, s3
	}
	for ; i < hi; i++ {
		row := a[i*n : i*n+n]
		var s float32
		for j, xv := range x {
			s += float32(row[j] * xv)
		}
		y[i] = s
	}
}

// matVecTransCols computes y[j] = sum_i x[i]*A[i,j] for columns [jlo, jhi).
// The i-reduction per column is serial and ascending, so column ownership
// can move between workers without changing bits.
func matVecTransCols(y, a, x []float32, jlo, jhi, n int) {
	for j := jlo; j < jhi; j++ {
		y[j] = 0
	}
	for i, xv := range x {
		if xv == 0 {
			continue
		}
		row := a[i*n : i*n+n]
		j := jlo
		for ; j+4 <= jhi; j += 4 {
			yw := (*[4]float32)(y[j:])
			rw := (*[4]float32)(row[j:])
			yw[0] += float32(xv * rw[0])
			yw[1] += float32(xv * rw[1])
			yw[2] += float32(xv * rw[2])
			yw[3] += float32(xv * rw[3])
		}
		for ; j < jhi; j++ {
			y[j] += float32(xv * row[j])
		}
	}
}
