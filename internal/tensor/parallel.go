package tensor

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// The kernels in this package share one package-level bounded worker pool.
// SetWorkers fixes its size; ParallelFor splits an index range across it.
// The pool is a semaphore, not a set of resident goroutines: a ParallelFor
// call spawns at most workers-1 short-lived goroutines globally, and any
// chunk that cannot obtain a slot (because another kernel — possibly a
// nested one — is already using the pool) simply runs inline on the calling
// goroutine. This keeps total concurrency bounded under arbitrary nesting
// (e.g. a parallel conv layer whose per-sample matmuls are themselves
// parallel) and makes nested ParallelFor calls deadlock-free by
// construction.
type poolState struct {
	workers int
	sem     chan struct{} // capacity workers-1: slots for extra goroutines
}

var pool atomic.Pointer[poolState]

func init() {
	n := runtime.NumCPU()
	if s := os.Getenv("FHDNN_WORKERS"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v >= 1 {
			n = v
		}
	}
	SetWorkers(n)
}

// SetWorkers sets the size of the shared compute pool and returns the
// previous size. Values below 1 are clamped to 1 (fully serial). Kernel
// results are bit-identical for every worker count, so this is purely a
// throughput knob; it is safe to call concurrently with running kernels
// (in-flight calls keep the pool they started with).
func SetWorkers(n int) int {
	if n < 1 {
		n = 1
	}
	old := pool.Swap(&poolState{workers: n, sem: make(chan struct{}, n-1)})
	if old == nil {
		return n
	}
	return old.workers
}

// Workers returns the current size of the shared compute pool.
func Workers() int { return pool.Load().workers }

// ParallelFor splits [0, n) into at most Workers() contiguous chunks and
// runs fn on each. Chunks are disjoint, cover the range exactly, and may run
// concurrently; fn must only write state owned by its chunk. The call
// returns after every chunk has finished. With one worker (or n <= 1) fn
// runs inline with no goroutines and no allocation.
func ParallelFor(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	st := pool.Load()
	w := st.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		fn(0, n)
		return
	}
	chunk, extra := n/w, n%w
	// start returns the lower bound of chunk i; chunks 0..extra-1 get one
	// extra element so the split is as even as possible.
	start := func(i int) int {
		s := i * chunk
		if i < extra {
			return s + i
		}
		return s + extra
	}
	var wg sync.WaitGroup
	for i := 1; i < w; i++ {
		lo, hi := start(i), start(i+1)
		select {
		case st.sem <- struct{}{}:
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				defer func() { <-st.sem }()
				fn(lo, hi)
			}(lo, hi)
		default:
			// Pool saturated (typically a nested kernel): run inline.
			fn(lo, hi)
		}
	}
	fn(start(0), start(1))
	wg.Wait()
}
