//go:build fhdnnfast

package tensor

// fhdnnfast opt-in fast path: saxpyQuad is implemented with AVX2/FMA
// (axpy_fast_amd64.s). VFMADD231PS fuses each multiply-add with a single
// rounding, so results are NOT bit-identical to the default build's
// multiply-round-add-round chain — only deterministic within this build.
// See FastKernels for the full contract.
const fastKernels = true

// saxpyQuad has the same contract as the default build's SSE version
// (axpy_amd64.go), except each c[j] += a*b step is one fused
// multiply-add: one rounding instead of two.
//
//go:noescape
func saxpyQuad(c, b0, b1, b2, b3 []float32, av *[4]float32, n4 int)

//go:noescape
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

//go:noescape
func xgetbv() (eax, edx uint32)

// The fhdnnfast binary hard-requires AVX2+FMA with OS-enabled YMM state;
// there is no runtime dispatch (dispatch in a loop this hot costs more
// than the tag is worth). Fail loudly at startup rather than SIGILL in
// the middle of a training round.
func init() {
	if !cpuSupportsAVX2FMA() {
		panic("tensor: binary built with -tags fhdnnfast but this CPU/OS does not support AVX2+FMA with YMM state enabled; rebuild without the tag")
	}
}

func cpuSupportsAVX2FMA() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	const (
		fmaBit     = 1 << 12 // CPUID.1:ECX.FMA
		osxsaveBit = 1 << 27 // CPUID.1:ECX.OSXSAVE
		avxBit     = 1 << 28 // CPUID.1:ECX.AVX
	)
	_, _, ecx1, _ := cpuid(1, 0)
	if ecx1&(fmaBit|osxsaveBit|avxBit) != fmaBit|osxsaveBit|avxBit {
		return false
	}
	// XCR0 bits 1 and 2: the OS saves/restores XMM and YMM state.
	xcr0, _ := xgetbv()
	if xcr0&0x6 != 0x6 {
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	return ebx7&(1<<5) != 0 // CPUID.(7,0):EBX.AVX2
}
