//go:build !fhdnnfast

package tensor

// saxpyQuad computes, for every j in [0, n4):
//
//	c[j] += float32(av[0] * b0[j])
//	c[j] += float32(av[1] * b1[j])
//	c[j] += float32(av[2] * b2[j])
//	c[j] += float32(av[3] * b3[j])
//
// in exactly that per-element order, with IEEE rounding after every multiply
// and every add. The amd64 implementation vectorizes over j with SSE
// MULPS/ADDPS: each lane is one output element's own serial accumulator
// chain and no FMA is used, so the bits match the scalar loop exactly.
// n4 must be a multiple of 4 and must not exceed the length of any operand.
//
//go:noescape
func saxpyQuad(c, b0, b1, b2, b3 []float32, av *[4]float32, n4 int)
