package tensor

import "fmt"

// The matrix kernels below are cache-blocked, register-tiled, and run on the
// shared worker pool (see parallel.go / gemm.go). Every variant guarantees
// bit-identical results for any Workers() setting: each output element is
// reduced by a single serial accumulator chain in ascending k order, and
// worker boundaries only move whole output tiles between goroutines.

// MatMul computes C = A * B for 2-D tensors A (m x k) and B (k x n),
// returning a new m x n tensor.
func MatMul(a, b *Tensor) *Tensor {
	m, k, n := checkMatMul(a, b)
	c := New(m, n)
	gemm(c.data, a.data, b.data, m, k, n, false)
	return c
}

// MatMulInto computes C = A*B, storing the result into dst (which must be
// m x n). Existing contents of dst are overwritten. It performs no
// allocation when the pool has a single worker.
//
//fhdnn:hotpath inner loop of every forward/backward pass
func MatMulInto(dst, a, b *Tensor) {
	m, k, n := checkMatMul(a, b)
	checkDst("MatMulInto", dst, m, n)
	guardNoAlias("MatMulInto", dst.data, a.data, b.data)
	gemm(dst.data, a.data, b.data, m, k, n, false)
}

// MatMulAccum computes C += A*B into dst.
//
//fhdnn:hotpath inner loop of every forward/backward pass
func MatMulAccum(dst, a, b *Tensor) {
	m, k, n := checkMatMul(a, b)
	checkDst("MatMulAccum", dst, m, n)
	guardNoAlias("MatMulAccum", dst.data, a.data, b.data)
	gemm(dst.data, a.data, b.data, m, k, n, true)
}

func checkMatMul(a, b *Tensor) (m, k, n int) {
	if a.NumDims() != 2 || b.NumDims() != 2 {
		panic("tensor: MatMul requires 2-D operands")
	}
	m, k = a.Dim(0), a.Dim(1)
	if b.Dim(0) != k {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d vs %d", k, b.Dim(0)))
	}
	return m, k, b.Dim(1)
}

func checkDst(op string, dst *Tensor, m, n int) {
	if dst.NumDims() != 2 || dst.Dim(0) != m || dst.Dim(1) != n {
		panic(fmt.Sprintf("tensor: %s dst shape %v, want [%d %d]", op, dst.shape, m, n))
	}
}

func checkMatMulTransA(a, b *Tensor) (m, k, n int) {
	if a.NumDims() != 2 || b.NumDims() != 2 {
		panic("tensor: MatMulTransA requires 2-D operands")
	}
	k, m = a.Dim(0), a.Dim(1)
	if b.Dim(0) != k {
		panic(fmt.Sprintf("tensor: MatMulTransA inner dims %d vs %d", k, b.Dim(0)))
	}
	return m, k, b.Dim(1)
}

// MatMulTransA computes C = A^T * B where A is k x m and B is k x n,
// producing m x n. Used for weight gradients.
func MatMulTransA(a, b *Tensor) *Tensor {
	m, k, n := checkMatMulTransA(a, b)
	c := New(m, n)
	gemmTransA(c.data, a.data, b.data, m, k, n, false)
	return c
}

// MatMulTransAInto computes C = A^T * B into dst (m x n), overwriting it.
//
//fhdnn:hotpath weight-gradient kernel on the backward pass
func MatMulTransAInto(dst, a, b *Tensor) {
	m, k, n := checkMatMulTransA(a, b)
	checkDst("MatMulTransAInto", dst, m, n)
	guardNoAlias("MatMulTransAInto", dst.data, a.data, b.data)
	gemmTransA(dst.data, a.data, b.data, m, k, n, false)
}

// MatMulTransAAccum computes C += A^T * B into dst (m x n).
//
//fhdnn:hotpath weight-gradient kernel on the backward pass
func MatMulTransAAccum(dst, a, b *Tensor) {
	m, k, n := checkMatMulTransA(a, b)
	checkDst("MatMulTransAAccum", dst, m, n)
	guardNoAlias("MatMulTransAAccum", dst.data, a.data, b.data)
	gemmTransA(dst.data, a.data, b.data, m, k, n, true)
}

func checkMatMulTransB(a, b *Tensor) (m, k, n int) {
	if a.NumDims() != 2 || b.NumDims() != 2 {
		panic("tensor: MatMulTransB requires 2-D operands")
	}
	m, k = a.Dim(0), a.Dim(1)
	if b.Dim(1) != k {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dims %d vs %d", k, b.Dim(1)))
	}
	return m, k, b.Dim(0)
}

// MatMulTransB computes C = A * B^T where A is m x k and B is n x k,
// producing m x n. Used for input gradients and all dot-product-shaped
// forwards (Linear, Conv2D-over-im2col, HD batch encoding).
func MatMulTransB(a, b *Tensor) *Tensor {
	m, k, n := checkMatMulTransB(a, b)
	c := New(m, n)
	gemmTransB(c.data, a.data, b.data, m, k, n, false)
	return c
}

// MatMulTransBInto computes C = A * B^T into dst (m x n), overwriting it.
// It performs no allocation when the pool has a single worker.
//
//fhdnn:hotpath dot-product kernel behind Linear, Conv2D and HD encoding
func MatMulTransBInto(dst, a, b *Tensor) {
	m, k, n := checkMatMulTransB(a, b)
	checkDst("MatMulTransBInto", dst, m, n)
	guardNoAlias("MatMulTransBInto", dst.data, a.data, b.data)
	gemmTransB(dst.data, a.data, b.data, m, k, n, false)
}

// MatMulTransBAccum computes C += A * B^T into dst (m x n).
//
//fhdnn:hotpath dot-product kernel behind Linear, Conv2D and HD encoding
func MatMulTransBAccum(dst, a, b *Tensor) {
	m, k, n := checkMatMulTransB(a, b)
	checkDst("MatMulTransBAccum", dst, m, n)
	guardNoAlias("MatMulTransBAccum", dst.data, a.data, b.data)
	gemmTransB(dst.data, a.data, b.data, m, k, n, true)
}

// MatVec computes y = A*x for a 2-D tensor A (m x n) and a vector x of
// length n, returning a vector of length m.
func MatVec(a *Tensor, x []float32) []float32 {
	y := make([]float32, a.Dim(0))
	MatVecInto(y, a, x)
	return y
}

// MatVecInto computes y = A*x into dst, which must have length m. It
// performs no allocation when the pool has a single worker.
//
//fhdnn:hotpath single-sample HD encode kernel
func MatVecInto(dst []float32, a *Tensor, x []float32) {
	if a.NumDims() != 2 {
		panic("tensor: MatVec requires a 2-D matrix")
	}
	m, n := a.Dim(0), a.Dim(1)
	if len(x) != n {
		panic(fmt.Sprintf("tensor: MatVec vector length %d, want %d", len(x), n))
	}
	if len(dst) != m {
		panic(fmt.Sprintf("tensor: MatVec dst length %d, want %d", len(dst), m))
	}
	guardNoAlias("MatVecInto", dst, a.data, x)
	if Workers() <= 1 || m < 8 || m*n < parallelCutoff {
		matVecRows(dst, a.data, x, 0, m, n)
		return
	}
	ParallelFor(m, func(lo, hi int) {
		matVecRows(dst, a.data, x, lo, hi, n)
	})
}

// MatVecTrans computes y = A^T*x for a 2-D tensor A (m x n) and a vector x
// of length m, returning a vector of length n.
func MatVecTrans(a *Tensor, x []float32) []float32 {
	y := make([]float32, a.Dim(1))
	MatVecTransInto(y, a, x)
	return y
}

// MatVecTransInto computes y = A^T*x into dst, which must have length n.
// Existing contents of dst are overwritten. It performs no allocation when
// the pool has a single worker.
//
//fhdnn:hotpath single-sample HD decode kernel
func MatVecTransInto(dst []float32, a *Tensor, x []float32) {
	if a.NumDims() != 2 {
		panic("tensor: MatVecTrans requires a 2-D matrix")
	}
	m, n := a.Dim(0), a.Dim(1)
	if len(x) != m {
		panic(fmt.Sprintf("tensor: MatVecTrans vector length %d, want %d", len(x), m))
	}
	if len(dst) != n {
		panic(fmt.Sprintf("tensor: MatVecTrans dst length %d, want %d", len(dst), n))
	}
	guardNoAlias("MatVecTransInto", dst, a.data, x)
	if Workers() <= 1 || n < 8 || m*n < parallelCutoff {
		matVecTransCols(dst, a.data, x, 0, n, n)
		return
	}
	ParallelFor(n, func(jlo, jhi int) {
		matVecTransCols(dst, a.data, x, jlo, jhi, n)
	})
}
