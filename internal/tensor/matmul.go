package tensor

import "fmt"

// MatMul computes C = A * B for 2-D tensors A (m x k) and B (k x n),
// returning a new m x n tensor. The inner loops are ordered i-k-j so the
// innermost loop streams rows of B, which is cache-friendly for row-major
// storage.
func MatMul(a, b *Tensor) *Tensor {
	m, k, n := checkMatMul(a, b)
	c := New(m, n)
	matMulInto(c.data, a.data, b.data, m, k, n, false)
	return c
}

// MatMulInto computes C = A*B, storing the result into dst (which must be
// m x n). Existing contents of dst are overwritten.
func MatMulInto(dst, a, b *Tensor) {
	m, k, n := checkMatMul(a, b)
	if dst.Dim(0) != m || dst.Dim(1) != n {
		panic(fmt.Sprintf("tensor: MatMulInto dst shape %v, want [%d %d]", dst.shape, m, n))
	}
	matMulInto(dst.data, a.data, b.data, m, k, n, false)
}

// MatMulAccum computes C += A*B into dst.
func MatMulAccum(dst, a, b *Tensor) {
	m, k, n := checkMatMul(a, b)
	if dst.Dim(0) != m || dst.Dim(1) != n {
		panic(fmt.Sprintf("tensor: MatMulAccum dst shape %v, want [%d %d]", dst.shape, m, n))
	}
	matMulInto(dst.data, a.data, b.data, m, k, n, true)
}

func checkMatMul(a, b *Tensor) (m, k, n int) {
	if a.NumDims() != 2 || b.NumDims() != 2 {
		panic("tensor: MatMul requires 2-D operands")
	}
	m, k = a.Dim(0), a.Dim(1)
	if b.Dim(0) != k {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d vs %d", k, b.Dim(0)))
	}
	return m, k, b.Dim(1)
}

func matMulInto(c, a, b []float32, m, k, n int, accum bool) {
	if !accum {
		for i := range c[:m*n] {
			c[i] = 0
		}
	}
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		crow := c[i*n : (i+1)*n]
		for kk, av := range arow {
			if av == 0 {
				continue
			}
			brow := b[kk*n : (kk+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// MatMulTransA computes C = A^T * B where A is k x m and B is k x n,
// producing m x n. Used for weight gradients.
func MatMulTransA(a, b *Tensor) *Tensor {
	if a.NumDims() != 2 || b.NumDims() != 2 {
		panic("tensor: MatMulTransA requires 2-D operands")
	}
	k, m := a.Dim(0), a.Dim(1)
	if b.Dim(0) != k {
		panic(fmt.Sprintf("tensor: MatMulTransA inner dims %d vs %d", k, b.Dim(0)))
	}
	n := b.Dim(1)
	c := New(m, n)
	for kk := 0; kk < k; kk++ {
		arow := a.data[kk*m : (kk+1)*m]
		brow := b.data[kk*n : (kk+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			crow := c.data[i*n : (i+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
	return c
}

// MatMulTransB computes C = A * B^T where A is m x k and B is n x k,
// producing m x n. Used for input gradients.
func MatMulTransB(a, b *Tensor) *Tensor {
	if a.NumDims() != 2 || b.NumDims() != 2 {
		panic("tensor: MatMulTransB requires 2-D operands")
	}
	m, k := a.Dim(0), a.Dim(1)
	if b.Dim(1) != k {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dims %d vs %d", k, b.Dim(1)))
	}
	n := b.Dim(0)
	c := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		crow := c.data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.data[j*k : (j+1)*k]
			s := float32(0)
			for kk, av := range arow {
				s += av * brow[kk]
			}
			crow[j] = s
		}
	}
	return c
}

// MatVec computes y = A*x for a 2-D tensor A (m x n) and a vector x of
// length n, returning a vector of length m.
func MatVec(a *Tensor, x []float32) []float32 {
	if a.NumDims() != 2 {
		panic("tensor: MatVec requires a 2-D matrix")
	}
	m, n := a.Dim(0), a.Dim(1)
	if len(x) != n {
		panic(fmt.Sprintf("tensor: MatVec vector length %d, want %d", len(x), n))
	}
	y := make([]float32, m)
	for i := 0; i < m; i++ {
		row := a.data[i*n : (i+1)*n]
		s := float32(0)
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// MatVecTrans computes y = A^T*x for a 2-D tensor A (m x n) and a vector x
// of length m, returning a vector of length n.
func MatVecTrans(a *Tensor, x []float32) []float32 {
	if a.NumDims() != 2 {
		panic("tensor: MatVecTrans requires a 2-D matrix")
	}
	m, n := a.Dim(0), a.Dim(1)
	if len(x) != m {
		panic(fmt.Sprintf("tensor: MatVecTrans vector length %d, want %d", len(x), m))
	}
	y := make([]float32, n)
	for i := 0; i < m; i++ {
		xv := x[i]
		if xv == 0 {
			continue
		}
		row := a.data[i*n : (i+1)*n]
		for j, v := range row {
			y[j] += xv * v
		}
	}
	return y
}
