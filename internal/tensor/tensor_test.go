package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewShapeAndLen(t *testing.T) {
	a := New(2, 3, 4)
	if a.Len() != 24 {
		t.Fatalf("Len = %d, want 24", a.Len())
	}
	if a.NumDims() != 3 || a.Dim(0) != 2 || a.Dim(1) != 3 || a.Dim(2) != 4 {
		t.Fatalf("bad shape %v", a.Shape())
	}
	for _, v := range a.Data() {
		if v != 0 {
			t.Fatal("New must zero-fill")
		}
	}
}

func TestNewNegativeDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dimension")
		}
	}()
	New(2, -1)
}

func TestFromSlice(t *testing.T) {
	d := []float32{1, 2, 3, 4, 5, 6}
	a := FromSlice(d, 2, 3)
	if a.At(1, 2) != 6 {
		t.Fatalf("At(1,2) = %v, want 6", a.At(1, 2))
	}
	a.Set(42, 0, 1)
	if d[1] != 42 {
		t.Fatal("FromSlice must share storage")
	}
}

func TestFromSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for length mismatch")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestAtSetRoundTrip(t *testing.T) {
	a := New(3, 4)
	a.Set(7.5, 2, 1)
	if got := a.At(2, 1); got != 7.5 {
		t.Fatalf("At = %v, want 7.5", got)
	}
	if got := a.Data()[2*4+1]; got != 7.5 {
		t.Fatalf("row-major layout violated: %v", got)
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	a := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range index")
		}
	}()
	a.At(0, 2)
}

func TestCloneIndependence(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3}, 3)
	b := a.Clone()
	b.Set(9, 0)
	if a.At(0) != 1 {
		t.Fatal("Clone must deep-copy")
	}
}

func TestReshapeSharesStorage(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := a.Reshape(4)
	b.Set(8, 3)
	if a.At(1, 1) != 8 {
		t.Fatal("Reshape must share storage")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad reshape volume")
		}
	}()
	a.Reshape(3)
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3}, 3)
	b := FromSlice([]float32{4, 5, 6}, 3)
	a.AddInPlace(b)
	want := []float32{5, 7, 9}
	for i, w := range want {
		if a.Data()[i] != w {
			t.Fatalf("AddInPlace[%d] = %v, want %v", i, a.Data()[i], w)
		}
	}
	a.SubInPlace(b)
	for i, w := range []float32{1, 2, 3} {
		if a.Data()[i] != w {
			t.Fatalf("SubInPlace[%d] = %v, want %v", i, a.Data()[i], w)
		}
	}
	a.Scale(2)
	if a.At(2) != 6 {
		t.Fatalf("Scale: got %v", a.At(2))
	}
	a.AXPY(0.5, b)
	if a.At(0) != 2+2 {
		t.Fatalf("AXPY: got %v", a.At(0))
	}
	c := FromSlice([]float32{2, 2, 2}, 3)
	c.Hadamard(b)
	if c.At(1) != 10 {
		t.Fatalf("Hadamard: got %v", c.At(1))
	}
}

func TestReductions(t *testing.T) {
	a := FromSlice([]float32{3, -1, 4, 0}, 4)
	if a.Sum() != 6 {
		t.Fatalf("Sum = %v", a.Sum())
	}
	if a.Mean() != 1.5 {
		t.Fatalf("Mean = %v", a.Mean())
	}
	if got := a.Norm(); math.Abs(got-math.Sqrt(26)) > 1e-9 {
		t.Fatalf("Norm = %v", got)
	}
	if a.ArgMax() != 2 {
		t.Fatalf("ArgMax = %d", a.ArgMax())
	}
}

func TestRandnStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := Randn(rng, 2.0, 10000)
	mean := a.Mean()
	if math.Abs(mean) > 0.1 {
		t.Fatalf("Randn mean = %v, want ~0", mean)
	}
	varSum := 0.0
	for _, v := range a.Data() {
		varSum += float64(v) * float64(v)
	}
	std := math.Sqrt(varSum / float64(a.Len()))
	if math.Abs(std-2.0) > 0.1 {
		t.Fatalf("Randn std = %v, want ~2", std)
	}
}

func TestRandUniformRange(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := RandUniform(rng, -1, 3, 1000)
	for _, v := range a.Data() {
		if v < -1 || v >= 3 {
			t.Fatalf("RandUniform out of range: %v", v)
		}
	}
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i, w := range want {
		if c.Data()[i] != w {
			t.Fatalf("MatMul[%d] = %v, want %v", i, c.Data()[i], w)
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := Randn(rng, 1, 5, 5)
	id := New(5, 5)
	for i := 0; i < 5; i++ {
		id.Set(1, i, i)
	}
	c := MatMul(a, id)
	if !c.Equal(a, 1e-6) {
		t.Fatal("A*I != A")
	}
	c2 := MatMul(id, a)
	if !c2.Equal(a, 1e-6) {
		t.Fatal("I*A != A")
	}
}

func TestMatMulDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for dim mismatch")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

// naiveMatMul is the reference implementation used to cross-check the
// optimized kernels.
func naiveMatMul(a, b *Tensor) *Tensor {
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(1)
	c := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := float32(0)
			for kk := 0; kk < k; kk++ {
				s += a.At(i, kk) * b.At(kk, j)
			}
			c.Set(s, i, j)
		}
	}
	return c
}

func TestMatMulAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		m, k, n := 1+rng.Intn(8), 1+rng.Intn(8), 1+rng.Intn(8)
		a := Randn(rng, 1, m, k)
		b := Randn(rng, 1, k, n)
		got := MatMul(a, b)
		want := naiveMatMul(a, b)
		if !got.Equal(want, 1e-4) {
			t.Fatalf("trial %d: MatMul mismatch for %dx%dx%d", trial, m, k, n)
		}
	}
}

func TestMatMulTransA(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := Randn(rng, 1, 4, 3) // k x m
	b := Randn(rng, 1, 4, 5) // k x n
	got := MatMulTransA(a, b)
	// reference: transpose a explicitly
	at := New(3, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			at.Set(a.At(i, j), j, i)
		}
	}
	want := naiveMatMul(at, b)
	if !got.Equal(want, 1e-4) {
		t.Fatal("MatMulTransA mismatch")
	}
}

func TestMatMulTransB(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := Randn(rng, 1, 4, 3) // m x k
	b := Randn(rng, 1, 5, 3) // n x k
	got := MatMulTransB(a, b)
	bt := New(3, 5)
	for i := 0; i < 5; i++ {
		for j := 0; j < 3; j++ {
			bt.Set(b.At(i, j), j, i)
		}
	}
	want := naiveMatMul(a, bt)
	if !got.Equal(want, 1e-4) {
		t.Fatal("MatMulTransB mismatch")
	}
}

func TestMatMulIntoAndAccum(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := Randn(rng, 1, 3, 3)
	b := Randn(rng, 1, 3, 3)
	dst := Full(1, 3, 3)
	MatMulInto(dst, a, b)
	want := naiveMatMul(a, b)
	if !dst.Equal(want, 1e-5) {
		t.Fatal("MatMulInto must overwrite")
	}
	MatMulAccum(dst, a, b)
	want.Scale(2)
	if !dst.Equal(want, 1e-4) {
		t.Fatal("MatMulAccum must accumulate")
	}
}

func TestMatVec(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	y := MatVec(a, []float32{1, 1, 1})
	if y[0] != 6 || y[1] != 15 {
		t.Fatalf("MatVec = %v", y)
	}
	yt := MatVecTrans(a, []float32{1, 1})
	if yt[0] != 5 || yt[1] != 7 || yt[2] != 9 {
		t.Fatalf("MatVecTrans = %v", yt)
	}
}

// Property: (A*B)^T == B^T * A^T, checked via MatMulTransA/TransB plumbing.
func TestMatMulTransposeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a := Randn(r, 1, m, k)
		b := Randn(r, 1, k, n)
		ab := MatMul(a, b) // m x n
		// (A*B)^T via computing B^T A^T = MatMulTransA(b, a)? Shapes:
		// MatMulTransA(x,y) = x^T y with x: k x m. Set x=b (k x n) -> b^T (n x k), y=a? a is m x k, mismatch.
		// Instead verify C^T elementwise.
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				s := float32(0)
				for kk := 0; kk < k; kk++ {
					s += a.At(i, kk) * b.At(kk, j)
				}
				if math.Abs(float64(ab.At(i, j)-s)) > 1e-4 {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestEqualShapeMismatch(t *testing.T) {
	if New(2, 3).Equal(New(3, 2), 1) {
		t.Fatal("Equal must compare shapes")
	}
	if New(2).Equal(New(2, 1), 1) {
		t.Fatal("Equal must compare rank")
	}
}

func TestZeroFillCopy(t *testing.T) {
	a := Full(3, 4)
	a.Zero()
	if a.Sum() != 0 {
		t.Fatal("Zero failed")
	}
	a.Fill(2)
	if a.Sum() != 8 {
		t.Fatal("Fill failed")
	}
	b := New(4)
	b.CopyFrom(a)
	if b.Sum() != 8 {
		t.Fatal("CopyFrom failed")
	}
}

func TestStringer(t *testing.T) {
	s := New(2, 2).String()
	if s == "" {
		t.Fatal("String must be non-empty")
	}
}
