package tensor

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// Naive reference kernels: the pre-blocking triple loops, with the same
// explicit float32(a*b) rounding as the production kernels. Every output
// element is one ascending-k accumulator chain, so the blocked kernels must
// match these bit for bit.

func refMatMul(a, b *Tensor) *Tensor {
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(1)
	c := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for kk := 0; kk < k; kk++ {
				s += float32(a.data[i*k+kk] * b.data[kk*n+j])
			}
			c.data[i*n+j] = s
		}
	}
	return c
}

func refMatMulTransA(a, b *Tensor) *Tensor {
	k, m, n := a.Dim(0), a.Dim(1), b.Dim(1)
	c := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for kk := 0; kk < k; kk++ {
				s += float32(a.data[kk*m+i] * b.data[kk*n+j])
			}
			c.data[i*n+j] = s
		}
	}
	return c
}

func refMatMulTransB(a, b *Tensor) *Tensor {
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(0)
	c := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for kk := 0; kk < k; kk++ {
				s += float32(a.data[i*k+kk] * b.data[j*k+kk])
			}
			c.data[i*n+j] = s
		}
	}
	return c
}

func withWorkers(t *testing.T, n int) {
	t.Helper()
	old := SetWorkers(n)
	t.Cleanup(func() { SetWorkers(old) })
}

func bitsEqual(t *testing.T, name string, got, want []float32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", name, len(got), len(want))
	}
	for i := range got {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("%s: element %d = %v (bits %x), want %v (bits %x)",
				name, i, got[i], math.Float32bits(got[i]), want[i], math.Float32bits(want[i]))
		}
	}
}

// testShapes deliberately includes degenerate sizes and sizes that are not
// multiples of the 4x4 tile, so microkernel, column-tail, and row-tail paths
// are all exercised.
var testShapes = [][3]int{
	{1, 1, 1}, {1, 7, 1}, {3, 5, 2}, {4, 4, 4}, {5, 9, 6}, {2, 3, 130},
	{17, 23, 31}, {33, 1, 65}, {1, 64, 9}, {70, 3, 70}, {64, 64, 64}, {61, 67, 59},
}

func TestBlockedKernelsBitIdenticalAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, sh := range testShapes {
		m, k, n := sh[0], sh[1], sh[2]
		a := Randn(rng, 1, m, k)
		b := Randn(rng, 1, k, n)
		at := Randn(rng, 1, k, m)  // for TransA: k x m
		bt := Randn(rng, 1, n, k)  // for TransB: n x k
		acc := Randn(rng, 1, m, n) // accumulation seed
		wantMM := refMatMul(a, b)
		wantTA := refMatMulTransA(at, b)
		wantTB := refMatMulTransB(a, bt)
		// reference accum: chain seeded from existing dst, then ascending k
		wantAcc := New(m, n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				s := acc.data[i*n+j]
				for kk := 0; kk < k; kk++ {
					s += float32(a.data[i*k+kk] * b.data[kk*n+j])
				}
				wantAcc.data[i*n+j] = s
			}
		}
		if FastKernels() {
			// The fhdnnfast FMA microkernel is documented as not
			// bit-identical to the scalar chain; what still holds — and is
			// asserted below — is bit-identity across worker counts.
			// Re-baseline the saxpyQuad-backed kernels (MatMul and the
			// packed TransB) at one worker.
			old := SetWorkers(1)
			MatMulInto(wantMM, a, b)
			wantAcc.CopyFrom(acc)
			MatMulAccum(wantAcc, a, b)
			MatMulTransBInto(wantTB, a, bt)
			SetWorkers(old)
		}
		for _, w := range []int{1, 2, 3, 8} {
			func() {
				old := SetWorkers(w)
				defer SetWorkers(old)
				bitsEqual(t, "MatMul", MatMul(a, b).data, wantMM.data)
				dst := New(m, n)
				MatMulInto(dst, a, b)
				bitsEqual(t, "MatMulInto", dst.data, wantMM.data)
				dst.CopyFrom(acc)
				MatMulAccum(dst, a, b)
				bitsEqual(t, "MatMulAccum", dst.data, wantAcc.data)
				bitsEqual(t, "MatMulTransA", MatMulTransA(at, b).data, wantTA.data)
				MatMulTransAInto(dst, at, b)
				bitsEqual(t, "MatMulTransAInto", dst.data, wantTA.data)
				bitsEqual(t, "MatMulTransB", MatMulTransB(a, bt).data, wantTB.data)
				MatMulTransBInto(dst, a, bt)
				bitsEqual(t, "MatMulTransBInto", dst.data, wantTB.data)
			}()
		}
	}
}

func TestTransAccumVariantsMatchSeparateAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m, k, n := 13, 21, 17
	at := Randn(rng, 1, k, m)
	a := Randn(rng, 1, m, k)
	b := Randn(rng, 1, k, n)
	bt := Randn(rng, 1, n, k)
	seed := Randn(rng, 1, m, n)

	for _, w := range []int{1, 3, 8} {
		old := SetWorkers(w)
		ta := seed.Clone()
		MatMulTransAAccum(ta, at, b)
		// chain seeded from existing dst, then ascending k
		want := seed.Clone()
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				s := seed.data[i*n+j]
				for kk := 0; kk < k; kk++ {
					s += float32(at.data[kk*m+i] * b.data[kk*n+j])
				}
				want.data[i*n+j] = s
			}
		}
		bitsEqual(t, "MatMulTransAAccum", ta.data, want.data)

		tb := seed.Clone()
		MatMulTransBAccum(tb, a, bt)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				s := seed.data[i*n+j]
				for kk := 0; kk < k; kk++ {
					s += float32(a.data[i*k+kk] * bt.data[j*k+kk])
				}
				want.data[i*n+j] = s
			}
		}
		bitsEqual(t, "MatMulTransBAccum", tb.data, want.data)
		SetWorkers(old)
	}
}

func TestMatVecBitIdenticalAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, sh := range [][2]int{{1, 1}, {5, 3}, {7, 129}, {515, 64}, {1024, 257}} {
		m, n := sh[0], sh[1]
		a := Randn(rng, 1, m, n)
		x := Randn(rng, 1, n).data
		xt := Randn(rng, 1, m).data
		wantY := make([]float32, m)
		for i := 0; i < m; i++ {
			var s float32
			for j := 0; j < n; j++ {
				s += float32(a.data[i*n+j] * x[j])
			}
			wantY[i] = s
		}
		wantYT := make([]float32, n)
		for i := 0; i < m; i++ {
			if xt[i] == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				wantYT[j] += float32(xt[i] * a.data[i*n+j])
			}
		}
		for _, w := range []int{1, 2, 3, 8} {
			old := SetWorkers(w)
			bitsEqual(t, "MatVec", MatVec(a, x), wantY)
			bitsEqual(t, "MatVecTrans", MatVecTrans(a, xt), wantYT)
			SetWorkers(old)
		}
	}
}

func TestParallelForCoversRangeExactlyOnce(t *testing.T) {
	for _, w := range []int{1, 2, 3, 5, 16} {
		withWorkers(t, w)
		for _, n := range []int{0, 1, 2, 7, 16, 101} {
			hits := make([]int32, n)
			var mu sync.Mutex
			ParallelFor(n, func(lo, hi int) {
				mu.Lock()
				defer mu.Unlock()
				for i := lo; i < hi; i++ {
					hits[i]++
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", w, n, i, h)
				}
			}
		}
	}
}

func TestSetWorkersClampsAndReturnsPrevious(t *testing.T) {
	old := SetWorkers(3)
	defer SetWorkers(old)
	if got := Workers(); got != 3 {
		t.Fatalf("Workers() = %d, want 3", got)
	}
	if prev := SetWorkers(0); prev != 3 {
		t.Fatalf("SetWorkers returned %d, want 3", prev)
	}
	if got := Workers(); got != 1 {
		t.Fatalf("Workers() after clamp = %d, want 1", got)
	}
}

// TestWorkerPoolConcurrentHammer exercises the shared pool from many
// goroutines at once (as concurrent layers and federated clients do),
// including concurrent SetWorkers churn. Run with -race.
func TestWorkerPoolConcurrentHammer(t *testing.T) {
	withWorkers(t, 4)
	rng := rand.New(rand.NewSource(10))
	a := Randn(rng, 1, 37, 29)
	b := Randn(rng, 1, 29, 41)
	at := Randn(rng, 1, 29, 37)
	bt := Randn(rng, 1, 41, 29)
	x := Randn(rng, 1, 29).data
	want := refMatMul(a, b)
	if FastKernels() {
		// FMA build: not bit-identical to the scalar reference, but still
		// deterministic across workers — baseline against the kernel itself.
		MatMulInto(want, a, b)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			dst := New(37, 41)
			for it := 0; it < 50; it++ {
				switch it % 4 {
				case 0:
					MatMulInto(dst, a, b)
					bitsEqualErr := false
					for i := range dst.data {
						if math.Float32bits(dst.data[i]) != math.Float32bits(want.data[i]) {
							bitsEqualErr = true
						}
					}
					if bitsEqualErr {
						t.Errorf("goroutine %d: concurrent MatMulInto diverged", g)
						return
					}
				case 1:
					MatMulTransA(at, b)
				case 2:
					MatMulTransB(a, bt)
				case 3:
					MatVec(a, x)
				}
			}
		}(g)
	}
	// churn the pool size while kernels run
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 25; i++ {
			SetWorkers(1 + i%4)
		}
	}()
	wg.Wait()
}

func TestIntoKernelsDoNotAllocateSerial(t *testing.T) {
	withWorkers(t, 1)
	rng := rand.New(rand.NewSource(11))
	a := Randn(rng, 1, 64, 48)
	b := Randn(rng, 1, 48, 56)
	bt := Randn(rng, 1, 56, 48)
	at := Randn(rng, 1, 48, 64)
	dst := New(64, 56)
	x := Randn(rng, 1, 48).data
	xt := Randn(rng, 1, 64).data
	y := make([]float32, 64)
	yt := make([]float32, 48)
	cases := map[string]func(){
		"MatMulInto":        func() { MatMulInto(dst, a, b) },
		"MatMulAccum":       func() { MatMulAccum(dst, a, b) },
		"MatMulTransAInto":  func() { MatMulTransAInto(dst, at, b) },
		"MatMulTransBInto":  func() { MatMulTransBInto(dst, a, bt) },
		"MatVecInto":        func() { MatVecInto(y, a, x) },
		"MatVecTransInto":   func() { MatVecTransInto(yt, a, xt) },
		"MaxPool2DInto":     maxPoolIntoCase(rng),
		"GlobalAvgPoolInto": gapIntoCase(rng),
	}
	for name, fn := range cases {
		if raceEnabled && name == "MatMulTransBInto" {
			// The packed TransB path recycles scratch through a sync.Pool,
			// and Pool.Put drops items at random under the race detector.
			continue
		}
		if allocs := testing.AllocsPerRun(10, fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", name, allocs)
		}
	}
}

func maxPoolIntoCase(rng *rand.Rand) func() {
	img := Randn(rng, 1, 4*8*8).data
	out := make([]float32, 4*4*4)
	am := make([]int32, len(out))
	return func() { MaxPool2DInto(img, 4, 8, 8, 2, 2, out, am) }
}

func gapIntoCase(rng *rand.Rand) func() {
	img := Randn(rng, 1, 4*8*8).data
	out := make([]float32, 4)
	return func() { GlobalAvgPoolInto(img, 4, 8, 8, out) }
}
