//go:build race

package tensor

// raceEnabled lets allocation-count tests exempt sync.Pool-backed paths:
// under the race detector, Pool.Put intentionally drops items at random
// to shake out lifetime bugs, so pooled scratch legitimately re-allocates.
const raceEnabled = true
