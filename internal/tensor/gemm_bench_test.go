package tensor

import (
	"math/rand"
	"testing"
)

// naiveMatMulInto replicates the pre-blocking kernel (i-k-j AXPY with a
// zero-skip) so the blocked kernels are benchmarked against a stable
// baseline. cmd/fhdnn-bench uses the same replica to compute the tracked
// speedups in BENCH_pr3.json.
func naiveMatMulInto(c, a, b []float32, m, k, n int) {
	for i := range c[:m*n] {
		c[i] = 0
	}
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		crow := c[i*n : (i+1)*n]
		for kk, av := range arow {
			if av == 0 {
				continue
			}
			brow := b[kk*n : (kk+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

func benchOperands(b *testing.B, m, k, n int) (dst, x, y *Tensor) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	return New(m, n), Randn(rng, 1, m, k), Randn(rng, 1, k, n)
}

func BenchmarkMatMulNaive256(b *testing.B) {
	dst, x, y := benchOperands(b, 256, 256, 256)
	b.SetBytes(3 * 256 * 256 * 4) // operand bytes per pass
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		naiveMatMulInto(dst.Data(), x.Data(), y.Data(), 256, 256, 256)
	}
}

func BenchmarkMatMulInto256(b *testing.B) {
	dst, x, y := benchOperands(b, 256, 256, 256)
	b.SetBytes(3 * 256 * 256 * 4) // operand bytes per pass
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(dst, x, y)
	}
}

func BenchmarkMatMulTransBInto256(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	dst, x := New(256, 256), Randn(rng, 1, 256, 256)
	y := Randn(rng, 1, 256, 256)
	b.SetBytes(3 * 256 * 256 * 4) // operand bytes per pass
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulTransBInto(dst, x, y)
	}
}

func BenchmarkMatMulTransAInto256(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	dst, x := New(256, 256), Randn(rng, 1, 256, 256)
	y := Randn(rng, 1, 256, 256)
	b.SetBytes(3 * 256 * 256 * 4) // operand bytes per pass
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulTransAInto(dst, x, y)
	}
}

func BenchmarkMatVecInto(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	a := Randn(rng, 1, 2048, 512)
	x := Randn(rng, 1, 512).data
	y := make([]float32, 2048)
	b.SetBytes((2048*512 + 512 + 2048) * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatVecInto(y, a, x)
	}
}
