package tensor

// FastKernels reports whether this binary was built with the fhdnnfast
// build tag on a platform where the tag changes numerics (amd64). When
// true, the saxpyQuad microkernel uses AVX2/FMA: fused multiply-adds skip
// the intermediate IEEE rounding of the default build's
// multiply-round-add-round chain, so kernel results are NOT bit-identical
// to the default build or to the scalar reference loops. Results remain
// deterministic for a fixed build — the reduction order per element is
// unchanged and worker splits still move whole output rows — so repeated
// runs and different worker counts agree with each other. Determinism
// tests that compare kernel output against scalar references consult this
// flag and either skip or re-baseline against the kernel itself.
func FastKernels() bool { return fastKernels }
