//go:build !(amd64 && fhdnnfast)

package tensor

// fastKernels is false in default builds and on platforms where the
// fhdnnfast tag has no effect (the portable saxpyQuad is always
// bit-identical to the scalar chain). See FastKernels.
const fastKernels = false
