// AVX2/FMA microkernel for the AXPY-layout GEMM inner loop, selected by
// the fhdnnfast build tag. Same traversal as the default SSE kernel in
// axpy_amd64.s, but 8 lanes wide and with VFMADD231PS: each
// c[j] += a*b step rounds once (fused) instead of twice, so this kernel
// is NOT bit-identical to the default build — only deterministic within
// it. axpy_fast_amd64.go refuses to start on CPUs without AVX2+FMA.

//go:build fhdnnfast

#include "textflag.h"

// func saxpyQuad(c, b0, b1, b2, b3 []float32, av *[4]float32, n4 int)
TEXT ·saxpyQuad(SB), NOSPLIT, $0-136
	MOVQ c_base+0(FP), DI
	MOVQ b0_base+24(FP), SI
	MOVQ b1_base+48(FP), DX
	MOVQ b2_base+72(FP), CX
	MOVQ b3_base+96(FP), R8
	MOVQ av+120(FP), R9
	MOVQ n4+128(FP), R10

	// Broadcast the four A coefficients across all eight lanes.
	VBROADCASTSS (R9), Y4
	VBROADCASTSS 4(R9), Y5
	VBROADCASTSS 8(R9), Y6
	VBROADCASTSS 12(R9), Y7

	XORQ AX, AX   // j, in float32 elements
	MOVQ R10, R11
	ANDQ $-16, R11 // j limit for the 16-wide unrolled loop

loop16:
	CMPQ        AX, R11
	JGE         tail8
	VMOVUPS     (DI)(AX*4), Y0
	VMOVUPS     32(DI)(AX*4), Y1
	VFMADD231PS (SI)(AX*4), Y4, Y0
	VFMADD231PS 32(SI)(AX*4), Y4, Y1
	VFMADD231PS (DX)(AX*4), Y5, Y0
	VFMADD231PS 32(DX)(AX*4), Y5, Y1
	VFMADD231PS (CX)(AX*4), Y6, Y0
	VFMADD231PS 32(CX)(AX*4), Y6, Y1
	VFMADD231PS (R8)(AX*4), Y7, Y0
	VFMADD231PS 32(R8)(AX*4), Y7, Y1
	VMOVUPS     Y0, (DI)(AX*4)
	VMOVUPS     Y1, 32(DI)(AX*4)
	ADDQ        $16, AX
	JMP         loop16

tail8:
	MOVQ        R10, R12
	ANDQ        $-8, R12
	CMPQ        AX, R12
	JGE         tail4
	VMOVUPS     (DI)(AX*4), Y0
	VFMADD231PS (SI)(AX*4), Y4, Y0
	VFMADD231PS (DX)(AX*4), Y5, Y0
	VFMADD231PS (CX)(AX*4), Y6, Y0
	VFMADD231PS (R8)(AX*4), Y7, Y0
	VMOVUPS     Y0, (DI)(AX*4)
	ADDQ        $8, AX

tail4:
	CMPQ        AX, R10
	JGE         done
	VMOVUPS     (DI)(AX*4), X0
	VFMADD231PS (SI)(AX*4), X4, X0
	VFMADD231PS (DX)(AX*4), X5, X0
	VFMADD231PS (CX)(AX*4), X6, X0
	VFMADD231PS (R8)(AX*4), X7, X0
	VMOVUPS     X0, (DI)(AX*4)
	ADDQ        $4, AX
	JMP         tail4

done:
	VZEROUPPER
	RET

// func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
