package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConvGeomOutputDims(t *testing.T) {
	g := ConvGeom{InC: 3, InH: 8, InW: 8, KH: 3, KW: 3, Stride: 1, Pad: 1}
	if g.OutH() != 8 || g.OutW() != 8 {
		t.Fatalf("same-pad 3x3 conv: out %dx%d, want 8x8", g.OutH(), g.OutW())
	}
	g2 := ConvGeom{InC: 1, InH: 8, InW: 8, KH: 3, KW: 3, Stride: 2, Pad: 1}
	if g2.OutH() != 4 || g2.OutW() != 4 {
		t.Fatalf("stride-2: out %dx%d, want 4x4", g2.OutH(), g2.OutW())
	}
}

// naiveConv computes a direct convolution for cross-checking im2col+matmul.
func naiveConv(img []float32, g ConvGeom, w []float32, outC int) []float32 {
	outH, outW := g.OutH(), g.OutW()
	out := make([]float32, outC*outH*outW)
	for oc := 0; oc < outC; oc++ {
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				s := float32(0)
				for c := 0; c < g.InC; c++ {
					for ky := 0; ky < g.KH; ky++ {
						iy := oy*g.Stride - g.Pad + ky
						if iy < 0 || iy >= g.InH {
							continue
						}
						for kx := 0; kx < g.KW; kx++ {
							ix := ox*g.Stride - g.Pad + kx
							if ix < 0 || ix >= g.InW {
								continue
							}
							wIdx := ((oc*g.InC+c)*g.KH+ky)*g.KW + kx
							s += img[c*g.InH*g.InW+iy*g.InW+ix] * w[wIdx]
						}
					}
				}
				out[(oc*outH+oy)*outW+ox] = s
			}
		}
	}
	return out
}

func TestIm2ColMatchesDirectConv(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 10; trial++ {
		g := ConvGeom{
			InC: 1 + rng.Intn(3), InH: 4 + rng.Intn(5), InW: 4 + rng.Intn(5),
			KH: 3, KW: 3, Stride: 1 + rng.Intn(2), Pad: rng.Intn(2),
		}
		outC := 1 + rng.Intn(4)
		img := Randn(rng, 1, g.InC*g.InH*g.InW).Data()
		w := Randn(rng, 1, outC*g.ColCols()).Data()

		col := make([]float32, g.ColRows()*g.ColCols())
		g.Im2Col(img, col)
		// out = W (outC x colCols) * col^T -> use MatMulTransB
		wT := FromSlice(w, outC, g.ColCols())
		colT := FromSlice(col, g.ColRows(), g.ColCols())
		got := MatMulTransB(wT, colT) // outC x colRows

		want := naiveConv(img, g, w, outC)
		for i, wv := range want {
			oc, pos := i/(g.ColRows()), i%(g.ColRows())
			gv := got.At(oc, pos)
			if math.Abs(float64(gv-wv)) > 1e-3 {
				t.Fatalf("trial %d: conv mismatch at %d: %v vs %v", trial, i, gv, wv)
			}
		}
	}
}

// Property: Col2Im is the adjoint of Im2Col, i.e. <Im2Col(x), y> == <x, Col2Im(y)>.
func TestCol2ImAdjointProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := ConvGeom{
			InC: 1 + rng.Intn(2), InH: 4 + rng.Intn(3), InW: 4 + rng.Intn(3),
			KH: 3, KW: 3, Stride: 1 + rng.Intn(2), Pad: rng.Intn(2),
		}
		n := g.InC * g.InH * g.InW
		m := g.ColRows() * g.ColCols()
		x := Randn(rng, 1, n).Data()
		y := Randn(rng, 1, m).Data()
		cx := make([]float32, m)
		g.Im2Col(x, cx)
		iy := make([]float32, n)
		g.Col2Im(y, iy)
		var lhs, rhs float64
		for i := range cx {
			lhs += float64(cx[i]) * float64(y[i])
		}
		for i := range x {
			rhs += float64(x[i]) * float64(iy[i])
		}
		return math.Abs(lhs-rhs) < 1e-2*(1+math.Abs(lhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestIm2ColBadLengthsPanic(t *testing.T) {
	g := ConvGeom{InC: 1, InH: 4, InW: 4, KH: 3, KW: 3, Stride: 1, Pad: 0}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.Im2Col(make([]float32, 3), make([]float32, g.ColRows()*g.ColCols()))
}

func TestMaxPool2D(t *testing.T) {
	// 1 channel 4x4
	img := []float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}
	out, argmax, oh, ow := MaxPool2D(img, 1, 4, 4, 2, 2)
	if oh != 2 || ow != 2 {
		t.Fatalf("pool dims %dx%d", oh, ow)
	}
	want := []float32{6, 8, 14, 16}
	for i, w := range want {
		if out[i] != w {
			t.Fatalf("pool[%d] = %v, want %v", i, out[i], w)
		}
	}
	if argmax[0] != 5 || argmax[3] != 15 {
		t.Fatalf("argmax = %v", argmax)
	}
}

func TestMaxPool2DNegativeValues(t *testing.T) {
	img := []float32{-5, -2, -8, -1}
	out, _, _, _ := MaxPool2D(img, 1, 2, 2, 2, 2)
	if out[0] != -1 {
		t.Fatalf("max of negatives = %v, want -1", out[0])
	}
}

func TestGlobalAvgPool(t *testing.T) {
	img := []float32{1, 2, 3, 4, 10, 10, 10, 10}
	out := GlobalAvgPool(img, 2, 2, 2)
	if out[0] != 2.5 || out[1] != 10 {
		t.Fatalf("GAP = %v", out)
	}
}
