//go:build !amd64

package tensor

// saxpyQuad is the portable form of the amd64 SSE microkernel; see
// axpy_amd64.go for the contract. The per-element operation order and
// rounding are identical, so results are bit-for-bit the same across
// architectures.
func saxpyQuad(c, b0, b1, b2, b3 []float32, av *[4]float32, n4 int) {
	av0, av1, av2, av3 := av[0], av[1], av[2], av[3]
	for j := 0; j+4 <= n4; j += 4 {
		cw := (*[4]float32)(c[j:])
		p0 := (*[4]float32)(b0[j:])
		p1 := (*[4]float32)(b1[j:])
		p2 := (*[4]float32)(b2[j:])
		p3 := (*[4]float32)(b3[j:])
		s0, s1, s2, s3 := cw[0], cw[1], cw[2], cw[3]
		s0 += float32(av0 * p0[0])
		s1 += float32(av0 * p0[1])
		s2 += float32(av0 * p0[2])
		s3 += float32(av0 * p0[3])
		s0 += float32(av1 * p1[0])
		s1 += float32(av1 * p1[1])
		s2 += float32(av1 * p1[2])
		s3 += float32(av1 * p1[3])
		s0 += float32(av2 * p2[0])
		s1 += float32(av2 * p2[1])
		s2 += float32(av2 * p2[2])
		s3 += float32(av2 * p2[3])
		s0 += float32(av3 * p3[0])
		s1 += float32(av3 * p3[1])
		s2 += float32(av3 * p3[2])
		s3 += float32(av3 * p3[3])
		cw[0], cw[1], cw[2], cw[3] = s0, s1, s2, s3
	}
}
