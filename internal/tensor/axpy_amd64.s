// SSE microkernel for the AXPY-layout GEMM inner loop. See axpy_amd64.go
// for the contract. Uses only SSE1/SSE2 instructions (the Go amd64
// baseline), MULPS + ADDPS per lane — never FMA — so every lane reproduces
// the scalar float32 multiply-round-add-round chain bit for bit.
// The fhdnnfast build swaps in the AVX2/FMA kernel from
// axpy_fast_amd64.s instead, which is faster but not bit-identical.

//go:build !fhdnnfast

#include "textflag.h"

// func saxpyQuad(c, b0, b1, b2, b3 []float32, av *[4]float32, n4 int)
TEXT ·saxpyQuad(SB), NOSPLIT, $0-136
	MOVQ c_base+0(FP), DI
	MOVQ b0_base+24(FP), SI
	MOVQ b1_base+48(FP), DX
	MOVQ b2_base+72(FP), CX
	MOVQ b3_base+96(FP), R8
	MOVQ av+120(FP), R9
	MOVQ n4+128(FP), R10

	// Broadcast the four A coefficients across SSE lanes.
	MOVSS  (R9), X4
	SHUFPS $0x00, X4, X4
	MOVSS  4(R9), X5
	SHUFPS $0x00, X5, X5
	MOVSS  8(R9), X6
	SHUFPS $0x00, X6, X6
	MOVSS  12(R9), X7
	SHUFPS $0x00, X7, X7

	XORQ AX, AX   // j, in float32 elements
	MOVQ R10, R11
	ANDQ $-8, R11 // j limit for the 8-wide unrolled loop

loop8:
	CMPQ   AX, R11
	JGE    tail4
	MOVUPS (DI)(AX*4), X0
	MOVUPS 16(DI)(AX*4), X1
	MOVUPS (SI)(AX*4), X2
	MULPS  X4, X2
	ADDPS  X2, X0
	MOVUPS 16(SI)(AX*4), X3
	MULPS  X4, X3
	ADDPS  X3, X1
	MOVUPS (DX)(AX*4), X2
	MULPS  X5, X2
	ADDPS  X2, X0
	MOVUPS 16(DX)(AX*4), X3
	MULPS  X5, X3
	ADDPS  X3, X1
	MOVUPS (CX)(AX*4), X2
	MULPS  X6, X2
	ADDPS  X2, X0
	MOVUPS 16(CX)(AX*4), X3
	MULPS  X6, X3
	ADDPS  X3, X1
	MOVUPS (R8)(AX*4), X2
	MULPS  X7, X2
	ADDPS  X2, X0
	MOVUPS 16(R8)(AX*4), X3
	MULPS  X7, X3
	ADDPS  X3, X1
	MOVUPS X0, (DI)(AX*4)
	MOVUPS X1, 16(DI)(AX*4)
	ADDQ   $8, AX
	JMP    loop8

tail4:
	CMPQ   AX, R10
	JGE    done
	MOVUPS (DI)(AX*4), X0
	MOVUPS (SI)(AX*4), X2
	MULPS  X4, X2
	ADDPS  X2, X0
	MOVUPS (DX)(AX*4), X2
	MULPS  X5, X2
	ADDPS  X2, X0
	MOVUPS (CX)(AX*4), X2
	MULPS  X6, X2
	ADDPS  X2, X0
	MOVUPS (R8)(AX*4), X2
	MULPS  X7, X2
	ADDPS  X2, X0
	MOVUPS X0, (DI)(AX*4)
	ADDQ   $4, AX
	JMP    tail4

done:
	RET
