//go:build fhdnndebug

package tensor

import (
	"strings"
	"testing"
)

func mustPanicWith(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q, got none", want)
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, want) {
			t.Fatalf("panic %v, want message containing %q", r, want)
		}
	}()
	fn()
}

// TestGuardNoAliasMatVec checks the debug guard fires when dst shares
// backing storage with either MatVecInto input, and stays quiet on
// disjoint buffers.
func TestGuardNoAliasMatVec(t *testing.T) {
	a := New(4, 4)
	buf := make([]float32, 8)

	mustPanicWith(t, "MatVecInto dst overlaps second input", func() {
		MatVecInto(buf[:4], a, buf[2:6])
	})
	mustPanicWith(t, "MatVecInto dst overlaps first input", func() {
		MatVecInto(a.Data()[:4], a, buf[4:8])
	})

	// Disjoint halves of one allocation are legal: the guard checks
	// element-range overlap, not allocation identity.
	MatVecInto(buf[:4], a, buf[4:8])
}

// TestGuardNoAliasMatMul checks the guard on the blocked matrix kernel.
func TestGuardNoAliasMatMul(t *testing.T) {
	a := New(4, 4)
	b := New(4, 4)
	mustPanicWith(t, "MatMulInto dst overlaps first input", func() {
		MatMulInto(a, a, b)
	})
	mustPanicWith(t, "MatMulInto dst overlaps second input", func() {
		MatMulInto(b, a, b)
	})

	c := New(4, 4)
	MatMulInto(c, a, b)
}

// TestGuardNoAliasTransAndAccum checks the guard on the transposed and
// accumulating matrix kernels, which gained guards alongside the packed
// TransB path: every Into/Accum entry point must refuse an aliased dst.
func TestGuardNoAliasTransAndAccum(t *testing.T) {
	a := New(8, 8)
	b := New(8, 8)
	cases := []struct {
		op string
		fn func(dst *Tensor)
	}{
		{"MatMulAccum", func(dst *Tensor) { MatMulAccum(dst, a, b) }},
		{"MatMulTransAInto", func(dst *Tensor) { MatMulTransAInto(dst, a, b) }},
		{"MatMulTransAAccum", func(dst *Tensor) { MatMulTransAAccum(dst, a, b) }},
		{"MatMulTransBInto", func(dst *Tensor) { MatMulTransBInto(dst, a, b) }},
		{"MatMulTransBAccum", func(dst *Tensor) { MatMulTransBAccum(dst, a, b) }},
	}
	for _, c := range cases {
		mustPanicWith(t, c.op+" dst overlaps first input", func() { c.fn(a) })
		mustPanicWith(t, c.op+" dst overlaps second input", func() { c.fn(b) })
		c.fn(New(8, 8)) // disjoint dst passes
	}
}

// TestGuardNoAliasMatVecTrans checks the guard on the transposed
// matrix-vector kernel.
func TestGuardNoAliasMatVecTrans(t *testing.T) {
	a := New(4, 4)
	buf := make([]float32, 8)
	mustPanicWith(t, "MatVecTransInto dst overlaps second input", func() {
		MatVecTransInto(buf[:4], a, buf[2:6])
	})
	mustPanicWith(t, "MatVecTransInto dst overlaps first input", func() {
		MatVecTransInto(a.Data()[:4], a, buf[4:8])
	})
	MatVecTransInto(buf[:4], a, buf[4:8])
}

// TestGuardPackScratchDisjoint drives the packed TransB path (shape above
// transBPackCutoff) under the debug guard: the pool scratch must never
// overlap the operands or the destination, so a clean large multiply is
// the assertion — the guard inside gemmTransB panics if packing ever
// hands out aliased scratch.
func TestGuardPackScratchDisjoint(t *testing.T) {
	a := New(64, 64)
	b := New(64, 64)
	dst := New(64, 64)
	if 64*64*64 < transBPackCutoff {
		t.Fatal("shape does not reach the packed path")
	}
	MatMulTransBInto(dst, a, b)
	MatMulTransBAccum(dst, a, b)
}

// TestOverlapsRanges pins the raw range arithmetic, including the empty
// and adjacent cases.
func TestOverlapsRanges(t *testing.T) {
	base := make([]float32, 10)
	cases := []struct {
		name string
		a, b []float32
		want bool
	}{
		{"identical", base, base, true},
		{"contained", base, base[3:5], true},
		{"partial", base[:5], base[4:], true},
		{"adjacent", base[:5], base[5:], false},
		{"empty a", base[:0], base, false},
		{"empty b", base, base[5:5], false},
		{"distinct allocations", base, make([]float32, 10), false},
	}
	for _, c := range cases {
		if got := overlaps(c.a, c.b); got != c.want {
			t.Errorf("%s: overlaps = %v, want %v", c.name, got, c.want)
		}
	}
}
