package tensor

import "fmt"

// ConvGeom describes the geometry of a 2-D convolution or pooling operation
// over NCHW tensors.
type ConvGeom struct {
	InC, InH, InW int // input channels, height, width
	KH, KW        int // kernel size
	Stride        int
	Pad           int
}

// OutH returns the output height of the convolution.
func (g ConvGeom) OutH() int { return (g.InH+2*g.Pad-g.KH)/g.Stride + 1 }

// OutW returns the output width of the convolution.
func (g ConvGeom) OutW() int { return (g.InW+2*g.Pad-g.KW)/g.Stride + 1 }

// ColRows returns the number of rows of the im2col matrix (one per output
// spatial position).
func (g ConvGeom) ColRows() int { return g.OutH() * g.OutW() }

// ColCols returns the number of columns of the im2col matrix
// (channels x kernel area).
func (g ConvGeom) ColCols() int { return g.InC * g.KH * g.KW }

// ColLen returns the full im2col buffer length, ColRows()*ColCols().
// Callers that lower many images should allocate one buffer of this size
// and reuse it across Im2Col/Col2Im calls.
func (g ConvGeom) ColLen() int { return g.ColRows() * g.ColCols() }

// Im2Col lowers one image (C x H x W, flat slice) into a matrix of shape
// (OutH*OutW) x (C*KH*KW) written into col. Out-of-bounds (padding) taps
// contribute zeros. col must have length ColRows()*ColCols().
func (g ConvGeom) Im2Col(img []float32, col []float32) {
	if len(img) != g.InC*g.InH*g.InW {
		panic(fmt.Sprintf("tensor: Im2Col image length %d, want %d", len(img), g.InC*g.InH*g.InW))
	}
	outH, outW := g.OutH(), g.OutW()
	cols := g.ColCols()
	if len(col) != outH*outW*cols {
		panic(fmt.Sprintf("tensor: Im2Col buffer length %d, want %d", len(col), outH*outW*cols))
	}
	idx := 0
	for oy := 0; oy < outH; oy++ {
		iy0 := oy*g.Stride - g.Pad
		for ox := 0; ox < outW; ox++ {
			ix0 := ox*g.Stride - g.Pad
			for c := 0; c < g.InC; c++ {
				chOff := c * g.InH * g.InW
				for ky := 0; ky < g.KH; ky++ {
					iy := iy0 + ky
					rowOff := chOff + iy*g.InW
					for kx := 0; kx < g.KW; kx++ {
						ix := ix0 + kx
						if iy < 0 || iy >= g.InH || ix < 0 || ix >= g.InW {
							col[idx] = 0
						} else {
							col[idx] = img[rowOff+ix]
						}
						idx++
					}
				}
			}
		}
	}
}

// Col2Im scatters the columns matrix back into an image, accumulating
// overlapping taps. It is the adjoint of Im2Col and is used for input
// gradients. img is zeroed first.
func (g ConvGeom) Col2Im(col []float32, img []float32) {
	if len(img) != g.InC*g.InH*g.InW {
		panic(fmt.Sprintf("tensor: Col2Im image length %d, want %d", len(img), g.InC*g.InH*g.InW))
	}
	for i := range img {
		img[i] = 0
	}
	outH, outW := g.OutH(), g.OutW()
	idx := 0
	for oy := 0; oy < outH; oy++ {
		iy0 := oy*g.Stride - g.Pad
		for ox := 0; ox < outW; ox++ {
			ix0 := ox*g.Stride - g.Pad
			for c := 0; c < g.InC; c++ {
				chOff := c * g.InH * g.InW
				for ky := 0; ky < g.KH; ky++ {
					iy := iy0 + ky
					rowOff := chOff + iy*g.InW
					for kx := 0; kx < g.KW; kx++ {
						ix := ix0 + kx
						if iy >= 0 && iy < g.InH && ix >= 0 && ix < g.InW {
							img[rowOff+ix] += col[idx]
						}
						idx++
					}
				}
			}
		}
	}
}

// MaxPool2D applies max pooling with a square window and equal stride over
// one image (C x H x W). It returns the pooled image and, for backprop, the
// flat argmax index into the input for every output element.
func MaxPool2D(img []float32, c, h, w, k, stride int) (out []float32, argmax []int32, outH, outW int) {
	outH = (h-k)/stride + 1
	outW = (w-k)/stride + 1
	out = make([]float32, c*outH*outW)
	argmax = make([]int32, c*outH*outW)
	MaxPool2DInto(img, c, h, w, k, stride, out, argmax)
	return out, argmax, outH, outW
}

// MaxPool2DInto is the allocation-free form of MaxPool2D: out must have
// length c*outH*outW and argmax either the same length or nil to skip the
// backprop index bookkeeping (inference).
func MaxPool2DInto(img []float32, c, h, w, k, stride int, out []float32, argmax []int32) (outH, outW int) {
	outH = (h-k)/stride + 1
	outW = (w-k)/stride + 1
	if len(out) != c*outH*outW {
		panic(fmt.Sprintf("tensor: MaxPool2DInto out length %d, want %d", len(out), c*outH*outW))
	}
	if argmax != nil && len(argmax) != len(out) {
		panic(fmt.Sprintf("tensor: MaxPool2DInto argmax length %d, want %d", len(argmax), len(out)))
	}
	for ch := 0; ch < c; ch++ {
		chOff := ch * h * w
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				best := float32(0)
				bi := int32(-1)
				for ky := 0; ky < k; ky++ {
					iy := oy*stride + ky
					for kx := 0; kx < k; kx++ {
						ix := ox*stride + kx
						v := img[chOff+iy*w+ix]
						if bi < 0 || v > best {
							best = v
							bi = int32(chOff + iy*w + ix)
						}
					}
				}
				o := ch*outH*outW + oy*outW + ox
				out[o] = best
				if argmax != nil {
					argmax[o] = bi
				}
			}
		}
	}
	return outH, outW
}

// GlobalAvgPool averages each channel plane of one image (C x H x W) into a
// C-length vector.
func GlobalAvgPool(img []float32, c, h, w int) []float32 {
	out := make([]float32, c)
	GlobalAvgPoolInto(img, c, h, w, out)
	return out
}

// GlobalAvgPoolInto is the allocation-free form of GlobalAvgPool; out must
// have length c.
func GlobalAvgPoolInto(img []float32, c, h, w int, out []float32) {
	if len(out) != c {
		panic(fmt.Sprintf("tensor: GlobalAvgPoolInto out length %d, want %d", len(out), c))
	}
	plane := h * w
	inv := 1.0 / float32(plane)
	for ch := 0; ch < c; ch++ {
		s := float32(0)
		for i := ch * plane; i < (ch+1)*plane; i++ {
			s += img[i]
		}
		out[ch] = s * inv
	}
}
