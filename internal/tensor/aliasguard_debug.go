//go:build fhdnndebug

package tensor

import (
	"fmt"
	"unsafe"
)

// guardNoAlias panics if dst overlaps either input slice. It backs the
// static aliasing rule in internal/analysis with a runtime check for the
// cases static analysis cannot see (slices arriving through interfaces,
// reflection, or cgo): build with -tags fhdnndebug and any overlapping
// Into/Accum call fails loudly at the call site instead of silently
// reading half-written output. Release builds compile the stub in
// aliasguard_release.go instead, so the hot kernels pay nothing.
func guardNoAlias(op string, dst, s1, s2 []float32) {
	if overlaps(dst, s1) {
		panic(fmt.Sprintf("tensor: %s dst overlaps first input (dst %p len %d); Into/Accum kernels require non-overlapping buffers", op, unsafe.SliceData(dst), len(dst)))
	}
	if overlaps(dst, s2) {
		panic(fmt.Sprintf("tensor: %s dst overlaps second input (dst %p len %d); Into/Accum kernels require non-overlapping buffers", op, unsafe.SliceData(dst), len(dst)))
	}
}

// overlaps reports whether the element ranges of a and b intersect.
func overlaps(a, b []float32) bool {
	if len(a) == 0 || len(b) == 0 {
		return false
	}
	const esz = unsafe.Sizeof(float32(0))
	alo := uintptr(unsafe.Pointer(unsafe.SliceData(a)))
	ahi := alo + uintptr(len(a))*esz
	blo := uintptr(unsafe.Pointer(unsafe.SliceData(b)))
	bhi := blo + uintptr(len(b))*esz
	return alo < bhi && blo < ahi
}
