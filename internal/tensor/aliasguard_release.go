//go:build !fhdnndebug

package tensor

// guardNoAlias is the release-build stub of the debug aliasing guard (see
// aliasguard_debug.go). It compiles to nothing so the Into kernels stay
// allocation- and branch-free in production builds; the static aliasing
// rule in internal/analysis is the always-on line of defense.
func guardNoAlias(op string, dst, s1, s2 []float32) {}
