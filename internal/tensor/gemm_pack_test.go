package tensor

import (
	"math/rand"
	"testing"
)

// Property tests for the packed TransB kernel (pack.go + gemmTransB). The
// pack path only engages above transBPackCutoff with at least
// transBPackMinRows rows, so the shape lists below straddle the cutoff on
// purpose: every run exercises the scalar kernel, the packed kernel, and
// the handoff between them.

// packShapes all route through the packed path (m >= transBPackMinRows,
// m*k*n >= transBPackCutoff) and include tails in every dimension: m, k,
// and n each take values that are not multiples of the 4-wide tiles.
var packShapes = [][3]int{
	{4, 64, 64},    // minimum row count for packing
	{64, 64, 64},   // everything a multiple of the tiles
	{61, 67, 59},   // odd everywhere
	{33, 129, 5},   // n below one saxpyQuad window plus tail
	{7, 31, 130},   // wide n with a 2-element tail
	{127, 4, 97},   // k exactly one unroll step
	{5, 257, 33},   // k tail of 1 after 64 unrolled steps
	{128, 33, 127}, // packTile straddling: k and n just over/under 32
}

// scalarShapes stay below the packing thresholds and keep the legacy
// 2x4-register-tile kernel covered.
var scalarShapes = [][3]int{
	{1, 7, 1}, {3, 5, 2}, {2, 3, 130}, {17, 23, 31}, {70, 3, 70}, {3, 4096, 2},
}

func refTransBInto(c, a, b []float32, m, k, n int, accum bool) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			if accum {
				s = c[i*n+j]
			}
			for kk := 0; kk < k; kk++ {
				s += float32(a[i*k+kk] * b[j*k+kk])
			}
			c[i*n+j] = s
		}
	}
}

// TestPackedTransBBitIdenticalAcrossWorkers pins the packed kernel's
// determinism contract for worker counts 1..8, overwrite and accumulate:
// against the scalar ascending-k reference chain in default builds, and
// against the kernel's own one-worker result always (the fhdnnfast FMA
// build keeps cross-worker identity while dropping scalar-reference
// identity).
func TestPackedTransBBitIdenticalAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, shapes := range [][][3]int{packShapes, scalarShapes} {
		for _, sh := range shapes {
			m, k, n := sh[0], sh[1], sh[2]
			a := Randn(rng, 1, m, k)
			bt := Randn(rng, 1, n, k)
			seed := Randn(rng, 1, m, n)
			for _, accum := range []bool{false, true} {
				want := New(m, n)
				if accum {
					want.CopyFrom(seed)
				}
				refTransBInto(want.data, a.data, bt.data, m, k, n, accum)
				if FastKernels() {
					old := SetWorkers(1)
					if accum {
						want.CopyFrom(seed)
						MatMulTransBAccum(want, a, bt)
					} else {
						MatMulTransBInto(want, a, bt)
					}
					SetWorkers(old)
				}
				for w := 1; w <= 8; w++ {
					old := SetWorkers(w)
					got := New(m, n)
					if accum {
						got.CopyFrom(seed)
						MatMulTransBAccum(got, a, bt)
					} else {
						MatMulTransBInto(got, a, bt)
					}
					SetWorkers(old)
					name := "MatMulTransBInto"
					if accum {
						name = "MatMulTransBAccum"
					}
					bitsEqual(t, name, got.data, want.data)
				}
			}
		}
	}
}

// TestPackTransBLayout pins the scratch layout directly: bt[kk*n+j] must
// equal b[j*k+kk] for every element, for shapes around the packTile edge
// and at every worker count (the parallel pack owns disjoint kk bands).
func TestPackTransBLayout(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, sh := range [][2]int{{1, 1}, {3, 5}, {32, 32}, {31, 33}, {64, 65}, {130, 257}} {
		n, k := sh[0], sh[1]
		b := Randn(rng, 1, n, k)
		for _, w := range []int{1, 3, 8} {
			withWorkers(t, w)
			bt := make([]float32, k*n)
			packTransB(bt, b.data, k, n)
			for j := 0; j < n; j++ {
				for kk := 0; kk < k; kk++ {
					if bt[kk*n+j] != b.data[j*k+kk] {
						t.Fatalf("n=%d k=%d workers=%d: bt[%d,%d] = %v, want %v",
							n, k, w, kk, j, bt[kk*n+j], b.data[j*k+kk])
					}
				}
			}
		}
	}
}

// TestPackedTransBZeroAllocsSerial asserts the sync.Pool scratch makes the
// packed path allocation-free in steady state on the serial path, for
// both overwrite and accumulate, including a shape with tails.
func TestPackedTransBZeroAllocsSerial(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts at random under the race detector; the 0 allocs/op contract is asserted in non-race runs")
	}
	withWorkers(t, 1)
	rng := rand.New(rand.NewSource(43))
	for _, sh := range [][3]int{{64, 64, 64}, {61, 67, 59}} {
		m, k, n := sh[0], sh[1], sh[2]
		if m*k*n < transBPackCutoff {
			t.Fatalf("shape %v does not reach the packed path", sh)
		}
		a := Randn(rng, 1, m, k)
		bt := Randn(rng, 1, n, k)
		dst := New(m, n)
		if allocs := testing.AllocsPerRun(10, func() { MatMulTransBInto(dst, a, bt) }); allocs != 0 {
			t.Errorf("packed MatMulTransBInto %v: %v allocs/op, want 0", sh, allocs)
		}
		if allocs := testing.AllocsPerRun(10, func() { MatMulTransBAccum(dst, a, bt) }); allocs != 0 {
			t.Errorf("packed MatMulTransBAccum %v: %v allocs/op, want 0", sh, allocs)
		}
	}
}

// TestPackBufGrowsAndRecycles covers the pool wrapper: an undersized
// buffer is regrown, a big-enough one is reused as-is.
func TestPackBufGrowsAndRecycles(t *testing.T) {
	pb := getPackBuf(16)
	if cap(pb.data) < 16 {
		t.Fatalf("getPackBuf(16): cap %d", cap(pb.data))
	}
	pb.data = pb.data[:16]
	putPackBuf(pb)
	pb2 := getPackBuf(8)
	if cap(pb2.data) < 8 {
		t.Fatalf("getPackBuf(8) after put: cap %d", cap(pb2.data))
	}
	pb3 := getPackBuf(1 << 12)
	if cap(pb3.data) < 1<<12 {
		t.Fatalf("getPackBuf(4096): cap %d", cap(pb3.data))
	}
	putPackBuf(pb2)
	putPackBuf(pb3)
}

func BenchmarkMatMulTransBNaive256(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	dst, x := New(256, 256), Randn(rng, 1, 256, 256)
	y := Randn(rng, 1, 256, 256)
	b.SetBytes(3 * 256 * 256 * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		refTransBInto(dst.Data(), x.Data(), y.Data(), 256, 256, 256, false)
	}
}
