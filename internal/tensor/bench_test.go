package tensor

import (
	"math/rand"
	"testing"
)

func BenchmarkMatMul64(b *testing.B)  { benchMatMul(b, 64) }
func BenchmarkMatMul256(b *testing.B) { benchMatMul(b, 256) }

func benchMatMul(b *testing.B, n int) {
	rng := rand.New(rand.NewSource(1))
	x := Randn(rng, 1, n, n)
	y := Randn(rng, 1, n, n)
	dst := New(n, n)
	b.SetBytes(int64(8 * n * n * n)) // ~2n^3 flops at 4 bytes read/write
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(dst, x, y)
	}
}

func BenchmarkMatMulTransB(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x := Randn(rng, 1, 128, 256)
	y := Randn(rng, 1, 128, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulTransB(x, y)
	}
}

func BenchmarkMatVec(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	a := Randn(rng, 1, 4096, 512)
	x := Randn(rng, 1, 512).Data()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatVec(a, x)
	}
}

func BenchmarkIm2Col(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	g := ConvGeom{InC: 16, InH: 32, InW: 32, KH: 3, KW: 3, Stride: 1, Pad: 1}
	img := Randn(rng, 1, g.InC*g.InH*g.InW).Data()
	col := make([]float32, g.ColRows()*g.ColCols())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Im2Col(img, col)
	}
}

func BenchmarkCol2Im(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	g := ConvGeom{InC: 16, InH: 32, InW: 32, KH: 3, KW: 3, Stride: 1, Pad: 1}
	col := Randn(rng, 1, g.ColRows()*g.ColCols()).Data()
	img := make([]float32, g.InC*g.InH*g.InW)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Col2Im(col, img)
	}
}

func BenchmarkMaxPool2D(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	img := Randn(rng, 1, 16*32*32).Data()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaxPool2D(img, 16, 32, 32, 2, 2)
	}
}
