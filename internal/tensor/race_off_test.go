//go:build !race

package tensor

// See race_on_test.go.
const raceEnabled = false
