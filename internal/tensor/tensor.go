// Package tensor provides the dense float32 tensor type and the linear
// algebra kernels (matrix multiplication, im2col convolution lowering,
// pooling, elementwise arithmetic) that every other subsystem in this
// repository builds on. It is deliberately small: row-major storage, explicit
// shapes, no autograd — gradients are computed layer by layer in package nn.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense, row-major float32 array with an explicit shape.
// The zero value is an empty tensor; use New or the constructors below.
type Tensor struct {
	shape []int
	data  []float32
}

// New returns a zero-filled tensor with the given shape.
// It panics if any dimension is negative.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return &Tensor{shape: append([]int(nil), shape...), data: make([]float32, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); its length must equal the shape volume.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (volume %d)", len(data), shape, n))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: data}
}

// Full returns a tensor with every element set to v.
func Full(v float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Randn returns a tensor with elements drawn i.i.d. from N(0, std^2).
func Randn(rng *rand.Rand, std float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = float32(rng.NormFloat64() * std)
	}
	return t
}

// RandUniform returns a tensor with elements drawn i.i.d. from U[lo, hi).
func RandUniform(rng *rand.Rand, lo, hi float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = float32(lo + rng.Float64()*(hi-lo))
	}
	return t
}

// Shape returns the tensor's dimensions. The returned slice must not be
// modified.
func (t *Tensor) Shape() []int { return t.shape }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// NumDims returns the number of dimensions.
func (t *Tensor) NumDims() int { return len(t.shape) }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Data returns the underlying storage. Mutating it mutates the tensor.
func (t *Tensor) Data() []float32 { return t.data }

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := &Tensor{shape: append([]int(nil), t.shape...), data: make([]float32, len(t.data))}
	copy(c.data, t.data)
	return c
}

// Reshape returns a tensor sharing t's storage with a new shape of equal
// volume.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape volume %d to %v", len(t.data), shape))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: t.data}
}

// At returns the element at the given multi-dimensional index.
func (t *Tensor) At(idx ...int) float32 { return t.data[t.offset(idx)] }

// Set assigns v to the element at the given multi-dimensional index.
func (t *Tensor) Set(v float32, idx ...int) { t.data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index %v does not match shape %v", idx, t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// CopyFrom copies src's elements into t. Shapes must have equal volume.
func (t *Tensor) CopyFrom(src *Tensor) {
	if len(t.data) != len(src.data) {
		panic("tensor: CopyFrom volume mismatch")
	}
	copy(t.data, src.data)
}

// AddInPlace adds o elementwise into t.
func (t *Tensor) AddInPlace(o *Tensor) {
	if len(t.data) != len(o.data) {
		panic("tensor: AddInPlace volume mismatch")
	}
	for i, v := range o.data {
		t.data[i] += v
	}
}

// SubInPlace subtracts o elementwise from t.
func (t *Tensor) SubInPlace(o *Tensor) {
	if len(t.data) != len(o.data) {
		panic("tensor: SubInPlace volume mismatch")
	}
	for i, v := range o.data {
		t.data[i] -= v
	}
}

// Scale multiplies every element of t by s.
func (t *Tensor) Scale(s float32) {
	for i := range t.data {
		t.data[i] *= s
	}
}

// AXPY computes t += a*x elementwise.
func (t *Tensor) AXPY(a float32, x *Tensor) {
	if len(t.data) != len(x.data) {
		panic("tensor: AXPY volume mismatch")
	}
	for i, v := range x.data {
		t.data[i] += a * v
	}
}

// Hadamard multiplies t elementwise by o, in place.
func (t *Tensor) Hadamard(o *Tensor) {
	if len(t.data) != len(o.data) {
		panic("tensor: Hadamard volume mismatch")
	}
	for i, v := range o.data {
		t.data[i] *= v
	}
}

// Sum returns the sum of all elements (accumulated in float64 for accuracy).
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.data {
		//fhdnn:allow float64 deliberate high-precision reduction; Sum is a diagnostic, not part of the bit-identical kernel contract
		s += float64(v)
	}
	return s
}

// Mean returns the arithmetic mean of all elements.
func (t *Tensor) Mean() float64 {
	if len(t.data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.data))
}

// Norm returns the L2 norm of all elements.
func (t *Tensor) Norm() float64 {
	s := 0.0
	for _, v := range t.data {
		//fhdnn:allow float64 deliberate high-precision reduction; Norm is a diagnostic, not part of the bit-identical kernel contract
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// ArgMax returns the flat index of the maximum element.
func (t *Tensor) ArgMax() int {
	best, bi := float32(math.Inf(-1)), 0
	for i, v := range t.data {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// Equal reports whether t and o have identical shapes and elements within
// absolute tolerance tol.
func (t *Tensor) Equal(o *Tensor, tol float64) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	for i := range t.data {
		//fhdnn:allow float64 tolerance comparison happens in float64 by design; Equal is test support, not a kernel
		if math.Abs(float64(t.data[i]-o.data[i])) > tol {
			return false
		}
	}
	return true
}

// String renders a short description of the tensor for debugging.
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor%v(%d elems)", t.shape, len(t.data))
}
