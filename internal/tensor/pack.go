package tensor

import "sync"

// B-transpose packing for the dot-product GEMM layout (C = A*B^T).
//
// The dot layout cannot be vectorized directly without breaking the
// determinism contract: a SIMD dot product splits one output element's
// k-reduction across lanes and reorders the adds in the horizontal
// reduction, so its bits diverge from the serial ascending-k chain. The
// AXPY layout has no such problem — each lane is a different output
// element's own chain — which is why saxpyQuad exists only for it. So
// instead of a dot microkernel, gemmTransB transposes B (n x k) into a
// k x n scratch tile and runs the AXPY kernel over it: identical
// per-element reduction order, identical bits, ~5x the throughput. The
// pack costs O(k*n) against O(m*k*n) compute, so it amortizes out for
// any non-trivial m.

const (
	// packTile is the square tile edge of the blocked transpose. A
	// 32x32 float32 tile is 4 KiB per operand — both the strided and
	// the contiguous side stay resident in L1 while the tile is walked.
	packTile = 32

	// transBPackCutoff is the m*k*n multiply-add count above which
	// packing wins. Below it the 2x4-register-tile scalar kernel is
	// already memory-friendly and the pack + pool round trip dominates.
	transBPackCutoff = 16 * 1024

	// transBPackMinRows: the pack is O(k*n) overhead amortized over m
	// output rows; under this row count the scalar kernel wins even for
	// large k*n (the m=1 case is a matvec in disguise).
	transBPackMinRows = 4
)

// packBuf wraps a pooled scratch slice behind a stable pointer, so the
// Get/Put round trip moves one pointer and never re-boxes a slice header
// (Put(&local) would heap-allocate the header on every call).
type packBuf struct {
	data []float32
}

var packPool sync.Pool

// getPackBuf returns a pooled scratch buffer with at least n elements of
// capacity. Steady state performs zero allocations; growth re-allocates
// the backing array and keeps it for future callers.
func getPackBuf(n int) *packBuf {
	pb, _ := packPool.Get().(*packBuf)
	if pb == nil {
		//fhdnn:allow hotalloc one-time pool miss; the wrapper is recycled for the life of the process
		pb = new(packBuf)
	}
	if cap(pb.data) < n {
		//fhdnn:allow hotalloc pack scratch reuses its backing array across calls; growth amortizes out
		pb.data = make([]float32, n)
	}
	return pb
}

func putPackBuf(pb *packBuf) { packPool.Put(pb) }

// packTransB transposes b (n rows x k cols, row-major) into bt (k rows x
// n cols, row-major): bt[kk*n+j] = b[j*k+kk]. The copy is pure data
// movement, so splitting it across workers cannot change bits; workers
// own disjoint kk-tile bands of bt.
func packTransB(bt, b []float32, k, n int) {
	if Workers() <= 1 || k < 2*packTile || k*n < parallelCutoff {
		packTransBBand(bt, b, 0, k, k, n)
		return
	}
	tiles := (k + packTile - 1) / packTile
	ParallelFor(tiles, func(tlo, thi int) {
		klo, khi := tlo*packTile, thi*packTile
		if khi > k {
			khi = k
		}
		packTransBBand(bt, b, klo, khi, k, n)
	})
}

// packTransBBand transposes source columns [klo, khi) of b into rows
// [klo, khi) of bt, walking packTile x packTile tiles so the strided side
// of the transpose stays within L1.
func packTransBBand(bt, b []float32, klo, khi, k, n int) {
	for j0 := 0; j0 < n; j0 += packTile {
		jmax := j0 + packTile
		if jmax > n {
			jmax = n
		}
		for kk0 := klo; kk0 < khi; kk0 += packTile {
			kmax := kk0 + packTile
			if kmax > khi {
				kmax = khi
			}
			for j := j0; j < jmax; j++ {
				brow := b[j*k : j*k+k]
				for kk := kk0; kk < kmax; kk++ {
					bt[kk*n+j] = brow[kk]
				}
			}
		}
	}
}
