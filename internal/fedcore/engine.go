package fedcore

import (
	"math/rand"
	"sync"

	"fhdnn/internal/channel"
	"fhdnn/internal/invariant"
)

// Engine is the shared synchronous round loop: it samples clients, runs
// local training on a deterministic worker pool, simulates whole-update
// dropout and uplink corruption, aggregates in client order through an
// Aggregator, accounts wire traffic, and paces evaluation. fl.HDTrainer
// and fl.CNNTrainer are thin configurations of it; the flnet server runs
// the same Aggregator under its own HTTP-driven loop.
//
// Determinism contract: every client's randomness comes from
// ClientRNG(Seed, round, id) and aggregation happens in sampled-client
// order after all workers join, so results are bit-identical for any
// Parallel value.
type Engine struct {
	Clients     int
	Fraction    float64 // paper C
	Rounds      int
	Seed        int64
	Parallel    int     // worker goroutines (<=1 means sequential)
	DropoutProb float64 // whole-update loss probability per sampled client
	// Uplink corrupts each transmitted update; nil means perfect.
	Uplink channel.Channel
	// BytesPerParam is the raw wire size of one parameter (default 4).
	BytesPerParam int
	// EvalEvery paces Evaluate (every round if <=1); skipped rounds carry
	// the previous accuracy forward, and the final round always evaluates.
	EvalEvery int

	// SampleRNG draws the per-round client sample. It is trainer-supplied
	// (not derived from Seed here) so existing trainers keep their exact
	// historical sampling streams.
	SampleRNG *rand.Rand
	// Agg folds the round's received updates into the global vector.
	Agg Aggregator
	// Global is the flat global parameter vector, committed in place.
	Global []float32

	// BeginRound, when set, runs before sampling each round (per-round
	// state such as a partial-update mask).
	BeginRound func(round int)
	// Train runs local training for one sampled client and returns its
	// update; ok=false skips the client (e.g. an empty shard). worker
	// identifies the pool slot for worker-local state (model replicas).
	Train func(worker, round, id int, rng *rand.Rand) (u Update, ok bool)
	// WireCount, when set, overrides the per-update element count charged
	// to traffic accounting (partial transmissions).
	WireCount func(u Update) int
	// AfterCommit, when set, runs after the aggregate is committed to
	// Global and before evaluation (e.g. pushing flat weights back into a
	// network's parameter tensors).
	AfterCommit func(round int)
	// Evaluate measures global test accuracy.
	Evaluate func() float64
	// OnRound receives each completed round's statistics.
	OnRound func(RoundStats)
}

// RoundStats records one completed communication round.
type RoundStats struct {
	Round        int
	Participants int
	Bytes        int64
	MeanLoss     float64 // mean local loss of participants (0 if unused)
	TestAccuracy float64
}

// Workers returns the effective worker count.
func (e *Engine) Workers() int {
	if e.Parallel < 1 {
		return 1
	}
	return e.Parallel
}

// Run executes the configured number of rounds.
func (e *Engine) Run() {
	if e.Agg == nil || e.Train == nil || e.Evaluate == nil || e.OnRound == nil || e.SampleRNG == nil {
		invariant.Fail("fedcore: Engine needs Agg, Train, Evaluate, OnRound and SampleRNG")
	}
	if e.Clients <= 0 || e.Rounds <= 0 {
		invariant.Failf("fedcore: Engine needs positive Clients and Rounds, got %d/%d", e.Clients, e.Rounds)
	}
	uplink := e.Uplink
	if uplink == nil {
		uplink = channel.Perfect{}
	}
	bpp := e.BytesPerParam
	if bpp == 0 {
		bpp = 4
	}
	evalEvery := e.EvalEvery
	if evalEvery < 1 {
		evalEvery = 1
	}

	prevAcc := 0.0
	for round := 1; round <= e.Rounds; round++ {
		if e.BeginRound != nil {
			e.BeginRound(round)
		}
		ids := SampleClients(e.SampleRNG, e.Clients, e.Fraction)
		received := make([]*Update, len(ids))

		// Sized for the whole round so the dispatch loop below never
		// blocks on a slow worker (found by fhdnn-lint chandisc: an
		// unbuffered jobs channel turns every send into a rendezvous).
		jobs := make(chan int, len(ids))
		var wg sync.WaitGroup
		for w := 0; w < e.Workers(); w++ {
			wg.Add(1)
			//fhdnn:allow goroutine deterministic worker pool: Parallel is a fixed slot count, workers need stable ids for model replicas, all join before client-order aggregation
			go func(worker int) {
				defer wg.Done()
				for ji := range jobs {
					id := ids[ji]
					rng := ClientRNG(e.Seed, round, id)
					u, ok := e.Train(worker, round, id, rng)
					if !ok {
						continue
					}
					if e.DropoutProb > 0 && rng.Float64() < e.DropoutProb {
						continue // update lost in transit
					}
					u.Params = uplink.Transmit(u.Params, rng)
					u.Round = round
					u.Client = id
					received[ji] = &u
				}
			}(w)
		}
		for ji := range ids {
			jobs <- ji
		}
		close(jobs)
		wg.Wait()

		// Aggregate in client order for determinism.
		var bytes int64
		var lossSum float64
		participants := 0
		for _, u := range received {
			if u == nil {
				continue
			}
			e.Agg.Add(*u)
			n := len(u.Params)
			if e.WireCount != nil {
				n = e.WireCount(*u)
			}
			bytes += UpdateWireBytes(uplink, n, bpp)
			lossSum += u.Loss
			participants++
		}
		e.Agg.Commit(e.Global)
		e.Agg.Reset()
		if e.AfterCommit != nil {
			e.AfterCommit(round)
		}

		st := RoundStats{Round: round, Participants: participants, Bytes: bytes}
		if participants > 0 {
			st.MeanLoss = lossSum / float64(participants)
		}
		if round%evalEvery == 0 || round == e.Rounds {
			st.TestAccuracy = e.Evaluate()
		} else {
			st.TestAccuracy = prevAcc
		}
		prevAcc = st.TestAccuracy
		e.OnRound(st)
	}
}
