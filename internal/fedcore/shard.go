package fedcore

import (
	"strconv"

	"fhdnn/internal/invariant"
)

// Hierarchical (sharded) aggregation. One Aggregator behind one lock is
// the scaling ceiling of the flat server: every client upload serializes
// on the same accumulator. A ShardedAggregator splits the round across N
// inner aggregators — clients are routed to a shard by a stable hash of
// their identity — and folds the shards into a root at commit time
// through the same Add/Commit contract, so the tree changes where
// contention happens without changing any math:
//
//   - FedAvg and Bundle shards carry partial float64 sums; folding adds
//     the partial sums, which is exactly the flat accumulation re-
//     associated. On integer-valued updates (where float64 addition is
//     exact) the committed global is bit-identical to the flat
//     aggregator for every shard count and every add order.
//   - Median and TrimmedMean shards retain their rows; folding
//     concatenates them, and Commit sorts per coordinate, so the
//     committed global is bit-identical to the flat aggregator for ANY
//     real-valued updates, shard count, and add order.
//   - NormClip clips at Add time inside each shard — clipping is
//     per-update, so where it happens does not matter.
//
// The fold direction is non-destructive: CommitLive builds a fresh root
// from the factory and merges the shards into it, leaving every shard's
// state untouched until Reset. That is what lets a caller exclude dead
// shards (CommitLive with a live mask) and still retry or inspect them.
//
// Concurrency contract: ShardedAggregator itself is not safe for
// concurrent use, same as every other Aggregator. What sharding buys a
// concurrent caller is PARTITIONED ownership: distinct goroutines may
// each own a distinct shard (via Shard(i)) and Add to it without locks,
// provided commits are fenced by a barrier that quiesces all shard
// owners first — exactly what flnet's sharded server does.

// Mergeable is implemented by aggregators whose accumulated round state
// can be folded into another instance of the same concrete type. MergeFrom
// must not modify other, so a caller can merge one shard into several
// candidate roots (or skip dead shards and retry).
type Mergeable interface {
	Aggregator
	// MergeFrom folds other's accumulated updates into the receiver.
	// other must be the same concrete type and hold compatible
	// dimensions; a *PolicyError-free typed error is returned otherwise.
	MergeFrom(other Aggregator) error
}

// mergeTypeError reports an attempt to fold mismatched aggregator types.
type mergeTypeError struct{ dst, src string }

func (e *mergeTypeError) Error() string {
	return "fedcore: cannot merge " + e.src + " into " + e.dst
}

// MergeFrom implements Mergeable: shard partial sums add elementwise.
func (a *FedAvg) MergeFrom(other Aggregator) error {
	o, ok := other.(*FedAvg)
	if !ok {
		return &mergeTypeError{dst: "FedAvg", src: AggregatorName(other)}
	}
	if o.n == 0 {
		return nil
	}
	if a.sum == nil {
		a.sum = make([]float64, len(o.sum))
	}
	if len(a.sum) != len(o.sum) {
		return &mergeTypeError{dst: "FedAvg", src: "FedAvg with mismatched length"}
	}
	for i, v := range o.sum {
		a.sum[i] += v
	}
	a.totalW += o.totalW
	a.n += o.n
	return nil
}

// MergeFrom implements Mergeable: shard partial sums add elementwise. The
// receiver's Mask (not the shard's) governs the eventual Commit.
func (a *Bundle) MergeFrom(other Aggregator) error {
	o, ok := other.(*Bundle)
	if !ok {
		return &mergeTypeError{dst: "Bundle", src: AggregatorName(other)}
	}
	if o.n == 0 {
		return nil
	}
	if a.sum == nil {
		a.sum = make([]float64, len(o.sum))
	}
	if len(a.sum) != len(o.sum) {
		return &mergeTypeError{dst: "Bundle", src: "Bundle with mismatched length"}
	}
	for i, v := range o.sum {
		a.sum[i] += v
	}
	a.n += o.n
	return nil
}

// MergeFrom implements Mergeable: the shard's retained rows are
// concatenated (by reference — rows stay immutable until Reset), so the
// root's per-coordinate sort sees every update exactly as the flat
// aggregator would.
func (a *Median) MergeFrom(other Aggregator) error {
	o, ok := other.(*Median)
	if !ok {
		return &mergeTypeError{dst: "Median", src: AggregatorName(other)}
	}
	return mergeRows(&a.rows, o.rows, "Median")
}

// MergeFrom implements Mergeable; see Median.MergeFrom.
func (a *TrimmedMean) MergeFrom(other Aggregator) error {
	o, ok := other.(*TrimmedMean)
	if !ok {
		return &mergeTypeError{dst: "TrimmedMean", src: AggregatorName(other)}
	}
	if a.Frac != o.Frac {
		return &mergeTypeError{dst: "TrimmedMean", src: "TrimmedMean with different Frac"}
	}
	return mergeRows(&a.rows, o.rows, "TrimmedMean")
}

// mergeRows concatenates row sets, enforcing one row length round-wide.
func mergeRows(dst *[][]float32, src [][]float32, kind string) error {
	for _, row := range src {
		if len(*dst) > 0 && len(row) != len((*dst)[0]) {
			return &mergeTypeError{dst: kind, src: kind + " with mismatched row length"}
		}
		*dst = append(*dst, row)
	}
	return nil
}

// MergeFrom implements Mergeable: pending deltas are concatenated.
func (a *AsyncStaleness) MergeFrom(other Aggregator) error {
	o, ok := other.(*AsyncStaleness)
	if !ok {
		return &mergeTypeError{dst: "AsyncStaleness", src: AggregatorName(other)}
	}
	a.pending = append(a.pending, o.pending...)
	return nil
}

// MergeFrom implements Mergeable: the inner aggregators merge and the
// clip counters add (each shard already clipped its own updates at Add
// time, so the merged state carries only already-clipped rows).
func (a *NormClip) MergeFrom(other Aggregator) error {
	o, ok := other.(*NormClip)
	if !ok {
		return &mergeTypeError{dst: "NormClip", src: AggregatorName(other)}
	}
	if a.Bound != o.Bound {
		return &mergeTypeError{dst: "NormClip", src: "NormClip with different Bound"}
	}
	inner, ok := a.Inner.(Mergeable)
	if !ok {
		return &mergeTypeError{dst: "NormClip", src: "non-mergeable inner " + AggregatorName(a.Inner)}
	}
	if err := inner.MergeFrom(o.Inner); err != nil {
		return err
	}
	a.clipped.Add(o.clipped.Load())
	return nil
}

// ShardedAggregator owns N inner aggregators and routes each update to
// one of them by a stable hash of the client identity; Commit folds the
// shards (in shard-index order) into a fresh root built by the factory
// and commits the root. See the package comment above for the
// bit-identity and concurrency contracts.
type ShardedAggregator struct {
	shards  []Aggregator
	factory func() Aggregator
	spec    string // canonical inner policy spec, for Name
}

// NewSharded builds a ShardedAggregator with n shards. factory must
// return a fresh Mergeable instance on every call (shards and the commit
// root must not share state).
func NewSharded(n int, factory func() Aggregator) (*ShardedAggregator, error) {
	if n <= 0 {
		return nil, &PolicyError{Spec: "sharded", Reason: "shard count must be positive, got " + strconv.Itoa(n)}
	}
	if factory == nil {
		return nil, &PolicyError{Spec: "sharded", Reason: "nil aggregator factory"}
	}
	shards := make([]Aggregator, n)
	for i := range shards {
		a := factory()
		if a == nil {
			return nil, &PolicyError{Spec: "sharded", Reason: "factory returned nil"}
		}
		if _, ok := a.(Mergeable); !ok {
			return nil, &PolicyError{Spec: "sharded",
				Reason: AggregatorName(a) + " is not shard-mergeable (no MergeFrom)"}
		}
		if i > 0 && a == shards[0] {
			return nil, &PolicyError{Spec: "sharded",
				Reason: "factory must return a fresh instance per call, got the same " + AggregatorName(a)}
		}
		shards[i] = a
	}
	return &ShardedAggregator{shards: shards, factory: factory, spec: AggregatorName(shards[0])}, nil
}

// Shards returns the shard count.
func (s *ShardedAggregator) Shards() int { return len(s.shards) }

// Shard returns shard i's inner aggregator. A concurrent caller may hand
// each shard to a dedicated owner goroutine; see the concurrency
// contract above.
func (s *ShardedAggregator) Shard(i int) Aggregator { return s.shards[i] }

// ShardIndex is the stable client-identity hash (32-bit FNV-1a) the
// sharded tree routes by: the same id always lands on the same of n
// shards, so per-shard client dedupe state stays local to one shard.
func ShardIndex(id string, n int) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= prime32
	}
	return int(h % uint32(n))
}

// ShardFor returns the shard index an update routes to: by ClientID when
// set, else by the numeric simulation Client id, else shard 0.
func (s *ShardedAggregator) ShardFor(u Update) int {
	if u.ClientID != "" {
		return ShardIndex(u.ClientID, len(s.shards))
	}
	if u.Client >= 0 {
		return u.Client % len(s.shards)
	}
	return 0
}

// Add implements Aggregator, routing the update to its shard.
//
//fhdnn:hotpath called once per client update on the sharded ingest path
func (s *ShardedAggregator) Add(u Update) {
	s.shards[s.ShardFor(u)].Add(u)
}

// Len implements Aggregator: total updates across all shards.
func (s *ShardedAggregator) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Len()
	}
	return n
}

// Commit implements Aggregator: fold every shard into a fresh root and
// commit the root. Shard state is left untouched (call Reset afterwards,
// as with every Aggregator).
func (s *ShardedAggregator) Commit(global []float32) {
	s.CommitLive(global, nil)
}

// CommitLive folds only the shards whose live flag is set (nil = all)
// into a fresh root and commits it — the degraded partial-aggregation
// path when part of the tree has died. With every live shard empty the
// commit is a no-op and the previous global carries forward.
func (s *ShardedAggregator) CommitLive(global []float32, live []bool) {
	if live != nil && len(live) != len(s.shards) {
		invariant.Failf("fedcore: CommitLive mask length %d, want %d", len(live), len(s.shards))
	}
	root := s.factory().(Mergeable)
	for i, sh := range s.shards {
		if live != nil && !live[i] {
			continue
		}
		if err := root.MergeFrom(sh); err != nil {
			invariant.Failf("fedcore: sharded commit: %v", err)
		}
	}
	root.Commit(global)
}

// Reset implements Aggregator.
func (s *ShardedAggregator) Reset() {
	for _, sh := range s.shards {
		sh.Reset()
	}
}

// Clipped reports the total updates rescaled across all shards (nonzero
// only when the inner policy is a NormClip).
func (s *ShardedAggregator) Clipped() int64 {
	var total int64
	for _, sh := range s.shards {
		if c, ok := sh.(interface{ Clipped() int64 }); ok {
			total += c.Clipped()
		}
	}
	return total
}

// Name returns the policy spec string.
func (s *ShardedAggregator) Name() string {
	return "sharded:" + strconv.Itoa(len(s.shards)) + ":" + s.spec
}
