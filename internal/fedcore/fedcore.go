// Package fedcore is the transport-agnostic federated core shared by the
// in-process simulator (package fl) and the wire-level HTTP stack
// (package flnet). It owns the three things every federated deployment of
// this codebase needs, exactly once:
//
//   - Update and Aggregator: one representation of a client contribution
//     and the aggregation rules over it — sample-weighted FedAvg for CNN
//     weights, federated bundling for HD prototypes (paper Eq. 1, with
//     the coordinated partial-update mask of Fig. 5), and
//     staleness-discounted asynchronous folding (FedBuff/FedAsync style).
//   - Engine: the synchronous round loop (client sampling, parallel
//     deterministic workers, dropout, uplink corruption, traffic
//     accounting, evaluation cadence) that fl.HDTrainer and fl.CNNTrainer
//     configure instead of reimplementing.
//   - Envelope: a versioned, self-describing wire format (magic + version
//   - codec id + element count + CRC32) that frames any compress.Codec,
//     so the flnet protocol ships the same compressed updates the
//     simulator accounts for — WireBytes is the single sizing rule both
//     sides use, which is what keeps simulated and actual wire bytes from
//     drifting.
package fedcore

import (
	"math"
	"math/rand"
	"sort"
)

// Update is one client contribution to the global model: the flat
// parameter payload plus the metadata aggregation rules need.
type Update struct {
	// Params is the flat parameter vector (or, for asynchronous
	// aggregation, the delta against the snapshot the client trained
	// from).
	Params []float32
	// Round is the communication round the update belongs to.
	Round int
	// Client is the numeric client id in simulations (-1 if unknown).
	Client int
	// ClientID is the wire-level client identity (flnet's X-FHDnn-Client).
	ClientID string
	// Samples is the client's local dataset size; FedAvg weights by it.
	Samples int
	// Loss is the client's final local training loss (CNN trainers).
	Loss float64
	// Staleness counts global merges since the client fetched its
	// snapshot; only the asynchronous aggregator consults it.
	Staleness int
}

// Aggregator folds client updates into the global parameter vector. Add
// is called once per received update (in deterministic client order by
// the Engine), Commit applies the aggregate to the global vector, and
// Reset clears state for the next round. Implementations are not safe for
// concurrent use; callers serialize (the Engine aggregates after the
// worker barrier, flnet.Server under its mutex).
type Aggregator interface {
	Add(u Update)
	// Len reports how many updates have been added since the last Reset.
	Len() int
	// Commit applies the aggregate to global. With no updates added it is
	// a no-op, so an empty round carries the previous global forward.
	Commit(global []float32)
	Reset()
}

// FedAvg is sample-count-weighted federated averaging (McMahan et al.):
// Commit replaces the global vector with sum(w_i * x_i) / sum(w_i) where
// w_i is the client's Samples.
type FedAvg struct {
	sum    []float64
	totalW float64
	n      int
}

// Add implements Aggregator.
//
//fhdnn:hotpath called once per client update inside the round loop
func (a *FedAvg) Add(u Update) {
	if a.sum == nil {
		//fhdnn:allow hotalloc first Add after Reset sizes the accumulator once per round
		a.sum = make([]float64, len(u.Params))
	}
	w := float64(u.Samples)
	for i, v := range u.Params {
		a.sum[i] += w * float64(v)
	}
	a.totalW += w
	a.n++
}

// Len implements Aggregator.
func (a *FedAvg) Len() int { return a.n }

// Commit implements Aggregator.
//
//fhdnn:hotpath applies the round aggregate in place
func (a *FedAvg) Commit(global []float32) {
	if a.totalW <= 0 {
		return
	}
	inv := 1 / a.totalW
	for i := range global {
		global[i] = float32(a.sum[i] * inv)
	}
}

// Reset implements Aggregator.
func (a *FedAvg) Reset() {
	a.sum = nil
	a.totalW = 0
	a.n = 0
}

// Bundle is federated bundling over HD class prototypes (paper Eq. 1
// followed by 1/N normalization — cosine classification is
// scale-invariant, the normalization only bounds magnitudes). When Mask
// is set, Commit refreshes only the masked entries and leaves the rest of
// the global vector at its previous values: the coordinated
// partial-update bandwidth knob that cashes in the paper's
// holographic-representation property (Fig. 5).
type Bundle struct {
	// Mask, when non-nil, restricts Commit to these entry indices.
	Mask []int

	sum []float64
	n   int
}

// Add implements Aggregator.
//
//fhdnn:hotpath called once per client update inside the round loop
func (a *Bundle) Add(u Update) {
	if a.sum == nil {
		//fhdnn:allow hotalloc first Add after Reset sizes the accumulator once per round
		a.sum = make([]float64, len(u.Params))
	}
	for i, v := range u.Params {
		a.sum[i] += float64(v)
	}
	a.n++
}

// Len implements Aggregator.
func (a *Bundle) Len() int { return a.n }

// Commit implements Aggregator.
//
//fhdnn:hotpath applies the round aggregate in place
func (a *Bundle) Commit(global []float32) {
	if a.n == 0 {
		return
	}
	inv := 1 / float64(a.n)
	if a.Mask != nil {
		for _, i := range a.Mask {
			global[i] = float32(a.sum[i] * inv)
		}
		return
	}
	for i := range global {
		global[i] = float32(a.sum[i] * inv)
	}
}

// Reset implements Aggregator (the Mask persists; it is per-round state
// owned by the caller).
func (a *Bundle) Reset() {
	a.sum = nil
	a.n = 0
}

// AsyncStaleness is staleness-discounted asynchronous aggregation
// (FedAsync/FedBuff style): each update's Params is a *delta* against the
// global snapshot the client trained from, and Commit adds each delta to
// the global vector scaled by 1/(1+staleness)^Alpha. Alpha 0 disables the
// discount. Unlike the synchronous aggregators, Commit accumulates into
// the global vector rather than replacing it — a stale delta is still a
// valid bundle contribution, which is exactly why HD models suit
// asynchronous aggregation.
type AsyncStaleness struct {
	Alpha float64

	pending []Update
}

// Weight returns the discount applied to an update of the given staleness.
func (a *AsyncStaleness) Weight(staleness int) float64 {
	if a.Alpha <= 0 {
		return 1
	}
	return 1 / math.Pow(1+float64(staleness), a.Alpha)
}

// Add implements Aggregator.
//
//fhdnn:hotpath called once per received delta on the async merge path
func (a *AsyncStaleness) Add(u Update) {
	//fhdnn:allow hotalloc pending reuses its backing array across Reset; growth amortizes out
	a.pending = append(a.pending, u)
}

// Len implements Aggregator.
func (a *AsyncStaleness) Len() int { return len(a.pending) }

// Commit implements Aggregator.
//
//fhdnn:hotpath applies the round aggregate in place
func (a *AsyncStaleness) Commit(global []float32) {
	for _, u := range a.pending {
		w := float32(a.Weight(u.Staleness))
		for i, d := range u.Params {
			global[i] += w * d
		}
	}
}

// Reset implements Aggregator.
func (a *AsyncStaleness) Reset() { a.pending = a.pending[:0] }

// ClientRNG derives the deterministic random stream for one client in one
// round: every client's randomness is keyed by (seed, round, id), so
// simulation results are bit-identical regardless of worker count. The
// constants are arbitrary odd 64-bit mixers.
func ClientRNG(seed int64, round, id int) *rand.Rand {
	h := seed
	h ^= (int64(round) + 1) * -0x61C8864680B583EB
	h ^= (int64(id) + 1) * 0x2545F4914F6CDD1D
	return rand.New(rand.NewSource(h))
}

// SampleClients picks max(1, round(frac*n)) distinct client ids, sorted.
func SampleClients(rng *rand.Rand, n int, frac float64) []int {
	k := int(frac*float64(n) + 0.5)
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	ids := rng.Perm(n)[:k]
	sort.Ints(ids)
	return ids
}
