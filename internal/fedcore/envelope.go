package fedcore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"strconv"
	"strings"

	"fhdnn/internal/compress"
)

// The wire envelope is the self-describing frame around every compressed
// update on the flnet protocol. Layout (little-endian):
//
//	offset 0   4  magic "FHDU"
//	       4   1  format version (currently 1)
//	       5   1  codec id (see CodecID)
//	       6   2  reserved, must be zero
//	       8   4  element count (float32 values in the decoded update)
//	      12   4  payload length in bytes
//	      16   4  CRC32 (IEEE) of the payload
//	      20   …  codec payload
//
// The element count makes the frame self-describing (a receiver that
// knows its model dimensions cross-checks it; one that does not can still
// decode), the codec id is what the Content-Type/header handshake
// negotiates, and the checksum turns line corruption into a typed decode
// error that the server's quarantine path can refuse with HTTP 422
// instead of folding garbage into the global model.

// EnvelopeMagic starts every envelope.
var EnvelopeMagic = [4]byte{'F', 'H', 'D', 'U'}

// EnvelopeVersion is the current format version.
const EnvelopeVersion = 1

// EnvelopeOverhead is the fixed header size in bytes.
const EnvelopeOverhead = 20

// maxEnvelopeElems caps the element count a decoder will allocate for
// when the caller cannot supply an expected size (matches the 64M-entry
// envelope of hdc serialization).
const maxEnvelopeElems = 1 << 26

// CodecID identifies a codec on the wire. IDs are part of the protocol;
// never renumber them.
type CodecID uint8

// Wire codec ids.
const (
	CodecRaw     CodecID = 0
	CodecFloat16 CodecID = 1
	CodecInt8    CodecID = 2
	CodecTopK    CodecID = 3
)

// codecNames are the canonical handshake names, indexed by CodecID.
var codecNames = [...]string{"raw", "float16", "int8", "topk"}

// CodecName returns the canonical handshake name of a codec id
// ("unknown" for an unregistered id).
func CodecName(id CodecID) string {
	if int(id) < len(codecNames) {
		return codecNames[id]
	}
	return "unknown"
}

// AllCodecIDs lists every registered codec id, in wire order.
func AllCodecIDs() []CodecID {
	return []CodecID{CodecRaw, CodecFloat16, CodecInt8, CodecTopK}
}

// CodecFor returns a decoder instance for a wire codec id. The TopK
// instance carries no Frac — decoding reads the element count from the
// payload, so none is needed.
func CodecFor(id CodecID) (compress.Codec, bool) {
	switch id {
	case CodecRaw:
		return compress.Raw{}, true
	case CodecFloat16:
		return compress.Float16{}, true
	case CodecInt8:
		return compress.Int8{}, true
	case CodecTopK:
		return compress.TopK{}, true
	}
	return nil, false
}

// CodecIDOf maps a codec instance to its wire id.
func CodecIDOf(c compress.Codec) (CodecID, bool) {
	switch c.(type) {
	case compress.Raw:
		return CodecRaw, true
	case compress.Float16:
		return CodecFloat16, true
	case compress.Int8:
		return CodecInt8, true
	case compress.TopK:
		return CodecTopK, true
	}
	return 0, false
}

// ParseCodec resolves a handshake name ("raw", "float16", "int8", "topk"
// or "topk:0.1" with an explicit kept fraction) to a codec instance.
func ParseCodec(name string) (compress.Codec, error) {
	switch {
	case name == "raw":
		return compress.Raw{}, nil
	case name == "float16":
		return compress.Float16{}, nil
	case name == "int8":
		return compress.Int8{}, nil
	case name == "topk":
		return compress.TopK{Frac: 0.1}, nil
	case strings.HasPrefix(name, "topk:"):
		frac, err := strconv.ParseFloat(strings.TrimPrefix(name, "topk:"), 64)
		if err != nil || frac <= 0 || frac > 1 {
			return nil, fmt.Errorf("fedcore: bad topk fraction in %q", name)
		}
		return compress.TopK{Frac: frac}, nil
	}
	return nil, fmt.Errorf("fedcore: unknown codec %q", name)
}

// Typed envelope decode failures. All are wrapped with detail; match with
// errors.Is.
var (
	ErrEnvelopeMagic     = errors.New("fedcore: bad envelope magic")
	ErrEnvelopeVersion   = errors.New("fedcore: unsupported envelope version")
	ErrEnvelopeCodec     = errors.New("fedcore: unknown envelope codec")
	ErrEnvelopeTruncated = errors.New("fedcore: truncated envelope")
	ErrEnvelopeChecksum  = errors.New("fedcore: envelope checksum mismatch")
	ErrEnvelopeCount     = errors.New("fedcore: envelope element count mismatch")
	ErrEnvelopePayload   = errors.New("fedcore: bad envelope payload")
)

// EncodeEnvelope frames params with the given codec. It fails only for a
// codec that has no wire id.
func EncodeEnvelope(c compress.Codec, params []float32) ([]byte, error) {
	id, ok := CodecIDOf(c)
	if !ok {
		return nil, fmt.Errorf("fedcore: codec %s has no wire id", c.Name())
	}
	payload := c.Encode(params)
	out := make([]byte, EnvelopeOverhead+len(payload))
	copy(out, EnvelopeMagic[:])
	out[4] = EnvelopeVersion
	out[5] = byte(id)
	binary.LittleEndian.PutUint32(out[8:], uint32(len(params)))
	binary.LittleEndian.PutUint32(out[12:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[16:], crc32.ChecksumIEEE(payload))
	copy(out[EnvelopeOverhead:], payload)
	return out, nil
}

// DecodeEnvelope parses and validates an envelope, returning the decoded
// update and the codec it was framed with. wantN > 0 additionally
// requires the element count to match (a server that knows its model
// dimensions should always pass it — it bounds the allocation before any
// payload is touched). Every failure mode returns a typed error;
// DecodeEnvelope never panics on malformed input.
func DecodeEnvelope(data []byte, wantN int) ([]float32, CodecID, error) {
	if len(data) < EnvelopeOverhead {
		return nil, 0, fmt.Errorf("%w: %d bytes, header needs %d",
			ErrEnvelopeTruncated, len(data), EnvelopeOverhead)
	}
	if [4]byte(data[:4]) != EnvelopeMagic {
		return nil, 0, fmt.Errorf("%w: %q", ErrEnvelopeMagic, data[:4])
	}
	if data[4] != EnvelopeVersion {
		return nil, 0, fmt.Errorf("%w: %d", ErrEnvelopeVersion, data[4])
	}
	id := CodecID(data[5])
	codec, ok := CodecFor(id)
	if !ok {
		return nil, 0, fmt.Errorf("%w: id %d", ErrEnvelopeCodec, id)
	}
	if data[6] != 0 || data[7] != 0 {
		return nil, 0, fmt.Errorf("%w: nonzero reserved bytes", ErrEnvelopePayload)
	}
	count := int(binary.LittleEndian.Uint32(data[8:]))
	payloadLen := int(binary.LittleEndian.Uint32(data[12:]))
	if wantN > 0 && count != wantN {
		return nil, id, fmt.Errorf("%w: %d elements, want %d", ErrEnvelopeCount, count, wantN)
	}
	if count < 0 || count > maxEnvelopeElems {
		return nil, id, fmt.Errorf("%w: implausible element count %d", ErrEnvelopeCount, count)
	}
	payload := data[EnvelopeOverhead:]
	if payloadLen != len(payload) {
		return nil, id, fmt.Errorf("%w: header claims %d payload bytes, have %d",
			ErrEnvelopeTruncated, payloadLen, len(payload))
	}
	// Amplification cap for self-described decodes: with wantN == 0 the
	// count is the attacker's claim, and a sparse codec (top-k with k=0)
	// lets a 24-byte frame demand a maxEnvelopeElems allocation. Bound the
	// decoded size by the bytes physically received — 256 elements (1 KiB
	// of float32) per payload byte plus slack for empty updates — so the
	// allocation an envelope can cause is proportional to its own size.
	// Callers that pass wantN chose that size themselves; the cap does not
	// apply.
	if wantN == 0 && count > 64+256*len(payload) {
		return nil, id, fmt.Errorf("%w: self-described count %d from %d payload bytes",
			ErrEnvelopeCount, count, len(payload))
	}
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(data[16:]); got != want {
		return nil, id, fmt.Errorf("%w: crc32 %08x, header says %08x", ErrEnvelopeChecksum, got, want)
	}
	params, err := codec.Decode(payload, count)
	if err != nil {
		return nil, id, fmt.Errorf("%w: %v", ErrEnvelopePayload, err)
	}
	return params, id, nil
}
