package fedcore

import (
	"encoding/binary"
	"testing"

	"fhdnn/internal/compress"
)

// FuzzEnvelopeDecode hammers the wire-envelope parser with arbitrary
// bytes: malformed headers, truncated payloads, bad checksums and
// codec-id mismatches must all surface as errors, never as panics or as
// silently wrong decodes. Seeds cover a valid envelope per codec plus
// each distinct corruption class.
func FuzzEnvelopeDecode(f *testing.F) {
	params := testUpdate(32, 9)
	for _, c := range []compress.Codec{
		compress.Raw{}, compress.Float16{}, compress.Int8{}, compress.TopK{Frac: 0.25},
	} {
		data, err := EncodeEnvelope(c, params)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)               // valid
		f.Add(data[:len(data)-5]) // truncated payload
		bad := append([]byte(nil), data...)
		bad[len(bad)-1] ^= 0x80 // checksum mismatch
		f.Add(bad)
		mis := append([]byte(nil), data...)
		mis[5] = byte(CodecTopK) // codec-id mismatch vs payload
		binary.LittleEndian.PutUint32(mis[16:], crcOf(mis[EnvelopeOverhead:]))
		f.Add(mis)
	}
	f.Add([]byte{})
	f.Add([]byte("FHDU"))
	f.Add([]byte("not an envelope at all, definitely longer than the header"))

	// Boundary seeds around the decoder's hard limits: a raw frame
	// claiming exactly maxEnvelopeElems, one past it, a header whose
	// payloadLen disagrees with the buffer, a truncated header one byte
	// short of EnvelopeOverhead, and a k=0 top-k amplification probe.
	atMax := rawEnvelope(CodecRaw, maxEnvelopeElems, make([]byte, 8))
	f.Add(atMax)
	f.Add(rawEnvelope(CodecRaw, maxEnvelopeElems+1, make([]byte, 8)))
	disagree := rawEnvelope(CodecRaw, 2, make([]byte, 8))
	binary.LittleEndian.PutUint32(disagree[12:], 99) // payloadLen lies
	f.Add(disagree)
	f.Add(atMax[:EnvelopeOverhead-1])
	f.Add(rawEnvelope(CodecTopK, maxEnvelopeElems, make([]byte, 4)))

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, wantN := range []int{0, 32} {
			got, _, err := DecodeEnvelope(data, wantN)
			if err != nil {
				if got != nil {
					t.Fatal("failed decode must not return params")
				}
				continue
			}
			count := int(binary.LittleEndian.Uint32(data[8:]))
			if len(got) != count {
				t.Fatalf("decoded %d values, header says %d", len(got), count)
			}
			if wantN > 0 && len(got) != wantN {
				t.Fatalf("decoded %d values, caller expected %d", len(got), wantN)
			}
		}
	})
}
