package fedcore

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"fhdnn/internal/invariant"
)

// Byzantine-robust aggregation. FedAvg and Bundle compute a (weighted)
// mean, whose breakdown point is zero: one colluding client that stays
// inside the quarantine gates (finite values, bounded norm) can drag the
// global model anywhere. The aggregators in this file bound that
// influence:
//
//   - Median replaces the mean with the coordinate-wise median; with
//     f < n/2 poisoned updates every committed coordinate is bracketed by
//     honest values.
//   - TrimmedMean discards the ceil(frac*n) largest and smallest values
//     per coordinate before averaging, tolerating up to that many
//     one-sided outliers per coordinate.
//   - NormClip is a decorator that rescales any update whose L2 norm
//     exceeds a bound before handing it to an inner aggregator — a softer
//     alternative to the flnet norm quarantine that keeps the clipped
//     client's direction but caps its energy.
//
// All three deliberately ignore Update.Samples: a Byzantine client can
// lie about its dataset size, and a sample-weighted robust rule would
// hand it back exactly the influence the trimming removed.
//
// Determinism contract: Commit sorts each coordinate's values, so the
// committed global vector is bit-identical for every Add order and (under
// the Engine) every worker count. Storage note: like AsyncStaleness, Add
// retains u.Params until Reset; callers must not reuse the slice within a
// round (the Engine and flnet server both hand over freshly built
// slices).

// Median is the coordinate-wise median aggregator. With an even number of
// updates the two middle values are averaged in float64.
type Median struct {
	rows [][]float32
	col  []float64 // per-coordinate gather scratch, sized in Commit
}

// Add implements Aggregator.
//
//fhdnn:hotpath called once per client update inside the round loop
func (a *Median) Add(u Update) {
	checkRowLen(a.rows, u.Params, "Median")
	//fhdnn:allow hotalloc rows reuses its backing array across Reset; growth amortizes out
	a.rows = append(a.rows, u.Params)
}

// Len implements Aggregator.
func (a *Median) Len() int { return len(a.rows) }

// Commit implements Aggregator.
//
//fhdnn:hotpath applies the round aggregate in place
func (a *Median) Commit(global []float32) {
	n := len(a.rows)
	if n == 0 {
		return
	}
	if cap(a.col) < n {
		//fhdnn:allow hotalloc per-coordinate scratch sized once per round, reused across commits
		a.col = make([]float64, n)
	}
	col := a.col[:n]
	for j := range global {
		for i, row := range a.rows {
			col[i] = float64(row[j])
		}
		sort.Float64s(col)
		if n%2 == 1 {
			global[j] = float32(col[n/2])
		} else {
			global[j] = float32((col[n/2-1] + col[n/2]) / 2)
		}
	}
}

// Reset implements Aggregator.
func (a *Median) Reset() {
	clear(a.rows)
	a.rows = a.rows[:0]
}

// Name returns the policy spec string.
func (a *Median) Name() string { return "median" }

// TrimmedMean discards the k = ceil(Frac*n) largest and the k smallest
// values of each coordinate and averages the rest (in ascending value
// order, so the result is independent of Add order). Frac 0 degenerates
// to the plain unweighted mean; k is clamped so at least one value always
// survives, which makes Frac >= 0.5 behave like Median on small rounds.
type TrimmedMean struct {
	// Frac is the fraction trimmed from EACH end, in [0, 0.5).
	Frac float64

	rows [][]float32
	col  []float64
}

// Trim returns how many values are discarded from each end of a
// coordinate's sorted column when n updates were added.
func (a *TrimmedMean) Trim(n int) int {
	if a.Frac <= 0 || n == 0 {
		return 0
	}
	k := int(math.Ceil(a.Frac * float64(n)))
	if 2*k >= n {
		k = (n - 1) / 2
	}
	return k
}

// Add implements Aggregator.
//
//fhdnn:hotpath called once per client update inside the round loop
func (a *TrimmedMean) Add(u Update) {
	checkRowLen(a.rows, u.Params, "TrimmedMean")
	//fhdnn:allow hotalloc rows reuses its backing array across Reset; growth amortizes out
	a.rows = append(a.rows, u.Params)
}

// Len implements Aggregator.
func (a *TrimmedMean) Len() int { return len(a.rows) }

// Commit implements Aggregator.
//
//fhdnn:hotpath applies the round aggregate in place
func (a *TrimmedMean) Commit(global []float32) {
	n := len(a.rows)
	if n == 0 {
		return
	}
	k := a.Trim(n)
	if cap(a.col) < n {
		//fhdnn:allow hotalloc per-coordinate scratch sized once per round, reused across commits
		a.col = make([]float64, n)
	}
	col := a.col[:n]
	inv := 1 / float64(n-2*k)
	for j := range global {
		for i, row := range a.rows {
			col[i] = float64(row[j])
		}
		sort.Float64s(col)
		var sum float64
		for _, v := range col[k : n-k] {
			sum += v
		}
		global[j] = float32(sum * inv)
	}
}

// Reset implements Aggregator.
func (a *TrimmedMean) Reset() {
	clear(a.rows)
	a.rows = a.rows[:0]
}

// Name returns the policy spec string.
func (a *TrimmedMean) Name() string {
	return "trimmed:" + strconv.FormatFloat(a.Frac, 'g', -1, 64)
}

// NormClip decorates Inner: any added update whose L2 norm exceeds Bound
// is rescaled to exactly Bound (preserving its direction) before being
// handed on. Updates at or under the bound pass through bit-identical —
// the caller's slice is never mutated; clipping works on a copy, because
// storing aggregators (Median, TrimmedMean, AsyncStaleness) retain the
// slice they are given. Bound <= 0 disables clipping.
type NormClip struct {
	Inner Aggregator
	Bound float64

	// clipped is atomic so a stats scrape may read it while a shard
	// goroutine owns the Add path; everything else follows the usual
	// single-owner Aggregator contract.
	clipped atomic.Int64
}

// Add implements Aggregator.
//
//fhdnn:hotpath called once per client update inside the round loop
func (a *NormClip) Add(u Update) {
	if a.Bound > 0 {
		var sum float64
		for _, v := range u.Params {
			f := float64(v)
			sum += f * f
		}
		if norm := math.Sqrt(sum); norm > a.Bound {
			scale := a.Bound / norm
			//fhdnn:allow hotalloc a clipped update needs its own copy: inner aggregators retain the slice until Reset
			scaled := make([]float32, len(u.Params))
			for i, v := range u.Params {
				scaled[i] = float32(float64(v) * scale)
			}
			u.Params = scaled
			a.clipped.Add(1)
		}
	}
	a.Inner.Add(u)
}

// Len implements Aggregator.
func (a *NormClip) Len() int { return a.Inner.Len() }

// Commit implements Aggregator. The pure delegation carries no hotpath
// annotation of its own: the interface call resolves (in the lint call
// graph) to every Commit in the module, including the sharded tree's
// merge-and-fold commit whose once-per-round allocations are deliberate.
// Each concrete inner Commit enforces its own hotpath contract.
func (a *NormClip) Commit(global []float32) { a.Inner.Commit(global) }

// Reset implements Aggregator (Clipped is cumulative and survives Reset,
// mirroring the server's other defense counters).
func (a *NormClip) Reset() { a.Inner.Reset() }

// Clipped reports how many updates have been rescaled since creation.
func (a *NormClip) Clipped() int64 { return a.clipped.Load() }

// Name returns the policy spec string.
func (a *NormClip) Name() string {
	return "clip:" + strconv.FormatFloat(a.Bound, 'g', -1, 64) + ":" + AggregatorName(a.Inner)
}

// checkRowLen enforces that every update in a round has one length: a
// mismatched update would silently mis-gather columns in Commit.
func checkRowLen(rows [][]float32, params []float32, kind string) {
	if len(rows) > 0 && len(params) != len(rows[0]) {
		invariant.Failf("fedcore: %s update length %d, want %d", kind, len(params), len(rows[0]))
	}
}

// AggregatorName returns the canonical policy spec of an aggregator —
// the same string ParseAggregator accepts. Unknown implementations
// report their dynamic type.
func AggregatorName(a Aggregator) string {
	switch v := a.(type) {
	case interface{ Name() string }:
		return v.Name()
	case *FedAvg:
		return "fedavg"
	case *Bundle:
		return "bundle"
	case *AsyncStaleness:
		return "async"
	default:
		return fmt.Sprintf("%T", a)
	}
}

// PolicyError is the typed error every malformed aggregation-policy spec
// maps to. Callers that need to distinguish a bad -aggregator flag from
// other failures match it with errors.As.
type PolicyError struct {
	Spec   string // the spec handed to ParseAggregator (or "sharded" for constructor misuse)
	Reason string
}

func (e *PolicyError) Error() string {
	return fmt.Sprintf("fedcore: bad aggregator spec %q: %s", e.Spec, e.Reason)
}

const specGrammar = "want bundle, fedavg, median, trimmed[:frac], clip:bound[:inner], sharded:n:inner"

// ParseAggregator resolves a server aggregation-policy spec:
//
//	bundle            federated bundling mean
//	fedavg            sample-weighted federated averaging
//	median            coordinate-wise median
//	trimmed           trimmed mean, 0.2 trimmed from each end
//	trimmed:FRAC      trimmed mean with an explicit per-end fraction
//	clip:BOUND        NormClip(bundle, BOUND)
//	clip:BOUND:SPEC   NormClip over any inner spec, e.g. clip:100:median
//	sharded:N:SPEC    N-way ShardedAggregator over any mergeable inner spec
//
// Every malformed spec — including the empty string — returns a
// *PolicyError; the caller owns defaulting.
func ParseAggregator(spec string) (Aggregator, error) {
	switch {
	case spec == "":
		return nil, &PolicyError{Spec: spec, Reason: "empty spec (" + specGrammar + ")"}
	case spec == "bundle":
		return &Bundle{}, nil
	case spec == "fedavg":
		return &FedAvg{}, nil
	case spec == "median":
		return &Median{}, nil
	case spec == "trimmed":
		return &TrimmedMean{Frac: 0.2}, nil
	case strings.HasPrefix(spec, "trimmed:"):
		frac, err := strconv.ParseFloat(strings.TrimPrefix(spec, "trimmed:"), 64)
		// The explicit !(frac >= 0) form also rejects NaN, which slips
		// past a plain frac < 0 check.
		if err != nil || !(frac >= 0) || frac >= 0.5 {
			return nil, &PolicyError{Spec: spec, Reason: "trim fraction must be a number in [0, 0.5)"}
		}
		return &TrimmedMean{Frac: frac}, nil
	case strings.HasPrefix(spec, "clip:"):
		rest := strings.TrimPrefix(spec, "clip:")
		boundStr, innerSpec, _ := strings.Cut(rest, ":")
		bound, err := strconv.ParseFloat(boundStr, 64)
		if err != nil || !(bound > 0) || math.IsInf(bound, 0) {
			return nil, &PolicyError{Spec: spec, Reason: "clip bound must be a finite positive number"}
		}
		inner := Aggregator(&Bundle{})
		if innerSpec != "" {
			if inner, err = ParseAggregator(innerSpec); err != nil {
				return nil, err
			}
		}
		return &NormClip{Inner: inner, Bound: bound}, nil
	case strings.HasPrefix(spec, "sharded:"):
		rest := strings.TrimPrefix(spec, "sharded:")
		nStr, innerSpec, ok := strings.Cut(rest, ":")
		n, err := strconv.Atoi(nStr)
		if !ok || innerSpec == "" || err != nil || n <= 0 {
			return nil, &PolicyError{Spec: spec, Reason: "want sharded:N:inner with a positive shard count"}
		}
		// Validate the inner spec once up front so the factory below is
		// infallible, then reparse per shard for independent instances.
		if _, err := ParseAggregator(innerSpec); err != nil {
			return nil, err
		}
		sh, err := NewSharded(n, func() Aggregator {
			a, err := ParseAggregator(innerSpec)
			if err != nil {
				invariant.Failf("fedcore: validated spec %q failed to reparse: %v", innerSpec, err)
			}
			return a
		})
		if err != nil {
			// Re-anchor constructor errors (e.g. non-mergeable inner) to
			// the full spec the caller typed.
			var pe *PolicyError
			if errors.As(err, &pe) {
				return nil, &PolicyError{Spec: spec, Reason: pe.Reason}
			}
			return nil, err
		}
		return sh, nil
	}
	return nil, &PolicyError{Spec: spec, Reason: "unknown aggregator (" + specGrammar + ")"}
}
