package fedcore

import (
	"fhdnn/internal/channel"
	"fhdnn/internal/compress"
)

// WireSizer is optionally implemented by uplink channels whose
// on-the-wire representation differs from raw float32 (e.g. the
// seed-implied mask of channel.Subsample); UpdateWireBytes consults it
// for traffic accounting.
type WireSizer interface {
	WireBytes(n int) int
}

// wireCodec is implemented by uplinks that ship a compress.Codec
// (compress.Uplink); such updates are accounted at envelope-framed size.
type wireCodec interface {
	WireCodec() compress.Codec
}

// WireBytes is THE sizing rule for one n-parameter update shipped through
// codec c: envelope header plus compressed payload. The flnet protocol
// puts exactly these bytes on the wire, and the simulator charges exactly
// this size for a compressed uplink, so the two accountings cannot drift.
func WireBytes(c compress.Codec, n int) int {
	return EnvelopeOverhead + len(c.Encode(make([]float32, n)))
}

// UpdateWireBytes returns the accounted uplink traffic of one n-value
// update over the given channel at the given raw bytes-per-parameter:
// envelope-framed compressed size for codec uplinks, the channel's own
// WireSizer if it has one, and n*bytesPerParam raw floats otherwise.
func UpdateWireBytes(uplink channel.Channel, n, bytesPerParam int) int64 {
	if cw, ok := uplink.(wireCodec); ok {
		return int64(WireBytes(cw.WireCodec(), n))
	}
	if ws, ok := uplink.(WireSizer); ok {
		return int64(ws.WireBytes(n))
	}
	return int64(n * bytesPerParam)
}
