package fedcore

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand"
	"testing"

	"fhdnn/internal/compress"
)

func testUpdate(n int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float32, n)
	for i := range out {
		out[i] = float32(rng.NormFloat64())
	}
	return out
}

func TestEnvelopeRoundTripAllCodecs(t *testing.T) {
	params := testUpdate(257, 3)
	for _, id := range AllCodecIDs() {
		codec, ok := CodecFor(id)
		if !ok {
			t.Fatalf("registered id %d has no codec", id)
		}
		enc := codec
		if id == CodecTopK {
			enc = compress.TopK{Frac: 0.25} // encoding needs a kept fraction
		}
		data, err := EncodeEnvelope(enc, params)
		if err != nil {
			t.Fatalf("%s: encode: %v", CodecName(id), err)
		}
		got, gotID, err := DecodeEnvelope(data, len(params))
		if err != nil {
			t.Fatalf("%s: decode: %v", CodecName(id), err)
		}
		if gotID != id {
			t.Fatalf("codec id %d round-tripped as %d", id, gotID)
		}
		if len(got) != len(params) {
			t.Fatalf("%s: decoded %d values, want %d", CodecName(id), len(got), len(params))
		}
		if id == CodecRaw {
			for i := range got {
				if got[i] != params[i] {
					t.Fatalf("raw codec must be lossless at index %d", i)
				}
			}
		}
		// wantN = 0 means "self-described": decode without an expectation
		if _, _, err := DecodeEnvelope(data, 0); err != nil {
			t.Fatalf("%s: self-described decode: %v", CodecName(id), err)
		}
	}
}

func TestEnvelopeWireBytesAgree(t *testing.T) {
	// The accounting helper and the actual frame must agree byte-for-byte
	// for every codec — this is the no-drift guarantee between the fl
	// simulator and the flnet wire.
	params := testUpdate(512, 7)
	codecs := []compress.Codec{compress.Raw{}, compress.Float16{}, compress.Int8{}, compress.TopK{Frac: 0.1}}
	for _, c := range codecs {
		data, err := EncodeEnvelope(c, params)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := WireBytes(c, len(params)), len(data); got != want {
			t.Fatalf("%s: WireBytes %d, frame is %d bytes", c.Name(), got, want)
		}
	}
	// int8 must deliver >= 3.5x savings over raw at realistic sizes
	n := 10 * 2048
	raw, int8 := WireBytes(compress.Raw{}, n), WireBytes(compress.Int8{}, n)
	if ratio := float64(raw) / float64(int8); ratio < 3.5 {
		t.Fatalf("int8 envelope ratio %.2f, want >= 3.5", ratio)
	}
}

func TestEnvelopeDecodeErrors(t *testing.T) {
	params := testUpdate(64, 5)
	good, err := EncodeEnvelope(compress.Int8{}, params)
	if err != nil {
		t.Fatal(err)
	}

	corrupt := func(mut func(b []byte)) []byte {
		b := append([]byte(nil), good...)
		mut(b)
		return b
	}
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"short", good[:10], ErrEnvelopeTruncated},
		{"magic", corrupt(func(b []byte) { b[0] = 'X' }), ErrEnvelopeMagic},
		{"version", corrupt(func(b []byte) { b[4] = 99 }), ErrEnvelopeVersion},
		{"codec", corrupt(func(b []byte) { b[5] = 200 }), ErrEnvelopeCodec},
		{"reserved", corrupt(func(b []byte) { b[6] = 1 }), ErrEnvelopePayload},
		{"count", corrupt(func(b []byte) { binary.LittleEndian.PutUint32(b[8:], 63) }), ErrEnvelopeCount},
		{"truncated", good[:len(good)-3], ErrEnvelopeTruncated},
		{"checksum", corrupt(func(b []byte) { b[len(b)-1] ^= 0x40 }), ErrEnvelopeChecksum},
		{"payload", corrupt(func(b []byte) {
			// shrink the payload but fix up length and checksum so only
			// the codec-level length check can catch it
			b[12] = byte(len(b) - EnvelopeOverhead - 1)
			binary.LittleEndian.PutUint32(b[16:], crcOf(b[EnvelopeOverhead:len(b)-1]))
		})[:len(good)-1], ErrEnvelopePayload},
	}
	for _, tc := range cases {
		_, _, err := DecodeEnvelope(tc.data, 64)
		if err == nil {
			t.Fatalf("%s: corrupt envelope accepted", tc.name)
		}
		if !errors.Is(err, tc.want) {
			t.Fatalf("%s: error %v, want %v", tc.name, err, tc.want)
		}
	}
	// wantN mismatch with an otherwise valid envelope
	if _, _, err := DecodeEnvelope(good, 65); !errors.Is(err, ErrEnvelopeCount) {
		t.Fatalf("count mismatch error = %v", err)
	}
}

// rawEnvelope assembles an envelope byte-for-byte, bypassing
// EncodeEnvelope's self-consistency, so tests can claim arbitrary
// counts against arbitrary payloads.
func rawEnvelope(id CodecID, count int, payload []byte) []byte {
	b := make([]byte, EnvelopeOverhead+len(payload))
	copy(b, EnvelopeMagic[:])
	b[4] = EnvelopeVersion
	b[5] = byte(id)
	binary.LittleEndian.PutUint32(b[8:], uint32(count))
	binary.LittleEndian.PutUint32(b[12:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[16:], crcOf(payload))
	copy(b[EnvelopeOverhead:], payload)
	return b
}

func TestEnvelopeSelfDescribedAmplificationCapped(t *testing.T) {
	// A top-k frame with k=0 carries a 4-byte payload but a free-choice
	// element count; before the amplification cap, these 24 wire bytes
	// could demand a multi-hundred-megabyte allocation on a
	// self-described (wantN == 0) decode.
	frame := rawEnvelope(CodecTopK, 1<<20, make([]byte, 4))
	if _, _, err := DecodeEnvelope(frame, 0); !errors.Is(err, ErrEnvelopeCount) {
		t.Fatalf("amplified self-described decode: error %v, want ErrEnvelopeCount", err)
	}
	// The same empty payload with a count inside the slack decodes fine.
	got, _, err := DecodeEnvelope(rawEnvelope(CodecTopK, 64, make([]byte, 4)), 0)
	if err != nil {
		t.Fatalf("small self-described decode: %v", err)
	}
	if len(got) != 64 {
		t.Fatalf("decoded %d values, want 64", len(got))
	}
	// A caller-supplied wantN is the caller's own sizing decision: the
	// cap must not second-guess it.
	if _, _, err := DecodeEnvelope(frame, 1<<20); err != nil {
		t.Fatalf("caller-sized decode: %v", err)
	}
}

func TestEncodeEnvelopeRejectsUnregisteredCodec(t *testing.T) {
	if _, err := EncodeEnvelope(unregisteredCodec{}, []float32{1}); err == nil {
		t.Fatal("unregistered codec must be rejected")
	}
}

type unregisteredCodec struct{}

func (unregisteredCodec) Name() string                              { return "mystery" }
func (unregisteredCodec) Encode(u []float32) []byte                 { return nil }
func (unregisteredCodec) Decode(d []byte, n int) ([]float32, error) { return nil, nil }

func TestParseCodec(t *testing.T) {
	for _, name := range []string{"raw", "float16", "int8", "topk", "topk:0.25"} {
		c, err := ParseCodec(name)
		if err != nil || c == nil {
			t.Fatalf("ParseCodec(%q): %v", name, err)
		}
	}
	if c, _ := ParseCodec("topk:0.25"); c.(compress.TopK).Frac != 0.25 {
		t.Fatal("topk fraction not parsed")
	}
	for _, name := range []string{"", "gzip", "topk:0", "topk:2", "topk:x"} {
		if _, err := ParseCodec(name); err == nil {
			t.Fatalf("ParseCodec(%q) accepted", name)
		}
	}
}

func TestCodecNames(t *testing.T) {
	for _, id := range AllCodecIDs() {
		if CodecName(id) == "unknown" {
			t.Fatalf("id %d unnamed", id)
		}
		c, _ := CodecFor(id)
		if round, ok := CodecIDOf(c); !ok || round != id {
			t.Fatalf("id %d does not round-trip through CodecIDOf", id)
		}
	}
	if CodecName(200) != "unknown" {
		t.Fatal("unregistered id must be unknown")
	}
}

func crcOf(b []byte) uint32 { return crc32.ChecksumIEEE(b) }
