package fedcore

import (
	"math"
	"math/rand"
	"testing"

	"fhdnn/internal/channel"
	"fhdnn/internal/compress"
)

func TestFedAvgWeighting(t *testing.T) {
	a := &FedAvg{}
	a.Add(Update{Params: []float32{1, 0}, Samples: 1})
	a.Add(Update{Params: []float32{4, 2}, Samples: 3})
	if a.Len() != 2 {
		t.Fatalf("Len = %d", a.Len())
	}
	global := []float32{9, 9}
	a.Commit(global)
	// (1*1 + 3*4)/4 = 3.25, (1*0 + 3*2)/4 = 1.5
	if global[0] != 3.25 || global[1] != 1.5 {
		t.Fatalf("FedAvg commit = %v", global)
	}
	a.Reset()
	if a.Len() != 0 {
		t.Fatal("Reset must clear updates")
	}
	global = []float32{7, 7}
	a.Commit(global)
	if global[0] != 7 || global[1] != 7 {
		t.Fatal("empty commit must carry the global forward")
	}
}

func TestBundleMeanAndMask(t *testing.T) {
	b := &Bundle{}
	b.Add(Update{Params: []float32{2, 4, 6}})
	b.Add(Update{Params: []float32{4, 8, 10}})
	global := []float32{0, 0, 0}
	b.Commit(global)
	if global[0] != 3 || global[1] != 6 || global[2] != 8 {
		t.Fatalf("Bundle commit = %v", global)
	}
	b.Reset()

	b.Mask = []int{1}
	b.Add(Update{Params: []float32{100, 10, 100}})
	global = []float32{1, 1, 1}
	b.Commit(global)
	if global[0] != 1 || global[1] != 10 || global[2] != 1 {
		t.Fatalf("masked commit must only refresh mask entries, got %v", global)
	}
}

func TestAsyncStalenessDiscount(t *testing.T) {
	a := &AsyncStaleness{Alpha: 1}
	if w := a.Weight(0); w != 1 {
		t.Fatalf("fresh weight = %v", w)
	}
	if w := a.Weight(3); math.Abs(w-0.25) > 1e-12 {
		t.Fatalf("stale weight = %v", w)
	}
	a.Add(Update{Params: []float32{2, -2}, Staleness: 1}) // w = 0.5
	global := []float32{10, 10}
	a.Commit(global)
	if global[0] != 11 || global[1] != 9 {
		t.Fatalf("async commit = %v (deltas must accumulate, not replace)", global)
	}
	none := &AsyncStaleness{}
	if w := none.Weight(100); w != 1 {
		t.Fatalf("alpha=0 must disable the discount, got %v", w)
	}
}

func TestSampleClients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ids := SampleClients(rng, 100, 0.2)
	if len(ids) != 20 {
		t.Fatalf("sampled %d, want 20", len(ids))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatal("ids must be sorted and distinct")
		}
	}
	if len(SampleClients(rng, 10, 0.01)) != 1 {
		t.Fatal("must sample at least one client")
	}
}

func TestClientRNGDeterminism(t *testing.T) {
	if ClientRNG(1, 2, 3).Int63() != ClientRNG(1, 2, 3).Int63() {
		t.Fatal("same key must give the same stream")
	}
	base := ClientRNG(1, 2, 3).Int63()
	if ClientRNG(1, 3, 3).Int63() == base && ClientRNG(1, 2, 4).Int63() == base {
		t.Fatal("streams should differ across rounds and ids")
	}
}

// toyEngine builds an engine whose "training" returns a constant vector
// per client, so aggregation results are fully predictable.
func toyEngine(workers int, dropout float64, uplink channel.Channel) (*Engine, *[]RoundStats, []float32) {
	global := make([]float32, 4)
	var stats []RoundStats
	e := &Engine{
		Clients: 8, Fraction: 0.5, Rounds: 4, Seed: 11,
		Parallel: workers, DropoutProb: dropout, Uplink: uplink,
		SampleRNG: ClientRNG(11, 0, -1),
		Agg:       &Bundle{},
		Global:    global,
		Train: func(worker, round, id int, rng *rand.Rand) (Update, bool) {
			u := Update{Params: make([]float32, 4), Samples: 1}
			for i := range u.Params {
				u.Params[i] = float32(id + round)
			}
			return u, true
		},
		Evaluate: func() float64 { return float64(global[0]) },
		OnRound:  func(st RoundStats) { stats = append(stats, st) },
	}
	return e, &stats, global
}

func TestEngineDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) ([]RoundStats, []float32) {
		e, stats, global := toyEngine(workers, 0.3, channel.AWGN{SNRdB: 20})
		e.Run()
		return *stats, global
	}
	s1, g1 := run(1)
	s4, g4 := run(4)
	if len(s1) != 4 || len(s4) != 4 {
		t.Fatalf("round counts %d/%d", len(s1), len(s4))
	}
	for i := range s1 {
		if s1[i] != s4[i] {
			t.Fatalf("round %d stats differ: %+v vs %+v", i+1, s1[i], s4[i])
		}
	}
	for i := range g1 {
		if g1[i] != g4[i] {
			t.Fatalf("global[%d] differs: %v vs %v", i, g1[i], g4[i])
		}
	}
}

func TestEngineDropoutReducesParticipants(t *testing.T) {
	clean, cleanStats, _ := toyEngine(2, 0, nil)
	lossy, lossyStats, _ := toyEngine(2, 0.6, nil)
	clean.Run()
	lossy.Run()
	var pc, pl int
	for i := range *cleanStats {
		pc += (*cleanStats)[i].Participants
		pl += (*lossyStats)[i].Participants
	}
	if pl >= pc {
		t.Fatalf("dropout should reduce participants: %d vs %d", pl, pc)
	}
}

func TestEngineTrafficAccounting(t *testing.T) {
	e, stats, _ := toyEngine(1, 0, nil)
	e.Run()
	for _, st := range *stats {
		if st.Bytes != int64(st.Participants*4*4) {
			t.Fatalf("round %d: %d bytes for %d participants", st.Round, st.Bytes, st.Participants)
		}
	}

	// A codec uplink must be charged envelope-framed compressed size.
	up := compress.Uplink{C: compress.Int8{}}
	e2, stats2, _ := toyEngine(1, 0, up)
	e2.Run()
	want := int64(WireBytes(compress.Int8{}, 4))
	for _, st := range *stats2 {
		if st.Bytes != want*int64(st.Participants) {
			t.Fatalf("codec accounting: %d bytes, want %d per participant", st.Bytes, want)
		}
	}
}

func TestEngineEvalPacing(t *testing.T) {
	e, stats, _ := toyEngine(1, 0, nil)
	e.EvalEvery = 3
	e.Run()
	s := *stats
	if s[0].TestAccuracy != 0 || s[1].TestAccuracy != 0 {
		t.Fatal("rounds 1-2 should carry the (zero) initial accuracy")
	}
	if s[2].TestAccuracy == 0 {
		t.Fatal("round 3 should evaluate")
	}
	if s[3].TestAccuracy == 0 {
		t.Fatal("the final round must always evaluate")
	}
}

func TestUpdateWireBytes(t *testing.T) {
	if got := UpdateWireBytes(channel.Perfect{}, 100, 4); got != 400 {
		t.Fatalf("raw accounting = %d", got)
	}
	// channel.Subsample implements WireSizer
	if got := UpdateWireBytes(channel.Subsample{Frac: 0.5}, 100, 4); got != 200 {
		t.Fatalf("WireSizer accounting = %d", got)
	}
	up := compress.Uplink{C: compress.Float16{}}
	if got, want := UpdateWireBytes(up, 100, 4), int64(EnvelopeOverhead+200); got != want {
		t.Fatalf("codec accounting = %d, want %d", got, want)
	}
}
