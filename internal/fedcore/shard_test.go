package fedcore

import (
	"fmt"
	"math/rand"
	"testing"

	"fhdnn/internal/tensor"
)

// shardedUpdates builds n updates with client identities, so hash routing
// has something to route by. Integer-valued params keep float64
// accumulation exact (see randomUpdates); non-unit sample weights
// exercise FedAvg's weighted path.
func shardedUpdates(rng *rand.Rand, n, d int, integer bool) []Update {
	ups := randomUpdates(rng, n, d, integer)
	for i := range ups {
		ups[i].ClientID = fmt.Sprintf("edge-%03d", i)
		ups[i].Samples = 1 + rng.Intn(4)
	}
	return ups
}

// TestShardedBitIdentity is the tentpole property: for every inner policy,
// every shard count 1..8, every tested add order, and every tensor worker
// count 1..8, the sharded commit is bit-identical to the flat aggregator.
// Mean policies (fedavg, bundle) get integer-valued updates, where
// float64 addition is exact and therefore associative; the sorting
// policies (median, trimmed) are exactly permutation-invariant and get
// arbitrary floats. Mirrors TestRobustBitIdenticalAcrossWorkers: the
// worker sweep proves the shared tensor pool cannot leak into the
// aggregation math.
func TestShardedBitIdentity(t *testing.T) {
	type policy struct {
		spec    string
		integer bool
	}
	policies := []policy{
		{"fedavg", true},
		{"bundle", true},
		{"median", false},
		{"trimmed:0.25", false},
		{"clip:9:median", false},
	}
	const n, d = 24, 97
	defer tensor.SetWorkers(tensor.Workers())
	for _, pol := range policies {
		rng := rand.New(rand.NewSource(1234))
		ups := shardedUpdates(rng, n, d, pol.integer)
		build := func() Aggregator {
			a, err := ParseAggregator(pol.spec)
			if err != nil {
				t.Fatal(err)
			}
			return a
		}
		want := commitAll(build(), ups, d)
		for shards := 1; shards <= 8; shards++ {
			sh, err := NewSharded(shards, build)
			if err != nil {
				t.Fatal(err)
			}
			order := make([]Update, n)
			copy(order, ups)
			for trial := 0; trial < 3; trial++ {
				rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
				workers := 1 + (shards+trial)%8
				tensor.SetWorkers(workers)
				got := commitAll(sh, order, d)
				for j := range want {
					if want[j] != got[j] {
						t.Fatalf("%s with %d shards, trial %d, %d workers: coordinate %d differs from flat: %v vs %v",
							pol.spec, shards, trial, workers, j, want[j], got[j])
					}
				}
			}
		}
	}
}

// The engine determinism contract holds with a sharded tree as the Agg:
// bit-identical globals for every worker count, mirroring
// TestRobustBitIdenticalAcrossWorkers.
func TestShardedBitIdenticalAcrossEngineWorkers(t *testing.T) {
	defer tensor.SetWorkers(tensor.Workers())
	run := func(workers int) []float32 {
		tensor.SetWorkers(workers)
		agg, err := ParseAggregator("sharded:4:median")
		if err != nil {
			t.Fatal(err)
		}
		global := make([]float32, 16)
		e := &Engine{
			Clients: 12, Fraction: 0.75, Rounds: 5, Seed: 99,
			Parallel:  workers,
			SampleRNG: ClientRNG(99, 0, -1),
			Agg:       agg,
			Global:    global,
			Train: func(_, round, id int, rng *rand.Rand) (Update, bool) {
				u := Update{Params: make([]float32, 16), Samples: 1, Client: id}
				for i := range u.Params {
					u.Params[i] = float32(id+round) + float32(rng.NormFloat64())
				}
				return u, true
			},
			Evaluate: func() float64 { return float64(global[0]) },
			OnRound:  func(RoundStats) {},
		}
		e.Run()
		return global
	}
	want := run(1)
	for workers := 2; workers <= 8; workers++ {
		got := run(workers)
		for j := range want {
			if want[j] != got[j] {
				t.Fatalf("sharded engine global[%d] differs between 1 and %d workers: %v vs %v",
					j, workers, want[j], got[j])
			}
		}
	}
}

func TestShardedRouting(t *testing.T) {
	sh, err := NewSharded(4, func() Aggregator { return &Bundle{} })
	if err != nil {
		t.Fatal(err)
	}
	// Stable: the same identity always lands on the same shard.
	for _, id := range []string{"", "a", "edge-007", "poisoner"} {
		first := ShardIndex(id, 4)
		if first < 0 || first >= 4 {
			t.Fatalf("ShardIndex(%q, 4) = %d, out of range", id, first)
		}
		for i := 0; i < 10; i++ {
			if got := ShardIndex(id, 4); got != first {
				t.Fatalf("ShardIndex(%q) unstable: %d then %d", id, first, got)
			}
		}
	}
	// ClientID wins over the numeric id; numeric id routes by modulo.
	if got := sh.ShardFor(Update{ClientID: "x", Client: 1}); got != ShardIndex("x", 4) {
		t.Fatalf("ShardFor with ClientID routed to %d, want hash shard %d", got, ShardIndex("x", 4))
	}
	if got := sh.ShardFor(Update{Client: 7}); got != 3 {
		t.Fatalf("ShardFor(Client 7) = %d, want 3", got)
	}
	// Adds land where ShardFor says and nowhere else.
	u := Update{ClientID: "edge-1", Params: []float32{1, 2}, Samples: 1}
	sh.Add(u)
	want := sh.ShardFor(u)
	for i := 0; i < sh.Shards(); i++ {
		wantLen := 0
		if i == want {
			wantLen = 1
		}
		if got := sh.Shard(i).Len(); got != wantLen {
			t.Fatalf("shard %d Len = %d, want %d", i, got, wantLen)
		}
	}
	if sh.Len() != 1 {
		t.Fatalf("total Len = %d, want 1", sh.Len())
	}
	sh.Reset()
	if sh.Len() != 0 {
		t.Fatal("Reset must clear every shard")
	}
}

// CommitLive with a live mask folds only the surviving shards — the
// degraded partial-aggregation path — and leaves shard state untouched
// until Reset.
func TestShardedCommitLivePartial(t *testing.T) {
	sh, err := NewSharded(2, func() Aggregator { return &Bundle{} })
	if err != nil {
		t.Fatal(err)
	}
	sh.Shard(0).Add(Update{Params: []float32{2}, Samples: 1})
	sh.Shard(0).Add(Update{Params: []float32{4}, Samples: 1})
	sh.Shard(1).Add(Update{Params: []float32{100}, Samples: 1})

	g := []float32{0}
	sh.CommitLive(g, []bool{true, false}) // shard 1 presumed dead
	if g[0] != 3 {
		t.Fatalf("partial commit = %v, want mean(2,4) = 3", g[0])
	}
	// Non-destructive fold: a full commit afterwards still sees everything.
	g[0] = 0
	sh.CommitLive(g, nil)
	if g[0] != float32(106.0/3.0) {
		t.Fatalf("full commit = %v, want mean(2,4,100)", g[0])
	}
	// All shards dead or empty: the previous global carries forward.
	g[0] = 7
	sh.CommitLive(g, []bool{false, false})
	if g[0] != 7 {
		t.Fatalf("all-dead commit must carry the global forward, got %v", g[0])
	}
}

func TestShardedClippedAggregatesAcrossShards(t *testing.T) {
	sh, err := NewSharded(3, func() Aggregator {
		return &NormClip{Inner: &Bundle{}, Bound: 1}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		sh.Add(Update{ClientID: fmt.Sprintf("c%d", i), Params: []float32{5}, Samples: 1})
	}
	if got := sh.Clipped(); got != 6 {
		t.Fatalf("Clipped = %d, want 6 across shards", got)
	}
	if name := sh.Name(); name != "sharded:3:clip:1:bundle" {
		t.Fatalf("Name = %q", name)
	}
}

type notMergeable struct{}

func (notMergeable) Add(Update)       {}
func (notMergeable) Len() int         { return 0 }
func (notMergeable) Commit([]float32) {}
func (notMergeable) Reset()           {}

func TestNewShardedRejects(t *testing.T) {
	bundle := func() Aggregator { return &Bundle{} }
	if _, err := NewSharded(0, bundle); err == nil {
		t.Fatal("accepted zero shards")
	}
	if _, err := NewSharded(2, nil); err == nil {
		t.Fatal("accepted a nil factory")
	}
	if _, err := NewSharded(2, func() Aggregator { return &notMergeable{} }); err == nil {
		t.Fatal("accepted a non-mergeable inner aggregator")
	}
	shared := &Bundle{}
	if _, err := NewSharded(2, func() Aggregator { return shared }); err == nil {
		t.Fatal("accepted a factory that reuses one instance")
	}
	// The tree does not nest: a sharded inner is not Mergeable.
	if _, err := NewSharded(2, func() Aggregator {
		inner, _ := NewSharded(2, bundle)
		return inner
	}); err == nil {
		t.Fatal("accepted a nested sharded aggregator")
	}
}

func TestMergeFromRejectsMismatch(t *testing.T) {
	cases := []struct {
		dst Mergeable
		src Aggregator
	}{
		{&FedAvg{}, &Bundle{}},
		{&Bundle{}, &Median{}},
		{&Median{}, &TrimmedMean{}},
		{&TrimmedMean{Frac: 0.2}, &TrimmedMean{Frac: 0.3}},
		{&NormClip{Inner: &Bundle{}, Bound: 1}, &NormClip{Inner: &Bundle{}, Bound: 2}},
		{&AsyncStaleness{}, &FedAvg{}},
	}
	for _, c := range cases {
		if err := c.dst.MergeFrom(c.src); err == nil {
			t.Errorf("%T.MergeFrom(%T) accepted a mismatch", c.dst, c.src)
		}
	}
	// Length mismatches are errors too, not silent corruption.
	a, b := &FedAvg{}, &FedAvg{}
	a.Add(Update{Params: []float32{1, 2}, Samples: 1})
	b.Add(Update{Params: []float32{1, 2, 3}, Samples: 1})
	if err := a.MergeFrom(b); err == nil {
		t.Fatal("FedAvg merged mismatched lengths")
	}
}
