package fedcore

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"fhdnn/internal/tensor"
)

func TestMedianCommit(t *testing.T) {
	a := &Median{}
	a.Add(Update{Params: []float32{1, 10, -5}})
	a.Add(Update{Params: []float32{2, 20, 0}})
	a.Add(Update{Params: []float32{100, 30, 5}}) // one outlier per coordinate
	if a.Len() != 3 {
		t.Fatalf("Len = %d", a.Len())
	}
	global := []float32{0, 0, 0}
	a.Commit(global)
	if global[0] != 2 || global[1] != 20 || global[2] != 0 {
		t.Fatalf("odd-n median commit = %v", global)
	}
	a.Reset()
	if a.Len() != 0 {
		t.Fatal("Reset must clear updates")
	}
	global = []float32{7, 7, 7}
	a.Commit(global)
	if global[0] != 7 || global[1] != 7 || global[2] != 7 {
		t.Fatal("empty commit must carry the global forward")
	}

	// Even n averages the two middle values.
	a.Add(Update{Params: []float32{1}})
	a.Add(Update{Params: []float32{3}})
	a.Add(Update{Params: []float32{5}})
	a.Add(Update{Params: []float32{1000}})
	g := []float32{0}
	a.Commit(g)
	if g[0] != 4 {
		t.Fatalf("even-n median = %v, want 4", g[0])
	}
}

func TestTrimmedMeanTrimsOutliers(t *testing.T) {
	a := &TrimmedMean{Frac: 0.25} // n=4 -> ceil(1) trimmed per end
	a.Add(Update{Params: []float32{-1000}})
	a.Add(Update{Params: []float32{2}})
	a.Add(Update{Params: []float32{4}})
	a.Add(Update{Params: []float32{1000}})
	g := []float32{0}
	a.Commit(g)
	if g[0] != 3 {
		t.Fatalf("trimmed mean = %v, want 3 (outliers at both ends discarded)", g[0])
	}
}

func TestTrimmedMeanTrimCount(t *testing.T) {
	cases := []struct {
		frac string
		a    *TrimmedMean
		n    int
		want int
	}{
		{"0", &TrimmedMean{}, 10, 0},
		{"0.2", &TrimmedMean{Frac: 0.2}, 10, 2},
		{"0.25", &TrimmedMean{Frac: 0.25}, 10, 3}, // ceil(2.5)
		{"0.25", &TrimmedMean{Frac: 0.25}, 8, 2},
		{"0.49", &TrimmedMean{Frac: 0.49}, 4, 1}, // 2*ceil(1.96)=4 >= 4, clamped to (n-1)/2
		{"0.4", &TrimmedMean{Frac: 0.4}, 3, 1},
		{"0.4", &TrimmedMean{Frac: 0.4}, 1, 0}, // a single update always survives
	}
	for _, c := range cases {
		if got := c.a.Trim(c.n); got != c.want {
			t.Errorf("TrimmedMean(%s).Trim(%d) = %d, want %d", c.frac, c.n, got, c.want)
		}
	}
}

// randomUpdates builds n updates of dimension d. When integer is set the
// params are small whole numbers, so float64 accumulation is exact and
// algebraic identities hold bitwise.
func randomUpdates(rng *rand.Rand, n, d int, integer bool) []Update {
	ups := make([]Update, n)
	for i := range ups {
		p := make([]float32, d)
		for j := range p {
			if integer {
				p[j] = float32(rng.Intn(65) - 32)
			} else {
				p[j] = float32(rng.NormFloat64())
			}
		}
		ups[i] = Update{Params: p, Samples: 1, Client: i}
	}
	return ups
}

func commitAll(a Aggregator, ups []Update, d int) []float32 {
	g := make([]float32, d)
	for _, u := range ups {
		a.Add(u)
	}
	a.Commit(g)
	a.Reset()
	return g
}

// TrimmedMean with Frac 0 is the plain mean; with unit sample weights and
// a power-of-two update count (so 1/n is exact) it must be bit-identical
// to FedAvg on integer-valued updates.
func TestTrimmedMeanZeroEqualsFedAvg(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n, d = 8, 257
	ups := randomUpdates(rng, n, d, true)
	gAvg := commitAll(&FedAvg{}, ups, d)
	gTrim := commitAll(&TrimmedMean{}, ups, d)
	for j := range gAvg {
		if gAvg[j] != gTrim[j] {
			t.Fatalf("coordinate %d: FedAvg %v != TrimmedMean(0) %v", j, gAvg[j], gTrim[j])
		}
	}

	// With arbitrary float updates and a non-power-of-two count the two
	// differ only by float64 summation order: equal within one part in 1e6.
	ups = randomUpdates(rng, 7, d, false)
	gAvg = commitAll(&FedAvg{}, ups, d)
	gTrim = commitAll(&TrimmedMean{}, ups, d)
	for j := range gAvg {
		if diff := math.Abs(float64(gAvg[j] - gTrim[j])); diff > 1e-6*(1+math.Abs(float64(gAvg[j]))) {
			t.Fatalf("coordinate %d: FedAvg %v vs TrimmedMean(0) %v", j, gAvg[j], gTrim[j])
		}
	}
}

// Median, TrimmedMean, and NormClip over either must commit bit-identical
// global vectors for every Add order.
func TestRobustPermutationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n, d = 9, 123
	ups := randomUpdates(rng, n, d, false)
	builders := map[string]func() Aggregator{
		"median":       func() Aggregator { return &Median{} },
		"trimmed:0.25": func() Aggregator { return &TrimmedMean{Frac: 0.25} },
		"clip:2:median": func() Aggregator {
			return &NormClip{Inner: &Median{}, Bound: 2}
		},
		"clip:2:trimmed:0.2": func() Aggregator {
			return &NormClip{Inner: &TrimmedMean{Frac: 0.2}, Bound: 2}
		},
	}
	for name, build := range builders {
		want := commitAll(build(), ups, d)
		for trial := 0; trial < 5; trial++ {
			shuffled := make([]Update, n)
			copy(shuffled, ups)
			rng.Shuffle(n, func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
			got := commitAll(build(), shuffled, d)
			for j := range want {
				if want[j] != got[j] {
					t.Fatalf("%s: coordinate %d differs across Add orders: %v vs %v",
						name, j, want[j], got[j])
				}
			}
		}
	}
}

func TestNormClipIdentityUnderBound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n, d = 6, 64
	ups := randomUpdates(rng, n, d, false) // norms ~ sqrt(64) = 8
	snapshot := make([][]float32, n)
	for i, u := range ups {
		snapshot[i] = append([]float32(nil), u.Params...)
	}

	plain := commitAll(&Median{}, ups, d)
	clip := &NormClip{Inner: &Median{}, Bound: 1e6}
	clipped := commitAll(clip, ups, d)
	for j := range plain {
		if plain[j] != clipped[j] {
			t.Fatalf("NormClip under the bound must be the identity; coordinate %d: %v vs %v",
				j, plain[j], clipped[j])
		}
	}
	if clip.Clipped() != 0 {
		t.Fatalf("Clipped = %d with every norm under the bound", clip.Clipped())
	}

	// Over the bound: every update is rescaled to exactly Bound, the
	// caller's slices are never mutated, and the clip counter advances.
	tight := &NormClip{Inner: &FedAvg{}, Bound: 1}
	g := commitAll(tight, ups, d)
	if tight.Clipped() != n {
		t.Fatalf("Clipped = %d, want %d", tight.Clipped(), n)
	}
	var norm float64
	for _, v := range g {
		norm += float64(v) * float64(v)
	}
	if norm = math.Sqrt(norm); norm > 1+1e-6 {
		t.Fatalf("committed norm %v exceeds the clip bound", norm)
	}
	for i, u := range ups {
		for j := range u.Params {
			if u.Params[j] != snapshot[i][j] {
				t.Fatalf("NormClip mutated the caller's update %d at %d", i, j)
			}
		}
	}
}

// The engine determinism contract extends to the robust aggregators: the
// committed global vector is bit-identical for every worker count, both
// the Engine's own pool and the shared tensor pool.
func TestRobustBitIdenticalAcrossWorkers(t *testing.T) {
	builders := map[string]func() Aggregator{
		"median":  func() Aggregator { return &Median{} },
		"trimmed": func() Aggregator { return &TrimmedMean{Frac: 0.25} },
		"clip":    func() Aggregator { return &NormClip{Inner: &Median{}, Bound: 3} },
	}
	defer tensor.SetWorkers(tensor.Workers())
	for name, build := range builders {
		run := func(workers int) []float32 {
			tensor.SetWorkers(workers)
			global := make([]float32, 16)
			e := &Engine{
				Clients: 12, Fraction: 0.75, Rounds: 5, Seed: 99,
				Parallel:  workers,
				SampleRNG: ClientRNG(99, 0, -1),
				Agg:       build(),
				Global:    global,
				Train: func(_, round, id int, rng *rand.Rand) (Update, bool) {
					u := Update{Params: make([]float32, 16), Samples: 1}
					for i := range u.Params {
						u.Params[i] = float32(id+round) + float32(rng.NormFloat64())
					}
					return u, true
				},
				Evaluate: func() float64 { return float64(global[0]) },
				OnRound:  func(RoundStats) {},
			}
			e.Run()
			return global
		}
		want := run(1)
		for workers := 2; workers <= 8; workers++ {
			got := run(workers)
			for j := range want {
				if want[j] != got[j] {
					t.Fatalf("%s: global[%d] differs between 1 and %d workers: %v vs %v",
						name, j, workers, want[j], got[j])
				}
			}
		}
	}
}

func TestRobustRejectsMismatchedLength(t *testing.T) {
	for _, a := range []Aggregator{&Median{}, &TrimmedMean{Frac: 0.1}} {
		a.Add(Update{Params: []float32{1, 2, 3}})
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%T accepted a mismatched update length", a)
				}
			}()
			a.Add(Update{Params: []float32{1, 2}})
		}()
	}
}

func TestParseAggregator(t *testing.T) {
	good := map[string]string{
		"bundle":               "bundle",
		"fedavg":               "fedavg",
		"median":               "median",
		"trimmed":              "trimmed:0.2",
		"trimmed:0.25":         "trimmed:0.25",
		"clip:100":             "clip:100:bundle",
		"clip:5:median":        "clip:5:median",
		"clip:2.5:trimmed:0.3": "clip:2.5:trimmed:0.3",
		// The clip decorator nests: outer clip over an inner clip over a
		// robust core.
		"clip:8:clip:2:median":          "clip:8:clip:2:median",
		"sharded:4:bundle":              "sharded:4:bundle",
		"sharded:1:fedavg":              "sharded:1:fedavg",
		"sharded:8:clip:3:trimmed:0.25": "sharded:8:clip:3:trimmed:0.25",
	}
	for spec, want := range good {
		a, err := ParseAggregator(spec)
		if err != nil {
			t.Fatalf("ParseAggregator(%q): %v", spec, err)
		}
		if got := AggregatorName(a); got != want {
			t.Fatalf("AggregatorName(ParseAggregator(%q)) = %q, want %q", spec, got, want)
		}
	}
}

// Every malformed spec must return a typed *PolicyError — never panic,
// never a silent fallback. The table walks the edge cases: empty spec,
// out-of-range or non-finite trim fractions, zero/negative/non-finite
// clip bounds, malformed nesting, and bad shard grammar.
func TestParseAggregatorRejectsTyped(t *testing.T) {
	bad := []string{
		"",     // empty spec: callers own defaulting now
		"krum", // unknown policy
		"trimmed:0.5", "trimmed:0.75", "trimmed:-1", "trimmed:x",
		"trimmed:NaN", "trimmed:+Inf",
		"clip:0", "clip:-3:median", "clip:x", "clip:NaN", "clip:+Inf",
		"clip:10:krum",          // bad inner spec
		"clip:2:clip:x:median",  // nested clip with a bad inner bound
		"clip:2:clip:-1:median", // nested clip with a negative inner bound
		"sharded", "sharded:", "sharded:4", "sharded:4:", "sharded:0:bundle",
		"sharded:-2:bundle", "sharded:x:bundle", "sharded:4:krum",
		"sharded:2:sharded:2:bundle", // the tree does not nest
	}
	for _, spec := range bad {
		a, err := ParseAggregator(spec)
		if err == nil {
			t.Fatalf("ParseAggregator(%q) accepted a bad spec: %v", spec, AggregatorName(a))
		}
		var pe *PolicyError
		if !errors.As(err, &pe) {
			t.Fatalf("ParseAggregator(%q) returned %T (%v), want *PolicyError", spec, err, err)
		}
		if pe.Reason == "" {
			t.Fatalf("ParseAggregator(%q): PolicyError with empty reason", spec)
		}
	}
}
