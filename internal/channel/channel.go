// Package channel implements the unreliable uplink models of the FHDnn
// paper, Sec. 3.5: additive white Gaussian noise on uncoded transmissions
// (noisy aggregation, Eq. 2-4), binary-symmetric-channel bit errors on coded
// transmissions (Eq. 6-7), and packet erasures (Eq. 8) for UDP-style
// transports. Channels corrupt the flat vector of model parameters that a
// client uploads; the server's downlink broadcast is assumed reliable,
// matching the paper.
package channel

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"

	"fhdnn/internal/hdc"
)

// Channel corrupts one uplink transmission of a flat model update. The
// input slice is never modified; implementations return a new slice.
type Channel interface {
	Transmit(update []float32, rng *rand.Rand) []float32
	Name() string
}

// Perfect is the error-free channel.
type Perfect struct{}

// Transmit returns an unmodified copy.
func (Perfect) Transmit(update []float32, _ *rand.Rand) []float32 {
	out := make([]float32, len(update))
	copy(out, update)
	return out
}

// Name implements Channel.
func (Perfect) Name() string { return "perfect" }

// AWGN adds white Gaussian noise calibrated so that the per-transmission
// signal-to-noise ratio equals SNRdB (paper Eq. 2-3, uncoded analog
// transmission).
type AWGN struct {
	SNRdB float64
}

// Transmit measures the update's signal power and adds N(0, P/SNR) noise.
func (c AWGN) Transmit(update []float32, rng *rand.Rand) []float32 {
	out := make([]float32, len(update))
	if len(update) == 0 {
		return out
	}
	var p float64
	for _, v := range update {
		p += float64(v) * float64(v)
	}
	p /= float64(len(update))
	snr := math.Pow(10, c.SNRdB/10)
	sigma := math.Sqrt(p / snr)
	for i, v := range update {
		out[i] = v + float32(rng.NormFloat64()*sigma)
	}
	return out
}

// Name implements Channel.
func (c AWGN) Name() string { return fmt.Sprintf("awgn(%gdB)", c.SNRdB) }

// PacketLoss drops whole packets of the serialized update with probability
// Rate; lost parameters arrive as zeros (the paper: "a 20% packet loss rate
// implies 20% of the weights are zero"). PacketBytes is the UDP payload
// size; parameters are 4 bytes each.
type PacketLoss struct {
	Rate        float64
	PacketBytes int
}

// DefaultPacketBytes is a typical UDP payload (Ethernet MTU minus headers).
const DefaultPacketBytes = 1024

// Transmit zeroes each packet-sized run of parameters with probability Rate.
func (c PacketLoss) Transmit(update []float32, rng *rand.Rand) []float32 {
	out := make([]float32, len(update))
	copy(out, update)
	pb := c.PacketBytes
	if pb <= 0 {
		pb = DefaultPacketBytes
	}
	perPacket := pb / 4
	if perPacket < 1 {
		perPacket = 1
	}
	for lo := 0; lo < len(out); lo += perPacket {
		if rng.Float64() < c.Rate {
			hi := lo + perPacket
			if hi > len(out) {
				hi = len(out)
			}
			for i := lo; i < hi; i++ {
				out[i] = 0
			}
		}
	}
	return out
}

// Name implements Channel.
func (c PacketLoss) Name() string { return fmt.Sprintf("packetloss(%g)", c.Rate) }

// GilbertElliott is the classical two-state Markov burst-loss model: the
// link alternates between a Good state (low loss) and a Bad state (high
// loss, e.g. deep fade or interference burst), so packet losses arrive in
// runs rather than independently. Real LPWAN losses are bursty
// [Petäjäjärvi et al.]; at equal average loss rate, bursts erase long
// contiguous stretches of a model update — a harder test of the
// holographic-dispersal property than i.i.d. erasure.
type GilbertElliott struct {
	// PGoodToBad and PBadToGood are the per-packet transition
	// probabilities; the stationary fraction of Bad packets is
	// PGoodToBad / (PGoodToBad + PBadToGood).
	PGoodToBad, PBadToGood float64
	// LossGood and LossBad are the per-packet loss probabilities within
	// each state (typically ~0 and ~1).
	LossGood, LossBad float64
	PacketBytes       int
}

// AverageLossRate returns the stationary packet loss probability.
func (c GilbertElliott) AverageLossRate() float64 {
	den := c.PGoodToBad + c.PBadToGood
	if den == 0 {
		return c.LossGood
	}
	pBad := c.PGoodToBad / den
	return (1-pBad)*c.LossGood + pBad*c.LossBad
}

// Transmit drops packets according to the two-state chain, starting from
// the stationary distribution.
func (c GilbertElliott) Transmit(update []float32, rng *rand.Rand) []float32 {
	out := make([]float32, len(update))
	copy(out, update)
	pb := c.PacketBytes
	if pb <= 0 {
		pb = DefaultPacketBytes
	}
	perPacket := pb / 4
	if perPacket < 1 {
		perPacket = 1
	}
	// start in Bad with stationary probability
	bad := false
	if den := c.PGoodToBad + c.PBadToGood; den > 0 {
		bad = rng.Float64() < c.PGoodToBad/den
	}
	for lo := 0; lo < len(out); lo += perPacket {
		loss := c.LossGood
		if bad {
			loss = c.LossBad
		}
		if rng.Float64() < loss {
			hi := lo + perPacket
			if hi > len(out) {
				hi = len(out)
			}
			for i := lo; i < hi; i++ {
				out[i] = 0
			}
		}
		if bad {
			if rng.Float64() < c.PBadToGood {
				bad = false
			}
		} else if rng.Float64() < c.PGoodToBad {
			bad = true
		}
	}
	return out
}

// Name implements Channel.
func (c GilbertElliott) Name() string {
	return fmt.Sprintf("gilbert-elliott(avg %.2g)", c.AverageLossRate())
}

// BurstyLoss builds a Gilbert-Elliott channel with the given average loss
// rate and mean burst length (in packets): inside a burst every packet is
// lost, outside none are.
func BurstyLoss(avgRate float64, meanBurstPackets float64, packetBytes int) GilbertElliott {
	if avgRate <= 0 || avgRate >= 1 || meanBurstPackets < 1 {
		panic(fmt.Sprintf("channel: invalid bursty loss avg=%g burst=%g", avgRate, meanBurstPackets))
	}
	pBadToGood := 1 / meanBurstPackets
	// stationary pBad = avgRate (LossBad=1, LossGood=0)
	pGoodToBad := avgRate * pBadToGood / (1 - avgRate)
	return GilbertElliott{
		PGoodToBad: pGoodToBad, PBadToGood: pBadToGood,
		LossGood: 0, LossBad: 1, PacketBytes: packetBytes,
	}
}

// PacketErrorRate converts a bit error probability to the packet error
// probability for packets of np bits (paper Eq. 8).
func PacketErrorRate(pe float64, np int) float64 {
	return 1 - math.Pow(1-pe, float64(np))
}

// FlipBits flips each bit of data independently with probability pe
// (binary symmetric channel). For small pe it uses geometric skip sampling
// so the cost is proportional to the number of flips, not the number of
// bits.
func FlipBits(data []byte, pe float64, rng *rand.Rand) {
	nbits := len(data) * 8
	if pe <= 0 || nbits == 0 {
		return
	}
	if pe >= 1 {
		for i := range data {
			data[i] ^= 0xFF
		}
		return
	}
	if pe > 0.05 {
		for bit := 0; bit < nbits; bit++ {
			if rng.Float64() < pe {
				data[bit/8] ^= 1 << (bit % 8)
			}
		}
		return
	}
	logq := math.Log(1 - pe)
	bit := 0
	for {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		bit += int(math.Log(u)/logq) + 1
		if bit > nbits {
			return
		}
		data[(bit-1)/8] ^= 1 << ((bit - 1) % 8)
	}
}

// Subsample deliberately transmits only a random fraction of the update's
// dimensions each round, scaled by 1/Frac so the aggregate stays unbiased.
// This turns the paper's partial-information property (Fig. 5: any subset
// of a holographic code carries a proportional share of the information)
// into a bandwidth knob: an HD client on a constrained uplink can ship 10%
// of its prototypes per round and still converge. The kept-dimension mask
// is derived from the shared per-client round RNG, so the receiver knows
// it and no indices travel on the wire.
type Subsample struct {
	Frac float64
}

// Transmit zeroes a random (1-Frac) of the dimensions and rescales the
// survivors by 1/Frac.
func (c Subsample) Transmit(update []float32, rng *rand.Rand) []float32 {
	out := make([]float32, len(update))
	if c.Frac <= 0 {
		return out
	}
	if c.Frac >= 1 {
		copy(out, update)
		return out
	}
	inv := float32(1 / c.Frac)
	for i, v := range update {
		if rng.Float64() < c.Frac {
			out[i] = v * inv
		}
	}
	return out
}

// Name implements Channel.
func (c Subsample) Name() string { return fmt.Sprintf("subsample(%g)", c.Frac) }

// WireBytes reports the reduced traffic: only the kept dimensions travel
// (4 bytes each; the mask is implied by the shared round seed).
func (c Subsample) WireBytes(n int) int {
	frac := c.Frac
	if frac > 1 {
		frac = 1
	}
	if frac < 0 {
		frac = 0
	}
	return int(float64(4*n)*frac + 0.5)
}

// BitErrorFloat32 applies BSC bit flips to the IEEE-754 float32 encoding of
// the update — the CNN transmission model of Sec. 3.5.2, where a single
// exponent-bit flip can turn 0.15625 into 5.3e37.
type BitErrorFloat32 struct {
	PE float64
}

// Transmit serializes to bytes, flips bits, and deserializes. NaN and Inf
// survivors are kept as-is: the paper's point is precisely that such
// corruption reaches the aggregator.
func (c BitErrorFloat32) Transmit(update []float32, rng *rand.Rand) []float32 {
	buf := make([]byte, 4*len(update))
	for i, v := range update {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
	}
	FlipBits(buf, c.PE, rng)
	out := make([]float32, len(update))
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return out
}

// Name implements Channel.
func (c BitErrorFloat32) Name() string { return fmt.Sprintf("biterror-f32(%g)", c.PE) }

// BitErrorQuantized transmits the update as scaled integers using the
// paper's quantizer (Sec. 3.5.2): each BlockLen-sized block (one class
// hypervector) is scaled up so its max magnitude fills the integer range,
// truncated, bit-flipped on the wire, and scaled back down at the receiver.
// The gain G is assumed to be conveyed reliably (it is implemented by the
// automatic gain control hardware in the paper's design, not transmitted as
// payload).
type BitErrorQuantized struct {
	PE       float64
	Bits     int // integer bitwidth, paper uses 32
	BlockLen int // hypervector dimension d; 0 treats the whole update as one block
}

// Transmit quantizes per block, applies the BSC to the integer codes, and
// dequantizes.
func (c BitErrorQuantized) Transmit(update []float32, rng *rand.Rand) []float32 {
	bits := c.Bits
	if bits == 0 {
		bits = 32
	}
	q := hdc.NewQuantizer(bits)
	block := c.BlockLen
	if block <= 0 {
		block = len(update)
	}
	out := make([]float32, len(update))
	for lo := 0; lo < len(update); lo += block {
		hi := lo + block
		if hi > len(update) {
			hi = len(update)
		}
		codes, gain := q.Quantize(update[lo:hi])
		buf := make([]byte, 4*len(codes))
		for i, v := range codes {
			binary.LittleEndian.PutUint32(buf[4*i:], uint32(v))
		}
		FlipBits(buf, c.PE, rng)
		for i := range codes {
			codes[i] = int32(binary.LittleEndian.Uint32(buf[4*i:]))
		}
		copy(out[lo:hi], q.Dequantize(codes, gain))
	}
	return out
}

// Name implements Channel.
func (c BitErrorQuantized) Name() string { return fmt.Sprintf("biterror-q%d(%g)", c.Bits, c.PE) }
