package channel

import (
	"math/rand"
	"testing"
)

func benchUpdate(n int) []float32 {
	rng := rand.New(rand.NewSource(1))
	u := make([]float32, n)
	for i := range u {
		u[i] = float32(rng.NormFloat64())
	}
	return u
}

func BenchmarkAWGN(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	u := benchUpdate(100000)
	c := AWGN{SNRdB: 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Transmit(u, rng)
	}
}

func BenchmarkPacketLoss(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	u := benchUpdate(100000)
	c := PacketLoss{Rate: 0.2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Transmit(u, rng)
	}
}

func BenchmarkBitErrorFloat32LowBER(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	u := benchUpdate(100000)
	c := BitErrorFloat32{PE: 1e-6} // geometric skip path
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Transmit(u, rng)
	}
}

func BenchmarkBitErrorFloat32HighBER(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	u := benchUpdate(100000)
	c := BitErrorFloat32{PE: 0.1} // dense path
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Transmit(u, rng)
	}
}

func BenchmarkBitErrorQuantized(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	u := benchUpdate(100000)
	c := BitErrorQuantized{PE: 1e-4, Bits: 32, BlockLen: 10000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Transmit(u, rng)
	}
}
