package channel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomUpdate(rng *rand.Rand, n int) []float32 {
	u := make([]float32, n)
	for i := range u {
		u[i] = float32(rng.NormFloat64() * 3)
	}
	return u
}

func TestPerfectIsIdentityAndCopies(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	u := randomUpdate(rng, 100)
	out := Perfect{}.Transmit(u, rng)
	for i := range u {
		if out[i] != u[i] {
			t.Fatal("perfect channel must not corrupt")
		}
	}
	out[0] = 999
	if u[0] == 999 {
		t.Fatal("Transmit must not alias the input")
	}
}

func TestAWGNAchievesTargetSNR(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	u := randomUpdate(rng, 200000)
	for _, snrDB := range []float64{5, 15, 25} {
		out := AWGN{SNRdB: snrDB}.Transmit(u, rng)
		var sig, noise float64
		for i := range u {
			sig += float64(u[i]) * float64(u[i])
			d := float64(out[i] - u[i])
			noise += d * d
		}
		got := 10 * math.Log10(sig/noise)
		if math.Abs(got-snrDB) > 0.3 {
			t.Fatalf("measured SNR %.2f dB, want %v dB", got, snrDB)
		}
	}
}

func TestAWGNEmptyUpdate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	out := AWGN{SNRdB: 10}.Transmit(nil, rng)
	if len(out) != 0 {
		t.Fatal("empty update must stay empty")
	}
}

func TestPacketLossZeroesWholePackets(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	u := make([]float32, 1000)
	for i := range u {
		u[i] = 1
	}
	c := PacketLoss{Rate: 0.5, PacketBytes: 40} // 10 floats per packet
	out := c.Transmit(u, rng)
	// every 10-float block is either intact or all-zero
	for lo := 0; lo < len(out); lo += 10 {
		zeros, ones := 0, 0
		for i := lo; i < lo+10; i++ {
			if out[i] == 0 {
				zeros++
			} else if out[i] == 1 {
				ones++
			}
		}
		if zeros != 10 && ones != 10 {
			t.Fatalf("packet at %d partially corrupted: %d zeros", lo, zeros)
		}
	}
}

func TestPacketLossRateStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	u := make([]float32, 100000)
	for i := range u {
		u[i] = 1
	}
	out := PacketLoss{Rate: 0.2, PacketBytes: 400}.Transmit(u, rng)
	lost := 0
	for _, v := range out {
		if v == 0 {
			lost++
		}
	}
	frac := float64(lost) / float64(len(u))
	if math.Abs(frac-0.2) > 0.03 {
		t.Fatalf("loss fraction %.3f, want ~0.2", frac)
	}
}

func TestPacketLossRateZeroAndOne(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	u := []float32{1, 2, 3, 4}
	out := PacketLoss{Rate: 0}.Transmit(u, rng)
	for i := range u {
		if out[i] != u[i] {
			t.Fatal("rate 0 must be lossless")
		}
	}
	out = PacketLoss{Rate: 1}.Transmit(u, rng)
	for _, v := range out {
		if v != 0 {
			t.Fatal("rate 1 must zero everything")
		}
	}
}

func TestPacketErrorRateFormula(t *testing.T) {
	// Eq. 8: pp = 1 - (1-pe)^Np
	if got := PacketErrorRate(0, 1000); got != 0 {
		t.Fatalf("PER(0) = %v", got)
	}
	got := PacketErrorRate(1e-3, 1000)
	want := 1 - math.Pow(1-1e-3, 1000)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("PER = %v, want %v", got, want)
	}
	if got < 0.6 || got > 0.65 {
		t.Fatalf("PER(1e-3, 1000) = %v, expected ~0.632", got)
	}
}

func TestFlipBitsStatistics(t *testing.T) {
	for _, pe := range []float64{0.01, 0.2} {
		rng := rand.New(rand.NewSource(7))
		data := make([]byte, 50000)
		FlipBits(data, pe, rng)
		flips := 0
		for _, b := range data {
			for i := 0; i < 8; i++ {
				if b&(1<<i) != 0 {
					flips++
				}
			}
		}
		frac := float64(flips) / float64(len(data)*8)
		if math.Abs(frac-pe) > pe*0.15+0.001 {
			t.Fatalf("pe=%v: flip fraction %.4f", pe, frac)
		}
	}
}

func TestFlipBitsEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	data := []byte{0xAB}
	FlipBits(data, 0, rng)
	if data[0] != 0xAB {
		t.Fatal("pe=0 must not flip")
	}
	FlipBits(data, 1, rng)
	if data[0] != 0x54 {
		t.Fatalf("pe=1 must invert all bits, got %x", data[0])
	}
	FlipBits(nil, 0.5, rng)
}

func TestBitErrorFloat32CorruptsSeverely(t *testing.T) {
	// The paper's argument: even small BER can blow up float32 weights via
	// exponent-bit flips.
	rng := rand.New(rand.NewSource(9))
	u := make([]float32, 100000)
	for i := range u {
		u[i] = 0.15625
	}
	out := BitErrorFloat32{PE: 1e-4}.Transmit(u, rng)
	maxAbs := 0.0
	changed := 0
	for i := range out {
		if out[i] != u[i] {
			changed++
		}
		a := math.Abs(float64(out[i]))
		if !math.IsNaN(a) && !math.IsInf(a, 0) && a > maxAbs {
			maxAbs = a
		}
	}
	if changed == 0 {
		t.Fatal("expected some corrupted values")
	}
	if maxAbs < 1e3 {
		t.Fatalf("expected exponent blow-up, max |value| = %v", maxAbs)
	}
}

func TestBitErrorFloat32ZeroPEIsLossless(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	u := randomUpdate(rng, 64)
	out := BitErrorFloat32{PE: 0}.Transmit(u, rng)
	for i := range u {
		if out[i] != u[i] {
			t.Fatal("pe=0 must be lossless")
		}
	}
}

// Property: the quantized channel bounds relative damage. After scale-up,
// a bit flip changes an integer code by at most 2^31, which after scale-down
// is at most ~2x the block's max magnitude — unlike float32 exponent flips
// which can amplify by 1e38.
func TestBitErrorQuantizedBoundsDamage(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		u := randomUpdate(rng, 256)
		maxAbs := 0.0
		for _, v := range u {
			if a := math.Abs(float64(v)); a > maxAbs {
				maxAbs = a
			}
		}
		out := BitErrorQuantized{PE: 1e-3, Bits: 32, BlockLen: 64}.Transmit(u, rng)
		for _, v := range out {
			a := math.Abs(float64(v))
			if math.IsNaN(a) || math.IsInf(a, 0) {
				return false
			}
			// worst case: sign-bit flip of a max-magnitude code plus the
			// original value -> bounded by ~4x block max (conservative).
			if a > 4*maxAbs+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBitErrorQuantizedLosslessWithoutErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	u := randomUpdate(rng, 100)
	out := BitErrorQuantized{PE: 0, Bits: 32, BlockLen: 50}.Transmit(u, rng)
	for i := range u {
		if math.Abs(float64(out[i]-u[i])) > 1e-4 {
			t.Fatalf("quantization round-trip error too large at %d: %v vs %v", i, out[i], u[i])
		}
	}
}

func TestBitErrorQuantizedDefaults(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	u := randomUpdate(rng, 10)
	// Bits=0 -> 32, BlockLen=0 -> whole update
	out := BitErrorQuantized{PE: 0}.Transmit(u, rng)
	for i := range u {
		if math.Abs(float64(out[i]-u[i])) > 1e-4 {
			t.Fatal("defaults should round-trip")
		}
	}
}

func TestGilbertElliottStationaryRate(t *testing.T) {
	c := BurstyLoss(0.2, 5, 40) // 20% average loss in ~5-packet bursts
	if got := c.AverageLossRate(); math.Abs(got-0.2) > 1e-9 {
		t.Fatalf("average loss %v, want 0.2", got)
	}
	rng := rand.New(rand.NewSource(17))
	u := make([]float32, 400000)
	for i := range u {
		u[i] = 1
	}
	out := c.Transmit(u, rng)
	lost := 0
	for _, v := range out {
		if v == 0 {
			lost++
		}
	}
	frac := float64(lost) / float64(len(u))
	if math.Abs(frac-0.2) > 0.04 {
		t.Fatalf("measured loss %v, want ~0.2", frac)
	}
}

func TestGilbertElliottIsBursty(t *testing.T) {
	// at equal average rate, burst losses must form longer runs than iid
	runLen := func(ch Channel) float64 {
		rng := rand.New(rand.NewSource(18))
		u := make([]float32, 200000)
		for i := range u {
			u[i] = 1
		}
		out := ch.Transmit(u, rng)
		runs, lost := 0, 0
		inRun := false
		for _, v := range out {
			if v == 0 {
				lost++
				if !inRun {
					runs++
					inRun = true
				}
			} else {
				inRun = false
			}
		}
		if runs == 0 {
			return 0
		}
		return float64(lost) / float64(runs)
	}
	bursty := runLen(BurstyLoss(0.2, 8, 40))
	iid := runLen(PacketLoss{Rate: 0.2, PacketBytes: 40})
	if bursty < 2*iid {
		t.Fatalf("burst mean run %v should far exceed iid %v", bursty, iid)
	}
}

func TestGilbertElliottDegenerate(t *testing.T) {
	// zero transition probabilities: behaves like iid at LossGood
	c := GilbertElliott{LossGood: 0.5, LossBad: 1, PacketBytes: 40}
	if got := c.AverageLossRate(); got != 0.5 {
		t.Fatalf("degenerate average = %v", got)
	}
}

func TestBurstyLossValidation(t *testing.T) {
	for _, f := range []func(){
		func() { BurstyLoss(0, 5, 40) },
		func() { BurstyLoss(1, 5, 40) },
		func() { BurstyLoss(0.2, 0.5, 40) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSubsampleUnbiased(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	u := []float32{2, -4, 6}
	sum := make([]float64, 3)
	const reps = 30000
	c := Subsample{Frac: 0.25}
	for r := 0; r < reps; r++ {
		out := c.Transmit(u, rng)
		for i, v := range out {
			sum[i] += float64(v)
		}
	}
	for i := range sum {
		if math.Abs(sum[i]/reps-float64(u[i])) > 0.1*math.Abs(float64(u[i])) {
			t.Fatalf("biased subsampling at %d: mean %v, want %v", i, sum[i]/reps, u[i])
		}
	}
}

func TestSubsampleKeepFraction(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	u := make([]float32, 100000)
	for i := range u {
		u[i] = 1
	}
	out := Subsample{Frac: 0.1}.Transmit(u, rng)
	kept := 0
	for _, v := range out {
		if v != 0 {
			kept++
		}
	}
	frac := float64(kept) / float64(len(u))
	if math.Abs(frac-0.1) > 0.01 {
		t.Fatalf("kept fraction %v, want ~0.1", frac)
	}
}

func TestSubsampleEdgeFracs(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	u := []float32{1, 2, 3}
	out := Subsample{Frac: 1}.Transmit(u, rng)
	for i := range u {
		if out[i] != u[i] {
			t.Fatal("frac=1 must be identity")
		}
	}
	out = Subsample{Frac: 0}.Transmit(u, rng)
	for _, v := range out {
		if v != 0 {
			t.Fatal("frac=0 must zero everything")
		}
	}
}

func TestSubsampleWireBytes(t *testing.T) {
	c := Subsample{Frac: 0.25}
	if got := c.WireBytes(1000); got != 1000 {
		t.Fatalf("WireBytes = %d, want 1000 (25%% of 4000)", got)
	}
	if got := (Subsample{Frac: 2}).WireBytes(10); got != 40 {
		t.Fatalf("clamped WireBytes = %d", got)
	}
	if got := (Subsample{Frac: -1}).WireBytes(10); got != 0 {
		t.Fatalf("negative frac WireBytes = %d", got)
	}
}

func TestChannelNames(t *testing.T) {
	for _, c := range []Channel{Perfect{}, AWGN{SNRdB: 10}, PacketLoss{Rate: 0.2},
		BitErrorFloat32{PE: 1e-4}, BitErrorQuantized{PE: 1e-4, Bits: 32}} {
		if c.Name() == "" {
			t.Fatal("channel must have a name")
		}
	}
}

// Property: AWGN noise is unbiased — the mean of many corrupted copies
// converges to the original.
func TestAWGNUnbiased(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	u := []float32{1, -2, 3}
	sum := make([]float64, 3)
	const reps = 20000
	for r := 0; r < reps; r++ {
		out := AWGN{SNRdB: 10}.Transmit(u, rng)
		for i, v := range out {
			sum[i] += float64(v)
		}
	}
	for i := range sum {
		if math.Abs(sum[i]/reps-float64(u[i])) > 0.05 {
			t.Fatalf("biased noise at %d: mean %v, want %v", i, sum[i]/reps, u[i])
		}
	}
}
