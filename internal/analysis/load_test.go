package analysis

import (
	"os"
	"path/filepath"
	"testing"
)

// Tests for the loader's build-tag handling. The analyzer type-checks one
// view of the module — build.Default, i.e. the release build with neither
// fhdnnfast nor fhdnndebug set — and every rule runs over exactly that
// view. These tests pin both halves of that contract: tag-excluded files
// must not leak findings into the sweep, and the release-view file that
// replaces them must still be seen (so a gap can't hide behind a tag).

// writeModule materializes files (relative path → source) as a throwaway
// module rooted at a temp dir and returns the root.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module probe\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	for rel, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// loadedFiles loads one package through the real loader and returns the
// base names of the files it parsed.
func loadedFiles(t *testing.T, root, importPath string) []string {
	t.Helper()
	l, err := newLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	p, err := l.load(importPath)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, f := range p.Files {
		names = append(names, filepath.Base(l.fset.Position(f.Pos()).Filename))
	}
	return names
}

func TestLoaderPicksReleaseViewOfTaggedFiles(t *testing.T) {
	// kernel.go and kernel_fast.go are the repo's fhdnnfast pattern: two
	// implementations of one symbol, selected by tag. The loader must
	// take the !fhdnnfast file plus the untagged file and nothing else —
	// the fhdnnfast and fhdnndebug files belong to builds the analyzer
	// does not model.
	root := writeModule(t, map[string]string{
		"internal/tensor/tensor.go":      "package tensor\n\nfunc Dot(a, b []float32) float32 { return Kernel(a, b) }\n",
		"internal/tensor/kernel.go":      "//go:build !fhdnnfast\n\npackage tensor\n\nfunc Kernel(a, b []float32) float32 {\n\tvar s float32\n\tfor i := range a {\n\t\ts += a[i] * b[i]\n\t}\n\treturn s\n}\n",
		"internal/tensor/kernel_fast.go": "//go:build fhdnnfast\n\npackage tensor\n\nfunc Kernel(a, b []float32) float32 { return 0 }\n",
		"internal/tensor/guard_debug.go": "//go:build fhdnndebug\n\npackage tensor\n\nfunc init() { panic(\"debug guard\") }\n",
	})
	got := loadedFiles(t, root, "probe/internal/tensor")
	want := map[string]bool{"tensor.go": true, "kernel.go": true}
	if len(got) != len(want) {
		t.Fatalf("loaded %v, want exactly %v", got, []string{"kernel.go", "tensor.go"})
	}
	for _, name := range got {
		if !want[name] {
			t.Errorf("loaded tag-gated file %s", name)
		}
	}
}

func TestLoaderSkipsTestFiles(t *testing.T) {
	// _test.go files are not part of the linted view (ImportDir returns
	// them separately); a hazard planted there must neither load nor
	// break type-checking of the package proper.
	root := writeModule(t, map[string]string{
		"internal/compress/c.go":      "package compress\n\nconst Version = 1\n",
		"internal/compress/c_test.go": "package compress\n\nfunc brokenOnPurpose() { undefinedSymbol() }\n",
	})
	got := loadedFiles(t, root, "probe/internal/compress")
	if len(got) != 1 || got[0] != "c.go" {
		t.Fatalf("loaded %v, want [c.go]", got)
	}
}

func TestSweepFollowsReleaseView(t *testing.T) {
	// End-to-end over Run: the same unchecked decode exists in both the
	// fhdnnfast file and the release file. Only the release copy may be
	// reported — exactly one finding, attributed to decode.go — proving
	// rules neither double-count tag twins nor silently skip the
	// release-view file.
	root := writeModule(t, map[string]string{
		"internal/compress/decode.go":      "//go:build !fhdnnfast\n\npackage compress\n\nfunc Decode(data []byte) []float32 {\n\tif len(data) < 4 {\n\t\treturn nil\n\t}\n\tn := int(data[0]) | int(data[1])<<8\n\treturn make([]float32, n)\n}\n",
		"internal/compress/decode_fast.go": "//go:build fhdnnfast\n\npackage compress\n\nfunc Decode(data []byte) []float32 {\n\tif len(data) < 4 {\n\t\treturn nil\n\t}\n\tn := int(data[0]) | int(data[1])<<8\n\treturn make([]float32, n)\n}\n",
	})
	res, err := Run(root, []string{"./..."}, []string{RuleTaintAlloc})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Diags) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(res.Diags), res.Diags)
	}
	if base := filepath.Base(res.Diags[0].File); base != "decode.go" {
		t.Errorf("finding attributed to %s, want decode.go", base)
	}
}

func TestSweepIgnoresHazardBehindTag(t *testing.T) {
	// The inverse: a hazard that exists only under fhdnnfast is invisible
	// to the release-view sweep. This is the documented blind spot — tag
	// builds are linted by their own CI legs running the same binary, not
	// by widening the default view — and this test keeps the behavior
	// deliberate rather than accidental.
	root := writeModule(t, map[string]string{
		"internal/compress/decode.go":     "package compress\n\nfunc Size(data []byte) int {\n\tif len(data) < 4 {\n\t\treturn 0\n\t}\n\treturn int(data[0]) | int(data[1])<<8\n}\n",
		"internal/compress/alloc_fast.go": "//go:build fhdnnfast\n\npackage compress\n\nfunc Alloc(data []byte) []float32 { return make([]float32, Size(data)) }\n",
	})
	res, err := Run(root, []string{"./..."}, []string{RuleTaintAlloc, RuleTaintIndex, RuleTaintLoop})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Diags) != 0 {
		t.Fatalf("tag-gated hazard leaked into the release sweep: %v", res.Diags)
	}
}

func TestExpandSkipsTestdataAndHiddenDirs(t *testing.T) {
	// Fixture corpora live under testdata/src and deliberately contain
	// findings; pattern expansion must never descend into them (or into
	// hidden/_ dirs), or every self-sweep would drown in fixture noise.
	root := writeModule(t, map[string]string{
		"internal/ok/ok.go":               "package ok\n\nconst A = 1\n",
		"internal/ok/testdata/src/x/x.go": "package x\n\nfunc Decode(b []byte) []int { return make([]int, int(b[0])) }\n",
		"internal/.hidden/h.go":           "package hidden\n\nconst B = 2\n",
		"internal/_disabled/d.go":         "package disabled\n\nconst C = 3\n",
	})
	l, err := newLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := l.expand([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || paths[0] != "probe/internal/ok" {
		t.Fatalf("expand = %v, want [probe/internal/ok]", paths)
	}
}
