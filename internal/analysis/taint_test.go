package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Unit tests for the wire-taint engine: label algebra, summary
// translation, and targeted end-to-end probes for the sanitization
// semantics that the fixture corpus cannot isolate as sharply —
// each probe is a tiny synthetic module swept with only the taint
// rules.

func TestTaintSetAlgebra(t *testing.T) {
	cases := []struct {
		name            string
		s               taintSet
		wire, untrusted bool
		params          taintSet
	}{
		{"clean", 0, false, false, 0},
		{"wire", wireBit, true, true, 0},
		{"lenwire", lenWireBit, false, true, 0},
		{"param0", 1, false, false, 1},
		{"mixed", wireBit | lenWireBit | 0b101, true, true, 0b101},
	}
	for _, tc := range cases {
		if got := tc.s.hasWire(); got != tc.wire {
			t.Errorf("%s: hasWire() = %v, want %v", tc.name, got, tc.wire)
		}
		if got := tc.s.untrusted(); got != tc.untrusted {
			t.Errorf("%s: untrusted() = %v, want %v", tc.name, got, tc.untrusted)
		}
		if got := tc.s.params(); got != tc.params {
			t.Errorf("%s: params() = %b, want %b", tc.name, got, tc.params)
		}
	}
}

func TestTranslateTaint(t *testing.T) {
	// A summary taint of {wire, param0, param2} applied at a call site
	// whose arguments carry {param1} and {wire}: the wire label passes
	// through, param bits are replaced by the argument taints.
	args := []taintSet{1 << 1, 0, wireBit}
	got := translateTaint(wireBit|1<<0|1<<2, args)
	want := wireBit | 1<<1
	if got != want {
		t.Errorf("translateTaint = %b, want %b", got, want)
	}
	// Param bits beyond the argument list vanish (variadic slack).
	if got := translateTaint(1<<5, args); got != 0 {
		t.Errorf("out-of-range param bit = %b, want 0", got)
	}
}

func TestWireSourceNaming(t *testing.T) {
	for name, want := range map[string]bool{
		"Decode": true, "DecodeModel": true, "Unmarshal": true,
		"UnmarshalFrame": true, "Read": true, "ReadHeader": true,
		"Parse": false, "Load": false,
	} {
		got := hasPrefixWord(name, "Decode") || hasPrefixWord(name, "Unmarshal") ||
			hasPrefixWord(name, "Read")
		if got != want {
			t.Errorf("source-name match for %q = %v, want %v", name, got, want)
		}
	}
}

// sweepTaint writes src as internal/compress/f.go of a throwaway module
// and returns the taint findings of a full sweep.
func sweepTaint(t *testing.T, src string) []Diagnostic {
	t.Helper()
	dir := t.TempDir()
	pkgDir := filepath.Join(dir, "internal", "compress")
	if err := os.MkdirAll(pkgDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module probe\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(pkgDir, "f.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := Run(dir, []string{"./..."}, []string{RuleTaintAlloc, RuleTaintIndex, RuleTaintLoop})
	if err != nil {
		t.Fatalf("Run: %v\nsource:\n%s", err, src)
	}
	return res.Diags
}

func wantFindings(t *testing.T, diags []Diagnostic, substrs ...string) {
	t.Helper()
	if len(diags) != len(substrs) {
		t.Fatalf("got %d findings, want %d: %v", len(diags), len(substrs), diags)
	}
	for i, sub := range substrs {
		if !strings.Contains(diags[i].Message, sub) {
			t.Errorf("finding %d = %q, want substring %q", i, diags[i].Message, sub)
		}
	}
}

func TestTaintedBoundDoesNotSanitize(t *testing.T) {
	// Both n and m come off the wire: comparing one attacker value
	// against another proves nothing, so the allocation still fires.
	diags := sweepTaint(t, `package compress

func u32(b []byte) int { return int(b[0]) | int(b[1])<<8 }

func Decode(data []byte) []float32 {
	if len(data) < 8 {
		return nil
	}
	n, m := u32(data), u32(data[4:])
	if n > m {
		return nil
	}
	return make([]float32, n)
}
`)
	wantFindings(t, diags, "wire-tainted n sizes make")
}

func TestLoopConditionDoesNotSanitizeItsBound(t *testing.T) {
	// Regression: the loop gate i < n compares the clean induction
	// variable against the wire count. On exit i has chased n, so the
	// comparison must not count as a bound check — neither for the loop
	// itself nor for uses dominated by it.
	diags := sweepTaint(t, `package compress

func u32(b []byte) int { return int(b[0]) | int(b[1])<<8 }

func Decode(data []byte, table []int) int {
	if len(data) < 4 {
		return 0
	}
	n := u32(data)
	s := 0
	for i := 0; i < n; i++ {
		s++
	}
	return s + table[n]
}
`)
	wantFindings(t, diags, "bounds the loop", "indexes table")
}

func TestParamCapIsTrusted(t *testing.T) {
	// The caller-supplied cap is a trusted bound (the caller sized it),
	// and len() of a merely parameter-labeled slice is too: both decodes
	// are clean.
	diags := sweepTaint(t, `package compress

func u32(b []byte) int { return int(b[0]) | int(b[1])<<8 }

func Decode(data []byte, cap int) []float32 {
	if len(data) < 4 {
		return nil
	}
	n := u32(data)
	if n < 0 || n > cap {
		return nil
	}
	return make([]float32, n)
}

func DecodeInto(data []byte, out []float32) float32 {
	if len(data) < 4 {
		return 0
	}
	i := u32(data)
	if i < 0 || i >= len(out) {
		return 0
	}
	return out[i]
}
`)
	wantFindings(t, diags)
}

func TestLenOfWireDataNeverFires(t *testing.T) {
	// Loops and allocations proportional to bytes physically received
	// are not amplification: len(data) carries the lenWire label, which
	// propagates but never becomes a finding on its own.
	diags := sweepTaint(t, `package compress

func Decode(data []byte) []byte {
	out := make([]byte, len(data))
	for i := 0; i < len(data); i++ {
		out[i] = data[i]
	}
	return out
}
`)
	wantFindings(t, diags)
}

func TestReaderWriteThrough(t *testing.T) {
	// Bytes pulled through io.ReadFull from a wire reader are wire
	// data; an integer peeled out of them sizes nothing unchecked.
	diags := sweepTaint(t, `package compress

import "io"

func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := int(hdr[0]) | int(hdr[1])<<8
	return make([]byte, n), nil
}
`)
	wantFindings(t, diags, "wire-tainted n sizes make")
}
