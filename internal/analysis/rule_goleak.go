package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// arrowOp is the channel-receive operator.
const arrowOp = token.ARROW

// Rule goleak: every goroutine spawned in the concurrency packages
// (internal/flnet, internal/fedcore, internal/faults, internal/tensor and
// the cmd binaries) must have a provable exit path. The server is a
// streaming shard tree of long-lived goroutines; one worker stuck on a
// channel op whose counterparty has exited is an invisible leak that only
// shows up as a fleet slowly running out of memory.
//
// The rule is module-wide: goroutine bodies are the function literals and
// named functions launched by go statements (spawn sites recorded on the
// call graph), plus every function classified goroutine-only — reachable
// exclusively from spawned code (callGraph.goroutineOnly), like the shard
// handle helpers that run only under runShard.
//
// Per body, four checks, each anchored in what is statically provable:
//
//  1. trap region — a CFG region reachable from the entry from which the
//     exit block is unreachable (for {} with no break/return). This is a
//     proof of non-termination, so when one is found the remaining checks
//     are skipped for the body: the trap is the root cause.
//  2. blocking select — a select with no default and no case that
//     receives from a channel def that is closed somewhere in the module
//     (a close releases all receivers: the quit-channel shape), from
//     ctx.Done(), or from a timer. Such a select cannot be released at
//     shutdown.
//  3. bare receive — a receive outside any select from a def that is
//     never closed in the module: if the sender vanishes, the goroutine
//     blocks forever with no alternative arm.
//  4. channel range — a range over a channel def that is never closed in
//     the module: the loop can never terminate.
//
// Channel identity is the *types.Var def (dataflow.go chanVarOf): a field
// of a message received from another channel deliberately does NOT unify
// with the channel the sender closed — whether that sender is still alive
// is exactly the unprovable part, and such receives need either a select
// arm on a real quit channel or an audited //fhdnn:allow.
//
// Nested function literals inside an analyzed body are skipped: they run
// at some other time (or on another goroutine, where they are analyzed as
// their own spawn site). Bare sends are chandisc territory and are not
// flagged here.

var concurrencyPkgs = []string{
	"internal/flnet", "internal/fedcore", "internal/faults", "internal/tensor",
}

// concurrencyScoped reports whether the concurrency rules audit this
// package: the four long-lived-goroutine packages plus every binary.
func concurrencyScoped(p *pkg) bool {
	return relIn(p, concurrencyPkgs...) || strings.HasPrefix(p.Rel, "cmd/")
}

// leakUnit is one goroutine body to audit.
type leakUnit struct {
	pkg    *pkg
	name   string         // display name for messages
	body   *ast.BlockStmt // the code that runs on the goroutine
	anchor ast.Node       // fallback diagnostic position
}

// checkGoLeak runs the module-wide goroutine-exit audit. Findings are
// grouped per package so Run can thread them through suppression.
func checkGoLeak(mp *modulePass, pattern []*pkg) map[*pkg][]Diagnostic {
	inPattern := make(map[*pkg]bool, len(pattern))
	for _, p := range pattern {
		inPattern[p] = true
	}
	audit := func(p *pkg) bool { return inPattern[p] && concurrencyScoped(p) }

	var units []leakUnit
	seenFn := make(map[*types.Func]bool)
	seenLit := make(map[*ast.FuncLit]bool)
	g := mp.graph
	for _, fn := range g.order {
		node := g.nodes[fn]
		for _, sp := range node.spawns {
			switch {
			case sp.lit != nil:
				if audit(node.pkg) && !seenLit[sp.lit] {
					seenLit[sp.lit] = true
					units = append(units, leakUnit{
						pkg:  node.pkg,
						name: "goroutine launched by " + funcDisplayName(fn),
						body: sp.lit.Body, anchor: sp.stmt,
					})
				}
			case sp.target != nil:
				tn, ok := g.nodes[sp.target]
				if ok && audit(tn.pkg) && !seenFn[sp.target] {
					seenFn[sp.target] = true
					units = append(units, leakUnit{
						pkg:  tn.pkg,
						name: funcDisplayName(sp.target),
						body: tn.decl.Body, anchor: tn.decl,
					})
				}
			}
		}
	}
	// Goroutine-only helpers: bodies that execute exclusively on spawned
	// goroutines even though they are not themselves spawn targets.
	for _, fn := range g.order {
		if !mp.goOnly[fn] || seenFn[fn] {
			continue
		}
		node := g.nodes[fn]
		if !audit(node.pkg) {
			continue
		}
		seenFn[fn] = true
		units = append(units, leakUnit{
			pkg:  node.pkg,
			name: funcDisplayName(fn),
			body: node.decl.Body, anchor: node.decl,
		})
	}

	out := make(map[*pkg][]Diagnostic)
	for _, u := range units {
		out[u.pkg] = append(out[u.pkg], leakCheckBody(mp, u)...)
	}
	return out
}

// leakCheckBody audits one goroutine body.
func leakCheckBody(mp *modulePass, u leakUnit) []Diagnostic {
	fset := mp.l.fset
	info := u.pkg.Info
	inv := mp.chans

	// Check 1: trap regions — blocks reachable from the entry with no path
	// to the exit.
	g := buildCFG(u.body)
	er := g.exitReachable()
	reach := make([]bool, len(g.blocks))
	reach[g.entry.idx] = true
	stack := []*block{g.entry}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.succs {
			if !reach[s.idx] {
				reach[s.idx] = true
				stack = append(stack, s)
			}
		}
	}
	var trapAt ast.Node
	trapped := false
	for _, b := range g.blocks {
		if !reach[b.idx] || er[b.idx] {
			continue
		}
		trapped = true
		for _, a := range b.atoms {
			if trapAt == nil || a.Pos() < trapAt.Pos() {
				trapAt = a
			}
		}
	}
	if trapped {
		if trapAt == nil {
			trapAt = u.anchor
		}
		return []Diagnostic{diag(fset, RuleGoLeak, trapAt,
			"%s can never return once control reaches here: no CFG path leads back to the function exit, so the goroutine runs (or blocks) forever", u.name)}
	}

	var diags []Diagnostic

	// Receives that are select communication clauses are judged by the
	// select check, not the bare-receive check.
	commRecv := make(map[ast.Node]bool)
	walkSkipLits(u.body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, cl := range sel.Body.List {
			cc := cl.(*ast.CommClause)
			if rx := commRecvExpr(cc.Comm); rx != nil {
				commRecv[rx] = true
			}
		}
		return true
	})

	walkSkipLits(u.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectStmt:
			// Check 2: some arm must be releasable at shutdown.
			ok := false
			for _, cl := range n.Body.List {
				cc := cl.(*ast.CommClause)
				if cc.Comm == nil { // default: never blocks
					ok = true
					break
				}
				if rx := commRecvExpr(cc.Comm); rx != nil && releasableRecv(info, inv, rx) {
					ok = true
					break
				}
			}
			if !ok {
				diags = append(diags, diag(fset, RuleGoLeak, n,
					"select in %s can block forever: no default and no case receives from a channel that is ever closed, a timer, or ctx.Done(), so shutdown cannot release this goroutine", u.name))
			}
		case *ast.UnaryExpr:
			// Check 3: bare blocking receive.
			if n.Op != arrowOp || commRecv[n] {
				return true
			}
			if releasableRecv(info, inv, n) {
				return true
			}
			diags = append(diags, diag(fset, RuleGoLeak, n,
				"blocking receive from %s in %s: the channel is never closed in the module, so a vanished counterparty leaks this goroutine", types.ExprString(n.X), u.name))
		case *ast.RangeStmt:
			// Check 4: range over a channel needs a module close.
			t := info.TypeOf(n.X)
			if t == nil {
				return true
			}
			if _, isChan := t.Underlying().(*types.Chan); !isChan {
				return true
			}
			if v := chanVarOf(info, n.X); inv.isClosed(v) {
				return true
			}
			diags = append(diags, diag(fset, RuleGoLeak, n,
				"range over %s in %s never terminates: no close of this channel def exists anywhere in the module", types.ExprString(n.X), u.name))
		}
		return true
	})
	return diags
}

// walkSkipLits walks a subtree without descending into function literals.
func walkSkipLits(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if m == nil {
			return true
		}
		return fn(m)
	})
}

// commRecvExpr extracts the receive expression of a select comm statement
// (`<-ch`, `v := <-ch`, `v, ok = <-ch`), nil for sends.
func commRecvExpr(comm ast.Stmt) *ast.UnaryExpr {
	var e ast.Expr
	switch s := comm.(type) {
	case *ast.ExprStmt:
		e = s.X
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			e = s.Rhs[0]
		}
	}
	if ux, ok := ast.Unparen(e).(*ast.UnaryExpr); ok && ux.Op == arrowOp {
		return ux
	}
	return nil
}

// releasableRecv reports whether a receive can be released without its
// counterparty cooperating per-message: the operand def is closed
// somewhere in the module (close broadcasts to all receivers), or the
// operand is ctx.Done(), time.After/Tick, or a Timer/Ticker channel.
func releasableRecv(info *types.Info, inv *chanInventory, rx *ast.UnaryExpr) bool {
	op := ast.Unparen(rx.X)
	if call, ok := op.(*ast.CallExpr); ok {
		if fn := calleeOf(info, call); fn != nil && fn.Pkg() != nil {
			switch fn.Pkg().Path() {
			case "context":
				return fn.Name() == "Done"
			case "time":
				return fn.Name() == "After" || fn.Name() == "Tick"
			}
		}
		return false
	}
	if se, ok := op.(*ast.SelectorExpr); ok && se.Sel.Name == "C" {
		if t := info.TypeOf(se.X); t != nil && isTimeTimerOrTicker(t) {
			return true
		}
	}
	return inv.isClosed(chanVarOf(info, op))
}

// isTimeTimerOrTicker matches *time.Timer / *time.Ticker (and the bare
// named types).
func isTimeTimerOrTicker(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "time" {
		return false
	}
	return obj.Name() == "Timer" || obj.Name() == "Ticker"
}
