package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// taint.go is the interprocedural wire-taint engine behind the
// taintalloc, taintindex and taintloop rules. It proves (or refutes) the
// decode-surface invariant the module's robustness story rests on: every
// integer an attacker can choose — a claimed element count, a sparse
// index, a loop bound decoded from a frame — is compared against a
// trustworthy cap on every path before it sizes an allocation, indexes a
// buffer, or bounds a loop.
//
// # Labels
//
// Taint is a 64-bit label set per value. Bits 0..61 are the parameter
// positions of the function under analysis (receiver first), used to
// build per-function summaries; bit 63 (wire) marks values derived from
// attacker bytes; bit 62 (lenWire) marks integers derived only from the
// *length* of attacker data. lenWire propagates and invalidates bound
// checks (a cap read as len(untrusted) is itself attacker-chosen) but
// never fires a finding on its own: a loop or allocation proportional to
// bytes that were physically received is the decoder's job, while a
// decoded *claim* (wire) can promise 2^26 elements in a 24-byte frame.
//
// # Sources
//
// Wire bits enter through the declared decode surface: []byte and
// io.Reader parameters of exported Decode*/Unmarshal* functions and
// methods, and of exported Read* free functions, in the wire packages
// (internal/compress, internal/fedcore, internal/flnet, internal/hdc);
// plus, inside internal/flnet, reads of http.Request/Response Body,
// Header, URL and Form fields. Everything an unknown (stdlib) callee
// returns is tainted by its arguments, which covers
// binary.LittleEndian.Uint32, strconv.Atoi, io.ReadAll and Header.Get
// without a model for each; io.ReadFull/ReadAtLeast, binary.Read and
// Read([]byte) method calls additionally taint their destination buffer
// (write-through).
//
// # Propagation
//
// Intraprocedurally taint flows through a dedicated forward dataflow
// over the statement-level CFG (cfg.go): assignments, conversions,
// arithmetic, index/slice reads (the element of a tainted buffer is
// tainted; writing a tainted element into a clean buffer does not taint
// the buffer), composite literals, range statements, and make (a slice
// made with a tainted length carries the taint — the length is the
// attack). Function-literal bodies are not analyzed (their statements
// are not CFG atoms); values captured by closures keep whatever taint
// they had.
//
// Interprocedurally, every function gets a summary — which parameter
// labels reach each result, whether the function's own wire sources
// reach a result unsanitized, and which parameter labels reach a
// dangerous site in its body — computed to fixpoint over the module
// call graph (callgraph.go), with interface calls fanned out to module
// implementers. A finding for a parameter-reachable site is reported at
// the site itself (where the fix or //fhdnn:allow belongs), naming the
// caller the wire value came from.
//
// # Sanitization
//
// A comparison (<, <=, >, >=, ==, !=) sanitizes the integer variables
// mentioned on one side iff the other side carries no wire/lenWire bits
// — constants, named caps, and parameters qualify (an integer parameter
// is the callee's contract that the caller validated it; the caller's
// own call site is checked against the same rules). The comparison
// sanitizes a use iff its block strictly dominates the use and at least
// one branch out of the comparison's block avoids the use entirely
// (computed on the CFG successor graph, refusing to travel back through
// the comparison block) — this is how `if n > cap { return ErrX }`
// early-returns and `if j >= n { continue }` loop guards qualify, while
// a non-diverting `if n > cap { log() }` does not. Two passes per
// function keep this sound: pass A computes taint with no sanitization
// and decides which comparison bounds are trustworthy; pass B applies
// them. Taint only grows across the call-graph fixpoint, so bounds only
// become less trusted and the whole computation is monotone.
//
// Known, deliberate imprecision (each kept because the repo's real
// decode paths stay provable without it): clamping via assignment
// (n = min-style `if n > cap { n = cap }`) does not sanitize — the
// merged state still carries the entry taint; == and != count as
// sanitizers; values round-tripped through channels, maps written by
// callees via pointers, and closure bodies are not tracked.
type taintSet uint64

const (
	wireBit    taintSet = 1 << 63
	lenWireBit taintSet = 1 << 62
	paramMask  taintSet = lenWireBit - 1
	// maxTaintParams is the number of parameter positions a summary can
	// label; later parameters are simply untracked.
	maxTaintParams = 62
	// maxTaintRounds caps the call-graph fixpoint; real module SCCs
	// stabilize in a handful of rounds.
	maxTaintRounds = 32
)

func (t taintSet) hasWire() bool    { return t&wireBit != 0 }
func (t taintSet) untrusted() bool  { return t&(wireBit|lenWireBit) != 0 }
func (t taintSet) params() taintSet { return t & paramMask }

// taintWireRels are the module-relative package paths whose exported
// decode surface is seeded as a wire source, and whose functions (plus
// their callee closure) the engine analyzes.
var taintWireRels = map[string]bool{
	"internal/compress": true,
	"internal/fedcore":  true,
	"internal/flnet":    true,
	"internal/hdc":      true,
}

// httpSourceRel is the one package whose http.Request/Response field
// reads are wire sources (the HTTP surface lives there; elsewhere those
// types do not appear on attacker-facing paths).
const httpSourceRel = "internal/flnet"

type sinkKind uint8

const (
	sinkAlloc sinkKind = iota
	sinkIndex
	sinkLoop
)

func (k sinkKind) rule() string {
	switch k {
	case sinkAlloc:
		return RuleTaintAlloc
	case sinkIndex:
		return RuleTaintIndex
	default:
		return RuleTaintLoop
	}
}

// sinkSite is one dangerous site in some function body: the node (for
// the position and for deduplication across callers), plus the message
// fragments describing it.
type sinkSite struct {
	kind sinkKind
	node ast.Node
	pkg  *pkg
	// subj is the expression whose taint matters ("count", "(i+probe)%n"),
	// action the thing it does ("sizes make", "indexes s.shards").
	subj, action string
}

// paramSink is a summary entry: parameter labels of the summarized
// function that reach the site with no dominating bound check.
type paramSink struct {
	site   *sinkSite
	params taintSet
}

// fnSummary is the interprocedural summary of one function.
type fnSummary struct {
	// ret[i] is the taint of result i in terms of the function's own
	// parameter labels, plus wire/lenWire for its own unsanitized sources.
	ret []taintSet
	// sinks are the parameter-reachable dangerous sites (transitive:
	// a callee's parameter sink chains through this function's arguments).
	sinks []paramSink
}

func (s *fnSummary) equal(o *fnSummary) bool {
	if o == nil {
		return s == nil || (len(s.ret) == 0 && len(s.sinks) == 0)
	}
	if len(s.ret) != len(o.ret) || len(s.sinks) != len(o.sinks) {
		return false
	}
	for i := range s.ret {
		if s.ret[i] != o.ret[i] {
			return false
		}
	}
	for i := range s.sinks {
		if s.sinks[i].site != o.sinks[i].site || s.sinks[i].params != o.sinks[i].params {
			return false
		}
	}
	return true
}

// pendingFinding is a deduplicated finding-in-progress for one sink
// site: a direct wire flow in the site's own function beats the
// via-caller phrasing, and the first caller (in deterministic analysis
// order) wins among several.
type pendingFinding struct {
	site   *sinkSite
	direct bool
	caller string // display name of the tainting caller (via findings)
}

// taintEngine drives the module-wide analysis.
type taintEngine struct {
	mp       *modulePass
	demanded []*types.Func // wire-package functions plus callee closure
	sums     map[*types.Func]*fnSummary
	flows    map[*types.Func]*taintFlow
	sites    map[ast.Node]*sinkSite
	pending  map[ast.Node]*pendingFinding
	order    []ast.Node // site registration order, for deterministic emit
}

// buildTaint analyzes the module and returns the engine with findings
// computed; the three rule entry points in analysis.go slice them per
// rule. loaded restricts where findings may be reported (the pattern
// set), matching the per-package rules.
func buildTaint(mp *modulePass, loaded []*pkg) *taintEngine {
	eng := &taintEngine{
		mp:      mp,
		sums:    make(map[*types.Func]*fnSummary),
		flows:   make(map[*types.Func]*taintFlow),
		sites:   make(map[ast.Node]*sinkSite),
		pending: make(map[ast.Node]*pendingFinding),
	}
	var roots []*types.Func
	for _, fn := range mp.graph.order {
		if taintWireRels[mp.graph.nodes[fn].pkg.Rel] {
			roots = append(roots, fn)
		}
	}
	reached := mp.graph.reach(roots)
	for _, fn := range mp.graph.order {
		if _, ok := reached[fn]; ok {
			eng.demanded = append(eng.demanded, fn)
		}
	}
	for round := 0; round < maxTaintRounds; round++ {
		changed := false
		for _, fn := range eng.demanded {
			sum := eng.analyzeFn(fn, false)
			if !sum.equal(eng.sums[fn]) {
				eng.sums[fn] = sum
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for _, fn := range eng.demanded {
		eng.analyzeFn(fn, true)
	}
	return eng
}

// findings returns the diagnostics of one rule, grouped by the package
// owning each site, restricted to the pattern set.
func (eng *taintEngine) findings(rule string, loaded []*pkg) map[*pkg][]Diagnostic {
	if eng == nil {
		return nil
	}
	inPattern := make(map[*pkg]bool, len(loaded))
	for _, p := range loaded {
		inPattern[p] = true
	}
	out := make(map[*pkg][]Diagnostic)
	for _, node := range eng.order {
		pf := eng.pending[node]
		if pf == nil || pf.site.kind.rule() != rule || !inPattern[pf.site.pkg] {
			continue
		}
		s := pf.site
		var msg string
		if pf.direct {
			msg = fmt.Sprintf("wire-tainted %s %s without a dominating bound check", s.subj, s.action)
		} else {
			msg = fmt.Sprintf("wire-tainted value from %s flows into %s, which %s without a dominating bound check",
				pf.caller, s.subj, s.action)
		}
		out[s.pkg] = append(out[s.pkg], diag(eng.mp.l.fset, rule, s.node, "%s", msg))
	}
	return out
}

// siteFor registers (or retrieves) the sink site of a node.
func (eng *taintEngine) siteFor(kind sinkKind, node ast.Node, p *pkg, subj, action string) *sinkSite {
	if s, ok := eng.sites[node]; ok {
		return s
	}
	s := &sinkSite{kind: kind, node: node, pkg: p, subj: subj, action: action}
	eng.sites[node] = s
	return s
}

// report records a finding candidate for a site, keeping the best
// phrasing (direct beats via-caller, first caller wins).
func (eng *taintEngine) report(site *sinkSite, direct bool, caller string) {
	pf, ok := eng.pending[site.node]
	if !ok {
		eng.pending[site.node] = &pendingFinding{site: site, direct: direct, caller: caller}
		eng.order = append(eng.order, site.node)
		return
	}
	if direct && !pf.direct {
		pf.direct = true
	}
}

// summariesFor resolves a call target to the module summaries that may
// run: the function itself when it has a body, the module implementers
// for an interface method, nil when the callee is opaque (stdlib, a
// function value) and the conservative argument union applies.
func (eng *taintEngine) summariesFor(fn *types.Func) []*types.Func {
	if fn == nil {
		return nil
	}
	if _, ok := eng.mp.graph.nodes[fn]; ok {
		return []*types.Func{fn}
	}
	if isInterfaceMethod(fn) {
		var out []*types.Func
		for _, impl := range implementersOf(fn, eng.mp.graph.concrete) {
			if _, ok := eng.mp.graph.nodes[impl]; ok {
				out = append(out, impl)
			}
		}
		return out
	}
	return nil
}

// analyzeFn runs the two-pass flow over one function, returning its
// summary; with collect set it also registers findings for wire-tainted
// sinks (its own and, via summaries, its callees').
func (eng *taintEngine) analyzeFn(fn *types.Func, collect bool) *fnSummary {
	tf := eng.flowFor(fn)
	if tf == nil {
		return &fnSummary{}
	}
	return tf.run(collect)
}

// taintState maps local variables to their taint.
type taintState map[*types.Var]taintSet

func cloneTaint(st taintState) taintState {
	out := make(taintState, len(st))
	for v, t := range st {
		out[v] = t
	}
	return out
}

// boundCheck is one comparison that may sanitize integer variables.
type boundCheck struct {
	blk, atomIdx int
	x, y         ast.Expr
	xVars, yVars []*types.Var
	xOK, yOK     bool // decided from pass-A taint of the opposite side
}

func (c *boundCheck) sanitizes(v *types.Var) bool {
	if c.xOK {
		for _, x := range c.xVars {
			if x == v {
				return true
			}
		}
	}
	if c.yOK {
		for _, y := range c.yVars {
			if y == v {
				return true
			}
		}
	}
	return false
}

// taintFlow is the per-function analysis: structural artifacts built
// once (CFG, dominators, comparisons, seeds), state recomputed per
// fixpoint round.
type taintFlow struct {
	eng        *taintEngine
	node       *cgNode
	info       *types.Info
	sig        *types.Signature
	g          *funcCFG
	dom        []map[int]bool
	seeds      taintState
	paramIdx   map[*types.Var]int
	resultVars []*types.Var // named results ordered; nil entries when unnamed
	comps      []*boundCheck
	compsByVar map[*types.Var][]*boundCheck
	forConds   map[ast.Node]bool
	httpPkg    bool

	sanitize         bool
	curBlk, curAtom  int
	in               []taintState
	divertCache      map[int][]bool
	collect          bool
	sum              *fnSummary
	sinkSeen         map[ast.Node]bool
	sumSinks         map[*sinkSite]taintSet
	sumSinkOrder     []*sinkSite
	enclosingDisplay string
}

// flowFor builds (or retrieves) the structural half of a function's
// analysis; nil when the function has no body in the module.
func (eng *taintEngine) flowFor(fn *types.Func) *taintFlow {
	if tf, ok := eng.flows[fn]; ok {
		return tf
	}
	node := eng.mp.graph.nodes[fn]
	if node == nil || node.decl == nil || node.decl.Body == nil {
		eng.flows[fn] = nil
		return nil
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		eng.flows[fn] = nil
		return nil
	}
	tf := &taintFlow{
		eng:              eng,
		node:             node,
		info:             node.pkg.Info,
		sig:              sig,
		g:                buildCFG(node.decl.Body),
		paramIdx:         make(map[*types.Var]int),
		compsByVar:       make(map[*types.Var][]*boundCheck),
		forConds:         make(map[ast.Node]bool),
		httpPkg:          node.pkg.Rel == httpSourceRel,
		divertCache:      make(map[int][]bool),
		enclosingDisplay: funcDisplayName(fn),
	}
	tf.dom = tf.g.dominators()

	// Parameter labels: receiver first, then parameters, bits 0..61.
	idx := 0
	addParam := func(v *types.Var) {
		if v != nil && idx < maxTaintParams {
			tf.paramIdx[v] = idx
		}
		idx++
	}
	if recv := sig.Recv(); recv != nil {
		addParam(recv)
	}
	for i := 0; i < sig.Params().Len(); i++ {
		addParam(sig.Params().At(i))
	}
	for i := 0; i < sig.Results().Len(); i++ {
		v := sig.Results().At(i)
		if v.Name() == "" || v.Name() == "_" {
			v = nil
		}
		tf.resultVars = append(tf.resultVars, v)
	}

	// Seeds: every labeled parameter gets its own bit; the wire decode
	// surface additionally gets the wire bit on its byte/reader inputs.
	tf.seeds = make(taintState, len(tf.paramIdx))
	for v, i := range tf.paramIdx {
		tf.seeds[v] = 1 << uint(i)
	}
	if taintWireRels[node.pkg.Rel] && fn.Exported() && wireSourceName(fn, node.decl) {
		for i := 0; i < sig.Params().Len(); i++ {
			v := sig.Params().At(i)
			if isWireCarrier(v.Type()) {
				tf.seeds[v] |= wireBit
			}
		}
	}

	// For-loop condition atoms, collected first: a loop's own condition
	// is excluded from the sanitizer set below. Its "clean" side is the
	// induction variable, whose value chases the tainted bound, so on
	// loop exit the comparison proves nothing about the bound — treating
	// it as a bound check would launder the count it is driven by.
	// (Cost: a deliberate while-style clamp loop is not recognized as a
	// sanitizer either; clamp with a branch instead.)
	ast.Inspect(node.decl.Body, func(n ast.Node) bool {
		if fs, ok := n.(*ast.ForStmt); ok && fs.Cond != nil {
			tf.forConds[fs.Cond] = true
		}
		return true
	})

	// Comparisons, indexed per variable for the sanitization check.
	for _, b := range tf.g.blocks {
		for i, atom := range b.atoms {
			if tf.forConds[atom] {
				continue
			}
			blk, ai := b.idx, i
			shallowInspect(atom, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok {
					return true
				}
				switch be.Op {
				case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
				default:
					return true
				}
				c := &boundCheck{
					blk: blk, atomIdx: ai,
					x: be.X, y: be.Y,
					xVars: intVarsOf(tf.info, be.X),
					yVars: intVarsOf(tf.info, be.Y),
				}
				tf.comps = append(tf.comps, c)
				for _, v := range c.xVars {
					tf.compsByVar[v] = append(tf.compsByVar[v], c)
				}
				for _, v := range c.yVars {
					tf.compsByVar[v] = append(tf.compsByVar[v], c)
				}
				return true
			})
		}
	}
	eng.flows[fn] = tf
	return tf
}

// wireSourceName reports whether the declaration matches the seeded
// decode surface: Decode*/Unmarshal* functions and methods, plus Read*
// free functions ("Read* method" would seed every io.Reader
// implementation's own out-buffer, which is the opposite of a source).
func wireSourceName(fn *types.Func, decl *ast.FuncDecl) bool {
	name := fn.Name()
	if hasPrefixWord(name, "Decode") || hasPrefixWord(name, "Unmarshal") {
		return true
	}
	return hasPrefixWord(name, "Read") && decl.Recv == nil
}

// hasPrefixWord matches prefix as a name prefix (Decode, DecodeModel —
// not a lexicographic accident like "Decoded" being off-limits; any
// continuation counts, which is the intended loose match).
func hasPrefixWord(name, prefix string) bool {
	return len(name) >= len(prefix) && name[:len(prefix)] == prefix
}

// isWireCarrier reports whether a parameter type can carry raw wire
// bytes: []byte or anything implementing io.Reader.
func isWireCarrier(t types.Type) bool {
	if sl, ok := t.Underlying().(*types.Slice); ok {
		if b, ok := sl.Elem().Underlying().(*types.Basic); ok && b.Kind() == types.Uint8 {
			return true
		}
	}
	return isReaderType(t)
}

func isReaderType(t types.Type) bool {
	obj, _, _ := types.LookupFieldOrMethod(t, true, nil, "Read")
	m, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := m.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 1 || sig.Results().Len() != 2 {
		return false
	}
	sl, ok := sig.Params().At(0).Type().Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8 && types.Identical(sig.Results().At(1).Type(), errorType)
}

// run executes pass A (no sanitization, decides bound trust), pass B
// (sanitized), then extracts the summary and, when collecting, findings.
func (tf *taintFlow) run(collect bool) *fnSummary {
	tf.collect = collect
	tf.sum = &fnSummary{ret: make([]taintSet, tf.sig.Results().Len())}
	tf.sumSinks = make(map[*sinkSite]taintSet)
	tf.sumSinkOrder = nil
	tf.sinkSeen = make(map[ast.Node]bool)

	tf.sanitize = false
	inA := tf.solve()
	for _, c := range tf.comps {
		st := tf.stateAt(inA, c.blk, c.atomIdx)
		c.xOK = len(c.xVars) > 0 && !tf.eval(c.y, st).untrusted()
		c.yOK = len(c.yVars) > 0 && !tf.eval(c.x, st).untrusted()
	}
	tf.sanitize = true
	inB := tf.solve()
	tf.in = inB

	for _, b := range tf.g.blocks {
		st := inB[b.idx]
		if st == nil {
			continue // unreachable from entry: nothing executes here
		}
		st = cloneTaint(st)
		for i, atom := range b.atoms {
			tf.curBlk, tf.curAtom = b.idx, i
			tf.extract(st, atom)
			tf.transfer(st, b, i)
		}
	}
	for _, s := range tf.sumSinkOrder {
		tf.sum.sinks = append(tf.sum.sinks, paramSink{site: s, params: tf.sumSinks[s]})
	}
	return tf.sum
}

// solve runs the forward may-dataflow to fixpoint and returns the
// per-block entry states.
func (tf *taintFlow) solve() []taintState {
	in := make([]taintState, len(tf.g.blocks))
	in[tf.g.entry.idx] = cloneTaint(tf.seeds)
	work := []*block{tf.g.entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		st := cloneTaint(in[b.idx])
		for i := range b.atoms {
			tf.curBlk, tf.curAtom = b.idx, i
			tf.transfer(st, b, i)
		}
		for _, s := range b.succs {
			if joinTaint(&in[s.idx], st) {
				work = append(work, s)
			}
		}
	}
	return in
}

// joinTaint unions src into *dst, reporting growth.
func joinTaint(dst *taintState, src taintState) bool {
	if *dst == nil {
		*dst = cloneTaint(src)
		return true
	}
	changed := false
	for v, t := range src {
		if old := (*dst)[v]; old|t != old {
			(*dst)[v] = old | t
			changed = true
		}
	}
	return changed
}

// stateAt recomputes the state immediately before atom atomIdx of block
// blk from the given entry states (pass-A semantics: sanitize off).
func (tf *taintFlow) stateAt(in []taintState, blk, atomIdx int) taintState {
	st := in[blk]
	if st == nil {
		return taintState{}
	}
	st = cloneTaint(st)
	saved := tf.sanitize
	tf.sanitize = false
	b := tf.g.blocks[blk]
	for i := 0; i < atomIdx && i < len(b.atoms); i++ {
		tf.curBlk, tf.curAtom = blk, i
		tf.transfer(st, b, i)
	}
	tf.sanitize = saved
	return st
}

// transfer applies one atom's effect to the state.
func (tf *taintFlow) transfer(st taintState, b *block, i int) {
	atom := b.atoms[i]
	switch n := atom.(type) {
	case *ast.AssignStmt:
		tf.assign(st, n)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for j, name := range vs.Names {
					v := lhsVarOf(tf.info, name)
					if v == nil {
						continue
					}
					switch {
					case len(vs.Values) == len(vs.Names):
						st[v] = tf.eval(vs.Values[j], st)
					case len(vs.Values) == 1:
						if call, ok := ast.Unparen(vs.Values[0]).(*ast.CallExpr); ok {
							st[v] = tf.callTaint(call, j, st)
						} else {
							st[v] = tf.eval(vs.Values[0], st)
						}
					default:
						st[v] = 0 // zero value
					}
				}
			}
		}
	case *ast.RangeStmt:
		tf.rangeAssign(st, n)
	}
	tf.writeThrough(st, atom)
}

// assign handles every AssignStmt shape.
func (tf *taintFlow) assign(st taintState, n *ast.AssignStmt) {
	if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
		// Compound assignment (+=, ^=, ...): the target keeps its taint
		// and absorbs the operand's.
		if len(n.Lhs) == 1 && len(n.Rhs) == 1 {
			if v := lhsVarOf(tf.info, n.Lhs[0]); v != nil {
				st[v] |= tf.eval(n.Rhs[0], st)
			}
		}
		return
	}
	if len(n.Lhs) == len(n.Rhs) {
		// Evaluate all RHS first (tuple semantics for swaps).
		ts := make([]taintSet, len(n.Rhs))
		for i, r := range n.Rhs {
			ts[i] = tf.eval(r, st)
		}
		for i, l := range n.Lhs {
			tf.assignTo(st, l, ts[i])
		}
		return
	}
	if len(n.Rhs) == 1 {
		switch r := ast.Unparen(n.Rhs[0]).(type) {
		case *ast.CallExpr:
			for i, l := range n.Lhs {
				tf.assignTo(st, l, tf.callTaint(r, i, st))
			}
		case *ast.TypeAssertExpr:
			t := tf.eval(r.X, st)
			tf.assignTo(st, n.Lhs[0], t)
			if len(n.Lhs) > 1 {
				tf.assignTo(st, n.Lhs[1], 0) // ok bool
			}
		case *ast.IndexExpr:
			t := tf.eval(r, st)
			tf.assignTo(st, n.Lhs[0], t)
			if len(n.Lhs) > 1 {
				tf.assignTo(st, n.Lhs[1], 0)
			}
		case *ast.UnaryExpr:
			// v, ok := <-ch: channel contents are not tracked.
			for _, l := range n.Lhs {
				tf.assignTo(st, l, 0)
			}
		}
	}
}

// assignTo writes taint to an lvalue. Only plain variables get strong
// updates; writes through an index/selector/star leave the container's
// taint unchanged (storing a tainted element does not make the
// container's *length* or other elements attacker-controlled, and
// dropping the write keeps element reads governed by the container).
func (tf *taintFlow) assignTo(st taintState, l ast.Expr, t taintSet) {
	if id, ok := ast.Unparen(l).(*ast.Ident); ok {
		if v := lhsVarOf(tf.info, id); v != nil {
			st[v] = t
		}
	}
}

// rangeAssign models a range statement's key/value bindings.
func (tf *taintFlow) rangeAssign(st taintState, n *ast.RangeStmt) {
	src := tf.eval(n.X, st)
	var keyT, valT taintSet
	switch tf.info.TypeOf(n.X).Underlying().(type) {
	case *types.Map:
		keyT, valT = src, src // both halves of a tainted map are tainted
	case *types.Chan:
		keyT, valT = 0, 0
	case *types.Basic: // range over int (Go 1.22) or string
		keyT, valT = 0, src
	default: // slice, array, pointer-to-array
		keyT, valT = 0, src
	}
	if n.Key != nil {
		tf.assignTo(st, n.Key, keyT)
	}
	if n.Value != nil {
		tf.assignTo(st, n.Value, valT)
	}
}

// writeThrough models calls that fill a caller buffer with source
// bytes: io.ReadFull/ReadAtLeast, binary.Read, and any Read([]byte)
// method on a tainted receiver.
func (tf *taintFlow) writeThrough(st taintState, atom ast.Node) {
	shallowInspect(atom, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeOf(tf.info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		var dst ast.Expr
		var src taintSet
		switch {
		case fn.Pkg().Path() == "io" && (fn.Name() == "ReadFull" || fn.Name() == "ReadAtLeast") && len(call.Args) >= 2:
			dst, src = call.Args[1], tf.eval(call.Args[0], st)
		case fn.Pkg().Path() == "encoding/binary" && fn.Name() == "Read" && len(call.Args) >= 3:
			dst, src = call.Args[2], tf.eval(call.Args[0], st)
		case fn.Name() == "Read" && len(call.Args) == 1:
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				dst, src = call.Args[0], tf.eval(sel.X, st)
			}
		}
		if dst != nil && src != 0 {
			if v := bufferRootVar(tf.info, dst); v != nil {
				st[v] |= src
			}
		}
		return true
	})
}

// bufferRootVar finds the variable owning a buffer expression (buf,
// buf[:], &buf, b.scratch all root at the named variable).
func bufferRootVar(info *types.Info, e ast.Expr) *types.Var {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return lhsVarOf(info, x)
		case *ast.SliceExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		default:
			return nil
		}
	}
}

// lhsVarOf resolves an identifier to its variable object (defs or uses).
func lhsVarOf(info *types.Info, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := info.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

// eval computes the taint of an expression in the given state at the
// current evaluation point (tf.curBlk/curAtom, used by sanitization).
func (tf *taintFlow) eval(e ast.Expr, st taintState) taintSet {
	if e == nil {
		return 0
	}
	if tv, ok := tf.info.Types[e]; ok && tv.Value != nil {
		return 0 // constant (literal or named), however it is spelled
	}
	if t := tf.info.TypeOf(e); t != nil {
		if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsBoolean != 0 {
			// A wire-derived bool (a decoded flag bit) cannot size an
			// allocation, index a buffer or bound a loop; dropping taint
			// here keeps a flag byte from smearing wire bits over a whole
			// composite literal (ReadEncoder's Binarize field).
			return 0
		}
	}
	switch x := e.(type) {
	case *ast.Ident:
		v := lhsVarOf(tf.info, x)
		if v == nil {
			return 0
		}
		t := st[v]
		if t != 0 && tf.sanitize && isIntVar(v) && tf.sanitized(v) {
			return 0
		}
		return t
	case *ast.ParenExpr:
		return tf.eval(x.X, st)
	case *ast.UnaryExpr:
		return tf.eval(x.X, st)
	case *ast.StarExpr:
		return tf.eval(x.X, st)
	case *ast.BinaryExpr:
		return tf.eval(x.X, st) | tf.eval(x.Y, st)
	case *ast.IndexExpr:
		// Reading an element of a tainted container yields tainted data;
		// a tainted index into a clean container does not (the read
		// either succeeds with trusted data or panics — and the panic is
		// exactly what taintindex reports at this site).
		return tf.eval(x.X, st)
	case *ast.SliceExpr:
		return tf.eval(x.X, st)
	case *ast.TypeAssertExpr:
		return tf.eval(x.X, st)
	case *ast.SelectorExpr:
		if tf.httpSource(x) {
			return wireBit
		}
		if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
			if _, isPkg := tf.info.Uses[id].(*types.PkgName); isPkg {
				return 0 // qualified package-level object: trusted
			}
		}
		return tf.eval(x.X, st)
	case *ast.CompositeLit:
		var t taintSet
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				t |= tf.eval(kv.Value, st)
			} else {
				t |= tf.eval(el, st)
			}
		}
		return t
	case *ast.CallExpr:
		return tf.callTaint(x, 0, st)
	case *ast.FuncLit:
		return 0
	}
	return 0
}

// httpSource reports whether a selector reads an attacker-controlled
// http.Request/Response field (only inside the HTTP-surface package).
func (tf *taintFlow) httpSource(x *ast.SelectorExpr) bool {
	if !tf.httpPkg {
		return false
	}
	t := tf.info.TypeOf(x.X)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "net/http" {
		return false
	}
	switch obj.Name() {
	case "Request":
		switch x.Sel.Name {
		case "Body", "Header", "URL", "Form", "PostForm", "Trailer":
			return true
		}
	case "Response":
		switch x.Sel.Name {
		case "Body", "Header", "Trailer":
			return true
		}
	}
	return false
}

// callTaint computes the taint of result res of a call.
func (tf *taintFlow) callTaint(call *ast.CallExpr, res int, st taintState) taintSet {
	info := tf.info
	if isConversion(info, call) {
		if len(call.Args) == 1 {
			return tf.eval(call.Args[0], st)
		}
		return 0
	}
	switch {
	case isBuiltin(info, call, "len"), isBuiltin(info, call, "cap"):
		// The length of wire data is attacker-proportional but physically
		// materialized: lenWire, never wire. Lengths of merely
		// parameter-labeled containers (a receiver's own shard slice, a
		// caller's buffer) are trusted caps and drop the labels.
		if len(call.Args) == 1 && tf.eval(call.Args[0], st).untrusted() {
			return lenWireBit
		}
		return 0
	case isBuiltin(info, call, "make"):
		// A slice made with a tainted length carries it: the length is
		// the attack, and downstream len()/loops inherit it.
		var t taintSet
		for _, a := range call.Args[1:] {
			t |= tf.eval(a, st)
		}
		return t
	case isBuiltin(info, call, "append"):
		var t taintSet
		for _, a := range call.Args {
			t |= tf.eval(a, st)
		}
		return t
	case isBuiltin(info, call, "min"):
		// min(tainted, cap) is a clamp: clean if any argument is clean.
		var t taintSet
		for _, a := range call.Args {
			at := tf.eval(a, st)
			if at == 0 {
				return 0
			}
			t |= at
		}
		return t
	case isBuiltin(info, call, "max"):
		var t taintSet
		for _, a := range call.Args {
			t |= tf.eval(a, st)
		}
		return t
	case isBuiltin(info, call, "new"), isBuiltin(info, call, "copy"),
		isBuiltin(info, call, "delete"), isBuiltin(info, call, "clear"),
		isBuiltin(info, call, "panic"), isBuiltin(info, call, "recover"),
		isBuiltin(info, call, "print"), isBuiltin(info, call, "println"),
		isBuiltin(info, call, "close"), isBuiltin(info, call, "complex"),
		isBuiltin(info, call, "real"), isBuiltin(info, call, "imag"):
		return 0
	}
	fn := calleeOf(info, call)
	if cands := tf.eng.summariesFor(fn); len(cands) > 0 {
		var t taintSet
		known := false
		for _, c := range cands {
			sum := tf.eng.sums[c]
			if sum == nil {
				continue // bottom: contributes nothing this round
			}
			known = true
			args := tf.argTaints(call, c, st)
			if res < len(sum.ret) {
				t |= translateTaint(sum.ret[res], args)
			}
		}
		if known || len(cands) > 0 {
			return t
		}
	}
	// Opaque callee (stdlib, function value): conservatively the union
	// of receiver and argument taints flows to every result.
	var t taintSet
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		t |= tf.eval(sel.X, st)
	}
	for _, a := range call.Args {
		t |= tf.eval(a, st)
	}
	return t
}

// argTaints computes the per-callee-parameter taints of a call
// (receiver first when the callee is a method), matching the label
// layout of flowFor.
func (tf *taintFlow) argTaints(call *ast.CallExpr, callee *types.Func, st taintState) []taintSet {
	sig, _ := callee.Type().(*types.Signature)
	if sig == nil {
		return nil
	}
	nparams := sig.Params().Len()
	args := call.Args
	var out []taintSet
	if sig.Recv() != nil {
		recvT := taintSet(0)
		viaSel := false
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if s, ok := tf.info.Selections[sel]; ok && s.Kind() == types.MethodVal {
				recvT = tf.eval(sel.X, st)
				viaSel = true
			}
		}
		if !viaSel && len(args) == nparams+1 {
			// Method expression T.M(recv, ...): first argument is the
			// receiver.
			recvT = tf.eval(args[0], st)
			args = args[1:]
		}
		out = append(out, recvT)
	}
	slots := make([]taintSet, nparams)
	for i, a := range args {
		j := i
		if j >= nparams {
			j = nparams - 1 // variadic overflow folds into the last slot
		}
		if j >= 0 {
			slots[j] |= tf.eval(a, st)
		}
	}
	return append(out, slots...)
}

// translateTaint maps a summary label set into the caller's labels:
// parameter bits become the corresponding argument taints; wire and
// lenWire pass through.
func translateTaint(t taintSet, args []taintSet) taintSet {
	out := t &^ paramMask
	p := t.params()
	for i := 0; p != 0 && i < len(args); i++ {
		if p&(1<<uint(i)) != 0 {
			out |= args[i]
			p &^= 1 << uint(i)
		}
	}
	return out
}

// sanitized reports whether v is covered by a trusted comparison that
// strictly dominates the current evaluation point and diverts at least
// one branch away from it.
func (tf *taintFlow) sanitized(v *types.Var) bool {
	for _, c := range tf.compsByVar[v] {
		if !c.sanitizes(v) {
			continue
		}
		if c.blk == tf.curBlk || !tf.dom[tf.curBlk][c.blk] {
			continue
		}
		if tf.diverts(c.blk, tf.curBlk) {
			return true
		}
	}
	return false
}

// diverts reports whether some successor branch of block h cannot reach
// block u without re-entering h: the comparison in h genuinely guards u
// (an early return, a continue, a loop exit), rather than both branches
// falling through to it.
func (tf *taintFlow) diverts(h, u int) bool {
	q := tf.divertCache[h]
	if q == nil {
		blocks := tf.g.blocks
		q = make([]bool, len(blocks))
		for _, s := range blocks[h].succs {
			if s.idx == h {
				continue
			}
			reach := make([]bool, len(blocks))
			reach[s.idx] = true
			stack := []*block{s}
			for len(stack) > 0 {
				b := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, nx := range b.succs {
					if nx.idx == h || reach[nx.idx] {
						continue
					}
					reach[nx.idx] = true
					stack = append(stack, nx)
				}
			}
			for i := range q {
				if !reach[i] {
					q[i] = true
				}
			}
		}
		tf.divertCache[h] = q
	}
	return u < len(q) && q[u]
}

// isIntVar reports whether a variable has integer type (the only kind a
// comparison can sanitize — "len(data) > 4" must not launder the byte
// slice itself).
func isIntVar(v *types.Var) bool {
	b, ok := v.Type().Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// intVarsOf collects the integer-typed variables mentioned in one side
// of a comparison.
func intVarsOf(info *types.Info, e ast.Expr) []*types.Var {
	var out []*types.Var
	shallowInspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := info.Uses[id].(*types.Var); ok && isIntVar(v) {
			out = append(out, v)
		}
		return true
	})
	return out
}

// extract scans one atom for returns and sinks with the pre-atom state.
func (tf *taintFlow) extract(st taintState, atom ast.Node) {
	if ret, ok := atom.(*ast.ReturnStmt); ok {
		tf.extractReturn(st, ret)
	}
	if tf.forConds[atom] {
		if e, ok := atom.(ast.Expr); ok {
			tf.loopSink(e, tf.condTaint(e, st))
		}
	}
	shallowInspect(atom, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			tf.callSinks(st, x)
		case *ast.IndexExpr:
			tf.indexSink(st, x)
		case *ast.SliceExpr:
			tf.sliceSink(st, x)
		}
		return true
	})
}

// extractReturn accumulates result taints into the summary.
func (tf *taintFlow) extractReturn(st taintState, ret *ast.ReturnStmt) {
	n := len(tf.sum.ret)
	switch {
	case len(ret.Results) == 0:
		for i, v := range tf.resultVars {
			if v != nil && i < n {
				tf.sum.ret[i] |= tf.retVisible(st[v], v)
			}
		}
	case len(ret.Results) == n:
		for i, r := range ret.Results {
			tf.sum.ret[i] |= tf.eval(r, st)
		}
	case len(ret.Results) == 1 && n > 1:
		if call, ok := ast.Unparen(ret.Results[0]).(*ast.CallExpr); ok {
			for i := 0; i < n; i++ {
				tf.sum.ret[i] |= tf.callTaint(call, i, st)
			}
		}
	}
}

// retVisible applies sanitization to a named-result variable read by a
// bare return (eval would do it for explicit results).
func (tf *taintFlow) retVisible(t taintSet, v *types.Var) taintSet {
	if t != 0 && tf.sanitize && isIntVar(v) && tf.sanitized(v) {
		return 0
	}
	return t
}

// registerSink records a dangerous site: wire taint becomes a finding
// (when collecting), parameter labels chain into the summary; the
// subj/action pair feeds the diagnostic message.
func (tf *taintFlow) registerSink(kind sinkKind, node ast.Node, t taintSet, subj, action string) {
	if t == 0 || tf.sinkSeen[node] {
		return
	}
	tf.sinkSeen[node] = true
	site := tf.eng.siteFor(kind, node, tf.node.pkg, subj, action)
	if t.hasWire() && tf.collect {
		tf.eng.report(site, true, "")
	}
	if p := t.params(); p != 0 {
		if _, ok := tf.sumSinks[site]; !ok {
			tf.sumSinkOrder = append(tf.sumSinkOrder, site)
		}
		tf.sumSinks[site] |= p
	}
}

// loopSink handles a for-statement condition.
func (tf *taintFlow) loopSink(cond ast.Expr, t taintSet) {
	tf.registerSink(sinkLoop, cond, t, types.ExprString(cond), "bounds the loop")
}

// condTaint evaluates a loop condition's bound taint. The condition
// itself is boolean — eval deliberately drops booleans — so this walks
// through logical connectives and comparisons to the scalars they
// compare: those are what decide how long the loop runs.
func (tf *taintFlow) condTaint(e ast.Expr, st taintState) taintSet {
	switch x := ast.Unparen(e).(type) {
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LAND, token.LOR:
			return tf.condTaint(x.X, st) | tf.condTaint(x.Y, st)
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
			return tf.eval(x.X, st) | tf.eval(x.Y, st)
		}
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			return tf.condTaint(x.X, st)
		}
	}
	return tf.eval(e, st)
}

// callSinks handles allocation sinks and callee-summary sinks at a call.
func (tf *taintFlow) callSinks(st taintState, call *ast.CallExpr) {
	info := tf.info
	switch {
	case isBuiltin(info, call, "make"):
		for _, a := range call.Args[1:] {
			tf.registerSink(sinkAlloc, call, tf.eval(a, st), types.ExprString(a), "sizes make")
		}
		return
	case isBuiltin(info, call, "append"):
		if call.Ellipsis.IsValid() && len(call.Args) > 0 {
			a := call.Args[len(call.Args)-1]
			tf.registerSink(sinkAlloc, call, tf.eval(a, st), types.ExprString(a), "grows append")
		}
		return
	}
	fn := calleeOf(info, call)
	if fn == nil {
		return
	}
	if fn.Pkg() != nil && (fn.Pkg().Path() == "bytes" || fn.Pkg().Path() == "strings") &&
		fn.Name() == "Repeat" && len(call.Args) == 2 {
		tf.registerSink(sinkAlloc, call, tf.eval(call.Args[1], st),
			types.ExprString(call.Args[1]), "sizes "+fn.Pkg().Name()+".Repeat")
		return
	}
	// Callee-summary sinks: a parameter-reachable site inside a module
	// callee fires here when this call feeds it wire (finding at the
	// site) or our own parameters (chained into our summary).
	for _, c := range tf.eng.summariesFor(fn) {
		sum := tf.eng.sums[c]
		if sum == nil || len(sum.sinks) == 0 {
			continue
		}
		args := tf.argTaints(call, c, st)
		for _, ps := range sum.sinks {
			t := translateTaint(ps.params, args)
			if t.hasWire() && tf.collect {
				tf.eng.report(ps.site, false, tf.enclosingDisplay)
			}
			if p := t.params(); p != 0 {
				if _, ok := tf.sumSinks[ps.site]; !ok {
					tf.sumSinkOrder = append(tf.sumSinkOrder, ps.site)
				}
				tf.sumSinks[ps.site] |= p
			}
		}
	}
}

// indexSink handles s[i] for indexable (non-map) containers.
func (tf *taintFlow) indexSink(st taintState, x *ast.IndexExpr) {
	if !indexableBase(tf.info.TypeOf(x.X)) {
		return
	}
	tf.registerSink(sinkIndex, x, tf.eval(x.Index, st),
		types.ExprString(x.Index), "indexes "+types.ExprString(x.X))
}

// sliceSink handles s[lo:hi:max].
func (tf *taintFlow) sliceSink(st taintState, x *ast.SliceExpr) {
	var t taintSet
	var subj string
	for _, b := range []ast.Expr{x.Low, x.High, x.Max} {
		if b == nil {
			continue
		}
		bt := tf.eval(b, st)
		if bt != 0 && subj == "" {
			subj = types.ExprString(b)
		}
		t |= bt
	}
	if subj == "" {
		subj = "bound"
	}
	tf.registerSink(sinkIndex, x, t, subj, "slices "+types.ExprString(x.X))
}

// indexableBase reports whether indexing the type with an out-of-range
// integer panics (slices, arrays, pointers-to-array, strings — not
// maps, whose lookups cannot fault, and not type-parameterized voodoo).
func indexableBase(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Array:
		return true
	case *types.Pointer:
		_, ok := u.Elem().Underlying().(*types.Array)
		return ok
	case *types.Basic:
		return u.Info()&types.IsString != 0
	}
	return false
}
