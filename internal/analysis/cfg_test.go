package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// typecheckFunc parses and type-checks a single-file package (stdlib
// imports only) and returns the named function's declaration.
func typecheckFunc(t *testing.T, src, name string) (*token.FileSet, *ast.FuncDecl, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatal(err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fset, fd, info
		}
	}
	t.Fatalf("function %s not found", name)
	return nil, nil, nil
}

// reachableFrom collects the blocks reachable from b.
func reachableFrom(b *block) map[*block]bool {
	seen := map[*block]bool{b: true}
	stack := []*block{b}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range cur.succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// TestCFGStructure exercises every control construct the builder handles
// and checks the graph's global invariants: the exit is reachable, every
// atom lives in exactly one block, and loops produce back edges.
func TestCFGStructure(t *testing.T) {
	src := `package p
func f(xs []int, ch chan int, cond bool) int {
	total := 0
	if cond {
		total++
	} else {
		total--
	}
outer:
	for i := 0; i < 10; i++ {
		for _, x := range xs {
			if x == 3 {
				continue
			}
			if x == 4 {
				break outer
			}
			total += x
		}
	}
	switch total {
	case 1:
		total = 2
		fallthrough
	case 2:
		total = 3
	default:
		total = 4
	}
	select {
	case v := <-ch:
		total += v
	default:
	}
	goto done
done:
	return total
}`
	_, fd, _ := typecheckFunc(t, src, "f")
	g := buildCFG(fd.Body)

	reach := reachableFrom(g.entry)
	if !reach[g.exit] {
		t.Fatal("exit block not reachable from entry")
	}

	seen := make(map[ast.Node]*block)
	for _, b := range g.blocks {
		for _, a := range b.atoms {
			if prev, dup := seen[a]; dup {
				t.Errorf("atom %T appears in blocks %d and %d", a, prev.idx, b.idx)
			}
			seen[a] = b
		}
	}

	backEdges := 0
	for _, b := range g.blocks {
		for _, s := range b.succs {
			if s.idx <= b.idx {
				backEdges++
			}
		}
	}
	if backEdges < 2 {
		t.Errorf("expected back edges for both loops, found %d", backEdges)
	}

	if len(g.commAtoms) != 1 {
		t.Errorf("expected 1 select comm atom, got %d", len(g.commAtoms))
	}
}

// TestCFGUnreachableCode pins that statements after a return still get a
// block (no atoms are dropped) without becoming reachable.
func TestCFGUnreachableCode(t *testing.T) {
	src := `package p
func f() int {
	return 1
	return 2
}`
	_, fd, _ := typecheckFunc(t, src, "f")
	g := buildCFG(fd.Body)
	atoms := 0
	for _, b := range g.blocks {
		atoms += len(b.atoms)
	}
	if atoms != 2 {
		t.Fatalf("expected both return atoms in the graph, got %d", atoms)
	}
}

// TestReachingDefsJoin checks that a definition reaching through both
// branches of an if joins to the union, and that the aliasing base
// resolution chases the resulting chain.
func TestReachingDefsJoin(t *testing.T) {
	src := `package p
func f(a, b, c []float32, cond bool) []float32 {
	x := a
	if cond {
		x = b
	}
	y := x
	return y
}`
	_, fd, info := typecheckFunc(t, src, "f")
	g := buildCFG(fd.Body)
	rd := reachingDefs(g, info, fd.Type, fd.Recv)

	var retState defState
	var retNode ast.Expr
	rd.eachAtom(func(b *block, i int, st defState) {
		if ret, ok := b.atoms[i].(*ast.ReturnStmt); ok {
			retState = st.clone()
			retNode = ret.Results[0]
		}
	})
	if retNode == nil {
		t.Fatal("return atom not found")
	}

	ac := &aliasCtx{info: info, st: retState}
	yBases := ac.bases(retNode, make(map[*types.Var]bool))
	lookup := func(name string) ast.Expr {
		for _, f := range fd.Type.Params.List {
			for _, id := range f.Names {
				if id.Name == name {
					return id
				}
			}
		}
		t.Fatalf("param %s not found", name)
		return nil
	}
	// y may alias a (straight path) and b (branch), but never c.
	for name, want := range map[string]bool{"a": true, "b": true, "c": false} {
		p := lookup(name)
		pb := ac.bases(p, make(map[*types.Var]bool))
		if got := basesOverlap(yBases, pb); got != want {
			t.Errorf("overlap(y, %s) = %v, want %v", name, got, want)
		}
	}
}

// TestReachingDefsCycle guards the definition-cycle case (x = x[1:]):
// base resolution must terminate and still root x at itself.
func TestReachingDefsCycle(t *testing.T) {
	src := `package p
func f(a []float32) {
	x := a
	for len(x) > 1 {
		x = x[1:]
	}
	_ = x
}`
	_, fd, info := typecheckFunc(t, src, "f")
	g := buildCFG(fd.Body)
	rd := reachingDefs(g, info, fd.Type, fd.Recv)

	checked := false
	rd.eachAtom(func(b *block, i int, st defState) {
		as, ok := b.atoms[i].(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 {
			return
		}
		if id, ok := as.Lhs[0].(*ast.Ident); !ok || id.Name != "_" {
			return
		}
		ac := &aliasCtx{info: info, st: st}
		xb := ac.bases(as.Rhs[0], make(map[*types.Var]bool))
		ab := ac.bases(fd.Type.Params.List[0].Names[0], make(map[*types.Var]bool))
		if !basesOverlap(xb, ab) {
			t.Error("x should still alias a after the reslicing loop")
		}
		checked = true
	})
	if !checked {
		t.Fatal("blank-assign atom not found")
	}
}

// blockOfCall finds the block holding the atom that calls the named
// package function — fixture statements are tagged with no-op calls.
func blockOfCall(t *testing.T, g *funcCFG, name string) *block {
	t.Helper()
	for _, b := range g.blocks {
		for _, a := range b.atoms {
			found := false
			shallowInspect(a, func(n ast.Node) bool {
				if c, ok := n.(*ast.CallExpr); ok {
					if id, ok := c.Fun.(*ast.Ident); ok && id.Name == name {
						found = true
					}
				}
				return true
			})
			if found {
				return b
			}
		}
	}
	t.Fatalf("no atom calls %s", name)
	return nil
}

// TestDominators pins the dominance relation wgproto leans on: the
// straight-line prefix dominates everything, branch arms do not
// dominate their join, and a loop body (which may run zero times) does
// not dominate the statements after the loop.
func TestDominators(t *testing.T) {
	src := `package p
func before()
func thenA()
func elseB()
func join()
func body()
func after()
func f(cond bool, n int) {
	before()
	if cond {
		thenA()
	} else {
		elseB()
	}
	join()
	for i := 0; i < n; i++ {
		body()
	}
	after()
}`
	_, fd, _ := typecheckFunc(t, src, "f")
	g := buildCFG(fd.Body)
	dom := g.dominators()

	bBefore := blockOfCall(t, g, "before")
	bThen := blockOfCall(t, g, "thenA")
	bElse := blockOfCall(t, g, "elseB")
	bJoin := blockOfCall(t, g, "join")
	bBody := blockOfCall(t, g, "body")
	bAfter := blockOfCall(t, g, "after")

	for _, b := range []*block{bBefore, bThen, bElse, bJoin, bBody, bAfter} {
		if !dom[b.idx][g.entry.idx] {
			t.Errorf("entry should dominate block %d", b.idx)
		}
		if !dom[b.idx][b.idx] {
			t.Errorf("block %d should dominate itself", b.idx)
		}
		if !dom[b.idx][bBefore.idx] {
			t.Errorf("the straight-line prefix should dominate block %d", b.idx)
		}
	}
	if dom[bJoin.idx][bThen.idx] || dom[bJoin.idx][bElse.idx] {
		t.Error("a branch arm must not dominate the join after the if")
	}
	if !dom[bBody.idx][bJoin.idx] || !dom[bAfter.idx][bJoin.idx] {
		t.Error("the join should dominate the loop body and the statements after the loop")
	}
	if dom[bAfter.idx][bBody.idx] {
		t.Error("a zero-iteration loop body must not dominate the statements after the loop")
	}
	if dom[bBefore.idx][bThen.idx] {
		t.Error("dominance is not symmetric: a later block must not dominate the prefix")
	}
}

// TestExitReachable pins the trap-region predicate goleak leans on: a
// block inside an infinite loop with no exiting edge cannot reach the
// function exit, while blocks with a return path can.
func TestExitReachable(t *testing.T) {
	src := `package p
func pre()
func done()
func spin()
func f(cond bool) {
	pre()
	if cond {
		done()
		return
	}
	for {
		spin()
	}
}`
	_, fd, _ := typecheckFunc(t, src, "f")
	g := buildCFG(fd.Body)
	reach := g.exitReachable()

	if !reach[blockOfCall(t, g, "pre").idx] {
		t.Error("pre can still take the return path; the exit should be reachable")
	}
	if !reach[blockOfCall(t, g, "done").idx] {
		t.Error("done returns; the exit should be reachable")
	}
	if reach[blockOfCall(t, g, "spin").idx] {
		t.Error("spin lives in an infinite loop with no exiting edge; the exit must be unreachable")
	}
	if !reach[g.exit.idx] {
		t.Error("the exit block trivially reaches itself")
	}
}
