package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Rule chandisc: channel ownership and discipline in the concurrency
// packages. Three checks:
//
//  1. close-by-owner — close(ch) is legal only for the channel's owner,
//     resolved through the local definition chain: the function that
//     created it with make, a method of the struct the channel chain
//     roots at (close(sh.kill) where sh derives from the receiver), or a
//     package-level channel. Closing a channel parameter, or a channel
//     that itself arrived through another channel (close(req.done) after
//     req := <-queue), transfers close authority across an unmodeled
//     boundary: two parties can each believe they own the close, and a
//     double close panics. Fields reached from a *struct parameter are
//     accepted — handing a struct pointer to a worker hands it the
//     lifecycle — but a def chain that passes through a channel receive
//     is a finding.
//  2. double-close / send-after-close — a forward may-closed CFG fixpoint
//     per function body. close(v) when v may already be closed on some
//     path is a panic; so is a send to a may-closed def. Assigning a
//     fresh value to the variable (ch = make(...)) kills the closed
//     state; deferred statements are skipped (they run at exit, after
//     every send the fixpoint sees).
//  3. bounded queue — a queue must be created with an explicit capacity:
//     make(chan T) assigned to a name containing "queue" or "jobs" (the
//     module's queue naming convention, cf. internal/flnet's ingest
//     queue) is a finding. An unbuffered queue turns every producer into
//     a synchronous rendezvous and the backpressure contract (PR 7's
//     shard tree) silently degrades into blocking chains.
//
// Channel identity is the *types.Var def, as in goleak. All checks are
// intraprocedural; ownership that crosses function boundaries by design
// needs an audited //fhdnn:allow with the ownership argument as reason.

func checkChanDisc(l *loader, p *pkg) []Diagnostic {
	if !concurrencyScoped(p) {
		return nil
	}
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			diags = append(diags, chanOwnership(l, p, fd)...)
			diags = append(diags, chanCloseFlow(l, p, fd.Body)...)
		}
	}
	// Function literal bodies get their own close-flow fixpoint (their
	// close sites are owned by the enclosing decl for check 1, which
	// already walked them via the full-decl inspect).
	inspectAll(p, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			diags = append(diags, chanCloseFlow(l, p, fl.Body)...)
		}
		return true
	})
	diags = append(diags, chanBoundedQueues(l, p)...)
	return diags
}

// --- check 1: close-by-owner --------------------------------------------

// chanOwnership audits every close() in the declaration (including nested
// literals: a close inside killOnce.Do(func(){...}) is still performed by
// this function).
func chanOwnership(l *loader, p *pkg, fd *ast.FuncDecl) []Diagnostic {
	info := p.Info

	// Parameter and receiver objects of the declaration.
	params := make(map[types.Object]bool)
	collect := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := info.Defs[name]; obj != nil {
					params[obj] = true
				}
			}
		}
	}
	recv := make(map[types.Object]bool)
	if fd.Recv != nil {
		for _, f := range fd.Recv.List {
			for _, name := range f.Names {
				if obj := info.Defs[name]; obj != nil {
					recv[obj] = true
				}
			}
		}
	}
	collect(fd.Type.Params)

	// Syntactic definition chains: every RHS ever assigned to each local,
	// flow-insensitive (check 2 owns the path-sensitive part).
	defs := make(map[types.Object][]ast.Expr)
	ast.Inspect(fd, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj != nil {
					defs[obj] = append(defs[obj], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if i < len(n.Values) {
					if obj := info.Defs[name]; obj != nil {
						defs[obj] = append(defs[obj], n.Values[i])
					}
				}
			}
		}
		return true
	})

	var diags []Diagnostic
	ast.Inspect(fd, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isBuiltin(info, call, "close") || len(call.Args) != 1 {
			return true
		}
		arg := ast.Unparen(call.Args[0])
		if ok, why := closeOwner(info, arg, params, recv, defs, 0); !ok {
			diags = append(diags, diag(l.fset, RuleChanDisc, call,
				"close of %s by a non-owner (%s); only the creating owner closes a channel", types.ExprString(arg), why))
		}
		return true
	})
	return diags
}

// closeOwner decides whether the enclosing function owns the close of the
// channel expression. Returns (false, reason) for violations.
func closeOwner(info *types.Info, e ast.Expr, params, recv map[types.Object]bool, defs map[types.Object][]ast.Expr, depth int) (bool, string) {
	if depth > 8 {
		return true, "" // give up quietly on pathological chains
	}
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.Uses[x]
		if obj == nil {
			obj = info.Defs[x]
		}
		if obj == nil {
			return true, ""
		}
		if recv[obj] {
			return true, ""
		}
		if params[obj] {
			return false, "the channel is a parameter; ownership stays with the caller"
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return true, ""
		}
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			// Package-scope channel: the package owns it.
			return true, ""
		}
		ds := defs[obj]
		if len(ds) == 0 {
			return true, "" // opaque (range var, closure capture): stay quiet
		}
		for _, d := range ds {
			if isMakeChan(info, d) {
				return true, ""
			}
		}
		for _, d := range ds {
			if ux, ok := ast.Unparen(d).(*ast.UnaryExpr); ok && ux.Op == token.ARROW {
				return false, "the channel arrived through another channel; the sender keeps close authority"
			}
		}
		// Derived value (sh := s.shards[i]): ownership follows the root.
		if root := rootIdent(ds[0]); root != nil && root != x {
			return closeOwner(info, root, params, recv, defs, depth+1)
		}
		return true, ""
	case *ast.SelectorExpr:
		// Field close: ownership follows the chain's root. A *struct
		// parameter is accepted — the struct was handed over with its
		// lifecycle — but a root that arrived via a channel receive is
		// not.
		root := rootIdent(x)
		if root == nil {
			return true, ""
		}
		obj := info.Uses[root]
		if obj == nil {
			obj = info.Defs[root]
		}
		if obj == nil || recv[obj] || params[obj] {
			return true, ""
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return true, ""
		}
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return true, ""
		}
		ds := defs[obj]
		for _, d := range ds {
			if ux, ok := ast.Unparen(d).(*ast.UnaryExpr); ok && ux.Op == token.ARROW {
				return false, "the value holding the channel arrived through another channel; the sender keeps close authority"
			}
		}
		for _, d := range ds {
			if r := rootIdent(d); r != nil && r != root {
				return closeOwner(info, r, params, recv, defs, depth+1)
			}
		}
		return true, ""
	}
	return true, "" // index/call results: not resolvable to a def, stay quiet
}

// isMakeChan reports whether the expression is make(chan ...), with or
// without a capacity.
func isMakeChan(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || !isBuiltin(info, call, "make") || len(call.Args) == 0 {
		return false
	}
	tv, ok := info.Types[call.Args[0]]
	if !ok || !tv.IsType() {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}

// --- check 2: double-close / send-after-close ----------------------------

// closedState is the set of channel defs that may already be closed.
type closedState map[*types.Var]bool

func (s closedState) clone() closedState {
	out := make(closedState, len(s))
	for v := range s {
		out[v] = true
	}
	return out
}

// killFieldsOf removes from the state every field def declared by the
// (possibly pointed-to) struct type t: a rebind of the struct variable
// replaces all of its channels at once.
func killFieldsOf(st closedState, t types.Type) {
	if t == nil {
		return
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	s, ok := t.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i := 0; i < s.NumFields(); i++ {
		delete(st, s.Field(i))
	}
}

func (dst closedState) mergeInto(src closedState) bool {
	changed := false
	for v := range src {
		if !dst[v] {
			dst[v] = true
			changed = true
		}
	}
	return changed
}

func chanCloseFlow(l *loader, p *pkg, body *ast.BlockStmt) []Diagnostic {
	info := p.Info
	g := buildCFG(body)

	in := make([]closedState, len(g.blocks))
	for i := range in {
		in[i] = make(closedState)
	}
	transfer := func(st closedState, atom ast.Node, report func(string, ast.Node, *types.Var)) {
		if _, isDefer := atom.(*ast.DeferStmt); isDefer {
			return // runs at exit, after everything the fixpoint sees
		}
		shallowInspect(atom, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				// A fresh value kills the closed state of the target — and,
				// when the target is a struct value (req := <-queue), of
				// every tracked field def of that struct: req.done after the
				// rebind is a different channel.
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						if v := chanVarOf(info, id); v != nil {
							delete(st, v)
							killFieldsOf(st, v.Type())
						}
					}
				}
			case *ast.SendStmt:
				if v := chanVarOf(info, n.Chan); v != nil && st[v] {
					if report != nil {
						report("send on %s, which may already be closed on a path to this statement: a send on a closed channel panics", n, v)
					}
				}
			case *ast.CallExpr:
				if isBuiltin(info, n, "close") && len(n.Args) == 1 {
					if v := chanVarOf(info, n.Args[0]); v != nil {
						if st[v] && report != nil {
							report("close of %s, which may already be closed on a path to this statement: a double close panics", n, v)
						}
						st[v] = true
					}
				}
			}
			return true
		})
	}

	// Worklist fixpoint.
	work := make([]*block, 0, len(g.blocks))
	inWork := make([]bool, len(g.blocks))
	push := func(b *block) {
		if !inWork[b.idx] {
			inWork[b.idx] = true
			work = append(work, b)
		}
	}
	for _, b := range g.blocks {
		push(b)
	}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[b.idx] = false
		out := in[b.idx].clone()
		for _, atom := range b.atoms {
			transfer(out, atom, nil)
		}
		for _, s := range b.succs {
			if in[s.idx].mergeInto(out) {
				push(s)
			}
		}
	}

	// Report pass in construction order for deterministic output.
	var diags []Diagnostic
	for _, b := range g.blocks {
		st := in[b.idx].clone()
		for _, atom := range b.atoms {
			transfer(st, atom, func(format string, n ast.Node, v *types.Var) {
				diags = append(diags, diag(l.fset, RuleChanDisc, n, format, v.Name()))
			})
		}
	}
	return diags
}

// --- check 3: bounded queues ---------------------------------------------

// chanBoundedQueues flags capacity-less make(chan) creations assigned to
// queue-named destinations.
func chanBoundedQueues(l *loader, p *pkg) []Diagnostic {
	info := p.Info
	var diags []Diagnostic
	flag := func(name string, mk ast.Expr) {
		lower := strings.ToLower(name)
		if !strings.Contains(lower, "queue") && !strings.Contains(lower, "jobs") {
			return
		}
		diags = append(diags, diag(l.fset, RuleChanDisc, mk,
			"%s is created without a capacity: bounded queues need an explicit make(chan T, n) so producers get backpressure instead of a synchronous rendezvous", name))
	}
	noCapMakeChan := func(e ast.Expr) ast.Expr {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok || !isBuiltin(info, call, "make") || len(call.Args) != 1 {
			return nil
		}
		if !isMakeChan(info, call) {
			return nil
		}
		return call
	}
	inspectAll(p, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				mk := noCapMakeChan(rhs)
				if mk == nil {
					continue
				}
				switch lhs := ast.Unparen(n.Lhs[i]).(type) {
				case *ast.Ident:
					flag(lhs.Name, mk)
				case *ast.SelectorExpr:
					flag(lhs.Sel.Name, mk)
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if i < len(n.Values) {
					if mk := noCapMakeChan(n.Values[i]); mk != nil {
						flag(name.Name, mk)
					}
				}
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				if mk := noCapMakeChan(kv.Value); mk != nil {
					flag(key.Name, mk)
				}
			}
		}
		return true
	})
	return diags
}
