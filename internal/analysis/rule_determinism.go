package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// determinism: the numeric packages must be bit-reproducible for a fixed
// seed. Three things silently break that:
//
//   - time.Now (and Since/Until) smuggles wall-clock state into results
//     or seeds;
//   - the global math/rand generator is shared process state — two
//     trainers interleaving draws change each other's streams. All
//     randomness must flow through an explicitly seeded *rand.Rand
//     (rand.New(rand.NewSource(seed)) is fine and common here);
//   - ranging over a map while accumulating floats or appending to a
//     slice bakes Go's randomized map iteration order into the result:
//     float addition is not associative, and an appended-then-sent
//     buffer changes its wire order run to run.
var determinismPkgs = []string{"internal/tensor", "internal/nn", "internal/hdc", "internal/fedcore"}

// seededRandConstructors are the math/rand entry points that take an
// explicit source/seed and therefore stay reproducible.
var seededRandConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

func checkDeterminism(l *loader, p *pkg) []Diagnostic {
	if !relIn(p, determinismPkgs...) {
		return nil
	}
	var out []Diagnostic
	inspectAll(p, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if d, ok := nondeterministicCall(l, p, n); ok {
				out = append(out, d)
			}
		case *ast.RangeStmt:
			out = append(out, mapRangeFindings(l, p, n)...)
		}
		return true
	})
	return out
}

// nondeterministicCall flags time.Now/Since/Until and every package-level
// math/rand function that draws from (or reseeds) the global generator.
func nondeterministicCall(l *loader, p *pkg, call *ast.CallExpr) (Diagnostic, bool) {
	fn := calleeOf(p.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return Diagnostic{}, false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return Diagnostic{}, false // methods (e.g. on a seeded *rand.Rand) are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			return diag(l.fset, RuleDeterminism, call,
				"time.%s in a deterministic package; results must not depend on the wall clock", fn.Name()), true
		}
	case "math/rand", "math/rand/v2":
		if !seededRandConstructors[fn.Name()] {
			return diag(l.fset, RuleDeterminism, call,
				"rand.%s draws from the global generator; use an explicitly seeded *rand.Rand", fn.Name()), true
		}
	}
	return Diagnostic{}, false
}

// mapRangeFindings flags order-sensitive work inside a range over a map:
// float accumulation into, or appends to, variables that outlive the
// loop. Reading or writing per-key state (m[k] = v, counters of integer
// type) is order-insensitive and not flagged.
func mapRangeFindings(l *loader, p *pkg, rs *ast.RangeStmt) []Diagnostic {
	t := p.Info.TypeOf(rs.X)
	if t == nil {
		return nil
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return nil
	}
	var out []Diagnostic
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 {
			return true
		}
		lhs := as.Lhs[0]
		root := rootIdent(lhs)
		if root == nil || !declaredOutside(p.Info, root, rs) {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			if isFloat(p.Info.TypeOf(lhs)) {
				out = append(out, diag(l.fset, RuleDeterminism, as,
					"float accumulation into %q over map iteration order; iterate a sorted key slice instead", root.Name))
			}
		case token.ASSIGN:
			if call, ok := as.Rhs[0].(*ast.CallExpr); ok && isBuiltin(p.Info, call, "append") {
				out = append(out, diag(l.fset, RuleDeterminism, as,
					"append to %q over map iteration order; collect into sorted keys first", root.Name))
			}
		}
		return true
	})
	return out
}
