package analysis

import (
	"go/ast"
	"go/types"
)

// Shared AST/type helpers for the rule implementations.

// calleeOf resolves the called function object of a call expression:
// a *types.Func for ordinary functions and methods (including interface
// methods), nil for conversions, builtins, and calls through function
// values.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isConversion reports whether a call expression is a type conversion.
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

// isBuiltin reports whether a call invokes the named universe builtin
// (panic, append, print, ...).
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// signatureOf returns the signature of a call's callee, nil for
// conversions and builtins.
func signatureOf(info *types.Info, call *ast.CallExpr) *types.Signature {
	if isConversion(info, call) {
		return nil
	}
	tv, ok := info.Types[call.Fun]
	if !ok {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

var errorType = types.Universe.Lookup("error").Type()

// dropsTrailingError reports whether the call returns an error as its
// last result (the convention on every path this analyzer cares about).
func dropsTrailingError(info *types.Info, call *ast.CallExpr) bool {
	sig := signatureOf(info, call)
	if sig == nil || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	return types.Identical(last, errorType)
}

// calleePkgPath returns the import path of the package defining the
// callee ("" when unresolvable). For interface methods this is the
// package declaring the interface (io for io.Closer.Close, net/http for
// http.ResponseWriter.Write) — exactly the granularity the wire-error
// rule scopes by.
func calleePkgPath(info *types.Info, call *ast.CallExpr) string {
	fn := calleeOf(info, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// calleeName renders a call target for messages ("resp.Body.Close",
// "w.Write", "json.NewEncoder(w).Encode").
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if x, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			return x.Name + "." + fun.Sel.Name
		}
		if x, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
			if xx, ok := ast.Unparen(x.X).(*ast.Ident); ok {
				return xx.Name + "." + x.Sel.Name + "." + fun.Sel.Name
			}
		}
		return fun.Sel.Name
	}
	return "call"
}

// isFloat32 and isFloat64 classify basic types.
func isFloat32(t types.Type) bool { return basicKind(t) == types.Float32 }
func isFloat64(t types.Type) bool { return basicKind(t) == types.Float64 }

func basicKind(t types.Type) types.BasicKind {
	if t == nil {
		return types.Invalid
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return types.Invalid
	}
	return b.Kind()
}

// isFloat reports whether t is any floating-point basic type.
func isFloat(t types.Type) bool {
	k := basicKind(t)
	return k == types.Float32 || k == types.Float64
}

// rootIdent returns the leftmost identifier of an lvalue expression
// (s, s[i], s.f, (*p).f all root at s / p).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// declaredOutside reports whether the identifier's object is declared
// outside the given node's source span — i.e. the assignment target
// survives across iterations of a loop rooted at n.
func declaredOutside(info *types.Info, id *ast.Ident, n ast.Node) bool {
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	if obj == nil {
		return false
	}
	return obj.Pos() < n.Pos() || obj.Pos() > n.End()
}

// inspectAll walks every file of the package.
func inspectAll(p *pkg, fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

// relIn reports whether the package's module-relative path is in the set.
func relIn(p *pkg, set ...string) bool {
	for _, s := range set {
		if p.Rel == s {
			return true
		}
	}
	return false
}
