package analysis

import (
	"go/ast"
	"go/token"
)

// cfg.go builds the intraprocedural control-flow graph the dataflow rules
// (aliasing, lockheld) run on. The graph is statement-level: every basic
// block holds a sequence of "atoms" — simple statements and the head
// expressions of control statements — in execution order, and edges
// connect blocks along every possible control path (both branches of an
// if, loop back-edges, every switch/select arm, returns to the exit
// block).
//
// Atoms are deliberately shallow: a control statement contributes only
// the expression evaluated at its head (an if contributes its Cond, a
// switch its Tag), never its body — bodies become their own blocks. Rules
// therefore inspect atoms with shallowInspect, which refuses to descend
// into nested blocks and function literals, so a rule walking block atoms
// sees each evaluated node exactly once, in the block that executes it.

// block is one basic block.
type block struct {
	idx   int
	atoms []ast.Node
	succs []*block
}

// funcCFG is the control-flow graph of one function body.
type funcCFG struct {
	blocks []*block
	entry  *block
	exit   *block
	// commAtoms marks select CommClause communication statements: the
	// select head already models their blocking, so lockheld must not
	// re-flag the send/receive inside the clause.
	commAtoms map[ast.Node]bool
}

// buildCFG constructs the CFG of a function body. The exit block is the
// unique sink: returns, panics falling off the end, and (conservatively)
// goto statements all flow there.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	g := &funcCFG{commAtoms: make(map[ast.Node]bool)}
	b := &cfgBuilder{g: g}
	g.entry = b.newBlock()
	g.exit = b.newBlock()
	b.cur = g.entry
	b.stmts(body.List)
	b.edge(b.cur, g.exit)
	return g
}

// shallowInspect walks an atom without descending into nested blocks or
// function literals: statements inside a BlockStmt belong to other CFG
// blocks, and a FuncLit body runs at some other time entirely.
func shallowInspect(n ast.Node, fn func(ast.Node) bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return true
		}
		switch m.(type) {
		case *ast.BlockStmt, *ast.FuncLit:
			return false
		}
		return fn(m)
	})
}

// branchTarget is one enclosing breakable/continuable construct.
type branchTarget struct {
	label string
	brk   *block
	cont  *block // nil for switch/select (continue skips past them)
}

type cfgBuilder struct {
	g   *funcCFG
	cur *block // nil after a terminating statement (unreachable code)
	// targets is the stack of enclosing break/continue targets.
	targets []branchTarget
	// pendingLabel is the label of a LabeledStmt whose statement is about
	// to be built (consumed by the next loop/switch/select).
	pendingLabel string
	// fallthroughTo is the body block of the next case clause while a
	// switch clause is being built.
	fallthroughTo *block
}

func (b *cfgBuilder) newBlock() *block {
	blk := &block{idx: len(b.g.blocks)}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *block) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.succs {
		if s == to {
			return
		}
	}
	from.succs = append(from.succs, to)
}

// add appends an atom to the current block, materializing an unreachable
// block for dead code so every atom still has a home.
func (b *cfgBuilder) add(n ast.Node) {
	if n == nil {
		return
	}
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.atoms = append(b.cur.atoms, n)
}

func (b *cfgBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the pending label for the construct being built.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmts(s.List)

	case *ast.LabeledStmt:
		switch s.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			b.pendingLabel = s.Label.Name
		}
		b.stmt(s.Stmt)

	case *ast.IfStmt:
		b.add(s.Init)
		b.add(s.Cond)
		head := b.cur
		after := b.newBlock()
		thenB := b.newBlock()
		b.edge(head, thenB)
		b.cur = thenB
		b.stmts(s.Body.List)
		b.edge(b.cur, after)
		if s.Else != nil {
			elseB := b.newBlock()
			b.edge(head, elseB)
			b.cur = elseB
			b.stmt(s.Else)
			b.edge(b.cur, after)
		} else {
			b.edge(head, after)
		}
		b.cur = after

	case *ast.ForStmt:
		label := b.takeLabel()
		b.add(s.Init)
		cond := b.newBlock()
		b.edge(b.cur, cond)
		b.cur = cond
		b.add(s.Cond)
		body := b.newBlock()
		post := b.newBlock()
		after := b.newBlock()
		b.edge(cond, body)
		if s.Cond != nil {
			b.edge(cond, after)
		}
		b.targets = append(b.targets, branchTarget{label: label, brk: after, cont: post})
		b.cur = body
		b.stmts(s.Body.List)
		b.edge(b.cur, post)
		b.targets = b.targets[:len(b.targets)-1]
		b.cur = post
		b.add(s.Post)
		b.edge(post, cond)
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock()
		b.edge(b.cur, head)
		// The whole RangeStmt is the head atom: shallowInspect sees the
		// ranged expression and the key/value targets but not the body.
		head.atoms = append(head.atoms, s)
		body := b.newBlock()
		after := b.newBlock()
		b.edge(head, body)
		b.edge(head, after)
		b.targets = append(b.targets, branchTarget{label: label, brk: after, cont: head})
		b.cur = body
		b.stmts(s.Body.List)
		b.edge(b.cur, head)
		b.targets = b.targets[:len(b.targets)-1]
		b.cur = after

	case *ast.SwitchStmt:
		label := b.takeLabel()
		b.add(s.Init)
		b.add(s.Tag)
		b.caseClauses(label, s.Body.List, func(c ast.Stmt) ([]ast.Node, []ast.Stmt, bool) {
			cc := c.(*ast.CaseClause)
			atoms := make([]ast.Node, len(cc.List))
			for i, e := range cc.List {
				atoms[i] = e
			}
			return atoms, cc.Body, cc.List == nil
		}, true)

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		b.add(s.Init)
		b.add(s.Assign)
		b.caseClauses(label, s.Body.List, func(c ast.Stmt) ([]ast.Node, []ast.Stmt, bool) {
			cc := c.(*ast.CaseClause)
			return nil, cc.Body, cc.List == nil
		}, false)

	case *ast.SelectStmt:
		label := b.takeLabel()
		// The select statement itself is the head atom: lockheld treats a
		// select with no default clause as a blocking point.
		b.add(s)
		b.caseClauses(label, s.Body.List, func(c ast.Stmt) ([]ast.Node, []ast.Stmt, bool) {
			cc := c.(*ast.CommClause)
			if cc.Comm == nil {
				return nil, cc.Body, true
			}
			b.g.commAtoms[cc.Comm] = true
			return []ast.Node{cc.Comm}, cc.Body, false
		}, false)

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.g.exit)
		b.cur = nil

	case *ast.BranchStmt:
		b.add(s)
		switch s.Tok {
		case token.BREAK:
			if t := b.findTarget(s, false); t != nil {
				b.edge(b.cur, t.brk)
			}
		case token.CONTINUE:
			if t := b.findTarget(s, true); t != nil {
				b.edge(b.cur, t.cont)
			}
		case token.FALLTHROUGH:
			b.edge(b.cur, b.fallthroughTo)
		case token.GOTO:
			// Conservative: model goto as flowing to the exit block.
			b.edge(b.cur, b.g.exit)
		}
		b.cur = nil

	default:
		// Simple statements: assignments, expression statements, channel
		// sends, inc/dec, declarations, defer, go, empty.
		b.add(s)
	}
}

// findTarget resolves a break/continue to its enclosing construct.
func (b *cfgBuilder) findTarget(s *ast.BranchStmt, needCont bool) *branchTarget {
	for i := len(b.targets) - 1; i >= 0; i-- {
		t := &b.targets[i]
		if needCont && t.cont == nil {
			continue
		}
		if s.Label == nil || s.Label.Name == t.label {
			return t
		}
	}
	return nil
}

// caseClauses builds the shared arm structure of switch/type-switch/select
// statements: every arm branches from the head block, arms flow to a
// common after block, and a missing default arm lets the head flow to
// after directly. split extracts an arm's head atoms, body, and whether it
// is the default arm; allowFallthrough enables fallthrough edges.
func (b *cfgBuilder) caseClauses(label string, clauses []ast.Stmt, split func(ast.Stmt) ([]ast.Node, []ast.Stmt, bool), allowFallthrough bool) {
	head := b.cur
	if head == nil {
		head = b.newBlock()
		b.cur = head
	}
	after := b.newBlock()
	b.targets = append(b.targets, branchTarget{label: label, brk: after})

	bodies := make([]*block, len(clauses))
	for i := range clauses {
		bodies[i] = b.newBlock()
	}
	hasDefault := false
	for i, c := range clauses {
		atoms, bodyStmts, isDefault := split(c)
		if isDefault {
			hasDefault = true
		}
		b.edge(head, bodies[i])
		bodies[i].atoms = append(bodies[i].atoms, atoms...)
		b.cur = bodies[i]
		savedFT := b.fallthroughTo
		if allowFallthrough && i+1 < len(clauses) {
			b.fallthroughTo = bodies[i+1]
		} else {
			b.fallthroughTo = nil
		}
		b.stmts(bodyStmts)
		b.fallthroughTo = savedFT
		b.edge(b.cur, after)
	}
	if !hasDefault || len(clauses) == 0 {
		b.edge(head, after)
	}
	b.targets = b.targets[:len(b.targets)-1]
	b.cur = after
}

// preds computes the predecessor lists of every block.
func (g *funcCFG) preds() [][]*block {
	in := make([][]*block, len(g.blocks))
	for _, blk := range g.blocks {
		for _, s := range blk.succs {
			in[s.idx] = append(in[s.idx], blk)
		}
	}
	return in
}

// dominators computes the block-level dominator relation: dom[i] is the
// set of block indices that dominate block i (every path from entry to i
// passes through them; a block dominates itself). Blocks unreachable from
// the entry dominate nothing and are dominated by everything, which is
// the conventional bottom for the standard forward fixpoint below — the
// wgproto rule never queries them because no executed atom lives there.
//
// The algorithm is the classic iterative one: dom(entry) = {entry},
// dom(b) = {b} ∪ ⋂ dom(p) over predecessors p, iterated to fixpoint.
// Graphs here are function bodies (tens of blocks), so the simple
// bitset-free formulation is plenty fast.
func (g *funcCFG) dominators() []map[int]bool {
	n := len(g.blocks)
	preds := g.preds()
	dom := make([]map[int]bool, n)
	all := make(map[int]bool, n)
	for i := 0; i < n; i++ {
		all[i] = true
	}
	for i := 0; i < n; i++ {
		if i == g.entry.idx {
			dom[i] = map[int]bool{i: true}
		} else {
			dom[i] = all
		}
	}
	changed := true
	for changed {
		changed = false
		for i := 0; i < n; i++ {
			if i == g.entry.idx {
				continue
			}
			var meet map[int]bool
			for _, p := range preds[i] {
				pd := dom[p.idx]
				if meet == nil {
					meet = make(map[int]bool, len(pd))
					for k := range pd {
						meet[k] = true
					}
					continue
				}
				for k := range meet {
					if !pd[k] {
						delete(meet, k)
					}
				}
			}
			if meet == nil { // unreachable: keep the ⊤ set
				continue
			}
			meet[i] = true
			if len(meet) != len(dom[i]) {
				dom[i] = meet
				changed = true
				continue
			}
			for k := range meet {
				if !dom[i][k] {
					dom[i] = meet
					changed = true
					break
				}
			}
		}
	}
	return dom
}

// atomPoint locates an atom in the graph, returning its block and index
// within the block (nil, -1 when the node is not an atom). Matching is by
// node identity; shared shallow sub-expressions are not atoms themselves.
func (g *funcCFG) atomPoint(n ast.Node) (*block, int) {
	for _, b := range g.blocks {
		for i, a := range b.atoms {
			if a == n {
				return b, i
			}
		}
	}
	return nil, -1
}

// exitReachable marks, per block, whether the exit block is reachable
// from it. A false entry means control entering that block can never
// return from the function — the goleak rule's definition of a trapped
// goroutine region.
func (g *funcCFG) exitReachable() []bool {
	// Reverse reachability from exit over the predecessor graph.
	preds := g.preds()
	out := make([]bool, len(g.blocks))
	stack := []*block{g.exit}
	out[g.exit.idx] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range preds[b.idx] {
			if !out[p.idx] {
				out[p.idx] = true
				stack = append(stack, p)
			}
		}
	}
	return out
}
