package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Rule lockheld: in the federated-networking packages (internal/flnet,
// internal/fedcore, internal/faults) a sync.Mutex/RWMutex must not be
// held across a blocking operation. PR 1's fault schedules make the
// server's request paths stall deliberately; a mutex held across network
// I/O, a channel operation, Engine.Run or time.Sleep turns one slow
// client into a convoy that blocks every other request on the lock.
//
// The analysis runs forward over the CFG: Lock/RLock on a receiver
// generates "held", a *statement-level* Unlock/RUnlock kills it, and
// block states join by union (may-held). defer mu.Unlock() deliberately
// does NOT kill the state — the lock genuinely stays held for the rest of
// the function body, which is exactly the window this rule polices.
// Deferred calls themselves are skipped (they run at exit, outside the
// modeled region). The blocking set is explicit rather than inferred:
// channel send/receive, select without default, range over a channel,
// time.Sleep, sync Wait, the blocking net/http entry points, and the
// module's fedcore Engine.Run. Analysis is intraprocedural over direct
// calls; helpers that block internally need their own Lock-free shape.

var lockheldPkgs = []string{"internal/flnet", "internal/fedcore", "internal/faults"}

func checkLockHeld(l *loader, p *pkg) []Diagnostic {
	if !relIn(p, lockheldPkgs...) {
		return nil
	}
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			diags = append(diags, lockHeldBody(l, p, fd.Body)...)
		}
	}
	inspectAll(p, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			diags = append(diags, lockHeldBody(l, p, fl.Body)...)
		}
		return true
	})
	return diags
}

// lockState is the set of lock keys ("s.mu", "g.mu") that may be held.
type lockState map[string]bool

func (s lockState) clone() lockState {
	out := make(lockState, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

func (dst lockState) mergeInto(src lockState) bool {
	changed := false
	for k := range src {
		if !dst[k] {
			dst[k] = true
			changed = true
		}
	}
	return changed
}

func lockHeldBody(l *loader, p *pkg, body *ast.BlockStmt) []Diagnostic {
	g := buildCFG(body)

	// Fixpoint: may-held lock set at entry of every block.
	in := make([]lockState, len(g.blocks))
	for i := range in {
		in[i] = make(lockState)
	}
	work := []*block{g.entry}
	inWork := make([]bool, len(g.blocks))
	inWork[g.entry.idx] = true
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[b.idx] = false
		out := in[b.idx].clone()
		for _, atom := range b.atoms {
			lockTransfer(p.Info, atom, out)
		}
		for _, s := range b.succs {
			if in[s.idx].mergeInto(out) && !inWork[s.idx] {
				inWork[s.idx] = true
				work = append(work, s)
			}
		}
	}

	// Report pass: walk atoms in construction order with the solved state.
	var diags []Diagnostic
	for _, b := range g.blocks {
		st := in[b.idx].clone()
		for _, atom := range b.atoms {
			if len(st) > 0 {
				if node, what := blockingOpIn(l, p.Info, g, atom); node != nil {
					diags = append(diags, diag(l.fset, RuleLockHeld, node,
						"%s while %s is held; do not block while holding a mutex", what, heldNames(st)))
				}
			}
			lockTransfer(p.Info, atom, st)
		}
	}
	return diags
}

func heldNames(st lockState) string {
	names := make([]string, 0, len(st))
	for k := range st {
		names = append(names, k)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// lockTransfer applies an atom's Lock/Unlock effects. Deferred calls are
// skipped: defer Unlock releases at return, not at this program point.
func lockTransfer(info *types.Info, atom ast.Node, st lockState) {
	if _, isDefer := atom.(*ast.DeferStmt); isDefer {
		return
	}
	shallowInspect(atom, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		key, method := mutexMethod(info, call)
		switch method {
		case "Lock", "RLock":
			st[key] = true
		case "Unlock", "RUnlock":
			delete(st, key)
		}
		return true
	})
}

// mutexMethod recognizes calls to sync.Mutex/RWMutex methods, keyed by
// the receiver expression's source form.
func mutexMethod(info *types.Info, call *ast.CallExpr) (key, method string) {
	se, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	fn, ok := info.Uses[se.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", ""
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", ""
	}
	t := recv.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	switch named.Obj().Name() {
	case "Mutex", "RWMutex":
		return types.ExprString(se.X), fn.Name()
	}
	return "", ""
}

// blockingOpIn scans one atom for the first blocking operation, returning
// the node to report and a description.
func blockingOpIn(l *loader, info *types.Info, g *funcCFG, atom ast.Node) (ast.Node, string) {
	// Statement-level forms first: the select head models its clauses'
	// blocking, a range head may block on a channel.
	switch s := atom.(type) {
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				return nil, "" // has a default clause: non-blocking poll
			}
		}
		return s, "select with no default clause"
	case *ast.RangeStmt:
		if _, isChan := info.TypeOf(s.X).Underlying().(*types.Chan); isChan {
			return s, "range over channel"
		}
		return nil, ""
	case *ast.DeferStmt:
		return nil, "" // runs at exit, outside the modeled region
	}

	// A select comm clause's send/receive is already covered by the
	// select-head finding; don't re-flag it (calls inside it still count).
	isComm := g.commAtoms[atom]

	var found ast.Node
	var what string
	shallowInspect(atom, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			if !isComm {
				found, what = n, "channel send"
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !isComm {
				found, what = n, "channel receive"
			}
		case *ast.CallExpr:
			if desc, ok := blockingCall(l, info, n); ok {
				found, what = n, desc
			}
		}
		return true
	})
	return found, what
}

// blockingCall classifies direct calls that can block indefinitely.
func blockingCall(l *loader, info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := calleeOf(info, call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	name := fn.Name()
	switch fn.Pkg().Path() {
	case "time":
		if name == "Sleep" {
			return "time.Sleep", true
		}
	case "sync":
		if name == "Wait" {
			return "sync " + calleeName(call), true // WaitGroup.Wait, Cond.Wait
		}
	case "net/http":
		switch name {
		case "Get", "Head", "Post", "PostForm", "Do",
			"ListenAndServe", "ListenAndServeTLS", "Serve", "ServeTLS", "Shutdown":
			return "net/http " + calleeName(call), true
		}
	}
	path := fn.Pkg().Path()
	if path == l.module+"/internal/fedcore" && name == "Run" {
		return "fedcore Engine.Run", true
	}
	return "", false
}
