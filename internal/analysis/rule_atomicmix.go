package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Rule atomicmix: a variable accessed through the sync/atomic functions
// anywhere in the module must never be read or written plainly elsewhere.
// A mixed access pattern is a data race the type system cannot see: the
// stats layer (internal/flnet/stats.go) publishes counters that shard
// goroutines bump while scrapes read them, and one plain `s.count++`
// next to an atomic.AddInt64(&s.count, 1) silently loses updates on
// weakly-ordered hardware.
//
// The rule runs module-wide in two passes:
//
//  1. Inventory — every call of a function-style sync/atomic API
//     (atomic.AddInt64(&x.f, 1), atomic.LoadUint32(&v), CompareAndSwap)
//     records the defs behind its &-arguments as atomic. Typed atomics
//     (atomic.Int64 and friends) are excluded by construction: their
//     only access path is method calls, so mixing is impossible — which
//     is why stats.go uses them. This rule polices the function-style
//     escape hatch.
//  2. Audit — in the linted packages, any other appearance of an
//     inventoried def is a finding: a plain read, a plain write, or the
//     address escaping outside a sanctioned atomic call.
//
// A second check covers copies: a value whose type (transitively)
// contains typed-atomic state — sync/atomic.Int64, .Bool, .Value, … —
// must not be passed, assigned, or received by value; the copy's counter
// is disconnected and the race detector only catches it when both halves
// happen to run.

// checkAtomicMix runs the module-wide mixed-access audit.
func checkAtomicMix(mp *modulePass, pattern []*pkg) map[*pkg][]Diagnostic {
	// Pass 1: inventory atomic defs and the sanctioned access sites.
	atomicAt := make(map[*types.Var]token.Position) // first atomic site per def
	sanctioned := make(map[ast.Node]bool)           // operand exprs inside atomic calls
	for _, p := range mp.all {
		info := p.Info
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isAtomicFuncCall(info, call) {
					return true
				}
				for _, arg := range call.Args {
					ux, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || ux.Op != token.AND {
						continue
					}
					op := ast.Unparen(ux.X)
					sanctioned[op] = true
					v := chanVarOf(info, op)
					if v == nil {
						continue
					}
					if _, seen := atomicAt[v]; !seen {
						atomicAt[v] = mp.l.fset.Position(call.Pos())
					}
				}
				return true
			})
		}
	}

	// Pass 2: every other appearance of an inventoried def, plus by-value
	// copies of atomic-bearing structs, in the linted packages. The copy
	// audit runs even when the function-style inventory is empty.
	out := make(map[*pkg][]Diagnostic)
	for _, p := range pattern {
		info := p.Info
		var diags []Diagnostic
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.Ident, *ast.SelectorExpr:
					if sanctioned[n] {
						return false // the atomic access itself
					}
					e := n.(ast.Expr)
					v := useVarOf(info, e)
					if v == nil {
						return true
					}
					// An ident inside a sanctioned selector (the x of a
					// sanctioned x.f) resolves to a different def, so no
					// special casing is needed here.
					if at, ok := atomicAt[v]; ok {
						diags = append(diags, diag(mp.l.fset, RuleAtomicMix, n,
							"plain access to %s, which is accessed via sync/atomic at %s:%d: every read and write must go through sync/atomic", types.ExprString(e), at.Filename, at.Line))
						return false
					}
				case *ast.CallExpr:
					for _, arg := range n.Args {
						if t := info.TypeOf(arg); t != nil && isAtomicBearer(t, 0) && isValueRef(arg) {
							diags = append(diags, diag(mp.l.fset, RuleAtomicMix, arg,
								"%s (type %s) contains sync/atomic state and is copied by value into this call; copies disconnect the counters — pass a pointer", types.ExprString(arg), t.String()))
						}
					}
				case *ast.AssignStmt:
					for _, rhs := range n.Rhs {
						if t := info.TypeOf(rhs); t != nil && isAtomicBearer(t, 0) && isValueRef(rhs) {
							diags = append(diags, diag(mp.l.fset, RuleAtomicMix, rhs,
								"%s (type %s) contains sync/atomic state and is copied by value in this assignment; copies disconnect the counters — use a pointer", types.ExprString(rhs), t.String()))
						}
					}
				case *ast.FuncDecl:
					if n.Type.Params == nil {
						return true
					}
					for _, fld := range n.Type.Params.List {
						if t := info.TypeOf(fld.Type); t != nil && isAtomicBearer(t, 0) {
							diags = append(diags, diag(mp.l.fset, RuleAtomicMix, fld.Type,
								"parameter of type %s contains sync/atomic state and is passed by value; copies disconnect the counters — take a pointer", t.String()))
						}
					}
				}
				return true
			})
		}
		if len(diags) > 0 {
			out[p] = append(out[p], diags...)
		}
	}
	return out
}

// useVarOf resolves an expression to the variable def it *uses*: like
// chanVarOf, but a bare identifier must be a use — a declaration site
// (the field name in a struct type, a var spec) is not an access.
func useVarOf(info *types.Info, e ast.Expr) *types.Var {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := info.Uses[x].(*types.Var); ok {
			return v
		}
		return nil
	case *ast.SelectorExpr:
		return chanVarOf(info, x)
	}
	return nil
}

// isAtomicFuncCall matches function-style sync/atomic calls (no
// receiver); typed-atomic method calls are excluded.
func isAtomicFuncCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeOf(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// isValueRef reports whether the expression is a reference to an existing
// value (ident or selector) rather than a fresh construction or an
// address-of.
func isValueRef(e ast.Expr) bool {
	switch ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr:
		return true
	}
	return false
}

// isAtomicBearer reports whether the (value) type transitively contains a
// typed atomic from sync/atomic. Pointers are fine — only copying the
// value tears state.
func isAtomicBearer(t types.Type, depth int) bool {
	if depth > 4 {
		return false
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			switch obj.Pkg().Path() {
			case "sync/atomic":
				return true
			case "sync":
				// sync.WaitGroup/Mutex copies are wgproto's (and go
				// vet's copylocks) territory, not a torn counter here.
				return false
			}
		}
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isAtomicBearer(st.Field(i).Type(), depth+1) {
			return true
		}
	}
	return false
}
