// Package analysis is fhdnn-lint: a from-scratch static analyzer, built
// only on the standard library's go/parser, go/ast and go/types, that
// machine-checks the invariants this repo's correctness claims rest on —
// bit-identical parallel kernels, deterministic federated rounds, and a
// lossy-channel-safe wire path. The compiler cannot see any of these;
// until now they lived only in tests (the worker-count bit-equality
// suite, the envelope fuzzer). Each rule below turns one of them into a
// diagnostic with a file:line position.
//
// Rules:
//
//	determinism  no time.Now / global math/rand state, and no map
//	             iteration feeding a float accumulation or append, in
//	             internal/tensor, internal/nn, internal/hdc and
//	             internal/fedcore (the packages whose outputs must be
//	             bit-reproducible for a fixed seed).
//	goroutine    no naked go statements outside the internal/tensor
//	             worker pool and internal/flnet; data-parallel fan-out
//	             must route through tensor.ParallelFor, which bounds
//	             concurrency and preserves bit-identical results.
//	wire-error   every dropped error on the serialization/HTTP path:
//	             all error returns inside internal/compress,
//	             internal/fedcore, internal/flnet and internal/link, and
//	             calls into net/http, encoding/json, encoding/binary,
//	             io, os or the wire packages from anywhere else.
//	print-panic  library packages (internal/...) must not write to the
//	             process's stdout/stderr via fmt.Print*/println or the
//	             log package, and the wire packages must not panic —
//	             malformed network input must surface as typed errors
//	             (programmer-error checks go through invariant.Failf).
//	float64      no float64 intermediates introduced into float32
//	             kernels (internal/tensor): a float64 partial product
//	             changes rounding and silently breaks the bit-equality
//	             contract between serial and parallel execution.
//
// The dataflow rules below run on an intraprocedural CFG with reaching
// definitions (cfg.go, dataflow.go) and a module-wide static call graph
// (callgraph.go):
//
//	aliasing     no *Into/*Accum kernel call (internal/tensor, nn, hdc)
//	             whose dst argument may alias an input — same variable,
//	             same field path, or slices derived from one base array.
//	             The blocked kernels are undefined on overlapping
//	             buffers.
//	lockheld     no sync.Mutex/RWMutex held across a blocking call
//	             (net/http, channel ops, Engine.Run, time.Sleep) in
//	             internal/flnet, internal/fedcore, internal/faults.
//	             defer mu.Unlock() does not end the held region.
//	hotalloc     functions annotated //fhdnn:hotpath, and everything
//	             reachable from them in the call graph, must not
//	             allocate (make/new/append/boxing conversions/fmt);
//	             panic and invariant.Fail* arguments are exempt.
//	ctxflow      no context.Background()/TODO() inside a flnet/faults
//	             function that already receives a context.Context.
//
// The wire-taint rules run on the interprocedural taint engine
// (taint.go): wire sources are []byte / io.Reader parameters of the
// exported decode surface in compress/fedcore/flnet/hdc and the
// http.Request/Response reads in flnet; summaries propagate taint
// across the call graph; a dominating comparison against a trusted cap
// sanitizes:
//
//	taintalloc   a wire-tainted integer sizes a make / append-growth /
//	             bytes.Repeat with no dominating bound check — a 24-byte
//	             frame must not be able to claim a 2^26-element body.
//	taintindex   a wire-tainted integer indexes or slices a buffer with
//	             no dominating bounds check (out-of-range panics on
//	             hostile frames).
//	taintloop    a loop condition is bounded by a wire-tainted value
//	             with no dominating cap (attacker-controlled iteration
//	             counts).
//
// A finding is suppressed by a directive comment on the same line or the
// line directly above:
//
//	//fhdnn:allow <rule> <reason>
//
// The reason is mandatory; a directive without one is itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"
	"unicode"
)

// Version identifies the analyzer generation; v2 added the dataflow
// rules (aliasing, lockheld, hotalloc, ctxflow); v3 the concurrency
// rules (goleak, chandisc, wgproto, atomicmix); v4 the interprocedural
// wire-taint rules (taintalloc, taintindex, taintloop).
const Version = "4.0.0"

// Rule names, in exit-code bit order (see cmd/fhdnn-lint).
const (
	RuleDeterminism = "determinism"
	RuleGoroutine   = "goroutine"
	RuleWireError   = "wire-error"
	RulePrintPanic  = "print-panic"
	RuleFloat64     = "float64"
	// RuleAllow reports malformed or unused suppression directives.
	RuleAllow = "allow"
	// Dataflow rules (share one exit-code bit, see cmd/fhdnn-lint).
	RuleAliasing = "aliasing"
	RuleLockHeld = "lockheld"
	RuleHotAlloc = "hotalloc"
	RuleCtxFlow  = "ctxflow"
	// Concurrency rules (share the dataflow exit-code bit).
	RuleGoLeak    = "goleak"
	RuleChanDisc  = "chandisc"
	RuleWgProto   = "wgproto"
	RuleAtomicMix = "atomicmix"
	// Wire-taint rules (interprocedural, taint.go; share the dataflow
	// exit-code bit).
	RuleTaintAlloc = "taintalloc"
	RuleTaintIndex = "taintindex"
	RuleTaintLoop  = "taintloop"
)

// AllRules lists every diagnostic rule in canonical order.
var AllRules = []string{
	RuleDeterminism, RuleGoroutine, RuleWireError, RulePrintPanic, RuleFloat64,
	RuleAliasing, RuleLockHeld, RuleHotAlloc, RuleCtxFlow,
	RuleGoLeak, RuleChanDisc, RuleWgProto, RuleAtomicMix,
	RuleTaintAlloc, RuleTaintIndex, RuleTaintLoop,
}

// Diagnostic is one finding, positioned for editors and CI annotations.
type Diagnostic struct {
	Rule    string `json:"rule"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Rule, d.Message)
}

// RuleTiming is the wall time one rule (or shared engine stage) took.
type RuleTiming struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
}

// Result is a completed analysis run.
type Result struct {
	// Diags are the active findings, sorted by file, line, column.
	Diags []Diagnostic
	// Suppressed are findings silenced by an //fhdnn:allow directive,
	// retained so tests (and -json consumers) can audit exceptions.
	Suppressed []Diagnostic
	// Packages is the number of packages linted.
	Packages int
	// Timing records per-rule wall time plus the shared stages ("load",
	// "callgraph"), in execution order (see the -timing flag).
	Timing []RuleTiming
}

// modulePass carries the expensive module-wide artifacts shared by the
// call-graph rules (hotalloc, goleak, atomicmix). Built once per Run —
// the call graph spans every loaded package so closures and inventories
// never stop at a package boundary, and building it per rule would
// triple the dominant cost of a whole-repo lint.
type modulePass struct {
	l      *loader
	all    []*pkg // every loaded package, sorted by import path
	graph  *callGraph
	chans  *chanInventory
	goOnly map[*types.Func]bool
}

func newModulePass(l *loader) *modulePass {
	paths := make([]string, 0, len(l.pkgs))
	for path := range l.pkgs {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	all := make([]*pkg, 0, len(paths))
	for _, path := range paths {
		all = append(all, l.pkgs[path])
	}
	g := buildCallGraph(all)
	return &modulePass{
		l:      l,
		all:    all,
		graph:  g,
		chans:  buildChanInventory(all),
		goOnly: g.goroutineOnly(),
	}
}

// Run lints the module rooted at root. Patterns are package directory
// patterns relative to root ("./...", "./internal/flnet"); rules
// restricts the rule set (nil means all).
func Run(root string, patterns []string, rules []string) (*Result, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	enabled := make(map[string]bool)
	if len(rules) == 0 {
		rules = AllRules
	}
	for _, r := range rules {
		enabled[r] = true
	}

	res := &Result{}
	timed := func(name string, fn func()) {
		t0 := time.Now()
		fn()
		res.Timing = append(res.Timing, RuleTiming{Name: name, Seconds: time.Since(t0).Seconds()})
	}

	l, err := newLoader(root)
	if err != nil {
		return nil, err
	}
	paths, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}

	// Load everything first: the per-package rules only need their own
	// package, but the module-wide rules walk the call graph and need the
	// whole pattern set (plus its dependencies) type-checked.
	loaded := make([]*pkg, 0, len(paths))
	var loadErr error
	timed("load", func() {
		for _, path := range paths {
			p, err := l.load(path)
			if err != nil {
				loadErr = err
				return
			}
			loaded = append(loaded, p)
		}
	})
	if loadErr != nil {
		return nil, loadErr
	}

	// Rule-major iteration so -timing attributes wall time per rule; the
	// final output order is fixed by sortDiags, and suppression matching
	// is keyed by (file, line, rule), so the collection order is free.
	found := make(map[*pkg][]Diagnostic, len(loaded))
	for _, rule := range ruleFuncs {
		if !enabled[rule.name] {
			continue
		}
		rule := rule
		timed(rule.name, func() {
			for _, p := range loaded {
				found[p] = append(found[p], rule.run(l, p)...)
			}
		})
	}

	// Module-wide rules share one call graph + channel inventory: the
	// build is the dominant fixed cost and tripling it would break the
	// whole-repo latency budget (see the -timing flag).
	needTaint := enabled[RuleTaintAlloc] || enabled[RuleTaintIndex] || enabled[RuleTaintLoop]
	var mp *modulePass
	if enabled[RuleHotAlloc] || enabled[RuleGoLeak] || enabled[RuleAtomicMix] || needTaint {
		timed("callgraph", func() { mp = newModulePass(l) })
	}
	moduleRule := func(name string, run func() map[*pkg][]Diagnostic) {
		if !enabled[name] {
			return
		}
		timed(name, func() {
			for p, ds := range run() {
				found[p] = append(found[p], ds...)
			}
		})
	}
	moduleRule(RuleHotAlloc, func() map[*pkg][]Diagnostic { return checkHotAlloc(mp, loaded) })
	moduleRule(RuleGoLeak, func() map[*pkg][]Diagnostic { return checkGoLeak(mp, loaded) })
	moduleRule(RuleAtomicMix, func() map[*pkg][]Diagnostic { return checkAtomicMix(mp, loaded) })

	// The taint engine runs once (summaries + fixpoint + findings) as its
	// own timed stage; the three rule rows then just slice its output, so
	// -timing attributes the interprocedural cost honestly.
	var te *taintEngine
	if needTaint {
		timed("taint", func() { te = buildTaint(mp, loaded) })
	}
	moduleRule(RuleTaintAlloc, func() map[*pkg][]Diagnostic { return te.findings(RuleTaintAlloc, loaded) })
	moduleRule(RuleTaintIndex, func() map[*pkg][]Diagnostic { return te.findings(RuleTaintIndex, loaded) })
	moduleRule(RuleTaintLoop, func() map[*pkg][]Diagnostic { return te.findings(RuleTaintLoop, loaded) })

	res.Packages = len(loaded)
	for _, p := range loaded {
		active, suppressed, bad := applySuppressions(l.fset, p, found[p], enabled)
		res.Diags = append(res.Diags, active...)
		res.Diags = append(res.Diags, bad...)
		res.Suppressed = append(res.Suppressed, suppressed...)
	}
	sortDiags(res.Diags)
	sortDiags(res.Suppressed)
	return res, nil
}

func sortDiags(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		if ds[i].File != ds[j].File {
			return ds[i].File < ds[j].File
		}
		if ds[i].Line != ds[j].Line {
			return ds[i].Line < ds[j].Line
		}
		if ds[i].Col != ds[j].Col {
			return ds[i].Col < ds[j].Col
		}
		if ds[i].Rule != ds[j].Rule {
			return ds[i].Rule < ds[j].Rule
		}
		return ds[i].Message < ds[j].Message
	})
}

// namedRule pairs a rule id with its implementation.
type namedRule struct {
	name string
	run  func(l *loader, p *pkg) []Diagnostic
}

var ruleFuncs = []namedRule{
	{RuleDeterminism, checkDeterminism},
	{RuleGoroutine, checkGoroutines},
	{RuleWireError, checkWireErrors},
	{RulePrintPanic, checkPrintPanic},
	{RuleFloat64, checkFloat64},
	{RuleAliasing, checkAliasing},
	{RuleLockHeld, checkLockHeld},
	{RuleCtxFlow, checkCtxFlow},
	{RuleChanDisc, checkChanDisc},
	{RuleWgProto, checkWgProto},
	// hotalloc, goleak and atomicmix are module-wide (call-graph /
	// inventory closures) and run separately in Run, not per package.
}

// AllowPrefix starts a suppression directive comment.
const AllowPrefix = "//fhdnn:allow"

// allowDirective is one parsed //fhdnn:allow comment.
type allowDirective struct {
	rule   string
	reason string
	line   int
	pos    token.Position
	used   bool
}

// parseAllows collects the suppression directives of one file.
func parseAllows(fset *token.FileSet, f *ast.File) []*allowDirective {
	var out []*allowDirective
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, AllowPrefix) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(c.Text, AllowPrefix))
			// The rule name ends at the first whitespace of any kind; a
			// tab-separated directive must not smuggle the tab into the
			// rule name (found by FuzzParseAllows).
			rule, reason := rest, ""
			if i := strings.IndexFunc(rest, unicode.IsSpace); i >= 0 {
				rule, reason = rest[:i], rest[i:]
			}
			// A "//" inside the reason starts a separate trailing comment
			// (the fixture corpus uses this for expectation markers).
			if i := strings.Index(reason, "//"); i >= 0 {
				reason = reason[:i]
			}
			pos := fset.Position(c.Pos())
			out = append(out, &allowDirective{
				rule:   rule,
				reason: strings.TrimSpace(reason),
				line:   pos.Line,
				pos:    pos,
			})
		}
	}
	return out
}

// applySuppressions splits findings into active and suppressed ones. A
// directive covers findings of its rule on its own line and the line
// directly below (so it can trail the offending statement or sit on its
// own line above it). Malformed directives — unknown rule or missing
// reason — become findings themselves, as do directives that suppress
// nothing: a stale exception must not outlive the code it excused.
func applySuppressions(fset *token.FileSet, p *pkg, found []Diagnostic, enabled map[string]bool) (active, suppressed, bad []Diagnostic) {
	var directives []*allowDirective
	for _, f := range p.Files {
		directives = append(directives, parseAllows(fset, f)...)
	}
	known := make(map[string]bool)
	for _, r := range AllRules {
		known[r] = true
	}
	byFileLineRule := make(map[string]*allowDirective)
	key := func(file string, line int, rule string) string {
		return fmt.Sprintf("%s:%d:%s", file, line, rule)
	}
	for _, d := range directives {
		if !known[d.rule] || d.reason == "" {
			bad = append(bad, Diagnostic{
				Rule: RuleAllow, File: d.pos.Filename, Line: d.line, Col: d.pos.Column,
				Message: fmt.Sprintf("malformed directive: want %s <rule> <reason> with rule in %v", AllowPrefix, AllRules),
			})
			continue
		}
		byFileLineRule[key(d.pos.Filename, d.line, d.rule)] = d
		byFileLineRule[key(d.pos.Filename, d.line+1, d.rule)] = d
	}
	for _, diag := range found {
		if d, ok := byFileLineRule[key(diag.File, diag.Line, diag.Rule)]; ok {
			d.used = true
			suppressed = append(suppressed, diag)
			continue
		}
		active = append(active, diag)
	}
	for _, d := range directives {
		// Only audit directives of rules that actually ran this pass; a
		// -rules subset must not report every other directive as stale.
		if d.used || !known[d.rule] || d.reason == "" || !enabled[d.rule] {
			continue
		}
		bad = append(bad, Diagnostic{
			Rule: RuleAllow, File: d.pos.Filename, Line: d.line, Col: d.pos.Column,
			Message: fmt.Sprintf("directive suppresses no %s finding; remove it", d.rule),
		})
	}
	return active, suppressed, bad
}

// diag builds a Diagnostic at a node's position.
func diag(fset *token.FileSet, rule string, n ast.Node, format string, args ...any) Diagnostic {
	pos := fset.Position(n.Pos())
	return Diagnostic{
		Rule: rule, File: pos.Filename, Line: pos.Line, Col: pos.Column,
		Message: fmt.Sprintf(format, args...),
	}
}
