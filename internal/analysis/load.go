package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package loading for the analyzer. The repo is stdlib-only, so every
// import is either a module-local package (type-checked from source by
// this loader, recursively) or a standard-library package (delegated to
// the toolchain's source importer). No external tooling — in particular
// no golang.org/x/tools — is involved; this is go/parser + go/types end
// to end, which is exactly the dependency budget of the repo itself.

// pkg is one loaded, type-checked package.
type pkg struct {
	// ImportPath is the full import path ("fhdnn/internal/tensor").
	ImportPath string
	// Rel is the module-relative path ("internal/tensor", "" for the
	// module root package). Rules are scoped by Rel so fixtures under any
	// module name exercise the same path logic as the real repo.
	Rel   string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// loader discovers, parses and type-checks module packages.
type loader struct {
	root    string // absolute module root (dir containing go.mod)
	module  string // module path from go.mod
	fset    *token.FileSet
	std     types.Importer  // source importer for the standard library
	pkgs    map[string]*pkg // by import path
	loading map[string]bool // cycle guard
	ctxt    build.Context
}

func newLoader(root string) (*loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	mod, err := modulePath(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &loader{
		root:    abs,
		module:  mod,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*pkg),
		loading: make(map[string]bool),
		ctxt:    build.Default,
	}, nil
}

// modulePath extracts the module path from root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("analysis: read go.mod: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s/go.mod", root)
}

// Import implements types.Importer: module-local packages are loaded from
// source by this loader, everything else falls through to the standard
// library source importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks the module package with the given import
// path (memoized).
func (l *loader) load(path string) (*pkg, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.module), "/")
	dir := filepath.Join(l.root, filepath.FromSlash(rel))
	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", path, err)
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles { // build-tag filtered, non-test
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var typeErr error
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			if typeErr == nil {
				typeErr = err
			}
		},
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if typeErr != nil {
		return nil, fmt.Errorf("analysis: type-check %s: %w", path, typeErr)
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: type-check %s: %w", path, err)
	}
	p := &pkg{ImportPath: path, Rel: rel, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// expand resolves package patterns ("./...", "./internal/flnet", "...")
// to module import paths, in sorted order. Directories named testdata and
// hidden directories are never matched.
func (l *loader) expand(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	add := func(dir string) error {
		bp, err := l.ctxt.ImportDir(dir, 0)
		if err != nil {
			if _, nogo := err.(*build.NoGoError); nogo {
				return nil
			}
			return err
		}
		_ = bp
		rel, err := filepath.Rel(l.root, dir)
		if err != nil {
			return err
		}
		path := l.module
		if rel != "." {
			path = l.module + "/" + filepath.ToSlash(rel)
		}
		if !seen[path] {
			seen[path] = true
			out = append(out, path)
		}
		return nil
	}
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		if pat == "" {
			pat = "."
		}
		if pat == "..." || strings.HasSuffix(pat, "/...") {
			base := strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
			if base == "" {
				base = "."
			}
			start := filepath.Join(l.root, filepath.FromSlash(base))
			err := filepath.WalkDir(start, func(p string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if p != start && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				return add(p)
			})
			if err != nil {
				return nil, err
			}
		} else {
			if err := add(filepath.Join(l.root, filepath.FromSlash(pat))); err != nil {
				return nil, err
			}
		}
	}
	sort.Strings(out)
	return out, nil
}
