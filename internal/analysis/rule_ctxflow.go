package analysis

import (
	"go/ast"
	"go/types"
)

// Rule ctxflow: the flnet request paths (and the fault middleware wrapped
// around them) must thread cancellation. A function that already receives
// a context.Context and then calls context.Background() or context.TODO()
// has detached the work it starts from its caller's deadline — under PR
// 1's fault schedules that means requests that outlive their round
// deadline and retries that cannot be cancelled. Entry points without a
// ctx parameter (main, constructors) legitimately mint the root context
// and are not checked.

var ctxflowPkgs = []string{"internal/flnet", "internal/faults"}

func checkCtxFlow(l *loader, p *pkg) []Diagnostic {
	if !relIn(p, ctxflowPkgs...) {
		return nil
	}
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !receivesContext(p.Info, fd.Type) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeOf(p.Info, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
					return true
				}
				switch fn.Name() {
				case "Background", "TODO":
					diags = append(diags, diag(l.fset, RuleCtxFlow, call,
						"context.%s inside %s, which already receives a context.Context; thread the caller's ctx instead",
						fn.Name(), fd.Name.Name))
				}
				return true
			})
		}
	}
	return diags
}

// receivesContext reports whether the function type has a parameter of
// type context.Context.
func receivesContext(info *types.Info, ftype *ast.FuncType) bool {
	if ftype.Params == nil {
		return false
	}
	for _, f := range ftype.Params.List {
		t := info.TypeOf(f.Type)
		named, ok := t.(*types.Named)
		if !ok {
			continue
		}
		obj := named.Obj()
		if obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context" {
			return true
		}
	}
	return false
}
