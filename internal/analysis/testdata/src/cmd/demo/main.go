// Fixture: wire-error tier B — outside the wire packages only calls into
// serialization-relevant packages (net/http, encoding/json, io, os, the
// module wire packages) are checked; prints are fine in a binary.
package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
)

func main() {
	resp, err := http.Get("http://127.0.0.1:0/v1/model")
	if err != nil {
		fmt.Println("fetch:", err) // no finding: binaries may print
		return
	}
	defer resp.Body.Close() // want wire-error "deferred error from resp.Body.Close is dropped on a wire path"

	var v struct{}
	json.NewDecoder(resp.Body).Decode(&v) // want wire-error "error from Decode is dropped on a wire path"

	go serve() // want goroutine "naked go statement outside the worker pool"

	f, _ := os.Create("out.json")
	//fhdnn:allow wire-error fixture: best-effort debug dump
	f.Close() // wantsup wire-error "error from f.Close is dropped on a wire path"

	work() // no finding: module-local callee outside the wire set
}

func serve() {}

// work returns an error from a non-wire callee: dropped without a
// finding because tier B only audits serialization packages.
func work() error { return nil }
