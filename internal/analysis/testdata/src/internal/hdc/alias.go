// Fixture: aliasing rule — Into/Accum kernel calls whose dst may overlap
// an input: same variable, slices of one base array, and the sanctioned
// in-place exception.
package hdc

import "fixture/internal/tensor"

// SameVar passes one buffer as both destination and input.
func SameVar(h, m []float32) {
	tensor.MatVecInto(h, m, h) // want aliasing "dst argument h of MatVecInto may alias input h"
}

// SharedBase derives dst and an input from one allocation; the halves
// are disjoint, but the kernel contract is distinct buffers.
func SharedBase(m []float32) {
	buf := make([]float32, 8)
	tensor.MatVecInto(buf[:4], m, buf[4:]) // want aliasing "dst argument buf\[:4\] of MatVecInto may alias input buf\[4:\]"
}

// Rebound tracks definitions through a rebinding chain.
func Rebound(h, m []float32) {
	v := h
	w := v[2:]
	tensor.MatVecInto(w, m, h) // want aliasing "dst argument w of MatVecInto may alias input h"
}

// InPlace is a sanctioned in-place accumulate.
func InPlace(h []float32) {
	//fhdnn:allow aliasing fixture: in-place doubling is well-defined for axpy
	tensor.AxpyAccum(h, h) // wantsup aliasing "dst argument h of AxpyAccum may alias input h"
}

// Disjoint buffers are clean: no findings.
func Disjoint(h, m []float32) {
	out := make([]float32, len(h))
	tensor.MatVecInto(out, m, h)
}
