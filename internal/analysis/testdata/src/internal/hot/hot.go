// Fixture: call-graph construction — interface dispatch, method values
// and mutual recursion must all stay inside the hotpath closure (and the
// recursive walk must terminate). callgraph_test.go asserts the edges;
// the expectations below pin that dispatch findings surface end to end.
package hot

// Sink mirrors the shape of fedcore.Aggregator: hot code calls it
// through the interface, implementations allocate.
type Sink interface {
	Add(x float32)
}

// Buf implements Sink with an amortized append.
type Buf struct{ xs []float32 }

func (b *Buf) Add(x float32) {
	b.xs = append(b.xs, x) // want hotalloc "append .* in \(\*Buf\)\.Add, reachable from //fhdnn:hotpath Feed"
}

//fhdnn:hotpath fixture: interface dispatch reaches every implementation
func Feed(s Sink, x float32) {
	s.Add(x)
}

//fhdnn:hotpath fixture: a method value keeps its method in the closure
func Handle(b *Buf) func(float32) {
	return b.Add
}

//fhdnn:hotpath fixture: mutual recursion must not hang the closure walk
func Even(n int) bool {
	if n == 0 {
		return true
	}
	return Odd(n - 1)
}

func Odd(n int) bool {
	if n == 0 {
		return false
	}
	return Even(n - 1)
}
