// Fixture: goleak — every spawned goroutine needs a provable exit path.
// internal/flnet is exempt from the goroutine rule, so the spawns here
// exercise only the lifecycle checks.
package flnet

// puller is a little pump with a quit broadcast and two data channels.
type puller struct {
	quit chan struct{}
	data chan int
	out  chan int
}

// Stop is the close that makes p.quit a releasable broadcast def.
func Stop(p *puller) { close(p.quit) }

// SpinForever spawns a goroutine trapped in a region with no path back
// to the function exit.
func SpinForever() {
	go func() { // want goleak "can never return once control reaches here"
		for {
		}
	}()
}

// WaitNoQuit loops on a select whose only arm is a plain data receive:
// nothing can release it at shutdown.
func WaitNoQuit(p *puller) {
	go func() {
		for {
			select { // want goleak "select .* can block forever"
			case v := <-p.data:
				if v < 0 {
					return
				}
				p.out <- v
			}
		}
	}()
}

// PumpWithQuit is the clean shape: the quit arm (closed in Stop) releases
// the goroutine.
func PumpWithQuit(p *puller) {
	go func() {
		for {
			select {
			case <-p.quit:
				return
			case v := <-p.data:
				p.out <- v
			}
		}
	}()
}

// loop is a named spawn target with the clean select shape.
func (p *puller) loop() {
	for {
		select {
		case <-p.quit:
			return
		case v := <-p.data:
			p.out <- v
		}
	}
}

// SpawnNamed launches a module function; its body is audited as the
// goroutine body.
func SpawnNamed(p *puller) {
	go p.loop()
}

// WaitHandshake blocks bare on a def nobody ever closes.
func WaitHandshake(p *puller) {
	go func() {
		<-p.data // want goleak "blocking receive from p.data"
	}()
}

// DrainForever ranges over a channel def with no close in the module.
func DrainForever(p *puller) {
	go func() {
		for range p.out { // want goleak "range over p.out"
		}
	}()
}

// ProduceConsume is the clean range shape: the producer closes the
// channel it made.
func ProduceConsume() {
	in := make(chan int, 8)
	go func() {
		for range in {
		}
	}()
	in <- 1
	close(in)
}

// ParkedRelease models the commit-barrier release pattern: the peer
// provably closes the channel, but through a def the analyzer refuses to
// unify — excused with the ownership argument.
func ParkedRelease(p *puller) {
	go func() {
		//fhdnn:allow goleak fixture: the barrier closes release unconditionally at the end of every commit
		<-p.data // wantsup goleak "blocking receive from p.data"
	}()
}
