// Fixture: ctxflow rule — minting a fresh context inside a function that
// already receives one detaches the work from its caller's deadline.
package flnet

import "context"

// fetch discards the caller's deadline.
func fetch(ctx context.Context) error {
	c2 := context.Background() // want ctxflow "context.Background inside fetch, which already receives a context.Context"
	_ = c2
	_ = ctx
	return nil
}

// detached is a recorded exception.
func detached(ctx context.Context) {
	//fhdnn:allow ctxflow fixture: audit span must outlive the request
	c := context.TODO() // wantsup ctxflow "context.TODO inside detached"
	_ = c
	_ = ctx
}

// root has no ctx parameter, so minting the root context is fine.
func root() context.Context {
	return context.Background()
}
