// Fixture: call-graph spawn edges and goroutine-only classification —
// exercised by callgraph_test.go, clean under every rule.
package flnet

// relay is a little forwarding pump with a quit broadcast.
type relay struct {
	quit chan struct{}
	in   chan int
	out  chan int
}

// StopRelay closes the broadcast, making r.quit a releasable def.
func StopRelay(r *relay) { close(r.quit) }

// pump runs only on spawned goroutines: SpawnPump is its sole
// referencer, so the fixpoint keeps it marked.
func (r *relay) pump() {
	for {
		select {
		case <-r.quit:
			return
		case v := <-r.in:
			r.forward(v)
			r.shared(v)
		}
	}
}

// forward is reached only from pump, so it inherits the mark.
func (r *relay) forward(v int) { r.out <- v }

// shared is reached from pump and from UseShared: one ordinary caller
// demotes it.
func (r *relay) shared(v int) { r.out <- v }

// UseShared calls shared on the caller's stack.
func UseShared(r *relay, v int) { r.shared(v) }

// SpawnPump launches the named method: the spawn site resolves the
// module target.
func SpawnPump(r *relay) { go r.pump() }

// SpawnLit launches a literal: the spawn site carries the literal body.
func SpawnLit(r *relay) {
	go func() {
		<-r.quit
	}()
}
