// Fixture: atomicmix — a def accessed through sync/atomic anywhere in
// the module must never be touched plainly, and atomic-bearing structs
// must not be copied.
package flnet

import "sync/atomic"

type gauges struct {
	hits  int64
	level int64
}

// Bump publishes hits through the function-style atomic API; from here
// on every access to the def must be atomic.
func (g *gauges) Bump() {
	atomic.AddInt64(&g.hits, 1)
}

// Read mixes a plain load into the atomic field: a data race the type
// checker cannot see.
func (g *gauges) Read() int64 {
	return g.hits // want atomicmix "plain access to g.hits"
}

// Set mixes a plain store in.
func (g *gauges) Set(v int64) {
	g.hits = v // want atomicmix "plain access to g.hits"
}

// ReadAtomic is the clean shape.
func (g *gauges) ReadAtomic() int64 {
	return atomic.LoadInt64(&g.hits)
}

// Level is plain everywhere, so it stays free of findings.
func (g *gauges) Level() int64     { return g.level }
func (g *gauges) SetLevel(v int64) { g.level = v }

// InitHits runs before any goroutine exists; the mixed access is real
// but deliberate, so it carries the audit trail.
func (g *gauges) InitHits(v int64) {
	//fhdnn:allow atomicmix fixture: single-threaded initialization before the first spawn
	g.hits = v // wantsup atomicmix "plain access to g.hits"
}

// counters holds typed-atomic state: method access can never mix, but
// copying the struct tears it.
type counters struct {
	calls atomic.Int64
}

// CopyCounters receives the struct by value: the copy's counter is
// disconnected from the original.
func CopyCounters(c counters) int64 { // want atomicmix "contains sync/atomic state and is passed by value"
	return c.calls.Load()
}

// UseCounters hands the struct over by value at the call site.
func UseCounters() int64 {
	var c counters
	return CopyCounters(c) // want atomicmix "copied by value into this call"
}

// PointerCounters is the clean shape.
func PointerCounters(c *counters) int64 {
	return c.calls.Load()
}
