// Fixture: lockheld rule — blocking operations while a sync.Mutex is
// held, including through defer mu.Unlock(), and the allow escape hatch.
package flnet

import (
	"sync"
	"time"
)

type guarded struct {
	mu sync.Mutex
	ch chan int
	n  int
}

// bad sends on a channel between Lock and Unlock.
func (g *guarded) bad() {
	g.mu.Lock()
	g.ch <- g.n // want lockheld "channel send while g.mu is held"
	g.mu.Unlock()
}

// deferred shows that defer Unlock does not end the held region: the
// sleep still runs with the mutex held.
func (g *guarded) deferred() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	time.Sleep(time.Millisecond) // want lockheld "time.Sleep while g.mu is held"
	return g.n
}

// allowed is a recorded exception.
func (g *guarded) allowed() {
	g.mu.Lock()
	//fhdnn:allow lockheld fixture: handshake deliberately holds the lock
	<-g.ch // wantsup lockheld "channel receive while g.mu is held"
	g.mu.Unlock()
}

// clean releases the lock before blocking: no findings.
func (g *guarded) clean() int {
	g.mu.Lock()
	n := g.n
	g.mu.Unlock()
	<-g.ch
	return n
}
