// Fixture: wire-taint rules, HTTP tier. Request bodies and headers are
// wire sources in the transport package: integers parsed out of them
// must be bounded before they size, index or bound anything.
package flnet

import (
	"io"
	"net/http"
	"strconv"
)

const maxBatch = 1 << 12

// HandleUpload trusts the client's claimed batch size.
func HandleUpload(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		return
	}
	count, err := strconv.Atoi(r.Header.Get("X-Batch"))
	if err != nil {
		return
	}
	sum := 0
	for i := 0; i < count; i++ { // want taintloop "wire-tainted i < count bounds the loop without a dominating bound check"
		sum++
	}
	_ = body[count] // want taintindex "wire-tainted count indexes body without a dominating bound check"
	_ = sum
}

// HandleUploadChecked bounds the claimed size by a trusted cap: clean.
func HandleUploadChecked(w http.ResponseWriter, r *http.Request) {
	count, err := strconv.Atoi(r.Header.Get("X-Batch"))
	if err != nil {
		return
	}
	if count < 0 || count > maxBatch {
		return
	}
	sum := 0
	for i := 0; i < count; i++ {
		sum++
	}
	_ = sum
}

// HandleReplay loops to a header-claimed count the gateway has already
// bounded; the directive records that reasoning.
func HandleReplay(w http.ResponseWriter, r *http.Request) {
	count, err := strconv.Atoi(r.Header.Get("X-Replay"))
	if err != nil {
		return
	}
	n := 0
	//fhdnn:allow taintloop fixture: the gateway rejects X-Replay above 16 before it reaches us
	for i := 0; i < count; i++ { // wantsup taintloop "wire-tainted i < count bounds the loop without a dominating bound check"
		n++
	}
	_ = n
}
