// Fixture: determinism rule — map iteration order feeding float
// accumulation and appends.
package nn

import "sort"

// MeanBad folds float values in map order: the sum depends on Go's
// randomized iteration.
func MeanBad(m map[string]float32) float32 {
	var sum float32
	for _, v := range m {
		sum += v // want determinism "float accumulation into .sum. over map iteration order"
	}
	return sum / float32(len(m))
}

// CollectAllowed appends in map order but sorts before use; the
// directive records why that is safe here.
func CollectAllowed(m map[string]int) []string {
	var keys []string
	for k := range m {
		//fhdnn:allow determinism fixture: keys are sorted immediately below
		keys = append(keys, k) // wantsup determinism "append to .keys. over map iteration order"
	}
	sort.Strings(keys)
	return keys
}

// PerKey writes per-key state only: order-insensitive, no finding.
func PerKey(m map[string]float32) map[string]float32 {
	out := make(map[string]float32, len(m))
	for k, v := range m {
		out[k] = v * 2
	}
	return out
}

// IntCount accumulates an int: associative, no finding.
func IntCount(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// SliceSum ranges a slice, not a map: deterministic order, no finding.
func SliceSum(xs []float32) float32 {
	var s float32
	for _, v := range xs {
		s += v
	}
	return s
}
