// Fixture: allow-directive hygiene — unknown rules, missing reasons and
// stale directives are findings themselves.
package nn

//fhdnn:allow bogus-rule some reason // want allow "malformed directive"

//fhdnn:allow determinism // want allow "malformed directive"

// Fine has no violation below the directive, so the exception is stale.
func Fine() int {
	//fhdnn:allow goroutine fixture: nothing here spawns goroutines anymore // want allow "directive suppresses no goroutine finding"
	return 1
}
