// Fixture: wire-error tier A (every dropped error inside a wire package)
// and print-panic (no prints or panics in library/wire packages).
package compress

import (
	"bytes"
	"fmt"
	"io"
	"os"

	"fixture/internal/invariant"
)

// Flush drops errors three ways: bare statement, defer, goroutine.
func Flush(w io.WriteCloser, data []byte) {
	w.Write(data)   // want wire-error "error from w.Write is dropped on a wire path"
	defer w.Close() // want wire-error "deferred error from w.Close is dropped on a wire path"
	go w.Close()    // want goroutine "naked go statement" // want wire-error "goroutine-spawned error from w.Close is dropped on a wire path"
}

// FlushChecked handles or visibly discards every error: no findings.
func FlushChecked(w io.WriteCloser, data []byte) error {
	if _, err := w.Write(data); err != nil {
		return err
	}
	_ = w.Close() // explicit discard is a reviewable acknowledgement
	return nil
}

// FlushAllowed records why a dropped error is acceptable.
func FlushAllowed(w io.WriteCloser) {
	//fhdnn:allow wire-error fixture: close error is unreachable on this mock
	w.Close() // wantsup wire-error "error from w.Close is dropped on a wire path"
}

// BufferWrites exercises the never-fails exemption: no findings.
func BufferWrites(buf *bytes.Buffer) {
	buf.WriteByte(0)
	buf.WriteString("ok")
}

// Debug prints from a library package.
func Debug(v any) {
	fmt.Println("decoded:", v) // want print-panic "fmt.Println in a library package writes to stdout"
	println("decoded")         // want print-panic "builtin println in a library package writes to stderr"
}

// DebugAllowed is the annotated variant.
func DebugAllowed(v any) {
	//fhdnn:allow print-panic fixture: trace hook behind a debug build tag
	fmt.Println("decoded:", v) // wantsup print-panic "fmt.Println in a library package writes to stdout"
}

// Decode panics on malformed input instead of returning an error.
func Decode(data []byte) []float32 {
	if len(data) == 0 {
		panic("compress: empty payload") // want print-panic "panic in a wire package"
	}
	return nil
}

// DecodeAllowed carries an annotated panic.
func DecodeAllowed(data []byte) []float32 {
	if len(data) == 0 {
		//fhdnn:allow print-panic fixture: prototype path, removed before release
		panic("compress: empty payload") // wantsup print-panic "panic in a wire package"
	}
	return nil
}

// CheckDims reports programmer errors through the sanctioned helper: the
// helper call itself returns nothing, so no finding fires here.
func CheckDims(n, want int) {
	if n != want {
		invariant.Failf("compress: dims %d, want %d", n, want)
	}
}

// WriteFile checks the write but lets Fprintf to a file drop its error
// inside a wire package (tier A catches any callee).
func WriteFile(f *os.File) {
	fmt.Fprintf(f, "header\n") // want wire-error "error from fmt.Fprintf is dropped on a wire path"
}
