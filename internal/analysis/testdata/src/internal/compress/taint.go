// Fixture: wire-taint rules, intraprocedural tier. A size, index or
// loop bound derived from wire bytes must be dominated by a diverting
// comparison against a trusted cap before it reaches its sink.
package compress

const maxElems = 1 << 20

// u32 assembles a little-endian u32 by hand: arithmetic over wire bytes
// keeps their taint, and the helper's summary carries it to callers.
func u32(b []byte) int {
	return int(b[0]) | int(b[1])<<8 | int(b[2])<<16 | int(b[3])<<24
}

// DecodeFrame allocates straight from the claimed count.
func DecodeFrame(data []byte) []float32 {
	if len(data) < 4 {
		return nil
	}
	n := u32(data)
	return make([]float32, n) // want taintalloc "wire-tainted n sizes make without a dominating bound check"
}

// DecodeFrameChecked bounds the count against a named cap on a
// diverting branch first: clean.
func DecodeFrameChecked(data []byte) []float32 {
	if len(data) < 4 {
		return nil
	}
	n := u32(data)
	if n < 0 || n > maxElems {
		return nil
	}
	return make([]float32, n)
}

// DecodeFrameLogged compares, but both branches still reach the make:
// a guard that cannot divert execution proves nothing.
func DecodeFrameLogged(data []byte) ([]float32, bool) {
	if len(data) < 4 {
		return nil, false
	}
	n := u32(data)
	big := false
	if n > maxElems {
		big = true
	}
	return make([]float32, n), big // want taintalloc "wire-tainted n sizes make without a dominating bound check"
}

// DecodeInto indexes the caller's table with a wire-derived offset.
func DecodeInto(table []float32, data []byte) float32 {
	if len(data) < 4 {
		return 0
	}
	i := u32(data)
	return table[i] // want taintindex "wire-tainted i indexes table without a dominating bound check"
}

// DecodeIntoChecked bounds the offset by the table's own length (a
// trusted, locally-owned cap): clean.
func DecodeIntoChecked(table []float32, data []byte) float32 {
	if len(data) < 4 {
		return 0
	}
	i := u32(data)
	if i < 0 || i >= len(table) {
		return 0
	}
	return table[i]
}

// DecodeWindow reslices the payload to a wire-claimed end offset.
func DecodeWindow(data []byte) []byte {
	if len(data) < 8 {
		return nil
	}
	end := u32(data[4:])
	return data[4:end] // want taintindex "wire-tainted end slices data without a dominating bound check"
}

// DecodeSum loops to the claimed element count.
func DecodeSum(data []byte) int {
	if len(data) < 4 {
		return 0
	}
	n := u32(data)
	s := 0
	for i := 0; i < n; i++ { // want taintloop "wire-tainted i < n bounds the loop without a dominating bound check"
		s++
	}
	return s
}

// DecodeSumChecked caps the loop bound before entering: clean.
func DecodeSumChecked(data []byte) int {
	if len(data) < 4 {
		return 0
	}
	n := u32(data)
	if n > maxElems {
		return 0
	}
	s := 0
	for i := 0; i < n; i++ {
		s++
	}
	return s
}

// Frame is a stateful decoder: the Decode method's data parameter is a
// wire source even with the receiver occupying the first taint slot.
type Frame struct{ scale float32 }

// Decode allocates from the claimed count through the method source.
func (f Frame) Decode(data []byte) []float32 {
	if len(data) < 4 {
		return nil
	}
	n := u32(data)
	return make([]float32, n) // want taintalloc "wire-tainted n sizes make without a dominating bound check"
}

// DecodeTrusted documents why an unchecked count is acceptable.
func DecodeTrusted(data []byte) []float32 {
	if len(data) < 4 {
		return nil
	}
	n := u32(data)
	//fhdnn:allow taintalloc fixture: count is signed by the control plane upstream
	return make([]float32, n) // wantsup taintalloc "wire-tainted n sizes make without a dominating bound check"
}
