// Fixture: Into/Accum kernel definitions the aliasing fixtures call.
// The names and dst-first signatures mirror the real tensor kernels.
package tensor

// MatVecInto writes a matrix-vector product into dst; dst must not
// overlap a or x.
func MatVecInto(dst, a, x []float32) {
	for i := range dst {
		var acc float32
		for j := range x {
			acc += a[i*len(x)+j] * x[j]
		}
		dst[i] = acc
	}
}

// AxpyAccum accumulates x into dst; dst must not overlap x.
func AxpyAccum(dst, x []float32) {
	for i := range dst {
		dst[i] += x[i]
	}
}
