// Fixture: float64 rule — float64 intermediates in the kernel package.
package tensor

// DotBad promotes the accumulation chain to float64: two conversions on
// one line are deduped into a single finding.
func DotBad(a, b []float32) float32 {
	var s float64
	for i := range a {
		s += float64(a[i]) * float64(b[i]) // want float64 "float64 conversion of a float32 value in a kernel package"
	}
	return float32(s)
}

// NormHi is a deliberate high-precision reduction, annotated.
func NormHi(v []float32) float64 {
	var s float64
	for _, x := range v {
		//fhdnn:allow float64 fixture: documented high-precision reduction
		s += float64(x) * float64(x) // wantsup float64 "float64 conversion of a float32 value in a kernel package"
	}
	return s
}

// Scale converts an int, not a float32: no finding.
func Scale(n int) float64 { return float64(n) }
