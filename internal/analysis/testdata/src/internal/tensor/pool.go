// Fixture: goroutine rule negative — internal/tensor owns the worker
// pool, so go statements are allowed here.
package tensor

import "sync"

// ParallelFor is a minimal stand-in for the real pool.
func ParallelFor(n int, fn func(lo, hi int)) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // no finding: tensor is the sanctioned pool package
		defer wg.Done()
		fn(0, n)
	}()
	wg.Wait()
}
