// Fixture: hotalloc rule — //fhdnn:hotpath roots and their call-graph
// closure must not allocate; panic arguments are exempt; //fhdnn:allow
// excuses a deliberate amortized allocation.
package tensor

import "fmt"

//fhdnn:hotpath fixture: encode inner loop
func HotEncode(dst []float32) {
	hotScale(dst)
	hotGrow(dst)
}

func hotScale(dst []float32) {
	for i := range dst {
		dst[i] *= 2
	}
}

func hotGrow(dst []float32) {
	tmp := make([]float32, len(dst)) // want hotalloc "make in hotGrow, reachable from //fhdnn:hotpath HotEncode"
	copy(dst, tmp)
}

//fhdnn:hotpath fixture: amortized buffer growth is excused
func HotAllowed(dst []float32, x float32) []float32 {
	//fhdnn:allow hotalloc fixture: amortized append, callers reuse capacity
	return append(dst, x) // wantsup hotalloc "append .* in HotAllowed, declared //fhdnn:hotpath"
}

//fhdnn:hotpath fixture: crash-path formatting is free
func HotChecked(dst, x []float32) {
	if len(dst) != len(x) {
		panic(fmt.Sprintf("tensor: len mismatch %d != %d", len(dst), len(x)))
	}
	for i := range dst {
		dst[i] = x[i]
	}
}
