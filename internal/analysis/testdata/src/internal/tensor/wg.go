// Fixture: wgproto — the sync.WaitGroup protocol. internal/tensor owns
// the worker pool, so the go statements here are sanctioned and only the
// WaitGroup checks fire.
package tensor

import "sync"

// FanInGood is the canonical pool shape: Add dominates the spawn.
func FanInGood(n int, fn func(int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		i := i
		go func() {
			defer wg.Done()
			fn(i)
		}()
	}
	wg.Wait()
}

// AddAfterSpawn counts the worker only after it may already have run.
func AddAfterSpawn(fn func()) {
	var wg sync.WaitGroup
	go func() { // want wgproto "no wg.Add dominates this go statement"
		defer wg.Done()
		fn()
	}()
	wg.Add(1)
	wg.Wait()
}

// AddInBranch adds on only one path, which is not domination.
func AddInBranch(fast bool, fn func()) {
	var wg sync.WaitGroup
	if fast {
		wg.Add(1)
	}
	go func() { // want wgproto "no wg.Add dominates this go statement"
		defer wg.Done()
		fn()
	}()
	wg.Wait()
}

// AddInsideGoroutine races Wait by construction.
func AddInsideGoroutine(fn func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		wg.Add(1) // want wgproto "wg.Add inside the spawned goroutine"
		fn()
		wg.Done()
		wg.Done()
	}()
	wg.Wait()
}

// ByValueParam operates on a disconnected copy.
func ByValueParam(wg sync.WaitGroup) { // want wgproto "sync.WaitGroup passed by value"
	wg.Wait()
}

// ByValueCall copies at the call site.
func ByValueCall() {
	var wg sync.WaitGroup
	ByValueParam(wg) // want wgproto "sync.WaitGroup wg copied by value into a call"
}

// ByValueAssign copies in an assignment.
func ByValueAssign() {
	var wg sync.WaitGroup
	wg2 := wg // want wgproto "sync.WaitGroup wg copied by value in assignment"
	wg2.Wait()
}

// PointerPass is the clean shape.
func PointerPass() {
	var wg sync.WaitGroup
	waitOn(&wg)
}

func waitOn(wg *sync.WaitGroup) { wg.Wait() }

// LateAddExcused proves Add-before-Done through the jobs channel rather
// than through dominance, and records that argument.
func LateAddExcused(fn func()) {
	var wg sync.WaitGroup
	jobs := make(chan func(), 1)
	go func() { //fhdnn:allow wgproto fixture: Add precedes every jobs send and Done only runs after a receive // wantsup wgproto "no wg.Add dominates this go statement"
		for f := range jobs {
			f()
			wg.Done()
		}
	}()
	wg.Add(1)
	jobs <- fn
	wg.Wait()
	close(jobs)
}
