// Fixture: determinism rule — wall clock and global math/rand state in a
// deterministic package.
package tensor

import (
	"math/rand"
	"time"
)

// Seed uses the wall clock and the global generator: three findings.
func Seed() int64 {
	t := time.Now().UnixNano()     // want determinism "time.Now in a deterministic package"
	return t + int64(rand.Intn(7)) // want determinism "rand.Intn draws from the global generator"
}

// Elapsed is a suppressed exception (the directive trails the line).
func Elapsed(start time.Time) time.Duration {
	return time.Since(start) //fhdnn:allow determinism fixture: benchmark-only timing helper // wantsup determinism "time.Since in a deterministic package"
}

// SuppressOne demonstrates that a directive covers exactly one line: the
// first draw is excused, the identical one below still fires.
func SuppressOne() int {
	//fhdnn:allow determinism fixture: first draw is excused
	a := rand.Intn(3) // wantsup determinism "rand.Intn draws from the global generator"
	b := rand.Intn(3) // want determinism "rand.Intn draws from the global generator"
	return a + b
}

// Seeded randomness is the sanctioned pattern: no findings.
func Seeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}
