// Fixture: chandisc — channel ownership, close discipline and bounded
// queues.
package fedcore

// task carries a completion handshake channel.
type task struct{ done chan struct{} }

// ServeOwned is the clean shape: the creator sends and closes.
func ServeOwned() {
	ch := make(chan int, 4)
	ch <- 1
	close(ch)
}

// CloseParam closes a channel it does not own.
func CloseParam(ch chan int) {
	close(ch) // want chandisc "close of ch by a non-owner .the channel is a parameter"
}

// CloseReceived closes a channel that arrived inside a value received
// from another channel: close authority stayed with the sender.
func CloseReceived(tasks chan task) {
	t := <-tasks
	close(t.done) // want chandisc "close of t.done by a non-owner"
}

// HandshakeTransfer is the coordinator pattern — deliberate ownership
// transfer, excused with the argument.
func HandshakeTransfer(tasks chan task) {
	t := <-tasks
	//fhdnn:allow chandisc fixture: requester creates done and hands close authority over with the request
	close(t.done) // wantsup chandisc "close of t.done by a non-owner"
}

// DoubleClose may close twice when the early path ran.
func DoubleClose(flag bool) {
	ch := make(chan int, 1)
	if flag {
		close(ch)
	}
	close(ch) // want chandisc "close of ch, which may already be closed"
}

// SendAfterClose panics at runtime; the fixpoint sees it statically.
func SendAfterClose() {
	ch := make(chan int, 1)
	close(ch)
	ch <- 1 // want chandisc "send on ch, which may already be closed"
}

// RebindKillsClosed reassigns the variable between closes: each
// iteration closes a fresh channel, so there is no finding.
func RebindKillsClosed(rounds int) {
	ch := make(chan int, 1)
	for i := 0; i < rounds; i++ {
		close(ch)
		ch = make(chan int, 1)
	}
	ch <- 0
}

// UnboundedQueue creates a queue with no capacity: every producer send
// becomes a synchronous rendezvous instead of hitting backpressure.
func UnboundedQueue() chan []float32 {
	queue := make(chan []float32) // want chandisc "queue is created without a capacity"
	return queue
}

// BoundedQueue is the blessed shape.
func BoundedQueue(depth int) chan []float32 {
	queue := make(chan []float32, depth)
	return queue
}
