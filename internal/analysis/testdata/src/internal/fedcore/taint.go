// Fixture: wire-taint rules, interprocedural tier. Taint crosses
// function summaries in both directions — a tainted return flows into
// caller sinks, a tainted argument flows into callee sinks (reported at
// the sink, attributed to the wire entry point) — and sanitization on
// either side of the call clears it.
package fedcore

import (
	"encoding/binary"
	"io"
)

const maxParams = 1 << 16

// header pulls the claimed element count out of a frame header; its
// summary taints the return whenever the frame is tainted.
func header(frame []byte) int {
	return int(binary.LittleEndian.Uint32(frame))
}

// alloc is only as safe as its caller's argument: the sink lands here,
// attributed to the wire entry point that fed it.
func alloc(n int) []float32 {
	return make([]float32, n) // want taintalloc "wire-tainted value from DecodeParams flows into n, which sizes make without a dominating bound check"
}

// DecodeParams feeds an unchecked wire count into the helper above.
func DecodeParams(frame []byte) []float32 {
	if len(frame) < 4 {
		return nil
	}
	return alloc(header(frame))
}

// DecodeParamsChecked proves the count before the call: the callee sink
// never sees wire taint.
func DecodeParamsChecked(frame []byte) []float32 {
	if len(frame) < 4 {
		return nil
	}
	n := header(frame)
	if n < 0 || n > maxParams {
		return nil
	}
	return alloc(n)
}

// clampAlloc sanitizes inside the callee, so even a raw wire count is
// safe to pass.
func clampAlloc(n int) []float32 {
	if n < 0 || n > maxParams {
		return nil
	}
	return make([]float32, n)
}

// DecodeParamsCalleeChecked relies on the callee's own bound: clean.
func DecodeParamsCalleeChecked(frame []byte) []float32 {
	if len(frame) < 4 {
		return nil
	}
	return clampAlloc(header(frame))
}

// ReadHeader streams a header: the buffer filled from the wire reader
// is wire data, and the count it claims sizes an allocation unchecked.
func ReadHeader(r io.Reader) ([]float32, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[:]))
	return make([]float32, n), nil // want taintalloc "wire-tainted n sizes make without a dominating bound check"
}

// UnmarshalPick indexes with a wire offset the operator has bounded by
// construction of the table.
func UnmarshalPick(table []float32, frame []byte) float32 {
	if len(frame) < 4 {
		return 0
	}
	i := header(frame)
	//fhdnn:allow taintindex fixture: the table always spans the full u32 offset space
	return table[i] // wantsup taintindex "wire-tainted i indexes table without a dominating bound check"
}
