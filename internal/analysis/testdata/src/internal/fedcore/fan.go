// Fixture: goroutine rule — naked go statements outside the sanctioned
// packages.
package fedcore

import "sync"

// FanOutBad spawns raw goroutines from a package that should use the
// tensor pool.
func FanOutBad(jobs []func()) {
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(f func()) { // want goroutine "naked go statement outside the worker pool"
			defer wg.Done()
			f()
		}(j)
	}
	wg.Wait()
}

// RoundLoop is a deliberate exception with a recorded reason.
func RoundLoop(run func()) {
	done := make(chan struct{})
	//fhdnn:allow goroutine fixture: round engine joins workers before aggregating
	go func() { // wantsup goroutine "naked go statement outside the worker pool"
		defer close(done)
		run()
	}()
	<-done
}
