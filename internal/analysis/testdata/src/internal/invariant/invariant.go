// Fixture: stub of the allowlisted invariant helper; the panic inside it
// is exempt from the print-panic rule by package identity.
package invariant

import "fmt"

// Failf reports a programmer error.
func Failf(format string, args ...any) {
	panic(fmt.Sprintf(format, args...)) // no finding: invariant is the allowlisted helper
}
