package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// print-panic: library packages do not own the process. Writing to
// stdout/stderr from internal/... (fmt.Print*, the log package, the
// print/println builtins) hijacks output that belongs to the embedding
// binary, and a panic inside the wire packages turns a malformed network
// payload into a crashed aggregation server — the exact failure the
// quarantine path exists to prevent. Malformed input must surface as a
// typed error; genuine programmer-error invariants go through
// invariant.Failf, the one allowlisted panic helper, which keeps every
// intentional crash site greppable.

// invariantPkg is the allowlisted panic helper package (module-relative).
const invariantPkg = "internal/invariant"

func checkPrintPanic(l *loader, p *pkg) []Diagnostic {
	if !strings.HasPrefix(p.Rel, "internal/") || p.Rel == invariantPkg {
		return nil
	}
	inWirePkg := relIn(p, wirePkgs...)
	var out []Diagnostic
	inspectAll(p, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isBuiltin(p.Info, call, "print") || isBuiltin(p.Info, call, "println") {
			out = append(out, diag(l.fset, RulePrintPanic, call,
				"builtin %s in a library package writes to stderr; return data or an error instead", calleeName(call)))
			return true
		}
		if inWirePkg && isBuiltin(p.Info, call, "panic") {
			out = append(out, diag(l.fset, RulePrintPanic, call,
				"panic in a wire package; return a typed error for bad input, or use invariant.Failf for programmer errors"))
			return true
		}
		fn := calleeOf(p.Info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
			return true // methods (e.g. on a caller-injected *log.Logger) are fine
		}
		switch fn.Pkg().Path() {
		case "fmt":
			if strings.HasPrefix(fn.Name(), "Print") {
				out = append(out, diag(l.fset, RulePrintPanic, call,
					"fmt.%s in a library package writes to stdout; return data or log through the caller", fn.Name()))
			}
		case "log":
			if fn.Name() != "New" && !strings.HasPrefix(fn.Name(), "SetOutput") {
				out = append(out, diag(l.fset, RulePrintPanic, call,
					"log.%s in a library package writes to the process logger; surface errors to the caller", fn.Name()))
			}
		}
		return true
	})
	return out
}
