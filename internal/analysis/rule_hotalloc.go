package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// Rule hotalloc: FHDnn's client-side economics rest on the per-round loop
// — kernel calls, HD encoding, aggregation — being allocation-free; the 0-
// alloc benchmarks assert it at a few roots, but any helper those roots
// call can silently regress it. This rule makes the contract structural:
// a function whose doc comment carries
//
//	//fhdnn:hotpath <reason>
//
// must not allocate, and neither may anything reachable from it in the
// module call graph (interface dispatch and method values included, see
// callgraph.go). Flagged allocation forms: make, new, append (may grow
// its backing array), slice/map/pointer composite literals, explicit
// string<->[]byte/[]rune conversions, explicit conversions into
// interface types (boxing), and any call into package fmt (formatting
// allocates for its varargs and result).
//
// Arguments of panic and of invariant.Fail/Failf are exempt: a crash
// path runs at most once and its formatting cost is irrelevant. Function
// literal creation is not flagged — the kernels' parallel dispatchers
// construct closures only on the multi-worker path, behind the serial
// early-return the 0-alloc benchmarks pin; their bodies are still
// scanned. A deliberate, amortized allocation (a lazily grown buffer)
// is excused the usual way with //fhdnn:allow hotalloc <reason>.

// HotpathPrefix marks a function as a zero-allocation root.
const HotpathPrefix = "//fhdnn:hotpath"

// hasHotpathDirective reports whether the declaration's doc comment
// contains a hotpath directive.
func hasHotpathDirective(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, HotpathPrefix) {
			return true
		}
	}
	return false
}

// checkHotAlloc runs module-wide: the call graph spans every loaded
// package (pattern packages plus their dependencies) so the closure of a
// root never stops at a package boundary, while roots and findings are
// restricted to the packages actually being linted. Findings are grouped
// by the package containing the allocation so //fhdnn:allow directives in
// that file apply normally.
func checkHotAlloc(mp *modulePass, patternPkgs []*pkg) map[*pkg][]Diagnostic {
	l := mp.l
	g := mp.graph

	inPattern := make(map[*pkg]bool, len(patternPkgs))
	for _, p := range patternPkgs {
		inPattern[p] = true
	}

	var roots []*types.Func
	for _, fn := range g.order {
		node := g.nodes[fn]
		if inPattern[node.pkg] && hasHotpathDirective(node.decl) {
			roots = append(roots, fn)
		}
	}
	sortFuncsByPos(roots)
	from := g.reach(roots)

	out := make(map[*pkg][]Diagnostic)
	for _, fn := range g.order {
		root, ok := from[fn]
		if !ok {
			continue
		}
		node := g.nodes[fn]
		if !inPattern[node.pkg] {
			continue
		}
		if ds := hotAllocSites(l, node, root); len(ds) > 0 {
			out[node.pkg] = append(out[node.pkg], ds...)
		}
	}
	return out
}

// hotAllocSites scans one reached function body for allocation sites.
func hotAllocSites(l *loader, node *cgNode, root *types.Func) []Diagnostic {
	info := node.pkg.Info
	via := "declared " + HotpathPrefix
	if node.fn != root {
		via = fmt.Sprintf("reachable from %s %s", HotpathPrefix, funcDisplayName(root))
	}
	self := funcDisplayName(node.fn)
	var diags []Diagnostic
	report := func(n ast.Node, what string) {
		diags = append(diags, diag(l.fset, RuleHotAlloc, n,
			"%s in %s, %s; hot paths must not allocate", what, self, via))
	}
	ast.Inspect(node.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isBuiltin(info, n, "panic") || isInvariantFail(l, info, n) {
				return false // cold crash path: formatting there is free
			}
			switch {
			case isBuiltin(info, n, "make"):
				report(n, "make")
			case isBuiltin(info, n, "new"):
				report(n, "new")
			case isBuiltin(info, n, "append"):
				report(n, "append (may grow its backing array)")
			case isConversion(info, n):
				if what, bad := allocatingConversion(info, n); bad {
					report(n, what)
				}
			default:
				if fn := calleeOf(info, n); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
					report(n, "fmt."+fn.Name()+" call")
				}
			}
		case *ast.CompositeLit:
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Slice, *types.Map:
				report(n, "composite literal")
			}
		}
		return true
	})
	return diags
}

// isInvariantFail recognizes the module's sanctioned crash helpers.
func isInvariantFail(l *loader, info *types.Info, call *ast.CallExpr) bool {
	fn := calleeOf(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() != l.module+"/internal/invariant" {
		return false
	}
	return fn.Name() == "Fail" || fn.Name() == "Failf"
}

// allocatingConversion classifies explicit conversions that allocate.
func allocatingConversion(info *types.Info, call *ast.CallExpr) (string, bool) {
	if len(call.Args) != 1 {
		return "", false
	}
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return "", false
	}
	src := info.TypeOf(call.Args[0])
	if src == nil {
		return "", false
	}
	tu, su := tv.Type.Underlying(), src.Underlying()
	if types.IsInterface(tu) && !types.IsInterface(su) {
		return "conversion to interface (boxes its operand)", true
	}
	if isStringType(su) && isByteOrRuneSlice(tu) {
		return "string-to-slice conversion", true
	}
	if isByteOrRuneSlice(su) && isStringType(tu) {
		return "slice-to-string conversion", true
	}
	return "", false
}

func isStringType(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	k := basicKind(s.Elem())
	return k == types.Uint8 || k == types.Int32
}
