package analysis

import (
	"go/ast"
	"go/types"
)

// Rule wgproto: the sync.WaitGroup protocol. Three checks, all anchored
// in the happens-before rules the race detector enforces dynamically:
//
//  1. Add dominates the spawn — for every `go func(){...}()` whose body
//     calls wg.Done on a WaitGroup declared outside the literal, some
//     wg.Add call must dominate the go statement in the enclosing CFG
//     (same block earlier, or a dominating block). Without that, a Wait
//     running concurrently can observe the counter at zero before the
//     goroutine is counted and return early — the classic lost-worker
//     race.
//  2. no Add inside the goroutine — an Add in the spawned body races
//     Wait by construction; the dominance in check 1 is unobtainable.
//  3. no copy-by-value — a WaitGroup parameter, argument, or assignment
//     source of value type operates on a copy whose counter is
//     disconnected from the original; Done on a copy never releases the
//     real Wait. (Composite literals and zero-value declarations are
//     fine: they create a WaitGroup, not a copy of one.)
//
// The dominance check is intraprocedural and applies to goroutine
// literals only: a named spawn target receives its WaitGroup explicitly
// (necessarily by pointer, or check 3 fires) and the Add site lives with
// the caller, which this rule still audits at the spawn.

func checkWgProto(l *loader, p *pkg) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			diags = append(diags, wgCopies(l, p, fd)...)
			diags = append(diags, wgSpawnProtocol(l, p, fd.Body)...)
		}
	}
	inspectAll(p, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			diags = append(diags, wgSpawnProtocol(l, p, fl.Body)...)
		}
		return true
	})
	return diags
}

// isWaitGroup matches the named type sync.WaitGroup (value form).
func isWaitGroup(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

// wgCopies flags by-value WaitGroup parameters, call arguments and
// assignment sources anywhere in the declaration.
func wgCopies(l *loader, p *pkg, fd *ast.FuncDecl) []Diagnostic {
	info := p.Info
	var diags []Diagnostic

	if fd.Type.Params != nil {
		for _, f := range fd.Type.Params.List {
			if t := info.TypeOf(f.Type); t != nil && isWaitGroup(t) {
				diags = append(diags, diag(l.fset, RuleWgProto, f.Type,
					"sync.WaitGroup passed by value: Add/Done/Wait act on a disconnected copy — take *sync.WaitGroup"))
			}
		}
	}

	// A copy source is a reference to an existing WaitGroup value: an
	// identifier or field selector of value type (not a pointer, not an
	// address-of, not a composite literal).
	copySource := func(e ast.Expr) bool {
		switch ast.Unparen(e).(type) {
		case *ast.Ident, *ast.SelectorExpr:
		default:
			return false
		}
		t := info.TypeOf(e)
		return t != nil && isWaitGroup(t)
	}

	ast.Inspect(fd, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			for _, arg := range n.Args {
				if copySource(arg) {
					diags = append(diags, diag(l.fset, RuleWgProto, arg,
						"sync.WaitGroup %s copied by value into a call; the callee's Done never releases this Wait — pass a pointer", types.ExprString(arg)))
				}
			}
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				if copySource(rhs) {
					diags = append(diags, diag(l.fset, RuleWgProto, rhs,
						"sync.WaitGroup %s copied by value in assignment; the copy's counter is disconnected — use a pointer", types.ExprString(rhs)))
				}
			}
		}
		return true
	})
	return diags
}

// wgVarOf resolves a WaitGroup method receiver to its variable def.
func wgVarOf(info *types.Info, e ast.Expr) *types.Var {
	return chanVarOf(info, e) // same ident/field resolution
}

// wgMethodCall matches X.Add / X.Done / X.Wait on a WaitGroup receiver,
// returning the receiver def and expression.
func wgMethodCall(info *types.Info, call *ast.CallExpr, name string) (*types.Var, ast.Expr) {
	se, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || se.Sel.Name != name {
		return nil, nil
	}
	fn, ok := info.Uses[se.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil, nil
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if !isWaitGroup(t) {
		return nil, nil
	}
	return wgVarOf(info, se.X), se.X
}

// wgSpawnProtocol runs checks 1 and 2 over one function body's go
// statements (literal spawns only; nested literal bodies are audited by
// their own invocation, but the go statements of this body are handled
// here even when their literal is nested syntax).
func wgSpawnProtocol(l *loader, p *pkg, body *ast.BlockStmt) []Diagnostic {
	info := p.Info
	var diags []Diagnostic

	var g *funcCFG
	var dom []map[int]bool
	ensureCFG := func() {
		if g == nil {
			g = buildCFG(body)
			dom = g.dominators()
		}
	}

	// declaredOutsideLit: the def exists before the literal runs (fields
	// always do; locals by position).
	outsideLit := func(v *types.Var, lit *ast.FuncLit) bool {
		if v == nil {
			return false
		}
		if v.IsField() {
			return true
		}
		return v.Pos() < lit.Pos() || v.Pos() > lit.End()
	}

	walkSkipLits(body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)
		if !ok {
			return true // named spawn: Add site audited where it lives
		}

		// Scan the spawned body for Done/Add on outer WaitGroups.
		type doneSite struct {
			v    *types.Var
			expr ast.Expr
		}
		var dones []doneSite
		seen := make(map[*types.Var]bool)
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if v, _ := wgMethodCall(info, call, "Add"); v != nil && outsideLit(v, lit) {
				diags = append(diags, diag(l.fset, RuleWgProto, call,
					"%s.Add inside the spawned goroutine races Wait: the counter may still be zero when Wait runs — call Add before the go statement", v.Name()))
			}
			if v, expr := wgMethodCall(info, call, "Done"); v != nil && outsideLit(v, lit) && !seen[v] {
				seen[v] = true
				dones = append(dones, doneSite{v, expr})
			}
			return true
		})
		if len(dones) == 0 {
			return true
		}

		ensureCFG()
		gb, gi := g.atomPoint(gs)
		if gb == nil {
			return true
		}
		for _, d := range dones {
			if wgAddDominates(info, g, dom, d.v, gb, gi) {
				continue
			}
			diags = append(diags, diag(l.fset, RuleWgProto, gs,
				"no %s.Add dominates this go statement whose goroutine calls %s.Done: Wait can return before the goroutine is counted", d.v.Name(), d.v.Name()))
		}
		return true
	})
	return diags
}

// wgAddDominates reports whether some atom containing v.Add(...) strictly
// precedes (dominates) the go statement at (gb, gi).
func wgAddDominates(info *types.Info, g *funcCFG, dom []map[int]bool, v *types.Var, gb *block, gi int) bool {
	for _, b := range g.blocks {
		if !dom[gb.idx][b.idx] {
			continue
		}
		for i, atom := range b.atoms {
			if b == gb && i >= gi {
				break
			}
			found := false
			shallowInspect(atom, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if av, _ := wgMethodCall(info, call, "Add"); av == v {
					found = true
				}
				return true
			})
			if found {
				return true
			}
		}
	}
	return false
}
