package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// FuzzParseAllows drives arbitrary text through the //fhdnn:allow
// directive parser and the suppression matcher. Whatever the directive
// says — unknown rules, unicode, missing reasons, trailing junk, nested
// comment markers — parsing must not panic, every parsed directive must
// carry a real position, and applySuppressions must classify it either
// as usable or as a malformed/stale finding without inventing findings
// of other kinds.
func FuzzParseAllows(f *testing.F) {
	f.Add("determinism benchmark-only timing helper")
	f.Add("lockheld")
	f.Add("bogus-rule some reason")
	f.Add("hotalloc amortized append // trailing comment")
	f.Add("float64 précision déterministe")
	f.Add("  \t weird junk")
	f.Add(`aliasing reason with "quotes" and \ backslashes`)
	f.Fuzz(func(t *testing.T, dir string) {
		if strings.ContainsAny(dir, "\n\r") {
			t.Skip("directives are single-line comments")
		}
		src := "package p\n\n//fhdnn:allow " + dir + "\nfunc F() {}\n"
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz.go", src, parser.ParseComments)
		if err != nil {
			t.Skip("input breaks Go comment lexing")
		}
		ds := parseAllows(fset, file)
		for _, d := range ds {
			if d.line <= 0 || d.pos.Filename == "" {
				t.Fatalf("directive without position: %+v", d)
			}
			if strings.ContainsAny(d.rule, " \t") {
				t.Fatalf("rule name %q contains whitespace", d.rule)
			}
			if strings.Contains(d.reason, "//") {
				t.Fatalf("reason %q retains a trailing comment", d.reason)
			}
		}

		enabled := make(map[string]bool)
		for _, r := range AllRules {
			enabled[r] = true
		}
		p := &pkg{Files: []*ast.File{file}}
		active, suppressed, bad := applySuppressions(fset, p, nil, enabled)
		if len(active) != 0 || len(suppressed) != 0 {
			t.Fatalf("no findings went in, yet active=%d suppressed=%d", len(active), len(suppressed))
		}
		// With no findings to excuse, every well-formed directive must be
		// reported stale and every malformed one reported malformed — one
		// allow finding per parsed directive, each fully positioned.
		if len(bad) != len(ds) {
			t.Fatalf("%d directives produced %d allow findings", len(ds), len(bad))
		}
		for _, b := range bad {
			if b.Rule != RuleAllow {
				t.Fatalf("unexpected rule %q from directive auditing", b.Rule)
			}
			if b.Line <= 0 || b.Col <= 0 || b.File == "" {
				t.Fatalf("allow finding without position: %+v", b)
			}
		}
	})
}
