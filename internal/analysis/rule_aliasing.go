package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Rule aliasing: the blocked *Into/*Accum kernels in internal/tensor (and
// the Into entry points layered on them in internal/nn and internal/hdc)
// are undefined when the destination buffer overlaps an input — the tiled
// loops read inputs while writing dst, so overlap silently corrupts
// results without tripping any test that uses distinct buffers. This rule
// flags every call to such a kernel where the dst argument *may* alias
// another argument.
//
// "May alias" is decided by chasing each slice/pointer argument back to
// its base locations through the reaching definitions of the enclosing
// function: two arguments alias when they can root at the same variable,
// at the same field path of the same variable, or at the same allocation
// site (slices derived from one make/composite-literal). The analysis is
// intraprocedural and conservative in both directions by design: distinct
// parameters are assumed disjoint (callers are checked at their own call
// sites), and two subslices of one base array are flagged even when their
// ranges cannot overlap — the kernels' contract is distinct buffers, not
// carefully-interleaved ones.

// aliasKernelPkgs are the module-relative packages whose Into/Accum
// functions carry the non-overlap contract.
var aliasKernelPkgs = map[string]bool{
	"internal/tensor": true,
	"internal/nn":     true,
	"internal/hdc":    true,
}

func checkAliasing(l *loader, p *pkg) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			diags = append(diags, aliasCheckBody(l, p, fd.Type, fd.Recv, fd.Body)...)
		}
	}
	// Function literals run with their own locals; give each its own CFG.
	// (Kernel calls inside a literal are skipped by the enclosing
	// function's shallow atom walk, so nothing is checked twice.)
	inspectAll(p, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			diags = append(diags, aliasCheckBody(l, p, fl.Type, nil, fl.Body)...)
		}
		return true
	})
	return diags
}

func aliasCheckBody(l *loader, p *pkg, ftype *ast.FuncType, recv *ast.FieldList, body *ast.BlockStmt) []Diagnostic {
	g := buildCFG(body)
	rd := reachingDefs(g, p.Info, ftype, recv)
	var diags []Diagnostic
	rd.eachAtom(func(b *block, i int, st defState) {
		shallowInspect(b.atoms[i], func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if d, bad := aliasCheckCall(l, p, call, st); bad {
				diags = append(diags, d)
			}
			return true
		})
	})
	return diags
}

// aliasCheckCall inspects one call expression; reports the first argument
// that may alias dst.
func aliasCheckCall(l *loader, p *pkg, call *ast.CallExpr, st defState) (Diagnostic, bool) {
	fn := calleeOf(p.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return Diagnostic{}, false
	}
	path := fn.Pkg().Path()
	if path != l.module && !strings.HasPrefix(path, l.module+"/") {
		return Diagnostic{}, false
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.module), "/")
	if !aliasKernelPkgs[rel] {
		return Diagnostic{}, false
	}
	name := fn.Name()
	if !strings.HasSuffix(name, "Into") && !strings.HasSuffix(name, "Accum") {
		return Diagnostic{}, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return Diagnostic{}, false
	}
	dstIdx := -1
	for i := 0; i < sig.Params().Len(); i++ {
		if pn := sig.Params().At(i).Name(); pn == "dst" || pn == "out" {
			dstIdx = i
			break
		}
	}
	if dstIdx < 0 || dstIdx >= len(call.Args) {
		return Diagnostic{}, false
	}

	ac := &aliasCtx{info: p.Info, st: st}
	dstBases := ac.bases(call.Args[dstIdx], make(map[*types.Var]bool))
	for i, arg := range call.Args {
		if i == dstIdx || !memoryType(p.Info.TypeOf(arg)) {
			continue
		}
		argBases := ac.bases(arg, make(map[*types.Var]bool))
		if basesOverlap(dstBases, argBases) {
			d := diag(l.fset, RuleAliasing, call,
				"dst argument %s of %s may alias input %s; Into/Accum kernels require non-overlapping buffers",
				types.ExprString(call.Args[dstIdx]), name, types.ExprString(arg))
			return d, true
		}
	}
	return Diagnostic{}, false
}

// memoryType reports whether values of t can share backing storage.
func memoryType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Pointer, *types.Array, *types.Map, *types.Chan:
		return true
	}
	return false
}

// loc is an abstract memory base: a variable (obj, path ""), a field path
// under a variable (obj, "f.g"), or an anonymous creation site (pos).
type loc struct {
	obj  types.Object
	path string
	pos  token.Pos
}

// aliasCtx resolves expressions to base-location sets under a reaching
// definition state.
type aliasCtx struct {
	info *types.Info
	st   defState
}

func oneLoc(l loc) map[loc]bool { return map[loc]bool{l: true} }

func siteLoc(e ast.Expr) map[loc]bool { return oneLoc(loc{pos: e.Pos()}) }

// bases computes where e's storage may root. visiting guards definition
// cycles (x = x[1:]): a revisited variable resolves to itself.
func (c *aliasCtx) bases(e ast.Expr, visiting map[*types.Var]bool) map[loc]bool {
	if e == nil {
		return nil
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := c.info.Uses[e]
		if obj == nil {
			obj = c.info.Defs[e]
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return siteLoc(e) // nil literal, constants
		}
		if visiting[v] {
			return oneLoc(loc{obj: v})
		}
		defs, tracked := c.st[v]
		if !tracked {
			// Captured, package-level, or field-promoted variable: root at
			// the variable itself.
			return oneLoc(loc{obj: v})
		}
		out := make(map[loc]bool)
		visiting[v] = true
		for d := range defs {
			if d == nil {
				out[loc{obj: v}] = true
				continue
			}
			for b := range c.bases(d, visiting) {
				out[b] = true
			}
		}
		delete(visiting, v)
		return out
	case *ast.SliceExpr:
		return c.bases(e.X, visiting)
	case *ast.IndexExpr:
		return c.bases(e.X, visiting)
	case *ast.StarExpr:
		return c.bases(e.X, visiting)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return c.bases(e.X, visiting)
		}
		return siteLoc(e)
	case *ast.SelectorExpr:
		if sel, ok := c.info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			if root, path := fieldRoot(c.info, e); root != nil {
				return oneLoc(loc{obj: root, path: path})
			}
			return c.bases(e.X, visiting)
		}
		// Qualified identifier: pkg.Var.
		if v, ok := c.info.Uses[e.Sel].(*types.Var); ok {
			return oneLoc(loc{obj: v})
		}
		return siteLoc(e)
	case *ast.CallExpr:
		// Accessor methods returning views of the receiver's storage keep
		// the receiver as their base; any other call is a fresh site.
		if se, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
			if fn, ok := c.info.Uses[se.Sel].(*types.Func); ok {
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
					switch fn.Name() {
					case "Data", "Row":
						return c.bases(se.X, visiting)
					}
				}
			}
		}
		return siteLoc(e)
	default:
		return siteLoc(e)
	}
}

// fieldRoot resolves a chain of field selections to its root variable and
// dotted field path ("b.data" for x.b.data rooted at x). The root is not
// chased through reaching definitions: struct copies snapshot their
// fields, and conflating them would be wrong more often than right.
func fieldRoot(info *types.Info, e *ast.SelectorExpr) (types.Object, string) {
	path := e.Sel.Name
	x := ast.Unparen(e.X)
	for {
		switch xx := x.(type) {
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[xx]; !ok || sel.Kind() != types.FieldVal {
				return nil, ""
			}
			path = xx.Sel.Name + "." + path
			x = ast.Unparen(xx.X)
		case *ast.StarExpr:
			x = ast.Unparen(xx.X)
		case *ast.Ident:
			obj := info.Uses[xx]
			if obj == nil {
				obj = info.Defs[xx]
			}
			if v, ok := obj.(*types.Var); ok {
				return v, path
			}
			return nil, ""
		default:
			return nil, ""
		}
	}
}

// basesOverlap reports whether any pair of locations may share storage.
func basesOverlap(a, b map[loc]bool) bool {
	for x := range a {
		for y := range b {
			if locsAlias(x, y) {
				return true
			}
		}
	}
	return false
}

func locsAlias(a, b loc) bool {
	if a == b {
		return true
	}
	if a.obj == nil || a.obj != b.obj {
		return false
	}
	// Same root variable: the bare variable overlaps every field path
	// under it, and nested paths overlap along prefix containment.
	if a.path == "" || b.path == "" || a.path == b.path {
		return true
	}
	return strings.HasPrefix(a.path, b.path+".") || strings.HasPrefix(b.path, a.path+".")
}
