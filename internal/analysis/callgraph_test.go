package analysis

import (
	"go/types"
	"testing"
)

// lookupFunc resolves a package-level function by name.
func lookupFunc(t *testing.T, p *pkg, name string) *types.Func {
	t.Helper()
	fn, ok := p.Types.Scope().Lookup(name).(*types.Func)
	if !ok {
		t.Fatalf("function %s not found in %s", name, p.ImportPath)
	}
	return fn
}

// lookupMethod resolves a method on a package-level named type.
func lookupMethod(t *testing.T, p *pkg, typeName, method string) *types.Func {
	t.Helper()
	tn, ok := p.Types.Scope().Lookup(typeName).(*types.TypeName)
	if !ok {
		t.Fatalf("type %s not found in %s", typeName, p.ImportPath)
	}
	obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(tn.Type()), true, p.Types, method)
	fn, ok := obj.(*types.Func)
	if !ok {
		t.Fatalf("method %s.%s not found", typeName, method)
	}
	return fn
}

func hasCallee(g *callGraph, from, to *types.Func) bool {
	for _, c := range g.callees(from) {
		if c == to {
			return true
		}
	}
	return false
}

// TestCallGraphFixture pins the three over-approximation guarantees on
// the fixture hot package: interface dispatch fans out to concrete
// methods, method values create edges, and mutual recursion neither
// hangs the closure walk nor falls out of it.
func TestCallGraphFixture(t *testing.T) {
	l, err := newLoader(fixtureRoot)
	if err != nil {
		t.Fatal(err)
	}
	p, err := l.load("fixture/internal/hot")
	if err != nil {
		t.Fatal(err)
	}
	g := buildCallGraph([]*pkg{p})

	feed := lookupFunc(t, p, "Feed")
	handle := lookupFunc(t, p, "Handle")
	even := lookupFunc(t, p, "Even")
	odd := lookupFunc(t, p, "Odd")
	bufAdd := lookupMethod(t, p, "Buf", "Add")

	if !hasCallee(g, feed, bufAdd) {
		t.Error("interface dispatch: Feed should have an edge to (*Buf).Add")
	}
	if !hasCallee(g, handle, bufAdd) {
		t.Error("method value: Handle should have an edge to (*Buf).Add")
	}
	if !hasCallee(g, even, odd) || !hasCallee(g, odd, even) {
		t.Error("mutual recursion: Even<->Odd edges missing")
	}

	// reach must terminate on the cycle and keep both halves (plus the
	// dispatched method) in the closure, attributed to the right roots.
	from := g.reach([]*types.Func{feed, even})
	if from[bufAdd] != feed {
		t.Errorf("(*Buf).Add attributed to %v, want Feed", from[bufAdd])
	}
	if from[odd] != even || from[even] != even {
		t.Error("recursive closure under-approximates: Even/Odd not reached from Even")
	}
}

// TestCallGraphRepo checks dispatch expansion over the real module's two
// central interfaces: fedcore.Aggregator (Engine.Run -> every aggregator
// Add) and compress.Codec (DecodeEnvelope -> every codec Decode).
func TestCallGraphRepo(t *testing.T) {
	l, err := newLoader("../..")
	if err != nil {
		t.Fatal(err)
	}
	fed, err := l.load("fhdnn/internal/fedcore")
	if err != nil {
		t.Fatal(err)
	}
	comp, err := l.load("fhdnn/internal/compress")
	if err != nil {
		t.Fatal(err)
	}
	g := buildCallGraph([]*pkg{comp, fed})

	run := lookupMethod(t, fed, "Engine", "Run")
	for _, agg := range []string{"FedAvg", "Bundle", "AsyncStaleness"} {
		add := lookupMethod(t, fed, agg, "Add")
		if !hasCallee(g, run, add) {
			t.Errorf("Engine.Run should dispatch to (*%s).Add through Aggregator", agg)
		}
	}

	dec := lookupFunc(t, fed, "DecodeEnvelope")
	for _, codec := range []string{"Raw", "Float16", "Int8", "TopK"} {
		d := lookupMethod(t, comp, codec, "Decode")
		if !hasCallee(g, dec, d) {
			t.Errorf("DecodeEnvelope should dispatch to %s.Decode through compress.Codec", codec)
		}
	}
}

// TestSpawnSites pins the spawn-edge collection on the fixture relay:
// a go statement launching a function literal carries the literal (nil
// target), and a direct method launch resolves the module function.
func TestSpawnSites(t *testing.T) {
	l, err := newLoader(fixtureRoot)
	if err != nil {
		t.Fatal(err)
	}
	p, err := l.load("fixture/internal/flnet")
	if err != nil {
		t.Fatal(err)
	}
	g := buildCallGraph([]*pkg{p})

	pump := lookupMethod(t, p, "relay", "pump")
	spawnPump := lookupFunc(t, p, "SpawnPump")
	spawnLit := lookupFunc(t, p, "SpawnLit")

	named := g.nodes[spawnPump].spawns
	if len(named) != 1 {
		t.Fatalf("SpawnPump: got %d spawn sites, want 1", len(named))
	}
	if named[0].target != pump || named[0].lit != nil {
		t.Errorf("SpawnPump spawn: target=%v lit=%v, want target=(*relay).pump lit=nil",
			named[0].target, named[0].lit)
	}
	if named[0].stmt == nil {
		t.Error("SpawnPump spawn: go statement not recorded")
	}

	lits := g.nodes[spawnLit].spawns
	if len(lits) != 1 {
		t.Fatalf("SpawnLit: got %d spawn sites, want 1", len(lits))
	}
	if lits[0].lit == nil || lits[0].target != nil {
		t.Errorf("SpawnLit spawn: target=%v lit=%v, want a literal with nil target",
			lits[0].target, lits[0].lit)
	}

	if len(g.nodes[pump].spawns) != 0 {
		t.Error("pump spawns nothing; its spawn list should be empty")
	}
}

// TestGoroutineOnly pins the greatest-fixpoint classification: direct
// spawn targets and their exclusively-goroutine helpers stay marked,
// while one ordinary caller demotes a helper.
func TestGoroutineOnly(t *testing.T) {
	l, err := newLoader(fixtureRoot)
	if err != nil {
		t.Fatal(err)
	}
	p, err := l.load("fixture/internal/flnet")
	if err != nil {
		t.Fatal(err)
	}
	g := buildCallGraph([]*pkg{p})
	only := g.goroutineOnly()

	pump := lookupMethod(t, p, "relay", "pump")
	forward := lookupMethod(t, p, "relay", "forward")
	shared := lookupMethod(t, p, "relay", "shared")
	spawnPump := lookupFunc(t, p, "SpawnPump")
	useShared := lookupFunc(t, p, "UseShared")

	if !only[pump] {
		t.Error("pump is the direct target of a go statement; it must stay marked")
	}
	if !only[forward] {
		t.Error("forward is reached only from pump; the fixpoint must keep it marked")
	}
	if only[shared] {
		t.Error("shared is also called from UseShared on the caller's stack; it must be demoted")
	}
	if only[spawnPump] || only[useShared] {
		t.Error("SpawnPump/UseShared run on the caller's stack; neither may be marked")
	}
}
