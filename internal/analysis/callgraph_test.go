package analysis

import (
	"go/types"
	"testing"
)

// lookupFunc resolves a package-level function by name.
func lookupFunc(t *testing.T, p *pkg, name string) *types.Func {
	t.Helper()
	fn, ok := p.Types.Scope().Lookup(name).(*types.Func)
	if !ok {
		t.Fatalf("function %s not found in %s", name, p.ImportPath)
	}
	return fn
}

// lookupMethod resolves a method on a package-level named type.
func lookupMethod(t *testing.T, p *pkg, typeName, method string) *types.Func {
	t.Helper()
	tn, ok := p.Types.Scope().Lookup(typeName).(*types.TypeName)
	if !ok {
		t.Fatalf("type %s not found in %s", typeName, p.ImportPath)
	}
	obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(tn.Type()), true, p.Types, method)
	fn, ok := obj.(*types.Func)
	if !ok {
		t.Fatalf("method %s.%s not found", typeName, method)
	}
	return fn
}

func hasCallee(g *callGraph, from, to *types.Func) bool {
	for _, c := range g.callees(from) {
		if c == to {
			return true
		}
	}
	return false
}

// TestCallGraphFixture pins the three over-approximation guarantees on
// the fixture hot package: interface dispatch fans out to concrete
// methods, method values create edges, and mutual recursion neither
// hangs the closure walk nor falls out of it.
func TestCallGraphFixture(t *testing.T) {
	l, err := newLoader(fixtureRoot)
	if err != nil {
		t.Fatal(err)
	}
	p, err := l.load("fixture/internal/hot")
	if err != nil {
		t.Fatal(err)
	}
	g := buildCallGraph([]*pkg{p})

	feed := lookupFunc(t, p, "Feed")
	handle := lookupFunc(t, p, "Handle")
	even := lookupFunc(t, p, "Even")
	odd := lookupFunc(t, p, "Odd")
	bufAdd := lookupMethod(t, p, "Buf", "Add")

	if !hasCallee(g, feed, bufAdd) {
		t.Error("interface dispatch: Feed should have an edge to (*Buf).Add")
	}
	if !hasCallee(g, handle, bufAdd) {
		t.Error("method value: Handle should have an edge to (*Buf).Add")
	}
	if !hasCallee(g, even, odd) || !hasCallee(g, odd, even) {
		t.Error("mutual recursion: Even<->Odd edges missing")
	}

	// reach must terminate on the cycle and keep both halves (plus the
	// dispatched method) in the closure, attributed to the right roots.
	from := g.reach([]*types.Func{feed, even})
	if from[bufAdd] != feed {
		t.Errorf("(*Buf).Add attributed to %v, want Feed", from[bufAdd])
	}
	if from[odd] != even || from[even] != even {
		t.Error("recursive closure under-approximates: Even/Odd not reached from Even")
	}
}

// TestCallGraphRepo checks dispatch expansion over the real module's two
// central interfaces: fedcore.Aggregator (Engine.Run -> every aggregator
// Add) and compress.Codec (DecodeEnvelope -> every codec Decode).
func TestCallGraphRepo(t *testing.T) {
	l, err := newLoader("../..")
	if err != nil {
		t.Fatal(err)
	}
	fed, err := l.load("fhdnn/internal/fedcore")
	if err != nil {
		t.Fatal(err)
	}
	comp, err := l.load("fhdnn/internal/compress")
	if err != nil {
		t.Fatal(err)
	}
	g := buildCallGraph([]*pkg{comp, fed})

	run := lookupMethod(t, fed, "Engine", "Run")
	for _, agg := range []string{"FedAvg", "Bundle", "AsyncStaleness"} {
		add := lookupMethod(t, fed, agg, "Add")
		if !hasCallee(g, run, add) {
			t.Errorf("Engine.Run should dispatch to (*%s).Add through Aggregator", agg)
		}
	}

	dec := lookupFunc(t, fed, "DecodeEnvelope")
	for _, codec := range []string{"Raw", "Float16", "Int8", "TopK"} {
		d := lookupMethod(t, comp, codec, "Decode")
		if !hasCallee(g, dec, d) {
			t.Errorf("DecodeEnvelope should dispatch to %s.Decode through compress.Codec", codec)
		}
	}
}
