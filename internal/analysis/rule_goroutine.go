package analysis

import "go/ast"

// goroutine: unbounded `go` statements are how a refactor quietly
// replaces the deterministic, bounded worker pool with a thundering herd.
// Only two places in the repo are entitled to spawn goroutines:
//
//   - internal/tensor, which owns the shared semaphore pool behind
//     ParallelFor (bounded, nest-safe, bit-identical for every worker
//     count);
//   - internal/flnet, whose request handling and chaos-hardened client
//     loops are inherently concurrent network code.
//
// Everything else either routes data-parallel fan-out through
// tensor.ParallelFor or carries an //fhdnn:allow goroutine annotation
// explaining why bounded fan-out does not fit (e.g. an HTTP server's
// accept loop).
var goroutinePkgs = []string{"internal/tensor", "internal/flnet"}

func checkGoroutines(l *loader, p *pkg) []Diagnostic {
	if relIn(p, goroutinePkgs...) {
		return nil
	}
	var out []Diagnostic
	inspectAll(p, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			out = append(out, diag(l.fset, RuleGoroutine, g,
				"naked go statement outside the worker pool; route fan-out through tensor.ParallelFor"))
		}
		return true
	})
	return out
}
