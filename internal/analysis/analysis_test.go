package analysis

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The fixture corpus under testdata/src is a self-contained module
// ("fixture") whose files carry expectation comments:
//
//	// want <rule> "<message regexp>"       an active finding on this line
//	// wantsup <rule> "<message regexp>"    a finding suppressed by //fhdnn:allow
//
// The corpus test runs the full analyzer over the corpus and requires an
// exact one-to-one match between expectations and diagnostics — no
// missing findings, no extras, no drifted positions.

const fixtureRoot = "testdata/src"

type expectation struct {
	file string // relative to fixtureRoot, slash-separated
	line int
	kind string // "want" or "wantsup"
	rule string
	re   *regexp.Regexp
}

var expectRx = regexp.MustCompile(`// (want|wantsup) ([a-z0-9-]+) "((?:[^"\\]|\\.)*)"`)

func loadExpectations(t *testing.T) []*expectation {
	t.Helper()
	var out []*expectation
	err := filepath.WalkDir(fixtureRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(fixtureRoot, path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range expectRx.FindAllStringSubmatch(line, -1) {
				re, err := regexp.Compile(m[3])
				if err != nil {
					t.Fatalf("%s:%d: bad expectation regexp %q: %v", rel, i+1, m[3], err)
				}
				out = append(out, &expectation{
					file: filepath.ToSlash(rel), line: i + 1, kind: m[1], rule: m[2], re: re,
				})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("no expectations found in fixture corpus")
	}
	return out
}

// relFile maps a diagnostic's absolute file path back to a
// corpus-relative slash path.
func relFile(t *testing.T, file string) string {
	t.Helper()
	abs, err := filepath.Abs(fixtureRoot)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := filepath.Rel(abs, file)
	if err != nil {
		t.Fatalf("diagnostic outside corpus: %s", file)
	}
	return filepath.ToSlash(rel)
}

func matchDiags(t *testing.T, kind string, diags []Diagnostic, expects []*expectation) {
	t.Helper()
	used := make([]bool, len(expects))
	for _, d := range diags {
		if d.Col <= 0 || d.Line <= 0 {
			t.Errorf("diagnostic without position: %+v", d)
		}
		file := relFile(t, d.File)
		found := false
		for i, e := range expects {
			if used[i] || e.kind != kind || e.file != file || e.line != d.Line || e.rule != d.Rule {
				continue
			}
			if !e.re.MatchString(d.Message) {
				t.Errorf("%s:%d: %s diagnostic message %q does not match expectation %q",
					file, d.Line, d.Rule, d.Message, e.re)
			}
			used[i] = true
			found = true
			break
		}
		if !found {
			t.Errorf("unexpected %s diagnostic %s:%d:%d: %s: %s", kind, file, d.Line, d.Col, d.Rule, d.Message)
		}
	}
	for i, e := range expects {
		if e.kind == kind && !used[i] {
			t.Errorf("%s:%d: expected %s %s diagnostic matching %q, got none", e.file, e.line, e.kind, e.rule, e.re)
		}
	}
}

func TestFixtureCorpus(t *testing.T) {
	res, err := Run(fixtureRoot, []string{"./..."}, nil)
	if err != nil {
		t.Fatal(err)
	}
	expects := loadExpectations(t)
	matchDiags(t, "want", res.Diags, expects)
	matchDiags(t, "wantsup", res.Suppressed, expects)
}

// TestAllowSuppressesPreciselyOne pins the suppression granularity: in
// the SuppressOne fixture two identical violations sit on consecutive
// lines under one directive — exactly the first is silenced, the second
// still fires.
func TestAllowSuppressesPreciselyOne(t *testing.T) {
	res, err := Run(fixtureRoot, []string{"./internal/tensor"}, []string{RuleDeterminism})
	if err != nil {
		t.Fatal(err)
	}
	count := func(ds []Diagnostic) int {
		n := 0
		for _, d := range ds {
			if strings.HasSuffix(filepath.ToSlash(d.File), "internal/tensor/det.go") &&
				strings.Contains(d.Message, "rand.Intn") {
				n++
			}
		}
		return n
	}
	if got := count(res.Suppressed); got != 1 {
		t.Errorf("suppressed rand.Intn findings = %d, want exactly 1", got)
	}
	if got := count(res.Diags); got != 2 {
		// one in Seed, one in SuppressOne (the line below the directive)
		t.Errorf("active rand.Intn findings = %d, want 2", got)
	}
}

// TestRuleSubset checks that -rules style filtering runs only the
// requested rules and does not report directives of disabled rules as
// stale.
func TestRuleSubset(t *testing.T) {
	res, err := Run(fixtureRoot, []string{"./..."}, []string{RuleDeterminism})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Diags {
		if d.Rule != RuleDeterminism && d.Rule != RuleAllow {
			t.Errorf("rule subset leaked a %s finding: %s", d.Rule, d)
		}
		if d.Rule == RuleAllow && strings.Contains(d.Message, "suppresses no") {
			// only malformed directives may surface; stale checks for
			// disabled rules must stay quiet
			if !strings.Contains(d.Message, "suppresses no determinism") {
				t.Errorf("stale-directive finding for a disabled rule: %s", d)
			}
		}
	}
	for _, d := range res.Suppressed {
		if d.Rule != RuleDeterminism {
			t.Errorf("rule subset produced a suppressed %s finding: %s", d.Rule, d)
		}
	}
}

// TestDiagnosticString pins the human output format relied on by CI log
// matchers and editors (file:line:col: rule: message).
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Rule: "wire-error", File: "x.go", Line: 3, Col: 7, Message: "boom"}
	if got, want := d.String(), "x.go:3:7: wire-error: boom"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// TestCleanPackageHasNoFindings guards against the analyzer inventing
// findings in sanctioned code: the fixture's tensor pool file and the
// invariant helper are clean by construction.
func TestCleanPackageHasNoFindings(t *testing.T) {
	res, err := Run(fixtureRoot, []string{"./internal/invariant"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Diags) != 0 || len(res.Suppressed) != 0 {
		t.Errorf("invariant package should be clean, got %v / %v", res.Diags, res.Suppressed)
	}
}
