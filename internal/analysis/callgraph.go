package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// callgraph.go builds a module-wide static call graph over the loaded,
// type-checked packages. The graph is a deliberate over-approximation —
// the hotalloc rule walks the closure of //fhdnn:hotpath roots, and a
// missed edge there means a missed allocation:
//
//   - Every function *reference* is an edge, not just call expressions:
//     taking a method value (h := b.Add) or passing a function as an
//     argument may run it later, so the referenced function joins the
//     caller's closure.
//   - A reference to an interface method fans out to the corresponding
//     concrete method of every module type that implements the
//     interface, for both value and pointer receivers.
//   - References inside function literals are attributed to the
//     enclosing declared function; the literal runs as part of it.
//
// Construction is deterministic: packages are visited in sorted import
// order, declarations and references in source order, and interface
// implementers in sorted type order. Nothing iterates a Go map whose
// order could leak into output.

// cgNode is one declared function or method with a body.
type cgNode struct {
	fn      *types.Func
	decl    *ast.FuncDecl
	pkg     *pkg
	callees []*types.Func // deduplicated, source order then dispatch order
}

// callGraph is the module call graph.
type callGraph struct {
	nodes map[*types.Func]*cgNode
	order []*types.Func // deterministic node order
}

// buildCallGraph constructs the graph over the given packages (callers
// are drawn from these; callees may resolve anywhere in the module).
func buildCallGraph(pkgs []*pkg) *callGraph {
	g := &callGraph{nodes: make(map[*types.Func]*cgNode)}

	// Module named types, for interface-dispatch expansion.
	var concrete []*types.Named
	for _, p := range pkgs {
		scope := p.Types.Scope()
		for _, name := range scope.Names() { // Names() is sorted
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			concrete = append(concrete, named)
		}
	}

	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &cgNode{fn: fn, decl: fd, pkg: p}
				g.nodes[fn] = node
				g.order = append(g.order, fn)
				collectCallees(node, p.Info, concrete)
			}
		}
	}
	return g
}

// collectCallees walks the function body in source order recording every
// referenced function, expanding interface methods to their module
// implementations.
func collectCallees(node *cgNode, info *types.Info, concrete []*types.Named) {
	seen := make(map[*types.Func]bool)
	add := func(fn *types.Func) {
		if fn != nil && !seen[fn] {
			seen[fn] = true
			node.callees = append(node.callees, fn)
		}
	}
	ast.Inspect(node.decl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		fn, ok := info.Uses[id].(*types.Func)
		if !ok {
			return true
		}
		add(fn)
		if isInterfaceMethod(fn) {
			for _, impl := range implementersOf(fn, concrete) {
				add(impl)
			}
		}
		return true
	})
}

// isInterfaceMethod reports whether fn is declared on an interface type.
func isInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// implementersOf resolves an interface method to the concrete methods of
// the module types that satisfy the interface (via value or pointer
// receiver).
func implementersOf(fn *types.Func, concrete []*types.Named) []*types.Func {
	sig := fn.Type().(*types.Signature)
	iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*types.Func
	for _, named := range concrete {
		var recv types.Type
		if types.Implements(named, iface) {
			recv = named
		} else if ptr := types.NewPointer(named); types.Implements(ptr, iface) {
			recv = ptr
		} else {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(recv, true, fn.Pkg(), fn.Name())
		if m, ok := obj.(*types.Func); ok {
			out = append(out, m)
		}
	}
	return out
}

// reach computes the closure of roots over the graph, returning for every
// reached function the first root (in root order) that reaches it.
// Plain BFS with a visited set: cycles (recursion, mutual recursion)
// terminate because each node is expanded once.
func (g *callGraph) reach(roots []*types.Func) map[*types.Func]*types.Func {
	from := make(map[*types.Func]*types.Func, len(roots))
	var queue []*types.Func
	for _, r := range roots {
		if _, ok := from[r]; ok {
			continue
		}
		from[r] = r
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		node, ok := g.nodes[fn]
		if !ok {
			continue // no body in the module (stdlib, assembly stub)
		}
		for _, callee := range node.callees {
			if _, ok := from[callee]; ok {
				continue
			}
			from[callee] = from[fn]
			queue = append(queue, callee)
		}
	}
	return from
}

// callees returns the recorded callees of fn (nil if fn has no body in
// the graph).
func (g *callGraph) callees(fn *types.Func) []*types.Func {
	if n, ok := g.nodes[fn]; ok {
		return n.callees
	}
	return nil
}

// funcDisplayName renders a function for diagnostics: "Name" for package
// functions, "(T).Name" / "(*T).Name" for methods.
func funcDisplayName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	t := sig.Recv().Type()
	star := ""
	if p, ok := t.(*types.Pointer); ok {
		star = "*"
		t = p.Elem()
	}
	name := t.String()
	if i := strings.LastIndex(name, "."); i >= 0 {
		name = name[i+1:]
	}
	return "(" + star + name + ")." + fn.Name()
}

// sortFuncsByPos orders functions by their declaration position, giving
// deterministic root ordering for closure attribution.
func sortFuncsByPos(fns []*types.Func) {
	sort.Slice(fns, func(i, j int) bool { return fns[i].Pos() < fns[j].Pos() })
}
