package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// callgraph.go builds a module-wide static call graph over the loaded,
// type-checked packages. The graph is a deliberate over-approximation —
// the hotalloc rule walks the closure of //fhdnn:hotpath roots, and a
// missed edge there means a missed allocation:
//
//   - Every function *reference* is an edge, not just call expressions:
//     taking a method value (h := b.Add) or passing a function as an
//     argument may run it later, so the referenced function joins the
//     caller's closure.
//   - A reference to an interface method fans out to the corresponding
//     concrete method of every module type that implements the
//     interface, for both value and pointer receivers.
//   - References inside function literals are attributed to the
//     enclosing declared function; the literal runs as part of it.
//
// Construction is deterministic: packages are visited in sorted import
// order, declarations and references in source order, and interface
// implementers in sorted type order. Nothing iterates a Go map whose
// order could leak into output.

// cgNode is one declared function or method with a body.
type cgNode struct {
	fn      *types.Func
	decl    *ast.FuncDecl
	pkg     *pkg
	callees []*types.Func // deduplicated, source order then dispatch order
	// spawns are the goroutine-launch sites in this function's body: the
	// go statements it executes, with the spawned function resolved when
	// it is a direct call of a module function (nil target for function
	// literals and calls through function values — the literal's body is
	// carried instead).
	spawns []spawnSite
}

// spawnSite is one go statement: the statement node for positions, plus
// either the resolved module function it launches or the function
// literal whose body runs on the new goroutine.
type spawnSite struct {
	stmt   *ast.GoStmt
	target *types.Func  // non-nil for `go s.run(...)` launching a module func
	lit    *ast.FuncLit // non-nil for `go func() {...}()`
}

// callGraph is the module call graph.
type callGraph struct {
	nodes map[*types.Func]*cgNode
	order []*types.Func // deterministic node order
	// concrete are the module's named non-interface types, kept for
	// consumers (the taint engine) that resolve interface dispatch after
	// construction.
	concrete []*types.Named
	// callers is the reverse edge map (deduplicated), built alongside the
	// forward edges so goroutine-context classification can ask "who can
	// run me" without a second walk.
	callers map[*types.Func][]*types.Func
}

// buildCallGraph constructs the graph over the given packages (callers
// are drawn from these; callees may resolve anywhere in the module).
func buildCallGraph(pkgs []*pkg) *callGraph {
	g := &callGraph{
		nodes:   make(map[*types.Func]*cgNode),
		callers: make(map[*types.Func][]*types.Func),
	}

	// Module named types, for interface-dispatch expansion.
	var concrete []*types.Named
	for _, p := range pkgs {
		scope := p.Types.Scope()
		for _, name := range scope.Names() { // Names() is sorted
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			concrete = append(concrete, named)
		}
	}
	g.concrete = concrete

	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &cgNode{fn: fn, decl: fd, pkg: p}
				g.nodes[fn] = node
				g.order = append(g.order, fn)
				collectCallees(node, p.Info, concrete)
				collectSpawns(node, p.Info)
			}
		}
	}
	for _, caller := range g.order {
		for _, callee := range g.nodes[caller].callees {
			g.callers[callee] = append(g.callers[callee], caller)
		}
	}
	return g
}

// collectSpawns records the go statements of one function body, resolving
// each to the module function it launches (direct calls) or the function
// literal that runs (closures). References inside the spawned literal are
// already edges of the enclosing node via collectCallees.
func collectSpawns(node *cgNode, info *types.Info) {
	ast.Inspect(node.decl.Body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		site := spawnSite{stmt: gs}
		if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
			site.lit = lit
		} else {
			site.target = calleeOf(info, gs.Call)
		}
		node.spawns = append(node.spawns, site)
		return true
	})
}

// goroutineOnly classifies every graph node: a function runs *only* on
// module-spawned goroutines when it is the direct target of a go
// statement, or when it has at least one referencer and every referencer
// is itself goroutine-only. A single reference from ordinary code — a
// plain call, a method value registered as an HTTP handler, an interface
// dispatch — demotes the function, because its body then also executes
// outside any goroutine lifecycle the analyzer reasons about.
//
// Computed as a greatest fixpoint: optimistically mark every referenced
// function plus the spawn targets, then repeatedly demote nodes with an
// unmarked referencer until stable. Cycles of mutually-recursive
// goroutine helpers stay marked, which is the desired answer.
func (g *callGraph) goroutineOnly() map[*types.Func]bool {
	spawned := make(map[*types.Func]bool)
	for _, fn := range g.order {
		for _, sp := range g.nodes[fn].spawns {
			if sp.target != nil {
				spawned[sp.target] = true
			}
		}
	}
	only := make(map[*types.Func]bool)
	for _, fn := range g.order {
		if spawned[fn] || len(g.callers[fn]) > 0 {
			only[fn] = true
		}
	}
	changed := true
	for changed {
		changed = false
		for _, fn := range g.order {
			if !only[fn] || spawned[fn] {
				continue
			}
			for _, caller := range g.callers[fn] {
				if !only[caller] {
					delete(only, fn)
					changed = true
					break
				}
			}
		}
	}
	return only
}

// collectCallees walks the function body in source order recording every
// referenced function, expanding interface methods to their module
// implementations.
func collectCallees(node *cgNode, info *types.Info, concrete []*types.Named) {
	seen := make(map[*types.Func]bool)
	add := func(fn *types.Func) {
		if fn != nil && !seen[fn] {
			seen[fn] = true
			node.callees = append(node.callees, fn)
		}
	}
	ast.Inspect(node.decl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		fn, ok := info.Uses[id].(*types.Func)
		if !ok {
			return true
		}
		add(fn)
		if isInterfaceMethod(fn) {
			for _, impl := range implementersOf(fn, concrete) {
				add(impl)
			}
		}
		return true
	})
}

// isInterfaceMethod reports whether fn is declared on an interface type.
func isInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// implementersOf resolves an interface method to the concrete methods of
// the module types that satisfy the interface (via value or pointer
// receiver).
func implementersOf(fn *types.Func, concrete []*types.Named) []*types.Func {
	sig := fn.Type().(*types.Signature)
	iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*types.Func
	for _, named := range concrete {
		var recv types.Type
		if types.Implements(named, iface) {
			recv = named
		} else if ptr := types.NewPointer(named); types.Implements(ptr, iface) {
			recv = ptr
		} else {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(recv, true, fn.Pkg(), fn.Name())
		if m, ok := obj.(*types.Func); ok {
			out = append(out, m)
		}
	}
	return out
}

// reach computes the closure of roots over the graph, returning for every
// reached function the first root (in root order) that reaches it.
// Plain BFS with a visited set: cycles (recursion, mutual recursion)
// terminate because each node is expanded once.
func (g *callGraph) reach(roots []*types.Func) map[*types.Func]*types.Func {
	from := make(map[*types.Func]*types.Func, len(roots))
	var queue []*types.Func
	for _, r := range roots {
		if _, ok := from[r]; ok {
			continue
		}
		from[r] = r
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		node, ok := g.nodes[fn]
		if !ok {
			continue // no body in the module (stdlib, assembly stub)
		}
		for _, callee := range node.callees {
			if _, ok := from[callee]; ok {
				continue
			}
			from[callee] = from[fn]
			queue = append(queue, callee)
		}
	}
	return from
}

// callees returns the recorded callees of fn (nil if fn has no body in
// the graph).
func (g *callGraph) callees(fn *types.Func) []*types.Func {
	if n, ok := g.nodes[fn]; ok {
		return n.callees
	}
	return nil
}

// funcDisplayName renders a function for diagnostics: "Name" for package
// functions, "(T).Name" / "(*T).Name" for methods.
func funcDisplayName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	t := sig.Recv().Type()
	star := ""
	if p, ok := t.(*types.Pointer); ok {
		star = "*"
		t = p.Elem()
	}
	name := t.String()
	if i := strings.LastIndex(name, "."); i >= 0 {
		name = name[i+1:]
	}
	return "(" + star + name + ")." + fn.Name()
}

// sortFuncsByPos orders functions by their declaration position, giving
// deterministic root ordering for closure attribution.
func sortFuncsByPos(fns []*types.Func) {
	sort.Slice(fns, func(i, j int) bool { return fns[i].Pos() < fns[j].Pos() })
}
