package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// dataflow.go implements forward may-analyses over the CFG in cfg.go. The
// main client-facing piece is reaching definitions: for every (block,
// atom) point, which right-hand sides may currently define each local
// variable. The aliasing rule uses this to chase a slice variable back to
// the expressions that produced it.
//
// Definitions are tracked per *types.Var. A definition is either a
// concrete RHS expression or opaque (nil): parameters, definitions
// through multi-value assignments, range keys and anything else we do not
// model become opaque, which downstream queries must treat as "could be
// anything rooted at this variable".

// defSet is the set of expressions that may define a variable; the nil
// key marks an opaque definition.
type defSet map[ast.Expr]bool

// defState maps each tracked variable to its possible definitions.
type defState map[*types.Var]defSet

func (s defState) clone() defState {
	out := make(defState, len(s))
	for v, ds := range s {
		cp := make(defSet, len(ds))
		for e := range ds {
			cp[e] = true
		}
		out[v] = cp
	}
	return out
}

// mergeInto unions src into dst, reporting whether dst changed.
func (dst defState) mergeInto(src defState) bool {
	changed := false
	for v, ds := range src {
		t, ok := dst[v]
		if !ok {
			t = make(defSet, len(ds))
			dst[v] = t
		}
		for e := range ds {
			if !t[e] {
				t[e] = true
				changed = true
			}
		}
	}
	return changed
}

// reachDefs holds the fixpoint solution of the reaching-definitions
// analysis for one function.
type reachDefs struct {
	g    *funcCFG
	info *types.Info
	in   []defState // per block, state on entry
}

// reachingDefs runs the analysis over a function body. Parameters and
// named results start as opaque definitions at the entry block.
func reachingDefs(g *funcCFG, info *types.Info, ftype *ast.FuncType, recv *ast.FieldList) *reachDefs {
	rd := &reachDefs{g: g, info: info, in: make([]defState, len(g.blocks))}
	for i := range rd.in {
		rd.in[i] = make(defState)
	}

	entry := rd.in[g.entry.idx]
	seed := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if v, ok := info.Defs[name].(*types.Var); ok {
					entry[v] = defSet{nil: true}
				}
			}
		}
	}
	seed(recv)
	seed(ftype.Params)
	seed(ftype.Results)

	// Worklist fixpoint: propagate transfer(in[b]) into every successor.
	work := make([]*block, 0, len(g.blocks))
	inWork := make([]bool, len(g.blocks))
	push := func(b *block) {
		if !inWork[b.idx] {
			inWork[b.idx] = true
			work = append(work, b)
		}
	}
	for _, b := range g.blocks {
		push(b)
	}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[b.idx] = false
		out := rd.in[b.idx].clone()
		for _, atom := range b.atoms {
			rd.transfer(out, atom)
		}
		for _, s := range b.succs {
			if rd.in[s.idx].mergeInto(out) {
				push(s)
			}
		}
	}
	return rd
}

// at returns the definition state holding immediately before atom
// atomIdx of block b executes.
func (rd *reachDefs) at(b *block, atomIdx int) defState {
	st := rd.in[b.idx].clone()
	for i := 0; i < atomIdx && i < len(b.atoms); i++ {
		rd.transfer(st, b.atoms[i])
	}
	return st
}

// transfer applies one atom's effect to st in place.
func (rd *reachDefs) transfer(st defState, atom ast.Node) {
	switch n := atom.(type) {
	case *ast.AssignStmt:
		rd.assign(st, n)
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				v, ok := rd.info.Defs[name].(*types.Var)
				if !ok {
					continue
				}
				if len(vs.Values) == len(vs.Names) {
					st[v] = defSet{vs.Values[i]: true}
				} else {
					// zero value or multi-value initializer: opaque
					st[v] = defSet{nil: true}
				}
			}
		}
	case *ast.RangeStmt:
		// The value variable of a range over a slice/array derives from
		// the ranged container; keys and other forms are opaque.
		if id, ok := n.Key.(*ast.Ident); ok {
			if v := rd.lhsVar(id); v != nil {
				st[v] = defSet{nil: true}
			}
		}
		if id, ok := n.Value.(*ast.Ident); ok {
			if v := rd.lhsVar(id); v != nil {
				switch rd.info.TypeOf(n.X).Underlying().(type) {
				case *types.Slice, *types.Array, *types.Pointer:
					st[v] = defSet{n.X: true}
				default:
					st[v] = defSet{nil: true}
				}
			}
		}
	}
}

// assign handles =, := and the compound assignment operators.
func (rd *reachDefs) assign(st defState, n *ast.AssignStmt) {
	if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
		// Compound assignment (+=, |=, ...) keeps the variable rooted at
		// itself; treat as opaque redefinition of the same variable.
		if id, ok := n.Lhs[0].(*ast.Ident); ok {
			if v := rd.lhsVar(id); v != nil {
				st[v] = defSet{nil: true}
			}
		}
		return
	}
	if len(n.Lhs) == len(n.Rhs) {
		for i, lhs := range n.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue // writes through fields/indices are not tracked
			}
			if v := rd.lhsVar(id); v != nil {
				st[v] = defSet{n.Rhs[i]: true}
			}
		}
		return
	}
	// x, y := f(): every target becomes opaque.
	for _, lhs := range n.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			continue
		}
		if v := rd.lhsVar(id); v != nil {
			st[v] = defSet{nil: true}
		}
	}
}

// lhsVar resolves an assignment target identifier to its variable object,
// covering both fresh definitions (:=) and plain assignments.
func (rd *reachDefs) lhsVar(id *ast.Ident) *types.Var {
	if id.Name == "_" {
		return nil
	}
	if v, ok := rd.info.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := rd.info.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

// --- Channel definitions -------------------------------------------------
//
// The concurrency rules (goleak, chandisc) reason about channels by the
// *variable object* that holds them: a local `done := make(chan ...)`, a
// struct field `s.stopAll`, a parameter. The types.Var is the def: two
// expressions denote "the same channel" for these rules exactly when they
// resolve to the same object. Channels that travel through other values —
// a field of a message received from another channel — deliberately do
// NOT unify with their origin: whether the peer holding the origin is
// still alive is the unprovable part, and the rules treat such channels
// as having no in-scope counterparty.

// chanVarOf resolves a channel-typed expression to its defining variable
// object: the *types.Var of a plain identifier (local, parameter,
// package-level) or of the field in a selector chain. Returns nil for
// anything else (map/slice elements, call results, literals).
func chanVarOf(info *types.Info, e ast.Expr) *types.Var {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := info.Uses[x].(*types.Var); ok {
			return v
		}
		if v, ok := info.Defs[x].(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok {
			if v, ok := sel.Obj().(*types.Var); ok && v.IsField() {
				return v
			}
		}
		if v, ok := info.Uses[x.Sel].(*types.Var); ok {
			return v
		}
	}
	return nil
}

// chanInventory is the module-wide channel ledger: which channel defs are
// ever closed, and which are ever send targets. A def that is closed
// somewhere and never sent to is a quit channel — the only way it can
// release a receiver is the broadcast close, which is exactly the
// shutdown-signal shape (stopAll, kill, ctx.Done).
type chanInventory struct {
	closed map[*types.Var][]token.Pos // close sites per def
	sent   map[*types.Var]bool        // defs that appear as send targets
}

// buildChanInventory scans every loaded package once.
func buildChanInventory(pkgs []*pkg) *chanInventory {
	inv := &chanInventory{
		closed: make(map[*types.Var][]token.Pos),
		sent:   make(map[*types.Var]bool),
	}
	for _, p := range pkgs {
		info := p.Info
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.SendStmt:
					if v := chanVarOf(info, n.Chan); v != nil {
						inv.sent[v] = true
					}
				case *ast.CallExpr:
					if isBuiltin(info, n, "close") && len(n.Args) == 1 {
						if v := chanVarOf(info, n.Args[0]); v != nil {
							inv.closed[v] = append(inv.closed[v], n.Pos())
						}
					}
				}
				return true
			})
		}
	}
	return inv
}

// isQuit reports whether the def is a close-only broadcast channel.
func (inv *chanInventory) isQuit(v *types.Var) bool {
	return v != nil && len(inv.closed[v]) > 0 && !inv.sent[v]
}

// isClosed reports whether the def is closed anywhere in the module.
func (inv *chanInventory) isClosed(v *types.Var) bool {
	return v != nil && len(inv.closed[v]) > 0
}

// eachAtom invokes fn for every atom in the graph along with the state
// holding immediately before it executes. Blocks and atoms are visited in
// construction order, so diagnostics derived from this walk are
// deterministic.
func (rd *reachDefs) eachAtom(fn func(b *block, i int, st defState)) {
	for _, b := range rd.g.blocks {
		st := rd.in[b.idx].clone()
		for i, atom := range b.atoms {
			fn(b, i, st)
			rd.transfer(st, atom)
		}
	}
}
