package analysis

import (
	"go/ast"
	"strconv"
)

// float64: the blocked kernels guarantee bit-identical results across
// worker counts because every element is produced by one float32
// operation chain with forced float32(a*b) rounding. A float64
// intermediate smuggled into that chain — `sum += float64(a[i]) * ...` —
// rounds differently, so the parallel and serial paths (or two builds of
// the same kernel) stop agreeing bit for bit. The rule flags every
// conversion of a float32 value to float64 inside internal/tensor;
// deliberate high-precision reductions (Sum, Norm — documented API
// behavior, outside the kernel bit-equality contract) carry
// //fhdnn:allow annotations.
const kernelPkg = "internal/tensor"

func checkFloat64(l *loader, p *pkg) []Diagnostic {
	if p.Rel != kernelPkg {
		return nil
	}
	var out []Diagnostic
	seen := make(map[string]bool) // dedupe per line: `float64(v)*float64(v)` is one finding
	inspectAll(p, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 || !isConversion(p.Info, call) {
			return true
		}
		if !isFloat64(p.Info.TypeOf(call.Fun)) || !isFloat32(p.Info.TypeOf(call.Args[0])) {
			return true
		}
		d := diag(l.fset, RuleFloat64, call,
			"float64 conversion of a float32 value in a kernel package; a float64 intermediate breaks the serial/parallel bit-equality contract")
		key := d.File + ":" + strconv.Itoa(d.Line)
		if !seen[key] {
			seen[key] = true
			out = append(out, d)
		}
		return true
	})
	return out
}
