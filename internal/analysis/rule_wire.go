package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// wire-error: a dropped error on the serialization/HTTP path is how a
// lossy channel turns into silent corruption — an unchecked w.Write
// truncates a model broadcast, an unchecked Close loses the write-back
// of a checkpoint, an unchecked envelope encode ships garbage. The rule
// has two tiers:
//
//   - inside the wire packages themselves (internal/compress,
//     internal/fedcore, internal/flnet, internal/link) every call whose
//     trailing result is an error must consume it;
//   - everywhere else, calls into the serialization-relevant packages
//     (net/http, encoding/json, encoding/binary, io, os, and the
//     module's own wire + hdc serialization packages) must consume it.
//
// Only invisible discards are flagged: a call used as a bare statement,
// or discarded behind defer/go. An explicit `_ =` (or `, _`) assignment
// is a visible, reviewable acknowledgement and passes.
var wirePkgs = []string{"internal/compress", "internal/fedcore", "internal/flnet", "internal/link"}

// wireCalleePkgs are the callee packages checked from *any* package.
// Module-local entries are stored relative and matched against the
// loader's module path.
var wireCalleePkgs = map[string]bool{
	"net/http":        true,
	"encoding/json":   true,
	"encoding/binary": true,
	"io":              true,
	"os":              true,
}

var wireCalleeRelPkgs = []string{
	"internal/compress", "internal/fedcore", "internal/flnet", "internal/link", "internal/hdc",
}

func checkWireErrors(l *loader, p *pkg) []Diagnostic {
	inWirePkg := relIn(p, wirePkgs...)
	var out []Diagnostic
	flag := func(call *ast.CallExpr, how string) {
		if !dropsTrailingError(p.Info, call) || neverFails(p.Info, call) {
			return
		}
		// fmt's stdout print family belongs to the print-panic rule; a
		// second wire-error finding on the same call would be noise.
		if path := calleePkgPath(p.Info, call); path == "fmt" {
			if fn := calleeOf(p.Info, call); fn != nil && strings.HasPrefix(fn.Name(), "Print") {
				return
			}
		}
		if !inWirePkg && !wireCallee(l, p, call) {
			return
		}
		out = append(out, diag(l.fset, RuleWireError, call,
			"%serror from %s is dropped on a wire path; handle it or discard explicitly with _ =",
			how, calleeName(call)))
	}
	inspectAll(p, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				flag(call, "")
			}
		case *ast.DeferStmt:
			flag(n.Call, "deferred ")
		case *ast.GoStmt:
			flag(n.Call, "goroutine-spawned ")
		}
		return true
	})
	return out
}

// wireCallee reports whether the call targets one of the packages whose
// errors are load-bearing on the wire path.
func wireCallee(l *loader, p *pkg, call *ast.CallExpr) bool {
	path := calleePkgPath(p.Info, call)
	if path == "" {
		return false
	}
	if wireCalleePkgs[path] {
		return true
	}
	for _, rel := range wireCalleeRelPkgs {
		if path == l.module+"/"+rel {
			return true
		}
	}
	return false
}

// neverFails exempts the handful of stdlib writers documented to always
// return a nil error (bytes.Buffer, strings.Builder): checking those is
// pure noise and the community idiom is to not.
func neverFails(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeOf(info, call)
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type().String()
	return strings.HasSuffix(recv, "bytes.Buffer") || strings.HasSuffix(recv, "strings.Builder")
}
