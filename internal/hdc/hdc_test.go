package hdc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fhdnn/internal/tensor"
)

func TestEncoderRowsUnitNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	e := NewEncoder(rng, 50, 10)
	for i := 0; i < e.D; i++ {
		row := e.Phi.Data()[i*e.N : (i+1)*e.N]
		if n := Norm(row); math.Abs(n-1) > 1e-5 {
			t.Fatalf("row %d norm %v, want 1", i, n)
		}
	}
}

func TestEncodeProducesBipolar(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	e := NewEncoder(rng, 100, 8)
	z := make([]float32, 8)
	for i := range z {
		z[i] = float32(rng.NormFloat64())
	}
	h := e.Encode(z)
	if len(h) != 100 {
		t.Fatalf("hypervector length %d", len(h))
	}
	for i, v := range h {
		if v != 1 && v != -1 {
			t.Fatalf("h[%d] = %v, want +-1", i, v)
		}
	}
}

func TestEncodeDeterministicFromSeed(t *testing.T) {
	z := []float32{1, -2, 3}
	e1 := NewEncoder(rand.New(rand.NewSource(7)), 64, 3)
	e2 := NewEncoder(rand.New(rand.NewSource(7)), 64, 3)
	h1, h2 := e1.Encode(z), e2.Encode(z)
	for i := range h1 {
		if h1[i] != h2[i] {
			t.Fatal("same seed must give identical encoders")
		}
	}
}

func TestEncodeWrongLengthPanics(t *testing.T) {
	e := NewEncoder(rand.New(rand.NewSource(3)), 16, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.Encode(make([]float32, 5))
}

// Property: for the non-binarized encoder, Decode approximately inverts
// Encode when d >> n (random projections are near-isometries).
func TestDecodeApproximatelyInvertsEncode(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(8)
		d := 4000
		e := NewEncoder(rng, d, n)
		e.Binarize = false
		x := make([]float32, n)
		for i := range x {
			x[i] = float32(rng.NormFloat64())
		}
		h := e.Encode(x)
		got := e.Decode(h)
		var errSq, refSq float64
		for i := range x {
			d := float64(got[i] - x[i])
			errSq += d * d
			refSq += float64(x[i]) * float64(x[i])
		}
		if refSq == 0 {
			return true
		}
		return errSq/refSq < 0.05 // < 5% relative squared error
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// The information-dispersal claim of Sec. 3.5.1: noise added in HD space is
// attenuated by ~d/n when decoded back to feature space.
func TestDecodeSuppressesHDNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n, d := 16, 8192
	e := NewEncoder(rng, d, n)
	e.Binarize = false
	x := make([]float32, n)
	for i := range x {
		x[i] = float32(rng.NormFloat64())
	}
	h := e.Encode(x)
	sigma := 1.0
	for i := range h {
		h[i] += float32(rng.NormFloat64() * sigma)
	}
	got := e.Decode(h)
	var mse float64
	for i := range x {
		diff := float64(got[i] - x[i])
		mse += diff * diff
	}
	mse /= float64(n)
	// Decoding averages d independent noise samples: per-coordinate error
	// variance ~ sigma^2 * n / d (up to constants). With n/d = 1/512 the
	// reconstruction error must be far below the injected noise power.
	if mse > 0.05*sigma*sigma {
		t.Fatalf("decoded MSE %v, want << %v (noise suppressed)", mse, sigma*sigma)
	}
}

func TestCosineBasics(t *testing.T) {
	a := []float32{1, 0}
	b := []float32{0, 1}
	if c := Cosine(a, a); math.Abs(c-1) > 1e-9 {
		t.Fatalf("cos(a,a) = %v", c)
	}
	if c := Cosine(a, b); math.Abs(c) > 1e-9 {
		t.Fatalf("cos(a,b) = %v", c)
	}
	if c := Cosine(a, []float32{0, 0}); c != 0 {
		t.Fatalf("cos with zero vector = %v", c)
	}
}

func TestRandomBipolarQuasiOrthogonal(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d := 10000
	a := RandomBipolar(rng, d)
	b := RandomBipolar(rng, d)
	if c := math.Abs(Cosine(a, b)); c > 0.05 {
		t.Fatalf("random hypervectors should be quasi-orthogonal, cos = %v", c)
	}
}

func TestBindSelfInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := RandomBipolar(rng, 256)
	b := RandomBipolar(rng, 256)
	ab := Bind(a, b)
	back := Bind(ab, b)
	for i := range a {
		if back[i] != a[i] {
			t.Fatal("bind must be self-inverse for bipolar vectors")
		}
	}
	// bound vector is dissimilar to both factors
	if math.Abs(Cosine(ab, a)) > 0.25 {
		t.Fatalf("bound vector too similar to factor: %v", Cosine(ab, a))
	}
}

func TestPermuteInvertible(t *testing.T) {
	v := []float32{1, 2, 3, 4, 5}
	p := Permute(v, 2)
	want := []float32{4, 5, 1, 2, 3}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("Permute = %v", p)
		}
	}
	back := Permute(p, -2)
	for i := range v {
		if back[i] != v[i] {
			t.Fatal("Permute(-k) must invert Permute(k)")
		}
	}
	if got := Permute(v, 7); got[0] != want[0] {
		t.Fatal("Permute must wrap modulo length")
	}
	if Permute(nil, 3) != nil {
		t.Fatal("Permute(nil) should be nil")
	}
}

func TestHammingDistance(t *testing.T) {
	a := []float32{1, 1, -1, -1}
	b := []float32{1, -1, -1, 1}
	if d := HammingDistance(a, b); d != 2 {
		t.Fatalf("Hamming = %d", d)
	}
}

func TestSignBinarizes(t *testing.T) {
	v := []float32{0.5, -0.1, 0}
	Sign(v)
	if v[0] != 1 || v[1] != -1 || v[2] != 1 {
		t.Fatalf("Sign = %v", v)
	}
}

// clusterData builds k Gaussian clusters in feature space with well
// separated means, returning features and labels.
func clusterData(rng *rand.Rand, k, perClass, n int, noise float64) (*tensor.Tensor, []int) {
	means := tensor.Randn(rng, 3.0, k, n)
	x := tensor.New(k*perClass, n)
	labels := make([]int, k*perClass)
	for c := 0; c < k; c++ {
		for s := 0; s < perClass; s++ {
			idx := c*perClass + s
			labels[idx] = c
			for j := 0; j < n; j++ {
				x.Data()[idx*n+j] = means.At(c, j) + float32(rng.NormFloat64()*noise)
			}
		}
	}
	return x, labels
}

func TestModelOneShotLearnsClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x, labels := clusterData(rng, 4, 30, 16, 0.5)
	e := NewEncoder(rng, 2048, 16)
	enc := e.EncodeBatch(x)
	m := NewModel(4, 2048)
	m.OneShotTrain(enc, labels)
	if acc := m.Accuracy(enc, labels); acc < 0.95 {
		t.Fatalf("one-shot accuracy %v, want >= 0.95 on separable clusters", acc)
	}
}

func TestRefineImprovesOnHardData(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x, labels := clusterData(rng, 6, 40, 12, 2.2) // overlapping clusters
	e := NewEncoder(rng, 1024, 12)
	enc := e.EncodeBatch(x)
	m := NewModel(6, 1024)
	m.OneShotTrain(enc, labels)
	accBefore := m.Accuracy(enc, labels)
	for epoch := 0; epoch < 10; epoch++ {
		m.RefineEpoch(enc, labels)
	}
	accAfter := m.Accuracy(enc, labels)
	if accAfter < accBefore {
		t.Fatalf("refinement hurt training accuracy: %v -> %v", accBefore, accAfter)
	}
	if accAfter < 0.8 {
		t.Fatalf("refined accuracy %v too low", accAfter)
	}
}

func TestRefineAdaptiveImprovesOnHardData(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	x, labels := clusterData(rng, 6, 40, 12, 2.2)
	e := NewEncoder(rng, 1024, 12)
	enc := e.EncodeBatch(x)

	m := NewModel(6, 1024)
	m.OneShotTrain(enc, labels)
	before := m.Accuracy(enc, labels)
	for epoch := 0; epoch < 10; epoch++ {
		if m.RefineEpochAdaptive(enc, labels, 1.0) == 0 {
			break
		}
	}
	after := m.Accuracy(enc, labels)
	if after < before {
		t.Fatalf("adaptive refinement hurt: %v -> %v", before, after)
	}
	if after < 0.8 {
		t.Fatalf("adaptive refined accuracy %v too low", after)
	}
}

func TestRefineAdaptiveNoUpdateWhenCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	x, labels := clusterData(rng, 3, 10, 8, 0.2) // trivially separable
	e := NewEncoder(rng, 512, 8)
	enc := e.EncodeBatch(x)
	m := NewModel(3, 512)
	m.OneShotTrain(enc, labels)
	if m.Accuracy(enc, labels) < 1 {
		t.Skip("data not trivially separable with this seed")
	}
	snapshot := m.Clone()
	if wrong := m.RefineEpochAdaptive(enc, labels, 1.0); wrong != 0 {
		t.Fatalf("unexpected mispredictions: %d", wrong)
	}
	if !m.Prototypes.Equal(snapshot.Prototypes, 0) {
		t.Fatal("adaptive refinement must not move prototypes when everything is correct")
	}
}

func TestRefineEpochCountsMispredictions(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	x, labels := clusterData(rng, 3, 20, 8, 0.3)
	e := NewEncoder(rng, 1024, 8)
	enc := e.EncodeBatch(x)
	m := NewModel(3, 1024)
	m.OneShotTrain(enc, labels)
	w1 := m.RefineEpoch(enc, labels)
	if w1 < 0 || w1 > 60 {
		t.Fatalf("implausible misprediction count %d", w1)
	}
}

func TestFederatedBundlingEquivalence(t *testing.T) {
	// Two clients bundling disjoint data then summing models must equal one
	// client bundling all data (linearity of one-shot learning).
	rng := rand.New(rand.NewSource(11))
	x, labels := clusterData(rng, 3, 20, 8, 0.5)
	e := NewEncoder(rng, 512, 8)
	enc := e.EncodeBatch(x)

	whole := NewModel(3, 512)
	whole.OneShotTrain(enc, labels)

	half := 30
	c1 := NewModel(3, 512)
	c2 := NewModel(3, 512)
	enc1 := tensor.FromSlice(enc.Data()[:half*512], half, 512)
	enc2 := tensor.FromSlice(enc.Data()[half*512:], enc.Dim(0)-half, 512)
	c1.OneShotTrain(enc1, labels[:half])
	c2.OneShotTrain(enc2, labels[half:])
	c1.Add(c2)

	if !c1.Prototypes.Equal(whole.Prototypes, 1e-3) {
		t.Fatal("federated bundling must equal centralized bundling for one-shot training")
	}
}

func TestModelFlatRoundTrip(t *testing.T) {
	m := NewModel(2, 4)
	flat := []float32{1, 2, 3, 4, 5, 6, 7, 8}
	m.SetFlat(flat)
	got := m.Flat()
	for i := range flat {
		if got[i] != flat[i] {
			t.Fatal("Flat/SetFlat mismatch")
		}
	}
	if m.Class(1)[0] != 5 {
		t.Fatalf("Class(1) = %v", m.Class(1))
	}
	if m.NumParams() != 8 || m.UpdateSizeBytes(4) != 32 {
		t.Fatal("size accounting wrong")
	}
}

func TestModelCloneIndependent(t *testing.T) {
	m := NewModel(1, 2)
	m.SetFlat([]float32{1, 2})
	c := m.Clone()
	c.Flat()[0] = 99
	if m.Flat()[0] != 1 {
		t.Fatal("Clone must deep-copy")
	}
}

func TestModelAddShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewModel(2, 4).Add(NewModel(2, 5))
}

func TestQuantizerMaxCodeHitsRange(t *testing.T) {
	q := NewQuantizer(8)
	c := []float32{-3, 1, 2, 0.5}
	codes, gain := q.Quantize(c)
	maxAbs := int32(0)
	for _, v := range codes {
		if v < 0 {
			v = -v
		}
		if v > maxAbs {
			maxAbs = v
		}
	}
	if maxAbs != q.MaxMag() {
		t.Fatalf("max |code| = %d, want %d", maxAbs, q.MaxMag())
	}
	if gain <= 0 {
		t.Fatalf("gain = %v", gain)
	}
}

func TestQuantizerZeroVector(t *testing.T) {
	q := NewQuantizer(16)
	codes, gain := q.Quantize([]float32{0, 0, 0})
	if gain != 1 {
		t.Fatalf("zero-vector gain = %v, want 1", gain)
	}
	for _, v := range codes {
		if v != 0 {
			t.Fatal("zero vector must quantize to zeros")
		}
	}
}

// Property: round-trip error is bounded by the quantization step 1/gain.
func TestQuantizerRoundTripErrorBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := NewQuantizer(8 + rng.Intn(24))
		c := make([]float32, 1+rng.Intn(64))
		for i := range c {
			c[i] = float32(rng.NormFloat64() * 100)
		}
		codes, gain := q.Quantize(c)
		back := q.Dequantize(codes, gain)
		step := 1 / gain
		for i := range c {
			// allow the quantization step plus float32 representation error
			tol := step*1.01 + math.Abs(float64(c[i]))*1e-6
			if math.Abs(float64(back[i]-c[i])) > tol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizerBadBitsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewQuantizer(1)
}

func TestPartialDimensionsRetainSimilarity(t *testing.T) {
	// Fig. 5's premise: zeroing a fraction p of dimensions retains ~(1-p)
	// of the dot product, because information is spread uniformly.
	rng := rand.New(rand.NewSource(12))
	d := 8192
	e := NewEncoder(rng, d, 32)
	z := make([]float32, 32)
	for i := range z {
		z[i] = float32(rng.NormFloat64())
	}
	h := e.Encode(z)
	proto := make([]float32, d)
	copy(proto, h)
	full := Dot(proto, h)
	for _, frac := range []float64{0.2, 0.5, 0.8} {
		hv := make([]float32, d)
		copy(hv, h)
		perm := rng.Perm(d)
		for i := 0; i < int(frac*float64(d)); i++ {
			hv[perm[i]] = 0
		}
		got := Dot(proto, hv) / full
		if math.Abs(got-(1-frac)) > 0.05 {
			t.Fatalf("removing %.0f%% of dims retained %.3f of similarity, want ~%.2f",
				frac*100, got, 1-frac)
		}
	}
}
