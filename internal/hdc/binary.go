package hdc

import (
	"fmt"
	"math/bits"
)

// Binary (bit-packed) hypervectors. Bipolar +-1 vectors are isomorphic to
// bit vectors (+1 -> 1, -1 -> 0); packing 64 dimensions per word shrinks
// memory and bandwidth 32x versus float32 and turns similarity into
// XOR + popcount — the representation HDC accelerators and the paper's
// "low precision, highly parallel" framing actually use on devices.

// BinaryVector is a bit-packed bipolar hypervector of D dimensions.
type BinaryVector struct {
	D     int
	Words []uint64
}

// NewBinaryVector allocates an all -1 (all zero bits) vector.
func NewBinaryVector(d int) *BinaryVector {
	if d <= 0 {
		panic(fmt.Sprintf("hdc: invalid binary vector dimension %d", d))
	}
	return &BinaryVector{D: d, Words: make([]uint64, (d+63)/64)}
}

// Pack converts a bipolar (or real — the sign is taken) vector.
func Pack(v []float32) *BinaryVector {
	b := NewBinaryVector(len(v))
	for i, x := range v {
		if x >= 0 {
			b.Words[i/64] |= 1 << (i % 64)
		}
	}
	return b
}

// Unpack expands to a bipolar float32 vector.
func (b *BinaryVector) Unpack() []float32 {
	out := make([]float32, b.D)
	for i := range out {
		if b.Bit(i) {
			out[i] = 1
		} else {
			out[i] = -1
		}
	}
	return out
}

// Bit reports whether dimension i is +1.
func (b *BinaryVector) Bit(i int) bool {
	return b.Words[i/64]&(1<<(i%64)) != 0
}

// Hamming returns the number of dimensions where b and o differ, via
// XOR + popcount.
func (b *BinaryVector) Hamming(o *BinaryVector) int {
	if b.D != o.D {
		panic("hdc: Hamming dimension mismatch")
	}
	d := 0
	for i, w := range b.Words {
		x := w ^ o.Words[i]
		if i == len(b.Words)-1 && b.D%64 != 0 {
			x &= (1 << (b.D % 64)) - 1 // mask padding bits
		}
		d += bits.OnesCount64(x)
	}
	return d
}

// CosineBinary returns the cosine similarity of the underlying bipolar
// vectors: 1 - 2*hamming/d.
func (b *BinaryVector) CosineBinary(o *BinaryVector) float64 {
	return 1 - 2*float64(b.Hamming(o))/float64(b.D)
}

// XorBind binds two binary hypervectors (elementwise product of the
// bipolar forms is XNOR of the bit forms; we store the complement-free
// equivalent XOR which is also self-inverse and similarity-preserving).
func (b *BinaryVector) XorBind(o *BinaryVector) *BinaryVector {
	if b.D != o.D {
		panic("hdc: XorBind dimension mismatch")
	}
	out := NewBinaryVector(b.D)
	for i := range out.Words {
		out.Words[i] = b.Words[i] ^ o.Words[i]
	}
	return out
}

// MajorityBundle bundles binary hypervectors by per-dimension majority
// vote (ties broken toward +1), the binary analogue of summation.
func MajorityBundle(vs ...*BinaryVector) *BinaryVector {
	if len(vs) == 0 {
		panic("hdc: MajorityBundle of nothing")
	}
	d := vs[0].D
	counts := make([]int, d)
	for _, v := range vs {
		if v.D != d {
			panic("hdc: MajorityBundle dimension mismatch")
		}
		for i := 0; i < d; i++ {
			if v.Bit(i) {
				counts[i]++
			}
		}
	}
	out := NewBinaryVector(d)
	half2 := len(vs) // counts are compared as 2*count >= len
	for i, c := range counts {
		if 2*c >= half2 {
			out.Words[i/64] |= 1 << (i % 64)
		}
	}
	return out
}

// SizeBytes returns the packed storage size.
func (b *BinaryVector) SizeBytes() int { return 8 * len(b.Words) }

// BinaryModel is a bit-packed HD classifier: the float prototypes of a
// trained Model are binarized once, after which inference needs only
// XOR + popcount. Accuracy typically drops by a point or two versus the
// integer prototypes — the classic HDC accuracy/efficiency trade.
type BinaryModel struct {
	K, D       int
	Prototypes []*BinaryVector
}

// Binarize converts a trained Model.
func (m *Model) Binarize() *BinaryModel {
	bm := &BinaryModel{K: m.K, D: m.D, Prototypes: make([]*BinaryVector, m.K)}
	for k := 0; k < m.K; k++ {
		bm.Prototypes[k] = Pack(m.Class(k))
	}
	return bm
}

// Predict classifies a packed query by minimum Hamming distance.
func (bm *BinaryModel) Predict(h *BinaryVector) (class int, hamming int) {
	best, bi := int(^uint(0)>>1), 0
	for k, p := range bm.Prototypes {
		if d := p.Hamming(h); d < best {
			best, bi = d, k
		}
	}
	return bi, best
}

// Accuracy classifies packed queries against labels.
func (bm *BinaryModel) Accuracy(queries []*BinaryVector, labels []int) float64 {
	if len(queries) == 0 {
		return 0
	}
	correct := 0
	for i, q := range queries {
		if pred, _ := bm.Predict(q); pred == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(queries))
}

// SizeBytes returns the packed model size — the number a bandwidth- or
// flash-constrained deployment cares about.
func (bm *BinaryModel) SizeBytes() int {
	n := 0
	for _, p := range bm.Prototypes {
		n += p.SizeBytes()
	}
	return n
}
