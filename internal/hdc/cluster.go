package hdc

import (
	"fmt"
	"math/rand"

	"fhdnn/internal/tensor"
)

// Unsupervised HD clustering: spherical k-means over hypervectors, with
// cosine similarity as the affinity — the HDC-native analogue of k-means
// that libraries like torchhd ship alongside the classifier. On AIoT
// devices this discovers structure in unlabeled sensor data using the same
// cheap bundling arithmetic as the classifier, and its centroids can seed
// class prototypes when a few labels arrive later.

// ClusterResult holds the output of KMeans.
type ClusterResult struct {
	// Centroids is [k, d]; rows are unit-normalized bundle directions.
	Centroids *tensor.Tensor
	// Assign maps each input row to its centroid.
	Assign []int
	// Iterations actually performed.
	Iterations int
	// Inertia is the sum over points of (1 - cosine to own centroid);
	// lower is tighter.
	Inertia float64
}

// KMeans clusters the rows of encoded ([n, d] hypervectors) into k groups
// by spherical k-means: centroids are bundles of their members, assignment
// is by maximum cosine similarity. Initialization picks k distinct rows
// (k-means++-style greedy spread). Deterministic for a given rng.
func KMeans(encoded *tensor.Tensor, k, maxIter int, rng *rand.Rand) *ClusterResult {
	n, d := encoded.Dim(0), encoded.Dim(1)
	if k <= 0 || k > n {
		panic(fmt.Sprintf("hdc: cannot make %d clusters from %d points", k, n))
	}
	if maxIter <= 0 {
		maxIter = 50
	}
	row := func(i int) []float32 { return encoded.Data()[i*d : (i+1)*d] }

	// greedy spread init: first centroid random, each next maximizes the
	// minimum angular distance to chosen ones
	chosen := []int{rng.Intn(n)}
	for len(chosen) < k {
		best, bi := -1.0, -1
		for i := 0; i < n; i++ {
			minDist := 2.0
			for _, c := range chosen {
				if dist := 1 - Cosine(row(i), row(c)); dist < minDist {
					minDist = dist
				}
			}
			if minDist > best {
				best, bi = minDist, i
			}
		}
		chosen = append(chosen, bi)
	}
	centroids := tensor.New(k, d)
	for ci, i := range chosen {
		copy(centroids.Data()[ci*d:(ci+1)*d], row(i))
	}

	assign := make([]int, n)
	res := &ClusterResult{Centroids: centroids, Assign: assign}
	for iter := 1; iter <= maxIter; iter++ {
		res.Iterations = iter
		changed := false
		for i := 0; i < n; i++ {
			best, bi := -2.0, 0
			for c := 0; c < k; c++ {
				if sim := Cosine(centroids.Data()[c*d:(c+1)*d], row(i)); sim > best {
					best, bi = sim, c
				}
			}
			if assign[i] != bi {
				assign[i] = bi
				changed = true
			}
		}
		if !changed && iter > 1 {
			break
		}
		// re-bundle centroids from members
		centroids.Zero()
		counts := make([]int, k)
		for i := 0; i < n; i++ {
			c := assign[i]
			counts[c]++
			cRow := centroids.Data()[c*d : (c+1)*d]
			for j, v := range row(i) {
				cRow[j] += v
			}
		}
		// re-seed empty clusters with the point farthest from its centroid
		for c := 0; c < k; c++ {
			if counts[c] > 0 {
				continue
			}
			worst, wi := 2.0, 0
			for i := 0; i < n; i++ {
				a := assign[i]
				sim := Cosine(centroids.Data()[a*d:(a+1)*d], row(i))
				if sim < worst {
					worst, wi = sim, i
				}
			}
			copy(centroids.Data()[c*d:(c+1)*d], row(wi))
			assign[wi] = c
		}
	}
	res.Inertia = 0
	for i := 0; i < n; i++ {
		c := assign[i]
		res.Inertia += 1 - Cosine(centroids.Data()[c*d:(c+1)*d], row(i))
	}
	return res
}

// Purity scores a clustering against ground-truth labels: the fraction of
// points belonging to their cluster's majority class (1.0 = clusters map
// exactly onto classes).
func Purity(assign, labels []int, k, numClasses int) float64 {
	if len(assign) != len(labels) || len(assign) == 0 {
		panic("hdc: Purity needs equal-length non-empty assignments and labels")
	}
	counts := make([][]int, k)
	for i := range counts {
		counts[i] = make([]int, numClasses)
	}
	for i, c := range assign {
		counts[c][labels[i]]++
	}
	correct := 0
	for _, h := range counts {
		max := 0
		for _, n := range h {
			if n > max {
				max = n
			}
		}
		correct += max
	}
	return float64(correct) / float64(len(assign))
}

// ToModel converts centroids into an HD classifier whose class k is
// cluster k — the semi-supervised bootstrap: cluster unlabeled data, then
// name the clusters with a handful of labels.
func (r *ClusterResult) ToModel() *Model {
	k, d := r.Centroids.Dim(0), r.Centroids.Dim(1)
	m := NewModel(k, d)
	m.Prototypes.CopyFrom(r.Centroids)
	return m
}
