// Package hdc implements hyperdimensional computing: random-projection
// encoding of feature vectors into high-dimensional (bipolar or real)
// hypervectors, bundling/binding algebra, a class-prototype classifier with
// one-shot training and iterative refinement, the bit-error quantizer of the
// FHDnn paper (Sec. 3.5.2), and linear decoding of noisy hypervectors
// (paper Eq. 5).
package hdc

import (
	"fmt"
	"math"
	"math/rand"

	"fhdnn/internal/tensor"
)

// Encoder embeds n-dimensional feature vectors into d-dimensional
// hyperspace under a random linear map Phi whose rows are sampled uniformly
// from the unit sphere, following the paper's Sec. 3.3 (random projection
// encoding, after Imani et al., "BRIC", DAC'19).
type Encoder struct {
	D, N int
	// Phi is d x n; rows have unit L2 norm.
	Phi *tensor.Tensor
	// Binarize selects sign(Phi z) (paper default) vs the raw projection
	// Phi z. The raw variant is kept for the ablation study.
	Binarize bool
}

// NewEncoder samples a fresh random projection. All clients and the server
// must share the same encoder; construct it from a common seed.
func NewEncoder(rng *rand.Rand, d, n int) *Encoder {
	if d <= 0 || n <= 0 {
		panic(fmt.Sprintf("hdc: invalid encoder dims d=%d n=%d", d, n))
	}
	phi := tensor.New(d, n)
	for i := 0; i < d; i++ {
		row := phi.Data()[i*n : (i+1)*n]
		var norm float64
		for j := range row {
			v := rng.NormFloat64()
			row[j] = float32(v)
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			row[0] = 1
			norm = 1
		}
		inv := float32(1 / norm)
		for j := range row {
			row[j] *= inv
		}
	}
	return &Encoder{D: d, N: n, Phi: phi, Binarize: true}
}

// Encode maps features z to a hypervector h = sign(Phi z) (or Phi z when
// Binarize is off). The returned slice has length D.
func (e *Encoder) Encode(z []float32) []float32 {
	if len(z) != e.N {
		panic(fmt.Sprintf("hdc: Encode expects %d features, got %d", e.N, len(z)))
	}
	h := tensor.MatVec(e.Phi, z)
	if e.Binarize {
		for i, v := range h {
			if v >= 0 {
				h[i] = 1
			} else {
				h[i] = -1
			}
		}
	}
	return h
}

// EncodeBatch encodes each row of a [batch, n] feature matrix, returning
// [batch, d].
func (e *Encoder) EncodeBatch(z *tensor.Tensor) *tensor.Tensor {
	b := z.Dim(0)
	out := tensor.New(b, e.D)
	for s := 0; s < b; s++ {
		h := e.Encode(z.Data()[s*e.N : (s+1)*e.N])
		copy(out.Data()[s*e.D:(s+1)*e.D], h)
	}
	return out
}

// Decode reconstructs an approximation of the original features from a
// (possibly noisy) real-valued hypervector, paper Eq. 5:
//
//	x ~= (n/d) Phi^T h
//
// The n/d factor corrects for E[Phi^T Phi] = (d/n) I when rows lie on the
// unit sphere (the paper's Eq. 5 absorbs this constant into its 1/d).
// Decoding averages the noise over all d dimensions, which is the
// information-dispersal property exploited in Sec. 3.5.1.
func (e *Encoder) Decode(h []float32) []float32 {
	if len(h) != e.D {
		panic(fmt.Sprintf("hdc: Decode expects %d dims, got %d", e.D, len(h)))
	}
	x := tensor.MatVecTrans(e.Phi, h)
	scale := float32(float64(e.N) / float64(e.D))
	for i := range x {
		x[i] *= scale
	}
	return x
}
