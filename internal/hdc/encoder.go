// Package hdc implements hyperdimensional computing: random-projection
// encoding of feature vectors into high-dimensional (bipolar or real)
// hypervectors, bundling/binding algebra, a class-prototype classifier with
// one-shot training and iterative refinement, the bit-error quantizer of the
// FHDnn paper (Sec. 3.5.2), and linear decoding of noisy hypervectors
// (paper Eq. 5).
package hdc

import (
	"fmt"
	"math"
	"math/rand"

	"fhdnn/internal/tensor"
)

// Encoder embeds n-dimensional feature vectors into d-dimensional
// hyperspace under a random linear map Phi whose rows are sampled uniformly
// from the unit sphere, following the paper's Sec. 3.3 (random projection
// encoding, after Imani et al., "BRIC", DAC'19).
//
// Alongside Phi (d x n) the encoder keeps a transposed copy (n x d) so
// batch encoding runs as a single streaming matrix multiply on the blocked
// tensor kernels; this doubles the projection's memory footprint. Phi must
// not be mutated after construction or the copies fall out of sync.
type Encoder struct {
	D, N int
	// Phi is d x n; rows have unit L2 norm.
	Phi *tensor.Tensor
	// phiT is the n x d transpose of Phi, laid out so EncodeBatch streams
	// it row-major.
	phiT *tensor.Tensor
	// Binarize selects sign(Phi z) (paper default) vs the raw projection
	// Phi z. The raw variant is kept for the ablation study.
	Binarize bool
}

// NewEncoder samples a fresh random projection. All clients and the server
// must share the same encoder; construct it from a common seed.
func NewEncoder(rng *rand.Rand, d, n int) *Encoder {
	if d <= 0 || n <= 0 {
		panic(fmt.Sprintf("hdc: invalid encoder dims d=%d n=%d", d, n))
	}
	phi := tensor.New(d, n)
	for i := 0; i < d; i++ {
		row := phi.Data()[i*n : (i+1)*n]
		var norm float64
		for j := range row {
			v := rng.NormFloat64()
			row[j] = float32(v)
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			row[0] = 1
			norm = 1
		}
		inv := float32(1 / norm)
		for j := range row {
			row[j] *= inv
		}
	}
	e := &Encoder{D: d, N: n, Phi: phi, Binarize: true}
	e.initDerived()
	return e
}

// initDerived (re)builds the transposed projection from Phi. It must be
// called after Phi is populated (construction, deserialization).
func (e *Encoder) initDerived() {
	pt := tensor.New(e.N, e.D)
	src, dst := e.Phi.Data(), pt.Data()
	for i := 0; i < e.D; i++ {
		row := src[i*e.N : (i+1)*e.N]
		for j, v := range row {
			dst[j*e.D+i] = v
		}
	}
	e.phiT = pt
}

// Encode maps features z to a hypervector h = sign(Phi z) (or Phi z when
// Binarize is off). The returned slice has length D.
func (e *Encoder) Encode(z []float32) []float32 {
	h := make([]float32, e.D)
	e.EncodeInto(h, z)
	return h
}

// EncodeInto encodes features z into dst, which must have length D. It
// performs no allocation when the tensor pool has a single worker.
//
//fhdnn:hotpath per-sample encode on the client training loop
func (e *Encoder) EncodeInto(dst, z []float32) {
	if len(z) != e.N {
		panic(fmt.Sprintf("hdc: Encode expects %d features, got %d", e.N, len(z)))
	}
	if len(dst) != e.D {
		panic(fmt.Sprintf("hdc: EncodeInto dst length %d, want %d", len(dst), e.D))
	}
	tensor.MatVecInto(dst, e.Phi, z)
	if e.Binarize {
		signInPlace(dst)
	}
}

// EncodeBatch encodes each row of a [batch, n] feature matrix, returning
// [batch, d].
func (e *Encoder) EncodeBatch(z *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(z.Dim(0), e.D)
	e.EncodeBatchInto(out, z)
	return out
}

// EncodeBatchInto encodes a [batch, n] feature matrix into dst ([batch, d])
// as one blocked matrix multiply H = Z Phi^T over the whole batch. The
// per-element reduction order matches Encode's (ascending feature index),
// so every row is bit-identical to encoding it alone, for every worker
// count.
//
//fhdnn:hotpath batch encode on the client training loop
func (e *Encoder) EncodeBatchInto(dst, z *tensor.Tensor) {
	if z.NumDims() != 2 || z.Dim(1) != e.N {
		panic(fmt.Sprintf("hdc: EncodeBatch expects [batch %d] features, got %v", e.N, z.Shape()))
	}
	b := z.Dim(0)
	if dst.NumDims() != 2 || dst.Dim(0) != b || dst.Dim(1) != e.D {
		panic(fmt.Sprintf("hdc: EncodeBatchInto dst shape %v, want [%d %d]", dst.Shape(), b, e.D))
	}
	if e.phiT == nil {
		// Encoder assembled without NewEncoder/ReadEncoder (struct
		// literal): fall back to per-row encoding.
		for s := 0; s < b; s++ {
			e.EncodeInto(dst.Data()[s*e.D:(s+1)*e.D], z.Data()[s*e.N:(s+1)*e.N])
		}
		return
	}
	tensor.MatMulInto(dst, z, e.phiT)
	if e.Binarize {
		signInPlace(dst.Data())
	}
}

func signInPlace(h []float32) {
	for i, v := range h {
		if v >= 0 {
			h[i] = 1
		} else {
			h[i] = -1
		}
	}
}

// Decode reconstructs an approximation of the original features from a
// (possibly noisy) real-valued hypervector, paper Eq. 5:
//
//	x ~= (n/d) Phi^T h
//
// The n/d factor corrects for E[Phi^T Phi] = (d/n) I when rows lie on the
// unit sphere (the paper's Eq. 5 absorbs this constant into its 1/d).
// Decoding averages the noise over all d dimensions, which is the
// information-dispersal property exploited in Sec. 3.5.1.
func (e *Encoder) Decode(h []float32) []float32 {
	if len(h) != e.D {
		panic(fmt.Sprintf("hdc: Decode expects %d dims, got %d", e.D, len(h)))
	}
	x := tensor.MatVecTrans(e.Phi, h)
	scale := float32(float64(e.N) / float64(e.D))
	for i := range x {
		x[i] *= scale
	}
	return x
}

// DecodeBatch decodes each row of a [batch, d] hypervector matrix into
// [batch, n] features with one blocked matrix multiply, X = (n/d) H Phi.
// The reduction runs over ascending hypervector index exactly as Decode's
// does, so rows match per-vector Decode whenever no hypervector component
// is exactly zero (Decode skips zero components; the batched kernel does
// not).
func (e *Encoder) DecodeBatch(h *tensor.Tensor) *tensor.Tensor {
	if h.NumDims() != 2 || h.Dim(1) != e.D {
		panic(fmt.Sprintf("hdc: DecodeBatch expects [batch %d] dims, got %v", e.D, h.Shape()))
	}
	x := tensor.MatMul(h, e.Phi)
	scale := float32(float64(e.N) / float64(e.D))
	for i, v := range x.Data() {
		x.Data()[i] = v * scale
	}
	return x
}
