package hdc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"fhdnn/internal/tensor"
)

// Binary serialization for HD models and encoders, so federated servers
// can checkpoint global state and clients can persist their shared encoder.
// The format is little-endian: a 4-byte magic, two int32 dimensions, then
// the float32 payload.

var (
	modelMagic   = [4]byte{'F', 'H', 'D', 'M'}
	encoderMagic = [4]byte{'F', 'H', 'D', 'E'}
)

// Typed deserialization failures, matchable with errors.Is. Servers use
// them to separate malformed uploads (client's fault, reject) from local
// I/O trouble.
var (
	ErrModelMagic     = errors.New("hdc: bad model magic")
	ErrModelDims      = errors.New("hdc: implausible model dims")
	ErrModelTruncated = errors.New("hdc: truncated model payload")
	ErrModelTrailing  = errors.New("hdc: trailing bytes after model payload")
)

// modelHeaderLen is the fixed model prefix: 4-byte magic + two int32 dims.
const modelHeaderLen = 12

// maxModelElems caps the pre-allocation: a genuine model of >64M entries
// (256 MB) is outside this library's envelope, and a malformed header must
// not trigger a giant allocation before the payload read fails.
const maxModelElems = 1 << 26

// WriteTo serializes the model. It implements io.WriterTo.
func (m *Model) WriteTo(w io.Writer) (int64, error) {
	if _, err := w.Write(modelMagic[:]); err != nil {
		return 0, fmt.Errorf("hdc: write model header: %w", err)
	}
	n := int64(4)
	if err := writeDims(w, m.K, m.D); err != nil {
		return n, err
	}
	n += 8
	nn, err := writeFloats(w, m.Prototypes.Data())
	return n + nn, err
}

// ReadModel deserializes a model written by WriteTo. It reads from a
// stream and therefore cannot object to bytes following the payload; use
// DecodeModel when the full payload boundary is known.
func ReadModel(r io.Reader) (*Model, error) {
	if err := expectMagic(r, modelMagic, "model", ErrModelMagic); err != nil {
		return nil, err
	}
	k, d, err := readDims(r)
	if err != nil {
		return nil, err
	}
	// The product check is in int64: on a 32-bit platform k=d=2^16 wraps
	// k*d to zero and would sail past an int multiply.
	if k <= 0 || d <= 0 || int64(k)*int64(d) > maxModelElems {
		return nil, fmt.Errorf("%w: %dx%d", ErrModelDims, k, d)
	}
	m := NewModel(k, d)
	if err := readFloats(r, m.Prototypes.Data()); err != nil {
		return nil, err
	}
	return m, nil
}

// DecodeModel deserializes a complete model payload held in memory. It is
// stricter than ReadModel: because it knows where the payload ends, a
// short buffer fails with ErrModelTruncated and extra bytes past the
// declared dimensions fail with ErrModelTrailing — a lossy or adversarial
// uplink must not smuggle garbage past the parser. All failures wrap one
// of the ErrModel* sentinels.
func DecodeModel(data []byte) (*Model, error) {
	if len(data) < modelHeaderLen {
		return nil, fmt.Errorf("%w: %d bytes, header needs %d",
			ErrModelTruncated, len(data), modelHeaderLen)
	}
	if [4]byte(data[:4]) != modelMagic {
		return nil, fmt.Errorf("%w: %q", ErrModelMagic, data[:4])
	}
	k := int(int32(binary.LittleEndian.Uint32(data[4:])))
	d := int(int32(binary.LittleEndian.Uint32(data[8:])))
	// int64 product: on 32-bit platforms k=d=2^16 wraps k*d to zero.
	if k <= 0 || d <= 0 || int64(k)*int64(d) > maxModelElems {
		return nil, fmt.Errorf("%w: %dx%d", ErrModelDims, k, d)
	}
	want := modelHeaderLen + 4*k*d
	if len(data) < want {
		return nil, fmt.Errorf("%w: %d bytes, dims %dx%d need %d",
			ErrModelTruncated, len(data), k, d, want)
	}
	if len(data) > want {
		return nil, fmt.Errorf("%w: %d bytes past the %d-byte payload",
			ErrModelTrailing, len(data)-want, want)
	}
	m := NewModel(k, d)
	dst := m.Prototypes.Data()
	for i := range dst {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(data[modelHeaderLen+4*i:]))
	}
	return m, nil
}

// WriteTo serializes the encoder (projection matrix and flags). It
// implements io.WriterTo.
func (e *Encoder) WriteTo(w io.Writer) (int64, error) {
	if _, err := w.Write(encoderMagic[:]); err != nil {
		return 0, fmt.Errorf("hdc: write encoder header: %w", err)
	}
	n := int64(4)
	if err := writeDims(w, e.D, e.N); err != nil {
		return n, err
	}
	n += 8
	flag := byte(0)
	if e.Binarize {
		flag = 1
	}
	if _, err := w.Write([]byte{flag}); err != nil {
		return n, fmt.Errorf("hdc: write encoder flags: %w", err)
	}
	n++
	nn, err := writeFloats(w, e.Phi.Data())
	return n + nn, err
}

// ReadEncoder deserializes an encoder written by WriteTo.
func ReadEncoder(r io.Reader) (*Encoder, error) {
	if err := expectMagic(r, encoderMagic, "encoder", nil); err != nil {
		return nil, err
	}
	d, n, err := readDims(r)
	if err != nil {
		return nil, err
	}
	// int64 product: on 32-bit platforms d=n=2^16 wraps d*n to zero.
	if d <= 0 || n <= 0 || int64(d)*int64(n) > maxModelElems {
		return nil, fmt.Errorf("hdc: implausible encoder dims %dx%d", d, n)
	}
	var flag [1]byte
	if _, err := io.ReadFull(r, flag[:]); err != nil {
		return nil, fmt.Errorf("hdc: read encoder flags: %w", err)
	}
	e := &Encoder{D: d, N: n, Phi: tensor.New(d, n), Binarize: flag[0] == 1}
	if err := readFloats(r, e.Phi.Data()); err != nil {
		return nil, err
	}
	e.initDerived()
	return e, nil
}

// expectMagic consumes and checks a 4-byte magic. A mismatch wraps
// sentinel when one is supplied, so callers can expose a typed error.
func expectMagic(r io.Reader, want [4]byte, kind string, sentinel error) error {
	var got [4]byte
	if _, err := io.ReadFull(r, got[:]); err != nil {
		return fmt.Errorf("hdc: read %s header: %w", kind, err)
	}
	if got != want {
		if sentinel != nil {
			return fmt.Errorf("%w: %q", sentinel, got[:])
		}
		return fmt.Errorf("hdc: bad %s magic %q", kind, got[:])
	}
	return nil
}

func writeDims(w io.Writer, a, b int) error {
	var buf [8]byte
	binary.LittleEndian.PutUint32(buf[0:], uint32(a))
	binary.LittleEndian.PutUint32(buf[4:], uint32(b))
	if _, err := w.Write(buf[:]); err != nil {
		return fmt.Errorf("hdc: write dims: %w", err)
	}
	return nil
}

func readDims(r io.Reader) (int, int, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, 0, fmt.Errorf("hdc: read dims: %w", err)
	}
	return int(int32(binary.LittleEndian.Uint32(buf[0:]))),
		int(int32(binary.LittleEndian.Uint32(buf[4:]))), nil
}

func writeFloats(w io.Writer, data []float32) (int64, error) {
	buf := make([]byte, 4*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
	}
	n, err := w.Write(buf)
	if err != nil {
		return int64(n), fmt.Errorf("hdc: write payload: %w", err)
	}
	return int64(n), nil
}

func readFloats(r io.Reader, dst []float32) error {
	buf := make([]byte, 4*len(dst))
	if _, err := io.ReadFull(r, buf); err != nil {
		return fmt.Errorf("hdc: read payload: %w", err)
	}
	for i := range dst {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return nil
}
