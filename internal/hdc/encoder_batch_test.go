package hdc

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"fhdnn/internal/tensor"
)

func withWorkers(t *testing.T, n int) {
	t.Helper()
	old := tensor.SetWorkers(n)
	t.Cleanup(func() { tensor.SetWorkers(old) })
}

// TestEncodeBatchMatchesEncodeBitExact verifies the batched encoder's
// contract: every row of EncodeBatch equals the per-sample Encode of that
// row bit for bit, for binarized and raw projections, at every worker
// count. This is what lets callers mix the two paths freely (e.g. clients
// encoding one sample at inference, batches in training).
func TestEncodeBatchMatchesEncodeBitExact(t *testing.T) {
	if tensor.FastKernels() {
		t.Skip("fhdnnfast: the batch path's FMA matmul is documented as not bit-identical to the scalar single-sample MatVec path")
	}
	rng := rand.New(rand.NewSource(20))
	for _, binarize := range []bool{true, false} {
		e := NewEncoder(rand.New(rand.NewSource(21)), 257, 33)
		e.Binarize = binarize
		z := tensor.Randn(rng, 1, 9, e.N)
		for _, w := range []int{1, 2, 3, 8} {
			old := tensor.SetWorkers(w)
			got := e.EncodeBatch(z)
			for s := 0; s < z.Dim(0); s++ {
				want := e.Encode(z.Data()[s*e.N : (s+1)*e.N])
				row := got.Data()[s*e.D : (s+1)*e.D]
				for i := range want {
					if math.Float32bits(row[i]) != math.Float32bits(want[i]) {
						t.Fatalf("binarize=%v workers=%d: row %d dim %d = %v, want %v",
							binarize, w, s, i, row[i], want[i])
					}
				}
			}
			tensor.SetWorkers(old)
		}
	}
}

func TestDecodeBatchMatchesDecode(t *testing.T) {
	e := NewEncoder(rand.New(rand.NewSource(22)), 301, 41)
	z := tensor.Randn(rand.New(rand.NewSource(23)), 1, 7, e.N)
	h := e.EncodeBatch(z) // bipolar: no zero components, so bits must match
	for _, w := range []int{1, 3, 8} {
		old := tensor.SetWorkers(w)
		got := e.DecodeBatch(h)
		for s := 0; s < h.Dim(0); s++ {
			want := e.Decode(h.Data()[s*e.D : (s+1)*e.D])
			row := got.Data()[s*e.N : (s+1)*e.N]
			for i := range want {
				if math.Float32bits(row[i]) != math.Float32bits(want[i]) {
					t.Fatalf("workers=%d: row %d feature %d = %v, want %v", w, s, i, row[i], want[i])
				}
			}
		}
		tensor.SetWorkers(old)
	}
}

func TestEncodeIntoDoesNotAllocateSerial(t *testing.T) {
	withWorkers(t, 1)
	e := NewEncoder(rand.New(rand.NewSource(24)), 512, 64)
	z := make([]float32, e.N)
	for i := range z {
		z[i] = float32(i%7) - 3
	}
	dst := make([]float32, e.D)
	if allocs := testing.AllocsPerRun(10, func() { e.EncodeInto(dst, z) }); allocs != 0 {
		t.Errorf("EncodeInto: %v allocs/op, want 0", allocs)
	}
	zb := tensor.FromSlice(make([]float32, 4*e.N), 4, e.N)
	out := tensor.New(4, e.D)
	if allocs := testing.AllocsPerRun(10, func() { e.EncodeBatchInto(out, zb) }); allocs != 0 {
		t.Errorf("EncodeBatchInto: %v allocs/op, want 0", allocs)
	}
}

// TestSerializedEncoderKeepsBatchedPath ensures deserialization rebuilds the
// transposed projection, so a restored encoder batch-encodes identically to
// the original.
func TestSerializedEncoderKeepsBatchedPath(t *testing.T) {
	e := NewEncoder(rand.New(rand.NewSource(25)), 129, 17)
	var buf bytes.Buffer
	if _, err := e.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEncoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.phiT == nil {
		t.Fatal("deserialized encoder has no transposed projection")
	}
	z := tensor.Randn(rand.New(rand.NewSource(26)), 1, 5, e.N)
	a, b := e.EncodeBatch(z), got.EncodeBatch(z)
	if !a.Equal(b, 0) {
		t.Fatal("deserialized encoder batch-encodes differently")
	}
}

// TestEncodeBatchLiteralEncoderFallback covers encoders assembled without a
// constructor (no transposed projection).
func TestEncodeBatchLiteralEncoderFallback(t *testing.T) {
	src := NewEncoder(rand.New(rand.NewSource(27)), 65, 13)
	lit := &Encoder{D: src.D, N: src.N, Phi: src.Phi, Binarize: true}
	z := tensor.Randn(rand.New(rand.NewSource(28)), 1, 3, src.N)
	if !lit.EncodeBatch(z).Equal(src.EncodeBatch(z), 0) {
		t.Fatal("fallback batch encode diverged from batched path")
	}
}
