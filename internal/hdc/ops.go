package hdc

import (
	"fmt"
	"math"
)

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float32) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("hdc: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	s := 0.0
	for i, v := range a {
		s += float64(v) * float64(b[i])
	}
	return s
}

// Norm returns the L2 norm of v.
func Norm(v []float32) float64 {
	s := 0.0
	for _, x := range v {
		s += float64(x) * float64(x)
	}
	return math.Sqrt(s)
}

// Cosine returns the cosine similarity of a and b, or 0 if either is a zero
// vector.
func Cosine(a, b []float32) float64 {
	na, nb := Norm(a), Norm(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// Bundle adds b into a elementwise (the HDC superposition operator).
func Bundle(a, b []float32) {
	if len(a) != len(b) {
		panic("hdc: Bundle length mismatch")
	}
	for i, v := range b {
		a[i] += v
	}
}

// Bind returns the elementwise product of a and b (the HDC binding operator
// for bipolar vectors; self-inverse since (+-1)^2 = 1).
func Bind(a, b []float32) []float32 {
	if len(a) != len(b) {
		panic("hdc: Bind length mismatch")
	}
	out := make([]float32, len(a))
	for i := range a {
		out[i] = a[i] * b[i]
	}
	return out
}

// Permute returns v cyclically rotated right by k positions (the HDC
// sequence/permutation operator).
func Permute(v []float32, k int) []float32 {
	n := len(v)
	if n == 0 {
		return nil
	}
	k = ((k % n) + n) % n
	out := make([]float32, n)
	copy(out[k:], v[:n-k])
	copy(out[:k], v[n-k:])
	return out
}

// Sign binarizes v in place to +-1 (ties map to +1).
func Sign(v []float32) {
	for i, x := range v {
		if x >= 0 {
			v[i] = 1
		} else {
			v[i] = -1
		}
	}
}

// HammingDistance counts positions where bipolar vectors differ.
func HammingDistance(a, b []float32) int {
	if len(a) != len(b) {
		panic("hdc: HammingDistance length mismatch")
	}
	d := 0
	for i := range a {
		if (a[i] >= 0) != (b[i] >= 0) {
			d++
		}
	}
	return d
}

// RandomBipolar returns a uniformly random +-1 hypervector of length d.
func RandomBipolar(rng interface{ Intn(int) int }, d int) []float32 {
	v := make([]float32, d)
	for i := range v {
		if rng.Intn(2) == 0 {
			v[i] = 1
		} else {
			v[i] = -1
		}
	}
	return v
}
