package hdc_test

import (
	"fmt"
	"math/rand"

	"fhdnn/internal/hdc"
	"fhdnn/internal/tensor"
)

// Encode features into hyperspace, train a prototype classifier one-shot,
// and classify.
func Example() {
	rng := rand.New(rand.NewSource(1))
	enc := hdc.NewEncoder(rng, 2048, 4)

	// two classes with opposite feature signatures
	examples := [][]float32{
		{1, 1, -1, -1}, {0.9, 1.1, -1, -0.9}, // class 0
		{-1, -1, 1, 1}, {-1.1, -0.9, 1, 1.2}, // class 1
	}
	labels := []int{0, 0, 1, 1}

	encoded := tensor.New(len(examples), 2048)
	for i, x := range examples {
		copy(encoded.Data()[i*2048:(i+1)*2048], enc.Encode(x))
	}
	model := hdc.NewModel(2, 2048)
	model.OneShotTrain(encoded, labels)

	query := enc.Encode([]float32{1, 0.8, -1.2, -1})
	class, _ := model.Predict(query)
	fmt.Println("predicted class:", class)
	// Output: predicted class: 0
}

// Binding and bundling compose symbolic structure: a record
// {color: red, shape: square} is the bundle of bound pairs, and unbinding
// recovers the filler.
func ExampleBind() {
	rng := rand.New(rand.NewSource(2))
	color := hdc.RandomBipolar(rng, 8192)
	red := hdc.RandomBipolar(rng, 8192)
	shape := hdc.RandomBipolar(rng, 8192)
	square := hdc.RandomBipolar(rng, 8192)

	record := hdc.Bind(color, red)
	hdc.Bundle(record, hdc.Bind(shape, square))

	// unbind the color role and compare against the candidate fillers
	probe := hdc.Bind(record, color)
	simRed := hdc.Cosine(probe, red)
	simSquare := hdc.Cosine(probe, square)
	fmt.Println("red wins:", simRed > simSquare && simRed > 0.3)
	// Output: red wins: true
}

// The quantizer bounds what a bit flip can do to a transmitted prototype.
func ExampleQuantizer() {
	q := hdc.NewQuantizer(16)
	proto := []float32{0.5, -2, 1.25}
	codes, gain := q.Quantize(proto)
	back := q.Dequantize(codes, gain)
	fmt.Printf("%.2f %.2f %.2f\n", back[0], back[1], back[2])
	// Output: 0.50 -2.00 1.25
}
