package hdc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPackUnpackRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 1 + rng.Intn(200) // deliberately non-multiples of 64
		v := RandomBipolar(rng, d)
		got := Pack(v).Unpack()
		for i := range v {
			if got[i] != v[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestHammingMatchesFloatVersion(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, d := range []int{64, 100, 1000} {
		a := RandomBipolar(rng, d)
		b := RandomBipolar(rng, d)
		want := HammingDistance(a, b)
		got := Pack(a).Hamming(Pack(b))
		if got != want {
			t.Fatalf("d=%d: packed Hamming %d, float version %d", d, got, want)
		}
	}
}

func TestHammingMasksPaddingBits(t *testing.T) {
	// 65 dims: one full word plus one bit. Padding must not count.
	a := NewBinaryVector(65)
	b := NewBinaryVector(65)
	a.Words[1] = 0xFFFFFFFFFFFFFFFE // garbage in padding, bit 64 clear
	if d := a.Hamming(b); d != 0 {
		t.Fatalf("padding bits leaked into Hamming: %d", d)
	}
}

func TestCosineBinaryAgreesWithCosine(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := RandomBipolar(rng, 4096)
	b := RandomBipolar(rng, 4096)
	want := Cosine(a, b)
	got := Pack(a).CosineBinary(Pack(b))
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("binary cosine %v, float cosine %v", got, want)
	}
}

func TestXorBindSelfInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := Pack(RandomBipolar(rng, 300))
	b := Pack(RandomBipolar(rng, 300))
	back := a.XorBind(b).XorBind(b)
	if back.Hamming(a) != 0 {
		t.Fatal("XorBind must be self-inverse")
	}
	// bound vector dissimilar to both factors
	if c := math.Abs(a.XorBind(b).CosineBinary(a)); c > 0.25 {
		t.Fatalf("bound vector too similar to factor: %v", c)
	}
}

func TestMajorityBundlePreservesSimilarity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vs := make([]*BinaryVector, 5)
	for i := range vs {
		vs[i] = Pack(RandomBipolar(rng, 4096))
	}
	bundle := MajorityBundle(vs...)
	other := Pack(RandomBipolar(rng, 4096))
	for i, v := range vs {
		simIn := bundle.CosineBinary(v)
		simOut := bundle.CosineBinary(other)
		if simIn <= simOut {
			t.Fatalf("bundle should stay closer to member %d (%v) than to a stranger (%v)", i, simIn, simOut)
		}
	}
}

func TestMajorityBundleValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty bundle")
		}
	}()
	MajorityBundle()
}

func TestBinaryModelNearFloatAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x, labels := clusterData(rng, 5, 30, 12, 0.8)
	e := NewEncoder(rng, 4096, 12)
	enc := e.EncodeBatch(x)
	m := NewModel(5, 4096)
	m.OneShotTrain(enc, labels)
	for i := 0; i < 5; i++ {
		m.RefineEpoch(enc, labels)
	}
	floatAcc := m.Accuracy(enc, labels)

	bm := m.Binarize()
	queries := make([]*BinaryVector, enc.Dim(0))
	for i := range queries {
		queries[i] = Pack(enc.Data()[i*4096 : (i+1)*4096])
	}
	binAcc := bm.Accuracy(queries, labels)
	if binAcc < floatAcc-0.1 {
		t.Fatalf("binary model accuracy %v much worse than float %v", binAcc, floatAcc)
	}
	// the size win is the point: 32x smaller than float32 prototypes
	if bm.SizeBytes()*30 > m.UpdateSizeBytes(4) {
		t.Fatalf("binary model %dB should be ~32x below float %dB",
			bm.SizeBytes(), m.UpdateSizeBytes(4))
	}
}

func TestBinaryVectorValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewBinaryVector(0) },
		func() { NewBinaryVector(64).Hamming(NewBinaryVector(65)) },
		func() { NewBinaryVector(64).XorBind(NewBinaryVector(65)) },
		func() { MajorityBundle(NewBinaryVector(64), NewBinaryVector(65)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestBinaryModelEmptyQueries(t *testing.T) {
	bm := NewModel(2, 64).Binarize()
	if bm.Accuracy(nil, nil) != 0 {
		t.Fatal("empty query accuracy must be 0")
	}
}

func BenchmarkBinaryHamming(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	x := Pack(RandomBipolar(rng, 10000))
	y := Pack(RandomBipolar(rng, 10000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Hamming(y)
	}
}

func BenchmarkBinaryPredict(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	m := NewModel(10, 10000)
	for k := 0; k < 10; k++ {
		copy(m.Class(k), RandomBipolar(rng, 10000))
	}
	bm := m.Binarize()
	q := Pack(RandomBipolar(rng, 10000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bm.Predict(q)
	}
}
