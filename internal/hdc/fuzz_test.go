package hdc

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"fhdnn/internal/tensor"
)

// FuzzReadModel ensures that arbitrary byte streams never panic the model
// deserializer — a server must survive malformed client uploads (flnet
// feeds it exactly this path).
func FuzzReadModel(f *testing.F) {
	// seed with a valid payload and a few mutations
	m := NewModel(2, 8)
	m.SetFlat([]float32{1, 2, 3, 4, 5, 6, 7, 8, -1, -2, -3, -4, -5, -6, -7, -8})
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:4])
	f.Add([]byte("FHDM"))
	f.Add([]byte{})
	truncated := append([]byte(nil), valid[:len(valid)-1]...)
	f.Add(truncated)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadModel(bytes.NewReader(data))
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		if got.K <= 0 || got.D <= 0 || got.NumParams() != len(got.Flat()) {
			t.Fatalf("accepted inconsistent model %dx%d", got.K, got.D)
		}
	})
}

// FuzzModelDecode hammers the strict in-memory model parser with
// arbitrary bytes, mirroring fedcore's FuzzEnvelopeDecode: malformed
// headers, truncated payloads and trailing garbage must all surface as
// typed errors, never as panics or silently wrong decodes. Seeds cover a
// valid payload plus each distinct corruption class.
func FuzzModelDecode(f *testing.F) {
	m := NewModel(2, 8)
	m.SetFlat([]float32{1, 2, 3, 4, 5, 6, 7, 8, -1, -2, -3, -4, -5, -6, -7, -8})
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)                                             // valid
	f.Add(valid[:len(valid)-1])                              // truncated payload
	f.Add(valid[:7])                                         // truncated header
	f.Add(append(append([]byte(nil), valid...), 0))          // trailing byte
	f.Add([]byte("XHDM then some bytes that do not matter")) // bad magic
	f.Add([]byte{})
	huge := append([]byte(nil), valid[:modelHeaderLen]...)
	binary.LittleEndian.PutUint32(huge[4:], 1<<30) // implausible dims
	f.Add(huge)
	wrap := append([]byte(nil), valid[:modelHeaderLen]...)
	binary.LittleEndian.PutUint32(wrap[4:], 1<<16) // k*d == 2^32: wraps a
	binary.LittleEndian.PutUint32(wrap[8:], 1<<16) // 32-bit int multiply
	f.Add(wrap)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeModel(data)
		if err != nil {
			if got != nil {
				t.Fatal("failed decode must not return a model")
			}
			if !errors.Is(err, ErrModelMagic) && !errors.Is(err, ErrModelDims) &&
				!errors.Is(err, ErrModelTruncated) && !errors.Is(err, ErrModelTrailing) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		if got.K <= 0 || got.D <= 0 || got.NumParams() != len(got.Flat()) {
			t.Fatalf("accepted inconsistent model %dx%d", got.K, got.D)
		}
		// An accepted payload must account for every input byte.
		if len(data) != modelHeaderLen+4*got.K*got.D {
			t.Fatalf("accepted %d bytes for a %dx%d model", len(data), got.K, got.D)
		}
	})
}

// FuzzReadEncoder mirrors FuzzReadModel for the encoder format.
func FuzzReadEncoder(f *testing.F) {
	e := &Encoder{D: 4, N: 2, Phi: tensor.New(4, 2), Binarize: true}
	var buf bytes.Buffer
	if _, err := e.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("FHDE"))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadEncoder(bytes.NewReader(data))
		if err != nil {
			return
		}
		if got.D <= 0 || got.N <= 0 || got.Phi.Len() != got.D*got.N {
			t.Fatalf("accepted inconsistent encoder %dx%d", got.D, got.N)
		}
	})
}
