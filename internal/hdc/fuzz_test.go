package hdc

import (
	"bytes"
	"testing"

	"fhdnn/internal/tensor"
)

// FuzzReadModel ensures that arbitrary byte streams never panic the model
// deserializer — a server must survive malformed client uploads (flnet
// feeds it exactly this path).
func FuzzReadModel(f *testing.F) {
	// seed with a valid payload and a few mutations
	m := NewModel(2, 8)
	m.SetFlat([]float32{1, 2, 3, 4, 5, 6, 7, 8, -1, -2, -3, -4, -5, -6, -7, -8})
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:4])
	f.Add([]byte("FHDM"))
	f.Add([]byte{})
	truncated := append([]byte(nil), valid[:len(valid)-1]...)
	f.Add(truncated)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadModel(bytes.NewReader(data))
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		if got.K <= 0 || got.D <= 0 || got.NumParams() != len(got.Flat()) {
			t.Fatalf("accepted inconsistent model %dx%d", got.K, got.D)
		}
	})
}

// FuzzReadEncoder mirrors FuzzReadModel for the encoder format.
func FuzzReadEncoder(f *testing.F) {
	e := &Encoder{D: 4, N: 2, Phi: tensor.New(4, 2), Binarize: true}
	var buf bytes.Buffer
	if _, err := e.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("FHDE"))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadEncoder(bytes.NewReader(data))
		if err != nil {
			return
		}
		if got.D <= 0 || got.N <= 0 || got.Phi.Len() != got.D*got.N {
			t.Fatalf("accepted inconsistent encoder %dx%d", got.D, got.N)
		}
	})
}
