package hdc

import (
	"math/rand"
	"testing"

	"fhdnn/internal/tensor"
)

func BenchmarkEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	e := NewEncoder(rng, 10000, 512)
	z := make([]float32, 512)
	for i := range z {
		z[i] = float32(rng.NormFloat64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Encode(z)
	}
}

// naiveEncodeBatch replicates the pre-blocking batch encoder — a
// single-accumulator matrix-vector product per sample — as the tracked
// baseline for the batched path (see cmd/fhdnn-bench).
func naiveEncodeBatch(e *Encoder, z *tensor.Tensor, out *tensor.Tensor) {
	batch := z.Dim(0)
	phi := e.Phi.Data()
	for s := 0; s < batch; s++ {
		row := z.Data()[s*e.N : (s+1)*e.N]
		h := out.Data()[s*e.D : (s+1)*e.D]
		for i := 0; i < e.D; i++ {
			prow := phi[i*e.N : (i+1)*e.N]
			sum := float32(0)
			for j, v := range prow {
				sum += v * row[j]
			}
			h[i] = sum
		}
		if e.Binarize {
			signInPlace(h)
		}
	}
}

func encodeBatchFixture(b *testing.B) (*Encoder, *tensor.Tensor) {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	e := NewEncoder(rng, 10000, 512)
	z := tensor.Randn(rng, 1, 64, 512)
	// operand bytes per pass: features + projection + hypervectors
	b.SetBytes((64*512 + 10000*512 + 64*10000) * 4)
	return e, z
}

func BenchmarkEncodeBatchNaive(b *testing.B) {
	e, z := encodeBatchFixture(b)
	out := tensor.New(64, e.D)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		naiveEncodeBatch(e, z, out)
	}
}

func BenchmarkEncodeBatch(b *testing.B) {
	e, z := encodeBatchFixture(b)
	out := tensor.New(64, e.D)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.EncodeBatchInto(out, z)
	}
}

func BenchmarkDecodeBatch(b *testing.B) {
	e, z := encodeBatchFixture(b)
	h := e.EncodeBatch(z)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.DecodeBatch(h)
	}
}

func BenchmarkDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	e := NewEncoder(rng, 10000, 512)
	e.Binarize = false
	z := make([]float32, 512)
	for i := range z {
		z[i] = float32(rng.NormFloat64())
	}
	h := e.Encode(z)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Decode(h)
	}
}

func BenchmarkPredict(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	m := NewModel(10, 10000)
	for k := 0; k < 10; k++ {
		copy(m.Class(k), RandomBipolar(rng, 10000))
	}
	h := RandomBipolar(rng, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(h)
	}
}

func BenchmarkRefineEpoch(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	const n, d, k = 100, 4096, 10
	enc := tensor.New(n, d)
	labels := make([]int, n)
	for s := 0; s < n; s++ {
		copy(enc.Data()[s*d:(s+1)*d], RandomBipolar(rng, d))
		labels[s] = s % k
	}
	m := NewModel(k, d)
	m.OneShotTrain(enc, labels)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.RefineEpoch(enc, labels)
	}
}

func BenchmarkQuantizeRoundTrip(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	q := NewQuantizer(32)
	c := make([]float32, 10000)
	for i := range c {
		c[i] = float32(rng.NormFloat64() * 50)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.RoundTrip(c)
	}
}

func BenchmarkBundle(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	x := RandomBipolar(rng, 10000)
	y := RandomBipolar(rng, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Bundle(x, y)
	}
}
