package hdc

import (
	"math/rand"
	"testing"

	"fhdnn/internal/tensor"
)

func BenchmarkEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	e := NewEncoder(rng, 10000, 512)
	z := make([]float32, 512)
	for i := range z {
		z[i] = float32(rng.NormFloat64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Encode(z)
	}
}

func BenchmarkDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	e := NewEncoder(rng, 10000, 512)
	e.Binarize = false
	z := make([]float32, 512)
	for i := range z {
		z[i] = float32(rng.NormFloat64())
	}
	h := e.Encode(z)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Decode(h)
	}
}

func BenchmarkPredict(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	m := NewModel(10, 10000)
	for k := 0; k < 10; k++ {
		copy(m.Class(k), RandomBipolar(rng, 10000))
	}
	h := RandomBipolar(rng, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(h)
	}
}

func BenchmarkRefineEpoch(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	const n, d, k = 100, 4096, 10
	enc := tensor.New(n, d)
	labels := make([]int, n)
	for s := 0; s < n; s++ {
		copy(enc.Data()[s*d:(s+1)*d], RandomBipolar(rng, d))
		labels[s] = s % k
	}
	m := NewModel(k, d)
	m.OneShotTrain(enc, labels)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.RefineEpoch(enc, labels)
	}
}

func BenchmarkQuantizeRoundTrip(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	q := NewQuantizer(32)
	c := make([]float32, 10000)
	for i := range c {
		c[i] = float32(rng.NormFloat64() * 50)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.RoundTrip(c)
	}
}

func BenchmarkBundle(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	x := RandomBipolar(rng, 10000)
	y := RandomBipolar(rng, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Bundle(x, y)
	}
}
