package hdc

import (
	"math/rand"
	"testing"

	"fhdnn/internal/tensor"
)

func TestKMeansRecoversClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, labels := clusterData(rng, 4, 30, 16, 0.4)
	e := NewEncoder(rng, 2048, 16)
	enc := e.EncodeBatch(x)

	res := KMeans(enc, 4, 50, rng)
	if res.Iterations < 1 {
		t.Fatal("no iterations recorded")
	}
	if p := Purity(res.Assign, labels, 4, 4); p < 0.9 {
		t.Fatalf("purity %v, want >= 0.9 on separable clusters", p)
	}
	if res.Inertia < 0 {
		t.Fatalf("negative inertia %v", res.Inertia)
	}
}

func TestKMeansDeterministic(t *testing.T) {
	rng1 := rand.New(rand.NewSource(2))
	rng2 := rand.New(rand.NewSource(2))
	x, _ := clusterData(rand.New(rand.NewSource(3)), 3, 15, 8, 0.5)
	e := NewEncoder(rand.New(rand.NewSource(4)), 512, 8)
	enc := e.EncodeBatch(x)
	a := KMeans(enc, 3, 20, rng1)
	b := KMeans(enc, 3, 20, rng2)
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("same rng must give identical clustering")
		}
	}
}

func TestKMeansValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	e := NewEncoder(rng, 64, 4)
	enc := e.EncodeBatch(randTensor(rng, 3, 4))
	for _, k := range []int{0, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("k=%d should panic", k)
				}
			}()
			KMeans(enc, k, 10, rng)
		}()
	}
}

func TestKMeansSinglePointPerCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	e := NewEncoder(rng, 256, 4)
	enc := e.EncodeBatch(randTensor(rng, 3, 4))
	res := KMeans(enc, 3, 10, rng)
	seen := map[int]bool{}
	for _, a := range res.Assign {
		seen[a] = true
	}
	if len(seen) != 3 {
		t.Fatalf("k=n must give one point per cluster, got %d clusters", len(seen))
	}
}

func TestClusterToModelClassifies(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x, labels := clusterData(rng, 3, 25, 12, 0.4)
	e := NewEncoder(rng, 1024, 12)
	enc := e.EncodeBatch(x)
	res := KMeans(enc, 3, 50, rng)
	m := res.ToModel()
	// the model's classes are cluster ids; check it reproduces the
	// assignment (not the labels)
	agree := 0
	for i := 0; i < enc.Dim(0); i++ {
		pred, _ := m.Predict(enc.Data()[i*1024 : (i+1)*1024])
		if pred == res.Assign[i] {
			agree++
		}
	}
	if frac := float64(agree) / float64(len(labels)); frac < 0.99 {
		t.Fatalf("model/cluster agreement %v", frac)
	}
}

func TestPurityEdgeCases(t *testing.T) {
	if p := Purity([]int{0, 0, 1, 1}, []int{0, 0, 1, 1}, 2, 2); p != 1 {
		t.Fatalf("perfect purity = %v", p)
	}
	if p := Purity([]int{0, 0, 0, 0}, []int{0, 1, 0, 1}, 1, 2); p != 0.5 {
		t.Fatalf("merged purity = %v", p)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for length mismatch")
		}
	}()
	Purity([]int{0}, []int{0, 1}, 1, 2)
}

// randTensor builds a small random feature matrix for validation tests.
func randTensor(rng *rand.Rand, n, f int) *tensor.Tensor {
	t := tensor.New(n, f)
	for i := range t.Data() {
		t.Data()[i] = float32(rng.NormFloat64())
	}
	return t
}
