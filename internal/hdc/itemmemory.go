package hdc

import (
	"fmt"
	"math/rand"
)

// This file implements the classical HDC encoders of Kanerva's framework —
// item memories, level (thermometer) memories, record-based encoding, and
// permutation-based sequence encoding. FHDnn itself uses the random
// projection encoder of encoder.go, but the paper builds on the general
// HDC toolbox (binding, bundling, permutation), and downstream users of an
// HD learning library expect the symbolic encoders too.

// ItemMemory maps discrete symbols to quasi-orthogonal random bipolar
// hypervectors, generated deterministically from a seed so all parties
// share the same memory without exchanging it.
type ItemMemory struct {
	D    int
	seed int64
	vecs map[int][]float32
}

// NewItemMemory creates an empty item memory of dimension d.
func NewItemMemory(seed int64, d int) *ItemMemory {
	if d <= 0 {
		panic(fmt.Sprintf("hdc: invalid item memory dimension %d", d))
	}
	return &ItemMemory{D: d, seed: seed, vecs: make(map[int][]float32)}
}

// Get returns the hypervector for symbol id, generating it on first use.
// The vector depends only on (seed, id, d), never on access order.
func (im *ItemMemory) Get(id int) []float32 {
	if v, ok := im.vecs[id]; ok {
		return v
	}
	const mix = int64(-0x61C8864680B583EB) // golden-ratio mixing constant
	rng := rand.New(rand.NewSource(im.seed ^ (int64(id)+1)*mix))
	v := RandomBipolar(rng, im.D)
	im.vecs[id] = v
	return v
}

// Len returns the number of materialized items.
func (im *ItemMemory) Len() int { return len(im.vecs) }

// LevelMemory quantizes a continuous range [Lo, Hi] into L hypervectors
// whose pairwise similarity decreases linearly with level distance: each
// consecutive level flips d/(2(L-1)) fresh positions of its predecessor, so
// level 0 and level L-1 are quasi-orthogonal while neighbours are nearly
// identical. This is the standard thermometer encoding of continuous
// features in HDC.
type LevelMemory struct {
	D      int
	Levels int
	Lo, Hi float64
	vecs   [][]float32
}

// NewLevelMemory builds the L correlated level vectors.
func NewLevelMemory(seed int64, d, levels int, lo, hi float64) *LevelMemory {
	if levels < 2 {
		panic("hdc: level memory needs at least 2 levels")
	}
	if hi <= lo {
		panic("hdc: level memory needs hi > lo")
	}
	rng := rand.New(rand.NewSource(seed))
	vecs := make([][]float32, levels)
	vecs[0] = RandomBipolar(rng, d)
	// Flip disjoint position blocks so similarity decays linearly: a random
	// permutation of all positions is consumed in equal chunks.
	perm := rng.Perm(d)
	flipPerStep := d / (2 * (levels - 1))
	pos := 0
	for l := 1; l < levels; l++ {
		v := make([]float32, d)
		copy(v, vecs[l-1])
		for i := 0; i < flipPerStep && pos < d; i++ {
			v[perm[pos]] = -v[perm[pos]]
			pos++
		}
		vecs[l] = v
	}
	return &LevelMemory{D: d, Levels: levels, Lo: lo, Hi: hi, vecs: vecs}
}

// Level returns the hypervector for value x, clamped to [Lo, Hi].
func (lm *LevelMemory) Level(x float64) []float32 {
	return lm.vecs[lm.LevelIndex(x)]
}

// LevelIndex returns the quantized level of x.
func (lm *LevelMemory) LevelIndex(x float64) int {
	if x <= lm.Lo {
		return 0
	}
	if x >= lm.Hi {
		return lm.Levels - 1
	}
	idx := int(float64(lm.Levels) * (x - lm.Lo) / (lm.Hi - lm.Lo))
	if idx >= lm.Levels {
		idx = lm.Levels - 1
	}
	return idx
}

// RecordEncoder encodes fixed-length feature vectors by binding each
// feature's identity hypervector with its quantized value hypervector and
// bundling across features:
//
//	h = sign( sum_i  ID_i (x) Level(x_i) )
//
// the record-based encoding of Imani et al.
type RecordEncoder struct {
	Items    *ItemMemory
	Levels   *LevelMemory
	Binarize bool
}

// NewRecordEncoder wires an item memory and level memory of equal
// dimension.
func NewRecordEncoder(seed int64, d, levels int, lo, hi float64) *RecordEncoder {
	return &RecordEncoder{
		Items:    NewItemMemory(seed, d),
		Levels:   NewLevelMemory(seed+1, d, levels, lo, hi),
		Binarize: true,
	}
}

// Encode maps a feature vector to a hypervector.
func (re *RecordEncoder) Encode(x []float32) []float32 {
	d := re.Items.D
	acc := make([]float32, d)
	for i, v := range x {
		id := re.Items.Get(i)
		lvl := re.Levels.Level(float64(v))
		for j := 0; j < d; j++ {
			acc[j] += id[j] * lvl[j]
		}
	}
	if re.Binarize {
		Sign(acc)
	}
	return acc
}

// SequenceEncoder encodes symbol sequences with permutation n-grams:
// an n-gram (s_1 ... s_n) becomes rho^(n-1)(V_{s_1}) (x) ... (x) V_{s_n},
// and all n-grams of the sequence are bundled. Order matters: permuting a
// hypervector decorrelates it, so "ab" and "ba" map to quasi-orthogonal
// codes.
type SequenceEncoder struct {
	Items    *ItemMemory
	N        int // n-gram size
	Binarize bool
}

// NewSequenceEncoder builds an n-gram encoder of dimension d.
func NewSequenceEncoder(seed int64, d, n int) *SequenceEncoder {
	if n < 1 {
		panic("hdc: n-gram size must be >= 1")
	}
	return &SequenceEncoder{Items: NewItemMemory(seed, d), N: n, Binarize: true}
}

// Encode maps a symbol sequence to a hypervector. Sequences shorter than
// the n-gram size yield the zero vector.
func (se *SequenceEncoder) Encode(seq []int) []float32 {
	d := se.Items.D
	acc := make([]float32, d)
	for start := 0; start+se.N <= len(seq); start++ {
		gram := make([]float32, d)
		for j := range gram {
			gram[j] = 1
		}
		for k := 0; k < se.N; k++ {
			v := Permute(se.Items.Get(seq[start+k]), se.N-1-k)
			for j := 0; j < d; j++ {
				gram[j] *= v[j]
			}
		}
		Bundle(acc, gram)
	}
	if se.Binarize {
		Sign(acc)
	}
	return acc
}
