package hdc

import (
	"fmt"

	"fhdnn/internal/tensor"
)

// Model is the HD classifier: one prototype hypervector per class,
// C = [c_1; ...; c_K] (paper Sec. 3.4.1). Prototypes are integer-valued in
// exact arithmetic (sums of +-1 encodings) but stored as float32 so channel
// perturbations can be applied directly.
type Model struct {
	K, D       int
	Prototypes *tensor.Tensor // K x D
}

// NewModel allocates a zeroed model for k classes of d-dimensional
// hypervectors.
func NewModel(k, d int) *Model {
	if k <= 0 || d <= 0 {
		panic(fmt.Sprintf("hdc: invalid model dims k=%d d=%d", k, d))
	}
	return &Model{K: k, D: d, Prototypes: tensor.New(k, d)}
}

// Clone returns a deep copy.
func (m *Model) Clone() *Model {
	return &Model{K: m.K, D: m.D, Prototypes: m.Prototypes.Clone()}
}

// Class returns the prototype row for class k (shared storage).
func (m *Model) Class(k int) []float32 {
	return m.Prototypes.Data()[k*m.D : (k+1)*m.D]
}

// BundleInto adds hypervector h into class k's prototype (one-shot
// learning: c_k = sum_i h_i^k).
func (m *Model) BundleInto(k int, h []float32) {
	Bundle(m.Class(k), h)
}

// Predict returns the class whose prototype has the highest cosine
// similarity with h, along with that similarity.
func (m *Model) Predict(h []float32) (class int, sim float64) {
	best, bi := -2.0, 0
	for k := 0; k < m.K; k++ {
		s := Cosine(m.Class(k), h)
		if s > best {
			best, bi = s, k
		}
	}
	return bi, best
}

// Similarities returns the cosine similarity of h against every prototype.
func (m *Model) Similarities(h []float32) []float64 {
	out := make([]float64, m.K)
	for k := 0; k < m.K; k++ {
		out[k] = Cosine(m.Class(k), h)
	}
	return out
}

// OneShotTrain bundles every encoded example into its class prototype.
func (m *Model) OneShotTrain(encoded *tensor.Tensor, labels []int) {
	n := encoded.Dim(0)
	if len(labels) != n {
		panic("hdc: OneShotTrain labels length mismatch")
	}
	for s := 0; s < n; s++ {
		m.BundleInto(labels[s], encoded.Data()[s*m.D:(s+1)*m.D])
	}
}

// RefineEpoch performs one pass of iterative refinement (paper Sec. 3.4.1):
// for each mispredicted example, the hypervector is added to the correct
// prototype and subtracted from the mispredicted one. Returns the number of
// mispredictions.
func (m *Model) RefineEpoch(encoded *tensor.Tensor, labels []int) int {
	n := encoded.Dim(0)
	if len(labels) != n {
		panic("hdc: RefineEpoch labels length mismatch")
	}
	wrong := 0
	for s := 0; s < n; s++ {
		h := encoded.Data()[s*m.D : (s+1)*m.D]
		pred, _ := m.Predict(h)
		if pred != labels[s] {
			wrong++
			correct := m.Class(labels[s])
			bad := m.Class(pred)
			for i, v := range h {
				correct[i] += v
				bad[i] -= v
			}
		}
	}
	return wrong
}

// RefineEpochAdaptive performs one pass of similarity-weighted refinement
// (the OnlineHD scheme of Hernandez-Cano et al., DATE'21, a natural
// extension of the paper's fixed-step rule): every example updates the
// prototypes with a step proportional to how wrong the model was,
//
//	c_correct += lr * (1 - sim_correct) * h
//	c_pred    -= lr * (1 - sim_pred)    * h   (only when mispredicted)
//
// which converges faster than the fixed rule on hard data and never
// overshoots on easy data. Returns the number of mispredictions.
func (m *Model) RefineEpochAdaptive(encoded *tensor.Tensor, labels []int, lr float32) int {
	n := encoded.Dim(0)
	if len(labels) != n {
		panic("hdc: RefineEpochAdaptive labels length mismatch")
	}
	wrong := 0
	for s := 0; s < n; s++ {
		h := encoded.Data()[s*m.D : (s+1)*m.D]
		sims := m.Similarities(h)
		pred, best := 0, sims[0]
		for k, sim := range sims {
			if sim > best {
				pred, best = k, sim
			}
		}
		y := labels[s]
		if pred == y {
			continue
		}
		wrong++
		up := lr * float32(1-sims[y])
		down := lr * float32(1-sims[pred])
		correct := m.Class(y)
		bad := m.Class(pred)
		for i, v := range h {
			correct[i] += up * v
			bad[i] -= down * v
		}
	}
	return wrong
}

// Accuracy classifies every row of encoded and returns the fraction
// matching labels.
func (m *Model) Accuracy(encoded *tensor.Tensor, labels []int) float64 {
	n := encoded.Dim(0)
	correct := 0
	for s := 0; s < n; s++ {
		pred, _ := m.Predict(encoded.Data()[s*m.D : (s+1)*m.D])
		if pred == labels[s] {
			correct++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(correct) / float64(n)
}

// Add accumulates another model's prototypes into m (federated bundling,
// paper Eq. 1).
func (m *Model) Add(o *Model) {
	if m.K != o.K || m.D != o.D {
		panic("hdc: Add model shape mismatch")
	}
	m.Prototypes.AddInPlace(o.Prototypes)
}

// Scale multiplies all prototypes by s (used for averaging variants).
func (m *Model) Scale(s float32) { m.Prototypes.Scale(s) }

// Flat returns the model parameters as one flat vector (the transmitted
// update). The slice shares storage with the model.
func (m *Model) Flat() []float32 { return m.Prototypes.Data() }

// SetFlat overwrites the model parameters from a flat vector.
func (m *Model) SetFlat(flat []float32) {
	if len(flat) != m.K*m.D {
		panic("hdc: SetFlat length mismatch")
	}
	copy(m.Prototypes.Data(), flat)
}

// NumParams returns K*D.
func (m *Model) NumParams() int { return m.K * m.D }

// UpdateSizeBytes returns the size of one transmitted model update at the
// given bytes-per-parameter (4 for float32/int32 representations).
func (m *Model) UpdateSizeBytes(bytesPerParam int) int {
	return m.NumParams() * bytesPerParam
}
