package hdc

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestModelSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewModel(4, 128)
	for i := range m.Flat() {
		m.Flat()[i] = float32(rng.NormFloat64() * 10)
	}
	var buf bytes.Buffer
	n, err := m.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.K != 4 || got.D != 128 {
		t.Fatalf("dims %dx%d", got.K, got.D)
	}
	if !got.Prototypes.Equal(m.Prototypes, 0) {
		t.Fatal("prototypes corrupted in round trip")
	}
}

func TestEncoderSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	e := NewEncoder(rng, 256, 16)
	e.Binarize = false
	var buf bytes.Buffer
	if _, err := e.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEncoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.D != e.D || got.N != e.N || got.Binarize != e.Binarize {
		t.Fatalf("metadata mismatch: %+v", got)
	}
	if !got.Phi.Equal(e.Phi, 0) {
		t.Fatal("projection corrupted in round trip")
	}
	// behavioural check: identical encodings
	z := make([]float32, 16)
	for i := range z {
		z[i] = float32(rng.NormFloat64())
	}
	a, b := e.Encode(z), got.Encode(z)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("deserialized encoder behaves differently")
		}
	}
}

func TestReadModelBadMagic(t *testing.T) {
	if _, err := ReadModel(bytes.NewReader([]byte("XXXX...."))); err == nil {
		t.Fatal("expected error for bad magic")
	}
}

func TestReadModelTruncated(t *testing.T) {
	m := NewModel(2, 8)
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := ReadModel(bytes.NewReader(data[:len(data)-5])); err == nil {
		t.Fatal("expected error for truncated payload")
	}
}

func TestReadModelImplausibleDims(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(modelMagic[:])
	writeDims(&buf, -3, 10)
	if _, err := ReadModel(&buf); err == nil {
		t.Fatal("expected error for negative dims")
	}
}

func TestReadEncoderBadMagic(t *testing.T) {
	if _, err := ReadEncoder(bytes.NewReader([]byte("FHDM12345678"))); err == nil {
		t.Fatal("expected error for wrong kind")
	}
}
