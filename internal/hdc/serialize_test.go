package hdc

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

func TestModelSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewModel(4, 128)
	for i := range m.Flat() {
		m.Flat()[i] = float32(rng.NormFloat64() * 10)
	}
	var buf bytes.Buffer
	n, err := m.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.K != 4 || got.D != 128 {
		t.Fatalf("dims %dx%d", got.K, got.D)
	}
	if !got.Prototypes.Equal(m.Prototypes, 0) {
		t.Fatal("prototypes corrupted in round trip")
	}
}

func TestEncoderSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	e := NewEncoder(rng, 256, 16)
	e.Binarize = false
	var buf bytes.Buffer
	if _, err := e.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEncoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.D != e.D || got.N != e.N || got.Binarize != e.Binarize {
		t.Fatalf("metadata mismatch: %+v", got)
	}
	if !got.Phi.Equal(e.Phi, 0) {
		t.Fatal("projection corrupted in round trip")
	}
	// behavioural check: identical encodings
	z := make([]float32, 16)
	for i := range z {
		z[i] = float32(rng.NormFloat64())
	}
	a, b := e.Encode(z), got.Encode(z)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("deserialized encoder behaves differently")
		}
	}
}

func TestReadModelBadMagic(t *testing.T) {
	if _, err := ReadModel(bytes.NewReader([]byte("XXXX...."))); err == nil {
		t.Fatal("expected error for bad magic")
	}
}

func TestReadModelTruncated(t *testing.T) {
	m := NewModel(2, 8)
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := ReadModel(bytes.NewReader(data[:len(data)-5])); err == nil {
		t.Fatal("expected error for truncated payload")
	}
}

func TestReadModelImplausibleDims(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(modelMagic[:])
	writeDims(&buf, -3, 10)
	if _, err := ReadModel(&buf); err == nil {
		t.Fatal("expected error for negative dims")
	}
}

func TestDecodeModelRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewModel(3, 64)
	for i := range m.Flat() {
		m.Flat()[i] = float32(rng.NormFloat64())
	}
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeModel(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got.K != 3 || got.D != 64 || !got.Prototypes.Equal(m.Prototypes, 0) {
		t.Fatal("DecodeModel round trip corrupted the model")
	}
}

func TestDecodeModelTypedErrors(t *testing.T) {
	m := NewModel(2, 8)
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	badMagic := append([]byte(nil), valid...)
	badMagic[0] = 'X'
	badDims := append([]byte(nil), valid...)
	badDims[4], badDims[5], badDims[6], badDims[7] = 0xff, 0xff, 0xff, 0x7f

	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrModelTruncated},
		{"short header", valid[:7], ErrModelTruncated},
		{"bad magic", badMagic, ErrModelMagic},
		{"implausible dims", badDims, ErrModelDims},
		{"truncated payload", valid[:len(valid)-5], ErrModelTruncated},
		{"trailing bytes", append(append([]byte(nil), valid...), 1, 2, 3), ErrModelTrailing},
	}
	for _, tc := range cases {
		m, err := DecodeModel(tc.data)
		if m != nil {
			t.Errorf("%s: got a model back", tc.name)
		}
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: error %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestReadModelTypedErrors(t *testing.T) {
	if _, err := ReadModel(bytes.NewReader([]byte("XXXX12345678"))); !errors.Is(err, ErrModelMagic) {
		t.Fatalf("bad magic: error %v, want ErrModelMagic", err)
	}
	var buf bytes.Buffer
	buf.Write(modelMagic[:])
	if err := writeDims(&buf, -3, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadModel(&buf); !errors.Is(err, ErrModelDims) {
		t.Fatalf("negative dims: error %v, want ErrModelDims", err)
	}
}

func TestDimProductOverflow(t *testing.T) {
	// k = d = 2^16: both dims individually plausible, but the element
	// product is 2^32 — which wraps to zero in a 32-bit int multiply and
	// would sail past the maxModelElems cap without the int64 check.
	var dims bytes.Buffer
	if err := writeDims(&dims, 1<<16, 1<<16); err != nil {
		t.Fatal(err)
	}
	model := append(append([]byte(nil), modelMagic[:]...), dims.Bytes()...)
	if m, err := DecodeModel(model); !errors.Is(err, ErrModelDims) || m != nil {
		t.Fatalf("DecodeModel overflowing dims: model %v, err %v", m, err)
	}
	if _, err := ReadModel(bytes.NewReader(model)); !errors.Is(err, ErrModelDims) {
		t.Fatalf("ReadModel overflowing dims: err %v", err)
	}
	enc := append(append([]byte(nil), encoderMagic[:]...), dims.Bytes()...)
	enc = append(enc, 0) // flag byte
	if _, err := ReadEncoder(bytes.NewReader(enc)); err == nil {
		t.Fatal("ReadEncoder accepted overflowing dims")
	}
}

func TestReadEncoderBadMagic(t *testing.T) {
	if _, err := ReadEncoder(bytes.NewReader([]byte("FHDM12345678"))); err == nil {
		t.Fatal("expected error for wrong kind")
	}
}
