package hdc

import (
	"fmt"
	"math"
)

// Quantizer implements the scale-up / round / scale-down scheme of paper
// Sec. 3.5.2, which bounds the damage a bit flip can do to an integer-coded
// class hypervector. Each class hypervector is amplified by a gain
// G = (2^(B-1)-1)/max|c| so the largest magnitude occupies the full integer
// range, truncated to integers, transmitted, and scaled back down by G at
// the receiver.
type Quantizer struct {
	Bits int // integer bitwidth B (paper uses 32)
}

// NewQuantizer returns a quantizer with the given bitwidth. Bitwidths from
// 2 to 32 are supported.
func NewQuantizer(bits int) *Quantizer {
	if bits < 2 || bits > 32 {
		panic(fmt.Sprintf("hdc: unsupported quantizer bitwidth %d", bits))
	}
	return &Quantizer{Bits: bits}
}

// MaxMag returns the largest representable magnitude, 2^(B-1)-1.
func (q *Quantizer) MaxMag() int32 {
	return int32(1<<(q.Bits-1)) - 1
}

// Quantize scales c up by the per-vector gain and truncates to integers.
// It returns the integer codes and the gain used (needed to scale down).
// A zero vector gets gain 1.
func (q *Quantizer) Quantize(c []float32) (codes []int32, gain float64) {
	maxAbs := 0.0
	for _, v := range c {
		a := math.Abs(float64(v))
		if a > maxAbs {
			maxAbs = a
		}
	}
	gain = 1
	if maxAbs > 0 {
		gain = float64(q.MaxMag()) / maxAbs
	}
	codes = make([]int32, len(c))
	for i, v := range c {
		codes[i] = int32(float64(v) * gain) // truncation, per the paper
	}
	return codes, gain
}

// Dequantize scales integer codes back down by gain.
func (q *Quantizer) Dequantize(codes []int32, gain float64) []float32 {
	out := make([]float32, len(codes))
	inv := 1 / gain
	for i, v := range codes {
		out[i] = float32(float64(v) * inv)
	}
	return out
}

// RoundTrip quantizes and immediately dequantizes, returning the
// quantization error the receiver would see on a clean channel.
func (q *Quantizer) RoundTrip(c []float32) []float32 {
	codes, gain := q.Quantize(c)
	return q.Dequantize(codes, gain)
}
