package hdc

import (
	"math"
	"math/rand"
	"testing"

	"fhdnn/internal/tensor"
)

func TestItemMemoryDeterministicAndOrthogonal(t *testing.T) {
	a := NewItemMemory(5, 4096)
	b := NewItemMemory(5, 4096)
	// access in different orders; vectors must match
	_ = a.Get(3)
	va := a.Get(7)
	vb := b.Get(7)
	for i := range va {
		if va[i] != vb[i] {
			t.Fatal("item memory must be order-independent and seed-deterministic")
		}
	}
	if c := math.Abs(Cosine(a.Get(1), a.Get(2))); c > 0.06 {
		t.Fatalf("distinct items should be quasi-orthogonal, cos=%v", c)
	}
	if a.Len() < 3 {
		t.Fatalf("Len = %d", a.Len())
	}
	other := NewItemMemory(6, 4096)
	if same := Cosine(a.Get(7), other.Get(7)); math.Abs(same) > 0.06 {
		t.Fatalf("different seeds must give different items, cos=%v", same)
	}
}

func TestItemMemoryBadDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewItemMemory(1, 0)
}

func TestLevelMemorySimilarityDecaysLinearly(t *testing.T) {
	lm := NewLevelMemory(2, 8192, 9, 0, 1)
	base := lm.vecs[0]
	prev := 1.1
	for l := 1; l < lm.Levels; l++ {
		c := Cosine(base, lm.vecs[l])
		if c >= prev {
			t.Fatalf("similarity must decrease with level distance: level %d cos %v >= %v", l, c, prev)
		}
		prev = c
	}
	// extreme levels quasi-orthogonal
	if c := Cosine(base, lm.vecs[lm.Levels-1]); c > 0.1 {
		t.Fatalf("first and last level too similar: %v", c)
	}
	// neighbours nearly identical
	if c := Cosine(lm.vecs[3], lm.vecs[4]); c < 0.8 {
		t.Fatalf("neighbouring levels too different: %v", c)
	}
}

func TestLevelMemoryIndexing(t *testing.T) {
	lm := NewLevelMemory(3, 256, 4, 0, 1)
	if lm.LevelIndex(-5) != 0 || lm.LevelIndex(0) != 0 {
		t.Fatal("low clamp broken")
	}
	if lm.LevelIndex(5) != 3 || lm.LevelIndex(1) != 3 {
		t.Fatal("high clamp broken")
	}
	if lm.LevelIndex(0.5) != 2 {
		t.Fatalf("mid index = %d", lm.LevelIndex(0.5))
	}
	if len(lm.Level(0.5)) != 256 {
		t.Fatal("Level() length wrong")
	}
}

func TestLevelMemoryValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewLevelMemory(1, 64, 1, 0, 1) },
		func() { NewLevelMemory(1, 64, 4, 1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestRecordEncoderSeparatesClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const k, perClass, nFeat, d = 4, 25, 12, 4096
	means := tensor.Randn(rng, 1.0, k, nFeat)
	enc := NewRecordEncoder(9, d, 16, -4, 4)

	x := tensor.New(k*perClass, d)
	labels := make([]int, k*perClass)
	for c := 0; c < k; c++ {
		for s := 0; s < perClass; s++ {
			idx := c*perClass + s
			labels[idx] = c
			feats := make([]float32, nFeat)
			for j := range feats {
				feats[j] = means.At(c, j) + float32(rng.NormFloat64()*0.3)
			}
			copy(x.Data()[idx*d:(idx+1)*d], enc.Encode(feats))
		}
	}
	m := NewModel(k, d)
	m.OneShotTrain(x, labels)
	for e := 0; e < 5; e++ {
		m.RefineEpoch(x, labels)
	}
	if acc := m.Accuracy(x, labels); acc < 0.9 {
		t.Fatalf("record encoding training accuracy %v, want >= 0.9", acc)
	}
}

func TestRecordEncoderValueSensitivity(t *testing.T) {
	enc := NewRecordEncoder(10, 4096, 16, 0, 1)
	x1 := []float32{0.1, 0.9, 0.5}
	x2 := []float32{0.1, 0.9, 0.5}
	x3 := []float32{0.9, 0.1, 0.5}
	h1, h2, h3 := enc.Encode(x1), enc.Encode(x2), enc.Encode(x3)
	if Cosine(h1, h2) < 0.99 {
		t.Fatal("identical inputs must encode identically")
	}
	// With 3 features of which one is shared and level vectors that are
	// correlated by construction, moderate similarity remains; it must
	// just be clearly below identity.
	if Cosine(h1, h3) > 0.85 {
		t.Fatalf("different inputs too similar: %v", Cosine(h1, h3))
	}
}

func TestSequenceEncoderOrderSensitivity(t *testing.T) {
	se := NewSequenceEncoder(11, 8192, 2)
	ab := se.Encode([]int{1, 2, 3, 4})
	ab2 := se.Encode([]int{1, 2, 3, 4})
	ba := se.Encode([]int{4, 3, 2, 1})
	if Cosine(ab, ab2) < 0.99 {
		t.Fatal("sequence encoding must be deterministic")
	}
	if c := Cosine(ab, ba); c > 0.3 {
		t.Fatalf("reversed sequence too similar: %v", c)
	}
	// shared n-grams -> measurable similarity
	shared := se.Encode([]int{1, 2, 3, 9})
	if Cosine(ab, shared) <= Cosine(ab, ba) {
		t.Fatal("overlapping sequences should be more similar than reversed ones")
	}
}

func TestSequenceEncoderShortSequence(t *testing.T) {
	se := NewSequenceEncoder(12, 128, 3)
	h := se.Encode([]int{1, 2})
	// shorter than n-gram: all-zero before binarization; Sign maps 0 -> +1
	for _, v := range h {
		if v != 1 {
			t.Fatal("short sequence should yield the sign of the zero vector")
		}
	}
}

func TestSequenceEncoderBadNPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSequenceEncoder(1, 64, 0)
}
