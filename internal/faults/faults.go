// Package faults injects deterministic transport- and server-level
// failures for chaos-testing the federated wire protocol (package flnet).
// Real AIoT deployments see connection refusals, latency spikes,
// truncated responses, and overloaded aggregators as the normal case, not
// the exception; this package reproduces those conditions on demand, with
// all randomness derived from a seed so a failing chaos run can be
// replayed exactly.
//
// The three pieces:
//
//   - Transport: an http.RoundTripper wrapper injecting client-observed
//     faults (refused connections, latency, 5xx bursts, truncated bodies).
//   - Middleware: an http.Handler wrapper injecting server-side faults
//     (latency, 5xx bursts) in front of a healthy handler.
//   - CrashSchedule: which clients die during which round, for simulating
//     partial participation.
package faults

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"
)

// ErrInjected is the sentinel wrapped by all transport-level failures
// this package fabricates, so tests can distinguish injected faults from
// real ones.
var ErrInjected = errors.New("faults: injected failure")

// Config sets the failure mix. All probabilities are per request in
// [0, 1]; zero values disable that fault class.
type Config struct {
	// FailRate is the probability a request dies at the transport layer
	// (as if the connection were refused or reset) without ever reaching
	// the server.
	FailRate float64
	// Error5xxRate is the probability a request triggers a burst of
	// BurstLen synthesized 503 responses (the aggregator "overloaded").
	Error5xxRate float64
	// BurstLen is how many consecutive requests a 5xx burst consumes
	// (default 1).
	BurstLen int
	// TruncateRate is the probability a successful response body is cut
	// off mid-stream (Transport only).
	TruncateRate float64
	// Latency is added to every request before any other fault fires;
	// LatencyJitter adds a uniform random extra on top.
	Latency       time.Duration
	LatencyJitter time.Duration
	// Seed makes the fault sequence deterministic. Two injectors with
	// the same seed and the same request sequence make identical
	// decisions.
	Seed int64
}

// Stats counts what an injector actually did.
type Stats struct {
	Requests   int64 `json:"requests"`
	Failed     int64 `json:"failed"`
	Injected5x int64 `json:"injected5xx"`
	Truncated  int64 `json:"truncated"`
}

// injector is the shared decision engine behind Transport and Middleware.
type injector struct {
	cfg Config

	mu        sync.Mutex
	rng       *rand.Rand
	burstLeft int
	stats     Stats
}

func newInjector(cfg Config) *injector {
	return &injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// verdict is one request's fate, decided atomically under the lock so
// concurrent requests still consume the seeded stream one at a time.
type verdict struct {
	delay    time.Duration
	fail     bool
	serve5xx bool
	truncate bool
}

func (in *injector) decide() verdict {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.stats.Requests++
	v := verdict{delay: in.cfg.Latency}
	if in.cfg.LatencyJitter > 0 {
		v.delay += time.Duration(in.rng.Int63n(int64(in.cfg.LatencyJitter)))
	}
	if in.burstLeft > 0 {
		in.burstLeft--
		in.stats.Injected5x++
		v.serve5xx = true
		return v
	}
	if in.cfg.FailRate > 0 && in.rng.Float64() < in.cfg.FailRate {
		in.stats.Failed++
		v.fail = true
		return v
	}
	if in.cfg.Error5xxRate > 0 && in.rng.Float64() < in.cfg.Error5xxRate {
		burst := in.cfg.BurstLen
		if burst <= 0 {
			burst = 1
		}
		in.burstLeft = burst - 1
		in.stats.Injected5x++
		v.serve5xx = true
		return v
	}
	if in.cfg.TruncateRate > 0 && in.rng.Float64() < in.cfg.TruncateRate {
		in.stats.Truncated++
		v.truncate = true
	}
	return v
}

func (in *injector) snapshot() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// Transport is a fault-injecting http.RoundTripper. Wrap it around a real
// transport and hand it to an http.Client to make every request from that
// client subject to the configured failure mix.
type Transport struct {
	in *injector
	// Base is the transport that performs surviving requests
	// (default http.DefaultTransport).
	Base http.RoundTripper
}

// NewTransport builds a fault-injecting transport over
// http.DefaultTransport.
func NewTransport(cfg Config) *Transport {
	return &Transport{in: newInjector(cfg)}
}

// Stats reports what the transport injected so far.
func (t *Transport) Stats() Stats { return t.in.snapshot() }

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	v := t.in.decide()
	if v.delay > 0 {
		select {
		case <-req.Context().Done():
			closeBody(req)
			return nil, req.Context().Err()
		case <-time.After(v.delay):
		}
	}
	if v.fail {
		closeBody(req)
		return nil, fmt.Errorf("%w: connection refused (%s %s)", ErrInjected, req.Method, req.URL.Path)
	}
	if v.serve5xx {
		closeBody(req)
		return synthesized503(req), nil
	}
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	resp, err := base.RoundTrip(req)
	if err != nil || !v.truncate || resp.Body == nil {
		return resp, err
	}
	// Cut the body roughly in half (at least one byte short) so the
	// reader sees an unexpected EOF mid-payload.
	n := resp.ContentLength / 2
	if resp.ContentLength <= 0 {
		n = 16
	}
	resp.Body = &truncatedBody{r: io.LimitReader(resp.Body, n), c: resp.Body}
	resp.ContentLength = -1
	return resp, nil
}

// truncatedBody yields only a prefix of the real body and, on Close,
// closes the underlying connection-backed body (discarding the rest, so
// the poisoned connection is not reused).
type truncatedBody struct {
	r io.Reader
	c io.Closer
}

func (b *truncatedBody) Read(p []byte) (int, error) { return b.r.Read(p) }
func (b *truncatedBody) Close() error               { return b.c.Close() }

func closeBody(req *http.Request) {
	if req.Body != nil {
		_, _ = io.Copy(io.Discard, io.LimitReader(req.Body, 1<<20))
		_ = req.Body.Close()
	}
}

func synthesized503(req *http.Request) *http.Response {
	const body = "faults: injected 503 service unavailable"
	return &http.Response{
		Status:        "503 Service Unavailable",
		StatusCode:    http.StatusServiceUnavailable,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": []string{"text/plain"}},
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// Middleware injects server-side faults (latency and 5xx bursts; the
// truncate and fail rates do not apply on this side) in front of next.
// It lets a healthy fhdnn-server rehearse overload behavior without a
// cooperating client.
type Middleware struct {
	in   *injector
	next http.Handler
}

// NewMiddleware wraps next with the configured failure mix.
func NewMiddleware(cfg Config, next http.Handler) *Middleware {
	return &Middleware{in: newInjector(cfg), next: next}
}

// Stats reports what the middleware injected so far.
func (m *Middleware) Stats() Stats { return m.in.snapshot() }

// ServeHTTP implements http.Handler.
func (m *Middleware) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	v := m.in.decide()
	if v.delay > 0 {
		select {
		case <-r.Context().Done():
			return
		case <-time.After(v.delay):
		}
	}
	if v.fail || v.serve5xx {
		http.Error(w, "faults: injected 503 service unavailable", http.StatusServiceUnavailable)
		return
	}
	m.next.ServeHTTP(w, r)
}

// CrashSchedule maps a client index to the round during which that client
// crashes: the client participates normally through round r-1 and dies
// mid-round r (after downloading the model, before its update lands).
type CrashSchedule map[int]int

// ShouldCrash reports whether the given client is dead by the given
// round.
func (cs CrashSchedule) ShouldCrash(client, round int) bool {
	r, ok := cs[client]
	return ok && round >= r
}

// Survivors returns how many of n clients are never scheduled to crash.
func (cs CrashSchedule) Survivors(n int) int {
	alive := 0
	for i := 0; i < n; i++ {
		if _, dead := cs[i]; !dead {
			alive++
		}
	}
	return alive
}
