package faults

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// payload is what the healthy test server always answers.
const payload = "0123456789abcdef0123456789abcdef0123456789abcdef"

func healthyServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.WriteString(w, payload)
	}))
	t.Cleanup(ts.Close)
	return ts
}

func TestTransportFailRateOne(t *testing.T) {
	ts := healthyServer(t)
	tr := NewTransport(Config{FailRate: 1, Seed: 1})
	client := &http.Client{Transport: tr}
	for i := 0; i < 5; i++ {
		_, err := client.Get(ts.URL)
		if err == nil {
			t.Fatal("request should have failed")
		}
		if !errors.Is(err, ErrInjected) && !strings.Contains(err.Error(), "injected") {
			t.Fatalf("unexpected error: %v", err)
		}
	}
	st := tr.Stats()
	if st.Requests != 5 || st.Failed != 5 {
		t.Fatalf("stats %+v, want 5 requests all failed", st)
	}
}

func TestTransportClean(t *testing.T) {
	ts := healthyServer(t)
	tr := NewTransport(Config{Seed: 1})
	client := &http.Client{Transport: tr}
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil || string(body) != payload {
		t.Fatalf("body %q err %v", body, err)
	}
}

func TestTransport5xxBurst(t *testing.T) {
	ts := healthyServer(t)
	tr := NewTransport(Config{Error5xxRate: 1, BurstLen: 3, Seed: 1})
	client := &http.Client{Transport: tr}
	for i := 0; i < 4; i++ {
		resp, err := client.Get(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("request %d: status %d, want 503", i, resp.StatusCode)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if st := tr.Stats(); st.Injected5x != 4 {
		t.Fatalf("stats %+v, want 4 injected 5xx", st)
	}
}

func TestTransportBurstThenRecovers(t *testing.T) {
	// One guaranteed burst of 2, then zero probability of a new burst:
	// request 1 and 2 see 503, request 3 reaches the server.
	ts := healthyServer(t)
	tr := NewTransport(Config{Error5xxRate: 1, BurstLen: 2, Seed: 1})
	client := &http.Client{Transport: tr}
	codes := make([]int, 0, 3)
	for i := 0; i < 2; i++ {
		resp, err := client.Get(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		codes = append(codes, resp.StatusCode)
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	tr.in.mu.Lock()
	tr.in.cfg.Error5xxRate = 0 // storm passes
	tr.in.mu.Unlock()
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	codes = append(codes, resp.StatusCode)
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	want := []int{503, 503, 200}
	for i, c := range codes {
		if c != want[i] {
			t.Fatalf("codes %v, want %v", codes, want)
		}
	}
}

func TestTransportTruncation(t *testing.T) {
	ts := healthyServer(t)
	tr := NewTransport(Config{TruncateRate: 1, Seed: 1})
	client := &http.Client{Transport: tr}
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if len(body) >= len(payload) {
		t.Fatalf("body not truncated: got %d bytes of %d", len(body), len(payload))
	}
	if st := tr.Stats(); st.Truncated != 1 {
		t.Fatalf("stats %+v, want 1 truncation", st)
	}
}

func TestTransportLatency(t *testing.T) {
	ts := healthyServer(t)
	tr := NewTransport(Config{Latency: 30 * time.Millisecond, Seed: 1})
	client := &http.Client{Transport: tr}
	start := time.Now()
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("request completed in %v, latency not injected", elapsed)
	}
}

func TestTransportDeterministicAcrossSeeds(t *testing.T) {
	// Same seed, same request sequence -> identical fault decisions.
	ts := healthyServer(t)
	run := func(seed int64) []bool {
		tr := NewTransport(Config{FailRate: 0.5, Seed: seed})
		client := &http.Client{Transport: tr}
		outcomes := make([]bool, 0, 32)
		for i := 0; i < 32; i++ {
			resp, err := client.Get(ts.URL)
			outcomes = append(outcomes, err == nil)
			if err == nil {
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
		return outcomes
	}
	a, b, c := run(7), run(7), run(8)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed diverged:\n%v\n%v", a, b)
	}
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Fatal("different seeds produced identical 32-request outcome (suspicious)")
	}
}

func TestMiddleware5xx(t *testing.T) {
	mw := NewMiddleware(Config{Error5xxRate: 1, Seed: 1}, http.HandlerFunc(
		func(w http.ResponseWriter, r *http.Request) { _, _ = io.WriteString(w, "ok") }))
	ts := httptest.NewServer(mw)
	defer ts.Close()
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if st := mw.Stats(); st.Injected5x != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestMiddlewarePassThrough(t *testing.T) {
	mw := NewMiddleware(Config{Seed: 1}, http.HandlerFunc(
		func(w http.ResponseWriter, r *http.Request) { _, _ = io.WriteString(w, "ok") }))
	ts := httptest.NewServer(mw)
	defer ts.Close()
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || string(body) != "ok" {
		t.Fatalf("status %d body %q", resp.StatusCode, body)
	}
}

func TestCrashSchedule(t *testing.T) {
	cs := CrashSchedule{1: 2, 3: 1}
	cases := []struct {
		client, round int
		dead          bool
	}{
		{0, 1, false}, {0, 99, false},
		{1, 1, false}, {1, 2, true}, {1, 3, true},
		{3, 1, true},
	}
	for _, c := range cases {
		if got := cs.ShouldCrash(c.client, c.round); got != c.dead {
			t.Fatalf("ShouldCrash(%d,%d) = %v, want %v", c.client, c.round, got, c.dead)
		}
	}
	if s := cs.Survivors(8); s != 6 {
		t.Fatalf("Survivors(8) = %d, want 6", s)
	}
}
