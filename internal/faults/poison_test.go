package faults

import (
	"math"
	"testing"
)

func sampleParams(n int, scale float32) []float32 {
	p := make([]float32, n)
	for i := range p {
		p[i] = scale * float32(i%7-3)
	}
	return p
}

func l2(p []float32) float64 {
	var s float64
	for _, v := range p {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

func TestPoisonerSignFlipRaw(t *testing.T) {
	p := &Poisoner{} // zero value sign-flips
	params := sampleParams(32, 1)
	orig := append([]float32(nil), params...)
	p.Corrupt(params, nil, 1, 0)
	for i := range params {
		if params[i] != -orig[i] {
			t.Fatalf("index %d: %v, want %v", i, params[i], -orig[i])
		}
	}
}

// The delta semantics: with a reference, sign-flip reflects the model
// through the reference, so the contribution params-ref is exactly
// negated and the reference itself is a fixed point.
func TestPoisonerSignFlipDelta(t *testing.T) {
	p := &Poisoner{}
	ref := sampleParams(32, 2)
	params := sampleParams(32, 1)
	orig := append([]float32(nil), params...)
	p.Corrupt(params, ref, 1, 0)
	for i := range params {
		want := 2*ref[i] - orig[i]
		if math.Abs(float64(params[i]-want)) > 1e-6 {
			t.Fatalf("index %d: %v, want %v", i, params[i], want)
		}
	}
	same := append([]float32(nil), ref...)
	p.Corrupt(same, ref, 1, 0)
	for i := range same {
		if same[i] != ref[i] {
			t.Fatalf("a zero contribution must stay at the reference, index %d: %v vs %v",
				i, same[i], ref[i])
		}
	}
}

func TestPoisonerScale(t *testing.T) {
	p := &Poisoner{Kind: AttackScale, Lambda: -2}
	ref := sampleParams(32, 2)
	params := sampleParams(32, 1)
	orig := append([]float32(nil), params...)
	p.Corrupt(params, ref, 3, 5)
	for i := range params {
		want := ref[i] + (orig[i]-ref[i])*(-2)
		if math.Abs(float64(params[i]-want)) > 1e-5 {
			t.Fatalf("index %d: %v, want %v", i, params[i], want)
		}
	}
}

func TestPoisonerRefLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Corrupt accepted a mismatched reference")
		}
	}()
	(&Poisoner{}).Corrupt(make([]float32, 4), make([]float32, 3), 1, 0)
}

// Corrupt must be a pure function of (Seed, round, client): replaying the
// same coordinates yields bit-identical corruption, and different rounds
// or clients yield different noise.
func TestPoisonerNoiseDeterminism(t *testing.T) {
	p := &Poisoner{Kind: AttackNoise, Sigma: 0.5, Seed: 11}
	a := sampleParams(64, 1)
	b := sampleParams(64, 1)
	p.Corrupt(a, nil, 4, 2)
	p.Corrupt(b, nil, 4, 2)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("noise replay diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := sampleParams(64, 1)
	p.Corrupt(c, nil, 5, 2) // different round
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("noise stream identical across rounds")
	}
}

// Drift is the coordinated attack: every colluder in a round pushes the
// same direction, scaled to Lambda times its own honest contribution's
// norm.
func TestPoisonerDriftCoordination(t *testing.T) {
	p := &Poisoner{Kind: AttackDrift, Lambda: 2, Seed: 7}
	a := sampleParams(128, 1)
	b := sampleParams(128, 3) // different honest update, 3x the norm
	origA, origB := l2(a), l2(b)
	p.Corrupt(a, nil, 9, 0)
	p.Corrupt(b, nil, 9, 5)

	// Same direction regardless of client: cosine similarity exactly 1
	// up to float32 rounding.
	var dot float64
	for i := range a {
		dot += float64(a[i]) * float64(b[i])
	}
	cos := dot / (l2(a) * l2(b))
	if cos < 1-1e-6 {
		t.Fatalf("colluders diverged: cosine %v", cos)
	}
	if got := l2(a); math.Abs(got-2*origA) > 1e-3*origA {
		t.Fatalf("drift norm %v, want %v", got, 2*origA)
	}
	if got := l2(b); math.Abs(got-2*origB) > 1e-3*origB {
		t.Fatalf("drift norm %v, want %v", got, 2*origB)
	}

	// A different round drifts somewhere else.
	c := sampleParams(128, 1)
	p.Corrupt(c, nil, 10, 0)
	dot = 0
	for i := range a {
		dot += float64(a[i]) * float64(c[i])
	}
	if cos := dot / (l2(a) * l2(c)); cos > 0.99 {
		t.Fatalf("drift direction identical across rounds: cosine %v", cos)
	}
}

// With a reference, the drift contribution is measured and re-based
// against it: ||corrupted - ref|| = Lambda * ||orig - ref||.
func TestPoisonerDriftDelta(t *testing.T) {
	p := &Poisoner{Kind: AttackDrift, Lambda: 2, Seed: 7}
	ref := sampleParams(128, 5)
	params := append([]float32(nil), ref...)
	for i := range params {
		params[i] += float32(i%3) * 0.5 // a small honest contribution
	}
	var orig float64
	for i := range params {
		d := float64(params[i]) - float64(ref[i])
		orig += d * d
	}
	orig = math.Sqrt(orig)
	p.Corrupt(params, ref, 2, 1)
	var got float64
	for i := range params {
		d := float64(params[i]) - float64(ref[i])
		got += d * d
	}
	got = math.Sqrt(got)
	if math.Abs(got-2*orig) > 1e-2*orig {
		t.Fatalf("drift contribution norm %v, want %v", got, 2*orig)
	}
}

func TestPoisonerDriftZeroUpdate(t *testing.T) {
	p := &Poisoner{Kind: AttackDrift, Lambda: 2, Seed: 1}
	params := make([]float32, 16)
	p.Corrupt(params, nil, 1, 0)
	if got := l2(params); math.Abs(got-2) > 1e-3 {
		t.Fatalf("zero update must drift at norm Lambda x 1, got %v", got)
	}
}

func TestParseAttackRoundTrip(t *testing.T) {
	specs := map[string]string{
		"signflip":  "signflip",
		"scale":     "scale:-2",
		"scale:3.5": "scale:3.5",
		"noise":     "noise:1",
		"noise:0.1": "noise:0.1",
		"drift":     "drift:2",
		"drift:1.5": "drift:1.5",
	}
	for spec, want := range specs {
		p, err := ParseAttack(spec)
		if err != nil {
			t.Fatalf("ParseAttack(%q): %v", spec, err)
		}
		if got := p.String(); got != want {
			t.Fatalf("ParseAttack(%q).String() = %q, want %q", spec, got, want)
		}
	}
	for _, spec := range []string{"", "grad", "signflip:2", "scale:x", "noise:y", "drift:"} {
		if _, err := ParseAttack(spec); err == nil {
			t.Fatalf("ParseAttack(%q) accepted a bad spec", spec)
		}
	}
}

func TestColluders(t *testing.T) {
	a := Colluders(42, 10, 0.4)
	b := Colluders(42, 10, 0.4)
	if len(a) != 4 {
		t.Fatalf("len = %d, want 4", len(a))
	}
	for id := range a {
		if !b[id] {
			t.Fatal("Colluders not deterministic for equal seeds")
		}
		if id < 0 || id >= 10 {
			t.Fatalf("colluder id %d out of range", id)
		}
	}
	if len(Colluders(42, 10, 0)) != 0 {
		t.Fatal("frac 0 must pick nobody")
	}
	if len(Colluders(42, 10, 1)) != 10 {
		t.Fatal("frac 1 must pick everyone")
	}
}
