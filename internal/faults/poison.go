package faults

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
)

// Adversarial-client injection. The Transport/Middleware side of this
// package breaks the *channel*; a Poisoner breaks the *content*: it turns
// an honest client into a Byzantine one by mutating its locally trained
// update just before upload. The attacks are the standard model-poisoning
// repertoire, and every one is parameterized so chaos tests can dial the
// strength until a mean-based aggregator demonstrably fails while a
// robust one holds.
//
// Attacks target the client's *learning contribution* — the delta between
// its trained model and the global reference it downloaded — not the raw
// parameter vector. Sign-flipping a whole model would be trivially
// detectable (and would mostly cancel itself); sign-flipping the delta is
// the canonical stealthy attack: the upload stays model-shaped, finite,
// and norm-plausible, yet every poisoned coordinate pulls training
// backwards. Callers that have no reference pass nil and the delta
// degenerates to the raw vector.
//
// All randomness is derived from (Seed, round, client), so a poisoning
// run replays exactly; the Drift attack deliberately keys its direction
// on (Seed, round) only, which is what makes a colluding set coordinated
// — every colluder pushes the *same* adversarial vector.

// AttackKind selects the poisoning strategy.
type AttackKind int

// The supported attacks.
const (
	// AttackSignFlip negates the client's contribution (untargeted model
	// poisoning at unchanged norm — it sails through any norm gate).
	AttackSignFlip AttackKind = iota
	// AttackScale multiplies the contribution by Lambda; a negative
	// Lambda is the classic "scaled sign-flip" that drags a mean-based
	// aggregate past the reference, actively unlearning each round.
	AttackScale
	// AttackNoise adds i.i.d. Gaussian noise with standard deviation
	// Sigma to every parameter (per-client randomness).
	AttackNoise
	// AttackDrift replaces the contribution with a shared pseudorandom
	// direction scaled to Lambda times the honest contribution's norm:
	// the coordinated same-direction attack of a colluding set.
	AttackDrift
)

// Poisoner mutates client updates in place. The zero value sign-flips.
type Poisoner struct {
	Kind AttackKind
	// Lambda is the scale factor (AttackScale) or the drift magnitude as
	// a multiple of the honest update's norm (AttackDrift).
	Lambda float64
	// Sigma is the noise standard deviation (AttackNoise).
	Sigma float64
	// Seed makes the attack sequence deterministic and replayable.
	Seed int64
}

// String renders the attack as the spec ParseAttack accepts.
func (p *Poisoner) String() string {
	switch p.Kind {
	case AttackScale:
		return "scale:" + strconv.FormatFloat(p.Lambda, 'g', -1, 64)
	case AttackNoise:
		return "noise:" + strconv.FormatFloat(p.Sigma, 'g', -1, 64)
	case AttackDrift:
		return "drift:" + strconv.FormatFloat(p.Lambda, 'g', -1, 64)
	default:
		return "signflip"
	}
}

// Corrupt applies the attack to params in place. ref is the global model
// the client trained from: the attack corrupts the contribution
// params-ref and re-bases the result on ref, so the upload remains a
// plausible full model. A nil ref attacks the raw vector (zero
// reference). round and client key the deterministic random streams;
// colluding clients calling Corrupt with the same round produce identical
// Drift vectors regardless of client.
func (p *Poisoner) Corrupt(params, ref []float32, round, client int) {
	if ref != nil && len(ref) != len(params) {
		panic("faults: Corrupt reference length mismatch")
	}
	at := func(i int) float64 {
		if ref == nil {
			return 0
		}
		return float64(ref[i])
	}
	switch p.Kind {
	case AttackScale:
		l := p.Lambda
		for i, v := range params {
			r := at(i)
			params[i] = float32(r + (float64(v)-r)*l)
		}
	case AttackNoise:
		rng := attackRNG(p.Seed, round, client)
		for i, v := range params {
			params[i] = v + float32(rng.NormFloat64()*p.Sigma)
		}
	case AttackDrift:
		var orig float64
		for i, v := range params {
			d := float64(v) - at(i)
			orig += d * d
		}
		orig = math.Sqrt(orig)
		if orig == 0 {
			orig = 1 // a zero contribution still drifts somewhere
		}
		// Direction keyed on the round only: every colluder pushes the
		// same vector, the worst case for a mean-based aggregator.
		rng := attackRNG(p.Seed, round, -1)
		dir := make([]float64, len(params))
		var gnorm float64
		for i := range dir {
			g := rng.NormFloat64()
			dir[i] = g
			gnorm += g * g
		}
		gnorm = math.Sqrt(gnorm)
		if gnorm == 0 {
			return
		}
		s := p.Lambda * orig / gnorm
		for i := range params {
			params[i] = float32(at(i) + dir[i]*s)
		}
	default: // AttackSignFlip
		for i, v := range params {
			r := at(i)
			params[i] = float32(r - (float64(v) - r))
		}
	}
}

// attackRNG derives the deterministic stream for one (round, client)
// poisoning decision. The mixers are arbitrary odd constants, distinct
// from fedcore.ClientRNG's so an attack never replays a training stream.
func attackRNG(seed int64, round, client int) *rand.Rand {
	h := seed
	h ^= (int64(round) + 1) * 0x5851F42D4C957F2D
	h ^= (int64(client) + 2) * -0x61C8864680B583EB
	return rand.New(rand.NewSource(h))
}

// ParseAttack resolves an attack spec:
//
//	signflip          negate the update
//	scale:L           multiply by L (negative L flips and scales)
//	noise:S           add Gaussian noise with stddev S (default 1)
//	drift:L           coordinated drift at L times the honest norm (default 2)
//
// The caller seeds the returned Poisoner.
func ParseAttack(spec string) (*Poisoner, error) {
	name, arg, hasArg := strings.Cut(spec, ":")
	parse := func(dflt float64) (float64, error) {
		if !hasArg {
			return dflt, nil
		}
		v, err := strconv.ParseFloat(arg, 64)
		if err != nil {
			return 0, fmt.Errorf("faults: bad attack parameter in %q", spec)
		}
		return v, nil
	}
	switch name {
	case "signflip":
		if hasArg {
			return nil, fmt.Errorf("faults: signflip takes no parameter (got %q)", spec)
		}
		return &Poisoner{Kind: AttackSignFlip}, nil
	case "scale":
		l, err := parse(-2)
		if err != nil {
			return nil, err
		}
		return &Poisoner{Kind: AttackScale, Lambda: l}, nil
	case "noise":
		s, err := parse(1)
		if err != nil {
			return nil, err
		}
		return &Poisoner{Kind: AttackNoise, Sigma: s}, nil
	case "drift":
		l, err := parse(2)
		if err != nil {
			return nil, err
		}
		return &Poisoner{Kind: AttackDrift, Lambda: l}, nil
	}
	return nil, fmt.Errorf("faults: unknown attack %q (want signflip, scale:L, noise:S, drift:L)", spec)
}

// Colluders deterministically picks round(frac*n) of n client ids as the
// colluding poisoned set. The same (seed, n, frac) always yields the same
// set, so a chaos run replays exactly.
func Colluders(seed int64, n int, frac float64) map[int]bool {
	k := int(frac*float64(n) + 0.5)
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	bad := make(map[int]bool, k)
	for _, id := range perm[:k] {
		bad[id] = true
	}
	return bad
}
