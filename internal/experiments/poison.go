package experiments

import (
	"fmt"

	"fhdnn/internal/faults"
	"fhdnn/internal/fedcore"
	"fhdnn/internal/fl"
)

// Poisoning attack/defense matrix. The paper's robustness story (Sec. 4.3)
// is about channel noise; this driver probes the complementary adversary:
// Byzantine clients that train honestly and then corrupt their upload.
// Every (aggregator, attack) cell runs the same federation — same data,
// partition, sampling streams, colluder set — so the only difference
// between a clean and a poisoned column is the Poisoner, and the only
// difference between rows is the server's commit rule.

// PoisonRow is one aggregation policy's accuracy under each attack.
type PoisonRow struct {
	Aggregator string
	// Clean is the final accuracy with every client honest.
	Clean float64
	// ByAttack maps attack spec -> final accuracy with the colluding
	// fraction running that attack.
	ByAttack map[string]float64
	// Attacks preserves column order.
	Attacks []string
}

// WorstDelta is the largest accuracy drop from Clean across attacks
// (positive = degradation).
func (r PoisonRow) WorstDelta() float64 {
	worst := 0.0
	for _, acc := range r.ByAttack {
		if d := r.Clean - acc; d > worst {
			worst = d
		}
	}
	return worst
}

// DefaultPoisonAttacks is the attack battery the chaos CI runs: norm-
// preserving sign flips, norm-doubling scaled flips, and the coordinated
// same-direction drift of a colluding set.
func DefaultPoisonAttacks() []string { return []string{"signflip", "scale:-2", "drift:2"} }

// DefaultPoisonAggregators pits the mean-based rules against the robust
// ones. trimmed:0.25 sits past its breakdown point at the default 40%
// colluding fraction (it trims 3 of 4 attackers per coordinate at n=10),
// trimmed:0.4 covers it — the pair shows the Yin et al. trim-fraction
// condition empirically.
func DefaultPoisonAggregators() []string {
	return []string{"bundle", "fedavg", "median", "trimmed:0.25", "trimmed:0.4"}
}

// PoisonRobustness runs the attack/defense matrix at this scale with a
// colluding fraction frac of the fleet. Every client participates every
// round (ClientFraction 1), so the Byzantine fraction seen by the
// aggregator each round is exactly frac.
//
// Robust aggregation only has something to aggregate robustly when the
// honest majority agrees: per-coordinate medians and trims select among
// client values, so if honest updates disagree more than they agree, the
// Byzantine minority biases every selection. At the CI scale's 3
// examples/class/client the honest refinement deltas are essentially
// uncorrelated noise; the driver therefore enforces a data floor so each
// client sees enough examples for the honest cluster to be tight.
func PoisonRobustness(s Scale, frac float64, aggSpecs, attacks []string) []PoisonRow {
	if s.TrainPerClass < 250 {
		s.TrainPerClass = 250
	}
	train, test := s.BuildDataset("cifar10")
	fhd := s.NewFHDnn(train)
	encoded := fhd.EncodeDataset(train)
	testEnc := fhd.EncodeDataset(test)
	part := s.Partition(train, true, s.Seed)
	colluders := faults.Colluders(s.Seed, s.NumClients, frac)

	run := func(aggSpec, attackSpec string) float64 {
		agg, err := fedcore.ParseAggregator(aggSpec)
		if err != nil {
			panic(fmt.Sprintf("experiments: bad aggregator %q: %v", aggSpec, err))
		}
		cfg := s.FLConfig(s.Seed)
		cfg.ClientFraction = 1
		t := &fl.HDTrainer{
			Cfg:        cfg,
			Encoded:    encoded,
			Labels:     train.Labels,
			TestEnc:    testEnc,
			TestLabels: test.Labels,
			NumClasses: train.NumClasses,
			Part:       part,
			Agg:        agg,
		}
		if attackSpec != "" {
			p, err := faults.ParseAttack(attackSpec)
			if err != nil {
				panic(fmt.Sprintf("experiments: bad attack %q: %v", attackSpec, err))
			}
			p.Seed = s.Seed
			t.TamperUpdate = func(round, id int, params, global []float32) {
				if colluders[id] {
					p.Corrupt(params, global, round, id)
				}
			}
		}
		hist, _ := t.Run()
		return hist.FinalAccuracy()
	}

	rows := make([]PoisonRow, 0, len(aggSpecs))
	for _, aggSpec := range aggSpecs {
		row := PoisonRow{
			Aggregator: aggSpec,
			Clean:      run(aggSpec, ""),
			ByAttack:   make(map[string]float64, len(attacks)),
			Attacks:    attacks,
		}
		for _, attack := range attacks {
			row.ByAttack[attack] = run(aggSpec, attack)
		}
		rows = append(rows, row)
	}
	return rows
}

// PoisonTable renders the matrix: one row per aggregation policy, one
// column per attack, plus the worst-case drop.
func PoisonTable(rows []PoisonRow, frac float64) *Table {
	t := &Table{
		Title:  fmt.Sprintf("Byzantine robustness: final accuracy with %.0f%% colluding poisoners", frac*100),
		Header: []string{"aggregator", "clean"},
	}
	if len(rows) > 0 {
		for _, a := range rows[0].Attacks {
			t.Header = append(t.Header, a)
		}
		t.Header = append(t.Header, "worst drop")
	}
	for _, r := range rows {
		cells := []interface{}{r.Aggregator, r.Clean}
		for _, a := range r.Attacks {
			cells = append(cells, r.ByAttack[a])
		}
		cells = append(cells, r.WorstDelta())
		t.AddRowf(cells...)
	}
	return t
}
