package experiments

import "testing"

func TestAsyncVsSync(t *testing.T) {
	s := tiny()
	s.Rounds = 8
	rows := AsyncVsSync(s)
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	sync, async := rows[0], rows[1]
	if sync.Mode != "synchronous" || async.Mode != "asynchronous" {
		t.Fatal("row order")
	}
	if async.FinalAccuracy < 0.4 {
		t.Fatalf("async accuracy %v collapsed", async.FinalAccuracy)
	}
	// the headline: async reaches the shared target sooner in virtual time
	if sync.TimeToTargetSec > 0 && async.TimeToTargetSec > 0 &&
		async.TimeToTargetSec >= sync.TimeToTargetSec {
		t.Fatalf("async %vs should beat sync %vs", async.TimeToTargetSec, sync.TimeToTargetSec)
	}
	_ = AsyncTable(rows).String()
}
