package experiments

import (
	"fmt"

	"fhdnn/internal/channel"
	"fhdnn/internal/core"
)

// Fig8Condition identifies one unreliable-channel sub-experiment.
type Fig8Condition string

// The three network error models of Sec. 3.5 / Fig. 8.
const (
	Fig8PacketLoss Fig8Condition = "packetloss"
	Fig8Gaussian   Fig8Condition = "gaussian"
	Fig8BitErrors  Fig8Condition = "biterrors"
)

// Fig8Row is one point of Figure 8: final accuracy of each model under one
// channel condition and data distribution.
type Fig8Row struct {
	Condition    Fig8Condition
	Level        float64 // loss rate, SNR dB, or BER depending on Condition
	Distribution string
	FHDnnAcc     float64
	CNNAcc       float64
}

// Fig8Levels selects the sweep points per condition.
type Fig8Levels struct {
	PacketLoss []float64 // loss rates
	SNRdB      []float64 // Gaussian noise levels
	BER        []float64 // bit error rates
}

// DefaultFig8Levels mirrors the paper's sweep ranges.
func DefaultFig8Levels() Fig8Levels {
	return Fig8Levels{
		PacketLoss: []float64{0.01, 0.1, 0.2, 0.3, 0.5},
		SNRdB:      []float64{5, 10, 15, 20, 25, 30},
		BER:        []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2},
	}
}

// SmallFig8Levels is a reduced sweep for fast runs.
func SmallFig8Levels() Fig8Levels {
	return Fig8Levels{
		PacketLoss: []float64{0.01, 0.2, 0.5},
		SNRdB:      []float64{5, 15, 25},
		BER:        []float64{1e-5, 1e-4, 1e-3},
	}
}

// fhdnnChannel builds the channel as FHDnn's uplink sees it; bit errors go
// through the paper's integer quantizer (Sec. 3.5.2) with per-class blocks.
func fhdnnChannel(c Fig8Condition, level float64, hdDim int) channel.Channel {
	switch c {
	case Fig8PacketLoss:
		return channel.PacketLoss{Rate: level, PacketBytes: channel.DefaultPacketBytes}
	case Fig8Gaussian:
		return channel.AWGN{SNRdB: level}
	case Fig8BitErrors:
		return channel.BitErrorQuantized{PE: level, Bits: 32, BlockLen: hdDim}
	}
	panic(fmt.Sprintf("experiments: unknown condition %q", c))
}

// cnnChannel builds the channel for the CNN baseline; bit errors hit raw
// IEEE-754 float32 weights, the paper's failure mode.
func cnnChannel(c Fig8Condition, level float64) channel.Channel {
	switch c {
	case Fig8PacketLoss:
		return channel.PacketLoss{Rate: level, PacketBytes: channel.DefaultPacketBytes}
	case Fig8Gaussian:
		return channel.AWGN{SNRdB: level}
	case Fig8BitErrors:
		return channel.BitErrorFloat32{PE: level}
	}
	panic(fmt.Sprintf("experiments: unknown condition %q", c))
}

// Fig8Unreliable reproduces Figure 8 on the CIFAR-like dataset with the
// paper's hyperparameters (E=2, C=0.2, B=10), for both IID and non-IID
// splits, across all three error models.
func Fig8Unreliable(s Scale, levels Fig8Levels, distributions []string) []Fig8Row {
	if len(distributions) == 0 {
		distributions = []string{"iid", "noniid"}
	}
	train, test := s.BuildDataset("cifar10")
	var rows []Fig8Row
	run := func(cond Fig8Condition, level float64, dist string) {
		iid := dist == "iid"
		part := s.Partition(train, iid, s.Seed+30)
		cfg := s.FLConfig(s.Seed + 31)

		hdCfg := cfg
		hdCfg.Uplink = fhdnnChannel(cond, level, s.HDDim)
		f := s.NewFHDnn(train)
		hdRes := f.TrainFederated(train, test, part, hdCfg)

		cnnCfg := cfg
		cnnCfg.Uplink = cnnChannel(cond, level)
		b := s.NewCNNBaseline("cifar10", train)
		cnnHist, _ := core.TrainFederatedCNN(b, train, test, part, cnnCfg)

		rows = append(rows, Fig8Row{
			Condition: cond, Level: level, Distribution: dist,
			FHDnnAcc: hdRes.History.FinalAccuracy(),
			CNNAcc:   cnnHist.FinalAccuracy(),
		})
	}
	for _, dist := range distributions {
		for _, l := range levels.PacketLoss {
			run(Fig8PacketLoss, l, dist)
		}
		for _, l := range levels.SNRdB {
			run(Fig8Gaussian, l, dist)
		}
		for _, l := range levels.BER {
			run(Fig8BitErrors, l, dist)
		}
	}
	return rows
}

// Fig8Tables renders one table per condition.
func Fig8Tables(rows []Fig8Row) []*Table {
	titles := map[Fig8Condition]string{
		Fig8PacketLoss: "Fig 8a: accuracy under packet loss (CIFAR-like, E=2 C=0.2 B=10)",
		Fig8Gaussian:   "Fig 8b: accuracy under Gaussian noise",
		Fig8BitErrors:  "Fig 8c: accuracy under bit errors",
	}
	levelName := map[Fig8Condition]string{
		Fig8PacketLoss: "loss rate",
		Fig8Gaussian:   "SNR (dB)",
		Fig8BitErrors:  "BER",
	}
	var out []*Table
	for _, cond := range []Fig8Condition{Fig8PacketLoss, Fig8Gaussian, Fig8BitErrors} {
		t := &Table{Title: titles[cond],
			Header: []string{levelName[cond], "dist", "FHDnn acc", "CNN acc"}}
		for _, r := range rows {
			if r.Condition == cond {
				t.AddRowf(r.Level, r.Distribution, r.FHDnnAcc, r.CNNAcc)
			}
		}
		if len(t.Rows) > 0 {
			out = append(out, t)
		}
	}
	return out
}
