package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a printable experiment result: a title, a header row, and data
// rows. All drivers return their numbers this way so the CLI, examples,
// and benchmarks share one rendering path.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddRowf appends a row, formatting each value with %v or the given verb
// for floats.
func (t *Table) AddRowf(values ...interface{}) {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			cells[i] = fmt.Sprintf("%.4g", x)
		case float32:
			cells[i] = fmt.Sprintf("%.4g", x)
		default:
			cells[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// WriteCSV emits the table as CSV (header row first) for external
// plotting tools.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return fmt.Errorf("experiments: write csv header: %w", err)
	}
	for i, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("experiments: write csv row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// Series is a named numeric curve (e.g. accuracy per round), used by the
// figure drivers that the paper plots as lines.
type Series struct {
	Name   string
	Values []float64
}

// CurveTable renders several same-length series side by side with an index
// column.
func CurveTable(title, indexName string, index []float64, series ...Series) *Table {
	t := &Table{Title: title, Header: []string{indexName}}
	for _, s := range series {
		t.Header = append(t.Header, s.Name)
	}
	for i := range index {
		row := []string{fmt.Sprintf("%.4g", index[i])}
		for _, s := range series {
			if i < len(s.Values) {
				row = append(row, fmt.Sprintf("%.4f", s.Values[i]))
			} else {
				row = append(row, "-")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// MeanAndSpread reduces a set of same-length curves to their pointwise
// mean, min, and max — the "smoothed conditional mean" plus spread band the
// paper draws in Fig. 6.
func MeanAndSpread(curves [][]float64) (mean, lo, hi []float64) {
	if len(curves) == 0 {
		return nil, nil, nil
	}
	n := len(curves[0])
	mean = make([]float64, n)
	lo = make([]float64, n)
	hi = make([]float64, n)
	for i := 0; i < n; i++ {
		lo[i] = curves[0][i]
		hi[i] = curves[0][i]
		for _, c := range curves {
			v := c[i]
			mean[i] += v
			if v < lo[i] {
				lo[i] = v
			}
			if v > hi[i] {
				hi[i] = v
			}
		}
		mean[i] /= float64(len(curves))
	}
	return mean, lo, hi
}
