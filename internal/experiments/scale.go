// Package experiments contains one driver per table and figure of the FHDnn
// paper's evaluation (Sec. 4). Each driver builds its workload from a Scale
// (small CI-friendly defaults or paper-shaped settings), runs FHDnn and the
// CNN comparator through identical data, partitions, and channels, and
// returns structured rows that the CLI, the examples, and the benchmark
// harness print.
package experiments

import (
	"fmt"
	"math/rand"
	"runtime"

	"fhdnn/internal/core"
	"fhdnn/internal/dataset"
	"fhdnn/internal/fl"
	"fhdnn/internal/nn"
)

// newSeededRand is a shorthand for building deterministic generators.
func newSeededRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Scale is the knob set that trades fidelity for runtime. The paper's
// setup (32x32 CIFAR, ResNet-18 at width 64, 100 clients, 100 rounds,
// d=10000) takes days of pure-Go CPU time; Small() reproduces every
// comparison shape in seconds.
type Scale struct {
	ImgSize       int
	TrainPerClass int
	TestPerClass  int
	NumClients    int
	Rounds        int
	HDDim         int
	ExtractWidth  int // random-conv feature extractor width
	CNNBaseWidth  int // ResNet base width for the FedAvg comparator
	CNNBlocks     []int
	LR            float64
	Momentum      float64
	Seed          int64
}

// Small returns the fast defaults used by tests and benchmarks.
func Small() Scale {
	return Scale{
		ImgSize:       8,
		TrainPerClass: 30,
		TestPerClass:  10,
		NumClients:    10,
		Rounds:        12,
		HDDim:         2048,
		ExtractWidth:  8,
		CNNBaseWidth:  4,
		CNNBlocks:     []int{1, 1},
		LR:            0.05,
		Momentum:      0.9,
		Seed:          1,
	}
}

// Medium returns a heavier configuration for overnight runs.
func Medium() Scale {
	s := Small()
	s.ImgSize = 16
	s.TrainPerClass = 100
	s.TestPerClass = 25
	s.NumClients = 20
	s.Rounds = 40
	s.HDDim = 4096
	s.ExtractWidth = 8
	s.CNNBaseWidth = 8
	s.CNNBlocks = []int{1, 1, 1}
	return s
}

// Paper returns the paper-shaped configuration (32x32, 100 clients,
// 100 rounds, d=10000, ResNet-18). Running the full CNN sweeps at this
// scale in pure Go takes days; it exists so the harness can be pointed at
// the original operating point.
func Paper() Scale {
	return Scale{
		ImgSize:       32,
		TrainPerClass: 500,
		TestPerClass:  100,
		NumClients:    100,
		Rounds:        100,
		HDDim:         10000,
		ExtractWidth:  8,
		CNNBaseWidth:  64,
		CNNBlocks:     []int{2, 2, 2, 2},
		LR:            0.05,
		Momentum:      0.9,
		Seed:          1,
	}
}

// DatasetNames lists the three image benchmarks of the paper, in its order.
var DatasetNames = []string{"mnist", "fashion", "cifar10"}

// BuildDataset materializes one of the paper's datasets at this scale.
func (s Scale) BuildDataset(name string) (train, test *dataset.Dataset) {
	switch name {
	case "mnist":
		return dataset.GenerateImages(dataset.MNISTLike(s.ImgSize, s.TrainPerClass, s.TestPerClass, s.Seed))
	case "fashion":
		return dataset.GenerateImages(dataset.FashionMNISTLike(s.ImgSize, s.TrainPerClass, s.TestPerClass, s.Seed+1))
	case "cifar10":
		return dataset.GenerateImages(dataset.CIFAR10Like(s.ImgSize, s.TrainPerClass, s.TestPerClass, s.Seed+2))
	default:
		panic(fmt.Sprintf("experiments: unknown dataset %q", name))
	}
}

// Partition builds the IID or pathological non-IID client split used
// throughout the paper.
func (s Scale) Partition(train *dataset.Dataset, iid bool, seed int64) dataset.Partition {
	rng := rand.New(rand.NewSource(seed))
	if iid {
		return dataset.PartitionIID(train.Len(), s.NumClients, rng)
	}
	return dataset.PartitionShards(train.Labels, s.NumClients, 2, rng)
}

// NewFHDnn assembles an FHDnn instance for a dataset at this scale, with
// the shared random-conv extractor (see DESIGN.md substitution #1).
func (s Scale) NewFHDnn(train *dataset.Dataset) *core.FHDnn {
	ext := core.NewRandomConvExtractor(s.Seed, train.X.Dim(1), s.ExtractWidth, s.ImgSize)
	cfg := core.Config{HDDim: s.HDDim, NumClasses: train.NumClasses, Seed: s.Seed, Binarize: true}
	return core.New(ext, cfg)
}

// NewCNNBaseline assembles the FedAvg comparator: the paper uses the
// 2-conv/2-FC network for MNIST and ResNet-18 for Fashion/CIFAR.
func (s Scale) NewCNNBaseline(name string, train *dataset.Dataset) core.CNNBaseline {
	if name == "mnist" {
		return core.NewMNISTCNNBaseline(nn.MNISTCNNConfig{
			InChannels: train.X.Dim(1), ImgSize: s.ImgSize, NumClasses: train.NumClasses,
			C1: 2 * s.CNNBaseWidth, C2: 4 * s.CNNBaseWidth, Hidden: 8 * s.CNNBaseWidth,
		}, s.LR, s.Momentum)
	}
	return core.NewResNetBaseline(nn.ResNetConfig{
		InChannels: train.X.Dim(1), NumClasses: train.NumClasses,
		BaseWidth: s.CNNBaseWidth, Blocks: s.CNNBlocks,
	}, s.LR, s.Momentum)
}

// FLConfig returns the fl.Config at this scale for the paper's default
// hyperparameters (E=2, C=0.2, B=10).
// Client simulation is parallelized across cores; results are
// worker-count independent by construction (see fl.Config.Parallel).
func (s Scale) FLConfig(seed int64) fl.Config {
	workers := runtime.NumCPU()
	if workers > 8 {
		workers = 8
	}
	return fl.Config{
		NumClients:     s.NumClients,
		ClientFraction: 0.2,
		LocalEpochs:    2,
		BatchSize:      10,
		Rounds:         s.Rounds,
		Seed:           seed,
		Parallel:       workers,
	}
}
