package experiments

import "testing"

func TestFleetRoundTime(t *testing.T) {
	cfg := DefaultFleet()
	cfg.Rounds = 100
	rows := FleetRoundTime(cfg)
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	fhd, cnn := rows[0], rows[1]
	// With slow devices in the fleet, round time is compute-dominated and
	// the per-round gap follows Table 1's RPi ratio (~1.5-1.7x); the big
	// win comes from needing ~3x fewer rounds.
	if cnn.MeanRoundSec < 1.4*fhd.MeanRoundSec {
		t.Fatalf("CNN round %v should exceed FHDnn %v by the Table-1 ratio", cnn.MeanRoundSec, fhd.MeanRoundSec)
	}
	if cnn.TotalHours < 4*fhd.TotalHours {
		t.Fatalf("end-to-end: CNN %vh vs FHDnn %vh, want ~5x", cnn.TotalHours, fhd.TotalHours)
	}
	// with 70% slow devices and 20 participants, nearly every round is
	// straggler-limited
	if fhd.StragglerShare < 0.9 {
		t.Fatalf("straggler share %v, want ~1", fhd.StragglerShare)
	}
	if fhd.P95RoundSec < fhd.MeanRoundSec-1e-6 {
		t.Fatal("p95 cannot undercut the mean")
	}
	if fhd.TotalHours >= cnn.TotalHours {
		t.Fatal("FHDnn total time must win")
	}
	_ = FleetTable(cfg, rows).String()
}

func TestFleetAllFast(t *testing.T) {
	cfg := DefaultFleet()
	cfg.SlowFraction = 0
	cfg.Rounds = 50
	rows := FleetRoundTime(cfg)
	if rows[0].StragglerShare != 0 {
		t.Fatalf("no slow devices but straggler share %v", rows[0].StragglerShare)
	}
}

func TestFleetValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FleetRoundTime(FleetConfig{})
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if got := percentile(xs, 0.5); got != 3 {
		t.Fatalf("median = %v", got)
	}
	if got := percentile(xs, 1.0); got != 5 {
		t.Fatalf("max = %v", got)
	}
	// input must not be mutated
	if xs[0] != 5 {
		t.Fatal("percentile mutated its input")
	}
}
