package experiments

import (
	"fmt"
	"math/rand"

	"fhdnn/internal/fl"
)

// AsyncRow compares synchronous federated bundling against asynchronous
// staleness-weighted aggregation on the same heterogeneous fleet: the
// straggler tax is paid per round in the synchronous case and amortized
// away in the asynchronous one.
type AsyncRow struct {
	Mode            string
	FinalAccuracy   float64
	TimeToTargetSec float64 // virtual seconds to reach the shared target
	Target          float64
}

// AsyncVsSync builds a 70%-slow/30%-fast fleet (delays in virtual seconds,
// shaped like the Table 1 RPi/Jetson FHDnn times), trains both ways on the
// same CIFAR-like split, and reports time-to-target in virtual time.
func AsyncVsSync(s Scale) []AsyncRow {
	train, test := s.BuildDataset("cifar10")
	part := s.Partition(train, true, s.Seed+90)
	f := s.NewFHDnn(train)
	encoded := f.EncodeDataset(train)
	testEnc := f.EncodeDataset(test)

	const slowDelay, fastDelay = 859.0, 16.0 // Table 1 FHDnn client times
	rng := rand.New(rand.NewSource(s.Seed + 91))
	delays := make([]float64, s.NumClients)
	for i := range delays {
		if rng.Float64() < 0.7 {
			delays[i] = slowDelay
		} else {
			delays[i] = fastDelay
		}
	}

	// --- synchronous: rounds close on the slowest participant ---
	syncTrainer := &fl.HDTrainer{
		Cfg:        s.FLConfig(s.Seed + 92),
		Encoded:    encoded,
		Labels:     train.Labels,
		TestEnc:    testEnc,
		TestLabels: test.Labels,
		NumClasses: train.NumClasses,
		Part:       part,
	}
	syncHist, _ := syncTrainer.Run()
	// Virtual duration of a synchronous round: the max over its
	// participants. The trainer's sampling stream is internal, so use the
	// expectation over the fleet composition: with k participants drawn
	// from a 70%-slow fleet, a round is straggler-paced with probability
	// 1-(0.3)^k (~1 for the paper's k=20).
	participants := int(0.2*float64(s.NumClients) + 0.5)
	if participants < 1 {
		participants = 1
	}
	pAllFast := 1.0
	for i := 0; i < participants; i++ {
		pAllFast *= 0.3
	}
	expRound := slowDelay*(1-pAllFast) + fastDelay*pAllFast

	target := 0.9 * syncHist.BestAccuracy()
	syncRounds := syncHist.RoundsToAccuracy(target)
	syncTime := -1.0
	if syncRounds > 0 {
		syncTime = float64(syncRounds) * expRound
	}

	// --- asynchronous ---
	asyncTrainer := &fl.AsyncHDTrainer{
		Encoded:        encoded,
		Labels:         train.Labels,
		TestEnc:        testEnc,
		TestLabels:     test.Labels,
		NumClasses:     train.NumClasses,
		Part:           part,
		Delay:          delays,
		Horizon:        expRound * float64(s.Rounds),
		LocalEpochs:    2,
		StalenessAlpha: 0.5,
		EvalEvery:      fastDelay,
		Seed:           s.Seed + 93,
	}
	asyncRes := asyncTrainer.Run()

	return []AsyncRow{
		{Mode: "synchronous", FinalAccuracy: syncHist.FinalAccuracy(),
			TimeToTargetSec: syncTime, Target: target},
		{Mode: "asynchronous", FinalAccuracy: asyncRes.FinalAccuracy(),
			TimeToTargetSec: asyncRes.TimeToAccuracy(target), Target: target},
	}
}

// AsyncTable renders the comparison.
func AsyncTable(rows []AsyncRow) *Table {
	t := &Table{
		Title:  "Extension: async staleness-weighted bundling vs synchronous rounds (70% slow fleet)",
		Header: []string{"mode", "final acc", "time to target (s)", "target"},
	}
	for _, r := range rows {
		tt := "-"
		if r.TimeToTargetSec >= 0 {
			tt = fmt.Sprintf("%.0f", r.TimeToTargetSec)
		}
		t.AddRow(r.Mode, fmt.Sprintf("%.4g", r.FinalAccuracy), tt, fmt.Sprintf("%.3g", r.Target))
	}
	return t
}
