package experiments

import (
	"strings"
	"testing"
)

func TestReplicateAcrossSeeds(t *testing.T) {
	s := tiny()
	s.Rounds = 5
	rows := Replicate(s, "cifar10", []int64{1, 2, 3})
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	hd, cnn := rows[0], rows[1]
	if hd.Seeds != 3 || cnn.Seeds != 3 {
		t.Fatal("seed count wrong")
	}
	if hd.Min > hd.Mean || hd.Mean > hd.Max {
		t.Fatalf("ordering broken: %+v", hd)
	}
	if hd.Std < 0 {
		t.Fatalf("negative std: %v", hd.Std)
	}
	// FHDnn must dominate across seeds, not just on one lucky draw.
	if hd.Mean <= cnn.Mean {
		t.Fatalf("FHDnn mean %v should beat CNN mean %v", hd.Mean, cnn.Mean)
	}
	if hd.Min < 0.3 {
		t.Fatalf("FHDnn worst seed %v too weak", hd.Min)
	}
	_ = ReplicateTable(rows).String()
}

func TestReplicateDefaultSeeds(t *testing.T) {
	s := tiny()
	s.Rounds = 3
	rows := Replicate(s, "mnist", nil)
	if rows[0].Seeds != 3 {
		t.Fatalf("default seeds = %d, want 3", rows[0].Seeds)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	r := summarize("m", "d", nil)
	if r.Seeds != 0 || r.Mean != 0 {
		t.Fatalf("empty summary %+v", r)
	}
	one := summarize("m", "d", []float64{0.7})
	if one.Std != 0 || one.Mean != 0.7 || one.Min != 0.7 || one.Max != 0.7 {
		t.Fatalf("single-seed summary %+v", one)
	}
}

func TestLPWANBudgetShape(t *testing.T) {
	rows := LPWANBudget()
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want SF7..SF12", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].DataRate >= rows[i-1].DataRate {
			t.Fatal("data rate must fall with spreading factor")
		}
	}
	out := LPWANTable(rows).String()
	if !strings.Contains(out, "SF") || !strings.Contains(out, "b/s") {
		t.Fatal("table rendering broken")
	}
}
