package experiments

import (
	"fmt"
	"math/rand"

	"fhdnn/internal/device"
	"fhdnn/internal/link"
)

// FleetRow summarizes synchronous-round timing for one model over a mixed
// device fleet. Synchronous FedAvg waits for the slowest sampled client
// (the straggler), so round time is the max over participants of local
// compute plus upload; heterogeneous fleets are dominated by their weakest
// members.
type FleetRow struct {
	Model          string
	MeanRoundSec   float64
	P95RoundSec    float64
	StragglerShare float64 // fraction of rounds where the slowest device class set the pace
	TotalHours     float64 // across the model's rounds-to-convergence
}

// FleetConfig describes the mixed fleet.
type FleetConfig struct {
	NumClients     int
	SlowFraction   float64 // fraction of clients that are Raspberry Pi class
	ClientFraction float64 // participants per round (paper C)
	Rounds         int     // sampled rounds for the statistics
	FHDnnRounds    int     // rounds-to-convergence used for total time
	CNNRounds      int
	Seed           int64
}

// DefaultFleet mirrors the paper's setting: 100 clients, C=0.2, with 70%
// slow devices.
func DefaultFleet() FleetConfig {
	return FleetConfig{
		NumClients: 100, SlowFraction: 0.7, ClientFraction: 0.2,
		Rounds: 200, FHDnnRounds: 25, CNNRounds: 75, Seed: 1,
	}
}

// FleetRoundTime simulates synchronous rounds over a mixed RPi/Jetson
// fleet using the calibrated device models and the paper's LTE link.
func FleetRoundTime(cfg FleetConfig) []FleetRow {
	if cfg.NumClients <= 0 || cfg.Rounds <= 0 {
		panic(fmt.Sprintf("experiments: invalid fleet config %+v", cfg))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	ref := device.PaperReference()
	rpi, jetson := device.RaspberryPi3(), device.JetsonNano()
	lte := link.PaperLTE()

	// per-device-class per-round times
	type classTimes struct{ fhd, cnn float64 }
	upFHD := link.UploadTime(400_000, lte.ErrorAdmittingRate).Seconds()
	upCNN := link.UploadTime(22_000_000, lte.ErrorFreeRate).Seconds()
	times := map[bool]classTimes{ // keyed by "is slow device"
		true:  {fhd: rpi.Time(ref.FHDnnWorkload()) + upFHD, cnn: rpi.Time(ref.CNNWorkload()) + upCNN},
		false: {fhd: jetson.Time(ref.FHDnnWorkload()) + upFHD, cnn: jetson.Time(ref.CNNWorkload()) + upCNN},
	}

	slow := make([]bool, cfg.NumClients)
	for i := range slow {
		slow[i] = rng.Float64() < cfg.SlowFraction
	}
	participants := int(cfg.ClientFraction*float64(cfg.NumClients) + 0.5)
	if participants < 1 {
		participants = 1
	}

	simulate := func(pick func(classTimes) float64) FleetRow {
		var rounds []float64
		slowSets := 0
		for r := 0; r < cfg.Rounds; r++ {
			worst := 0.0
			worstSlow := false
			for _, id := range rng.Perm(cfg.NumClients)[:participants] {
				t := pick(times[slow[id]])
				if t > worst {
					worst = t
					worstSlow = slow[id]
				}
			}
			rounds = append(rounds, worst)
			if worstSlow {
				slowSets++
			}
		}
		mean := 0.0
		for _, t := range rounds {
			mean += t
		}
		mean /= float64(len(rounds))
		// p95 by partial sort
		p95 := percentile(rounds, 0.95)
		return FleetRow{
			MeanRoundSec:   mean,
			P95RoundSec:    p95,
			StragglerShare: float64(slowSets) / float64(cfg.Rounds),
		}
	}
	fhd := simulate(func(c classTimes) float64 { return c.fhd })
	fhd.Model = "FHDnn"
	fhd.TotalHours = fhd.MeanRoundSec * float64(cfg.FHDnnRounds) / 3600
	cnn := simulate(func(c classTimes) float64 { return c.cnn })
	cnn.Model = "ResNet"
	cnn.TotalHours = cnn.MeanRoundSec * float64(cfg.CNNRounds) / 3600
	return []FleetRow{fhd, cnn}
}

func percentile(xs []float64, p float64) float64 {
	sorted := append([]float64(nil), xs...)
	for i := 1; i < len(sorted); i++ { // insertion sort; n is small
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

// FleetTable renders the comparison.
func FleetTable(cfg FleetConfig, rows []FleetRow) *Table {
	t := &Table{
		Title: fmt.Sprintf("Mixed fleet stragglers: %d clients, %.0f%% slow devices, C=%.2g (synchronous rounds)",
			cfg.NumClients, 100*cfg.SlowFraction, cfg.ClientFraction),
		Header: []string{"model", "mean round (s)", "p95 round (s)", "straggler-limited", "total (h)"},
	}
	for _, r := range rows {
		t.AddRow(r.Model,
			fmt.Sprintf("%.1f", r.MeanRoundSec),
			fmt.Sprintf("%.1f", r.P95RoundSec),
			fmt.Sprintf("%.0f%%", 100*r.StragglerShare),
			fmt.Sprintf("%.1f", r.TotalHours),
		)
	}
	return t
}
