package experiments

import (
	"strings"
	"testing"
)

// tiny returns an even smaller scale than Small for unit tests.
func tiny() Scale {
	s := Small()
	s.TrainPerClass = 15
	s.TestPerClass = 6
	s.NumClients = 10
	s.Rounds = 6
	s.HDDim = 1024
	return s
}

func TestScaleBuildDataset(t *testing.T) {
	s := tiny()
	for _, name := range DatasetNames {
		train, test := s.BuildDataset(name)
		if train.Len() == 0 || test.Len() == 0 {
			t.Fatalf("%s: empty dataset", name)
		}
		if name == "cifar10" && train.X.Dim(1) != 3 {
			t.Fatal("cifar10 must be 3-channel")
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown dataset must panic")
		}
	}()
	s.BuildDataset("imagenet")
}

func TestScalePartitionModes(t *testing.T) {
	s := tiny()
	train, _ := s.BuildDataset("mnist")
	iid := s.Partition(train, true, 1)
	non := s.Partition(train, false, 1)
	if iid.NumClients() != s.NumClients || non.NumClients() != s.NumClients {
		t.Fatal("wrong client count")
	}
	if iid.TotalExamples() != train.Len() || non.TotalExamples() != train.Len() {
		t.Fatal("partitions must cover the dataset")
	}
}

func TestFig4ShowsNoiseSuppression(t *testing.T) {
	rows := Fig4NoiseRobustness(tiny(), []float64{5, 15})
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		// the whole point of Fig. 4: decoding averages HD noise away
		if r.Suppression < 5 {
			t.Fatalf("SNR %v dB: suppression %.2fx, expected >> 1", r.SNRdB, r.Suppression)
		}
		if r.HDDecodeMSE >= r.PixelMSE {
			t.Fatalf("HD decode MSE %v must beat pixel MSE %v", r.HDDecodeMSE, r.PixelMSE)
		}
	}
	if tbl := Fig4Table(rows).String(); !strings.Contains(tbl, "Fig 4") {
		t.Fatal("table rendering broken")
	}
}

func TestFig5SimilarityScalesLinearly(t *testing.T) {
	rows := Fig5PartialInfo(tiny(), []float64{0, 0.5, 0.8})
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0].SimilarityRetained < 0.99 {
		t.Fatalf("zero removal must retain full similarity, got %v", rows[0].SimilarityRetained)
	}
	// Fig 5 left: retained similarity ~ (1 - frac)
	if r := rows[1]; r.SimilarityRetained < 0.35 || r.SimilarityRetained > 0.65 {
		t.Fatalf("50%% removal retained %v, want ~0.5", r.SimilarityRetained)
	}
	// Fig 5 right: accuracy degrades gracefully — still far above chance
	// (1/26) at 80% removal.
	if rows[2].Accuracy < 0.5 {
		t.Fatalf("80%% removal accuracy %v, paper shows ~90%% retention", rows[2].Accuracy)
	}
	_ = Fig5Table(rows).String()
}

func TestFig7FHDnnConvergesFasterAndMatchesCNN(t *testing.T) {
	s := tiny()
	s.Rounds = 8
	results := Fig7Accuracy(s, []string{"mnist"})
	if len(results) != 1 {
		t.Fatalf("got %d results", len(results))
	}
	r := results[0]
	// FHDnn reaches its plateau almost immediately; the CNN needs many
	// rounds. Compare early-round accuracy.
	if r.FHDnn.Rounds[0].TestAccuracy <= r.ResNet.Rounds[0].TestAccuracy {
		t.Fatalf("round 1: FHDnn %v should beat CNN %v",
			r.FHDnn.Rounds[0].TestAccuracy, r.ResNet.Rounds[0].TestAccuracy)
	}
	if r.FHDnn.FinalAccuracy() < 0.5 {
		t.Fatalf("FHDnn final accuracy %v too low", r.FHDnn.FinalAccuracy())
	}
	tables := Fig7Tables(results)
	if len(tables) != 2 {
		t.Fatalf("expected curve + summary tables, got %d", len(tables))
	}
}

func TestFig6SpreadNarrowerForFHDnn(t *testing.T) {
	s := tiny()
	s.Rounds = 5
	grid := HyperGrid{E: []int{1, 2}, B: []int{10}, C: []float64{0.2, 0.6}}
	results := Fig6Hyperparams(s, grid, 0)
	if len(results) != 4 { // 2 models x 2 distributions
		t.Fatalf("got %d results", len(results))
	}
	byKey := map[string]Fig6Result{}
	for _, r := range results {
		byKey[r.Model+"/"+r.Distribution] = r
	}
	// paper: hyperparameters barely influence FHDnn (narrow spread).
	hd := byKey["FHDnn/iid"]
	cnn := byKey["CNN/iid"]
	last := len(hd.Mean) - 1
	hdSpread := hd.Hi[last] - hd.Lo[last]
	// paper: the gray spread band for FHDnn is narrow — hyperparameters
	// barely matter. At tiny test-set sizes the granularity is coarse, so
	// assert a loose absolute bound rather than comparing to the CNN.
	if hdSpread > 0.25 {
		t.Fatalf("FHDnn hyperparameter spread %v too wide", hdSpread)
	}
	_ = cnn
	// paper: FHDnn reaches the target in far fewer rounds.
	if hd.RoundsToTarget == -1 {
		t.Fatal("FHDnn never reached target")
	}
	if cnn.RoundsToTarget != -1 && hd.RoundsToTarget > cnn.RoundsToTarget {
		t.Fatalf("FHDnn took %d rounds, CNN %d", hd.RoundsToTarget, cnn.RoundsToTarget)
	}
	if tables := Fig6Tables(results); len(tables) != 3 {
		t.Fatalf("expected 2 curve tables + summary, got %d", len(tables))
	}
}

func TestFig8RobustnessShape(t *testing.T) {
	s := tiny()
	s.Rounds = 6
	levels := Fig8Levels{PacketLoss: []float64{0.2}, SNRdB: []float64{10}, BER: []float64{1e-4}}
	rows := Fig8Unreliable(s, levels, []string{"iid"})
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		// The paper's central result: FHDnn tolerates every error model
		// better than the CNN at realistic error levels.
		if r.FHDnnAcc < r.CNNAcc-0.05 {
			t.Fatalf("%s level %v: FHDnn %v should not trail CNN %v",
				r.Condition, r.Level, r.FHDnnAcc, r.CNNAcc)
		}
		if r.FHDnnAcc < 0.3 { // chance is 0.1
			t.Fatalf("%s level %v: FHDnn accuracy %v collapsed", r.Condition, r.Level, r.FHDnnAcc)
		}
	}
	if tables := Fig8Tables(rows); len(tables) != 3 {
		t.Fatalf("expected 3 tables, got %d", len(tables))
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	rows := Table1EdgeDevices()
	if len(rows) != 2 {
		t.Fatalf("got %d device rows", len(rows))
	}
	want := map[string][4]float64{
		"Raspberry Pi":  {858.72, 1328.04, 4418.4, 6742.8},
		"Nvidia Jetson": {15.96, 90.55, 96.17, 497.572},
	}
	for _, r := range rows {
		w, ok := want[r.Device]
		if !ok {
			t.Fatalf("unexpected device %q", r.Device)
		}
		got := [4]float64{r.FHDnnSec, r.ResNetSec, r.FHDnnJoules, r.ResNetJoules}
		for i := range w {
			if rel := (got[i] - w[i]) / w[i]; rel > 1e-6 || rel < -1e-6 {
				t.Fatalf("%s[%d] = %v, want %v", r.Device, i, got[i], w[i])
			}
		}
	}
	_ = Table1Render("Table 1", rows).String()
}

func TestTable1ScaledMovesSensibly(t *testing.T) {
	base := Table1EdgeDevices()
	moreEpochs := Table1Scaled(500, 4, 10000)
	for i := range base {
		if moreEpochs[i].ResNetSec <= base[i].ResNetSec {
			t.Fatal("doubling epochs must slow CNN training")
		}
		// FHDnn grows only via refine epochs (features cached)
		if moreEpochs[i].FHDnnSec > base[i].FHDnnSec*1.5 {
			t.Fatalf("FHDnn time should grow mildly: %v -> %v", base[i].FHDnnSec, moreEpochs[i].FHDnnSec)
		}
	}
}

func TestCommEfficiencyHeadlineRatios(t *testing.T) {
	rows := CommEfficiency(25, 75, 100)
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	fhd, cnn := rows[0], rows[1]
	// update-size ratio ~22x (paper: 22 MB vs 1 MB)
	sizeRatio := float64(cnn.UpdateBytes) / float64(fhd.UpdateBytes)
	if sizeRatio < 15 || sizeRatio > 40 {
		t.Fatalf("update size ratio %v, paper ~22x", sizeRatio)
	}
	// total-data ratio ~66x
	dataRatio := float64(cnn.DataBytes) / float64(fhd.DataBytes)
	if dataRatio < 40 || dataRatio > 120 {
		t.Fatalf("total data ratio %v, paper ~66x", dataRatio)
	}
	// clock time: FHDnn ~1.1h, ResNet hundreds of hours
	if fhd.ClockTime.Hours() > 2 {
		t.Fatalf("FHDnn clock time %v, paper ~1.1 h", fhd.ClockTime)
	}
	if cnn.ClockTime.Hours() < 100 {
		t.Fatalf("ResNet clock time %v, paper ~374 h", cnn.ClockTime)
	}
	out := CommTable(rows).String()
	if !strings.Contains(out, "ratio") {
		t.Fatal("ratio row missing")
	}
}

func TestAblationDim(t *testing.T) {
	s := tiny()
	s.Rounds = 4
	rows := AblationDim(s, []int{128, 2048})
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	// larger d should not be (much) worse
	if rows[1].Accuracy < rows[0].Accuracy-0.1 {
		t.Fatalf("d=2048 (%v) much worse than d=128 (%v)", rows[1].Accuracy, rows[0].Accuracy)
	}
	_ = AblationTable("dim", rows).String()
}

func TestAblationSignAndRefine(t *testing.T) {
	s := tiny()
	s.Rounds = 4
	sign := AblationSign(s)
	if len(sign) != 2 {
		t.Fatal("sign ablation rows")
	}
	for _, r := range sign {
		if r.Accuracy < 0.4 {
			t.Fatalf("%s accuracy %v collapsed", r.Setting, r.Accuracy)
		}
	}
	refine := AblationRefine(s, []int{1, 4})
	if len(refine) != 2 {
		t.Fatal("refine ablation rows")
	}
}

func TestAblationQuantizerProtects(t *testing.T) {
	s := tiny()
	s.Rounds = 5
	rows := AblationQuantizer(s, 1e-3)
	if len(rows) != 2 {
		t.Fatal("quantizer ablation rows")
	}
	with, without := rows[0], rows[1]
	if with.Setting != "with quantizer" {
		with, without = without, with
	}
	if with.Accuracy < without.Accuracy-0.05 {
		t.Fatalf("quantizer (%v) should not trail raw float32 (%v) under bit errors",
			with.Accuracy, without.Accuracy)
	}
}

func TestMeanAndSpread(t *testing.T) {
	mean, lo, hi := MeanAndSpread([][]float64{{1, 2}, {3, 4}})
	if mean[0] != 2 || mean[1] != 3 || lo[0] != 1 || hi[1] != 4 {
		t.Fatalf("MeanAndSpread = %v %v %v", mean, lo, hi)
	}
	m, l, h := MeanAndSpread(nil)
	if m != nil || l != nil || h != nil {
		t.Fatal("empty input must return nils")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{Title: "T", Header: []string{"a", "bb"}}
	tbl.AddRow("x", "y")
	tbl.AddRowf(1.23456, 7)
	out := tbl.String()
	for _, want := range []string{"== T ==", "a", "bb", "x", "1.235", "7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
	curve := CurveTable("c", "i", []float64{1, 2}, Series{Name: "s", Values: []float64{0.5}})
	if !strings.Contains(curve.String(), "-") {
		t.Fatal("missing placeholder for short series")
	}
}

func TestFmtHelpers(t *testing.T) {
	if fmtBytes(512) != "512 B" {
		t.Fatal(fmtBytes(512))
	}
	if !strings.Contains(fmtBytes(2<<20), "MB") {
		t.Fatal("MB formatting")
	}
	if !strings.Contains(fmtBytes(3<<30), "GB") {
		t.Fatal("GB formatting")
	}
	if !strings.Contains(fmtBytes(2048), "KB") {
		t.Fatal("KB formatting")
	}
}

func TestAblationBinary(t *testing.T) {
	s := tiny()
	s.Rounds = 4
	rows := AblationBinary(s)
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[1].Accuracy < rows[0].Accuracy-0.15 {
		t.Fatalf("binarization cost too high: %v vs %v", rows[1].Accuracy, rows[0].Accuracy)
	}
	if rows[1].Extra == rows[0].Extra {
		t.Fatal("binary model should report a much smaller size")
	}
}

func TestScaleConstructors(t *testing.T) {
	for name, s := range map[string]Scale{"small": Small(), "medium": Medium(), "paper": Paper()} {
		if s.ImgSize%4 != 0 {
			t.Fatalf("%s: image size %d must suit the extractors", name, s.ImgSize)
		}
		if s.NumClients <= 0 || s.Rounds <= 0 || s.HDDim <= 0 || s.LR <= 0 {
			t.Fatalf("%s: invalid scale %+v", name, s)
		}
		cfg := s.FLConfig(1)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s: FLConfig invalid: %v", name, err)
		}
		if cfg.Parallel < 1 {
			t.Fatalf("%s: expected parallel client simulation", name)
		}
	}
	// the paper scale must match the paper's stated operating point
	p := Paper()
	if p.ImgSize != 32 || p.NumClients != 100 || p.Rounds != 100 || p.HDDim != 10000 || p.CNNBaseWidth != 64 {
		t.Fatalf("paper scale drifted: %+v", p)
	}
}

func TestAblationBursty(t *testing.T) {
	s := tiny()
	s.Rounds = 5
	rows := AblationBursty(s, 0.2)
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	clean := rows[0]
	for _, r := range rows[1:] {
		// both loss patterns must stay well above chance (0.1)
		if r.Accuracy < 0.3 {
			t.Fatalf("%s accuracy %v collapsed", r.Setting, r.Accuracy)
		}
		if r.Accuracy > clean.Accuracy+0.1 {
			t.Fatalf("%s beats clean channel implausibly", r.Setting)
		}
	}
}
