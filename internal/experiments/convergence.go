package experiments

import (
	"math"

	"fhdnn/internal/core"
)

// ConvergenceRow summarizes the convergence behaviour of one model
// (Sec. 3.6 of the paper argues FHDnn's linear HD training satisfies
// L-smoothness / strong convexity / bounded variance and converges at
// O(1/T), which cannot be claimed for the non-convex CNN).
type ConvergenceRow struct {
	Model string
	// BestAccuracy contextualizes the plateau: a model stuck at chance
	// "plateaus" instantly but learned nothing.
	BestAccuracy float64
	// Error is the per-round excess error e(t) = bestAcc - acc(t).
	Error []float64
	// RoundsToPlateau is the first round within eps of the best accuracy.
	RoundsToPlateau int
	// DecayExponent is the least-squares slope of log e(t) vs log t over
	// the pre-plateau region: ~-1 for O(1/T) convergence, ~0 for no
	// progress. NaN when the curve plateaus immediately (fewer than two
	// usable points).
	DecayExponent float64
	// Monotonicity is the fraction of rounds where accuracy did not
	// decrease — a stability measure (FHDnn's curves are near-monotone,
	// CNN FedAvg's oscillate).
	Monotonicity float64
}

// Convergence runs both models on the CIFAR-like dataset (reliable
// channel, paper-default hyperparameters) and reduces their accuracy
// curves to the Sec. 3.6 diagnostics. eps is the plateau tolerance
// (e.g. 0.02).
func Convergence(s Scale, eps float64) []ConvergenceRow {
	if eps <= 0 {
		eps = 0.02
	}
	train, test := s.BuildDataset("cifar10")
	part := s.Partition(train, true, s.Seed+60)
	cfg := s.FLConfig(s.Seed + 61)

	f := s.NewFHDnn(train)
	hd := f.TrainFederated(train, test, part, cfg).History

	b := s.NewCNNBaseline("cifar10", train)
	cnn, _ := core.TrainFederatedCNN(b, train, test, part, cfg)

	return []ConvergenceRow{
		analyzeConvergence("FHDnn", hd.Accuracies(), eps),
		analyzeConvergence("CNN", cnn.Accuracies(), eps),
	}
}

func analyzeConvergence(model string, acc []float64, eps float64) ConvergenceRow {
	best := 0.0
	for _, a := range acc {
		if a > best {
			best = a
		}
	}
	row := ConvergenceRow{Model: model, BestAccuracy: best, RoundsToPlateau: -1}
	row.Error = make([]float64, len(acc))
	for i, a := range acc {
		row.Error[i] = best - a
		if row.RoundsToPlateau == -1 && best-a <= eps {
			row.RoundsToPlateau = i + 1
		}
	}
	// decay exponent over the region before the plateau
	var xs, ys []float64
	for i, e := range row.Error {
		if e <= eps {
			break
		}
		xs = append(xs, math.Log(float64(i+1)))
		ys = append(ys, math.Log(e))
	}
	row.DecayExponent = slope(xs, ys)
	// monotonicity
	if len(acc) > 1 {
		up := 0
		for i := 1; i < len(acc); i++ {
			if acc[i] >= acc[i-1] {
				up++
			}
		}
		row.Monotonicity = float64(up) / float64(len(acc)-1)
	}
	return row
}

// slope returns the least-squares slope of y on x, or NaN with fewer than
// two points.
func slope(x, y []float64) float64 {
	if len(x) < 2 {
		return math.NaN()
	}
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	n := float64(len(x))
	den := n*sxx - sx*sx
	if den == 0 {
		return math.NaN()
	}
	return (n*sxy - sx*sy) / den
}

// ConvergenceTable renders the diagnostics.
func ConvergenceTable(rows []ConvergenceRow) *Table {
	t := &Table{
		Title:  "Sec 3.6: convergence diagnostics (reliable channel, CIFAR-like)",
		Header: []string{"model", "best acc", "rounds to plateau", "decay exponent", "monotonicity"},
	}
	for _, r := range rows {
		t.AddRowf(r.Model, r.BestAccuracy, r.RoundsToPlateau, r.DecayExponent, r.Monotonicity)
	}
	return t
}
