package experiments

import "testing"

func TestSubsampleSweepGracefulDegradation(t *testing.T) {
	s := tiny()
	s.Rounds = 6
	rows := SubsampleSweep(s, []float64{1, 0.25, 0.05})
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	full, quarter, tiny5 := rows[0], rows[1], rows[2]
	// traffic must scale with the fraction
	if quarter.BytesPerRound >= full.BytesPerRound/3 {
		t.Fatalf("25%% subsampling traffic %d vs full %d", quarter.BytesPerRound, full.BytesPerRound)
	}
	// the Fig-5 property: quartering the traffic costs little accuracy
	if quarter.Accuracy < full.Accuracy-0.15 {
		t.Fatalf("25%% transmission lost too much accuracy: %v vs %v", quarter.Accuracy, full.Accuracy)
	}
	// even 5%% stays far above chance (0.1)
	if tiny5.Accuracy < 0.3 {
		t.Fatalf("5%% transmission accuracy %v collapsed", tiny5.Accuracy)
	}
	_ = SubsampleTable(rows).String()
}
