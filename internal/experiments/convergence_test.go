package experiments

import (
	"math"
	"testing"
)

func TestConvergenceDiagnostics(t *testing.T) {
	s := tiny()
	s.Rounds = 8
	rows := Convergence(s, 0.1)
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	hd, cnn := rows[0], rows[1]
	if hd.Model != "FHDnn" || cnn.Model != "CNN" {
		t.Fatal("row order")
	}
	// FHDnn plateaus quickly
	if hd.RoundsToPlateau == -1 || hd.RoundsToPlateau > 6 {
		t.Fatalf("FHDnn plateau at %d rounds, want fast", hd.RoundsToPlateau)
	}
	// FHDnn must end up far more accurate; plateau speed is only
	// comparable between models that actually learn (a chance-level CNN
	// "plateaus" at round 1).
	if hd.BestAccuracy < cnn.BestAccuracy+0.2 {
		t.Fatalf("FHDnn best %v should dominate CNN best %v", hd.BestAccuracy, cnn.BestAccuracy)
	}
	if cnn.BestAccuracy > 0.5*hd.BestAccuracy && cnn.RoundsToPlateau != -1 &&
		hd.RoundsToPlateau > cnn.RoundsToPlateau {
		t.Fatalf("FHDnn (%d) slower than a learning CNN (%d)", hd.RoundsToPlateau, cnn.RoundsToPlateau)
	}
	if hd.Monotonicity < 0.5 {
		t.Fatalf("FHDnn monotonicity %v suspiciously low", hd.Monotonicity)
	}
	_ = ConvergenceTable(rows).String()
}

func TestAnalyzeConvergenceSynthetic(t *testing.T) {
	// A perfect O(1/T) error curve: acc(t) = 1 - 1/t.
	acc := make([]float64, 20)
	for i := range acc {
		acc[i] = 1 - 1/float64(i+1)
	}
	row := analyzeConvergence("synthetic", acc, 1e-9)
	// best = acc(20); error(t) = 1/t - 1/20 which decays slightly faster
	// than 1/t; the fitted exponent must be steeply negative.
	if row.DecayExponent > -0.8 {
		t.Fatalf("decay exponent %v, want <= -0.8 for a 1/T curve", row.DecayExponent)
	}
	if row.Monotonicity != 1 {
		t.Fatalf("monotonicity %v, want 1 for a monotone curve", row.Monotonicity)
	}
}

func TestAnalyzeConvergenceFlatCurve(t *testing.T) {
	row := analyzeConvergence("flat", []float64{0.5, 0.5, 0.5}, 0.01)
	if row.RoundsToPlateau != 1 {
		t.Fatalf("flat curve plateaus immediately, got %d", row.RoundsToPlateau)
	}
	if !math.IsNaN(row.DecayExponent) {
		t.Fatalf("flat curve has no decay region, exponent %v", row.DecayExponent)
	}
}

func TestSlope(t *testing.T) {
	if got := slope([]float64{0, 1, 2}, []float64{1, 3, 5}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("slope = %v", got)
	}
	if !math.IsNaN(slope([]float64{1}, []float64{1})) {
		t.Fatal("single point must give NaN")
	}
	if !math.IsNaN(slope([]float64{2, 2}, []float64{1, 5})) {
		t.Fatal("degenerate x must give NaN")
	}
}
