package experiments

import (
	"fmt"

	"fhdnn/internal/fl"
)

// SubsampleRow is one point of the deliberate-subsampling sweep: FHDnn
// transmits only a fraction of its hypervector dimensions per round,
// cashing in Fig. 5's partial-information property as a bandwidth
// reduction (an extension the paper's Sec. 3.5.3 analysis directly
// suggests).
type SubsampleRow struct {
	Frac          float64
	Accuracy      float64
	BytesPerRound int64
}

// SubsampleSweep trains federated FHDnn at each transmitted fraction using
// coordinated partial updates (fl.HDTrainer.TransmitFrac): all participants
// of a round upload the same server-chosen subset of prototype entries and
// the rest of the global model carries over.
func SubsampleSweep(s Scale, fracs []float64) []SubsampleRow {
	if len(fracs) == 0 {
		fracs = []float64{1, 0.5, 0.25, 0.1, 0.05}
	}
	train, test := s.BuildDataset("cifar10")
	part := s.Partition(train, true, s.Seed+85)
	rows := make([]SubsampleRow, 0, len(fracs))
	for _, frac := range fracs {
		f := s.NewFHDnn(train)
		trainer := &fl.HDTrainer{
			Cfg:          s.FLConfig(s.Seed + 86),
			Encoded:      f.EncodeDataset(train),
			Labels:       train.Labels,
			TestEnc:      f.EncodeDataset(test),
			TestLabels:   test.Labels,
			NumClasses:   train.NumClasses,
			Part:         part,
			TransmitFrac: frac,
		}
		hist, _ := trainer.Run()
		rows = append(rows, SubsampleRow{
			Frac:          frac,
			Accuracy:      hist.FinalAccuracy(),
			BytesPerRound: meanBytes(hist),
		})
	}
	return rows
}

// SubsampleTable renders the sweep.
func SubsampleTable(rows []SubsampleRow) *Table {
	t := &Table{
		Title:  "Extension: deliberate dimension subsampling (Fig 5 as a bandwidth knob)",
		Header: []string{"transmitted frac", "accuracy", "uplink/round"},
	}
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%.3g", r.Frac),
			fmt.Sprintf("%.4g", r.Accuracy),
			fmtBytes(r.BytesPerRound))
	}
	return t
}
