package experiments

import (
	"math"
	"math/rand"

	"fhdnn/internal/dataset"
	"fhdnn/internal/hdc"
)

// Fig4Row is one operating point of the Fig. 4 demonstration: an image is
// corrupted by Gaussian noise either directly in pixel space or in
// hyperdimensional space (then decoded). HD's information dispersal
// averages the noise over d dimensions, so the decoded image is far cleaner
// at equal SNR.
type Fig4Row struct {
	SNRdB       float64
	PixelMSE    float64 // noise added in pixel space
	HDDecodeMSE float64 // noise added in HD space, then decoded (Eq. 5)
	Suppression float64 // PixelMSE / HDDecodeMSE
	PSNRGainDB  float64 // 10*log10(Suppression): reconstruction PSNR advantage
}

// Fig4NoiseRobustness reproduces Figure 4 quantitatively: it encodes an
// MNIST-like image with the random-projection encoder, adds Gaussian noise
// in hyperspace, reconstructs via the linear decode, and compares the
// reconstruction error to adding equal-SNR noise directly to the pixels.
func Fig4NoiseRobustness(s Scale, snrsDB []float64) []Fig4Row {
	if len(snrsDB) == 0 {
		snrsDB = []float64{0, 5, 10, 20}
	}
	train, _ := s.BuildDataset("mnist")
	img := train.X.Data()[:train.SampleLen()]
	n := len(img)
	// The dispersal benefit scales with d/n: decoding averages the HD
	// noise over d dimensions, but the random-projection reconstruction
	// itself carries ~n/d relative error, which would mask the effect at
	// small d. Use a generous expansion, as the paper's d=10000 on 784
	// MNIST pixels does.
	d := 256 * n
	rng := rand.New(rand.NewSource(s.Seed))
	enc := hdc.NewEncoder(rng, d, n)
	enc.Binarize = false // Fig. 4 demonstrates the linear encode/decode path

	var sigPow float64
	for _, v := range img {
		sigPow += float64(v) * float64(v)
	}
	sigPow /= float64(n)

	h := enc.Encode(img)
	var hPow float64
	for _, v := range h {
		hPow += float64(v) * float64(v)
	}
	hPow /= float64(len(h))

	rows := make([]Fig4Row, 0, len(snrsDB))
	for _, snr := range snrsDB {
		lin := math.Pow(10, snr/10)

		// pixel-space corruption
		sigmaPix := math.Sqrt(sigPow / lin)
		var pixMSE float64
		for range img {
			e := rng.NormFloat64() * sigmaPix
			pixMSE += e * e
		}
		pixMSE /= float64(n)

		// HD-space corruption + decode
		sigmaHD := math.Sqrt(hPow / lin)
		noisy := make([]float32, len(h))
		for i, v := range h {
			noisy[i] = v + float32(rng.NormFloat64()*sigmaHD)
		}
		rec := enc.Decode(noisy)
		var hdMSE float64
		for i, v := range rec {
			e := float64(v - img[i])
			hdMSE += e * e
		}
		hdMSE /= float64(n)

		row := Fig4Row{SNRdB: snr, PixelMSE: pixMSE, HDDecodeMSE: hdMSE}
		if hdMSE > 0 {
			row.Suppression = pixMSE / hdMSE
			row.PSNRGainDB = 10 * math.Log10(row.Suppression)
		}
		rows = append(rows, row)
	}
	return rows
}

// Fig4Table renders the rows.
func Fig4Table(rows []Fig4Row) *Table {
	t := &Table{
		Title:  "Fig 4: noise robustness of hyperdimensional encodings",
		Header: []string{"SNR(dB)", "pixel-noise MSE", "HD-noise decoded MSE", "suppression(x)", "PSNR gain(dB)"},
	}
	for _, r := range rows {
		t.AddRowf(r.SNRdB, r.PixelMSE, r.HDDecodeMSE, r.Suppression, r.PSNRGainDB)
	}
	return t
}

// Fig5Row is one point of the partial-information experiment (Fig. 5):
// a fraction of hypervector dimensions is removed (zeroed) and we measure
// how much of the true-class dot product survives and what happens to
// classification accuracy.
type Fig5Row struct {
	FracRemoved        float64
	SimilarityRetained float64 // fraction of the original dot product
	Accuracy           float64
}

// Fig5PartialInfo trains an HD model on the ISOLET stand-in (raw features
// encoded directly, as in the paper's speech example) and sweeps the
// fraction of removed dimensions.
func Fig5PartialInfo(s Scale, fracs []float64) []Fig5Row {
	if len(fracs) == 0 {
		fracs = []float64{0, 0.2, 0.4, 0.6, 0.8, 0.9, 0.95, 0.98, 0.995}
	}
	perClass := s.TrainPerClass / 2
	if perClass < 4 {
		perClass = 4
	}
	train := dataset.GenerateVectors(dataset.VectorConfig{
		Name: "isolet", Classes: 26, Features: 617, PerClass: perClass,
		ClassStd: 1.0, SampleStd: 0.5, Seed: s.Seed,
	})
	test := dataset.GenerateVectors(dataset.VectorConfig{
		Name: "isolet", Classes: 26, Features: 617, PerClass: perClass / 2,
		ClassStd: 1.0, SampleStd: 0.5, Seed: s.Seed, // same seed -> same class means
	})
	rng := rand.New(rand.NewSource(s.Seed + 7))
	enc := hdc.NewEncoder(rng, s.HDDim, 617)
	encTrain := enc.EncodeBatch(train.X)
	encTest := enc.EncodeBatch(test.X)
	m := hdc.NewModel(26, s.HDDim)
	m.OneShotTrain(encTrain, train.Labels)
	for e := 0; e < 3; e++ {
		m.RefineEpoch(encTrain, train.Labels)
	}

	d := s.HDDim
	rows := make([]Fig5Row, 0, len(fracs))
	for _, frac := range fracs {
		masked := m.Clone()
		perm := rng.Perm(d)
		kill := perm[:int(frac*float64(d))]
		for k := 0; k < masked.K; k++ {
			row := masked.Class(k)
			for _, i := range kill {
				row[i] = 0
			}
		}
		// similarity retained, averaged over the test set's true classes
		var retained float64
		counted := 0
		for i := 0; i < test.Len(); i++ {
			h := encTest.Data()[i*d : (i+1)*d]
			full := hdc.Dot(m.Class(test.Labels[i]), h)
			if full == 0 {
				continue
			}
			retained += hdc.Dot(masked.Class(test.Labels[i]), h) / full
			counted++
		}
		if counted > 0 {
			retained /= float64(counted)
		}
		rows = append(rows, Fig5Row{
			FracRemoved:        frac,
			SimilarityRetained: retained,
			Accuracy:           masked.Accuracy(encTest, test.Labels),
		})
	}
	return rows
}

// Fig5Table renders the rows.
func Fig5Table(rows []Fig5Row) *Table {
	t := &Table{
		Title:  "Fig 5: partial information under dimension removal (ISOLET-like)",
		Header: []string{"frac removed", "similarity retained", "accuracy"},
	}
	for _, r := range rows {
		t.AddRowf(r.FracRemoved, r.SimilarityRetained, r.Accuracy)
	}
	return t
}
