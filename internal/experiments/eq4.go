package experiments

import (
	"math"
	"math/rand"
)

// Eq4Row is one point of the noisy-aggregation SNR experiment: bundling N
// independently noisy client models should improve the global model's SNR
// by a factor of N (paper Eq. 4: signal power grows as N^2, noise as N).
type Eq4Row struct {
	Clients     int
	ClientSNRdB float64 // SNR of each uplinked model
	GlobalSNRdB float64 // measured SNR of the aggregate
	GainDB      float64 // measured improvement
	TheoryDB    float64 // 10*log10(N)
}

// Eq4NoisySNRGain measures the SNR improvement of federated bundling
// directly: a reference prototype matrix is corrupted independently per
// client at clientSNRdB, the corrupted copies are aggregated, and the SNR
// of the aggregate is measured against the reference. Everything else in
// the pipeline is held fixed, isolating Eq. 4.
func Eq4NoisySNRGain(s Scale, clientCounts []int, clientSNRdB float64) []Eq4Row {
	if len(clientCounts) == 0 {
		clientCounts = []int{1, 2, 5, 10, 20, 50}
	}
	rng := rand.New(rand.NewSource(s.Seed + 70))
	// reference "true" model: random prototypes of realistic scale
	ref := make([]float32, 10*s.HDDim)
	for i := range ref {
		ref[i] = float32(rng.NormFloat64() * 10)
	}
	var sigPow float64
	for _, v := range ref {
		sigPow += float64(v) * float64(v)
	}
	sigPow /= float64(len(ref))
	sigma := math.Sqrt(sigPow / math.Pow(10, clientSNRdB/10))

	const trials = 8
	rows := make([]Eq4Row, 0, len(clientCounts))
	for _, n := range clientCounts {
		var noisePowSum float64
		for trial := 0; trial < trials; trial++ {
			agg := make([]float64, len(ref))
			for c := 0; c < n; c++ {
				for i, v := range ref {
					agg[i] += float64(v) + rng.NormFloat64()*sigma
				}
			}
			inv := 1 / float64(n)
			var noisePow float64
			for i, v := range ref {
				diff := agg[i]*inv - float64(v)
				noisePow += diff * diff
			}
			noisePowSum += noisePow / float64(len(ref))
		}
		noisePow := noisePowSum / trials
		globalSNR := 10 * math.Log10(sigPow/noisePow)
		rows = append(rows, Eq4Row{
			Clients:     n,
			ClientSNRdB: clientSNRdB,
			GlobalSNRdB: globalSNR,
			GainDB:      globalSNR - clientSNRdB,
			TheoryDB:    10 * math.Log10(float64(n)),
		})
	}
	return rows
}

// Eq4Table renders the rows.
func Eq4Table(rows []Eq4Row) *Table {
	t := &Table{
		Title:  "Eq 4: SNR gain of federated bundling (global SNR = N x client SNR)",
		Header: []string{"clients", "client SNR(dB)", "global SNR(dB)", "gain(dB)", "theory 10log10(N)"},
	}
	for _, r := range rows {
		t.AddRowf(r.Clients, r.ClientSNRdB, r.GlobalSNRdB, r.GainDB, r.TheoryDB)
	}
	return t
}
