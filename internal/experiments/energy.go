package experiments

import (
	"fmt"

	"fhdnn/internal/device"
	"fhdnn/internal/link"
)

// EnergyToAccuracy combines the calibrated device models, the LTE link,
// and the paper's rounds-to-convergence into the deployment question:
// how much energy (and what fraction of a battery) does one client spend
// to train to target accuracy? Per-round compute savings (Table 1)
// compound with the ~3x round advantage (Fig. 6/7) and the faster radio
// (Sec. 4.4).
func EnergyToAccuracy(fhdnnRounds, cnnRounds int) []*Table {
	if fhdnnRounds <= 0 {
		fhdnnRounds = 25
	}
	if cnnRounds <= 0 {
		cnnRounds = 75
	}
	ref := device.PaperReference()
	lte := link.PaperLTE()
	upFHD := link.UploadTime(400_000, lte.ErrorAdmittingRate).Seconds()
	upCNN := link.UploadTime(22_000_000, lte.ErrorFreeRate).Seconds()
	const radioPowerW = 2.0

	battery := device.Battery{CapacityWh: 50, IdlePowerW: 0.5}
	var tables []*Table
	for _, p := range []device.Profile{device.RaspberryPi3(), device.JetsonNano()} {
		rows := device.EnergyToTarget(p, ref, battery, fhdnnRounds, cnnRounds,
			upFHD, upCNN, radioPowerW)
		t := &Table{
			Title: fmt.Sprintf("Energy to target accuracy on %s (50 Wh battery, 2 W radio)", p.Name),
			Header: []string{"model", "rounds", "J/round", "total J",
				"battery used", "rounds/charge"},
		}
		for _, r := range rows {
			t.AddRow(r.Model,
				fmt.Sprintf("%d", r.Rounds),
				fmt.Sprintf("%.0f", r.PerRoundJ),
				fmt.Sprintf("%.0f", r.TotalJ),
				fmt.Sprintf("%.1f%%", 100*r.BatteryFrac),
				fmt.Sprintf("%d", r.RoundsOnCell),
			)
		}
		if len(rows) == 2 {
			t.AddRow("ratio", "", "",
				fmt.Sprintf("%.1fx", rows[1].TotalJ/rows[0].TotalJ), "", "")
		}
		tables = append(tables, t)
	}
	return tables
}
