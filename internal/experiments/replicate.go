package experiments

import (
	"fmt"
	"math"

	"fhdnn/internal/link"
)

// ReplicateRow reports one model's final accuracy across independent seeds
// — the error bars the paper's plots imply but do not tabulate.
type ReplicateRow struct {
	Model    string
	Dataset  string
	Mean     float64
	Std      float64
	Min, Max float64
	Seeds    int
}

// Replicate runs the Fig. 7 comparison across the given seeds (data,
// partition, initialization, and channel noise all reseeded) and returns
// the distribution of final accuracies per model.
func Replicate(s Scale, dataset string, seeds []int64) []ReplicateRow {
	if len(seeds) == 0 {
		seeds = []int64{1, 2, 3}
	}
	var hdAcc, cnnAcc []float64
	for _, seed := range seeds {
		sc := s
		sc.Seed = seed
		cfg := sc.FLConfig(seed + 100)
		hd, cnn := runPair(sc, dataset, true, cfg)
		hdAcc = append(hdAcc, hd.FinalAccuracy())
		cnnAcc = append(cnnAcc, cnn.FinalAccuracy())
	}
	return []ReplicateRow{
		summarize("FHDnn", dataset, hdAcc),
		summarize("CNN", dataset, cnnAcc),
	}
}

func summarize(model, dataset string, acc []float64) ReplicateRow {
	r := ReplicateRow{Model: model, Dataset: dataset, Seeds: len(acc)}
	if len(acc) == 0 {
		return r
	}
	r.Min, r.Max = acc[0], acc[0]
	for _, a := range acc {
		r.Mean += a
		if a < r.Min {
			r.Min = a
		}
		if a > r.Max {
			r.Max = a
		}
	}
	r.Mean /= float64(len(acc))
	for _, a := range acc {
		r.Std += (a - r.Mean) * (a - r.Mean)
	}
	if len(acc) > 1 {
		r.Std = math.Sqrt(r.Std / float64(len(acc)-1))
	} else {
		r.Std = 0
	}
	return r
}

// ReplicateTable renders replication rows.
func ReplicateTable(rows []ReplicateRow) *Table {
	t := &Table{
		Title:  "Replication: final accuracy across seeds",
		Header: []string{"model", "dataset", "mean", "std", "min", "max", "seeds"},
	}
	for _, r := range rows {
		t.AddRowf(r.Model, r.Dataset, r.Mean, r.Std, r.Min, r.Max, r.Seeds)
	}
	return t
}

// LPWANRow is one line of the LoRaWAN deployment budget (the paper's
// Sec. 2.1 motivation made concrete).
type LPWANRow struct {
	SF          int
	DataRate    float64 // b/s nominal
	Effective   float64 // b/s after the 1% duty cycle
	FHDnnUpload string  // one 0.4 MB HD update
	CNNUpload   string  // one 22 MB CNN update
}

// LPWANBudget sweeps LoRa spreading factors and reports how long one
// model update of each kind takes on a duty-cycled link.
func LPWANBudget() []LPWANRow {
	const (
		payload   = 51 // LoRaWAN max payload at high SF
		duty      = 0.01
		hdUpdate  = 400_000    // d=10000 x 10 classes x 4 B
		cnnUpdate = 22_000_000 // ResNet-18 float16
	)
	var rows []LPWANRow
	for sf := 7; sf <= 12; sf++ {
		c := link.DefaultLoRa(sf)
		toa := c.TimeOnAir(payload)
		rows = append(rows, LPWANRow{
			SF:          sf,
			DataRate:    c.DataRate(),
			Effective:   link.DutyCycleThroughput(payload, toa, duty),
			FHDnnUpload: fmtDuration(link.UploadTimeLoRa(c, hdUpdate, payload, duty)),
			CNNUpload:   fmtDuration(link.UploadTimeLoRa(c, cnnUpdate, payload, duty)),
		})
	}
	return rows
}

// LPWANTable renders the LoRa budget.
func LPWANTable(rows []LPWANRow) *Table {
	t := &Table{
		Title:  "LPWAN reality check (Sec 2.1): one update on duty-cycled LoRa",
		Header: []string{"SF", "PHY rate", "effective", "FHDnn update (0.4MB)", "CNN update (22MB)"},
	}
	for _, r := range rows {
		t.AddRow(
			fmt.Sprintf("%d", r.SF),
			fmt.Sprintf("%.0f b/s", r.DataRate),
			fmt.Sprintf("%.1f b/s", r.Effective),
			r.FHDnnUpload,
			r.CNNUpload,
		)
	}
	return t
}
