package experiments

import (
	"fmt"

	"fhdnn/internal/core"
	"fhdnn/internal/fl"
)

// runPair trains FHDnn and the CNN baseline on the same dataset, partition,
// channel, and hyperparameters, returning both histories.
func runPair(s Scale, name string, iid bool, cfg fl.Config) (hd, cnn *fl.History) {
	train, test := s.BuildDataset(name)
	part := s.Partition(train, iid, cfg.Seed)

	f := s.NewFHDnn(train)
	hdCfg := cfg
	hdRes := f.TrainFederated(train, test, part, hdCfg)

	b := s.NewCNNBaseline(name, train)
	cnnHist, _ := core.TrainFederatedCNN(b, train, test, part, cfg)
	return hdRes.History, cnnHist
}

// Fig7Result holds the per-dataset accuracy curves of Figure 7.
type Fig7Result struct {
	Dataset string
	FHDnn   *fl.History
	ResNet  *fl.History
}

// Fig7Accuracy reproduces Figure 7: FHDnn vs the CNN baseline on the three
// image datasets over the configured number of rounds (reliable channel,
// IID split, paper-default E=2, C=0.2, B=10).
func Fig7Accuracy(s Scale, datasets []string) []Fig7Result {
	if len(datasets) == 0 {
		datasets = DatasetNames
	}
	out := make([]Fig7Result, 0, len(datasets))
	for _, name := range datasets {
		cfg := s.FLConfig(s.Seed + 10)
		hd, cnn := runPair(s, name, true, cfg)
		out = append(out, Fig7Result{Dataset: name, FHDnn: hd, ResNet: cnn})
	}
	return out
}

// Fig7Tables renders one curve table per dataset plus a convergence
// summary.
func Fig7Tables(results []Fig7Result) []*Table {
	var tables []*Table
	summary := &Table{
		Title:  "Fig 7 summary: final accuracy and convergence",
		Header: []string{"dataset", "FHDnn final", "CNN final", "FHDnn rounds->80% of best", "CNN rounds->80% of best"},
	}
	for _, r := range results {
		rounds := make([]float64, len(r.FHDnn.Rounds))
		for i := range rounds {
			rounds[i] = float64(i + 1)
		}
		tables = append(tables, CurveTable(
			fmt.Sprintf("Fig 7: accuracy vs rounds (%s)", r.Dataset), "round", rounds,
			Series{Name: "FHDnn", Values: r.FHDnn.Accuracies()},
			Series{Name: "CNN", Values: r.ResNet.Accuracies()},
		))
		hdTarget := 0.8 * r.FHDnn.BestAccuracy()
		cnnTarget := 0.8 * r.ResNet.BestAccuracy()
		summary.AddRowf(r.Dataset,
			r.FHDnn.FinalAccuracy(), r.ResNet.FinalAccuracy(),
			r.FHDnn.RoundsToAccuracy(hdTarget), r.ResNet.RoundsToAccuracy(cnnTarget))
	}
	return append(tables, summary)
}

// HyperGrid is the Fig. 6 hyperparameter sweep: local epochs E, batch size
// B, and participation fraction C.
type HyperGrid struct {
	E []int
	B []int
	C []float64
}

// DefaultHyperGrid returns the paper's grid.
func DefaultHyperGrid() HyperGrid {
	return HyperGrid{E: []int{1, 2, 4}, B: []int{10, 20, 50}, C: []float64{0.1, 0.2, 0.5}}
}

// SmallHyperGrid is a reduced grid for fast runs.
func SmallHyperGrid() HyperGrid {
	return HyperGrid{E: []int{1, 2}, B: []int{10, 50}, C: []float64{0.2, 0.5}}
}

// Fig6Result aggregates the sweep for one model on one data distribution:
// the pointwise mean accuracy curve over all hyperparameter combinations
// and the min/max spread band (the gray region in the paper's plot).
type Fig6Result struct {
	Model        string // "FHDnn" or "CNN"
	Distribution string // "iid" or "noniid"
	Mean, Lo, Hi []float64
	// RoundsToTarget is the first round at which the mean curve reaches
	// the target accuracy (paper: 82%), or -1.
	RoundsToTarget int
	Target         float64
}

// Fig6Hyperparams reproduces Figure 6: for every (E, B, C) in the grid and
// each distribution, train both models on the CIFAR-like dataset and reduce
// the accuracy curves to mean and spread. target is the accuracy threshold
// for the convergence-speed comparison; pass 0 for the paper's 0.82
// relative-to-best variant (80% of the best mean accuracy reached by either
// model, which transfers across scales).
func Fig6Hyperparams(s Scale, grid HyperGrid, target float64) []Fig6Result {
	train, test := s.BuildDataset("cifar10")
	var out []Fig6Result
	for _, dist := range []string{"iid", "noniid"} {
		iid := dist == "iid"
		part := s.Partition(train, iid, s.Seed+20)
		var hdCurves, cnnCurves [][]float64
		for _, e := range grid.E {
			for _, b := range grid.B {
				for _, c := range grid.C {
					cfg := fl.Config{
						NumClients: s.NumClients, ClientFraction: c,
						LocalEpochs: e, BatchSize: b,
						Rounds: s.Rounds, Seed: s.Seed + 21,
					}
					f := s.NewFHDnn(train)
					hdRes := f.TrainFederated(train, test, part, cfg)
					hdCurves = append(hdCurves, hdRes.History.Accuracies())

					bl := s.NewCNNBaseline("cifar10", train)
					cnnHist, _ := core.TrainFederatedCNN(bl, train, test, part, cfg)
					cnnCurves = append(cnnCurves, cnnHist.Accuracies())
				}
			}
		}
		hdMean, hdLo, hdHi := MeanAndSpread(hdCurves)
		cnnMean, cnnLo, cnnHi := MeanAndSpread(cnnCurves)
		tgt := target
		if tgt <= 0 {
			best := 0.0
			for _, v := range hdMean {
				if v > best {
					best = v
				}
			}
			for _, v := range cnnMean {
				if v > best {
					best = v
				}
			}
			tgt = 0.8 * best
		}
		out = append(out,
			Fig6Result{Model: "FHDnn", Distribution: dist, Mean: hdMean, Lo: hdLo, Hi: hdHi,
				RoundsToTarget: firstReach(hdMean, tgt), Target: tgt},
			Fig6Result{Model: "CNN", Distribution: dist, Mean: cnnMean, Lo: cnnLo, Hi: cnnHi,
				RoundsToTarget: firstReach(cnnMean, tgt), Target: tgt},
		)
	}
	return out
}

func firstReach(curve []float64, target float64) int {
	for i, v := range curve {
		if v >= target {
			return i + 1
		}
	}
	return -1
}

// Fig6Tables renders the sweep: one curve table per distribution plus a
// convergence summary.
func Fig6Tables(results []Fig6Result) []*Table {
	byDist := map[string][]Fig6Result{}
	for _, r := range results {
		byDist[r.Distribution] = append(byDist[r.Distribution], r)
	}
	var tables []*Table
	summary := &Table{
		Title:  "Fig 6 summary: rounds to target accuracy (mean over hyperparameters)",
		Header: []string{"model", "distribution", "target", "rounds", "spread(width@final)"},
	}
	for _, dist := range []string{"iid", "noniid"} {
		rs := byDist[dist]
		if len(rs) == 0 {
			continue
		}
		rounds := make([]float64, len(rs[0].Mean))
		for i := range rounds {
			rounds[i] = float64(i + 1)
		}
		var series []Series
		for _, r := range rs {
			series = append(series,
				Series{Name: r.Model + " mean", Values: r.Mean},
				Series{Name: r.Model + " lo", Values: r.Lo},
				Series{Name: r.Model + " hi", Values: r.Hi},
			)
			spread := 0.0
			if n := len(r.Mean); n > 0 {
				spread = r.Hi[n-1] - r.Lo[n-1]
			}
			summary.AddRowf(r.Model, r.Distribution, r.Target, r.RoundsToTarget, spread)
		}
		tables = append(tables, CurveTable("Fig 6: hyperparameter sweep ("+dist+")", "round", rounds, series...))
	}
	return append(tables, summary)
}
