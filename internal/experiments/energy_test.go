package experiments

import (
	"strings"
	"testing"
)

func TestEnergyToAccuracyTables(t *testing.T) {
	tables := EnergyToAccuracy(0, 0) // defaults: 25 vs 75 rounds
	if len(tables) != 2 {
		t.Fatalf("got %d device tables", len(tables))
	}
	for _, tbl := range tables {
		out := tbl.String()
		if !strings.Contains(out, "FHDnn") || !strings.Contains(out, "ResNet") {
			t.Fatalf("missing models in:\n%s", out)
		}
		if !strings.Contains(out, "ratio") {
			t.Fatal("missing ratio row")
		}
	}
}
