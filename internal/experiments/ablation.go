package experiments

import (
	"fmt"

	"fhdnn/internal/channel"
	"fhdnn/internal/core"
	"fhdnn/internal/fl"
	"fhdnn/internal/hdc"
	"fhdnn/internal/simclr"
)

// AblationRow is one configuration of a design-choice sweep.
type AblationRow struct {
	Setting  string
	Accuracy float64
	Extra    string // setting-specific annotation (e.g. update size)
}

// AblationDim sweeps the hypervector dimensionality d — the main
// capacity/robustness/communication trade-off of HD computing.
func AblationDim(s Scale, dims []int) []AblationRow {
	if len(dims) == 0 {
		dims = []int{256, 1024, 4096}
	}
	train, test := s.BuildDataset("cifar10")
	part := s.Partition(train, true, s.Seed+40)
	rows := make([]AblationRow, 0, len(dims))
	for _, d := range dims {
		sc := s
		sc.HDDim = d
		f := sc.NewFHDnn(train)
		res := f.TrainFederated(train, test, part, sc.FLConfig(s.Seed+41))
		rows = append(rows, AblationRow{
			Setting:  fmt.Sprintf("d=%d", d),
			Accuracy: res.History.FinalAccuracy(),
			Extra:    fmtBytes(int64(f.UpdateSizeBytes())),
		})
	}
	return rows
}

// AblationSign compares the paper's bipolar sign(Phi z) encoding against
// the raw projection Phi z.
func AblationSign(s Scale) []AblationRow {
	train, test := s.BuildDataset("cifar10")
	part := s.Partition(train, true, s.Seed+42)
	rows := make([]AblationRow, 0, 2)
	for _, binarize := range []bool{true, false} {
		ext := core.NewRandomConvExtractor(s.Seed, train.X.Dim(1), s.ExtractWidth, s.ImgSize)
		cfg := core.Config{HDDim: s.HDDim, NumClasses: train.NumClasses, Seed: s.Seed, Binarize: binarize}
		f := core.New(ext, cfg)
		res := f.TrainFederated(train, test, part, s.FLConfig(s.Seed+43))
		name := "sign(Phi z)"
		if !binarize {
			name = "raw Phi z"
		}
		rows = append(rows, AblationRow{Setting: name, Accuracy: res.History.FinalAccuracy()})
	}
	return rows
}

// AblationQuantizer isolates the Sec. 3.5.2 quantizer: federated FHDnn
// under bit errors with and without the scale-up/scale-down protection.
// Without the quantizer, bit errors hit raw float32 prototypes.
func AblationQuantizer(s Scale, ber float64) []AblationRow {
	if ber <= 0 {
		ber = 1e-4
	}
	train, test := s.BuildDataset("cifar10")
	part := s.Partition(train, true, s.Seed+44)
	rows := make([]AblationRow, 0, 2)
	for _, quantized := range []bool{true, false} {
		cfg := s.FLConfig(s.Seed + 45)
		if quantized {
			cfg.Uplink = channel.BitErrorQuantized{PE: ber, Bits: 32, BlockLen: s.HDDim}
		} else {
			cfg.Uplink = channel.BitErrorFloat32{PE: ber}
		}
		f := s.NewFHDnn(train)
		res := f.TrainFederated(train, test, part, cfg)
		name := "with quantizer"
		if !quantized {
			name = "raw float32"
		}
		rows = append(rows, AblationRow{
			Setting:  name,
			Accuracy: res.History.FinalAccuracy(),
			Extra:    fmt.Sprintf("BER=%g", ber),
		})
	}
	return rows
}

// AblationRefine sweeps the number of local refinement epochs E, isolating
// one-shot bundling (E would be 0, approximated by E=1 with converged
// bundling) against iterative refinement.
func AblationRefine(s Scale, epochs []int) []AblationRow {
	if len(epochs) == 0 {
		epochs = []int{1, 2, 4, 8}
	}
	train, test := s.BuildDataset("cifar10")
	part := s.Partition(train, true, s.Seed+46)
	rows := make([]AblationRow, 0, len(epochs))
	for _, e := range epochs {
		cfg := s.FLConfig(s.Seed + 47)
		cfg.LocalEpochs = e
		f := s.NewFHDnn(train)
		res := f.TrainFederated(train, test, part, cfg)
		rows = append(rows, AblationRow{
			Setting:  fmt.Sprintf("E=%d", e),
			Accuracy: res.History.FinalAccuracy(),
		})
	}
	return rows
}

// AblationAdaptive compares the paper's fixed refinement rule against
// OnlineHD-style similarity-weighted refinement (an extension the paper
// leaves open).
func AblationAdaptive(s Scale) []AblationRow {
	train, test := s.BuildDataset("cifar10")
	part := s.Partition(train, true, s.Seed+50)
	rows := make([]AblationRow, 0, 2)
	for _, adaptive := range []bool{false, true} {
		f := s.NewFHDnn(train)
		trainer := &fl.HDTrainer{
			Cfg:        s.FLConfig(s.Seed + 51),
			Encoded:    f.EncodeDataset(train),
			Labels:     train.Labels,
			TestEnc:    f.EncodeDataset(test),
			TestLabels: test.Labels,
			NumClasses: train.NumClasses,
			Part:       part,
			Adaptive:   adaptive,
		}
		hist, _ := trainer.Run()
		name := "fixed rule"
		if adaptive {
			name = "adaptive (OnlineHD)"
		}
		rows = append(rows, AblationRow{Setting: name, Accuracy: hist.FinalAccuracy()})
	}
	return rows
}

// AblationExtractor compares the frozen random-conv extractor against a
// SimCLR-pretrained one of the same architecture (DESIGN.md substitution
// #1): pretraining should help, and neither is ever transmitted.
func AblationExtractor(s Scale, pretrainEpochs int) []AblationRow {
	if pretrainEpochs <= 0 {
		pretrainEpochs = 5
	}
	train, test := s.BuildDataset("cifar10")
	part := s.Partition(train, true, s.Seed+48)
	rows := make([]AblationRow, 0, 2)

	run := func(name string, ext core.FeatureExtractor) {
		cfg := core.Config{HDDim: s.HDDim, NumClasses: train.NumClasses, Seed: s.Seed, Binarize: true}
		f := core.New(ext, cfg)
		res := f.TrainFederated(train, test, part, s.FLConfig(s.Seed+49))
		rows = append(rows, AblationRow{Setting: name, Accuracy: res.History.FinalAccuracy()})
	}

	run("random conv", core.NewRandomConvExtractor(s.Seed, train.X.Dim(1), s.ExtractWidth, s.ImgSize))

	simCfg := simclr.DefaultConfig(s.ImgSize)
	simCfg.Epochs = pretrainEpochs
	simCfg.Seed = s.Seed
	run("simclr pretrained", core.NewSimCLRExtractor(train, s.ExtractWidth, simCfg))
	return rows
}

// AblationBursty compares i.i.d. packet erasure against Gilbert-Elliott
// burst losses at the same average rate: bursts erase contiguous stretches
// of the update, probing whether the holographic dispersal still protects
// the model when losses are correlated (real LPWAN links are bursty).
func AblationBursty(s Scale, avgRate float64) []AblationRow {
	if avgRate <= 0 {
		avgRate = 0.2
	}
	train, test := s.BuildDataset("cifar10")
	part := s.Partition(train, true, s.Seed+54)
	rows := make([]AblationRow, 0, 3)
	run := func(name string, up channel.Channel) {
		cfg := s.FLConfig(s.Seed + 55)
		cfg.Uplink = up
		f := s.NewFHDnn(train)
		res := f.TrainFederated(train, test, part, cfg)
		rows = append(rows, AblationRow{Setting: name, Accuracy: res.History.FinalAccuracy(),
			Extra: fmt.Sprintf("avg loss %g", avgRate)})
	}
	run("clean", channel.Perfect{})
	run("iid loss", channel.PacketLoss{Rate: avgRate})
	run("bursty loss (8-packet)", channel.BurstyLoss(avgRate, 8, channel.DefaultPacketBytes))
	return rows
}

// AblationBinary compares float-prototype inference against the bit-packed
// binary model (hdc.BinaryModel): the classic HDC accuracy-for-32x-memory
// trade, which is what a flash-constrained deployment would actually ship.
func AblationBinary(s Scale) []AblationRow {
	train, test := s.BuildDataset("cifar10")
	part := s.Partition(train, true, s.Seed+52)
	f := s.NewFHDnn(train)
	res := f.TrainFederated(train, test, part, s.FLConfig(s.Seed+53))
	floatAcc := res.History.FinalAccuracy()

	testEnc := f.EncodeDataset(test)
	bm := f.Model.Binarize()
	d := f.Cfg.HDDim
	queries := make([]*hdc.BinaryVector, testEnc.Dim(0))
	for i := range queries {
		queries[i] = hdc.Pack(testEnc.Data()[i*d : (i+1)*d])
	}
	binAcc := bm.Accuracy(queries, test.Labels)
	return []AblationRow{
		{Setting: "float32 prototypes", Accuracy: floatAcc,
			Extra: fmtBytes(int64(f.Model.UpdateSizeBytes(4)))},
		{Setting: "bit-packed prototypes", Accuracy: binAcc,
			Extra: fmtBytes(int64(bm.SizeBytes()))},
	}
}

// AblationTable renders ablation rows.
func AblationTable(title string, rows []AblationRow) *Table {
	t := &Table{Title: title, Header: []string{"setting", "accuracy", "notes"}}
	for _, r := range rows {
		t.AddRowf(r.Setting, r.Accuracy, r.Extra)
	}
	return t
}
