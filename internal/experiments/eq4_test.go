package experiments

import (
	"math"
	"testing"
)

func TestEq4GainTracksTheory(t *testing.T) {
	s := tiny()
	rows := Eq4NoisySNRGain(s, []int{1, 4, 16}, 10)
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if math.Abs(r.GainDB-r.TheoryDB) > 1.0 {
			t.Fatalf("N=%d: measured gain %.2f dB vs theory %.2f dB", r.Clients, r.GainDB, r.TheoryDB)
		}
	}
	// single client: no gain
	if math.Abs(rows[0].GainDB) > 1.0 {
		t.Fatalf("N=1 gain should be ~0, got %v", rows[0].GainDB)
	}
	// 16 clients: ~12 dB
	if rows[2].GainDB < 11 || rows[2].GainDB > 13.5 {
		t.Fatalf("N=16 gain %.2f dB, want ~12", rows[2].GainDB)
	}
	_ = Eq4Table(rows).String()
}

func TestEq4DefaultCounts(t *testing.T) {
	rows := Eq4NoisySNRGain(tiny(), nil, 5)
	if len(rows) != 6 {
		t.Fatalf("default sweep has %d points", len(rows))
	}
}
