package experiments

import (
	"fmt"

	"fhdnn/internal/channel"
	"fhdnn/internal/compress"
	"fhdnn/internal/core"
	"fhdnn/internal/fl"
)

// CompressionRow compares one communication-reduction strategy: the
// update-compression baselines of the related work (Sec. 1 cites federated
// dropout and client-resource reduction) versus FHDnn's architectural
// answer (transmit a small HD model instead of compressing a big CNN).
type CompressionRow struct {
	Strategy      string
	Accuracy      float64
	BytesPerRound int64   // mean uplink traffic per round
	RelTraffic    float64 // relative to the uncompressed CNN
}

// CompressionComparison trains CNN FedAvg with each compression codec on
// the uplink, plus the uncompressed CNN and FHDnn, all on the same
// CIFAR-like split.
func CompressionComparison(s Scale) []CompressionRow {
	train, test := s.BuildDataset("cifar10")
	part := s.Partition(train, true, s.Seed+80)
	cfg := s.FLConfig(s.Seed + 81)

	var rows []CompressionRow
	runCNN := func(name string, uplink channel.Channel) {
		c := cfg
		if uplink != nil {
			c.Uplink = uplink
		}
		b := s.NewCNNBaseline("cifar10", train)
		hist, _ := core.TrainFederatedCNN(b, train, test, part, c)
		rows = append(rows, CompressionRow{
			Strategy:      name,
			Accuracy:      hist.FinalAccuracy(),
			BytesPerRound: meanBytes(hist),
		})
	}
	runCNN("CNN float32", nil)
	runCNN("CNN float16", compress.Uplink{C: compress.Float16{}})
	runCNN("CNN int8", compress.Uplink{C: compress.Int8{}})
	runCNN("CNN top-10%", compress.Uplink{C: compress.TopK{Frac: 0.1}})

	f := s.NewFHDnn(train)
	hdRes := f.TrainFederated(train, test, part, cfg)
	rows = append(rows, CompressionRow{
		Strategy:      "FHDnn",
		Accuracy:      hdRes.History.FinalAccuracy(),
		BytesPerRound: meanBytes(hdRes.History),
	})

	base := rows[0].BytesPerRound
	for i := range rows {
		if base > 0 {
			rows[i].RelTraffic = float64(rows[i].BytesPerRound) / float64(base)
		}
	}
	return rows
}

func meanBytes(h *fl.History) int64 {
	if len(h.Rounds) == 0 {
		return 0
	}
	var sum int64
	for _, r := range h.Rounds {
		sum += r.BytesUplinked
	}
	return sum / int64(len(h.Rounds))
}

// CompressionTable renders the comparison.
func CompressionTable(rows []CompressionRow) *Table {
	t := &Table{
		Title:  "Compression baselines vs FHDnn (CIFAR-like, same split and rounds)",
		Header: []string{"strategy", "accuracy", "uplink/round", "traffic vs CNN-fp32"},
	}
	for _, r := range rows {
		t.AddRow(r.Strategy,
			fmt.Sprintf("%.4g", r.Accuracy),
			fmtBytes(r.BytesPerRound),
			fmt.Sprintf("%.3g", r.RelTraffic))
	}
	return t
}
