package experiments

import (
	"strings"
	"testing"

	"fhdnn/internal/fl"
)

var emptyHistory fl.History

func TestCompressionComparison(t *testing.T) {
	s := tiny()
	s.Rounds = 5
	rows := CompressionComparison(s)
	if len(rows) != 5 {
		t.Fatalf("got %d rows", len(rows))
	}
	byName := map[string]CompressionRow{}
	for _, r := range rows {
		byName[r.Strategy] = r
	}
	fp32 := byName["CNN float32"]
	fp16 := byName["CNN float16"]
	int8 := byName["CNN int8"]
	topk := byName["CNN top-10%"]
	fhd := byName["FHDnn"]

	// traffic ordering: fp32 > fp16 > int8 > topk
	if !(fp32.BytesPerRound > fp16.BytesPerRound &&
		fp16.BytesPerRound > int8.BytesPerRound &&
		int8.BytesPerRound > topk.BytesPerRound) {
		t.Fatalf("traffic ordering wrong: %d %d %d %d",
			fp32.BytesPerRound, fp16.BytesPerRound, int8.BytesPerRound, topk.BytesPerRound)
	}
	// relative traffic of fp16 is ~0.5, int8 ~0.25
	if fp16.RelTraffic < 0.45 || fp16.RelTraffic > 0.55 {
		t.Fatalf("fp16 relative traffic %v", fp16.RelTraffic)
	}
	if int8.RelTraffic < 0.2 || int8.RelTraffic > 0.3 {
		t.Fatalf("int8 relative traffic %v", int8.RelTraffic)
	}
	// lossless-ish compression should not destroy CNN accuracy relative
	// to fp32 (both may be low at tiny scale, but fp16 tracks fp32)
	if fp16.Accuracy < fp32.Accuracy-0.15 {
		t.Fatalf("fp16 accuracy %v collapsed vs fp32 %v", fp16.Accuracy, fp32.Accuracy)
	}
	// the paper's point: FHDnn beats every compressed-CNN point on
	// accuracy at far lower traffic
	if fhd.Accuracy <= fp32.Accuracy {
		t.Fatalf("FHDnn %v should beat CNN %v", fhd.Accuracy, fp32.Accuracy)
	}
	// NOTE: at this miniature scale the toy ResNet has fewer parameters
	// than the HD model, so absolute traffic favors the CNN here; the
	// paper-scale accounting (11.17M-param ResNet vs 100K-entry HD model)
	// is what the `comm` experiment covers. This test only checks that
	// codec traffic ratios and accuracy behave correctly.
	if fhd.BytesPerRound <= 0 {
		t.Fatal("FHDnn traffic accounting missing")
	}
	out := CompressionTable(rows).String()
	if !strings.Contains(out, "FHDnn") {
		t.Fatal("table rendering broken")
	}
}

func TestMeanBytesEmptyHistory(t *testing.T) {
	if meanBytes(&emptyHistory) != 0 {
		t.Fatal("empty history mean bytes must be 0")
	}
}
