package experiments

import (
	"fmt"
	"time"

	"fhdnn/internal/device"
	"fhdnn/internal/link"
	"fhdnn/internal/nn"
)

// Table1Row is one device row of the paper's Table 1: client local-training
// time and energy for FHDnn and the ResNet baseline.
type Table1Row struct {
	Device                    string
	FHDnnSec, ResNetSec       float64
	FHDnnJoules, ResNetJoules float64
}

// Table1EdgeDevices evaluates the calibrated device models on the paper's
// reference workload (CIFAR-10, 500 local samples, E=2, ResNet-18,
// d=10000). By calibration these reproduce the measured values; the model's
// purpose is to extrapolate to other workloads (see Table1Scaled).
func Table1EdgeDevices() []Table1Row {
	ref := device.PaperReference()
	profiles := []device.Profile{device.RaspberryPi3(), device.JetsonNano()}
	rows := make([]Table1Row, 0, len(profiles))
	for _, p := range profiles {
		cnn := ref.CNNWorkload()
		fhd := ref.FHDnnWorkload()
		rows = append(rows, Table1Row{
			Device:       p.Name,
			FHDnnSec:     p.Time(fhd),
			ResNetSec:    p.Time(cnn),
			FHDnnJoules:  p.Energy(fhd),
			ResNetJoules: p.Energy(cnn),
		})
	}
	return rows
}

// Table1Scaled evaluates the same device models on a different workload —
// e.g. more local epochs or a different HD dimension — which is where an
// analytic model earns its keep.
func Table1Scaled(samples, epochs, hdDim int) []Table1Row {
	ref := device.PaperReference()
	ref.Samples = samples
	ref.Epochs = epochs
	ref.HDDim = hdDim
	profiles := []device.Profile{device.RaspberryPi3(), device.JetsonNano()}
	rows := make([]Table1Row, 0, len(profiles))
	for _, p := range profiles {
		rows = append(rows, Table1Row{
			Device:       p.Name,
			FHDnnSec:     p.Time(ref.FHDnnWorkload()),
			ResNetSec:    p.Time(ref.CNNWorkload()),
			FHDnnJoules:  p.Energy(ref.FHDnnWorkload()),
			ResNetJoules: p.Energy(ref.CNNWorkload()),
		})
	}
	return rows
}

// Table1Render renders device rows in the paper's layout.
func Table1Render(title string, rows []Table1Row) *Table {
	t := &Table{
		Title:  title,
		Header: []string{"device", "FHDnn time(s)", "ResNet time(s)", "FHDnn energy(J)", "ResNet energy(J)"},
	}
	for _, r := range rows {
		t.AddRowf(r.Device, r.FHDnnSec, r.ResNetSec, r.FHDnnJoules, r.ResNetJoules)
	}
	return t
}

// CommRow is one line of the Sec. 4.4 communication-efficiency comparison.
type CommRow struct {
	Model          string
	UpdateBytes    int64
	Rounds         int
	DataBytes      int64 // per client over the run
	ClockTime      time.Duration
	RateBitsPerSec float64
}

// CommEfficiency reproduces Sec. 4.4 at the paper's constants: ResNet-18
// (11.17M params, float16 on the wire = 22 MB) over the error-free 1.6 Mb/s
// link vs FHDnn (d=10000, 10 classes, ~1 MB with the paper's accounting)
// over the error-admitting 5 Mb/s link. Rounds-to-convergence default to
// the paper's observations (FHDnn < 25 rounds, ResNet ~3x more plus
// error-free slowdown) but can be overridden with measured values from a
// Fig. 7 run.
func CommEfficiency(hdRounds, cnnRounds int, clients int) []CommRow {
	if hdRounds <= 0 {
		hdRounds = 25
	}
	if cnnRounds <= 0 {
		cnnRounds = 75
	}
	if clients <= 0 {
		clients = 100
	}
	lte := link.PaperLTE()

	resnet := nn.DefaultResNet18(3, 10)
	probe := nn.NewResNet(newSeededRand(0), resnet)
	cnnParams := nn.NumParams(probe.Params())
	cnnBytes := int64(cnnParams) * 2 // float16 wire format, paper: 22 MB

	hdParams := 10000 * 10
	hdBytes := int64(hdParams) * 8 // paper accounting: ~1 MB per update

	return []CommRow{
		{
			Model:          "FHDnn",
			UpdateBytes:    hdBytes,
			Rounds:         hdRounds,
			DataBytes:      link.DataTransmitted(hdRounds, hdBytes),
			ClockTime:      link.TrainingTime(hdRounds, hdBytes, clients, lte.ErrorAdmittingRate),
			RateBitsPerSec: lte.ErrorAdmittingRate,
		},
		{
			Model:          "ResNet-18",
			UpdateBytes:    cnnBytes,
			Rounds:         cnnRounds,
			DataBytes:      link.DataTransmitted(cnnRounds, cnnBytes),
			ClockTime:      link.TrainingTime(cnnRounds, cnnBytes, clients, lte.ErrorFreeRate),
			RateBitsPerSec: lte.ErrorFreeRate,
		},
	}
}

// CommTable renders the comparison along with the headline ratios.
func CommTable(rows []CommRow) *Table {
	t := &Table{
		Title:  "Sec 4.4: communication efficiency (paper constants)",
		Header: []string{"model", "update", "rounds", "data/client", "rate", "clock time"},
	}
	for _, r := range rows {
		t.AddRow(r.Model,
			fmtBytes(r.UpdateBytes),
			fmt.Sprintf("%d", r.Rounds),
			fmtBytes(r.DataBytes),
			fmt.Sprintf("%.1f Mb/s", r.RateBitsPerSec/1e6),
			fmtDuration(r.ClockTime),
		)
	}
	if len(rows) == 2 {
		t.AddRow("ratio",
			fmt.Sprintf("%.1fx", float64(rows[1].UpdateBytes)/float64(rows[0].UpdateBytes)),
			fmt.Sprintf("%.1fx", float64(rows[1].Rounds)/float64(rows[0].Rounds)),
			fmt.Sprintf("%.1fx", float64(rows[1].DataBytes)/float64(rows[0].DataBytes)),
			"",
			fmt.Sprintf("%.0fx", float64(rows[1].ClockTime)/float64(rows[0].ClockTime)),
		)
	}
	return t
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2f GB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2f MB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2f KB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%d B", b)
}

func fmtDuration(d time.Duration) string {
	h := d.Hours()
	if h >= 1 {
		return fmt.Sprintf("%.1f h", h)
	}
	return fmt.Sprintf("%.1f min", d.Minutes())
}
