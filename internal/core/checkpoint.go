package core

import (
	"fmt"
	"io"

	"fhdnn/internal/hdc"
	"fhdnn/internal/nn"
)

// Full-model checkpointing: an FHDnn deployment persists three pieces —
// the frozen extractor weights, the shared random projection, and the
// trained HD prototypes. Save writes them back-to-back; Load restores them
// into an identically-assembled FHDnn (construct with the same
// architecture and config first, then Load).

// Save writes the complete model state to w.
func (f *FHDnn) Save(w io.Writer) error {
	if err := nn.SaveParams(w, f.Extractor.(*NetworkExtractor).Net.Params()); err != nil {
		return fmt.Errorf("core: save extractor: %w", err)
	}
	if _, err := f.Encoder.WriteTo(w); err != nil {
		return fmt.Errorf("core: save encoder: %w", err)
	}
	if _, err := f.Model.WriteTo(w); err != nil {
		return fmt.Errorf("core: save model: %w", err)
	}
	return nil
}

// Load restores state written by Save into this FHDnn. The receiver must
// have been assembled with the same extractor architecture and Config;
// dimension mismatches are rejected.
func (f *FHDnn) Load(r io.Reader) error {
	ext, ok := f.Extractor.(*NetworkExtractor)
	if !ok {
		return fmt.Errorf("core: Load requires a NetworkExtractor, got %T", f.Extractor)
	}
	if err := nn.LoadParams(r, ext.Net.Params()); err != nil {
		return fmt.Errorf("core: load extractor: %w", err)
	}
	enc, err := hdc.ReadEncoder(r)
	if err != nil {
		return fmt.Errorf("core: load encoder: %w", err)
	}
	if enc.D != f.Encoder.D || enc.N != f.Encoder.N {
		return fmt.Errorf("core: encoder dims %dx%d, want %dx%d", enc.D, enc.N, f.Encoder.D, f.Encoder.N)
	}
	model, err := hdc.ReadModel(r)
	if err != nil {
		return fmt.Errorf("core: load model: %w", err)
	}
	if model.K != f.Model.K || model.D != f.Model.D {
		return fmt.Errorf("core: model dims %dx%d, want %dx%d", model.K, model.D, f.Model.K, f.Model.D)
	}
	f.Encoder = enc
	f.Model = model
	return nil
}
