package core

import (
	"math/rand"
	"testing"

	"fhdnn/internal/channel"
	"fhdnn/internal/dataset"
	"fhdnn/internal/fl"
	"fhdnn/internal/nn"
	"fhdnn/internal/simclr"
)

// testData builds a small 3-class image dataset and an IID partition.
func testData(t *testing.T, seed int64, numClients int) (*dataset.Dataset, *dataset.Dataset, dataset.Partition) {
	t.Helper()
	cfg := dataset.ImageConfig{
		Name: "core", Classes: 3, Channels: 1, Size: 8,
		TrainPerClass: 25, TestPerClass: 10,
		Noise: 0.3, Shift: 1, GainStd: 0.15, Seed: seed,
	}
	train, test := dataset.GenerateImages(cfg)
	part := dataset.PartitionIID(train.Len(), numClients, rand.New(rand.NewSource(seed)))
	return train, test, part
}

func testFHDnn(seed int64) *FHDnn {
	ext := NewRandomConvExtractor(seed, 1, 4, 8)
	cfg := Config{HDDim: 1024, NumClasses: 3, Seed: seed, Binarize: true}
	return New(ext, cfg)
}

func TestNewValidatesConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad config")
		}
	}()
	New(NewRandomConvExtractor(1, 1, 4, 8), Config{HDDim: 0, NumClasses: 3})
}

func TestRandomConvExtractorDeterministic(t *testing.T) {
	train, _, _ := testData(t, 1, 3)
	a := NewRandomConvExtractor(7, 1, 4, 8).Features(train.X)
	b := NewRandomConvExtractor(7, 1, 4, 8).Features(train.X)
	if !a.Equal(b, 0) {
		t.Fatal("same-seed extractors must agree")
	}
	c := NewRandomConvExtractor(8, 1, 4, 8).Features(train.X)
	if a.Equal(c, 1e-9) {
		t.Fatal("different seeds must differ")
	}
}

func TestExtractorChunkingMatchesWholeBatch(t *testing.T) {
	// more samples than extractBatch to exercise the chunk loop
	cfg := dataset.ImageConfig{
		Name: "chunk", Classes: 2, Channels: 1, Size: 8,
		TrainPerClass: 40, TestPerClass: 1,
		Noise: 0.2, Shift: 1, GainStd: 0.1, Seed: 2,
	}
	train, _ := dataset.GenerateImages(cfg)
	ext := NewRandomConvExtractor(3, 1, 4, 8)
	whole := ext.Features(train.X)
	// features of a subset must equal the corresponding rows
	sub := train.Subset([]int{0, 65, 79})
	subFeats := ext.Features(sub.X)
	for j := 0; j < ext.Dim(); j++ {
		if subFeats.At(0, j) != whole.At(0, j) ||
			subFeats.At(1, j) != whole.At(65, j) ||
			subFeats.At(2, j) != whole.At(79, j) {
			t.Fatal("chunked extraction mismatch")
		}
	}
}

func TestCentralizedTrainingLearns(t *testing.T) {
	train, test, _ := testData(t, 3, 3)
	f := testFHDnn(3)
	f.TrainCentralized(train, 5)
	if acc := f.Accuracy(test); acc < 0.6 {
		t.Fatalf("centralized FHDnn accuracy %v, want > 0.6 (chance 0.33)", acc)
	}
}

func TestPredictMatchesAccuracy(t *testing.T) {
	train, test, _ := testData(t, 4, 3)
	f := testFHDnn(4)
	f.TrainCentralized(train, 3)
	preds := f.Predict(test.X)
	correct := 0
	for i, p := range preds {
		if p == test.Labels[i] {
			correct++
		}
	}
	if got := float64(correct) / float64(test.Len()); got != f.Accuracy(test) {
		t.Fatalf("Predict/Accuracy disagree: %v vs %v", got, f.Accuracy(test))
	}
}

func TestFederatedFHDnnLearnsFast(t *testing.T) {
	train, test, part := testData(t, 5, 5)
	f := testFHDnn(5)
	res := f.TrainFederated(train, test, part, fl.Config{
		NumClients: 5, ClientFraction: 0.4, LocalEpochs: 2, BatchSize: 10, Rounds: 5, Seed: 5,
	})
	if res.History.Rounds[0].TestAccuracy < 0.5 {
		t.Fatalf("round-1 accuracy %v: FHDnn should converge almost immediately",
			res.History.Rounds[0].TestAccuracy)
	}
	// the trained model must be installed back into f
	if f.Accuracy(test) != res.History.FinalAccuracy() {
		t.Fatal("trained model not installed")
	}
}

func TestFederatedFHDnnSurvivesPacketLoss(t *testing.T) {
	// The robustness argument is dimensional: erased packets attenuate
	// blocks of the prototypes, and the cosine distortion shrinks as d
	// grows and as more participants are averaged. Test near paper
	// conditions: a generous d and most clients participating.
	train, test, part := testData(t, 6, 5)
	build := func() *FHDnn {
		ext := NewRandomConvExtractor(6, 1, 4, 8)
		return New(ext, Config{HDDim: 8192, NumClasses: 3, Seed: 6, Binarize: true})
	}
	clean := build().TrainFederated(train, test, part, fl.Config{
		NumClients: 5, ClientFraction: 0.8, LocalEpochs: 2, BatchSize: 10, Rounds: 8, Seed: 6,
	})
	lossy := build().TrainFederated(train, test, part, fl.Config{
		NumClients: 5, ClientFraction: 0.8, LocalEpochs: 2, BatchSize: 10, Rounds: 8, Seed: 6,
		Uplink: channel.PacketLoss{Rate: 0.2, PacketBytes: 512},
	})
	if lossy.History.FinalAccuracy() < clean.History.FinalAccuracy()-0.1 {
		t.Fatalf("20%% packet loss should barely hurt FHDnn: clean %v vs lossy %v",
			clean.History.FinalAccuracy(), lossy.History.FinalAccuracy())
	}
}

func TestCNNBaselineAccounting(t *testing.T) {
	b := NewResNetBaseline(nn.ResNetConfig{InChannels: 1, NumClasses: 3, BaseWidth: 4, Blocks: []int{1, 1}}, 0.05, 0.9)
	if b.NumParams <= 0 {
		t.Fatal("baseline must count parameters")
	}
	b2 := NewMNISTCNNBaseline(nn.MNISTCNNConfig{
		InChannels: 1, ImgSize: 8, NumClasses: 3, C1: 2, C2: 4, Hidden: 8}, 0.05, 0.9)
	if b2.NumParams <= 0 {
		t.Fatal("MNIST baseline must count parameters")
	}
}

func TestTrainFederatedCNNRuns(t *testing.T) {
	train, test, part := testData(t, 7, 4)
	b := NewMNISTCNNBaseline(nn.MNISTCNNConfig{
		InChannels: 1, ImgSize: 8, NumClasses: 3, C1: 4, C2: 8, Hidden: 16}, 0.05, 0.9)
	hist, net := TrainFederatedCNN(b, train, test, part, fl.Config{
		NumClients: 4, ClientFraction: 0.5, LocalEpochs: 2, BatchSize: 10, Rounds: 6, Seed: 7,
	})
	if hist.FinalAccuracy() < 0.5 {
		t.Fatalf("CNN baseline accuracy %v", hist.FinalAccuracy())
	}
	if net == nil {
		t.Fatal("missing trained network")
	}
}

// The paper's central comparison, end to end at miniature scale: on the
// same unreliable channel, FHDnn keeps its accuracy while the CNN baseline
// collapses.
func TestFHDnnBeatsCNNUnderBitErrors(t *testing.T) {
	train, test, part := testData(t, 8, 4)
	flCfg := fl.Config{NumClients: 4, ClientFraction: 0.5, LocalEpochs: 2, BatchSize: 10, Rounds: 6, Seed: 8}

	cnnCfg := flCfg
	cnnCfg.Uplink = channel.BitErrorFloat32{PE: 1e-4}
	b := NewMNISTCNNBaseline(nn.MNISTCNNConfig{
		InChannels: 1, ImgSize: 8, NumClasses: 3, C1: 4, C2: 8, Hidden: 16}, 0.05, 0.9)
	cnnHist, _ := TrainFederatedCNN(b, train, test, part, cnnCfg)

	hdCfg := flCfg
	hdCfg.Uplink = channel.BitErrorQuantized{PE: 1e-4, Bits: 32, BlockLen: 1024}
	f := testFHDnn(8)
	hdRes := f.TrainFederated(train, test, part, hdCfg)

	if hdRes.History.FinalAccuracy() <= cnnHist.FinalAccuracy() {
		t.Fatalf("under bit errors FHDnn (%v) should beat the CNN (%v)",
			hdRes.History.FinalAccuracy(), cnnHist.FinalAccuracy())
	}
}

func TestSimCLRExtractorEndToEnd(t *testing.T) {
	train, test, part := testData(t, 9, 3)
	cfg := simclr.DefaultConfig(8)
	cfg.Epochs = 3
	cfg.BatchSize = 15
	cfg.Seed = 9
	ext := NewSimCLRExtractor(train, 2, cfg)
	f := New(ext, Config{HDDim: 1024, NumClasses: 3, Seed: 9, Binarize: true})
	res := f.TrainFederated(train, test, part, fl.Config{
		NumClients: 3, ClientFraction: 1, LocalEpochs: 2, BatchSize: 10, Rounds: 3, Seed: 9,
	})
	if res.History.FinalAccuracy() < 0.5 {
		t.Fatalf("SimCLR-extractor FHDnn accuracy %v", res.History.FinalAccuracy())
	}
}

func TestUpdateSizeBytes(t *testing.T) {
	f := testFHDnn(10)
	if f.UpdateSizeBytes() != 3*1024*4 {
		t.Fatalf("update size %d", f.UpdateSizeBytes())
	}
}
