package core

import (
	"bytes"
	"math/rand"
	"testing"

	"fhdnn/internal/channel"
	"fhdnn/internal/dataset"
	"fhdnn/internal/fl"
	"fhdnn/internal/hdc"
	"fhdnn/internal/simclr"
)

// TestFullPipeline is the capstone integration test: the entire FHDnn
// lifecycle in one pass —
//
//	SimCLR pretraining -> frozen extractor -> federated bundling over a
//	lossy uplink -> checkpoint round trip -> binarized edge inference.
//
// Every stage must compose with the others, which unit tests alone cannot
// guarantee.
func TestFullPipeline(t *testing.T) {
	const seed = 77
	cfgData := dataset.ImageConfig{
		Name: "pipe", Classes: 4, Channels: 1, Size: 8,
		TrainPerClass: 25, TestPerClass: 8,
		Noise: 0.3, Shift: 1, GainStd: 0.15, Seed: seed,
	}
	train, test := dataset.GenerateImages(cfgData)

	// 1. self-supervised pretraining (no labels touched)
	simCfg := simclr.DefaultConfig(8)
	simCfg.Epochs = 4
	simCfg.BatchSize = 20
	simCfg.Seed = seed
	ext := NewSimCLRExtractor(train, 2, simCfg)

	// 2. assemble FHDnn and train federated over 20% packet loss
	f := New(ext, Config{HDDim: 2048, NumClasses: 4, Seed: seed, Binarize: true})
	part := dataset.PartitionShards(train.Labels, 5, 2, rand.New(rand.NewSource(seed))) // non-IID
	res := f.TrainFederated(train, test, part, fl.Config{
		NumClients: 5, ClientFraction: 0.8, LocalEpochs: 2, BatchSize: 10,
		Rounds: 6, Seed: seed,
		Uplink:   channel.PacketLoss{Rate: 0.2},
		Parallel: 3,
	})
	acc := res.History.FinalAccuracy()
	if acc < 0.5 { // chance is 0.25
		t.Fatalf("pipeline accuracy %v too low", acc)
	}

	// 3. checkpoint round trip into a freshly assembled model
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	ext2 := NewSimCLRExtractor(train, 2, func() simclr.Config {
		c := simCfg
		c.Seed = seed + 1 // different weights until Load overwrites them
		c.Epochs = 1
		return c
	}())
	g := New(ext2, Config{HDDim: 2048, NumClasses: 4, Seed: seed + 1, Binarize: true})
	if err := g.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if got := g.Accuracy(test); got != acc {
		t.Fatalf("restored accuracy %v, want %v", got, acc)
	}

	// 4. binarize for edge inference: 32x smaller, nearly as accurate
	testEnc := g.EncodeDataset(test)
	bm := g.Model.Binarize()
	queries := make([]*hdc.BinaryVector, testEnc.Dim(0))
	for i := range queries {
		queries[i] = hdc.Pack(testEnc.Data()[i*2048 : (i+1)*2048])
	}
	binAcc := bm.Accuracy(queries, test.Labels)
	if binAcc < acc-0.15 {
		t.Fatalf("binarized accuracy %v lost too much vs %v", binAcc, acc)
	}
	if bm.SizeBytes() >= g.Model.UpdateSizeBytes(4)/16 {
		t.Fatalf("binary model %dB not small enough vs %dB", bm.SizeBytes(), g.Model.UpdateSizeBytes(4))
	}
}
