// Package core assembles the FHDnn system — the paper's contribution: a
// frozen, self-supervised CNN feature extractor feeding a random-projection
// hyperdimensional encoder and an HD class-prototype learner, trained by
// federated bundling. Only the HD model crosses the network; the extractor
// and encoder are fixed and shared by all parties.
//
// The package also wires the CNN FedAvg comparator through the same
// datasets, partitions, and unreliable channels so that every experiment in
// the paper's evaluation is an apples-to-apples comparison.
package core

import (
	"fmt"
	"math/rand"

	"fhdnn/internal/dataset"
	"fhdnn/internal/fl"
	"fhdnn/internal/hdc"
	"fhdnn/internal/nn"
	"fhdnn/internal/simclr"
	"fhdnn/internal/tensor"
)

// FeatureExtractor maps image batches to feature vectors. Implementations
// must be deterministic at call time (frozen weights, eval mode).
type FeatureExtractor interface {
	// Features maps [n, C, H, W] images to [n, Dim()] features.
	Features(x *tensor.Tensor) *tensor.Tensor
	// Dim returns the feature dimensionality.
	Dim() int
	// Name identifies the extractor in reports.
	Name() string
}

// extractBatch is the chunk size used when running frozen extractors, to
// bound peak memory on large datasets.
const extractBatch = 64

// NetworkExtractor freezes any nn network body as a feature extractor.
type NetworkExtractor struct {
	Net   *nn.Sequential
	D     int
	Label string
}

// Features runs the frozen network in eval mode, in chunks.
func (e *NetworkExtractor) Features(x *tensor.Tensor) *tensor.Tensor {
	n := x.Dim(0)
	out := tensor.New(n, e.D)
	sample := x.Len() / n
	for lo := 0; lo < n; lo += extractBatch {
		hi := lo + extractBatch
		if hi > n {
			hi = n
		}
		shape := append([]int{hi - lo}, x.Shape()[1:]...)
		chunk := tensor.FromSlice(x.Data()[lo*sample:hi*sample], shape...)
		feats := e.Net.Forward(chunk, false)
		copy(out.Data()[lo*e.D:hi*e.D], feats.Data())
	}
	return out
}

// Dim implements FeatureExtractor.
func (e *NetworkExtractor) Dim() int { return e.D }

// Name implements FeatureExtractor.
func (e *NetworkExtractor) Name() string { return e.Label }

// NewRandomConvExtractor builds a frozen, randomly-initialized
// convolutional extractor from a seed: one wide 3x3 convolution, ReLU, and
// 2x2 average pooling, flattened to width*(size/2)^2 features. Overcomplete
// random convolutional features are the standard data-free stand-in for a
// generic pretrained network: they are class agnostic, shared by
// construction (same seed everywhere), and preserve the coarse spatial
// structure the HD learner needs. size must be even.
func NewRandomConvExtractor(seed int64, channels, width, size int) *NetworkExtractor {
	if size%2 != 0 {
		panic(fmt.Sprintf("core: image size %d must be even", size))
	}
	rng := rand.New(rand.NewSource(seed))
	net := nn.NewSequential(
		nn.NewConv2D(rng, channels, width, 3, 1, 1, false),
		&nn.ReLU{},
		nn.NewAvgPool2D(2),
		&nn.Flatten{},
	)
	half := size / 2
	return &NetworkExtractor{
		Net: net, D: width * half * half,
		Label: fmt.Sprintf("randconv(w=%d)", width),
	}
}

// NewSimCLRExtractor pretrains a small encoder with SimCLR on the given
// unlabeled dataset and freezes it — the paper's actual recipe, at CPU
// scale.
func NewSimCLRExtractor(ds *dataset.Dataset, width int, cfg simclr.Config) *NetworkExtractor {
	rng := rand.New(rand.NewSource(cfg.Seed))
	enc, dim := simclr.NewSmallEncoder(rng, ds.X.Dim(1), width, ds.X.Dim(2))
	res := simclr.Pretrain(enc, dim, ds, cfg)
	return &NetworkExtractor{Net: res.Encoder, D: dim, Label: fmt.Sprintf("simclr(w=%d)", width)}
}

// NewResNetBodyExtractor freezes the body of a (possibly pretrained) ResNet.
func NewResNetBodyExtractor(r *nn.ResNet, label string) *NetworkExtractor {
	return &NetworkExtractor{Net: r.Body, D: r.FeatureDim(), Label: label}
}

// Config sizes an FHDnn instance.
type Config struct {
	// HDDim is the hypervector dimensionality d (paper-scale: 10000).
	HDDim int
	// NumClasses is the K of the HD classifier.
	NumClasses int
	// Seed derives the shared random projection; all clients and the
	// server must agree on it.
	Seed int64
	// Binarize selects sign(Phi z) encoding (paper default true).
	Binarize bool
}

// DefaultConfig returns paper-like defaults for the given class count.
func DefaultConfig(numClasses int) Config {
	return Config{HDDim: 10000, NumClasses: numClasses, Seed: 1, Binarize: true}
}

// FHDnn is the composed model: extractor -> HD encoder -> HD classifier.
type FHDnn struct {
	Extractor FeatureExtractor
	Encoder   *hdc.Encoder
	Model     *hdc.Model
	Cfg       Config
}

// New assembles an FHDnn from an extractor and a configuration.
func New(extractor FeatureExtractor, cfg Config) *FHDnn {
	if cfg.HDDim <= 0 || cfg.NumClasses <= 0 {
		panic(fmt.Sprintf("core: invalid config %+v", cfg))
	}
	enc := hdc.NewEncoder(rand.New(rand.NewSource(cfg.Seed)), cfg.HDDim, extractor.Dim())
	enc.Binarize = cfg.Binarize
	return &FHDnn{
		Extractor: extractor,
		Encoder:   enc,
		Model:     hdc.NewModel(cfg.NumClasses, cfg.HDDim),
		Cfg:       cfg,
	}
}

// EncodeDataset runs the frozen pipeline (features then hypervectors) over
// a dataset once; the result is what federated clients train on.
func (f *FHDnn) EncodeDataset(ds *dataset.Dataset) *tensor.Tensor {
	return f.Encoder.EncodeBatch(f.Extractor.Features(ds.X))
}

// Predict classifies one image tensor [1, C, H, W] (or a batch, returning
// per-row classes).
func (f *FHDnn) Predict(x *tensor.Tensor) []int {
	enc := f.Encoder.EncodeBatch(f.Extractor.Features(x))
	n := enc.Dim(0)
	out := make([]int, n)
	for s := 0; s < n; s++ {
		out[s], _ = f.Model.Predict(enc.Data()[s*f.Cfg.HDDim : (s+1)*f.Cfg.HDDim])
	}
	return out
}

// Accuracy measures classification accuracy on a dataset.
func (f *FHDnn) Accuracy(ds *dataset.Dataset) float64 {
	enc := f.EncodeDataset(ds)
	return f.Model.Accuracy(enc, ds.Labels)
}

// TrainCentralized trains the HD model on all data at once (one-shot plus
// refinement) — the non-federated baseline and the first step of every
// client's local update.
func (f *FHDnn) TrainCentralized(ds *dataset.Dataset, refineEpochs int) {
	enc := f.EncodeDataset(ds)
	f.Model.OneShotTrain(enc, ds.Labels)
	for e := 0; e < refineEpochs; e++ {
		if wrong := f.Model.RefineEpoch(enc, ds.Labels); wrong == 0 {
			break
		}
	}
}

// UpdateSizeBytes returns the size of one transmitted FHDnn update.
func (f *FHDnn) UpdateSizeBytes() int { return f.Model.UpdateSizeBytes(4) }

// FederatedResult bundles a federated run's outputs.
type FederatedResult struct {
	History *fl.History
	Model   *FHDnn
}

// TrainFederated runs federated bundling of this FHDnn over the given
// train/test datasets and client partition. Features and hypervectors are
// computed once up front (they are frozen), then fl.HDTrainer handles the
// rounds. The trained global model is installed into f.Model.
func (f *FHDnn) TrainFederated(train, test *dataset.Dataset, part dataset.Partition, cfg fl.Config) *FederatedResult {
	trainer := &fl.HDTrainer{
		Cfg:        cfg,
		Encoded:    f.EncodeDataset(train),
		Labels:     train.Labels,
		TestEnc:    f.EncodeDataset(test),
		TestLabels: test.Labels,
		NumClasses: f.Cfg.NumClasses,
		Part:       part,
	}
	hist, model := trainer.Run()
	f.Model = model
	return &FederatedResult{History: hist, Model: f}
}

// CNNBaseline describes the FedAvg comparator trained on the same split.
type CNNBaseline struct {
	Build    func(rng *rand.Rand) fl.Network
	LR       float64
	Momentum float64
	// NumParams is used for update-size accounting (bytes = 4*NumParams).
	NumParams int
}

// NewResNetBaseline returns a ResNet comparator of the given configuration.
func NewResNetBaseline(cfg nn.ResNetConfig, lr, momentum float64) CNNBaseline {
	probe := nn.NewResNet(rand.New(rand.NewSource(0)), cfg)
	return CNNBaseline{
		Build:     func(rng *rand.Rand) fl.Network { return nn.NewResNet(rng, cfg) },
		LR:        lr,
		Momentum:  momentum,
		NumParams: nn.NumParams(probe.Params()),
	}
}

// NewMNISTCNNBaseline returns the paper's 2-conv/2-FC comparator.
func NewMNISTCNNBaseline(cfg nn.MNISTCNNConfig, lr, momentum float64) CNNBaseline {
	probe := nn.NewMNISTCNN(rand.New(rand.NewSource(0)), cfg)
	return CNNBaseline{
		Build:     func(rng *rand.Rand) fl.Network { return nn.NewMNISTCNN(rng, cfg) },
		LR:        lr,
		Momentum:  momentum,
		NumParams: nn.NumParams(probe.Params()),
	}
}

// TrainFederatedCNN runs the FedAvg comparator on the same data, partition,
// and channel.
func TrainFederatedCNN(b CNNBaseline, train, test *dataset.Dataset, part dataset.Partition, cfg fl.Config) (*fl.History, fl.Network) {
	trainer := &fl.CNNTrainer{
		Cfg:   cfg,
		Build: b.Build,
		Train: train, Test: test, Part: part,
		LR: b.LR, Momentum: b.Momentum,
	}
	return trainer.Run()
}
