package core

import (
	"bytes"
	"testing"
)

func TestFHDnnSaveLoadRoundTrip(t *testing.T) {
	train, test, _ := testData(t, 20, 3)
	f := testFHDnn(20)
	f.TrainCentralized(train, 3)
	want := f.Accuracy(test)

	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}

	// a freshly assembled model with different seed weights
	g := testFHDnn(99)
	if g.Accuracy(test) == want {
		t.Skip("fresh model accidentally matches; pick another seed")
	}
	if err := g.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if got := g.Accuracy(test); got != want {
		t.Fatalf("restored accuracy %v, want %v", got, want)
	}
	// predictions must agree exactly
	p1 := f.Predict(test.X)
	p2 := g.Predict(test.X)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("restored model predicts differently")
		}
	}
}

func TestFHDnnLoadRejectsMismatchedDims(t *testing.T) {
	train, _, _ := testData(t, 21, 3)
	f := testFHDnn(21)
	f.TrainCentralized(train, 1)
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// different HD dimension
	other := New(NewRandomConvExtractor(21, 1, 4, 8), Config{HDDim: 512, NumClasses: 3, Seed: 21, Binarize: true})
	if err := other.Load(&buf); err == nil {
		t.Fatal("dimension mismatch must be rejected")
	}
}

func TestFHDnnLoadTruncated(t *testing.T) {
	train, _, _ := testData(t, 22, 3)
	f := testFHDnn(22)
	f.TrainCentralized(train, 1)
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()/2]
	g := testFHDnn(22)
	if err := g.Load(bytes.NewReader(data)); err == nil {
		t.Fatal("truncated checkpoint must fail")
	}
}
