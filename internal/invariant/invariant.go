// Package invariant is the repo's single allowlisted panic helper.
//
// The wire packages (internal/compress, internal/fedcore, internal/flnet,
// internal/link) must never panic on data that arrived over the network —
// malformed input surfaces as typed errors that the quarantine path can
// refuse. fhdnn-lint enforces that with the print-panic rule; the one
// legitimate crash left is a broken *programmer* invariant (impossible
// dimensions, a constructor misused), and those route through Failf so
// that every intentional crash site in a wire package is greppable and
// visibly distinct from a forgotten error path.
package invariant

import "fmt"

// Failf reports a violated programmer invariant and never returns. The
// message should carry the package prefix ("fedcore: ...") like every
// other error in the repo.
func Failf(format string, args ...any) {
	panic(fmt.Sprintf(format, args...))
}

// Fail is Failf for a fixed message.
func Fail(msg string) {
	panic(msg)
}
