package invariant

import "testing"

func TestFailfPanicsWithFormattedMessage(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Failf did not panic")
		}
		if got, want := r, "link: rate must be positive, got -1"; got != want {
			t.Fatalf("panic value %v, want %v", got, want)
		}
	}()
	Failf("link: rate must be positive, got %d", -1)
}

func TestFailPanicsVerbatim(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("panic value %v, want boom", r)
		}
	}()
	Fail("boom")
}
