// Package compress implements the update-compression baselines of the
// federated learning literature that the FHDnn paper positions itself
// against (federated dropout / sketched updates [Bouacida et al.; Caldas
// et al.]): float16 truncation, linear int8 quantization, and top-k
// sparsification of flat model updates. FHDnn's answer to communication
// cost is architectural (small HD updates); these codecs answer it by
// lossy-compressing big CNN updates, and the comparison experiment shows
// what each buys and costs.
package compress

import (
	"fmt"
	"math"
	"sort"
)

// Codec compresses a flat model update into bytes and back.
type Codec interface {
	// Encode serializes the update.
	Encode(update []float32) []byte
	// Decode reconstructs an update of length n from data. Structurally
	// invalid payloads yield a *DecodeError; Decode never panics, since
	// codec payloads now arrive from the network (see fedcore's envelope).
	Decode(data []byte, n int) ([]float32, error)
	// Name identifies the codec in reports.
	Name() string
}

// DecodeError is the typed error returned by every codec for a
// structurally invalid payload: wrong length, out-of-range or duplicate
// indices, truncated headers. It lets network-facing callers distinguish
// corrupt payloads (quarantine material) from programming errors.
type DecodeError struct {
	Codec  string
	Reason string
}

// Error implements error.
func (e *DecodeError) Error() string {
	return fmt.Sprintf("compress: %s: %s", e.Codec, e.Reason)
}

func decodeErrf(codec, format string, args ...any) *DecodeError {
	return &DecodeError{Codec: codec, Reason: fmt.Sprintf(format, args...)}
}

// ---- raw float32 -------------------------------------------------------

// Raw is the identity codec: 4 bytes per value, little-endian IEEE-754.
// It exists so the uncompressed baseline travels through the same wire
// envelope (and the same accounting) as the lossy codecs.
type Raw struct{}

// Name implements Codec.
func (Raw) Name() string { return "raw" }

// Encode implements Codec.
func (Raw) Encode(update []float32) []byte {
	out := make([]byte, 4*len(update))
	for i, v := range update {
		putU32(out[4*i:], math.Float32bits(v))
	}
	return out
}

// Decode implements Codec.
func (Raw) Decode(data []byte, n int) ([]float32, error) {
	if len(data) != 4*n {
		return nil, decodeErrf("raw", "payload %d bytes, want %d", len(data), 4*n)
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(getU32(data[4*i:]))
	}
	return out, nil
}

// ---- float16 ----------------------------------------------------------

// Float16 truncates each weight to IEEE-754 binary16 — the "22 MB" wire
// format of the paper's ResNet accounting.
type Float16 struct{}

// Name implements Codec.
func (Float16) Name() string { return "float16" }

// Encode implements Codec: 2 bytes per value.
func (Float16) Encode(update []float32) []byte {
	out := make([]byte, 2*len(update))
	for i, v := range update {
		h := Float32ToFloat16(v)
		out[2*i] = byte(h)
		out[2*i+1] = byte(h >> 8)
	}
	return out
}

// Decode implements Codec.
func (Float16) Decode(data []byte, n int) ([]float32, error) {
	if len(data) != 2*n {
		return nil, decodeErrf("float16", "payload %d bytes, want %d", len(data), 2*n)
	}
	out := make([]float32, n)
	for i := range out {
		h := uint16(data[2*i]) | uint16(data[2*i+1])<<8
		out[i] = Float16ToFloat32(h)
	}
	return out, nil
}

// Float32ToFloat16 converts with round-to-nearest-even, handling
// subnormals, infinities and NaN.
func Float32ToFloat16(f float32) uint16 {
	bits := math.Float32bits(f)
	sign := uint16(bits>>16) & 0x8000
	exp := int32(bits>>23&0xFF) - 127 + 15
	mant := bits & 0x7FFFFF
	switch {
	case exp >= 0x1F: // overflow or inf/nan
		if int32(bits>>23&0xFF) == 0xFF && mant != 0 {
			return sign | 0x7E00 // NaN
		}
		return sign | 0x7C00 // Inf
	case exp <= 0:
		if exp < -10 {
			return sign // underflow to zero
		}
		// subnormal: shift mantissa (with implicit leading 1)
		mant = (mant | 0x800000) >> uint32(1-exp)
		// round to nearest
		if mant&0x1000 != 0 {
			mant += 0x2000
		}
		return sign | uint16(mant>>13)
	default:
		// round to nearest even on the 13 dropped bits
		round := mant & 0x1FFF
		h := sign | uint16(exp)<<10 | uint16(mant>>13)
		if round > 0x1000 || (round == 0x1000 && h&1 == 1) {
			h++
		}
		return h
	}
}

// Float16ToFloat32 expands a binary16 value.
func Float16ToFloat32(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h >> 10 & 0x1F)
	mant := uint32(h & 0x3FF)
	switch exp {
	case 0:
		if mant == 0 {
			return math.Float32frombits(sign)
		}
		// subnormal: normalize
		e := uint32(127 - 15 + 1)
		for mant&0x400 == 0 {
			mant <<= 1
			e--
		}
		mant &= 0x3FF
		return math.Float32frombits(sign | e<<23 | mant<<13)
	case 0x1F:
		return math.Float32frombits(sign | 0xFF<<23 | mant<<13)
	default:
		return math.Float32frombits(sign | (exp+127-15)<<23 | mant<<13)
	}
}

// ---- int8 linear quantization ------------------------------------------

// Int8 quantizes the update linearly to 8 bits with a per-update scale —
// the classical 4x compression of uplink quantization schemes.
type Int8 struct{}

// Name implements Codec.
func (Int8) Name() string { return "int8" }

// Encode stores a float32 scale followed by one int8 code per value.
func (Int8) Encode(update []float32) []byte {
	maxAbs := float64(0)
	for _, v := range update {
		if a := math.Abs(float64(v)); a > maxAbs {
			maxAbs = a
		}
	}
	scale := float32(1)
	if maxAbs > 0 {
		scale = float32(maxAbs / 127)
	}
	out := make([]byte, 4+len(update))
	bits := math.Float32bits(scale)
	out[0], out[1], out[2], out[3] = byte(bits), byte(bits>>8), byte(bits>>16), byte(bits>>24)
	for i, v := range update {
		q := int32(math.Round(float64(v) / float64(scale)))
		if q > 127 {
			q = 127
		}
		if q < -127 {
			q = -127
		}
		out[4+i] = byte(int8(q))
	}
	return out
}

// Decode implements Codec.
func (Int8) Decode(data []byte, n int) ([]float32, error) {
	if len(data) != 4+n {
		return nil, decodeErrf("int8", "payload %d bytes, want %d", len(data), 4+n)
	}
	scale := math.Float32frombits(uint32(data[0]) | uint32(data[1])<<8 | uint32(data[2])<<16 | uint32(data[3])<<24)
	out := make([]float32, n)
	for i := range out {
		out[i] = float32(int8(data[4+i])) * scale
	}
	return out, nil
}

// ---- top-k sparsification ----------------------------------------------

// TopK transmits only the k largest-magnitude entries (as index/value
// pairs); the receiver fills the rest with zeros. Frac is the kept
// fraction (e.g. 0.1 keeps 10% of the weights).
type TopK struct {
	Frac float64
}

// Name implements Codec.
func (c TopK) Name() string { return fmt.Sprintf("topk(%.2g)", c.Frac) }

// Encode stores uint32 count, then (uint32 index, float32 value) pairs.
func (c TopK) Encode(update []float32) []byte {
	k := int(c.Frac * float64(len(update)))
	if k < 1 {
		k = 1
	}
	if k > len(update) {
		k = len(update)
	}
	idx := make([]int, len(update))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		av := math.Abs(float64(update[idx[a]]))
		bv := math.Abs(float64(update[idx[b]]))
		if av != bv {
			return av > bv
		}
		return idx[a] < idx[b] // deterministic tie-break
	})
	kept := idx[:k]
	sort.Ints(kept) // index-ordered payload compresses and scans better
	out := make([]byte, 4+8*k)
	putU32(out[0:], uint32(k))
	for i, j := range kept {
		putU32(out[4+8*i:], uint32(j))
		putU32(out[8+8*i:], math.Float32bits(update[j]))
	}
	return out
}

// Decode implements Codec. Encode always emits strictly increasing
// indices, so Decode requires them: an index that is out of range,
// repeated, or out of order marks a corrupt (or adversarial) payload and
// is rejected with a typed error rather than silently overwriting entries.
func (c TopK) Decode(data []byte, n int) ([]float32, error) {
	if len(data) < 4 {
		return nil, decodeErrf("topk", "payload too short (%d bytes)", len(data))
	}
	k := int(getU32(data))
	if k < 0 || k > n {
		return nil, decodeErrf("topk", "count %d out of range for %d values", k, n)
	}
	if len(data) != 4+8*k {
		return nil, decodeErrf("topk", "payload %d bytes, want %d", len(data), 4+8*k)
	}
	out := make([]float32, n)
	prev := -1
	for i := 0; i < k; i++ {
		j := int(getU32(data[4+8*i:]))
		// j < 0 only on 32-bit platforms, where int(uint32) can wrap
		// negative; without the explicit check it would reach the
		// monotonicity test with a misleading error.
		if j < 0 || j >= n {
			return nil, decodeErrf("topk", "index %d out of range %d", j, n)
		}
		if j <= prev {
			if j == prev {
				return nil, decodeErrf("topk", "duplicate index %d", j)
			}
			return nil, decodeErrf("topk", "indices not strictly increasing at %d", j)
		}
		prev = j
		out[j] = math.Float32frombits(getU32(data[8+8*i:]))
	}
	return out, nil
}

func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// RoundTrip compresses and decompresses, returning the reconstruction and
// the compressed size in bytes.
func RoundTrip(c Codec, update []float32) ([]float32, int, error) {
	data := c.Encode(update)
	out, err := c.Decode(data, len(update))
	return out, len(data), err
}
