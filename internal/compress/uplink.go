package compress

import (
	"math/rand"

	"fhdnn/internal/invariant"
)

// Uplink adapts a Codec to the federated uplink interface (it satisfies
// channel.Channel): the transmitted update is what survives a lossy
// compression round trip, and WireBytes reports the actual compressed size
// for traffic accounting.
type Uplink struct {
	C Codec
}

// Transmit compresses and decompresses the update; the information lost in
// between is the "corruption" of this channel.
func (u Uplink) Transmit(update []float32, _ *rand.Rand) []float32 {
	out, _, err := RoundTrip(u.C, update)
	if err != nil {
		// Encode/Decode of our own payload cannot fail except by
		// programming error.
		invariant.Failf("compress: uplink round trip: %v", err)
	}
	return out
}

// Name implements channel.Channel.
func (u Uplink) Name() string { return "compress:" + u.C.Name() }

// WireCodec exposes the underlying codec so traffic accounting (see
// fedcore.UpdateWireBytes) can charge the envelope-framed compressed size
// — the same bytes an flnet deployment would actually put on the wire —
// instead of a raw-float estimate.
func (u Uplink) WireCodec() Codec { return u.C }

// WireBytes returns the compressed payload size of an n-value update
// (codec output only, without envelope framing).
func (u Uplink) WireBytes(n int) int {
	return len(u.C.Encode(make([]float32, n)))
}
