package compress

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomUpdate(rng *rand.Rand, n int) []float32 {
	u := make([]float32, n)
	for i := range u {
		u[i] = float32(rng.NormFloat64() * 0.1)
	}
	return u
}

func TestFloat16KnownValues(t *testing.T) {
	cases := map[float32]uint16{
		0:     0x0000,
		1:     0x3C00,
		-2:    0xC000,
		0.5:   0x3800,
		65504: 0x7BFF, // max finite half
	}
	for f, want := range cases {
		if got := Float32ToFloat16(f); got != want {
			t.Fatalf("Float32ToFloat16(%v) = %#x, want %#x", f, got, want)
		}
		if back := Float16ToFloat32(want); back != f {
			t.Fatalf("Float16ToFloat32(%#x) = %v, want %v", want, back, f)
		}
	}
}

func TestFloat16SpecialValues(t *testing.T) {
	inf := float32(math.Inf(1))
	if got := Float16ToFloat32(Float32ToFloat16(inf)); !math.IsInf(float64(got), 1) {
		t.Fatalf("+Inf round trip = %v", got)
	}
	nan := float32(math.NaN())
	if got := Float16ToFloat32(Float32ToFloat16(nan)); !math.IsNaN(float64(got)) {
		t.Fatalf("NaN round trip = %v", got)
	}
	// overflow saturates to Inf
	if got := Float16ToFloat32(Float32ToFloat16(1e10)); !math.IsInf(float64(got), 1) {
		t.Fatalf("overflow = %v, want +Inf", got)
	}
	// tiny values underflow to (signed) zero
	if got := Float16ToFloat32(Float32ToFloat16(1e-10)); got != 0 {
		t.Fatalf("underflow = %v, want 0", got)
	}
}

// Property: float16 round trip is within half-precision tolerance for
// normal-range values.
func TestFloat16RoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 50; i++ {
			v := float32(rng.NormFloat64() * 100)
			back := Float16ToFloat32(Float32ToFloat16(v))
			if math.Abs(float64(back-v)) > math.Abs(float64(v))*1e-3+1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestFloat16Subnormals(t *testing.T) {
	// 2^-17 is subnormal in binary16 (min normal is 2^-14)
	v := float32(math.Ldexp(1, -17))
	back := Float16ToFloat32(Float32ToFloat16(v))
	if math.Abs(float64(back-v)) > float64(v)*0.01 {
		t.Fatalf("subnormal round trip %v -> %v", v, back)
	}
}

func TestFloat16CodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	u := randomUpdate(rng, 1000)
	got, size, err := RoundTrip(Float16{}, u)
	if err != nil {
		t.Fatal(err)
	}
	if size != 2000 {
		t.Fatalf("float16 size %d, want 2000", size)
	}
	for i := range u {
		if math.Abs(float64(got[i]-u[i])) > math.Abs(float64(u[i]))*1e-3+1e-4 {
			t.Fatalf("value %d: %v -> %v", i, u[i], got[i])
		}
	}
}

func TestInt8CodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	u := randomUpdate(rng, 1000)
	got, size, err := RoundTrip(Int8{}, u)
	if err != nil {
		t.Fatal(err)
	}
	if size != 1004 {
		t.Fatalf("int8 size %d, want 1004", size)
	}
	// error bounded by one quantization step
	maxAbs := 0.0
	for _, v := range u {
		if a := math.Abs(float64(v)); a > maxAbs {
			maxAbs = a
		}
	}
	step := maxAbs / 127
	for i := range u {
		if math.Abs(float64(got[i]-u[i])) > step*0.51 {
			t.Fatalf("value %d: %v -> %v (step %v)", i, u[i], got[i], step)
		}
	}
}

func TestInt8ZeroUpdate(t *testing.T) {
	got, _, err := RoundTrip(Int8{}, make([]float32, 10))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range got {
		if v != 0 {
			t.Fatal("zero update must round trip to zeros")
		}
	}
}

func TestTopKKeepsLargest(t *testing.T) {
	u := []float32{0.1, -5, 0.2, 3, -0.05, 0, 4, -0.3}
	got, size, err := RoundTrip(TopK{Frac: 0.25}, u) // keep 2
	if err != nil {
		t.Fatal(err)
	}
	if size != 4+8*2 {
		t.Fatalf("topk size %d", size)
	}
	want := []float32{0, -5, 0, 0, 0, 0, 4, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("topk[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestTopKFracBounds(t *testing.T) {
	u := []float32{1, 2}
	got, _, err := RoundTrip(TopK{Frac: 0}, u) // clamps to k=1
	if err != nil {
		t.Fatal(err)
	}
	nonzero := 0
	for _, v := range got {
		if v != 0 {
			nonzero++
		}
	}
	if nonzero != 1 {
		t.Fatalf("k=1 kept %d values", nonzero)
	}
	got, _, err = RoundTrip(TopK{Frac: 5}, u) // clamps to all
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[1] != 2 {
		t.Fatal("frac > 1 must keep everything")
	}
}

func TestTopKDeterministicTieBreak(t *testing.T) {
	u := []float32{1, 1, 1, 1}
	a := TopK{Frac: 0.5}.Encode(u)
	b := TopK{Frac: 0.5}.Encode(u)
	if string(a) != string(b) {
		t.Fatal("topk must be deterministic under ties")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := (Float16{}).Decode([]byte{1, 2, 3}, 2); err == nil {
		t.Fatal("float16 bad length accepted")
	}
	if _, err := (Int8{}).Decode([]byte{1, 2}, 4); err == nil {
		t.Fatal("int8 bad length accepted")
	}
	if _, err := (TopK{Frac: 0.5}).Decode([]byte{1}, 4); err == nil {
		t.Fatal("topk short payload accepted")
	}
	// out-of-range index
	bad := make([]byte, 4+8)
	putU32(bad, 1)
	putU32(bad[4:], 99)
	if _, err := (TopK{Frac: 0.5}).Decode(bad, 4); err == nil {
		t.Fatal("topk bad index accepted")
	}
	// index with the top bit set: wraps negative on 32-bit platforms,
	// huge positive on 64-bit — must be rejected either way, never
	// reach the output write
	wrap := make([]byte, 4+8)
	putU32(wrap, 1)
	putU32(wrap[4:], 0x80000000)
	if _, err := (TopK{Frac: 0.5}).Decode(wrap, 4); err == nil {
		t.Fatal("topk wrap-around index accepted")
	}
}

func TestCodecNames(t *testing.T) {
	for _, c := range []Codec{Float16{}, Int8{}, TopK{Frac: 0.1}} {
		if c.Name() == "" {
			t.Fatal("codec must have a name")
		}
	}
}

// Compression ratios: the reason these baselines exist.
func TestCompressionRatios(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	u := randomUpdate(rng, 10000)
	raw := 4 * len(u)
	for _, tc := range []struct {
		codec Codec
		want  float64 // expected compression factor
		tol   float64
	}{
		{Float16{}, 2, 0.01},
		{Int8{}, 4, 0.01},
		{TopK{Frac: 0.1}, 5, 0.05},
	} {
		_, size, err := RoundTrip(tc.codec, u)
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(raw) / float64(size)
		if math.Abs(ratio-tc.want)/tc.want > tc.tol {
			t.Fatalf("%s: compression %vx, want ~%vx", tc.codec.Name(), ratio, tc.want)
		}
	}
}
