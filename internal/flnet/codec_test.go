package flnet

import (
	"bytes"
	"context"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"fhdnn/internal/compress"
	"fhdnn/internal/fedcore"
	"fhdnn/internal/hdc"
)

func TestServerAdvertisesCodecs(t *testing.T) {
	_, ts := newTestServer(t, ServerConfig{NumClasses: 2, Dim: 8, MinUpdates: 2})
	for _, path := range []string{"/v1/round", "/v1/model"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		adv := resp.Header.Get(CodecsHeader)
		drainClose(resp.Body)
		if adv != "raw,float16,int8,topk" {
			t.Fatalf("%s advertised %q", path, adv)
		}
	}
	// The client records the advertisement from a Round call.
	c := &Client{BaseURL: ts.URL, Codec: compress.Int8{}}
	if _, ok := c.negotiatedCodec(); ok {
		t.Fatal("codec must not be negotiated before any advertisement")
	}
	if _, err := c.Round(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !c.ServerSupports("int8") || !c.ServerSupports("topk") {
		t.Fatal("advertisement not recorded")
	}
	if id, ok := c.negotiatedCodec(); !ok || id != fedcore.CodecInt8 {
		t.Fatalf("negotiated (%d, %v), want int8", id, ok)
	}
}

func TestEnvelopeUpdateAggregation(t *testing.T) {
	srv, ts := newTestServer(t, ServerConfig{NumClasses: 1, Dim: 4, MinUpdates: 2})
	ctx := context.Background()
	// raw codec is lossless, so the aggregate must be the exact mean
	c := &Client{BaseURL: ts.URL, Codec: compress.Raw{}}
	if _, err := c.Round(ctx); err != nil { // pick up the advertisement
		t.Fatal(err)
	}

	u1 := hdc.NewModel(1, 4)
	u1.SetFlat([]float32{2, 2, 2, 2})
	u2 := hdc.NewModel(1, 4)
	u2.SetFlat([]float32{4, 4, 4, 4})
	if err := c.PushUpdate(ctx, 1, u1); err != nil {
		t.Fatal(err)
	}
	if err := c.PushUpdate(ctx, 1, u2); err != nil {
		t.Fatal(err)
	}
	m, round := srv.Model()
	if round != 2 {
		t.Fatalf("round = %d, want 2", round)
	}
	for i, v := range m.Flat() {
		if v != 3 {
			t.Fatalf("aggregated[%d] = %v, want 3", i, v)
		}
	}
	st := srv.Stats()
	if st.UpdatesByCodec["raw"] != 2 {
		t.Fatalf("per-codec stats %+v", st.UpdatesByCodec)
	}
	// both envelopes crossed the wire at envelope-framed size
	if want := 2 * int64(fedcore.WireBytes(compress.Raw{}, 4)); st.BytesReceived != want {
		t.Fatalf("bytes %d, want %d", st.BytesReceived, want)
	}
}

func TestCorruptedEnvelopeQuarantined(t *testing.T) {
	srv, ts := newTestServer(t, ServerConfig{NumClasses: 1, Dim: 4, MinUpdates: 2})
	data, err := fedcore.EncodeEnvelope(compress.Int8{}, []float32{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	post := func(body []byte) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/update?round=1", EnvelopeContentType, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { drainClose(resp.Body) })
		return resp
	}

	corrupt := append([]byte(nil), data...)
	corrupt[len(corrupt)-1] ^= 0x40 // checksum no longer matches
	if resp := post(corrupt); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("corrupted envelope -> %d, want 422", resp.StatusCode)
	}
	if resp := post(data[:10]); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("truncated envelope -> %d, want 422", resp.StatusCode)
	}
	if st := srv.Stats(); st.UpdatesQuarantined != 2 || st.UpdatesAccepted != 0 {
		t.Fatalf("stats %+v", st)
	}
	// the client surfaces the quarantine as its typed error
	c := &Client{BaseURL: ts.URL}
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/update?round=1", bytes.NewReader(corrupt))
	req.Header.Set("Content-Type", EnvelopeContentType)
	resp, err := c.http().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	drainClose(resp.Body)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d", resp.StatusCode)
	}
	// a valid envelope still aggregates after the rejects
	if resp := post(data); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("valid envelope -> %d", resp.StatusCode)
	}
}

func TestEnvelopeQuarantinedNonFinite(t *testing.T) {
	// A structurally valid envelope whose decoded params are non-finite
	// must hit the same quarantine gate as legacy updates.
	_, ts := newTestServer(t, ServerConfig{NumClasses: 1, Dim: 4, MinUpdates: 2})
	ctx := context.Background()
	c := &Client{BaseURL: ts.URL, Codec: compress.Raw{}}
	if _, err := c.Round(ctx); err != nil {
		t.Fatal(err)
	}
	m := hdc.NewModel(1, 4)
	m.SetFlat([]float32{1, float32(math.NaN()), 3, 4})
	err := c.PushUpdate(ctx, 1, m)
	var quar ErrQuarantined
	if !errors.As(err, &quar) {
		t.Fatalf("non-finite envelope update: %v, want ErrQuarantined", err)
	}
}

func TestCodecFallsBackOnLegacyServer(t *testing.T) {
	srv, _ := newTestServer(t, ServerConfig{NumClasses: 1, Dim: 4, MinUpdates: 1})
	// A front proxy that strips the advertisement simulates an old server.
	legacy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, r)
		for k, vs := range rec.Header() {
			if http.CanonicalHeaderKey(k) == http.CanonicalHeaderKey(CodecsHeader) {
				continue
			}
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(rec.Code)
		_, _ = w.Write(rec.Body.Bytes())
	}))
	defer legacy.Close()

	ctx := context.Background()
	c := &Client{BaseURL: legacy.URL, Codec: compress.Int8{}}
	if _, err := c.Round(ctx); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.negotiatedCodec(); ok {
		t.Fatal("client must not negotiate a codec the server never advertised")
	}
	u := hdc.NewModel(1, 4)
	u.SetFlat([]float32{1, 2, 3, 4})
	if err := c.PushUpdate(ctx, 1, u); err != nil {
		t.Fatal(err)
	}
	if st := srv.Stats(); st.UpdatesByCodec[legacyCodecName] != 1 {
		t.Fatalf("fallback update not recorded as legacy: %+v", st.UpdatesByCodec)
	}
}

// runCodecTraining executes the full HTTP federated loop with every client
// using the given codec (nil = legacy format) and returns the final test
// accuracy and total uplink bytes the server reports.
func runCodecTraining(t *testing.T, codec compress.Codec) (float64, int64) {
	t.Helper()
	const numClients, rounds = 3, 3
	shards, labels, testEnc, testLabels, k, d := encodedClusters(t, numClients)
	srv, ts := newTestServer(t, ServerConfig{
		NumClasses: k, Dim: d, MinUpdates: numClients, MaxRounds: rounds})

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < numClients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lt := &LocalTrainer{
				Client:  &Client{BaseURL: ts.URL, Codec: codec},
				Encoded: shards[i],
				Labels:  labels[i],
				Epochs:  2,
				Poll:    2 * time.Millisecond,
			}
			if _, err := lt.Participate(ctx); err != nil {
				t.Errorf("client %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	global, _ := srv.Model()
	st := srv.Stats()
	if codec != nil {
		name := codec.Name()
		if st.UpdatesByCodec[name] != int64(numClients*rounds) {
			t.Fatalf("%s updates %d, want %d (by codec: %+v)",
				name, st.UpdatesByCodec[name], numClients*rounds, st.UpdatesByCodec)
		}
	}
	return global.Accuracy(testEnc, testLabels), st.BytesReceived
}

// TestInt8CodecWireSavings is the headline acceptance check: a federated
// run whose updates travel as int8 envelopes must report >= 3.5x fewer
// wire bytes in /v1/stats than the same run over raw float32, at
// equivalent accuracy.
func TestInt8CodecWireSavings(t *testing.T) {
	rawAcc, rawBytes := runCodecTraining(t, compress.Raw{})
	int8Acc, int8Bytes := runCodecTraining(t, compress.Int8{})
	if rawAcc < 0.85 {
		t.Fatalf("raw-codec accuracy %v too low", rawAcc)
	}
	if math.Abs(rawAcc-int8Acc) > 0.05 {
		t.Fatalf("int8 accuracy %v deviates from raw %v", int8Acc, rawAcc)
	}
	ratio := float64(rawBytes) / float64(int8Bytes)
	if ratio < 3.5 {
		t.Fatalf("int8 wire savings %.2fx (raw %d bytes, int8 %d), want >= 3.5x",
			ratio, rawBytes, int8Bytes)
	}
}

// The negotiated envelope must interoperate with legacy clients inside the
// same round: mixed posts aggregate together.
func TestMixedCodecRound(t *testing.T) {
	srv, ts := newTestServer(t, ServerConfig{NumClasses: 1, Dim: 4, MinUpdates: 2})
	ctx := context.Background()
	envC := &Client{BaseURL: ts.URL, Codec: compress.Raw{}}
	if _, err := envC.Round(ctx); err != nil {
		t.Fatal(err)
	}
	legacyC := &Client{BaseURL: ts.URL}

	u1 := hdc.NewModel(1, 4)
	u1.SetFlat([]float32{2, 2, 2, 2})
	u2 := hdc.NewModel(1, 4)
	u2.SetFlat([]float32{6, 6, 6, 6})
	if err := envC.PushUpdate(ctx, 1, u1); err != nil {
		t.Fatal(err)
	}
	if err := legacyC.PushUpdate(ctx, 1, u2); err != nil {
		t.Fatal(err)
	}
	m, _ := srv.Model()
	for i, v := range m.Flat() {
		if v != 4 {
			t.Fatalf("mixed aggregate[%d] = %v, want 4", i, v)
		}
	}
	st := srv.Stats()
	if st.UpdatesByCodec["raw"] != 1 || st.UpdatesByCodec[legacyCodecName] != 1 {
		t.Fatalf("per-codec stats %+v", st.UpdatesByCodec)
	}
}
