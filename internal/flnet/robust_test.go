package flnet

import (
	"bytes"
	"context"
	"io"
	"math"
	"net/http"
	"sync"
	"testing"
	"time"

	"fhdnn/internal/compress"
	"fhdnn/internal/faults"
	"fhdnn/internal/fedcore"
	"fhdnn/internal/hdc"
)

// runRobustFederation drives one lockstep federation over real HTTP: n
// clients, every round closed only when everyone contributed, clean
// transports (the chaos here is Byzantine content, not a lossy channel).
// Clients cycle through the legacy format and every negotiated codec so
// the robust aggregators are exercised against all wire envelopes.
// Colluding clients train honestly and then corrupt their upload's delta
// against the downloaded global. Returns the final model's accuracy.
func runRobustFederation(t *testing.T, agg fedcore.Aggregator, attacker *faults.Poisoner, colluders map[int]bool) float64 {
	t.Helper()
	const numClients, rounds = 10, 5
	shards, labels, testEnc, testLabels, k, d := encodedClusters(t, numClients)
	srv, ts := newTestServer(t, ServerConfig{
		NumClasses: k,
		Dim:        d,
		MinUpdates: numClients,
		MaxRounds:  rounds,
		// Pure safety valve: with clean transports every round closes by
		// MinUpdates, so the run is deterministic.
		RoundDeadline: 30 * time.Second,
		MaxUpdateNorm: 1e9,
		Aggregator:    agg,
	})

	codecs := []compress.Codec{nil, compress.Raw{}, compress.Int8{}, compress.Float16{}}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, numClients)
	contributions := make([]int, numClients)
	for i := 0; i < numClients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lt := &LocalTrainer{
				Client: &Client{
					BaseURL: ts.URL,
					ID:      "robust-" + string(rune('a'+i)),
					Codec:   codecs[i%len(codecs)],
				},
				Encoded: shards[i],
				Labels:  labels[i],
				Epochs:  2,
				Poll:    2 * time.Millisecond,
			}
			if attacker != nil && colluders[i] {
				lt.Tamper = func(round int, local, global *hdc.Model) {
					attacker.Corrupt(local.Flat(), global.Flat(), round, i)
				}
			}
			contributions[i], errs[i] = lt.Participate(ctx)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
		if contributions[i] != rounds {
			t.Fatalf("client %d contributed %d rounds, want %d (lockstep broke)",
				i, contributions[i], rounds)
		}
	}
	if !srv.Closed() {
		t.Fatal("server did not complete MaxRounds")
	}
	st := srv.Stats()
	if st.UpdatesQuarantined != 0 {
		// The whole point of this adversary: finite, norm-plausible
		// updates that sail through the quarantine gate and can only be
		// neutralized by the aggregation policy.
		t.Fatalf("quarantine caught %d updates; the Byzantine updates must reach the aggregator", st.UpdatesQuarantined)
	}
	global, _ := srv.Model()
	return global.Accuracy(testEnc, testLabels)
}

// TestByzantineRobustAggregation is the acceptance scenario for the
// robust-aggregation layer: 10 networked clients, 4 of them colluding
// poisoners running the scaled sign-flip attack (delta x -2: finite,
// norm-plausible, undetectable by the quarantine gate). Under the default
// mean-based bundle policy the poison drags the global model to chance;
// coordinate-wise median keeps accuracy within a small epsilon of the
// poison-free baseline, and so does the trimmed mean once its trim
// fraction covers the Byzantine fraction (trimmed:0.4 excludes all 4
// attackers per coordinate). trimmed:0.25 sits past its breakdown point —
// it trims 3 values per side, so one attacker survives every trim — and
// must degrade only gracefully: far above the collapsed mean, below the
// covered policies. That ordering is the Yin et al. trimmed-mean theory
// reproduced over a real wire. Mixed wire codecs prove the robust
// policies compose with every envelope. Seeded end to end; run under
// -race -shuffle=on by make chaos.
func TestByzantineRobustAggregation(t *testing.T) {
	const attackSeed = 7
	colluders := faults.Colluders(attackSeed, 10, 0.4)
	if len(colluders) != 4 {
		t.Fatalf("colluder set %v, want 4 of 10", colluders)
	}
	attack := func() *faults.Poisoner {
		return &faults.Poisoner{Kind: faults.AttackScale, Lambda: -2, Seed: attackSeed}
	}

	type result struct {
		name            string
		clean, poisoned float64
	}
	results := make(map[string]result)
	order := []string{"bundle", "median", "trimmed:0.25", "trimmed:0.4"}
	for _, spec := range order {
		build := func() fedcore.Aggregator {
			agg, err := fedcore.ParseAggregator(spec)
			if err != nil {
				t.Fatal(err)
			}
			return agg
		}
		clean := runRobustFederation(t, build(), nil, nil)
		poisoned := runRobustFederation(t, build(), attack(), colluders)
		results[spec] = result{spec, clean, poisoned}
	}

	t.Log("aggregator      clean  poisoned(40% scale:-2)")
	for _, spec := range order {
		r := results[spec]
		t.Logf("%-14s %.3f  %.3f", r.name, r.clean, r.poisoned)
	}

	const eps = 0.05 // covered robust policies stay within eps of their clean run
	for _, spec := range order {
		r := results[spec]
		if r.clean < 0.85 {
			t.Errorf("%s: clean accuracy %.3f, want >= 0.85 (baseline too weak to test against)", r.name, r.clean)
		}
	}
	bundle, median := results["bundle"], results["median"]
	partial, covered := results["trimmed:0.25"], results["trimmed:0.4"]
	// The mean-based policy must measurably degrade — that is what makes
	// the robust rows meaningful.
	if bundle.poisoned > bundle.clean-0.30 {
		t.Errorf("bundle under poison %.3f vs clean %.3f: attack too weak to demonstrate anything",
			bundle.poisoned, bundle.clean)
	}
	for _, r := range []result{median, covered} {
		if r.poisoned < r.clean-eps {
			t.Errorf("%s under poison %.3f vs clean %.3f: robust policy failed to hold within %.2f",
				r.name, r.poisoned, r.clean, eps)
		}
	}
	// Past its breakdown point, the trimmed mean loses accuracy but not
	// the model: it must stay far above the collapsed mean.
	if partial.poisoned < bundle.poisoned+0.40 {
		t.Errorf("trimmed:0.25 under poison %.3f vs bundle %.3f: graceful-degradation margin lost",
			partial.poisoned, bundle.poisoned)
	}
}

// TestNormClipServerPolicy: a clip:BOUND:bundle aggregator rescales
// norm-inflated updates instead of quarantining them, and the server
// reports how often it fired.
func TestNormClipServerPolicy(t *testing.T) {
	clip := &fedcore.NormClip{Inner: &fedcore.Bundle{}, Bound: 4}
	srv, ts := newTestServer(t, ServerConfig{
		NumClasses: 1, Dim: 4, MinUpdates: 2, Aggregator: clip,
	})
	ctx := context.Background()

	mild := hdc.NewModel(1, 4)
	mild.SetFlat([]float32{1, 1, 1, 1}) // norm 2, under the bound
	loud := hdc.NewModel(1, 4)
	loud.SetFlat([]float32{0, 300, 0, 0}) // norm 300, clipped to 4
	c1 := &Client{BaseURL: ts.URL, ID: "mild"}
	c2 := &Client{BaseURL: ts.URL, ID: "loud"}
	if err := c1.PushUpdate(ctx, 1, mild); err != nil {
		t.Fatal(err)
	}
	if err := c2.PushUpdate(ctx, 1, loud); err != nil {
		t.Fatal(err)
	}

	st := srv.Stats()
	if st.Aggregator != "clip:4:bundle" {
		t.Fatalf("stats aggregator %q, want clip:4:bundle", st.Aggregator)
	}
	if st.UpdatesClipped != 1 {
		t.Fatalf("UpdatesClipped = %d, want 1", st.UpdatesClipped)
	}
	if st.UpdatesQuarantined != 0 {
		t.Fatalf("clip policy must not quarantine, got %d", st.UpdatesQuarantined)
	}
	// The committed aggregate saw the clipped copy: coordinate 1 is
	// (1 + 4)/2, not (1 + 300)/2.
	m, _ := srv.Model()
	if got := m.Flat()[1]; math.Abs(float64(got)-2.5) > 1e-5 {
		t.Fatalf("aggregate[1] = %v, want 2.5 (clipped to the bound before the mean)", got)
	}
}

// TestQuarantineReasonBreakdown drives one update into each refusal path
// and checks the per-reason stats split: non-finite parameter, norm-bound
// violation, mangled envelope header, and envelope checksum mismatch.
func TestQuarantineReasonBreakdown(t *testing.T) {
	srv, ts := newTestServer(t, ServerConfig{
		NumClasses: 1, Dim: 4, MinUpdates: 99, MaxUpdateNorm: 10,
	})
	ctx := context.Background()

	expectQuarantine := func(err error, what string) {
		t.Helper()
		if err == nil {
			t.Fatalf("%s was accepted", what)
		}
	}

	nan := hdc.NewModel(1, 4)
	nan.Flat()[0] = float32(math.NaN())
	expectQuarantine((&Client{BaseURL: ts.URL}).PushUpdate(ctx, 1, nan), "non-finite update")

	loud := hdc.NewModel(1, 4)
	loud.SetFlat([]float32{100, 0, 0, 0}) // norm 100 > 10
	expectQuarantine((&Client{BaseURL: ts.URL}).PushUpdate(ctx, 1, loud), "norm-exploded update")

	post := func(body []byte) int {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/update?round=1", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", EnvelopeContentType)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		return resp.StatusCode
	}
	good, err := fedcore.EncodeEnvelope(compress.Raw{}, []float32{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	mangled := append([]byte(nil), good...)
	mangled[0] ^= 0xFF // break the magic: structurally bad envelope
	if code := post(mangled); code != http.StatusUnprocessableEntity {
		t.Fatalf("mangled envelope -> %d, want 422", code)
	}
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)-1] ^= 0x01 // corrupt the payload: checksum mismatch
	if code := post(flipped); code != http.StatusUnprocessableEntity {
		t.Fatalf("checksum-corrupt envelope -> %d, want 422", code)
	}

	st := srv.Stats()
	want := map[string]int64{
		QuarantineNonFinite: 1,
		QuarantineNormBound: 1,
		QuarantineEnvelope:  1,
		QuarantineChecksum:  1,
	}
	if st.UpdatesQuarantined != 4 {
		t.Fatalf("UpdatesQuarantined = %d, want 4 (%+v)", st.UpdatesQuarantined, st.QuarantinedByReason)
	}
	for reason, n := range want {
		if st.QuarantinedByReason[reason] != n {
			t.Fatalf("QuarantinedByReason[%s] = %d, want %d (full: %+v)",
				reason, st.QuarantinedByReason[reason], n, st.QuarantinedByReason)
		}
	}
	if st.UpdatesAccepted != 0 {
		t.Fatalf("accepted %d updates in a quarantine-only test", st.UpdatesAccepted)
	}
}
