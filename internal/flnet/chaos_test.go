package flnet

import (
	"context"
	"errors"
	"math"
	"net/http"
	"sync"
	"testing"
	"time"

	"fhdnn/internal/faults"
	"fhdnn/internal/hdc"
	"fhdnn/internal/tensor"
)

// TestChaosFederatedRound is the acceptance scenario for the
// fault-tolerance layer: 8 clients train through transports injecting 30%
// connection failures (plus truncated bodies and 5xx bursts), 2 of the 8
// crash mid-round-2, and a ninth adversarial client pushes a non-finite
// update every round. The server must still complete all MaxRounds —
// rounds that lost the crashed clients are force-closed by the deadline —
// every poisoned update must be quarantined before touching the global
// model, and every surviving client's retry loop must land an update in
// every round. All fault decisions are seeded, and the test is run under
// -race in CI.
func TestChaosFederatedRound(t *testing.T) {
	const (
		numClients = 8
		maxRounds  = 4
		seedBase   = 1000
	)
	crash := faults.CrashSchedule{2: 2, 5: 2} // die during round 2
	shards, labels, testEnc, testLabels, k, d := encodedClusters(t, numClients)

	srv, ts := newTestServer(t, ServerConfig{
		NumClasses:    k,
		Dim:           d,
		MinUpdates:    numClients, // only reachable in round 1; later rounds need the deadline
		MaxRounds:     maxRounds,
		RoundDeadline: time.Second,
		MaxUpdateNorm: 1e9,
	})

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	newFaultyClient := func(i int) *Client {
		return &Client{
			BaseURL: ts.URL,
			ID:      "chaos-" + string(rune('a'+i)),
			HTTPClient: &http.Client{Transport: faults.NewTransport(faults.Config{
				FailRate:     0.30,
				TruncateRate: 0.10,
				Error5xxRate: 0.05,
				BurstLen:     2,
				Seed:         seedBase + int64(i),
			})},
			Retry: &RetryPolicy{MaxAttempts: 6, BaseDelay: 2 * time.Millisecond,
				MaxDelay: 50 * time.Millisecond, Multiplier: 2, Jitter: 0.5},
		}
	}

	var wg sync.WaitGroup
	contributions := make([]int, numClients)
	errs := make([]error, numClients)

	// Survivors run the hardened LocalTrainer loop.
	for i := 0; i < numClients; i++ {
		if _, dies := crash[i]; dies {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lt := &LocalTrainer{
				Client:  newFaultyClient(i),
				Encoded: shards[i],
				Labels:  labels[i],
				Epochs:  2,
				Poll:    2 * time.Millisecond,
			}
			contributions[i], errs[i] = lt.Participate(ctx)
		}(i)
	}

	// Crashing clients participate normally until their scheduled round,
	// then die mid-round: model downloaded, update never sent.
	for i := range crash {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			contributions[i] = runUntilCrash(ctx, t, newFaultyClient(i), crash, i, shards[i], labels[i])
		}(i)
	}

	// The adversary pushes an Inf-poisoned update every round over a
	// clean transport (so every attempt reaches the quarantine gate).
	poisonQuarantined := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		poisonQuarantined = runPoisoner(ctx, t, &Client{BaseURL: ts.URL, ID: "poison"}, k, d)
	}()

	wg.Wait()
	if ctx.Err() != nil {
		t.Fatal("chaos run blew the deadline budget")
	}

	if !srv.Closed() {
		t.Fatal("server did not complete MaxRounds")
	}
	st := srv.Stats()
	if st.Round != maxRounds+1 {
		t.Fatalf("round %d, want %d", st.Round, maxRounds+1)
	}
	// Rounds 2..4 lost the crashed clients and can only close by deadline.
	if st.RoundsForcedByDeadline < maxRounds-1 {
		t.Fatalf("stats %+v: want >= %d deadline-forced rounds", st, maxRounds-1)
	}
	// Every poisoned update was quarantined, and the stats agree with the
	// adversary's own count of 422 answers.
	if poisonQuarantined == 0 {
		t.Fatal("poisoner never got through to the quarantine gate; test proves nothing")
	}
	if st.UpdatesQuarantined != int64(poisonQuarantined) {
		t.Fatalf("server quarantined %d, poisoner counted %d", st.UpdatesQuarantined, poisonQuarantined)
	}
	// The poison never reached the model.
	global, _ := srv.Model()
	for i, v := range global.Flat() {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatalf("global model[%d] = %v: poison leaked past quarantine", i, v)
		}
	}
	// Surviving clients' retry loops contributed to every round; the
	// crashed clients got exactly their pre-crash rounds in.
	for i := 0; i < numClients; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if dieRound, dies := crash[i]; dies {
			if contributions[i] != dieRound-1 {
				t.Fatalf("crashed client %d contributed %d rounds, want %d", i, contributions[i], dieRound-1)
			}
		} else if contributions[i] != maxRounds {
			t.Fatalf("surviving client %d contributed %d rounds, want %d", i, contributions[i], maxRounds)
		}
	}
	// And the model the chaos produced still classifies.
	if acc := global.Accuracy(testEnc, testLabels); acc < 0.7 {
		t.Fatalf("post-chaos accuracy %v, want >= 0.7", acc)
	}
}

// runUntilCrash participates like a trainer until the crash schedule says
// this client dies: in its fatal round it downloads the model and then
// vanishes without pushing, exactly the half-finished state a real edge
// device leaves behind.
func runUntilCrash(ctx context.Context, t *testing.T, cl *Client, crash faults.CrashSchedule, id int, encoded *tensor.Tensor, lab []int) int {
	contributed := 0
	lastRound := 0
	bundled := false
	for {
		info, err := cl.Round(ctx)
		if err != nil {
			if ctx.Err() != nil {
				t.Errorf("crash client %d: %v", id, err)
				return contributed
			}
			time.Sleep(2 * time.Millisecond)
			continue
		}
		if info.Closed {
			return contributed
		}
		if info.Round == lastRound {
			time.Sleep(2 * time.Millisecond)
			continue
		}
		global, round, err := cl.FetchModel(ctx)
		if err != nil {
			if ctx.Err() != nil {
				t.Errorf("crash client %d: %v", id, err)
				return contributed
			}
			time.Sleep(2 * time.Millisecond)
			continue
		}
		if crash.ShouldCrash(id, round) {
			return contributed // dies mid-round
		}
		local := global.Clone()
		if !bundled {
			local.OneShotTrain(encoded, lab)
			bundled = true
		}
		local.RefineEpoch(encoded, lab)
		switch err := cl.PushUpdate(ctx, round, local); err.(type) {
		case nil:
			contributed++
			lastRound = round
		case ErrStaleRound:
			continue
		default:
			if ctx.Err() != nil {
				t.Errorf("crash client %d push: %v", id, err)
				return contributed
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
}

// runPoisoner pushes one Inf-poisoned update per round and returns how
// many times the server answered 422.
func runPoisoner(ctx context.Context, t *testing.T, cl *Client, k, d int) int {
	quarantined := 0
	lastRound := 0
	for {
		info, err := cl.Round(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return quarantined
			}
			time.Sleep(2 * time.Millisecond)
			continue
		}
		if info.Closed {
			return quarantined
		}
		if info.Round == lastRound {
			time.Sleep(2 * time.Millisecond)
			continue
		}
		poison := hdc.NewModel(k, d)
		poison.Flat()[0] = float32(math.Inf(1))
		err = cl.PushUpdate(ctx, info.Round, poison)
		var q ErrQuarantined
		switch {
		case errors.As(err, &q):
			quarantined++
			lastRound = info.Round
		case isStale(err):
			// raced with a round close; try again in the new round
		case err == nil:
			t.Errorf("poisoned update for round %d was accepted", info.Round)
			lastRound = info.Round
		default:
			var he *HTTPError
			if errors.As(err, &he) && he.StatusCode == http.StatusGone {
				return quarantined
			}
			if ctx.Err() != nil {
				return quarantined
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
}

func isStale(err error) bool {
	var s ErrStaleRound
	return errors.As(err, &s)
}
