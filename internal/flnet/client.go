package flnet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"time"

	"fhdnn/internal/channel"
	"fhdnn/internal/hdc"
	"fhdnn/internal/tensor"
)

// Client talks to a flnet.Server. The zero value is not usable; set
// BaseURL.
type Client struct {
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// Uplink optionally corrupts updates before they are posted,
	// simulating the lossy physical layer underneath (the paper's UDP
	// deployments admit exactly such corruption). nil means clean.
	Uplink channel.Channel
	// Rng drives the uplink corruption; required when Uplink is set.
	Rng *rand.Rand
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// RoundInfo mirrors the server's GET /v1/round response.
type RoundInfo struct {
	Round          int  `json:"round"`
	UpdatesPending int  `json:"updatesPending"`
	MinUpdates     int  `json:"minUpdates"`
	Closed         bool `json:"closed"`
}

// Round fetches the current round state.
func (c *Client) Round(ctx context.Context) (RoundInfo, error) {
	var info RoundInfo
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/round", nil)
	if err != nil {
		return info, fmt.Errorf("flnet: build round request: %w", err)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return info, fmt.Errorf("flnet: fetch round: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return info, httpError("round", resp)
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return info, fmt.Errorf("flnet: decode round info: %w", err)
	}
	return info, nil
}

// FetchModel downloads the global model and its round number.
func (c *Client) FetchModel(ctx context.Context) (*hdc.Model, int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/model", nil)
	if err != nil {
		return nil, 0, fmt.Errorf("flnet: build model request: %w", err)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, 0, fmt.Errorf("flnet: fetch model: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, 0, httpError("model", resp)
	}
	round, err := strconv.Atoi(resp.Header.Get(RoundHeader))
	if err != nil {
		return nil, 0, fmt.Errorf("flnet: missing %s header", RoundHeader)
	}
	m, err := hdc.ReadModel(resp.Body)
	if err != nil {
		return nil, 0, err
	}
	return m, round, nil
}

// ErrStaleRound is returned by PushUpdate when the server has already
// moved on; the caller should re-fetch the model and retrain.
type ErrStaleRound struct {
	Sent, Current int
}

// Error implements error.
func (e ErrStaleRound) Error() string {
	return fmt.Sprintf("flnet: update for round %d rejected, server at round %d", e.Sent, e.Current)
}

// PushUpdate uploads a locally trained model for the given round,
// applying the configured uplink corruption first.
func (c *Client) PushUpdate(ctx context.Context, round int, m *hdc.Model) error {
	send := m
	if c.Uplink != nil {
		if c.Rng == nil {
			return fmt.Errorf("flnet: Uplink set without Rng")
		}
		send = hdc.NewModel(m.K, m.D)
		send.SetFlat(c.Uplink.Transmit(m.Flat(), c.Rng))
	}
	var buf bytes.Buffer
	if _, err := send.WriteTo(&buf); err != nil {
		return err
	}
	url := fmt.Sprintf("%s/v1/update?round=%d", c.BaseURL, round)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, &buf)
	if err != nil {
		return fmt.Errorf("flnet: build update request: %w", err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.http().Do(req)
	if err != nil {
		return fmt.Errorf("flnet: push update: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusAccepted:
		return nil
	case http.StatusConflict:
		current, _ := strconv.Atoi(resp.Header.Get(RoundHeader))
		return ErrStaleRound{Sent: round, Current: current}
	default:
		return httpError("update", resp)
	}
}

// WaitForRound polls until the server reaches at least the given round or
// closes, with the given poll interval.
func (c *Client) WaitForRound(ctx context.Context, round int, poll time.Duration) (RoundInfo, error) {
	for {
		info, err := c.Round(ctx)
		if err != nil {
			return info, err
		}
		if info.Round >= round || info.Closed {
			return info, nil
		}
		select {
		case <-ctx.Done():
			return info, ctx.Err()
		case <-time.After(poll):
		}
	}
}

func httpError(op string, resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	return fmt.Errorf("flnet: %s: server returned %s: %s", op, resp.Status, bytes.TrimSpace(body))
}

// LocalTrainer is the client-side training loop: it holds this device's
// pre-encoded hypervectors and participates in rounds until the server
// closes. It implements the paper's local update (one-shot bundling on
// first participation, then E refinement epochs).
type LocalTrainer struct {
	Client  *Client
	Encoded *tensor.Tensor
	Labels  []int
	Epochs  int
	// Poll is the round-polling interval (default 10 ms; tests and
	// loopback deployments want it small).
	Poll time.Duration

	bundledOnce bool
}

// Participate runs rounds until the server closes or ctx is done. It
// returns the number of rounds this client contributed to.
func (lt *LocalTrainer) Participate(ctx context.Context) (int, error) {
	poll := lt.Poll
	if poll <= 0 {
		poll = 10 * time.Millisecond
	}
	contributed := 0
	lastRound := 0
	for {
		info, err := lt.Client.Round(ctx)
		if err != nil {
			return contributed, err
		}
		if info.Closed {
			return contributed, nil
		}
		if info.Round == lastRound {
			// already contributed this round; wait for the next
			if _, err := lt.Client.WaitForRound(ctx, lastRound+1, poll); err != nil {
				return contributed, err
			}
			continue
		}
		global, round, err := lt.Client.FetchModel(ctx)
		if err != nil {
			return contributed, err
		}
		local := global.Clone()
		if !lt.bundledOnce {
			local.OneShotTrain(lt.Encoded, lt.Labels)
			lt.bundledOnce = true
		}
		for e := 0; e < lt.Epochs; e++ {
			if wrong := local.RefineEpoch(lt.Encoded, lt.Labels); wrong == 0 {
				break
			}
		}
		err = lt.Client.PushUpdate(ctx, round, local)
		switch err.(type) {
		case nil:
			contributed++
			lastRound = round
		case ErrStaleRound:
			// raced with the round closing; retry with the new model
			continue
		default:
			return contributed, err
		}
	}
}
