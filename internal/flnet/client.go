package flnet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"fhdnn/internal/channel"
	"fhdnn/internal/compress"
	"fhdnn/internal/fedcore"
	"fhdnn/internal/hdc"
	"fhdnn/internal/tensor"
)

// Client talks to a flnet.Server. The zero value is not usable; set
// BaseURL.
type Client struct {
	BaseURL string
	// ID, when set, is sent as the X-FHDnn-Client header so the server
	// can deduplicate retried uploads within a round.
	ID string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// Retry, when set, transparently retries transport failures and 5xx
	// responses on Round, FetchModel, and PushUpdate with exponential
	// backoff. nil performs exactly one attempt per call.
	Retry *RetryPolicy
	// Uplink optionally corrupts updates before they are posted,
	// simulating the lossy physical layer underneath (the paper's UDP
	// deployments admit exactly such corruption). nil means clean.
	Uplink channel.Channel
	// Rng drives the uplink corruption; required when Uplink is set.
	Rng *rand.Rand
	// Codec, when set, posts updates as fedcore wire envelopes compressed
	// with this codec — but only once the server has advertised the codec
	// name in an X-FHDnn-Codecs response header (observed on Round or
	// FetchModel). Against a server that never advertises it, the client
	// silently falls back to the legacy raw-model format, so a new client
	// interoperates with an old server.
	Codec compress.Codec

	// advertised caches the codec names from the most recent
	// X-FHDnn-Codecs header seen; nil until one is observed.
	advMu      sync.Mutex
	advertised map[string]bool
}

// noteCodecs records the server's codec advertisement from a response
// header, if present.
func (c *Client) noteCodecs(h http.Header) {
	v := h.Get(CodecsHeader)
	if v == "" {
		return
	}
	set := make(map[string]bool)
	for _, name := range strings.Split(v, ",") {
		if name = strings.TrimSpace(name); name != "" {
			set[name] = true
		}
	}
	c.advMu.Lock()
	c.advertised = set
	c.advMu.Unlock()
}

// ServerSupports reports whether the server has advertised the named
// codec (false until an advertisement has been observed).
func (c *Client) ServerSupports(name string) bool {
	c.advMu.Lock()
	defer c.advMu.Unlock()
	return c.advertised[name]
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// RetryPolicy is an exponential-backoff-with-jitter schedule for the
// retryable failure classes: transport errors (connection refused, reset,
// truncated body) and 5xx responses. Terminal protocol answers — any 4xx,
// including 409 stale-round and 422 quarantine — are never retried; they
// would fail identically again.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per call (default 4).
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt (default 50ms);
	// each further attempt multiplies it by Multiplier (default 2) up to
	// MaxDelay (default 2s).
	BaseDelay  time.Duration
	MaxDelay   time.Duration
	Multiplier float64
	// Jitter is the fraction of each delay that is randomized (default
	// 0.5): the actual sleep is delay * (1 - Jitter/2 + Jitter*U[0,1)),
	// decorrelating clients that fail in lockstep.
	Jitter float64
}

// DefaultRetryPolicy is a sensible schedule for LAN/edge deployments:
// 4 attempts spanning roughly 350ms.
func DefaultRetryPolicy() *RetryPolicy {
	return &RetryPolicy{MaxAttempts: 4, BaseDelay: 50 * time.Millisecond,
		MaxDelay: 2 * time.Second, Multiplier: 2, Jitter: 0.5}
}

func (p *RetryPolicy) attempts() int {
	if p.MaxAttempts > 0 {
		return p.MaxAttempts
	}
	return 4
}

// delay returns the jittered backoff before attempt (1 = first retry).
func (p *RetryPolicy) delay(attempt int) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	maxd := p.MaxDelay
	if maxd <= 0 {
		maxd = 2 * time.Second
	}
	mult := p.Multiplier
	if mult < 1 {
		mult = 2
	}
	d := float64(base)
	for i := 1; i < attempt; i++ {
		d *= mult
		if d >= float64(maxd) {
			d = float64(maxd)
			break
		}
	}
	jit := p.Jitter
	if jit == 0 {
		jit = 0.5
	}
	if jit > 0 {
		d *= 1 - jit/2 + jit*rand.Float64()
	}
	return time.Duration(d)
}

// sleep waits the jittered backoff for the given retry — but never less
// than floor, the server's Retry-After hint when one was given — or
// returns early with ctx's error.
func (p *RetryPolicy) sleep(ctx context.Context, attempt int, floor time.Duration) error {
	d := p.delay(attempt)
	if floor > d {
		d = floor
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// HTTPError is a non-2xx protocol response that did not map to a more
// specific error type.
type HTTPError struct {
	Op         string
	StatusCode int
	Status     string
	Body       string
}

// Error implements error.
func (e *HTTPError) Error() string {
	return fmt.Sprintf("flnet: %s: server returned %s: %s", e.Op, e.Status, e.Body)
}

// Temporary reports whether retrying the same request can succeed.
func (e *HTTPError) Temporary() bool { return e.StatusCode >= 500 }

// Retryable classifies an error from Round, FetchModel, or PushUpdate:
// transport-level failures and 5xx responses are retryable; 4xx protocol
// answers (stale round, quarantine, gone, bad request) are terminal.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	var stale ErrStaleRound
	var quar ErrQuarantined
	if errors.As(err, &stale) || errors.As(err, &quar) {
		return false
	}
	var thr ErrThrottled
	if errors.As(err, &thr) {
		// Backpressure, not failure: the same bytes will be accepted once
		// the shard queue drains, so waiting and resending is correct.
		return true
	}
	var he *HTTPError
	if errors.As(err, &he) {
		return he.StatusCode >= 500
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	// Everything else — dial errors, resets, truncated bodies — is a
	// transport fault worth retrying.
	return true
}

// withRetry runs fn under the client's retry policy. fn must be safe to
// re-run (requests are rebuilt per attempt).
func (c *Client) withRetry(ctx context.Context, fn func() error) error {
	p := c.Retry
	if p == nil {
		return fn()
	}
	var err error
	for attempt := 1; ; attempt++ {
		err = fn()
		if err == nil || !Retryable(err) || attempt >= p.attempts() {
			return err
		}
		// A throttled upload carries the server's Retry-After hint; honor
		// it as a floor under the backoff so a fleet does not stampede the
		// shard queue the moment it reopens.
		var floor time.Duration
		var thr ErrThrottled
		if errors.As(err, &thr) {
			floor = thr.RetryAfter
		}
		if serr := p.sleep(ctx, attempt, floor); serr != nil {
			return serr
		}
	}
}

// RoundInfo mirrors the server's GET /v1/round response.
type RoundInfo struct {
	Round          int  `json:"round"`
	UpdatesPending int  `json:"updatesPending"`
	MinUpdates     int  `json:"minUpdates"`
	Closed         bool `json:"closed"`
}

// Round fetches the current round state.
func (c *Client) Round(ctx context.Context) (RoundInfo, error) {
	var info RoundInfo
	err := c.withRetry(ctx, func() error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/round", nil)
		if err != nil {
			return fmt.Errorf("flnet: build round request: %w", err)
		}
		resp, err := c.http().Do(req)
		if err != nil {
			return fmt.Errorf("flnet: fetch round: %w", err)
		}
		defer drainClose(resp.Body)
		if resp.StatusCode != http.StatusOK {
			return httpError("round", resp)
		}
		c.noteCodecs(resp.Header)
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			return fmt.Errorf("flnet: decode round info: %w", err)
		}
		return nil
	})
	return info, err
}

// FetchModel downloads the global model and its round number.
func (c *Client) FetchModel(ctx context.Context) (*hdc.Model, int, error) {
	var m *hdc.Model
	var round int
	err := c.withRetry(ctx, func() error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/model", nil)
		if err != nil {
			return fmt.Errorf("flnet: build model request: %w", err)
		}
		resp, err := c.http().Do(req)
		if err != nil {
			return fmt.Errorf("flnet: fetch model: %w", err)
		}
		defer drainClose(resp.Body)
		if resp.StatusCode != http.StatusOK {
			return httpError("model", resp)
		}
		c.noteCodecs(resp.Header)
		round, err = strconv.Atoi(resp.Header.Get(RoundHeader))
		if err != nil {
			return fmt.Errorf("flnet: missing %s header", RoundHeader)
		}
		m, err = hdc.ReadModel(resp.Body)
		return err
	})
	if err != nil {
		return nil, 0, err
	}
	return m, round, nil
}

// ErrStaleRound is returned by PushUpdate when the server has already
// moved on; the caller should re-fetch the model and retrain.
type ErrStaleRound struct {
	Sent, Current int
}

// Error implements error.
func (e ErrStaleRound) Error() string {
	return fmt.Sprintf("flnet: update for round %d rejected, server at round %d", e.Sent, e.Current)
}

// ErrQuarantined is returned by PushUpdate when the server refused the
// payload as unsafe to aggregate (non-finite values or exploded norm).
// Resending the same bytes cannot succeed; the caller should retrain (or
// wait for the next round, where a fresh uplink transmission may come
// through clean).
type ErrQuarantined struct {
	Round  int
	Reason string
}

// Error implements error.
func (e ErrQuarantined) Error() string {
	return fmt.Sprintf("flnet: round %d update quarantined: %s", e.Round, e.Reason)
}

// ErrThrottled is returned by PushUpdate when the server answered 429:
// the update's aggregation shard has a full ingest queue. The update is
// fine — resend it after RetryAfter (the server's Retry-After hint, zero
// if the server gave none). Under a RetryPolicy, PushUpdate retries this
// automatically, sleeping at least RetryAfter between attempts.
type ErrThrottled struct {
	Round      int
	RetryAfter time.Duration
}

// Error implements error.
func (e ErrThrottled) Error() string {
	return fmt.Sprintf("flnet: round %d update throttled, retry after %v", e.Round, e.RetryAfter)
}

// PushUpdate uploads a locally trained model for the given round,
// applying the configured uplink corruption first. Each retry attempt
// re-transmits the same corrupted payload (the corruption happened "in
// the radio", once). When Codec is set and the server has advertised it,
// the update travels as a compressed wire envelope; otherwise the legacy
// raw-model serialization is used.
func (c *Client) PushUpdate(ctx context.Context, round int, m *hdc.Model) error {
	send := m
	if c.Uplink != nil {
		if c.Rng == nil {
			return fmt.Errorf("flnet: Uplink set without Rng")
		}
		send = hdc.NewModel(m.K, m.D)
		send.SetFlat(c.Uplink.Transmit(m.Flat(), c.Rng))
	}
	var payload []byte
	contentType := "application/octet-stream"
	if id, ok := c.negotiatedCodec(); ok {
		data, err := fedcore.EncodeEnvelope(c.Codec, send.Flat())
		if err != nil {
			return fmt.Errorf("flnet: encode %s envelope: %w", fedcore.CodecName(id), err)
		}
		payload = data
		contentType = EnvelopeContentType
	} else {
		var buf bytes.Buffer
		if _, err := send.WriteTo(&buf); err != nil {
			return err
		}
		payload = buf.Bytes()
	}
	url := fmt.Sprintf("%s/v1/update?round=%d", c.BaseURL, round)
	return c.withRetry(ctx, func() error {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(payload))
		if err != nil {
			return fmt.Errorf("flnet: build update request: %w", err)
		}
		req.Header.Set("Content-Type", contentType)
		if c.ID != "" {
			req.Header.Set(ClientHeader, c.ID)
		}
		resp, err := c.http().Do(req)
		if err != nil {
			return fmt.Errorf("flnet: push update: %w", err)
		}
		defer drainClose(resp.Body)
		switch resp.StatusCode {
		case http.StatusAccepted:
			return nil
		case http.StatusConflict:
			current, _ := strconv.Atoi(resp.Header.Get(RoundHeader))
			return ErrStaleRound{Sent: round, Current: current}
		case http.StatusUnprocessableEntity:
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			return ErrQuarantined{Round: round, Reason: string(bytes.TrimSpace(body))}
		case http.StatusTooManyRequests:
			var after time.Duration
			if secs, aerr := strconv.Atoi(resp.Header.Get("Retry-After")); aerr == nil && secs > 0 {
				after = time.Duration(secs) * time.Second
			}
			return ErrThrottled{Round: round, RetryAfter: after}
		default:
			return httpError("update", resp)
		}
	})
}

// negotiatedCodec reports whether the client should use its configured
// Codec for the next upload: the codec must have a wire id and the server
// must have advertised its name.
func (c *Client) negotiatedCodec() (fedcore.CodecID, bool) {
	if c.Codec == nil {
		return 0, false
	}
	id, ok := fedcore.CodecIDOf(c.Codec)
	if !ok {
		return 0, false
	}
	return id, c.ServerSupports(fedcore.CodecName(id))
}

// WaitForRound polls until the server reaches at least the given round or
// closes, with the given poll interval. Each sleep is jittered over
// [0.5*poll, 1.5*poll) so a fleet of clients released by the same round
// transition does not re-synchronize into a thundering herd against the
// server.
func (c *Client) WaitForRound(ctx context.Context, round int, poll time.Duration) (RoundInfo, error) {
	for {
		info, err := c.Round(ctx)
		if err != nil {
			return info, err
		}
		if info.Round >= round || info.Closed {
			return info, nil
		}
		select {
		case <-ctx.Done():
			return info, ctx.Err()
		case <-time.After(jitterDuration(poll)):
		}
	}
}

// jitterDuration spreads d uniformly over [d/2, 3d/2).
func jitterDuration(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// drainClose consumes any unread remainder of an HTTP response body
// before closing it, so the underlying keep-alive connection can be
// reused instead of being torn down after every request.
func drainClose(body io.ReadCloser) {
	_, _ = io.Copy(io.Discard, io.LimitReader(body, 1<<20))
	_ = body.Close()
}

func httpError(op string, resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	return &HTTPError{
		Op:         op,
		StatusCode: resp.StatusCode,
		Status:     resp.Status,
		Body:       string(bytes.TrimSpace(body)),
	}
}

// LocalTrainer is the client-side training loop: it holds this device's
// pre-encoded hypervectors and participates in rounds until the server
// closes. It implements the paper's local update (one-shot bundling on
// first participation, then E refinement epochs).
type LocalTrainer struct {
	Client  *Client
	Encoded *tensor.Tensor
	Labels  []int
	Epochs  int
	// Poll is the round-polling interval (default 10 ms; tests and
	// loopback deployments want it small).
	Poll time.Duration
	// FailureBudget is how many consecutive failed interactions (after
	// the Client's own per-call retries) Participate tolerates before
	// giving up (default 8). Progress of any kind resets the count.
	FailureBudget int
	// Tamper, when set, mutates the locally trained model just before
	// each upload; global is the model the client downloaded this round,
	// the reference a delta-level attack corrupts against. It is the
	// adversarial-client injection hook: a Byzantine client is an honest
	// trainer with a Tamper hook (see internal/faults.Poisoner), which is
	// exactly how the poisoning chaos tests and the -poison flag of
	// cmd/fhdnn-client build theirs.
	Tamper func(round int, local, global *hdc.Model)

	bundledOnce bool
}

// Participate runs rounds until the server closes or ctx is done. It
// returns the number of rounds this client contributed to.
//
// The loop is built for unreliable deployments: transient transport
// errors and 5xx responses are absorbed (backing off up to
// FailureBudget consecutive failures), a quarantined upload skips the
// round rather than aborting, a stale-round rejection refetches and
// retrains, a 410 Gone is a clean finish, and a server restart (round
// number moving backwards) resets the client's round tracking so it
// rejoins from the server's new epoch.
func (lt *LocalTrainer) Participate(ctx context.Context) (int, error) {
	poll := lt.Poll
	if poll <= 0 {
		poll = 10 * time.Millisecond
	}
	budget := lt.FailureBudget
	if budget <= 0 {
		budget = 8
	}
	contributed := 0
	lastRound := 0
	failures := 0

	// absorb decides whether a failed interaction ends participation;
	// nil means "handled, keep looping".
	absorb := func(err error) error {
		if ctx.Err() != nil {
			return err
		}
		var he *HTTPError
		if errors.As(err, &he) && he.StatusCode == http.StatusGone {
			// training finished while we were mid-interaction
			return nil
		}
		if !Retryable(err) {
			return err
		}
		failures++
		if failures > budget {
			return fmt.Errorf("flnet: participate: %d consecutive failures, last: %w", failures, err)
		}
		t := time.NewTimer(jitterDuration(poll * time.Duration(failures)))
		defer t.Stop()
		select {
		case <-ctx.Done():
		case <-t.C:
		}
		return nil
	}

	for {
		info, err := lt.Client.Round(ctx)
		if err != nil {
			if ferr := absorb(err); ferr != nil {
				return contributed, ferr
			}
			var he *HTTPError
			if errors.As(err, &he) && he.StatusCode == http.StatusGone {
				return contributed, nil
			}
			continue
		}
		failures = 0
		if info.Closed {
			return contributed, nil
		}
		if info.Round < lastRound {
			// The server restarted (or was replaced) and its round
			// counter rewound; rejoin from its current epoch.
			lastRound = 0
		}
		if info.Round == lastRound {
			// Already contributed this round; sleep one jittered poll
			// and re-enter the loop (rather than WaitForRound, whose
			// target could become unreachable if the server restarts
			// and its round counter rewinds).
			select {
			case <-ctx.Done():
				return contributed, ctx.Err()
			case <-time.After(jitterDuration(poll)):
			}
			continue
		}
		global, round, err := lt.Client.FetchModel(ctx)
		if err != nil {
			if ferr := absorb(err); ferr != nil {
				return contributed, ferr
			}
			continue
		}
		failures = 0
		local := global.Clone()
		if !lt.bundledOnce {
			local.OneShotTrain(lt.Encoded, lt.Labels)
			lt.bundledOnce = true
		}
		for e := 0; e < lt.Epochs; e++ {
			if wrong := local.RefineEpoch(lt.Encoded, lt.Labels); wrong == 0 {
				break
			}
		}
		if lt.Tamper != nil {
			lt.Tamper(round, local, global)
		}
		err = lt.Client.PushUpdate(ctx, round, local)
		switch err.(type) {
		case nil:
			contributed++
			lastRound = round
			failures = 0
		case ErrStaleRound:
			// raced with the round closing; retry with the new model
			continue
		case ErrQuarantined:
			// the uplink mangled this transmission beyond repair; sit
			// out the round and try again with a fresh transmission
			lastRound = round
			continue
		default:
			if ferr := absorb(err); ferr != nil {
				return contributed, ferr
			}
			continue
		}
	}
}
