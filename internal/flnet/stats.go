package flnet

import (
	"sync"
	"sync/atomic"
)

// serverStats is the dedicated stats block: every counter a /v1/stats
// scrape reads lives here, off the model mutex and off the shard hot
// path. Scalar counters are atomics; the two per-key maps sit behind
// their own tiny mutex that is only ever held across map ops (never
// across channel or I/O work), so a scrape can never contend with shard
// aggregation or a round commit.
type serverStats struct {
	updatesAccepted        atomic.Int64
	updatesRejected        atomic.Int64
	updatesQuarantined     atomic.Int64
	duplicateUpdates       atomic.Int64
	updatesThrottled       atomic.Int64
	shardTimeouts          atomic.Int64
	roundsForcedByDeadline atomic.Int64
	partialCommits         atomic.Int64
	bytesReceived          atomic.Int64

	mu                  sync.Mutex
	quarantinedByReason map[string]int64
	updatesByCodec      map[string]int64
}

func newServerStats() *serverStats {
	return &serverStats{
		quarantinedByReason: make(map[string]int64),
		updatesByCodec:      make(map[string]int64),
	}
}

// quarantine books one refused update under its reason key.
func (st *serverStats) quarantine(reason string) {
	st.updatesQuarantined.Add(1)
	st.mu.Lock()
	st.quarantinedByReason[reason]++
	st.mu.Unlock()
}

// accept books one aggregated update under its codec name.
func (st *serverStats) accept(codecName string) {
	st.updatesAccepted.Add(1)
	st.mu.Lock()
	st.updatesByCodec[codecName]++
	st.mu.Unlock()
}

// snapshotMaps copies the per-key breakdowns for a stats response.
func (st *serverStats) snapshotMaps() (byReason, byCodec map[string]int64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	byReason = make(map[string]int64, len(st.quarantinedByReason))
	for k, v := range st.quarantinedByReason {
		byReason[k] = v
	}
	byCodec = make(map[string]int64, len(st.updatesByCodec))
	for k, v := range st.updatesByCodec {
		byCodec[k] = v
	}
	return byReason, byCodec
}

// ShardStats is the per-shard block inside Stats: queue depth and drop
// counts expose where backpressure is biting, commit counts how often the
// shard reached the round barrier, and Dead marks a shard the commit
// fan-in has written off (its updates degrade the round to partial
// aggregation instead of stalling it).
type ShardStats struct {
	Shard      int   `json:"shard"`
	Depth      int64 `json:"depth"`    // updates sitting in the queue right now
	Enqueued   int64 `json:"enqueued"` // updates ever queued
	Accepted   int64 `json:"accepted"`
	Stale      int64 `json:"stale"`
	Duplicates int64 `json:"duplicates"`
	Dropped    int64 `json:"dropped"` // queue-full rejections (429)
	Commits    int64 `json:"commits"` // round barriers this shard reached
	Pending    int64 `json:"pending"` // accepted updates awaiting the next commit
	Dead       bool  `json:"dead"`
}

// Stats is the JSON body of GET /v1/stats. BytesReceived counts the wire
// bytes actually consumed from update bodies — for enveloped updates that
// is the compressed size, so the endpoint directly reports the uplink
// savings a codec buys. UpdatesByCodec breaks accepted updates down by
// codec name ("legacy" for unenveloped posts). UpdatesQuarantined is the
// total across QuarantinedByReason; UpdatesClipped counts updates the
// aggregation policy rescaled (nonzero only under a fedcore.NormClip
// policy — a clipped update is still accepted, unlike a quarantined one).
//
// The sharding block: Shards is the configured shard count, UpdatesThrottled
// counts 429 queue-full rejections, ShardTimeouts counts uploads whose
// shard never answered within the upload timeout (a timed-out upload may
// still be processed later, so under shard failure the per-outcome
// counters can overlap with this one), PartialCommits counts rounds
// committed with at least one dead shard excluded, DeadShards is how many
// shards the commit barrier has written off, and PerShard carries the
// per-shard queue/drop/commit breakdown.
type Stats struct {
	Round                  int              `json:"round"`
	Aggregator             string           `json:"aggregator"`
	Shards                 int              `json:"shards"`
	UpdatesAccepted        int64            `json:"updatesAccepted"`
	UpdatesRejected        int64            `json:"updatesRejected"`
	UpdatesQuarantined     int64            `json:"updatesQuarantined"`
	QuarantinedByReason    map[string]int64 `json:"quarantinedByReason,omitempty"`
	UpdatesClipped         int64            `json:"updatesClipped"`
	DuplicateUpdates       int64            `json:"duplicateUpdates"`
	UpdatesThrottled       int64            `json:"updatesThrottled"`
	ShardTimeouts          int64            `json:"shardTimeouts"`
	RoundsForcedByDeadline int64            `json:"roundsForcedByDeadline"`
	PartialCommits         int64            `json:"partialCommits"`
	DeadShards             int              `json:"deadShards"`
	BytesReceived          int64            `json:"bytesReceived"`
	UpdatesByCodec         map[string]int64 `json:"updatesByCodec,omitempty"`
	PerShard               []ShardStats     `json:"perShard,omitempty"`
	Closed                 bool             `json:"closed"`
}
