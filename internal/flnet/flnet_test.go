package flnet

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"fhdnn/internal/channel"
	"fhdnn/internal/dataset"
	"fhdnn/internal/hdc"
	"fhdnn/internal/tensor"
)

func newTestServer(t *testing.T, cfg ServerConfig) (*Server, *httptest.Server) {
	t.Helper()
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { _ = s.Shutdown(context.Background()) })
	return s, ts
}

// wireSize is the serialized size of a KxD model: 4-byte magic, two
// int32 dims, 4 bytes per parameter.
func wireSize(k, d int) int64 { return int64(4 + 8 + 4*k*d) }

func TestServerConfigValidation(t *testing.T) {
	bad := []ServerConfig{
		{NumClasses: 0, Dim: 8, MinUpdates: 1},
		{NumClasses: 2, Dim: 0, MinUpdates: 1},
		{NumClasses: 2, Dim: 8, MinUpdates: 0},
	}
	for i, c := range bad {
		if _, err := NewServer(c); err == nil {
			t.Fatalf("config %d should be rejected", i)
		}
	}
}

func TestRoundEndpoint(t *testing.T) {
	_, ts := newTestServer(t, ServerConfig{NumClasses: 2, Dim: 8, MinUpdates: 2})
	c := &Client{BaseURL: ts.URL}
	info, err := c.Round(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if info.Round != 1 || info.Closed || info.MinUpdates != 2 {
		t.Fatalf("round info %+v", info)
	}
}

func TestFetchModelRoundTrip(t *testing.T) {
	srv, ts := newTestServer(t, ServerConfig{NumClasses: 3, Dim: 16, MinUpdates: 1})
	// give the global model recognizable content
	m, _ := srv.Model()
	_ = m
	c := &Client{BaseURL: ts.URL}
	got, round, err := c.FetchModel(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if round != 1 || got.K != 3 || got.D != 16 {
		t.Fatalf("model %dx%d at round %d", got.K, got.D, round)
	}
}

func TestUpdateAggregation(t *testing.T) {
	srv, ts := newTestServer(t, ServerConfig{NumClasses: 1, Dim: 4, MinUpdates: 2})
	c := &Client{BaseURL: ts.URL}
	ctx := context.Background()

	u1 := hdc.NewModel(1, 4)
	u1.SetFlat([]float32{2, 2, 2, 2})
	u2 := hdc.NewModel(1, 4)
	u2.SetFlat([]float32{4, 4, 4, 4})

	if err := c.PushUpdate(ctx, 1, u1); err != nil {
		t.Fatal(err)
	}
	if srv.Round() != 1 {
		t.Fatal("round must not advance before MinUpdates")
	}
	if err := c.PushUpdate(ctx, 1, u2); err != nil {
		t.Fatal(err)
	}
	if srv.Round() != 2 {
		t.Fatalf("round = %d, want 2 after aggregation", srv.Round())
	}
	m, _ := srv.Model()
	for i, v := range m.Flat() {
		if v != 3 { // mean of 2 and 4
			t.Fatalf("aggregated[%d] = %v, want 3", i, v)
		}
	}
}

func TestStaleUpdateRejected(t *testing.T) {
	_, ts := newTestServer(t, ServerConfig{NumClasses: 1, Dim: 4, MinUpdates: 1})
	c := &Client{BaseURL: ts.URL}
	ctx := context.Background()
	u := hdc.NewModel(1, 4)
	if err := c.PushUpdate(ctx, 1, u); err != nil {
		t.Fatal(err)
	}
	err := c.PushUpdate(ctx, 1, u) // server is now at round 2
	stale, ok := err.(ErrStaleRound)
	if !ok {
		t.Fatalf("expected ErrStaleRound, got %v", err)
	}
	if stale.Sent != 1 || stale.Current != 2 {
		t.Fatalf("stale error %+v", stale)
	}
	if stale.Error() == "" {
		t.Fatal("error string empty")
	}
}

func TestWrongDimsRejected(t *testing.T) {
	_, ts := newTestServer(t, ServerConfig{NumClasses: 2, Dim: 8, MinUpdates: 1})
	c := &Client{BaseURL: ts.URL}
	err := c.PushUpdate(context.Background(), 1, hdc.NewModel(2, 16))
	if err == nil {
		t.Fatal("mismatched dims must be rejected")
	}
}

func TestBadPayloadRejected(t *testing.T) {
	_, ts := newTestServer(t, ServerConfig{NumClasses: 2, Dim: 8, MinUpdates: 1})
	resp, err := http.Post(ts.URL+"/v1/update?round=1", "application/octet-stream",
		bytes.NewReader([]byte("garbage")))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

func TestMissingRoundParam(t *testing.T) {
	_, ts := newTestServer(t, ServerConfig{NumClasses: 2, Dim: 8, MinUpdates: 1})
	resp, err := http.Post(ts.URL+"/v1/update", "application/octet-stream", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

func TestServerClosesAfterMaxRounds(t *testing.T) {
	srv, ts := newTestServer(t, ServerConfig{NumClasses: 1, Dim: 4, MinUpdates: 1, MaxRounds: 2})
	c := &Client{BaseURL: ts.URL}
	ctx := context.Background()
	u := hdc.NewModel(1, 4)
	if err := c.PushUpdate(ctx, 1, u); err != nil {
		t.Fatal(err)
	}
	if err := c.PushUpdate(ctx, 2, u); err != nil {
		t.Fatal(err)
	}
	if !srv.Closed() {
		t.Fatal("server should close after MaxRounds")
	}
	if err := c.PushUpdate(ctx, 3, u); err == nil {
		t.Fatal("closed server must reject updates")
	}
}

// encodedClusters builds per-client hypervector shards of a separable
// problem.
func encodedClusters(t *testing.T, numClients int) (shards []*tensor.Tensor, labels [][]int, testEnc *tensor.Tensor, testLabels []int, k, d int) {
	t.Helper()
	k, d = 4, 1024
	rng := rand.New(rand.NewSource(7))
	train := dataset.GenerateVectors(dataset.VectorConfig{
		Name: "c", Classes: k, Features: 16, PerClass: 20, ClassStd: 2, SampleStd: 0.8, Seed: 3})
	test := dataset.GenerateVectors(dataset.VectorConfig{
		Name: "c", Classes: k, Features: 16, PerClass: 6, ClassStd: 2, SampleStd: 0.8, Seed: 3})
	enc := hdc.NewEncoder(rng, d, 16)
	encAll := enc.EncodeBatch(train.X)
	part := dataset.PartitionIID(train.Len(), numClients, rng)
	for _, idx := range part {
		shard := tensor.New(len(idx), d)
		lab := make([]int, len(idx))
		for bi, i := range idx {
			copy(shard.Data()[bi*d:(bi+1)*d], encAll.Data()[i*d:(i+1)*d])
			lab[bi] = train.Labels[i]
		}
		shards = append(shards, shard)
		labels = append(labels, lab)
	}
	return shards, labels, enc.EncodeBatch(test.X), test.Labels, k, d
}

// End-to-end: three networked clients train a global model over HTTP and
// it classifies held-out data.
func TestFederatedTrainingOverHTTP(t *testing.T) {
	const numClients, rounds = 3, 4
	shards, labels, testEnc, testLabels, k, d := encodedClusters(t, numClients)
	srv, ts := newTestServer(t, ServerConfig{
		NumClasses: k, Dim: d, MinUpdates: numClients, MaxRounds: rounds})

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	contributions := make([]int, numClients)
	errs := make([]error, numClients)
	for i := 0; i < numClients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lt := &LocalTrainer{
				Client:  &Client{BaseURL: ts.URL},
				Encoded: shards[i],
				Labels:  labels[i],
				Epochs:  2,
				Poll:    2 * time.Millisecond,
			}
			contributions[i], errs[i] = lt.Participate(ctx)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
		if contributions[i] != rounds {
			t.Fatalf("client %d contributed %d rounds, want %d", i, contributions[i], rounds)
		}
	}
	if !srv.Closed() {
		t.Fatal("server should have closed")
	}
	global, _ := srv.Model()
	if acc := global.Accuracy(testEnc, testLabels); acc < 0.85 {
		t.Fatalf("networked federated accuracy %v, want >= 0.85", acc)
	}
}

// Same as above but through a lossy simulated uplink: accuracy must
// survive, demonstrating the paper's robustness claim over the real wire
// protocol.
func TestFederatedTrainingOverHTTPWithLossyUplink(t *testing.T) {
	const numClients, rounds = 3, 4
	shards, labels, testEnc, testLabels, k, d := encodedClusters(t, numClients)
	srv, ts := newTestServer(t, ServerConfig{
		NumClasses: k, Dim: d, MinUpdates: numClients, MaxRounds: rounds})

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < numClients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lt := &LocalTrainer{
				Client: &Client{
					BaseURL: ts.URL,
					Uplink:  channel.PacketLoss{Rate: 0.2, PacketBytes: 256},
					Rng:     rand.New(rand.NewSource(int64(i))),
				},
				Encoded: shards[i],
				Labels:  labels[i],
				Epochs:  2,
				Poll:    2 * time.Millisecond,
			}
			if _, err := lt.Participate(ctx); err != nil {
				t.Errorf("client %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	global, _ := srv.Model()
	if acc := global.Accuracy(testEnc, testLabels); acc < 0.7 {
		t.Fatalf("lossy networked accuracy %v, want >= 0.7", acc)
	}
}

func TestPushUpdateUplinkWithoutRng(t *testing.T) {
	_, ts := newTestServer(t, ServerConfig{NumClasses: 1, Dim: 4, MinUpdates: 1})
	c := &Client{BaseURL: ts.URL, Uplink: channel.Perfect{}}
	if err := c.PushUpdate(context.Background(), 1, hdc.NewModel(1, 4)); err == nil {
		t.Fatal("Uplink without Rng must error")
	}
}

func TestWaitForRoundTimesOut(t *testing.T) {
	_, ts := newTestServer(t, ServerConfig{NumClasses: 1, Dim: 4, MinUpdates: 5})
	c := &Client{BaseURL: ts.URL}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := c.WaitForRound(ctx, 2, 5*time.Millisecond)
	if err == nil {
		t.Fatal("expected context deadline error")
	}
}

func TestStatsEndpoint(t *testing.T) {
	srv, ts := newTestServer(t, ServerConfig{NumClasses: 1, Dim: 4, MinUpdates: 1})
	_ = srv
	c := &Client{BaseURL: ts.URL}
	ctx := context.Background()
	u := hdc.NewModel(1, 4)
	if err := c.PushUpdate(ctx, 1, u); err != nil {
		t.Fatal(err)
	}
	if err := c.PushUpdate(ctx, 1, u); err == nil { // stale: server at round 2
		t.Fatal("expected stale rejection")
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.UpdatesAccepted != 1 || st.UpdatesRejected != 1 {
		t.Fatalf("stats %+v", st)
	}
	// both posts (one accepted, one stale-rejected) crossed the wire:
	// 2 x (4 magic + 8 dims + 16 payload)
	if want := 2 * wireSize(1, 4); st.BytesReceived != want {
		t.Fatalf("bytes %d, want %d", st.BytesReceived, want)
	}
	if st.Round != 2 {
		t.Fatalf("round %d", st.Round)
	}
}
