package flnet

import (
	"context"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fhdnn/internal/faults"
	"fhdnn/internal/hdc"
)

func modelWith(k, d int, fill float32) *hdc.Model {
	m := hdc.NewModel(k, d)
	flat := make([]float32, k*d)
	for i := range flat {
		flat[i] = fill
	}
	m.SetFlat(flat)
	return m
}

func TestQuarantineNonFinite(t *testing.T) {
	srv, ts := newTestServer(t, ServerConfig{NumClasses: 1, Dim: 4, MinUpdates: 1})
	c := &Client{BaseURL: ts.URL}
	ctx := context.Background()

	for _, poison := range []float32{float32(math.NaN()), float32(math.Inf(1)), float32(math.Inf(-1))} {
		u := modelWith(1, 4, 1)
		u.Flat()[2] = poison
		err := c.PushUpdate(ctx, 1, u)
		var q ErrQuarantined
		if !errors.As(err, &q) {
			t.Fatalf("poison %v: expected ErrQuarantined, got %v", poison, err)
		}
		if q.Round != 1 || q.Error() == "" {
			t.Fatalf("quarantine error %+v", q)
		}
	}
	if srv.Round() != 1 {
		t.Fatal("quarantined updates must not advance the round")
	}
	st := srv.Stats()
	if st.UpdatesQuarantined != 3 || st.UpdatesAccepted != 0 {
		t.Fatalf("stats %+v, want 3 quarantined 0 accepted", st)
	}
	// a clean update still goes through
	if err := c.PushUpdate(ctx, 1, modelWith(1, 4, 2)); err != nil {
		t.Fatal(err)
	}
	m, _ := srv.Model()
	for _, v := range m.Flat() {
		if v != 2 {
			t.Fatalf("global model %v polluted", m.Flat())
		}
	}
}

func TestQuarantineNormExploded(t *testing.T) {
	srv, ts := newTestServer(t, ServerConfig{
		NumClasses: 1, Dim: 4, MinUpdates: 1, MaxUpdateNorm: 100})
	c := &Client{BaseURL: ts.URL}
	ctx := context.Background()

	err := c.PushUpdate(ctx, 1, modelWith(1, 4, 1e6)) // norm 2e6 >> 100
	var q ErrQuarantined
	if !errors.As(err, &q) {
		t.Fatalf("expected ErrQuarantined, got %v", err)
	}
	// norm exactly at the limit passes (limit is exclusive)
	if err := c.PushUpdate(ctx, 1, modelWith(1, 4, 50)); err != nil { // norm 100
		t.Fatal(err)
	}
	if st := srv.Stats(); st.UpdatesQuarantined != 1 || st.UpdatesAccepted != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestDuplicateUpdateDeduped(t *testing.T) {
	srv, ts := newTestServer(t, ServerConfig{NumClasses: 1, Dim: 4, MinUpdates: 2})
	ctx := context.Background()
	a := &Client{BaseURL: ts.URL, ID: "client-a"}
	b := &Client{BaseURL: ts.URL, ID: "client-b"}

	if err := a.PushUpdate(ctx, 1, modelWith(1, 4, 2)); err != nil {
		t.Fatal(err)
	}
	// a retried upload must look like success but not aggregate twice
	if err := a.PushUpdate(ctx, 1, modelWith(1, 4, 2)); err != nil {
		t.Fatalf("duplicate must be accepted idempotently, got %v", err)
	}
	if srv.Round() != 1 {
		t.Fatal("duplicate counted toward MinUpdates")
	}
	if err := b.PushUpdate(ctx, 1, modelWith(1, 4, 4)); err != nil {
		t.Fatal(err)
	}
	if srv.Round() != 2 {
		t.Fatalf("round %d, want 2", srv.Round())
	}
	m, _ := srv.Model()
	for _, v := range m.Flat() {
		if v != 3 { // mean of 2 and 4; a double-counted dup would give 8/3
			t.Fatalf("aggregate %v, want all 3", m.Flat())
		}
	}
	st := srv.Stats()
	if st.DuplicateUpdates != 1 || st.UpdatesAccepted != 2 {
		t.Fatalf("stats %+v", st)
	}

	// dedupe state resets per round: client-a may contribute again
	if err := a.PushUpdate(ctx, 2, modelWith(1, 4, 1)); err != nil {
		t.Fatalf("round 2 contribution rejected: %v", err)
	}
}

func TestRoundDeadlineForcesPartialAggregation(t *testing.T) {
	srv, ts := newTestServer(t, ServerConfig{
		NumClasses: 1, Dim: 4, MinUpdates: 3, RoundDeadline: 40 * time.Millisecond})
	c := &Client{BaseURL: ts.URL}
	if err := c.PushUpdate(context.Background(), 1, modelWith(1, 4, 5)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for srv.Round() == 1 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if srv.Round() != 2 {
		t.Fatalf("round %d, deadline did not force aggregation", srv.Round())
	}
	m, _ := srv.Model()
	for _, v := range m.Flat() {
		if v != 5 {
			t.Fatalf("partial aggregate %v, want the lone update", m.Flat())
		}
	}
	if st := srv.Stats(); st.RoundsForcedByDeadline != 1 {
		t.Fatalf("stats %+v, want 1 forced round", st)
	}
}

func TestRoundDeadlineCarriesEmptyRoundForward(t *testing.T) {
	srv, _ := newTestServer(t, ServerConfig{
		NumClasses: 1, Dim: 4, MinUpdates: 2, RoundDeadline: 15 * time.Millisecond})
	time.Sleep(80 * time.Millisecond) // several deadlines pass with no updates
	if r := srv.Round(); r != 1 {
		t.Fatalf("round %d, empty rounds must not advance", r)
	}
	if srv.Closed() {
		t.Fatal("server must not close on empty deadlines")
	}
	if st := srv.Stats(); st.RoundsForcedByDeadline != 0 {
		t.Fatalf("stats %+v, empty rounds are carried, not forced", st)
	}
}

func TestShutdownClosesRoundCleanly(t *testing.T) {
	srv, ts := newTestServer(t, ServerConfig{NumClasses: 1, Dim: 4, MinUpdates: 3})
	c := &Client{BaseURL: ts.URL}
	ctx := context.Background()
	if err := c.PushUpdate(ctx, 1, modelWith(1, 4, 7)); err != nil {
		t.Fatal(err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if !srv.Closed() {
		t.Fatal("shutdown must close the server")
	}
	m, _ := srv.Model()
	for _, v := range m.Flat() {
		if v != 7 {
			t.Fatalf("pending update lost on shutdown: %v", m.Flat())
		}
	}
	// further updates answer 410 Gone
	err := c.PushUpdate(ctx, 2, modelWith(1, 4, 1))
	var he *HTTPError
	if !errors.As(err, &he) || he.StatusCode != http.StatusGone {
		t.Fatalf("post-shutdown push: %v, want 410", err)
	}
	// idempotent
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestClientRetriesTransientFailures(t *testing.T) {
	_, ts := newTestServer(t, ServerConfig{NumClasses: 1, Dim: 4, MinUpdates: 1})
	// 60% of requests die at the transport; 10 attempts make success
	// overwhelmingly likely, deterministically under the fixed seed.
	tr := faults.NewTransport(faults.Config{FailRate: 0.6, Seed: 42})
	c := &Client{
		BaseURL:    ts.URL,
		HTTPClient: &http.Client{Transport: tr},
		Retry:      &RetryPolicy{MaxAttempts: 10, BaseDelay: time.Millisecond, Jitter: 0.1},
	}
	ctx := context.Background()
	if _, err := c.Round(ctx); err != nil {
		t.Fatalf("round with retries: %v", err)
	}
	if _, _, err := c.FetchModel(ctx); err != nil {
		t.Fatalf("fetch with retries: %v", err)
	}
	if err := c.PushUpdate(ctx, 1, modelWith(1, 4, 1)); err != nil {
		t.Fatalf("push with retries: %v", err)
	}
	if st := tr.Stats(); st.Failed == 0 {
		t.Fatalf("fault transport injected nothing (stats %+v); test proves nothing", st)
	}
}

func TestClientRetriesTruncatedModelFetch(t *testing.T) {
	_, ts := newTestServer(t, ServerConfig{NumClasses: 2, Dim: 64, MinUpdates: 1})
	tr := faults.NewTransport(faults.Config{TruncateRate: 0.5, Seed: 3})
	c := &Client{
		BaseURL:    ts.URL,
		HTTPClient: &http.Client{Transport: tr},
		Retry:      &RetryPolicy{MaxAttempts: 10, BaseDelay: time.Millisecond, Jitter: 0.1},
	}
	for i := 0; i < 8; i++ {
		if _, _, err := c.FetchModel(context.Background()); err != nil {
			t.Fatalf("fetch %d: %v", i, err)
		}
	}
	if st := tr.Stats(); st.Truncated == 0 {
		t.Fatal("no truncations injected; test proves nothing")
	}
}

// terminal 4xx answers must not be retried: they would fail identically.
func TestRetrySkipsTerminalErrors(t *testing.T) {
	var posts atomic.Int64
	_, ts := newTestServer(t, ServerConfig{NumClasses: 1, Dim: 4, MinUpdates: 2})
	counting := roundTripFunc(func(req *http.Request) (*http.Response, error) {
		if req.Method == http.MethodPost {
			posts.Add(1)
		}
		return http.DefaultTransport.RoundTrip(req)
	})
	c := &Client{
		BaseURL:    ts.URL,
		HTTPClient: &http.Client{Transport: counting},
		Retry:      &RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond},
	}
	// stale round -> 409, exactly one wire attempt
	err := c.PushUpdate(context.Background(), 99, modelWith(1, 4, 1))
	if _, ok := err.(ErrStaleRound); !ok {
		t.Fatalf("want ErrStaleRound, got %v", err)
	}
	if n := posts.Load(); n != 1 {
		t.Fatalf("stale push attempted %d times, want 1", n)
	}
	// quarantine -> 422, exactly one wire attempt
	posts.Store(0)
	u := modelWith(1, 4, 1)
	u.Flat()[0] = float32(math.NaN())
	err = c.PushUpdate(context.Background(), 1, u)
	var q ErrQuarantined
	if !errors.As(err, &q) {
		t.Fatalf("want ErrQuarantined, got %v", err)
	}
	if n := posts.Load(); n != 1 {
		t.Fatalf("quarantined push attempted %d times, want 1", n)
	}
}

type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(req *http.Request) (*http.Response, error) { return f(req) }

// Satellite: the stale-round retry path in Participate. A rival update
// slips in while our trainer's POST is in flight, so the trainer's first
// upload bounces 409 and it must refetch, retrain, and land in the next
// round.
func TestParticipateStaleRoundRetry(t *testing.T) {
	srv, ts := newTestServer(t, ServerConfig{NumClasses: 4, Dim: 256, MinUpdates: 1, MaxRounds: 2})
	shards, labels, _, _, _, _ := encodedClusters(t, 1)

	var raced atomic.Bool
	interloper := roundTripFunc(func(req *http.Request) (*http.Response, error) {
		if req.Method == http.MethodPost && raced.CompareAndSwap(false, true) {
			// advance the round under the trainer's feet
			rival := &Client{BaseURL: ts.URL}
			if err := rival.PushUpdate(req.Context(), srv.Round(), hdc.NewModel(4, 256)); err != nil {
				t.Errorf("interloper push: %v", err)
			}
		}
		return http.DefaultTransport.RoundTrip(req)
	})

	lt := &LocalTrainer{
		Client:  &Client{BaseURL: ts.URL, ID: "trainer", HTTPClient: &http.Client{Transport: interloper}},
		Encoded: shards[0],
		Labels:  labels[0],
		Epochs:  1,
		Poll:    2 * time.Millisecond,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	contributed, err := lt.Participate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !raced.Load() {
		t.Fatal("stale race never triggered; test proves nothing")
	}
	// the interloper consumed round 1, so the trainer's 409-bounced
	// update must have landed in round 2
	if contributed != 1 {
		t.Fatalf("contributed %d rounds, want 1", contributed)
	}
	if !srv.Closed() {
		t.Fatal("server should have closed after MaxRounds")
	}
	if st := srv.Stats(); st.UpdatesRejected == 0 {
		t.Fatalf("stats %+v, want the stale rejection recorded", st)
	}
}

// Participate survives a server "restart": a replacement server whose
// round counter rewound below what the client already saw must be
// rejoined from its new epoch, not deadlock the client waiting for a
// round number the new server will never reach.
func TestParticipateSurvivesServerRestart(t *testing.T) {
	first, err := NewServer(ServerConfig{NumClasses: 4, Dim: 256, MinUpdates: 2})
	if err != nil {
		t.Fatal(err)
	}
	second, err := NewServer(ServerConfig{NumClasses: 4, Dim: 256, MinUpdates: 2, MaxRounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	var swapped atomic.Bool
	mux := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if swapped.Load() {
			second.Handler().ServeHTTP(w, r)
		} else {
			first.Handler().ServeHTTP(w, r)
		}
	})
	ts := newRawServer(t, mux)

	shards, labels, _, _, _, _ := encodedClusters(t, 1)
	lt := &LocalTrainer{
		Client:  &Client{BaseURL: ts, ID: "restarter"},
		Encoded: shards[0], Labels: labels[0], Epochs: 1, Poll: 2 * time.Millisecond,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	done := make(chan struct{})
	var contributed int
	var perr error
	go func() {
		defer close(done)
		contributed, perr = lt.Participate(ctx)
	}()

	helper := &Client{BaseURL: ts, ID: "helper"}
	// Round 1 on the first server: trainer + helper close it. The
	// trainer then contributes to round 2 and waits at lastRound=2.
	waitFor(t, func() bool { return first.Stats().UpdatesAccepted == 1 })
	if err := helper.PushUpdate(ctx, 1, hdc.NewModel(4, 256)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return first.Stats().UpdatesAccepted == 3 })

	// "Restart": swap in a fresh server at round 1 < the trainer's 2.
	swapped.Store(true)
	waitFor(t, func() bool { return second.Stats().UpdatesAccepted == 1 })
	if err := helper.PushUpdate(ctx, 1, hdc.NewModel(4, 256)); err != nil {
		t.Fatal(err)
	}
	<-done
	if perr != nil {
		t.Fatal(perr)
	}
	if !second.Closed() {
		t.Fatal("second server should have closed")
	}
	// rounds 1 and 2 on the first server, round 1 on the second
	if contributed != 3 {
		t.Fatalf("contributed %d rounds, want 3", contributed)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func newRawServer(t *testing.T, h http.Handler) string {
	t.Helper()
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return ts.URL
}

// Satellite: hammer handleUpdate concurrently; meaningful under
// `go test -race` (16 goroutines share the server's mutex-guarded state)
// and checks the counters stay consistent under contention.
func TestConcurrentUpdateStress(t *testing.T) {
	srv, ts := newTestServer(t, ServerConfig{
		NumClasses: 1, Dim: 4, MinUpdates: 4, MaxUpdateNorm: 1000})
	ctx := context.Background()
	const workers, perWorker = 16, 25

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := &Client{BaseURL: ts.URL}
			if w%2 == 0 {
				c.ID = "worker" // half the workers share an identity: dedupe contention
			}
			for i := 0; i < perWorker; i++ {
				u := modelWith(1, 4, float32(w))
				if w%5 == 0 {
					u.Flat()[0] = float32(math.Inf(1)) // poison stream
				}
				// rounds race forward underneath us; any outcome
				// (202/409/410/422) is legal, panics and races are not
				_ = c.PushUpdate(ctx, srv.Round(), u)
			}
		}(w)
	}
	wg.Wait()

	st := srv.Stats()
	total := st.UpdatesAccepted + st.UpdatesRejected + st.UpdatesQuarantined + st.DuplicateUpdates
	if total != workers*perWorker {
		t.Fatalf("counter sum %d, want %d (stats %+v)", total, workers*perWorker, st)
	}
	if want := int64(workers*perWorker) * wireSize(1, 4); st.BytesReceived != want {
		t.Fatalf("bytes %d, want %d", st.BytesReceived, want)
	}
	if st.UpdatesQuarantined == 0 {
		t.Fatal("poison stream never quarantined")
	}
	// every aggregation consumed at least MinUpdates accepted updates
	if maxRounds := st.UpdatesAccepted/int64(srv.cfg.MinUpdates) + 1; int64(srv.Round()) > maxRounds {
		t.Fatalf("round %d impossible with %d accepted updates", srv.Round(), st.UpdatesAccepted)
	}
	m, _ := srv.Model()
	for i, v := range m.Flat() {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatalf("global model[%d] = %v: quarantine leaked", i, v)
		}
	}
}
