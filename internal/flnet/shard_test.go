package flnet

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"fhdnn/internal/fedcore"
	"fhdnn/internal/hdc"
)

// pushAs posts one legacy-format update under the given client identity.
func pushAs(t *testing.T, url, id string, round int, k, d int, vals []float32) error {
	t.Helper()
	m := hdc.NewModel(k, d)
	m.SetFlat(vals)
	c := &Client{BaseURL: url, ID: id}
	return c.PushUpdate(context.Background(), round, m)
}

// idForShard finds a client identity that hashes onto the target shard.
func idForShard(target, shards int) string {
	for i := 0; ; i++ {
		id := fmt.Sprintf("client-%d", i)
		if fedcore.ShardIndex(id, shards) == target {
			return id
		}
	}
}

// Tentpole acceptance: the committed global model is bit-identical across
// shard counts, over the real HTTP path, for both a mean policy (bundle,
// integer-valued updates where float64 accumulation is exact) and a
// sorting policy (median, arbitrary floats, exactly permutation
// invariant). Upload order is shuffled differently per shard count, so
// this also proves order independence end to end.
func TestShardedServerBitIdentity(t *testing.T) {
	const k, d, nClients = 2, 16, 12
	type policy struct {
		name    string
		build   func() fedcore.Aggregator
		integer bool
	}
	policies := []policy{
		{"bundle", nil, true},
		{"median", func() fedcore.Aggregator { return &fedcore.Median{} }, false},
	}
	for _, pol := range policies {
		rng := rand.New(rand.NewSource(42))
		updates := make([][]float32, nClients)
		for i := range updates {
			vals := make([]float32, k*d)
			for j := range vals {
				if pol.integer {
					vals[j] = float32(rng.Intn(41) - 20)
				} else {
					vals[j] = float32(rng.NormFloat64())
				}
			}
			updates[i] = vals
		}
		var want []float32
		for _, shards := range []int{1, 4, 7} {
			cfg := ServerConfig{NumClasses: k, Dim: d, MinUpdates: nClients, Shards: shards}
			if pol.build != nil {
				cfg.Aggregator = pol.build()
			}
			srv, ts := newTestServer(t, cfg)
			order := rand.New(rand.NewSource(int64(shards))).Perm(nClients)
			for _, i := range order {
				if err := pushAs(t, ts.URL, fmt.Sprintf("edge-%03d", i), 1, k, d, updates[i]); err != nil {
					t.Fatalf("%s/%d shards: push %d: %v", pol.name, shards, i, err)
				}
			}
			if srv.Round() != 2 {
				t.Fatalf("%s/%d shards: round = %d, want 2", pol.name, shards, srv.Round())
			}
			m, _ := srv.Model()
			got := m.Flat()
			if want == nil {
				want = append([]float32(nil), got...)
				continue
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("%s/%d shards: global[%d] = %v, differs from 1-shard %v",
						pol.name, shards, j, got[j], want[j])
				}
			}
		}
	}
}

// A full shard queue is backpressure, not failure: the upload that found
// the shard wedged times out with 503, the next one bounces off the full
// queue with 429 + Retry-After, and the client surfaces that as
// ErrThrottled carrying the server's hint.
func TestShardQueueBackpressure(t *testing.T) {
	srv, ts := newTestServer(t, ServerConfig{
		NumClasses: 1, Dim: 4, MinUpdates: 100,
		Shards: 1, ShardQueue: 1,
		UploadTimeout: 80 * time.Millisecond,
		RetryAfter:    3 * time.Second,
	})
	srv.KillShard(0) // the queue will never drain

	err := pushAs(t, ts.URL, "c1", 1, 1, 4, []float32{1, 1, 1, 1})
	var he *HTTPError
	if !errors.As(err, &he) || he.StatusCode != 503 {
		t.Fatalf("first push against a dead shard: want 503, got %v", err)
	}
	err = pushAs(t, ts.URL, "c2", 1, 1, 4, []float32{1, 1, 1, 1})
	var thr ErrThrottled
	if !errors.As(err, &thr) {
		t.Fatalf("second push with a full queue: want ErrThrottled, got %v", err)
	}
	if thr.RetryAfter != 3*time.Second {
		t.Fatalf("Retry-After hint = %v, want 3s", thr.RetryAfter)
	}
	st := srv.Stats()
	if st.ShardTimeouts != 1 || st.UpdatesThrottled != 1 {
		t.Fatalf("timeouts/throttled = %d/%d, want 1/1", st.ShardTimeouts, st.UpdatesThrottled)
	}
	if st.PerShard[0].Dropped != 1 {
		t.Fatalf("shard 0 dropped = %d, want 1", st.PerShard[0].Dropped)
	}
	if Retryable(thr) != true {
		t.Fatal("ErrThrottled must be retryable")
	}
}

// Chaos acceptance: killing a shard mid-round must degrade the round to
// partial aggregation, not stall it. The deadline commit writes the dead
// shard off (its pending update is lost), folds the surviving shards,
// advances the round, records the death in /v1/stats — and the dead
// shard's clients are rerouted to a live shard next round.
func TestDeadShardDegradesToPartialAggregation(t *testing.T) {
	const shards = 4
	srv, ts := newTestServer(t, ServerConfig{
		NumClasses: 1, Dim: 4, MinUpdates: 100,
		Shards:        shards,
		RoundDeadline: 300 * time.Millisecond,
		CommitTimeout: 100 * time.Millisecond,
	})
	victim := 2
	victimID := idForShard(victim, shards)
	liveA := idForShard((victim+1)%shards, shards)
	liveB := idForShard((victim+2)%shards, shards)

	// One update lands on the doomed shard, two on live shards.
	if err := pushAs(t, ts.URL, victimID, 1, 1, 4, []float32{100, 100, 100, 100}); err != nil {
		t.Fatal(err)
	}
	if err := pushAs(t, ts.URL, liveA, 1, 1, 4, []float32{2, 2, 2, 2}); err != nil {
		t.Fatal(err)
	}
	if err := pushAs(t, ts.URL, liveB, 1, 1, 4, []float32{4, 4, 4, 4}); err != nil {
		t.Fatal(err)
	}
	srv.KillShard(victim)

	// The round deadline fires, the barrier times out on the dead shard,
	// and the round commits without it instead of stalling.
	waitFor(t, func() bool { return srv.Round() == 2 })

	m, _ := srv.Model()
	for i, v := range m.Flat() {
		if v != 3 { // mean(2, 4): the dead shard's 100s were excluded
			t.Fatalf("partial global[%d] = %v, want 3", i, v)
		}
	}
	st := srv.Stats()
	if st.DeadShards != 1 || !st.PerShard[victim].Dead {
		t.Fatalf("stats must record the dead shard: %+v", st.PerShard)
	}
	if st.PartialCommits < 1 || st.RoundsForcedByDeadline < 1 {
		t.Fatalf("partial/forced = %d/%d, want >= 1 each",
			st.PartialCommits, st.RoundsForcedByDeadline)
	}

	// The dead shard's clients reroute to the next live shard and keep
	// contributing.
	if err := pushAs(t, ts.URL, victimID, 2, 1, 4, []float32{5, 5, 5, 5}); err != nil {
		t.Fatalf("rerouted client refused after shard death: %v", err)
	}
	if got := srv.Stats().UpdatesAccepted; got != 4 {
		t.Fatalf("UpdatesAccepted = %d, want 4 (rerouted update counted)", got)
	}
}

// Per-shard stats surface where updates landed and committed.
func TestStatsPerShardBreakdown(t *testing.T) {
	srv, ts := newTestServer(t, ServerConfig{
		NumClasses: 1, Dim: 4, MinUpdates: 2, Shards: 3})
	a, b := idForShard(0, 3), idForShard(1, 3)
	if err := pushAs(t, ts.URL, a, 1, 1, 4, []float32{1, 1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	if err := pushAs(t, ts.URL, b, 1, 1, 4, []float32{3, 3, 3, 3}); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.Shards != 3 || len(st.PerShard) != 3 {
		t.Fatalf("shards = %d, perShard = %d entries", st.Shards, len(st.PerShard))
	}
	if st.PerShard[0].Accepted != 1 || st.PerShard[1].Accepted != 1 || st.PerShard[2].Accepted != 0 {
		t.Fatalf("per-shard accepted: %+v", st.PerShard)
	}
	for i, ps := range st.PerShard {
		if ps.Commits != 1 {
			t.Fatalf("shard %d commits = %d, want 1 (barrier reached)", i, ps.Commits)
		}
		if ps.Pending != 0 || ps.Depth != 0 {
			t.Fatalf("shard %d pending/depth = %d/%d after commit", i, ps.Pending, ps.Depth)
		}
	}
	if srv.Round() != 2 {
		t.Fatalf("round = %d, want 2", srv.Round())
	}
}

// Regression test for the shutdown race found by fhdnn-lint goleak: the
// commit-wait loop in shardHandle used to select only on done and
// sh.ctl, so a shard that triggered the MinUpdates commit wedged forever
// if the coordinator exited on stopAll with the request still queued —
// leaking the shard goroutine and the upload handler blocked on m.reply.
// The server here is built white-box with NO coordinator running, which
// is exactly the state after that racy interleaving; the wait loop must
// release through its stopAll arm.
func TestShutdownRaceDoesNotWedgeShard(t *testing.T) {
	s := &Server{
		cfg:      ServerConfig{NumClasses: 2, Dim: 4, MinUpdates: 1},
		commitCh: make(chan commitReq, 4),
		stopAll:  make(chan struct{}),
		stats:    newServerStats(),
	}
	s.round.Store(1)
	sh := &shard{
		ctl:  make(chan parkReq),
		agg:  &fedcore.Median{},
		seen: make(map[string]bool),
	}
	m := shardAdd{
		round:    1,
		clientID: "client-0",
		params:   []float32{1, 2, 3, 4, 5, 6, 7, 8},
		reply:    make(chan addReply, 1),
	}
	handled := make(chan struct{})
	go func() {
		// MinUpdates-th update of the round: enqueues the commit request,
		// then enters the wait loop.
		s.shardHandle(sh, m)
		close(handled)
	}()

	deadline := time.Now().Add(5 * time.Second)
	for len(s.commitCh) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("commit request never enqueued")
		}
		time.Sleep(time.Millisecond)
	}
	// The coordinator is gone; nobody will ever close req.done.
	close(s.stopAll)

	select {
	case r := <-m.reply:
		if r.verdict != vAccepted {
			t.Fatalf("verdict = %v, want vAccepted", r.verdict)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("shard goroutine wedged in the commit-wait loop after stopAll")
	}
	select {
	case <-handled:
	case <-time.After(5 * time.Second):
		t.Fatal("shardHandle never returned after stopAll")
	}
}

// The coordinator's stopAll arm drains requests that raced the stop and
// closes their done channels, so waiters are released deterministically
// instead of relying on the stopAll broadcast alone. Works for both
// select outcomes: if coordinate picks the request first, commit() is a
// no-op on a closed server and done is closed on the normal path.
func TestCoordinateDrainReleasesQueuedRequests(t *testing.T) {
	s := &Server{
		commitCh: make(chan commitReq, 4),
		stopAll:  make(chan struct{}),
		stats:    newServerStats(),
	}
	s.round.Store(1)
	s.closed.Store(true)
	done := make(chan struct{})
	s.commitCh <- commitReq{reason: commitMinUpdates, round: 1, done: done}
	close(s.stopAll)
	go s.coordinate()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("queued commit request was not drained on shutdown")
	}
}

// routeShard must survive hostile identities and degenerate shard
// states: with no shards there is nothing to reduce the hash modulo,
// and a fully dead fleet must route to nil rather than spin or panic.
// The client identity is an attacker-chosen header, so this is the
// wire-taint boundary for shard routing.
func TestRouteShardDegenerateStates(t *testing.T) {
	empty := &Server{}
	if sh := empty.routeShard("client-1"); sh != nil {
		t.Fatal("zero shards must route to nil")
	}
	s := &Server{shards: []*shard{{id: 0}, {id: 1}, {id: 2}}}
	for _, id := range []string{"", "client-1", "\x00\xff arbitrary header bytes"} {
		sh := s.routeShard(id)
		if sh == nil {
			t.Fatalf("live fleet must route %q somewhere", id)
		}
		if want := fedcore.ShardIndex(id, 3); sh.id != want {
			t.Fatalf("%q routed to shard %d, want its hash shard %d", id, sh.id, want)
		}
	}
	for _, sh := range s.shards {
		sh.dead.Store(true)
	}
	if sh := s.routeShard("client-1"); sh != nil {
		t.Fatal("all-dead fleet must route to nil")
	}
}
