package flnet

import (
	"sync"
	"sync/atomic"
	"time"

	"fhdnn/internal/fedcore"
)

// The sharded round pipeline. The flat server serialized every upload on
// one mutex around one aggregator; here the round state is split across
// N shard goroutines, each owning one inner aggregator of a
// fedcore.ShardedAggregator plus that shard's dedupe set. An upload
// handler decodes and gate-checks the update without any lock, then
// enqueues it on its shard's bounded queue (full queue -> 429 with
// Retry-After: ingest backpressure instead of unbounded buffering) and
// waits for the shard's verdict. The shard goroutine streams the update
// into its aggregator the moment it is dequeued — aggregation work
// happens on arrival, spread across shards, not in a batch at round end.
//
// Round commit is a fan-in barrier run by a single coordinator
// goroutine. It parks every live shard (a rendezvous on the shard's
// unbuffered ctl channel proves the shard is quiescent), folds the shard
// aggregators into the global model, resets round state, advances the
// round, and releases the shards. A shard that does not reach the
// barrier within CommitTimeout is declared dead: the commit proceeds
// without it (partial aggregation — the paper's stance that stragglers
// and failures must not stall the federation), its clients are rerouted
// to the next live shard, and /v1/stats records the loss. Everything
// here follows the lockheld discipline: no mutex is ever held across a
// channel operation; the only lock in the pipeline (Server.mu) fences
// the model buffer during the fold and during snapshot reads.
type shard struct {
	id       int
	queue    chan shardAdd // bounded ingest queue; full -> 429
	ctl      chan parkReq  // unbuffered commit-barrier rendezvous
	kill     chan struct{} // chaos hook: closing abandons the goroutine
	killOnce sync.Once
	agg      fedcore.Aggregator // == sharded.Shard(id); owned by the goroutine
	seen     map[string]bool    // per-round client dedupe, owned by the goroutine
	dead     atomic.Bool        // set by the commit barrier on timeout

	depth      atomic.Int64 // gauges and counters for ShardStats
	enqueued   atomic.Int64
	accepted   atomic.Int64
	stale      atomic.Int64
	duplicates atomic.Int64
	dropped    atomic.Int64
	commits    atomic.Int64
	pending    atomic.Int64
}

type verdict int

const (
	vAccepted verdict = iota
	vDuplicate
	vStale
	vClosed
)

// shardAdd is one decoded, gate-checked update in flight to its shard.
type shardAdd struct {
	round    int
	clientID string
	codec    string
	params   []float32
	reply    chan addReply // buffered(1): the shard never blocks on a gone handler
}

type addReply struct {
	verdict verdict
	round   int // current round, for stale 409 headers
}

// parkReq is the commit barrier's rendezvous: receiving one parks the
// shard goroutine until release is closed.
type parkReq struct {
	release chan struct{}
}

type commitReason int

const (
	commitMinUpdates commitReason = iota
	commitDeadline
	commitShutdown
)

// commitReq asks the coordinator to close a round. done is closed once
// the request has been handled (committed or skipped as stale).
type commitReq struct {
	reason commitReason
	round  int
	done   chan struct{}
}

// runShard is one shard's goroutine: stream updates from the queue into
// the shard aggregator, park at commit barriers, exit on server stop or
// a chaos kill.
func (s *Server) runShard(sh *shard) {
	for {
		select {
		case <-s.stopAll:
			return
		case <-sh.kill:
			return
		case pr := <-sh.ctl:
			//fhdnn:allow goleak release is closed unconditionally at the end of every commit; a commit in progress proves the coordinator is alive to finish it
			<-pr.release
		case m := <-sh.queue:
			sh.depth.Add(-1)
			s.shardHandle(sh, m)
		}
	}
}

// shardHandle applies one queued update: round and duplicate gates, then
// a streaming Add into the shard aggregator. When this update is the
// MinUpdates-th of the round it triggers the commit and waits for it, so
// the triggering client's 202 is not written until the round has
// advanced — the synchronous contract the flat server had.
//
//fhdnn:hotpath per-update aggregation step on the shard goroutine
func (s *Server) shardHandle(sh *shard, m shardAdd) {
	if s.closed.Load() {
		s.stats.updatesRejected.Add(1)
		m.reply <- addReply{verdict: vClosed}
		return
	}
	round := int(s.round.Load())
	if m.round != round {
		sh.stale.Add(1)
		s.stats.updatesRejected.Add(1)
		m.reply <- addReply{verdict: vStale, round: round}
		return
	}
	if m.clientID != "" {
		if sh.seen[m.clientID] {
			sh.duplicates.Add(1)
			s.stats.duplicateUpdates.Add(1)
			m.reply <- addReply{verdict: vDuplicate}
			return
		}
		sh.seen[m.clientID] = true
	}
	sh.agg.Add(fedcore.Update{Params: m.params, Round: round, ClientID: m.clientID, Samples: 1})
	sh.accepted.Add(1)
	sh.pending.Add(1)
	s.stats.accept(m.codec)
	if n := s.acceptedRound.Add(1); n == int64(s.cfg.MinUpdates) {
		// This shard saw the threshold update. Ask the coordinator to
		// commit and wait for it — but keep answering barrier parks while
		// waiting, in case a racing deadline commit wins and needs this
		// shard quiescent first.
		//fhdnn:allow hotalloc one commit handshake allocation per round close, not per update
		done := make(chan struct{})
		s.commitCh <- commitReq{reason: commitMinUpdates, round: round, done: done}
	wait:
		for {
			select {
			case <-done:
				break wait
			case <-s.stopAll:
				// Found by fhdnn-lint goleak: without this arm the wait
				// could only end through done or a barrier park. If the
				// coordinator exits on stopAll with this request still
				// queued (its select chooses stopAll over a ready
				// commitCh), nobody ever closes done and this shard
				// goroutine — plus the handler blocked on m.reply — leaks.
				break wait
			case pr := <-sh.ctl:
				//fhdnn:allow goleak release is closed unconditionally at the end of every commit; a commit in progress proves the coordinator is alive to finish it
				<-pr.release
			}
		}
	}
	m.reply <- addReply{verdict: vAccepted}
}

// coordinate is the single commit executor: every round close — by
// update threshold, deadline, or shutdown — funnels through here, which
// is what makes the fan-in barrier race-free without a round mutex.
func (s *Server) coordinate() {
	for {
		select {
		case <-s.stopAll:
			// Drain requests that raced the stop: each carries a waiter
			// (shardHandle's commit-wait loop) whose done must still be
			// closed. The waiters also watch stopAll now, so this drain is
			// belt and braces, but it makes shutdown deterministic instead
			// of relying on every waiter polling the broadcast.
			for {
				select {
				case req := <-s.commitCh:
					//fhdnn:allow chandisc commit handshake: the requester creates done and transfers close authority to the coordinator with the request
					close(req.done)
				default:
					return
				}
			}
		case req := <-s.commitCh:
			s.commit(req)
			//fhdnn:allow chandisc commit handshake: the requester creates done and transfers close authority to the coordinator with the request
			close(req.done)
		}
	}
}

// commit closes the current round: quiesce the live shards, fold them
// into the global model, reset round state, advance, release. A shard
// that misses the barrier is written off as dead and the round commits
// without it (partial aggregation). Stale requests — the round already
// advanced, or a deadline fired for a round that closed by threshold —
// are no-ops.
func (s *Server) commit(req commitReq) {
	round := int(s.round.Load())
	if s.closed.Load() {
		if req.reason == commitShutdown {
			s.stopDeadline()
		}
		return
	}
	if req.reason != commitShutdown && req.round != round {
		return
	}
	if s.acceptedRound.Load() == 0 {
		// Empty round: carry it forward (the global model must not drift
		// toward zero just because every client stalled), or close down
		// with nothing to fold.
		switch req.reason {
		case commitDeadline:
			s.armDeadline()
		case commitShutdown:
			s.stopDeadline()
			s.closed.Store(true)
		}
		return
	}

	// Fan-in barrier: a successful send on the unbuffered ctl channel
	// proves the shard goroutine is at its select loop — quiescent, its
	// aggregator safe to read — and parks it until release. A shard that
	// does not rendezvous within CommitTimeout is dead: killed, wedged,
	// or stuck mid-Add; the round must not stall on it.
	release := make(chan struct{})
	live := make([]bool, len(s.shards))
	partial := false
	for i, sh := range s.shards {
		if sh.dead.Load() {
			partial = true
			continue
		}
		t := time.NewTimer(s.commitTimeout)
		select {
		case sh.ctl <- parkReq{release: release}:
			live[i] = true
			t.Stop()
		case <-t.C:
			sh.dead.Store(true)
			partial = true
		}
	}

	s.mu.Lock()
	s.sharded.CommitLive(s.model.Flat(), live)
	s.mu.Unlock()

	for i, sh := range s.shards {
		if !live[i] {
			continue // a dead shard's state is left untouched: its goroutine may still hold it
		}
		sh.agg.Reset()
		clear(sh.seen)
		sh.pending.Store(0)
		sh.commits.Add(1)
	}
	if partial {
		s.stats.partialCommits.Add(1)
	}
	if req.reason == commitDeadline {
		s.stats.roundsForcedByDeadline.Add(1)
	}
	s.acceptedRound.Store(0)
	next := round + 1
	s.round.Store(int64(next))
	if req.reason == commitShutdown || (s.cfg.MaxRounds > 0 && next > s.cfg.MaxRounds) {
		s.closed.Store(true)
		s.stopDeadline()
	} else {
		s.armDeadline()
	}
	close(release)
}

// armDeadline (re)arms the round deadline for the current round. Owned
// by the coordinator (NewServer arms the first one before any commit
// request can exist).
func (s *Server) armDeadline() {
	s.stopDeadline()
	if s.cfg.RoundDeadline <= 0 || s.closed.Load() {
		return
	}
	round := int(s.round.Load())
	s.deadlineTimer = time.AfterFunc(s.cfg.RoundDeadline, func() {
		req := commitReq{reason: commitDeadline, round: round, done: make(chan struct{})}
		select {
		case s.commitCh <- req:
		case <-s.stopAll:
		}
	})
}

func (s *Server) stopDeadline() {
	if s.deadlineTimer != nil {
		s.deadlineTimer.Stop()
		s.deadlineTimer = nil
	}
}

// routeShard picks the shard for a client identity: its stable hash
// shard, or — when that shard is dead — the next live one, so a shard
// failure degrades routing instead of blackholing its clients. Deadness
// is sticky, which keeps the rerouted assignment (and with it per-round
// dedupe) stable. Returns nil when every shard is dead.
func (s *Server) routeShard(clientID string) *shard {
	n := len(s.shards)
	if n == 0 {
		// Also keeps ShardIndex's modulo off a zero divisor.
		return nil
	}
	i := fedcore.ShardIndex(clientID, n)
	if i < 0 || i >= n {
		// ShardIndex reduces modulo n, so this cannot fire — but clientID
		// is an attacker-chosen header, and an explicit range check keeps
		// the hash→index contract local instead of trusting it across the
		// package boundary (and keeps taintindex provable).
		return nil
	}
	for probe := 0; probe < n; probe++ {
		if sh := s.shards[(i+probe)%n]; !sh.dead.Load() {
			return sh
		}
	}
	return nil
}

// KillShard abandons shard i's goroutine without any cleanup — the chaos
// hook for fault-tolerance tests and the loadgen harness. The shard's
// queued and future uploads time out or get rerouted; the next commit
// barrier discovers the death (CommitTimeout) and degrades the round to
// partial aggregation. Idempotent.
func (s *Server) KillShard(i int) {
	sh := s.shards[i]
	sh.killOnce.Do(func() { close(sh.kill) })
}
