// Package flnet is the wire-level federated bundling service: an HTTP
// server hosting the global HD model and aggregating client updates, plus
// the matching client. The in-process simulator (package fl) answers the
// paper's experimental questions; this package is what an actual AIoT
// deployment would run — the updates crossing this API are exactly the
// flat prototype matrices whose size and robustness the paper analyzes.
//
// Protocol (all payloads little-endian binary, metadata as JSON):
//
//	GET  /v1/round            -> {"round":N,"updatesPending":k,"closed":bool}
//	GET  /v1/model            -> binary global model, X-FHDnn-Round header
//	GET  /v1/stats            -> cumulative counters (rounds, updates, bytes)
//	POST /v1/update?round=N   -> client update; 409 if N is stale,
//	                             422 if quarantined, 410 after close
//
// An update body is either the legacy hdc model serialization
// (Content-Type application/octet-stream) or a fedcore wire envelope
// (Content-Type application/x-fhdnn-envelope) framing any negotiated
// compress.Codec. The server advertises the codec names it accepts in the
// X-FHDnn-Codecs response header of /v1/round and /v1/model; clients pick
// one and fall back to the legacy format when the header is absent.
// Envelopes that fail validation — bad magic, truncated payload, checksum
// mismatch, codec errors — are quarantined with HTTP 422, the same path
// that refuses non-finite updates.
//
// A round closes when MinUpdates client models have arrived, or — when a
// RoundDeadline is configured — when the deadline expires with at least
// one update pending (partial aggregation; an empty round is carried
// forward). Clients may identify themselves with the X-FHDnn-Client
// header; a second update from the same client in one round is accepted
// idempotently but not aggregated twice, which makes client-side retries
// safe. Updates containing non-finite parameters (NaN/Inf, e.g. produced
// by bit errors on the uplink) or with an L2 norm above MaxUpdateNorm are
// quarantined with HTTP 422 before they can poison the global model.
// Aggregation itself defaults to fedcore.Bundle — the same
// federated-bundling rule the in-process simulator uses — but
// ServerConfig.Aggregator swaps in a Byzantine-robust policy
// (coordinate-wise median, trimmed mean, or norm-clipping; see
// fedcore.ParseAggregator) for deployments where a colluding minority of
// in-bound poisoners would sail straight through the quarantine gates.
// GET /v1/stats reports the active policy, a per-reason quarantine
// breakdown, and how many updates the policy clipped.
package flnet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"fhdnn/internal/fedcore"
	"fhdnn/internal/hdc"
)

// RoundHeader is the response header carrying the server's current round.
const RoundHeader = "X-FHDnn-Round"

// ClientHeader is the optional request header identifying the sending
// client; the server deduplicates updates per (client, round).
const ClientHeader = "X-FHDnn-Client"

// CodecsHeader is the response header on /v1/round and /v1/model
// advertising the comma-separated codec names the server accepts inside
// wire envelopes.
const CodecsHeader = "X-FHDnn-Codecs"

// EnvelopeContentType marks a POST /v1/update body framed as a fedcore
// wire envelope instead of the legacy hdc model serialization.
const EnvelopeContentType = "application/x-fhdnn-envelope"

// legacyCodecName keys legacy (unenveloped) updates in the per-codec
// stats.
const legacyCodecName = "legacy"

// advertisedCodecs returns the CodecsHeader value.
func advertisedCodecs() string {
	ids := fedcore.AllCodecIDs()
	names := make([]string, len(ids))
	for i, id := range ids {
		names[i] = fedcore.CodecName(id)
	}
	return strings.Join(names, ",")
}

// ServerConfig sizes the aggregation service.
type ServerConfig struct {
	NumClasses int
	Dim        int
	// MinUpdates closes a round once this many client updates arrived.
	MinUpdates int
	// MaxRounds stops accepting updates after this many rounds
	// (0 = unlimited).
	MaxRounds int
	// RoundDeadline forcibly closes a round this long after it opens,
	// aggregating whatever arrived even if fewer than MinUpdates. A
	// round with zero updates is carried forward for another deadline
	// instead of aggregating nothing. 0 disables deadlines (a round
	// then waits for MinUpdates indefinitely).
	RoundDeadline time.Duration
	// MaxUpdateNorm quarantines updates whose L2 norm exceeds it
	// (0 disables the norm gate; non-finite values are always
	// quarantined).
	MaxUpdateNorm float64
	// Aggregator, when set, replaces the default fedcore.Bundle commit
	// rule with another server policy — fedcore.Median, TrimmedMean, or
	// NormClip for Byzantine robustness (see fedcore.ParseAggregator for
	// the spec grammar). The aggregator runs under the server mutex, one
	// update at a time; the robust implementations are
	// permutation-invariant, so concurrent clients' arrival order does
	// not affect the committed global model.
	Aggregator fedcore.Aggregator
}

// Validate checks the configuration.
func (c ServerConfig) Validate() error {
	if c.NumClasses <= 0 || c.Dim <= 0 {
		return fmt.Errorf("flnet: invalid model dims %dx%d", c.NumClasses, c.Dim)
	}
	if c.MinUpdates <= 0 {
		return fmt.Errorf("flnet: MinUpdates must be positive")
	}
	if c.RoundDeadline < 0 {
		return fmt.Errorf("flnet: negative RoundDeadline")
	}
	if c.MaxUpdateNorm < 0 {
		return fmt.Errorf("flnet: negative MaxUpdateNorm")
	}
	return nil
}

// Server is the federated aggregation endpoint. It is safe for concurrent
// use; all state is guarded by one mutex (aggregation is cheap relative to
// network I/O).
type Server struct {
	cfg ServerConfig

	mu       sync.Mutex
	model    *hdc.Model
	round    int
	agg      fedcore.Aggregator // pending updates of the open round
	seen     map[string]bool    // client ids that contributed this round
	closed   bool
	shutdown bool
	deadline *time.Timer

	// cumulative counters for /v1/stats
	updatesAccepted        int64
	updatesRejected        int64
	updatesQuarantined     int64
	quarantinedByReason    map[string]int64
	duplicateUpdates       int64
	roundsForcedByDeadline int64
	bytesReceived          int64
	updatesByCodec         map[string]int64
}

// NewServer creates a server with a zero-initialized global model at
// round 1. If cfg.RoundDeadline is set, the round-1 deadline starts
// ticking immediately.
func NewServer(cfg ServerConfig) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	agg := cfg.Aggregator
	if agg == nil {
		agg = &fedcore.Bundle{}
	}
	s := &Server{
		cfg:                 cfg,
		model:               hdc.NewModel(cfg.NumClasses, cfg.Dim),
		round:               1,
		agg:                 agg,
		seen:                make(map[string]bool),
		quarantinedByReason: make(map[string]int64),
		updatesByCodec:      make(map[string]int64),
	}
	s.mu.Lock()
	s.resetDeadlineLocked()
	s.mu.Unlock()
	return s, nil
}

// Model returns a snapshot of the current global model and round.
func (s *Server) Model() (*hdc.Model, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.model.Clone(), s.round
}

// Round returns the current round number.
func (s *Server) Round() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.round
}

// Closed reports whether the server has finished MaxRounds (or was shut
// down).
func (s *Server) Closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Shutdown closes the current round cleanly: pending updates are
// aggregated into the global model, the deadline timer is stopped, and
// all further updates are refused with 410 Gone. It is idempotent and
// safe to call while handlers are in flight (they serialize on the same
// mutex). The context is consulted only for early cancellation.
func (s *Server) Shutdown(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.shutdown {
		return nil
	}
	s.shutdown = true
	s.stopDeadlineLocked()
	if s.agg.Len() > 0 {
		s.aggregateLocked()
	}
	s.closed = true
	return nil
}

// Handler returns the HTTP handler implementing the protocol.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/round", s.handleRound)
	mux.HandleFunc("GET /v1/model", s.handleModel)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("POST /v1/update", s.handleUpdate)
	return mux
}

// roundInfo is the JSON body of GET /v1/round.
type roundInfo struct {
	Round          int  `json:"round"`
	UpdatesPending int  `json:"updatesPending"`
	MinUpdates     int  `json:"minUpdates"`
	Closed         bool `json:"closed"`
}

func (s *Server) handleRound(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	info := roundInfo{
		Round:          s.round,
		UpdatesPending: s.agg.Len(),
		MinUpdates:     s.cfg.MinUpdates,
		Closed:         s.closed,
	}
	s.mu.Unlock()
	w.Header().Set(CodecsHeader, advertisedCodecs())
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(info); err != nil {
		// connection-level failure; nothing more to do
		return
	}
}

// Quarantine reason keys, as reported in Stats.QuarantinedByReason. Each
// names the gate that refused the update: a non-finite parameter, the
// L2 norm bound, a malformed wire envelope, or an envelope whose CRC32
// did not match its payload.
const (
	QuarantineNonFinite = "nonfinite"
	QuarantineNormBound = "normbound"
	QuarantineEnvelope  = "envelope"
	QuarantineChecksum  = "checksum"
)

// Stats is the JSON body of GET /v1/stats. BytesReceived counts the wire
// bytes actually consumed from update bodies — for enveloped updates that
// is the compressed size, so the endpoint directly reports the uplink
// savings a codec buys. UpdatesByCodec breaks accepted updates down by
// codec name ("legacy" for unenveloped posts). UpdatesQuarantined is the
// total across QuarantinedByReason; UpdatesClipped counts updates the
// aggregation policy rescaled (nonzero only under a fedcore.NormClip
// aggregator — a clipped update is still accepted, unlike a quarantined
// one).
type Stats struct {
	Round                  int              `json:"round"`
	Aggregator             string           `json:"aggregator"`
	UpdatesAccepted        int64            `json:"updatesAccepted"`
	UpdatesRejected        int64            `json:"updatesRejected"`
	UpdatesQuarantined     int64            `json:"updatesQuarantined"`
	QuarantinedByReason    map[string]int64 `json:"quarantinedByReason,omitempty"`
	UpdatesClipped         int64            `json:"updatesClipped"`
	DuplicateUpdates       int64            `json:"duplicateUpdates"`
	RoundsForcedByDeadline int64            `json:"roundsForcedByDeadline"`
	BytesReceived          int64            `json:"bytesReceived"`
	UpdatesByCodec         map[string]int64 `json:"updatesByCodec,omitempty"`
	Closed                 bool             `json:"closed"`
}

// Stats returns a snapshot of the cumulative counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	byCodec := make(map[string]int64, len(s.updatesByCodec))
	for k, v := range s.updatesByCodec {
		byCodec[k] = v
	}
	byReason := make(map[string]int64, len(s.quarantinedByReason))
	for k, v := range s.quarantinedByReason {
		byReason[k] = v
	}
	var clipped int64
	if c, ok := s.agg.(interface{ Clipped() int64 }); ok {
		clipped = c.Clipped()
	}
	return Stats{
		Round:                  s.round,
		Aggregator:             fedcore.AggregatorName(s.agg),
		UpdatesAccepted:        s.updatesAccepted,
		UpdatesRejected:        s.updatesRejected,
		UpdatesQuarantined:     s.updatesQuarantined,
		QuarantinedByReason:    byReason,
		UpdatesClipped:         clipped,
		DuplicateUpdates:       s.duplicateUpdates,
		RoundsForcedByDeadline: s.roundsForcedByDeadline,
		BytesReceived:          s.bytesReceived,
		UpdatesByCodec:         byCodec,
		Closed:                 s.closed,
	}
}

// quarantineLocked books one refused update under its reason key. Caller
// holds s.mu.
func (s *Server) quarantineLocked(reason string) {
	s.updatesQuarantined++
	s.quarantinedByReason[reason]++
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(st); err != nil {
		return
	}
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	model, round := s.Model()
	var buf bytes.Buffer
	if _, err := model.WriteTo(&buf); err != nil {
		http.Error(w, "flnet: serialize model: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(RoundHeader, strconv.Itoa(round))
	w.Header().Set(CodecsHeader, advertisedCodecs())
	_, _ = w.Write(buf.Bytes())
}

// countingReader counts the wire bytes actually consumed from the request
// body (serialization header + payload), so bytesReceived reflects real
// uplink traffic rather than a payload-only estimate.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	wantRound, err := strconv.Atoi(r.URL.Query().Get("round"))
	if err != nil {
		http.Error(w, "flnet: missing or bad round parameter", http.StatusBadRequest)
		return
	}
	clientID := r.Header.Get(ClientHeader)
	n := s.cfg.NumClasses * s.cfg.Dim
	// Limit covers the legacy serialization (12 + 4n) and the worst-case
	// envelope (top-k at Frac 1: header + 4 + 8n).
	body := &countingReader{r: http.MaxBytesReader(w, r.Body, int64(64+fedcore.EnvelopeOverhead+8*n))}

	// Decode outside the lock; neither path touches server state.
	var flat []float32
	codecName := legacyCodecName
	var envErr error
	if r.Header.Get("Content-Type") == EnvelopeContentType {
		data, rerr := io.ReadAll(body)
		if rerr != nil {
			envErr = fmt.Errorf("read body: %w", rerr)
		} else {
			var id fedcore.CodecID
			flat, id, envErr = fedcore.DecodeEnvelope(data, n)
			codecName = fedcore.CodecName(id)
		}
	} else {
		// The strict slice decoder also rejects trailing bytes after the
		// declared payload — a lossy transport must not smuggle garbage
		// past the parser.
		data, rerr := io.ReadAll(body)
		var update *hdc.Model
		merr := rerr
		if merr == nil {
			update, merr = hdc.DecodeModel(data)
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		s.bytesReceived += body.n
		if merr != nil {
			http.Error(w, "flnet: bad update payload: "+merr.Error(), http.StatusBadRequest)
			return
		}
		if update.K != s.cfg.NumClasses || update.D != s.cfg.Dim {
			http.Error(w, fmt.Sprintf("flnet: update dims %dx%d, want %dx%d",
				update.K, update.D, s.cfg.NumClasses, s.cfg.Dim), http.StatusBadRequest)
			return
		}
		s.acceptLocked(w, wantRound, clientID, codecName, update.Flat())
		return
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.bytesReceived += body.n
	if envErr != nil {
		// A mangled envelope — bad magic, truncated payload, checksum or
		// codec-level failure — is quarantine material just like a
		// non-finite update: refusing it protects the global model, and
		// the client knows not to retry the same bytes. Checksum
		// mismatches get their own stats key: a rising checksum count
		// points at line corruption, a rising envelope count at a broken
		// (or hostile) client implementation.
		reason := QuarantineEnvelope
		if errors.Is(envErr, fedcore.ErrEnvelopeChecksum) {
			reason = QuarantineChecksum
		}
		s.quarantineLocked(reason)
		http.Error(w, "flnet: update quarantined: bad envelope: "+envErr.Error(),
			http.StatusUnprocessableEntity)
		return
	}
	s.acceptLocked(w, wantRound, clientID, codecName, flat)
}

// acceptLocked runs the round/duplicate/quarantine gates on a decoded
// update and aggregates it. Caller holds s.mu.
func (s *Server) acceptLocked(w http.ResponseWriter, wantRound int, clientID, codecName string, flat []float32) {
	if s.closed {
		s.updatesRejected++
		http.Error(w, "flnet: training finished", http.StatusGone)
		return
	}
	if wantRound != s.round {
		s.updatesRejected++
		w.Header().Set(RoundHeader, strconv.Itoa(s.round))
		http.Error(w, fmt.Sprintf("flnet: stale round %d, current is %d", wantRound, s.round),
			http.StatusConflict)
		return
	}
	if clientID != "" && s.seen[clientID] {
		// The client already contributed this round; a retried upload
		// (first attempt's response was lost) must look like success, so
		// accept idempotently without aggregating twice.
		s.duplicateUpdates++
		w.WriteHeader(http.StatusAccepted)
		return
	}
	if reason, detail := quarantineReason(flat, s.cfg.MaxUpdateNorm); reason != "" {
		s.quarantineLocked(reason)
		http.Error(w, "flnet: update quarantined: "+detail, http.StatusUnprocessableEntity)
		return
	}
	s.updatesAccepted++
	s.updatesByCodec[codecName]++
	if clientID != "" {
		s.seen[clientID] = true
	}
	s.agg.Add(fedcore.Update{Params: flat, Round: s.round, ClientID: clientID, Samples: 1})
	if s.agg.Len() >= s.cfg.MinUpdates {
		s.aggregateLocked()
	}
	w.WriteHeader(http.StatusAccepted)
}

// quarantineReason decides whether an update is safe to aggregate. A
// single NaN or Inf parameter — readily produced by IEEE-754 exponent-bit
// flips on a BSC uplink (see internal/channel.BitErrorFloat32) — would
// propagate through the mean into every future global model, so such
// updates are refused outright, as are updates whose energy exploded past
// maxNorm (0 disables the norm gate). The returned reason is a stats key
// (QuarantineNonFinite, QuarantineNormBound; "" for a clean update); the
// detail names the offending index and value so a quarantined client's
// 422 body is actionable.
func quarantineReason(flat []float32, maxNorm float64) (reason, detail string) {
	var sum float64
	peakIdx, peakAbs := -1, 0.0
	for i, v := range flat {
		f := float64(v)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return QuarantineNonFinite, fmt.Sprintf("non-finite parameter %v at index %d", v, i)
		}
		sum += f * f
		if a := math.Abs(f); a > peakAbs {
			peakIdx, peakAbs = i, a
		}
	}
	if maxNorm > 0 {
		if norm := math.Sqrt(sum); norm > maxNorm {
			return QuarantineNormBound, fmt.Sprintf(
				"L2 norm %.4g exceeds limit %g (largest parameter %.4g at index %d)",
				norm, maxNorm, peakAbs, peakIdx)
		}
	}
	return "", ""
}

// aggregateLocked folds all pending updates into the global model via
// fedcore.Bundle (mean over clients, paper Eq. 1 + 1/N normalization) and
// advances the round. Caller holds s.mu.
func (s *Server) aggregateLocked() {
	if s.agg.Len() == 0 {
		return
	}
	s.agg.Commit(s.model.Flat())
	s.agg.Reset()
	clear(s.seen)
	s.round++
	if s.cfg.MaxRounds > 0 && s.round > s.cfg.MaxRounds {
		s.closed = true
	}
	s.resetDeadlineLocked()
}

// resetDeadlineLocked arms the deadline timer for the current round,
// replacing any previous timer. Caller holds s.mu.
func (s *Server) resetDeadlineLocked() {
	s.stopDeadlineLocked()
	if s.cfg.RoundDeadline <= 0 || s.closed || s.shutdown {
		return
	}
	round := s.round
	s.deadline = time.AfterFunc(s.cfg.RoundDeadline, func() { s.deadlineExpired(round) })
}

func (s *Server) stopDeadlineLocked() {
	if s.deadline != nil {
		s.deadline.Stop()
		s.deadline = nil
	}
}

// deadlineExpired force-closes the given round if it is still current:
// whatever updates arrived are aggregated even if below MinUpdates. A
// round with nothing pending is carried forward — the global model must
// not drift toward zero just because every client stalled.
func (s *Server) deadlineExpired(round int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.shutdown || s.round != round {
		return
	}
	if s.agg.Len() == 0 {
		s.resetDeadlineLocked()
		return
	}
	s.roundsForcedByDeadline++
	s.aggregateLocked()
}
