// Package flnet is the wire-level federated bundling service: an HTTP
// server hosting the global HD model and aggregating client updates, plus
// the matching client. The in-process simulator (package fl) answers the
// paper's experimental questions; this package is what an actual AIoT
// deployment would run — the updates crossing this API are exactly the
// flat prototype matrices whose size and robustness the paper analyzes.
//
// Protocol (all payloads little-endian binary via package hdc, metadata as
// JSON):
//
//	GET  /v1/round            -> {"round":N,"updatesPending":k,"closed":bool}
//	GET  /v1/model            -> binary global model, X-FHDnn-Round header
//	GET  /v1/stats            -> cumulative counters (rounds, updates, bytes)
//	POST /v1/update?round=N   -> binary client model; 409 if N is stale
//
// A round closes when MinUpdates client models have arrived; the server
// aggregates them (mean of sums, paper Eq. 1 up to scale) and advances.
package flnet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"fhdnn/internal/hdc"
)

// RoundHeader is the response header carrying the server's current round.
const RoundHeader = "X-FHDnn-Round"

// ServerConfig sizes the aggregation service.
type ServerConfig struct {
	NumClasses int
	Dim        int
	// MinUpdates closes a round once this many client updates arrived.
	MinUpdates int
	// MaxRounds stops accepting updates after this many rounds
	// (0 = unlimited).
	MaxRounds int
}

// Validate checks the configuration.
func (c ServerConfig) Validate() error {
	if c.NumClasses <= 0 || c.Dim <= 0 {
		return fmt.Errorf("flnet: invalid model dims %dx%d", c.NumClasses, c.Dim)
	}
	if c.MinUpdates <= 0 {
		return fmt.Errorf("flnet: MinUpdates must be positive")
	}
	return nil
}

// Server is the federated aggregation endpoint. It is safe for concurrent
// use; all state is guarded by one mutex (aggregation is cheap relative to
// network I/O).
type Server struct {
	cfg ServerConfig

	mu      sync.Mutex
	model   *hdc.Model
	round   int
	pending [][]float32
	closed  bool

	// cumulative counters for /v1/stats
	updatesAccepted int64
	updatesRejected int64
	bytesReceived   int64
}

// NewServer creates a server with a zero-initialized global model at
// round 1.
func NewServer(cfg ServerConfig) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Server{
		cfg:   cfg,
		model: hdc.NewModel(cfg.NumClasses, cfg.Dim),
		round: 1,
	}, nil
}

// Model returns a snapshot of the current global model and round.
func (s *Server) Model() (*hdc.Model, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.model.Clone(), s.round
}

// Round returns the current round number.
func (s *Server) Round() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.round
}

// Closed reports whether the server has finished MaxRounds.
func (s *Server) Closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Handler returns the HTTP handler implementing the protocol.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/round", s.handleRound)
	mux.HandleFunc("GET /v1/model", s.handleModel)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("POST /v1/update", s.handleUpdate)
	return mux
}

// roundInfo is the JSON body of GET /v1/round.
type roundInfo struct {
	Round          int  `json:"round"`
	UpdatesPending int  `json:"updatesPending"`
	MinUpdates     int  `json:"minUpdates"`
	Closed         bool `json:"closed"`
}

func (s *Server) handleRound(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	info := roundInfo{
		Round:          s.round,
		UpdatesPending: len(s.pending),
		MinUpdates:     s.cfg.MinUpdates,
		Closed:         s.closed,
	}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(info); err != nil {
		// connection-level failure; nothing more to do
		return
	}
}

// Stats is the JSON body of GET /v1/stats.
type Stats struct {
	Round           int   `json:"round"`
	UpdatesAccepted int64 `json:"updatesAccepted"`
	UpdatesRejected int64 `json:"updatesRejected"`
	BytesReceived   int64 `json:"bytesReceived"`
	Closed          bool  `json:"closed"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	st := Stats{
		Round:           s.round,
		UpdatesAccepted: s.updatesAccepted,
		UpdatesRejected: s.updatesRejected,
		BytesReceived:   s.bytesReceived,
		Closed:          s.closed,
	}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(st); err != nil {
		return
	}
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	model, round := s.Model()
	var buf bytes.Buffer
	if _, err := model.WriteTo(&buf); err != nil {
		http.Error(w, "flnet: serialize model: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(RoundHeader, strconv.Itoa(round))
	_, _ = w.Write(buf.Bytes())
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	wantRound, err := strconv.Atoi(r.URL.Query().Get("round"))
	if err != nil {
		http.Error(w, "flnet: missing or bad round parameter", http.StatusBadRequest)
		return
	}
	update, err := hdc.ReadModel(http.MaxBytesReader(w, r.Body, int64(16+4*s.cfg.NumClasses*s.cfg.Dim)))
	if err != nil {
		http.Error(w, "flnet: bad update payload: "+err.Error(), http.StatusBadRequest)
		return
	}
	if update.K != s.cfg.NumClasses || update.D != s.cfg.Dim {
		http.Error(w, fmt.Sprintf("flnet: update dims %dx%d, want %dx%d",
			update.K, update.D, s.cfg.NumClasses, s.cfg.Dim), http.StatusBadRequest)
		return
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		s.updatesRejected++
		http.Error(w, "flnet: training finished", http.StatusGone)
		return
	}
	if wantRound != s.round {
		s.updatesRejected++
		w.Header().Set(RoundHeader, strconv.Itoa(s.round))
		http.Error(w, fmt.Sprintf("flnet: stale round %d, current is %d", wantRound, s.round),
			http.StatusConflict)
		return
	}
	s.updatesAccepted++
	s.bytesReceived += int64(4 * len(update.Flat()))
	s.pending = append(s.pending, append([]float32(nil), update.Flat()...))
	if len(s.pending) >= s.cfg.MinUpdates {
		s.aggregateLocked()
	}
	w.WriteHeader(http.StatusAccepted)
}

// aggregateLocked folds all pending updates into the global model (mean)
// and advances the round. Caller holds s.mu.
func (s *Server) aggregateLocked() {
	n := len(s.pending)
	if n == 0 {
		return
	}
	flat := s.model.Flat()
	sum := make([]float64, len(flat))
	for _, upd := range s.pending {
		for i, v := range upd {
			sum[i] += float64(v)
		}
	}
	inv := 1 / float64(n)
	for i := range flat {
		flat[i] = float32(sum[i] * inv)
	}
	s.pending = s.pending[:0]
	s.round++
	if s.cfg.MaxRounds > 0 && s.round > s.cfg.MaxRounds {
		s.closed = true
	}
}
