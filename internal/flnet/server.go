// Package flnet is the wire-level federated bundling service: an HTTP
// server hosting the global HD model and aggregating client updates, plus
// the matching client. The in-process simulator (package fl) answers the
// paper's experimental questions; this package is what an actual AIoT
// deployment would run — the updates crossing this API are exactly the
// flat prototype matrices whose size and robustness the paper analyzes.
//
// Protocol (all payloads little-endian binary, metadata as JSON):
//
//	GET  /v1/round            -> {"round":N,"updatesPending":k,"closed":bool}
//	GET  /v1/model            -> binary global model, X-FHDnn-Round header
//	GET  /v1/stats            -> cumulative counters (rounds, updates, bytes)
//	POST /v1/update?round=N   -> client update; 409 if N is stale,
//	                             422 if quarantined, 429 + Retry-After if
//	                             the shard queue is full, 410 after close
//
// An update body is either the legacy hdc model serialization
// (Content-Type application/octet-stream) or a fedcore wire envelope
// (Content-Type application/x-fhdnn-envelope) framing any negotiated
// compress.Codec. The server advertises the codec names it accepts in the
// X-FHDnn-Codecs response header of /v1/round and /v1/model; clients pick
// one and fall back to the legacy format when the header is absent.
// Envelopes that fail validation — bad magic, truncated payload, checksum
// mismatch, codec errors — are quarantined with HTTP 422, the same path
// that refuses non-finite updates.
//
// Aggregation is hierarchical and streaming (see shard.go): uploads are
// hash-routed by client identity onto ServerConfig.Shards shard
// goroutines with bounded queues, each folding updates into its slice of
// a fedcore.ShardedAggregator as they arrive. A full shard queue answers
// 429 with a Retry-After hint — backpressure instead of unbounded
// buffering. A round closes when MinUpdates client models have arrived,
// or — when a RoundDeadline is configured — when the deadline expires
// with at least one update pending (partial aggregation; an empty round
// is carried forward). The commit is a fan-in barrier across the shards;
// a shard that misses the barrier is declared dead and the round commits
// without it rather than stalling the federation. Clients may identify
// themselves with the X-FHDnn-Client header; a second update from the
// same client in one round is accepted idempotently but not aggregated
// twice, which makes client-side retries safe. Updates containing
// non-finite parameters (NaN/Inf, e.g. produced by bit errors on the
// uplink) or with an L2 norm above MaxUpdateNorm are quarantined with
// HTTP 422 before they can poison the global model. The commit rule
// defaults to fedcore.Bundle — the same federated-bundling rule the
// in-process simulator uses — but ServerConfig.Aggregator swaps in a
// Byzantine-robust policy (coordinate-wise median, trimmed mean, or
// norm-clipping; see fedcore.ParseAggregator) for deployments where a
// colluding minority of in-bound poisoners would sail straight through
// the quarantine gates. GET /v1/stats reports the active policy, a
// per-reason quarantine breakdown, how many updates the policy clipped,
// and the per-shard queue/drop/commit/death breakdown.
package flnet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fhdnn/internal/fedcore"
	"fhdnn/internal/hdc"
	"fhdnn/internal/invariant"
)

// RoundHeader is the response header carrying the server's current round.
const RoundHeader = "X-FHDnn-Round"

// ClientHeader is the optional request header identifying the sending
// client; the server deduplicates updates per (client, round) and routes
// the client to its aggregation shard by hashing this identity.
const ClientHeader = "X-FHDnn-Client"

// CodecsHeader is the response header on /v1/round and /v1/model
// advertising the comma-separated codec names the server accepts inside
// wire envelopes.
const CodecsHeader = "X-FHDnn-Codecs"

// EnvelopeContentType marks a POST /v1/update body framed as a fedcore
// wire envelope instead of the legacy hdc model serialization.
const EnvelopeContentType = "application/x-fhdnn-envelope"

// legacyCodecName keys legacy (unenveloped) updates in the per-codec
// stats.
const legacyCodecName = "legacy"

// advertisedCodecs returns the CodecsHeader value.
func advertisedCodecs() string {
	ids := fedcore.AllCodecIDs()
	names := make([]string, len(ids))
	for i, id := range ids {
		names[i] = fedcore.CodecName(id)
	}
	return strings.Join(names, ",")
}

// ServerConfig sizes the aggregation service.
type ServerConfig struct {
	NumClasses int
	Dim        int
	// MinUpdates closes a round once this many client updates arrived.
	MinUpdates int
	// MaxRounds stops accepting updates after this many rounds
	// (0 = unlimited).
	MaxRounds int
	// RoundDeadline forcibly closes a round this long after it opens,
	// aggregating whatever arrived even if fewer than MinUpdates. A
	// round with zero updates is carried forward for another deadline
	// instead of aggregating nothing. 0 disables deadlines (a round
	// then waits for MinUpdates indefinitely).
	RoundDeadline time.Duration
	// MaxUpdateNorm quarantines updates whose L2 norm exceeds it
	// (0 disables the norm gate; non-finite values are always
	// quarantined).
	MaxUpdateNorm float64
	// Aggregator, when set, replaces the default fedcore.Bundle commit
	// rule with another server policy — fedcore.Median, TrimmedMean, or
	// NormClip for Byzantine robustness (see fedcore.ParseAggregator for
	// the spec grammar). The instance donates its canonical policy spec:
	// the server re-instantiates it once per shard, so it must round-trip
	// through ParseAggregator. To shard the tree, set Shards here rather
	// than passing a fedcore.ShardedAggregator.
	Aggregator fedcore.Aggregator
	// Shards splits aggregation across this many shard goroutines, each
	// owning one slice of a fedcore.ShardedAggregator (clients hash to a
	// shard by identity). 0 defaults to 1 — the flat single-aggregator
	// behavior, minus the global round mutex.
	Shards int
	// ShardQueue bounds each shard's ingest queue; a full queue answers
	// 429 with a Retry-After hint. 0 defaults to 256.
	ShardQueue int
	// CommitTimeout bounds how long the round commit waits for one shard
	// to reach the fan-in barrier before declaring it dead and degrading
	// to partial aggregation. Must comfortably exceed one aggregator Add.
	// 0 defaults to 2s.
	CommitTimeout time.Duration
	// UploadTimeout bounds how long an upload handler waits for its
	// shard's verdict; exceeding it answers 503 (the shard is wedged or
	// dead but not yet written off). 0 defaults to 30s.
	UploadTimeout time.Duration
	// RetryAfter is the Retry-After hint on 429 responses. 0 defaults
	// to 1s.
	RetryAfter time.Duration
}

// Validate checks the configuration.
func (c ServerConfig) Validate() error {
	if c.NumClasses <= 0 || c.Dim <= 0 {
		return fmt.Errorf("flnet: invalid model dims %dx%d", c.NumClasses, c.Dim)
	}
	if c.MinUpdates <= 0 {
		return fmt.Errorf("flnet: MinUpdates must be positive")
	}
	if c.RoundDeadline < 0 {
		return fmt.Errorf("flnet: negative RoundDeadline")
	}
	if c.MaxUpdateNorm < 0 {
		return fmt.Errorf("flnet: negative MaxUpdateNorm")
	}
	if c.Shards < 0 {
		return fmt.Errorf("flnet: negative Shards")
	}
	if c.ShardQueue < 0 {
		return fmt.Errorf("flnet: negative ShardQueue")
	}
	if c.CommitTimeout < 0 || c.UploadTimeout < 0 || c.RetryAfter < 0 {
		return fmt.Errorf("flnet: negative shard timeout")
	}
	return nil
}

// Server is the federated aggregation endpoint. It is safe for concurrent
// use: handlers are lock-free (atomics plus per-shard goroutine
// ownership); the only mutex fences the global model buffer between the
// round commit and snapshot reads.
type Server struct {
	cfg           ServerConfig
	aggName       string // canonical inner policy spec, for Stats
	commitTimeout time.Duration
	uploadTimeout time.Duration
	retryAfter    time.Duration

	mu    sync.Mutex // guards model only
	model *hdc.Model

	round         atomic.Int64
	closed        atomic.Bool
	acceptedRound atomic.Int64 // updates accepted into the open round

	sharded  *fedcore.ShardedAggregator
	shards   []*shard
	commitCh chan commitReq
	stopAll  chan struct{}
	stopOnce sync.Once

	deadlineTimer *time.Timer // owned by the coordinator after NewServer

	stats *serverStats
}

// NewServer creates a server with a zero-initialized global model at
// round 1 and starts its shard and commit-coordinator goroutines (call
// Shutdown to stop them). If cfg.RoundDeadline is set, the round-1
// deadline starts ticking immediately.
func NewServer(cfg ServerConfig) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	shardCount := cfg.Shards
	if shardCount == 0 {
		shardCount = 1
	}
	queueCap := cfg.ShardQueue
	if queueCap == 0 {
		queueCap = 256
	}
	spec := "bundle"
	if cfg.Aggregator != nil {
		spec = fedcore.AggregatorName(cfg.Aggregator)
	}
	if _, err := fedcore.ParseAggregator(spec); err != nil {
		return nil, fmt.Errorf("flnet: aggregator does not round-trip its spec %q: %w", spec, err)
	}
	sharded, err := fedcore.NewSharded(shardCount, func() fedcore.Aggregator {
		a, perr := fedcore.ParseAggregator(spec)
		if perr != nil {
			invariant.Failf("flnet: validated aggregator spec %q failed to reparse: %v", spec, perr)
		}
		return a
	})
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:           cfg,
		aggName:       spec,
		commitTimeout: defaultDur(cfg.CommitTimeout, 2*time.Second),
		uploadTimeout: defaultDur(cfg.UploadTimeout, 30*time.Second),
		retryAfter:    defaultDur(cfg.RetryAfter, time.Second),
		model:         hdc.NewModel(cfg.NumClasses, cfg.Dim),
		sharded:       sharded,
		shards:        make([]*shard, shardCount),
		commitCh:      make(chan commitReq, shardCount+4),
		stopAll:       make(chan struct{}),
		stats:         newServerStats(),
	}
	s.round.Store(1)
	for i := range s.shards {
		s.shards[i] = &shard{
			id:    i,
			queue: make(chan shardAdd, queueCap),
			ctl:   make(chan parkReq),
			kill:  make(chan struct{}),
			agg:   sharded.Shard(i),
			seen:  make(map[string]bool),
		}
	}
	// The first deadline is armed before the coordinator exists; every
	// rearm after this happens on the coordinator goroutine, which any
	// deadline firing reaches through commitCh.
	s.armDeadline()
	go s.coordinate()
	for _, sh := range s.shards {
		go s.runShard(sh)
	}
	return s, nil
}

func defaultDur(d, fallback time.Duration) time.Duration {
	if d <= 0 {
		return fallback
	}
	return d
}

// Model returns a snapshot of the current global model and round.
func (s *Server) Model() (*hdc.Model, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.model.Clone(), int(s.round.Load())
}

// Round returns the current round number.
func (s *Server) Round() int { return int(s.round.Load()) }

// Closed reports whether the server has finished MaxRounds (or was shut
// down).
func (s *Server) Closed() bool { return s.closed.Load() }

// Shutdown closes the current round cleanly: pending updates are
// aggregated into the global model, the deadline timer is stopped, all
// further updates are refused with 410 Gone, and the shard and
// coordinator goroutines exit. It is idempotent and safe to call while
// handlers are in flight. The context is consulted only for early
// cancellation.
func (s *Server) Shutdown(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.stopOnce.Do(func() {
		done := make(chan struct{})
		s.commitCh <- commitReq{reason: commitShutdown, done: done}
		<-done
		close(s.stopAll)
	})
	return nil
}

// Handler returns the HTTP handler implementing the protocol.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/round", s.handleRound)
	mux.HandleFunc("GET /v1/model", s.handleModel)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("POST /v1/update", s.handleUpdate)
	return mux
}

// roundInfo is the JSON body of GET /v1/round.
type roundInfo struct {
	Round          int  `json:"round"`
	UpdatesPending int  `json:"updatesPending"`
	MinUpdates     int  `json:"minUpdates"`
	Closed         bool `json:"closed"`
}

func (s *Server) handleRound(w http.ResponseWriter, r *http.Request) {
	var pending int64
	for _, sh := range s.shards {
		pending += sh.pending.Load()
	}
	info := roundInfo{
		Round:          int(s.round.Load()),
		UpdatesPending: int(pending),
		MinUpdates:     s.cfg.MinUpdates,
		Closed:         s.closed.Load(),
	}
	w.Header().Set(CodecsHeader, advertisedCodecs())
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(info); err != nil {
		// connection-level failure; nothing more to do
		return
	}
}

// Quarantine reason keys, as reported in Stats.QuarantinedByReason. Each
// names the gate that refused the update: a non-finite parameter, the
// L2 norm bound, a malformed wire envelope, or an envelope whose CRC32
// did not match its payload.
const (
	QuarantineNonFinite = "nonfinite"
	QuarantineNormBound = "normbound"
	QuarantineEnvelope  = "envelope"
	QuarantineChecksum  = "checksum"
)

// Stats returns a snapshot of the cumulative counters.
func (s *Server) Stats() Stats {
	byReason, byCodec := s.stats.snapshotMaps()
	per := make([]ShardStats, len(s.shards))
	dead := 0
	for i, sh := range s.shards {
		per[i] = ShardStats{
			Shard:      i,
			Depth:      sh.depth.Load(),
			Enqueued:   sh.enqueued.Load(),
			Accepted:   sh.accepted.Load(),
			Stale:      sh.stale.Load(),
			Duplicates: sh.duplicates.Load(),
			Dropped:    sh.dropped.Load(),
			Commits:    sh.commits.Load(),
			Pending:    sh.pending.Load(),
			Dead:       sh.dead.Load(),
		}
		if per[i].Dead {
			dead++
		}
	}
	return Stats{
		Round:                  int(s.round.Load()),
		Aggregator:             s.aggName,
		Shards:                 len(s.shards),
		UpdatesAccepted:        s.stats.updatesAccepted.Load(),
		UpdatesRejected:        s.stats.updatesRejected.Load(),
		UpdatesQuarantined:     s.stats.updatesQuarantined.Load(),
		QuarantinedByReason:    byReason,
		UpdatesClipped:         s.sharded.Clipped(),
		DuplicateUpdates:       s.stats.duplicateUpdates.Load(),
		UpdatesThrottled:       s.stats.updatesThrottled.Load(),
		ShardTimeouts:          s.stats.shardTimeouts.Load(),
		RoundsForcedByDeadline: s.stats.roundsForcedByDeadline.Load(),
		PartialCommits:         s.stats.partialCommits.Load(),
		DeadShards:             dead,
		BytesReceived:          s.stats.bytesReceived.Load(),
		UpdatesByCodec:         byCodec,
		PerShard:               per,
		Closed:                 s.closed.Load(),
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(st); err != nil {
		return
	}
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	model, round := s.Model()
	var buf bytes.Buffer
	if _, err := model.WriteTo(&buf); err != nil {
		http.Error(w, "flnet: serialize model: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(RoundHeader, strconv.Itoa(round))
	w.Header().Set(CodecsHeader, advertisedCodecs())
	_, _ = w.Write(buf.Bytes())
}

// countingReader counts the wire bytes actually consumed from the request
// body (serialization header + payload), so bytesReceived reflects real
// uplink traffic rather than a payload-only estimate.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	wantRound, err := strconv.Atoi(r.URL.Query().Get("round"))
	if err != nil {
		http.Error(w, "flnet: missing or bad round parameter", http.StatusBadRequest)
		return
	}
	clientID := r.Header.Get(ClientHeader)
	n := s.cfg.NumClasses * s.cfg.Dim
	// Limit covers the legacy serialization (12 + 4n) and the worst-case
	// envelope (top-k at Frac 1: header + 4 + 8n).
	body := &countingReader{r: http.MaxBytesReader(w, r.Body, int64(64+fedcore.EnvelopeOverhead+8*n))}

	// Decode with no lock held; neither path touches round state.
	var flat []float32
	codecName := legacyCodecName
	if r.Header.Get("Content-Type") == EnvelopeContentType {
		data, rerr := io.ReadAll(body)
		s.stats.bytesReceived.Add(body.n)
		var envErr error
		if rerr != nil {
			envErr = fmt.Errorf("read body: %w", rerr)
		} else {
			var id fedcore.CodecID
			flat, id, envErr = fedcore.DecodeEnvelope(data, n)
			codecName = fedcore.CodecName(id)
		}
		if envErr != nil {
			// A mangled envelope — bad magic, truncated payload, checksum
			// or codec-level failure — is quarantine material just like a
			// non-finite update: refusing it protects the global model, and
			// the client knows not to retry the same bytes. Checksum
			// mismatches get their own stats key: a rising checksum count
			// points at line corruption, a rising envelope count at a
			// broken (or hostile) client implementation.
			reason := QuarantineEnvelope
			if errors.Is(envErr, fedcore.ErrEnvelopeChecksum) {
				reason = QuarantineChecksum
			}
			s.stats.quarantine(reason)
			http.Error(w, "flnet: update quarantined: bad envelope: "+envErr.Error(),
				http.StatusUnprocessableEntity)
			return
		}
	} else {
		// The strict slice decoder also rejects trailing bytes after the
		// declared payload — a lossy transport must not smuggle garbage
		// past the parser.
		data, rerr := io.ReadAll(body)
		s.stats.bytesReceived.Add(body.n)
		var update *hdc.Model
		merr := rerr
		if merr == nil {
			update, merr = hdc.DecodeModel(data)
		}
		if merr != nil {
			http.Error(w, "flnet: bad update payload: "+merr.Error(), http.StatusBadRequest)
			return
		}
		if update.K != s.cfg.NumClasses || update.D != s.cfg.Dim {
			http.Error(w, fmt.Sprintf("flnet: update dims %dx%d, want %dx%d",
				update.K, update.D, s.cfg.NumClasses, s.cfg.Dim), http.StatusBadRequest)
			return
		}
		flat = update.Flat()
	}
	s.routeUpdate(w, wantRound, clientID, codecName, flat)
}

// routeUpdate runs the handler-side gates on a decoded update — closed,
// stale round, quarantine — then enqueues it on its shard and waits for
// the shard's verdict. A full shard queue is backpressure: 429 with a
// Retry-After hint, the client's cue to pace itself.
func (s *Server) routeUpdate(w http.ResponseWriter, wantRound int, clientID, codecName string, flat []float32) {
	if s.closed.Load() {
		s.stats.updatesRejected.Add(1)
		http.Error(w, "flnet: training finished", http.StatusGone)
		return
	}
	if round := int(s.round.Load()); wantRound != round {
		s.stats.updatesRejected.Add(1)
		s.staleResponse(w, wantRound, round)
		return
	}
	if reason, detail := quarantineReason(flat, s.cfg.MaxUpdateNorm); reason != "" {
		s.stats.quarantine(reason)
		http.Error(w, "flnet: update quarantined: "+detail, http.StatusUnprocessableEntity)
		return
	}
	sh := s.routeShard(clientID)
	if sh == nil {
		s.stats.shardTimeouts.Add(1)
		http.Error(w, "flnet: every aggregation shard is dead", http.StatusServiceUnavailable)
		return
	}
	msg := shardAdd{
		round:    wantRound,
		clientID: clientID,
		codec:    codecName,
		params:   flat,
		reply:    make(chan addReply, 1),
	}
	select {
	case sh.queue <- msg:
		sh.depth.Add(1)
		sh.enqueued.Add(1)
	default:
		sh.dropped.Add(1)
		s.stats.updatesThrottled.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.retryAfter)))
		http.Error(w, fmt.Sprintf("flnet: shard %d queue full, retry later", sh.id),
			http.StatusTooManyRequests)
		return
	}
	timer := time.NewTimer(s.uploadTimeout)
	defer timer.Stop()
	select {
	case rep := <-msg.reply:
		s.writeVerdict(w, wantRound, rep)
	case <-s.stopAll:
		// Server tore down under the in-flight update; prefer a verdict
		// that raced in over a blanket 410.
		select {
		case rep := <-msg.reply:
			s.writeVerdict(w, wantRound, rep)
		default:
			s.stats.updatesRejected.Add(1)
			http.Error(w, "flnet: training finished", http.StatusGone)
		}
	case <-timer.C:
		if s.closed.Load() {
			s.stats.updatesRejected.Add(1)
			http.Error(w, "flnet: training finished", http.StatusGone)
			return
		}
		s.stats.shardTimeouts.Add(1)
		http.Error(w, fmt.Sprintf("flnet: shard %d unresponsive", sh.id),
			http.StatusServiceUnavailable)
	}
}

func (s *Server) writeVerdict(w http.ResponseWriter, wantRound int, rep addReply) {
	switch rep.verdict {
	case vAccepted, vDuplicate:
		w.WriteHeader(http.StatusAccepted)
	case vStale:
		s.staleResponse(w, wantRound, rep.round)
	case vClosed:
		http.Error(w, "flnet: training finished", http.StatusGone)
	}
}

func (s *Server) staleResponse(w http.ResponseWriter, wantRound, current int) {
	w.Header().Set(RoundHeader, strconv.Itoa(current))
	http.Error(w, fmt.Sprintf("flnet: stale round %d, current is %d", wantRound, current),
		http.StatusConflict)
}

// retryAfterSeconds renders a duration as a whole-second Retry-After
// value, never below 1 (a zero would tell clients to hammer immediately).
func retryAfterSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// quarantineReason decides whether an update is safe to aggregate. A
// single NaN or Inf parameter — readily produced by IEEE-754 exponent-bit
// flips on a BSC uplink (see internal/channel.BitErrorFloat32) — would
// propagate through the mean into every future global model, so such
// updates are refused outright, as are updates whose energy exploded past
// maxNorm (0 disables the norm gate). The returned reason is a stats key
// (QuarantineNonFinite, QuarantineNormBound; "" for a clean update); the
// detail names the offending index and value so a quarantined client's
// 422 body is actionable.
func quarantineReason(flat []float32, maxNorm float64) (reason, detail string) {
	var sum float64
	peakIdx, peakAbs := -1, 0.0
	for i, v := range flat {
		f := float64(v)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return QuarantineNonFinite, fmt.Sprintf("non-finite parameter %v at index %d", v, i)
		}
		sum += f * f
		if a := math.Abs(f); a > peakAbs {
			peakIdx, peakAbs = i, a
		}
	}
	if maxNorm > 0 {
		if norm := math.Sqrt(sum); norm > maxNorm {
			return QuarantineNormBound, fmt.Sprintf(
				"L2 norm %.4g exceeds limit %g (largest parameter %.4g at index %d)",
				norm, maxNorm, peakAbs, peakIdx)
		}
	}
	return "", ""
}
