package dataset

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGenerateImagesShapesAndLabels(t *testing.T) {
	cfg := MNISTLike(8, 5, 3, 42)
	train, test := GenerateImages(cfg)
	if train.Len() != 50 || test.Len() != 30 {
		t.Fatalf("sizes %d / %d", train.Len(), test.Len())
	}
	if got := train.X.Shape(); got[1] != 1 || got[2] != 8 || got[3] != 8 {
		t.Fatalf("train shape %v", got)
	}
	counts := make([]int, 10)
	for _, l := range train.Labels {
		counts[l]++
	}
	for c, n := range counts {
		if n != 5 {
			t.Fatalf("class %d has %d train examples, want 5", c, n)
		}
	}
	if train.NumClasses != 10 {
		t.Fatalf("NumClasses = %d", train.NumClasses)
	}
}

func TestGenerateImagesDeterministic(t *testing.T) {
	a, _ := GenerateImages(MNISTLike(8, 2, 1, 7))
	b, _ := GenerateImages(MNISTLike(8, 2, 1, 7))
	if !a.X.Equal(b.X, 0) {
		t.Fatal("same seed must generate identical data")
	}
	c, _ := GenerateImages(MNISTLike(8, 2, 1, 8))
	if a.X.Equal(c.X, 1e-9) {
		t.Fatal("different seeds must differ")
	}
}

func TestCIFAR10LikeHasThreeChannels(t *testing.T) {
	train, _ := GenerateImages(CIFAR10Like(8, 1, 1, 1))
	if train.X.Dim(1) != 3 {
		t.Fatalf("channels = %d", train.X.Dim(1))
	}
}

func TestClassesAreSeparable(t *testing.T) {
	// Same-class samples must be closer (on average) than cross-class ones;
	// otherwise no learner could do anything with the data.
	train, _ := GenerateImages(MNISTLike(12, 10, 1, 3))
	sl := train.SampleLen()
	dist := func(i, j int) float64 {
		s := 0.0
		for k := 0; k < sl; k++ {
			d := float64(train.X.Data()[i*sl+k] - train.X.Data()[j*sl+k])
			s += d * d
		}
		return s
	}
	var intra, inter float64
	var nIntra, nInter int
	for i := 0; i < train.Len(); i += 3 {
		for j := i + 1; j < train.Len(); j += 7 {
			if train.Labels[i] == train.Labels[j] {
				intra += dist(i, j)
				nIntra++
			} else {
				inter += dist(i, j)
				nInter++
			}
		}
	}
	if nIntra == 0 || nInter == 0 {
		t.Skip("sampling produced no pairs")
	}
	if intra/float64(nIntra) >= inter/float64(nInter) {
		t.Fatalf("intra-class distance %.2f >= inter-class %.2f: classes not separable",
			intra/float64(nIntra), inter/float64(nInter))
	}
}

func TestGatherAndSubset(t *testing.T) {
	train, _ := GenerateImages(MNISTLike(8, 2, 1, 5))
	x, labels := train.Gather([]int{3, 0})
	if x.Dim(0) != 2 || labels[0] != train.Labels[3] || labels[1] != train.Labels[0] {
		t.Fatal("Gather mismatch")
	}
	sub := train.Subset([]int{1, 2, 3})
	if sub.Len() != 3 || sub.NumClasses != 10 {
		t.Fatal("Subset mismatch")
	}
}

func TestGatherOutOfRangePanics(t *testing.T) {
	train, _ := GenerateImages(MNISTLike(8, 1, 1, 5))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	train.Gather([]int{999})
}

func TestBatches(t *testing.T) {
	b := Batches(10, 4, nil)
	if len(b) != 3 || len(b[0]) != 4 || len(b[2]) != 2 {
		t.Fatalf("Batches = %v", b)
	}
	perm := []int{9, 8, 7, 6, 5, 4, 3, 2, 1, 0}
	b2 := Batches(10, 5, perm)
	if b2[0][0] != 9 || b2[1][4] != 0 {
		t.Fatalf("Batches with perm = %v", b2)
	}
}

func TestBatchesBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Batches(10, 0, nil)
}

func TestGenerateVectorsISOLETShape(t *testing.T) {
	d := GenerateVectors(ISOLETLike(4, 11))
	if d.Len() != 26*4 || d.X.Dim(1) != 617 || d.NumClasses != 26 {
		t.Fatalf("ISOLET-like shape: len=%d dims=%v classes=%d", d.Len(), d.X.Shape(), d.NumClasses)
	}
}

func TestPartitionIIDCoversAllOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := PartitionIID(103, 10, rng)
	seen := make([]bool, 103)
	for _, client := range p {
		for _, i := range client {
			if seen[i] {
				t.Fatalf("index %d assigned twice", i)
			}
			seen[i] = true
		}
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("index %d unassigned", i)
		}
	}
	for _, client := range p {
		if len(client) < 10 || len(client) > 11 {
			t.Fatalf("unbalanced client size %d", len(client))
		}
	}
}

func TestPartitionIIDTooFewExamplesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PartitionIID(3, 10, rand.New(rand.NewSource(1)))
}

func TestPartitionShardsIsLabelSkewed(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	labels := make([]int, 400)
	for i := range labels {
		labels[i] = i % 10
	}
	p := PartitionShards(labels, 20, 2, rng)
	if p.TotalExamples() != 400 {
		t.Fatalf("shards lost examples: %d", p.TotalExamples())
	}
	hist := LabelHistogram(p, labels, 10)
	// Each client got 2 shards of 10 sorted examples -> at most 4 distinct
	// labels (2 per shard boundary), typically 2.
	for c, h := range hist {
		distinct := 0
		for _, n := range h {
			if n > 0 {
				distinct++
			}
		}
		if distinct > 4 {
			t.Fatalf("client %d sees %d classes; shard partition should be skewed", c, distinct)
		}
	}
}

func TestPartitionDirichletSkewVsAlpha(t *testing.T) {
	labels := make([]int, 1000)
	for i := range labels {
		labels[i] = i % 10
	}
	skew := func(alpha float64) float64 {
		rng := rand.New(rand.NewSource(3))
		p := PartitionDirichlet(labels, 10, alpha, rng)
		hist := LabelHistogram(p, labels, 10)
		// measure mean per-client max-class share
		total := 0.0
		for _, h := range hist {
			sum, max := 0, 0
			for _, n := range h {
				sum += n
				if n > max {
					max = n
				}
			}
			if sum > 0 {
				total += float64(max) / float64(sum)
			}
		}
		return total / float64(len(hist))
	}
	lowAlpha, highAlpha := skew(0.1), skew(100)
	if lowAlpha <= highAlpha {
		t.Fatalf("alpha=0.1 skew %.3f should exceed alpha=100 skew %.3f", lowAlpha, highAlpha)
	}
	if highAlpha > 0.2 {
		t.Fatalf("alpha=100 should be near-IID (max share ~0.1), got %.3f", highAlpha)
	}
}

func TestPartitionDirichletCoversAllOnce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		labels := make([]int, 200)
		for i := range labels {
			labels[i] = rng.Intn(5)
		}
		p := PartitionDirichlet(labels, 8, 0.5, rng)
		seen := make([]bool, 200)
		count := 0
		for _, cl := range p {
			if len(cl) == 0 {
				return false // empty clients not allowed
			}
			for _, i := range cl {
				if seen[i] {
					return false
				}
				seen[i] = true
				count++
			}
		}
		return count == 200
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionDirichletBadAlphaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PartitionDirichlet([]int{0, 1}, 2, 0, rand.New(rand.NewSource(1)))
}

func TestGammaSampleMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, shape := range []float64{0.3, 1, 2.5} {
		n := 20000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += gammaSample(rng, shape)
		}
		mean := sum / float64(n)
		if math.Abs(mean-shape) > 0.1*shape+0.05 {
			t.Fatalf("Gamma(%v) sample mean %v, want ~%v", shape, mean, shape)
		}
	}
}

func TestSmoothFieldIsSmooth(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	size := 16
	f := smoothField(rng, 1, size)
	// neighboring pixels must correlate more than pixels far apart
	var near, far float64
	for y := 0; y < size; y++ {
		for x := 0; x+1 < size; x++ {
			near += math.Abs(float64(f[y*size+x] - f[y*size+x+1]))
		}
	}
	for y := 0; y < size; y++ {
		for x := 0; x < size; x++ {
			far += math.Abs(float64(f[y*size+x] - f[((y+8)%size)*size+(x+8)%size]))
		}
	}
	near /= float64(size * (size - 1))
	far /= float64(size * size)
	if near >= far {
		t.Fatalf("field not smooth: near diff %.3f >= far diff %.3f", near, far)
	}
}
