package dataset

import (
	"math"
	"math/rand"
	"testing"
)

func TestSplitStratifiedProportions(t *testing.T) {
	d, _ := GenerateImages(MNISTLike(8, 20, 1, 31))
	rng := rand.New(rand.NewSource(1))
	train, test := SplitStratified(d, 0.25, rng)
	if train.Len()+test.Len() != d.Len() {
		t.Fatalf("split lost examples: %d + %d != %d", train.Len(), test.Len(), d.Len())
	}
	counts := make([]int, 10)
	for _, l := range test.Labels {
		counts[l]++
	}
	for c, n := range counts {
		if n != 5 { // 25% of 20
			t.Fatalf("class %d has %d test examples, want 5", c, n)
		}
	}
}

func TestSplitStratifiedNoOverlap(t *testing.T) {
	d := GenerateVectors(VectorConfig{
		Name: "v", Classes: 3, Features: 2, PerClass: 8, ClassStd: 1, SampleStd: 0.1, Seed: 2})
	// tag each example uniquely so overlap is detectable after the copy
	for i := 0; i < d.Len(); i++ {
		d.X.Data()[i*2] = float32(i)
	}
	train, test := SplitStratified(d, 0.3, rand.New(rand.NewSource(3)))
	seen := map[float32]bool{}
	for i := 0; i < train.Len(); i++ {
		seen[train.X.At(i, 0)] = true
	}
	for i := 0; i < test.Len(); i++ {
		if seen[test.X.At(i, 0)] {
			t.Fatal("train and test overlap")
		}
	}
}

func TestSplitStratifiedValidation(t *testing.T) {
	d := GenerateVectors(VectorConfig{
		Name: "v", Classes: 2, Features: 2, PerClass: 4, ClassStd: 1, SampleStd: 0.1, Seed: 4})
	for _, frac := range []float64{0, 1, -0.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("frac %v should panic", frac)
				}
			}()
			SplitStratified(d, frac, rand.New(rand.NewSource(1)))
		}()
	}
}

func TestStandardizerMakesZeroMeanUnitStd(t *testing.T) {
	d := GenerateVectors(VectorConfig{
		Name: "v", Classes: 3, Features: 5, PerClass: 50, ClassStd: 3, SampleStd: 1, Seed: 5})
	s := FitStandardizer(d)
	s.Apply(d)
	sl := d.SampleLen()
	for j := 0; j < sl; j++ {
		var mean, sq float64
		for i := 0; i < d.Len(); i++ {
			v := float64(d.X.At(i, j))
			mean += v
			sq += v * v
		}
		mean /= float64(d.Len())
		std := math.Sqrt(sq/float64(d.Len()) - mean*mean)
		if math.Abs(mean) > 1e-4 || math.Abs(std-1) > 1e-3 {
			t.Fatalf("feature %d: mean %v std %v after standardizing", j, mean, std)
		}
	}
}

func TestStandardizerConstantFeature(t *testing.T) {
	d := GenerateVectors(VectorConfig{
		Name: "v", Classes: 2, Features: 2, PerClass: 10, ClassStd: 1, SampleStd: 0.5, Seed: 6})
	for i := 0; i < d.Len(); i++ {
		d.X.Set(7, i, 1) // constant second feature
	}
	s := FitStandardizer(d)
	s.Apply(d)
	for i := 0; i < d.Len(); i++ {
		if d.X.At(i, 1) != 0 {
			t.Fatalf("constant feature should center to 0, got %v", d.X.At(i, 1))
		}
	}
}

func TestStandardizerDimensionMismatch(t *testing.T) {
	a := GenerateVectors(VectorConfig{
		Name: "a", Classes: 2, Features: 3, PerClass: 4, ClassStd: 1, SampleStd: 1, Seed: 7})
	b := GenerateVectors(VectorConfig{
		Name: "b", Classes: 2, Features: 4, PerClass: 4, ClassStd: 1, SampleStd: 1, Seed: 8})
	s := FitStandardizer(a)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Apply(b)
}
