package dataset

import (
	"bytes"
	"math"
	"testing"
)

func TestIDXRoundTrip(t *testing.T) {
	train, _ := GenerateImages(MNISTLike(8, 2, 1, 11))
	// normalize into [0,1] for the uint8 export
	x := train.X.Clone()
	lo, hi := float32(math.Inf(1)), float32(math.Inf(-1))
	for _, v := range x.Data() {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	for i, v := range x.Data() {
		x.Data()[i] = (v - lo) / (hi - lo)
	}

	var imgBuf, labBuf bytes.Buffer
	if err := WriteIDXImages(&imgBuf, x); err != nil {
		t.Fatal(err)
	}
	if err := WriteIDXLabels(&labBuf, train.Labels); err != nil {
		t.Fatal(err)
	}
	got, err := LoadIDX(&imgBuf, &labBuf, "mnist", 10)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != train.Len() || got.X.Dim(2) != 8 {
		t.Fatalf("loaded %d examples, shape %v", got.Len(), got.X.Shape())
	}
	// uint8 quantization: within 1/255
	for i := range x.Data() {
		if math.Abs(float64(got.X.Data()[i]-x.Data()[i])) > 1.0/254 {
			t.Fatalf("pixel %d: %v vs %v", i, got.X.Data()[i], x.Data()[i])
		}
	}
	for i := range train.Labels {
		if got.Labels[i] != train.Labels[i] {
			t.Fatal("labels corrupted")
		}
	}
}

func TestIDXHeaderValidation(t *testing.T) {
	cases := map[string][]byte{
		"empty":      {},
		"bad magic":  {1, 2, 3, 4},
		"bad dtype":  {0, 0, 0x0D, 3},
		"wrong ndim": {0, 0, 0x08, 1},
	}
	for name, hdr := range cases {
		if _, err := ReadIDXImages(bytes.NewReader(hdr)); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
}

func TestIDXTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := writeIDXHeader(&buf, []int{2, 4, 4}); err != nil {
		t.Fatal(err)
	}
	buf.Write(make([]byte, 5)) // 32 expected
	if _, err := ReadIDXImages(&buf); err == nil {
		t.Fatal("expected error for truncated pixels")
	}
}

func TestIDXLabelsOutOfRange(t *testing.T) {
	var imgBuf, labBuf bytes.Buffer
	x, _ := GenerateImages(MNISTLike(8, 1, 1, 12))
	norm := x.X.Clone()
	for i := range norm.Data() {
		norm.Data()[i] = 0.5
	}
	if err := WriteIDXImages(&imgBuf, norm); err != nil {
		t.Fatal(err)
	}
	if err := WriteIDXLabels(&labBuf, x.Labels); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadIDX(&imgBuf, &labBuf, "m", 3); err == nil {
		t.Fatal("labels >= numClasses must be rejected")
	}
}

func TestIDXCountMismatch(t *testing.T) {
	var imgBuf, labBuf bytes.Buffer
	ds, _ := GenerateImages(MNISTLike(8, 1, 1, 13))
	norm := ds.X.Clone()
	for i := range norm.Data() {
		norm.Data()[i] = 0
	}
	if err := WriteIDXImages(&imgBuf, norm); err != nil {
		t.Fatal(err)
	}
	if err := WriteIDXLabels(&labBuf, ds.Labels[:3]); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadIDX(&imgBuf, &labBuf, "m", 10); err == nil {
		t.Fatal("count mismatch must be rejected")
	}
}

func TestWriteIDXValidation(t *testing.T) {
	var buf bytes.Buffer
	_, test := GenerateImages(CIFAR10Like(8, 1, 1, 14)) // 3 channels
	if err := WriteIDXImages(&buf, test.X); err == nil {
		t.Fatal("3-channel export must be rejected")
	}
	if err := WriteIDXLabels(&buf, []int{300}); err == nil {
		t.Fatal("label 300 must be rejected")
	}
}
