package dataset

import (
	"encoding/binary"
	"fmt"
	"io"

	"fhdnn/internal/tensor"
)

// IDX is the binary format the real MNIST/FashionMNIST distributions ship
// in (train-images-idx3-ubyte / train-labels-idx1-ubyte). This reader lets
// the library run on the genuine datasets when the user has the files; the
// synthetic generators remain the offline default.
//
// Format: big-endian magic 0x00 0x00 <dtype> <ndim>, then ndim int32
// dimension sizes, then the raw data. MNIST uses dtype 0x08 (uint8).

const idxTypeUint8 = 0x08

// ReadIDXImages parses an images file (ndim=3: count x rows x cols) into a
// 1-channel image tensor scaled to [0,1].
func ReadIDXImages(r io.Reader) (*tensor.Tensor, error) {
	dims, err := readIDXHeader(r, 3)
	if err != nil {
		return nil, err
	}
	n, rows, cols := dims[0], dims[1], dims[2]
	if n <= 0 || rows <= 0 || cols <= 0 || n*rows*cols > 1<<30 {
		return nil, fmt.Errorf("dataset: implausible IDX image dims %v", dims)
	}
	raw := make([]byte, n*rows*cols)
	if _, err := io.ReadFull(r, raw); err != nil {
		return nil, fmt.Errorf("dataset: read IDX pixels: %w", err)
	}
	out := tensor.New(n, 1, rows, cols)
	for i, b := range raw {
		out.Data()[i] = float32(b) / 255
	}
	return out, nil
}

// ReadIDXLabels parses a labels file (ndim=1).
func ReadIDXLabels(r io.Reader) ([]int, error) {
	dims, err := readIDXHeader(r, 1)
	if err != nil {
		return nil, err
	}
	n := dims[0]
	if n <= 0 || n > 1<<30 {
		return nil, fmt.Errorf("dataset: implausible IDX label count %d", n)
	}
	raw := make([]byte, n)
	if _, err := io.ReadFull(r, raw); err != nil {
		return nil, fmt.Errorf("dataset: read IDX labels: %w", err)
	}
	labels := make([]int, n)
	for i, b := range raw {
		labels[i] = int(b)
	}
	return labels, nil
}

// LoadIDX combines an images and a labels stream into a Dataset, verifying
// counts agree and labels are within range.
func LoadIDX(images, labels io.Reader, name string, numClasses int) (*Dataset, error) {
	x, err := ReadIDXImages(images)
	if err != nil {
		return nil, err
	}
	y, err := ReadIDXLabels(labels)
	if err != nil {
		return nil, err
	}
	if x.Dim(0) != len(y) {
		return nil, fmt.Errorf("dataset: %d images but %d labels", x.Dim(0), len(y))
	}
	for i, l := range y {
		if l < 0 || l >= numClasses {
			return nil, fmt.Errorf("dataset: label %d at index %d out of [0,%d)", l, i, numClasses)
		}
	}
	return &Dataset{Name: name, X: x, Labels: y, NumClasses: numClasses}, nil
}

// WriteIDXImages emits a 1-channel image tensor as an IDX stream (values
// clamped to [0,1] and scaled to uint8). For round-trip tests and for
// exporting synthetic data to other toolchains.
func WriteIDXImages(w io.Writer, x *tensor.Tensor) error {
	if x.NumDims() != 4 || x.Dim(1) != 1 {
		return fmt.Errorf("dataset: IDX export needs [n,1,h,w] images, got %v", x.Shape())
	}
	if err := writeIDXHeader(w, []int{x.Dim(0), x.Dim(2), x.Dim(3)}); err != nil {
		return err
	}
	raw := make([]byte, x.Len())
	for i, v := range x.Data() {
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		raw[i] = byte(v*255 + 0.5)
	}
	_, err := w.Write(raw)
	return err
}

// WriteIDXLabels emits labels as an IDX stream.
func WriteIDXLabels(w io.Writer, labels []int) error {
	if err := writeIDXHeader(w, []int{len(labels)}); err != nil {
		return err
	}
	raw := make([]byte, len(labels))
	for i, l := range labels {
		if l < 0 || l > 255 {
			return fmt.Errorf("dataset: label %d not representable in IDX uint8", l)
		}
		raw[i] = byte(l)
	}
	_, err := w.Write(raw)
	return err
}

func readIDXHeader(r io.Reader, wantDims int) ([]int, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("dataset: read IDX magic: %w", err)
	}
	if magic[0] != 0 || magic[1] != 0 {
		return nil, fmt.Errorf("dataset: bad IDX magic % x", magic)
	}
	if magic[2] != idxTypeUint8 {
		return nil, fmt.Errorf("dataset: unsupported IDX dtype %#x (only uint8)", magic[2])
	}
	if int(magic[3]) != wantDims {
		return nil, fmt.Errorf("dataset: IDX has %d dims, want %d", magic[3], wantDims)
	}
	dims := make([]int, wantDims)
	for i := range dims {
		var v uint32
		if err := binary.Read(r, binary.BigEndian, &v); err != nil {
			return nil, fmt.Errorf("dataset: read IDX dim %d: %w", i, err)
		}
		dims[i] = int(v)
	}
	return dims, nil
}

func writeIDXHeader(w io.Writer, dims []int) error {
	magic := []byte{0, 0, idxTypeUint8, byte(len(dims))}
	if _, err := w.Write(magic); err != nil {
		return fmt.Errorf("dataset: write IDX magic: %w", err)
	}
	for _, d := range dims {
		if err := binary.Write(w, binary.BigEndian, uint32(d)); err != nil {
			return fmt.Errorf("dataset: write IDX dim: %w", err)
		}
	}
	return nil
}
