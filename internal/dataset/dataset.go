// Package dataset provides the synthetic stand-ins for the paper's
// evaluation datasets (MNIST, FashionMNIST, CIFAR-10, ISOLET — none of
// which can be downloaded in this offline reproduction) and the federated
// partitioning schemes (IID, label-shard non-IID, Dirichlet non-IID).
//
// The image generators are class-conditional: each class has a smooth random
// prototype pattern, and samples are gain-scaled, shifted, noisy copies.
// This preserves what the experiments need from the real datasets — classes
// that a CNN can learn, that a frozen feature extractor maps to separable
// features, and that are hard enough that accuracy improves over federated
// rounds rather than saturating instantly.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"fhdnn/internal/tensor"
)

// Dataset is a labeled collection of fixed-shape examples. X is
// [n, C, H, W] for images or [n, F] for flat feature data.
type Dataset struct {
	Name       string
	X          *tensor.Tensor
	Labels     []int
	NumClasses int
}

// Len returns the number of examples.
func (d *Dataset) Len() int { return len(d.Labels) }

// SampleShape returns the per-example shape (without the leading batch dim).
func (d *Dataset) SampleShape() []int { return d.X.Shape()[1:] }

// SampleLen returns the flat length of one example.
func (d *Dataset) SampleLen() int { return d.X.Len() / d.Len() }

// Gather copies the examples at the given indices into a new batch tensor
// and label slice.
func (d *Dataset) Gather(idx []int) (*tensor.Tensor, []int) {
	sl := d.SampleLen()
	shape := append([]int{len(idx)}, d.SampleShape()...)
	out := tensor.New(shape...)
	labels := make([]int, len(idx))
	for bi, i := range idx {
		if i < 0 || i >= d.Len() {
			panic(fmt.Sprintf("dataset: index %d out of range [0,%d)", i, d.Len()))
		}
		copy(out.Data()[bi*sl:(bi+1)*sl], d.X.Data()[i*sl:(i+1)*sl])
		labels[bi] = d.Labels[i]
	}
	return out, labels
}

// Subset returns a view dataset containing only the given indices (data is
// copied).
func (d *Dataset) Subset(idx []int) *Dataset {
	x, labels := d.Gather(idx)
	return &Dataset{Name: d.Name, X: x, Labels: labels, NumClasses: d.NumClasses}
}

// Batches splits n indices into minibatches of size b (last batch may be
// short), in the order given by perm (pass nil for natural order).
func Batches(n, b int, perm []int) [][]int {
	if b <= 0 {
		panic("dataset: batch size must be positive")
	}
	if perm == nil {
		perm = make([]int, n)
		for i := range perm {
			perm[i] = i
		}
	}
	var out [][]int
	for i := 0; i < n; i += b {
		end := i + b
		if end > n {
			end = n
		}
		out = append(out, perm[i:end])
	}
	return out
}

// ImageConfig parameterizes a synthetic image dataset.
type ImageConfig struct {
	Name          string
	Classes       int
	Channels      int
	Size          int // height == width
	TrainPerClass int
	TestPerClass  int
	// Noise is the std of additive pixel noise; Shift the max translation
	// in pixels; GainStd the std of the per-sample multiplicative gain.
	Noise   float64
	Shift   int
	GainStd float64
	Seed    int64
}

// MNISTLike returns the configuration standing in for MNIST: 1-channel
// digits with modest variability.
func MNISTLike(size, trainPerClass, testPerClass int, seed int64) ImageConfig {
	return ImageConfig{
		Name: "mnist", Classes: 10, Channels: 1, Size: size,
		TrainPerClass: trainPerClass, TestPerClass: testPerClass,
		Noise: 0.35, Shift: size / 8, GainStd: 0.15, Seed: seed,
	}
}

// FashionMNISTLike stands in for FashionMNIST: 1-channel, harder than MNIST
// (more intra-class variability).
func FashionMNISTLike(size, trainPerClass, testPerClass int, seed int64) ImageConfig {
	return ImageConfig{
		Name: "fashion", Classes: 10, Channels: 1, Size: size,
		TrainPerClass: trainPerClass, TestPerClass: testPerClass,
		Noise: 0.55, Shift: size / 6, GainStd: 0.25, Seed: seed,
	}
}

// CIFAR10Like stands in for CIFAR-10: 3-channel natural-image-like data,
// the hardest of the three.
func CIFAR10Like(size, trainPerClass, testPerClass int, seed int64) ImageConfig {
	return ImageConfig{
		Name: "cifar10", Classes: 10, Channels: 3, Size: size,
		TrainPerClass: trainPerClass, TestPerClass: testPerClass,
		Noise: 0.65, Shift: size / 5, GainStd: 0.3, Seed: seed,
	}
}

// GenerateImages builds train and test datasets from cfg. Prototypes are
// smooth random fields (sums of random low-frequency sinusoids), so nearby
// pixels are correlated as in natural images.
func GenerateImages(cfg ImageConfig) (train, test *Dataset) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	protos := make([][]float32, cfg.Classes)
	planeLen := cfg.Channels * cfg.Size * cfg.Size
	for c := range protos {
		protos[c] = smoothField(rng, cfg.Channels, cfg.Size)
	}
	gen := func(perClass int, r *rand.Rand) *Dataset {
		n := cfg.Classes * perClass
		x := tensor.New(n, cfg.Channels, cfg.Size, cfg.Size)
		labels := make([]int, n)
		for c := 0; c < cfg.Classes; c++ {
			for s := 0; s < perClass; s++ {
				idx := c*perClass + s
				labels[idx] = c
				sample := renderSample(r, protos[c], cfg)
				copy(x.Data()[idx*planeLen:(idx+1)*planeLen], sample)
			}
		}
		return &Dataset{Name: cfg.Name, X: x, Labels: labels, NumClasses: cfg.Classes}
	}
	train = gen(cfg.TrainPerClass, rng)
	test = gen(cfg.TestPerClass, rng)
	return train, test
}

// smoothField generates a smooth multi-channel random pattern with unit
// variance, as a sum of random 2-D sinusoids of low spatial frequency.
func smoothField(rng *rand.Rand, channels, size int) []float32 {
	const waves = 6
	out := make([]float32, channels*size*size)
	for ch := 0; ch < channels; ch++ {
		type wave struct{ fx, fy, phase, amp float64 }
		ws := make([]wave, waves)
		for i := range ws {
			ws[i] = wave{
				fx:    (rng.Float64()*3 + 0.5) * 2 * math.Pi / float64(size),
				fy:    (rng.Float64()*3 + 0.5) * 2 * math.Pi / float64(size),
				phase: rng.Float64() * 2 * math.Pi,
				amp:   rng.NormFloat64(),
			}
		}
		var sumSq float64
		base := ch * size * size
		for y := 0; y < size; y++ {
			for x := 0; x < size; x++ {
				v := 0.0
				for _, w := range ws {
					v += w.amp * math.Sin(w.fx*float64(x)+w.fy*float64(y)+w.phase)
				}
				out[base+y*size+x] = float32(v)
				sumSq += v * v
			}
		}
		// normalize channel to unit variance
		std := math.Sqrt(sumSq / float64(size*size))
		if std == 0 {
			std = 1
		}
		inv := float32(1 / std)
		for i := base; i < base+size*size; i++ {
			out[i] *= inv
		}
	}
	return out
}

// renderSample draws one noisy, shifted, gain-scaled copy of a prototype.
func renderSample(rng *rand.Rand, proto []float32, cfg ImageConfig) []float32 {
	size := cfg.Size
	out := make([]float32, len(proto))
	dx, dy := 0, 0
	if cfg.Shift > 0 {
		dx = rng.Intn(2*cfg.Shift+1) - cfg.Shift
		dy = rng.Intn(2*cfg.Shift+1) - cfg.Shift
	}
	gain := float32(1 + rng.NormFloat64()*cfg.GainStd)
	for ch := 0; ch < cfg.Channels; ch++ {
		base := ch * size * size
		for y := 0; y < size; y++ {
			sy := (y + dy + size) % size
			for x := 0; x < size; x++ {
				sx := (x + dx + size) % size
				v := proto[base+sy*size+sx]*gain + float32(rng.NormFloat64()*cfg.Noise)
				out[base+y*size+x] = v
			}
		}
	}
	return out
}

// VectorConfig parameterizes a synthetic flat-feature dataset (the ISOLET
// stand-in used by the Fig. 5 partial-information experiment).
type VectorConfig struct {
	Name      string
	Classes   int
	Features  int
	PerClass  int
	ClassStd  float64 // spread of class means
	SampleStd float64 // within-class noise
	Seed      int64
}

// ISOLETLike mirrors the UCI ISOLET shape: 26 classes, 617 features.
func ISOLETLike(perClass int, seed int64) VectorConfig {
	return VectorConfig{
		Name: "isolet", Classes: 26, Features: 617, PerClass: perClass,
		ClassStd: 1.0, SampleStd: 0.6, Seed: seed,
	}
}

// GenerateVectors builds a Gaussian-cluster dataset from cfg.
func GenerateVectors(cfg VectorConfig) *Dataset {
	rng := rand.New(rand.NewSource(cfg.Seed))
	means := tensor.Randn(rng, cfg.ClassStd, cfg.Classes, cfg.Features)
	n := cfg.Classes * cfg.PerClass
	x := tensor.New(n, cfg.Features)
	labels := make([]int, n)
	for c := 0; c < cfg.Classes; c++ {
		for s := 0; s < cfg.PerClass; s++ {
			idx := c*cfg.PerClass + s
			labels[idx] = c
			for j := 0; j < cfg.Features; j++ {
				x.Data()[idx*cfg.Features+j] = means.At(c, j) + float32(rng.NormFloat64()*cfg.SampleStd)
			}
		}
	}
	return &Dataset{Name: cfg.Name, X: x, Labels: labels, NumClasses: cfg.Classes}
}
