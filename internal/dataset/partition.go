package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Partition assigns every example index to exactly one client.
type Partition [][]int

// NumClients returns the number of clients in the partition.
func (p Partition) NumClients() int { return len(p) }

// TotalExamples returns the number of indices across all clients.
func (p Partition) TotalExamples() int {
	n := 0
	for _, c := range p {
		n += len(c)
	}
	return n
}

// PartitionIID splits n example indices uniformly at random across
// numClients clients (sizes differ by at most one).
func PartitionIID(n, numClients int, rng *rand.Rand) Partition {
	if numClients <= 0 || n < numClients {
		panic(fmt.Sprintf("dataset: cannot split %d examples over %d clients", n, numClients))
	}
	perm := rng.Perm(n)
	out := make(Partition, numClients)
	for i, idx := range perm {
		c := i % numClients
		out[c] = append(out[c], idx)
	}
	return out
}

// PartitionShards implements the McMahan et al. pathological non-IID split:
// examples are sorted by label, divided into numClients*shardsPerClient
// contiguous shards, and each client receives shardsPerClient random shards.
// With shardsPerClient=2 most clients see only about two classes.
func PartitionShards(labels []int, numClients, shardsPerClient int, rng *rand.Rand) Partition {
	n := len(labels)
	numShards := numClients * shardsPerClient
	if numShards > n {
		panic(fmt.Sprintf("dataset: %d shards exceed %d examples", numShards, n))
	}
	bySort := make([]int, n)
	for i := range bySort {
		bySort[i] = i
	}
	sort.SliceStable(bySort, func(a, b int) bool { return labels[bySort[a]] < labels[bySort[b]] })

	shardSize := n / numShards
	shardOrder := rng.Perm(numShards)
	out := make(Partition, numClients)
	for c := 0; c < numClients; c++ {
		for s := 0; s < shardsPerClient; s++ {
			sh := shardOrder[c*shardsPerClient+s]
			lo := sh * shardSize
			hi := lo + shardSize
			if sh == numShards-1 {
				hi = n // last shard absorbs the remainder
			}
			out[c] = append(out[c], bySort[lo:hi]...)
		}
	}
	return out
}

// PartitionDirichlet draws, for every class, a client-allocation vector from
// Dirichlet(alpha) and distributes that class's examples accordingly. Small
// alpha (e.g. 0.1) gives highly skewed non-IID clients; large alpha
// approaches IID. Clients left empty are given one random example so every
// client can participate.
func PartitionDirichlet(labels []int, numClients int, alpha float64, rng *rand.Rand) Partition {
	if alpha <= 0 {
		panic("dataset: Dirichlet alpha must be positive")
	}
	byClass := map[int][]int{}
	for i, l := range labels {
		byClass[l] = append(byClass[l], i)
	}
	out := make(Partition, numClients)
	classes := make([]int, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Ints(classes)
	for _, c := range classes {
		idx := byClass[c]
		rng.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
		w := dirichlet(rng, alpha, numClients)
		// convert weights to cumulative counts
		start := 0
		cum := 0.0
		for cl := 0; cl < numClients; cl++ {
			cum += w[cl]
			end := int(cum*float64(len(idx)) + 0.5)
			if cl == numClients-1 {
				end = len(idx)
			}
			if end > len(idx) {
				end = len(idx)
			}
			if end > start {
				out[cl] = append(out[cl], idx[start:end]...)
			}
			start = end
		}
	}
	// guarantee non-empty clients
	for cl := range out {
		if len(out[cl]) == 0 {
			donor := rng.Intn(numClients)
			for len(out[donor]) < 2 {
				donor = (donor + 1) % numClients
			}
			last := len(out[donor]) - 1
			out[cl] = append(out[cl], out[donor][last])
			out[donor] = out[donor][:last]
		}
	}
	return out
}

// dirichlet samples a probability vector from a symmetric Dirichlet(alpha)
// via normalized Gamma(alpha, 1) draws.
func dirichlet(rng *rand.Rand, alpha float64, k int) []float64 {
	w := make([]float64, k)
	sum := 0.0
	for i := range w {
		w[i] = gammaSample(rng, alpha)
		sum += w[i]
	}
	if sum == 0 {
		for i := range w {
			w[i] = 1.0 / float64(k)
		}
		return w
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// gammaSample draws from Gamma(shape, 1) using Marsaglia-Tsang for
// shape >= 1 and the boost trick for shape < 1.
func gammaSample(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		// Gamma(a) = Gamma(a+1) * U^(1/a)
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return gammaSample(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / (3 * math.Sqrt(d))
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// LabelHistogram counts labels per client; useful for tests and diagnostics.
func LabelHistogram(p Partition, labels []int, numClasses int) [][]int {
	out := make([][]int, len(p))
	for c, idx := range p {
		h := make([]int, numClasses)
		for _, i := range idx {
			h[labels[i]]++
		}
		out[c] = h
	}
	return out
}
