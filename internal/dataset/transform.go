package dataset

import (
	"fmt"
	"math"
	"math/rand"
)

// SplitStratified partitions a dataset into train and test subsets with the
// given test fraction, preserving per-class proportions (each class
// contributes ~frac of its examples to the test split, at least one when it
// has two or more).
func SplitStratified(d *Dataset, testFrac float64, rng *rand.Rand) (train, test *Dataset) {
	if testFrac <= 0 || testFrac >= 1 {
		panic(fmt.Sprintf("dataset: test fraction %g must be in (0,1)", testFrac))
	}
	byClass := map[int][]int{}
	for i, l := range d.Labels {
		byClass[l] = append(byClass[l], i)
	}
	var trainIdx, testIdx []int
	// iterate classes in order for determinism
	for c := 0; c < d.NumClasses; c++ {
		idx := byClass[c]
		rng.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
		nTest := int(testFrac*float64(len(idx)) + 0.5)
		if nTest == 0 && len(idx) >= 2 {
			nTest = 1
		}
		if nTest >= len(idx) && len(idx) > 0 {
			nTest = len(idx) - 1
		}
		testIdx = append(testIdx, idx[:nTest]...)
		trainIdx = append(trainIdx, idx[nTest:]...)
	}
	return d.Subset(trainIdx), d.Subset(testIdx)
}

// Standardizer holds per-feature mean and standard deviation fitted on a
// training set, to be applied to any split — the usual leak-free
// normalization workflow.
type Standardizer struct {
	Mean, Std []float32
}

// FitStandardizer computes per-feature statistics over d.
func FitStandardizer(d *Dataset) *Standardizer {
	sl := d.SampleLen()
	n := d.Len()
	if n == 0 {
		panic("dataset: cannot fit a standardizer on an empty dataset")
	}
	mean := make([]float64, sl)
	for i := 0; i < n; i++ {
		for j, v := range d.X.Data()[i*sl : (i+1)*sl] {
			mean[j] += float64(v)
		}
	}
	for j := range mean {
		mean[j] /= float64(n)
	}
	variance := make([]float64, sl)
	for i := 0; i < n; i++ {
		for j, v := range d.X.Data()[i*sl : (i+1)*sl] {
			diff := float64(v) - mean[j]
			variance[j] += diff * diff
		}
	}
	s := &Standardizer{Mean: make([]float32, sl), Std: make([]float32, sl)}
	for j := range variance {
		std := math.Sqrt(variance[j] / float64(n))
		if std < 1e-8 {
			std = 1 // constant feature: leave it centered but unscaled
		}
		s.Mean[j] = float32(mean[j])
		s.Std[j] = float32(std)
	}
	return s
}

// Apply standardizes d in place: x := (x - mean) / std per feature.
func (s *Standardizer) Apply(d *Dataset) {
	sl := d.SampleLen()
	if sl != len(s.Mean) {
		panic(fmt.Sprintf("dataset: standardizer fitted on %d features, dataset has %d", len(s.Mean), sl))
	}
	for i := 0; i < d.Len(); i++ {
		row := d.X.Data()[i*sl : (i+1)*sl]
		for j := range row {
			row[j] = (row[j] - s.Mean[j]) / s.Std[j]
		}
	}
}
