package dataset

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTripImages(t *testing.T) {
	train, _ := GenerateImages(MNISTLike(8, 3, 1, 7))
	var buf bytes.Buffer
	if err := WriteCSV(&buf, train); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSVImages(&buf, "mnist", 10, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != train.Len() || got.NumClasses != 10 {
		t.Fatalf("round trip %d examples", got.Len())
	}
	if !got.X.Equal(train.X, 1e-6) {
		t.Fatal("pixel values corrupted in CSV round trip")
	}
	for i := range train.Labels {
		if got.Labels[i] != train.Labels[i] {
			t.Fatal("labels corrupted")
		}
	}
}

func TestCSVRoundTripVectors(t *testing.T) {
	d := GenerateVectors(VectorConfig{
		Name: "v", Classes: 3, Features: 5, PerClass: 4, ClassStd: 1, SampleStd: 0.3, Seed: 2})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSVVectors(&buf, "v", 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !got.X.Equal(d.X, 1e-6) {
		t.Fatal("vector values corrupted")
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"bad label":    "x,1,2\n",
		"neg label":    "-1,1,2\n",
		"big label":    "9,1,2\n",
		"bad value":    "0,1,zzz\n",
		"wrong column": "0,1\n",
	}
	for name, body := range cases {
		if _, err := ReadCSVVectors(strings.NewReader(body), "t", 3, 2); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
}

func TestReadCSVValid(t *testing.T) {
	body := "0,1.5,-2\n2,0.25,3\n"
	d, err := ReadCSVVectors(strings.NewReader(body), "t", 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 || d.Labels[1] != 2 || d.X.At(0, 1) != -2 {
		t.Fatalf("parsed %+v", d)
	}
}
