package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"fhdnn/internal/tensor"
)

// CSV import/export. The synthetic generators stand in for MNIST/CIFAR in
// this offline reproduction, but the library is meant to run on real data
// when the user has it. The format is one example per row: the label in
// the first column, then the flattened feature/pixel values — the layout
// of the common "mnist_train.csv" distributions.

// WriteCSV streams a dataset in label-first CSV form.
func WriteCSV(w io.Writer, d *Dataset) error {
	cw := csv.NewWriter(w)
	sl := d.SampleLen()
	row := make([]string, 1+sl)
	for i := 0; i < d.Len(); i++ {
		row[0] = strconv.Itoa(d.Labels[i])
		for j, v := range d.X.Data()[i*sl : (i+1)*sl] {
			row[1+j] = strconv.FormatFloat(float64(v), 'g', -1, 32)
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("dataset: write csv row %d: %w", i, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("dataset: flush csv: %w", err)
	}
	return nil
}

// ReadCSVImages parses label-first CSV rows into an image dataset of the
// given geometry. Every row must have exactly 1 + channels*size*size
// columns; labels must lie in [0, numClasses).
func ReadCSVImages(r io.Reader, name string, numClasses, channels, size int) (*Dataset, error) {
	x, labels, err := readCSV(r, numClasses, channels*size*size)
	if err != nil {
		return nil, err
	}
	n := len(labels)
	return &Dataset{
		Name:       name,
		X:          x.Reshape(n, channels, size, size),
		Labels:     labels,
		NumClasses: numClasses,
	}, nil
}

// ReadCSVVectors parses label-first CSV rows into a flat-feature dataset.
func ReadCSVVectors(r io.Reader, name string, numClasses, features int) (*Dataset, error) {
	x, labels, err := readCSV(r, numClasses, features)
	if err != nil {
		return nil, err
	}
	return &Dataset{Name: name, X: x, Labels: labels, NumClasses: numClasses}, nil
}

func readCSV(r io.Reader, numClasses, sampleLen int) (x *tensor.Tensor, labels []int, err error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 1 + sampleLen
	var data []float32
	for rowIdx := 0; ; rowIdx++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, fmt.Errorf("dataset: csv row %d: %w", rowIdx, err)
		}
		label, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, nil, fmt.Errorf("dataset: csv row %d: bad label %q", rowIdx, rec[0])
		}
		if label < 0 || label >= numClasses {
			return nil, nil, fmt.Errorf("dataset: csv row %d: label %d out of [0,%d)", rowIdx, label, numClasses)
		}
		labels = append(labels, label)
		for col, cell := range rec[1:] {
			v, err := strconv.ParseFloat(cell, 32)
			if err != nil {
				return nil, nil, fmt.Errorf("dataset: csv row %d col %d: %w", rowIdx, col+1, err)
			}
			data = append(data, float32(v))
		}
	}
	if len(labels) == 0 {
		return nil, nil, fmt.Errorf("dataset: csv contained no rows")
	}
	return tensor.FromSlice(data, len(labels), sampleLen), labels, nil
}
