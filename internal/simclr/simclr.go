// Package simclr implements SimCLR-style self-supervised contrastive
// pretraining (Chen et al., ICML 2020), which the FHDnn paper uses to obtain
// its frozen, class-agnostic CNN feature extractor. Two stochastic
// augmentations of each image are pushed through an encoder and a projection
// head, and the NT-Xent loss pulls the two views of the same image together
// while pushing apart views of different images. No labels are used.
package simclr

import (
	"fmt"
	"math/rand"

	"fhdnn/internal/dataset"
	"fhdnn/internal/nn"
	"fhdnn/internal/tensor"
)

// AugmentConfig controls the stochastic augmentation pipeline. The
// augmentations mirror SimCLR's crop / flip / color-jitter / blur family,
// adapted to this repository's synthetic images: random shift (crop
// equivalent), horizontal flip, per-channel gain jitter (color jitter
// equivalent), and additive Gaussian noise.
type AugmentConfig struct {
	MaxShift   int     // random translation in pixels
	FlipProb   float64 // horizontal mirror probability
	GainStd    float64 // per-channel multiplicative jitter std
	NoiseStd   float64 // additive pixel noise std
	CutoutFrac float64 // side of the erased square as a fraction of size (0 disables)
	CutoutProb float64 // probability of applying cutout
}

// DefaultAugment returns a medium-strength pipeline for sizexsize images.
func DefaultAugment(size int) AugmentConfig {
	return AugmentConfig{
		MaxShift:   size / 6,
		FlipProb:   0.5,
		GainStd:    0.2,
		NoiseStd:   0.2,
		CutoutFrac: 0.25,
		CutoutProb: 0.5,
	}
}

// Augment returns a randomly augmented copy of one CHW image.
func Augment(rng *rand.Rand, img []float32, channels, size int, cfg AugmentConfig) []float32 {
	out := make([]float32, len(img))
	dx, dy := 0, 0
	if cfg.MaxShift > 0 {
		dx = rng.Intn(2*cfg.MaxShift+1) - cfg.MaxShift
		dy = rng.Intn(2*cfg.MaxShift+1) - cfg.MaxShift
	}
	flip := rng.Float64() < cfg.FlipProb
	for ch := 0; ch < channels; ch++ {
		gain := float32(1 + rng.NormFloat64()*cfg.GainStd)
		base := ch * size * size
		for y := 0; y < size; y++ {
			sy := (y + dy + size) % size
			for x := 0; x < size; x++ {
				sx := (x + dx + size) % size
				if flip {
					sx = size - 1 - sx
				}
				v := img[base+sy*size+sx]*gain + float32(rng.NormFloat64()*cfg.NoiseStd)
				out[base+y*size+x] = v
			}
		}
	}
	if cfg.CutoutFrac > 0 && rng.Float64() < cfg.CutoutProb {
		side := int(cfg.CutoutFrac * float64(size))
		if side > 0 {
			cy, cx := rng.Intn(size), rng.Intn(size)
			for ch := 0; ch < channels; ch++ {
				base := ch * size * size
				for y := cy; y < cy+side && y < size; y++ {
					for x := cx; x < cx+side && x < size; x++ {
						out[base+y*size+x] = 0
					}
				}
			}
		}
	}
	return out
}

// Config parameterizes a pretraining run.
type Config struct {
	Epochs      int
	BatchSize   int // number of images per step (2x views are formed)
	LR          float64
	Momentum    float64
	Temperature float64
	ProjDim     int // projection head output dimension
	Augment     AugmentConfig
	Seed        int64
	// Schedule overrides the constant LR when set (SimCLR conventionally
	// uses warmup + cosine decay; see nn.WarmupLR / nn.CosineLR).
	Schedule nn.Schedule
}

// DefaultConfig returns small-scale defaults suitable for CPU pretraining.
func DefaultConfig(size int) Config {
	return Config{
		Epochs: 5, BatchSize: 16, LR: 0.05, Momentum: 0.9,
		Temperature: 0.5, ProjDim: 16, Augment: DefaultAugment(size), Seed: 1,
	}
}

// Result bundles the pretrained encoder with its statistics.
type Result struct {
	Encoder    *nn.Sequential // frozen feature extractor: NCHW -> [batch, dim]
	FeatureDim int
	Losses     []float64 // mean NT-Xent loss per epoch
}

// Pretrain trains encoder+projection head on unlabeled images from ds and
// returns the encoder. The projection head is discarded after training,
// exactly as in SimCLR.
func Pretrain(encoder *nn.Sequential, featureDim int, ds *dataset.Dataset, cfg Config) *Result {
	rng := rand.New(rand.NewSource(cfg.Seed))
	head := nn.NewSequential(
		nn.NewLinear(rng, featureDim, featureDim),
		&nn.ReLU{},
		nn.NewLinear(rng, featureDim, cfg.ProjDim),
	)
	params := append(encoder.Params(), head.Params()...)
	opt := nn.NewSGD(cfg.LR, cfg.Momentum, 1e-4)
	sched := cfg.Schedule
	if sched == nil {
		sched = nn.ConstantLR{Rate: cfg.LR}
	}
	step := 0

	channels := ds.X.Dim(1)
	size := ds.X.Dim(2)
	sampleLen := ds.SampleLen()
	losses := make([]float64, 0, cfg.Epochs)

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		perm := rng.Perm(ds.Len())
		var epochLoss float64
		steps := 0
		for _, b := range dataset.Batches(ds.Len(), cfg.BatchSize, perm) {
			if len(b) < 2 {
				continue // NT-Xent needs at least 2 images
			}
			// Build the 2n-view batch: rows [0,n) are view 1, [n,2n) view 2.
			n := len(b)
			views := tensor.New(2*n, channels, size, size)
			for i, idx := range b {
				img := ds.X.Data()[idx*sampleLen : (idx+1)*sampleLen]
				copy(views.Data()[i*sampleLen:(i+1)*sampleLen],
					Augment(rng, img, channels, size, cfg.Augment))
				copy(views.Data()[(n+i)*sampleLen:(n+i+1)*sampleLen],
					Augment(rng, img, channels, size, cfg.Augment))
			}
			nn.ZeroGrad(params)
			feats := encoder.Forward(views, true)
			proj := head.Forward(feats, true)
			loss, grad := nn.NTXent(proj, cfg.Temperature)
			encoder.Backward(head.Backward(grad))
			opt.StepWith(sched, step, params)
			step++
			epochLoss += loss
			steps++
		}
		if steps > 0 {
			losses = append(losses, epochLoss/float64(steps))
		}
	}
	return &Result{Encoder: encoder, FeatureDim: featureDim, Losses: losses}
}

// NewSmallEncoder builds a compact convolutional encoder — two conv-BN-ReLU
// stages, each followed by 2x2 average pooling, then a flatten of the
// remaining coarse spatial map — suitable for CPU-scale SimCLR pretraining.
// Keeping a (size/4 x size/4) spatial map instead of global pooling matters:
// on image data the class evidence lives in the spatial arrangement, which
// global pooling destroys. size must be a multiple of 4. Returns the network
// and its output feature dimension 2*width*(size/4)^2.
func NewSmallEncoder(rng *rand.Rand, channels, width, size int) (*nn.Sequential, int) {
	if size%4 != 0 {
		panic(fmt.Sprintf("simclr: image size %d must be a multiple of 4", size))
	}
	enc := nn.NewSequential(
		nn.NewConv2D(rng, channels, width, 3, 1, 1, false),
		nn.NewBatchNorm2D(width),
		&nn.ReLU{},
		nn.NewAvgPool2D(2),
		nn.NewConv2D(rng, width, 2*width, 3, 1, 1, false),
		nn.NewBatchNorm2D(2*width),
		&nn.ReLU{},
		nn.NewAvgPool2D(2),
		&nn.Flatten{},
	)
	s4 := size / 4
	return enc, 2 * width * s4 * s4
}
