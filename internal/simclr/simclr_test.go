package simclr

import (
	"math"
	"math/rand"
	"testing"

	"fhdnn/internal/dataset"
	"fhdnn/internal/hdc"
	"fhdnn/internal/tensor"
)

func TestAugmentPreservesShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	img := make([]float32, 3*8*8)
	for i := range img {
		img[i] = float32(i)
	}
	out := Augment(rng, img, 3, 8, DefaultAugment(8))
	if len(out) != len(img) {
		t.Fatalf("augmented length %d", len(out))
	}
}

func TestAugmentIdentityWhenDisabled(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	img := []float32{1, 2, 3, 4}
	cfg := AugmentConfig{} // everything off
	out := Augment(rng, img, 1, 2, cfg)
	for i := range img {
		if out[i] != img[i] {
			t.Fatalf("disabled augment changed pixel %d", i)
		}
	}
}

func TestAugmentIsStochastic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	img := make([]float32, 16*16)
	for i := range img {
		img[i] = float32(i % 7)
	}
	a := Augment(rng, img, 1, 16, DefaultAugment(16))
	b := Augment(rng, img, 1, 16, DefaultAugment(16))
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("two augmentations should differ")
	}
}

func TestAugmentCutoutZeroesRegion(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	img := make([]float32, 16*16)
	for i := range img {
		img[i] = 1
	}
	cfg := AugmentConfig{CutoutFrac: 0.5, CutoutProb: 1}
	out := Augment(rng, img, 1, 16, cfg)
	zeros := 0
	for _, v := range out {
		if v == 0 {
			zeros++
		}
	}
	if zeros == 0 {
		t.Fatal("cutout did not erase anything")
	}
}

func TestNewSmallEncoderShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	enc, dim := NewSmallEncoder(rng, 3, 4, 8)
	if dim != 32 { // 2*width*(size/4)^2 = 2*4*4
		t.Fatalf("feature dim %d", dim)
	}
	x := tensor.Randn(rng, 1, 2, 3, 8, 8)
	y := enc.Forward(x, false)
	if y.Dim(0) != 2 || y.Dim(1) != 32 {
		t.Fatalf("encoder output %v", y.Shape())
	}
}

func TestPretrainReducesContrastiveLoss(t *testing.T) {
	cfgData := dataset.ImageConfig{
		Name: "pre", Classes: 4, Channels: 1, Size: 8,
		TrainPerClass: 12, TestPerClass: 1,
		Noise: 0.3, Shift: 1, GainStd: 0.1, Seed: 6,
	}
	train, _ := dataset.GenerateImages(cfgData)
	rng := rand.New(rand.NewSource(7))
	enc, dim := NewSmallEncoder(rng, 1, 2, 8)
	cfg := DefaultConfig(8)
	cfg.Epochs = 6
	cfg.BatchSize = 12
	cfg.LR = 0.05
	res := Pretrain(enc, dim, train, cfg)
	if len(res.Losses) != 6 {
		t.Fatalf("got %d epoch losses", len(res.Losses))
	}
	first, last := res.Losses[0], res.Losses[len(res.Losses)-1]
	if last >= first {
		t.Fatalf("contrastive loss did not decrease: %v -> %v", first, last)
	}
}

// The end-to-end claim behind FHDnn: a self-supervised encoder (never shown
// labels) produces features on which an HD classifier beats chance easily.
func TestPretrainedFeaturesAreLinearlySeparable(t *testing.T) {
	cfgData := dataset.ImageConfig{
		Name: "sep", Classes: 3, Channels: 1, Size: 8,
		TrainPerClass: 20, TestPerClass: 8,
		Noise: 0.25, Shift: 1, GainStd: 0.1, Seed: 8,
	}
	train, test := dataset.GenerateImages(cfgData)
	rng := rand.New(rand.NewSource(9))
	enc, dim := NewSmallEncoder(rng, 1, 2, 8)
	cfg := DefaultConfig(8)
	cfg.Epochs = 8
	cfg.BatchSize = 15
	Pretrain(enc, dim, train, cfg)

	feats := enc.Forward(train.X, false)
	testFeats := enc.Forward(test.X, false)
	hdEnc := hdc.NewEncoder(rng, 2048, dim)
	m := hdc.NewModel(3, 2048)
	m.OneShotTrain(hdEnc.EncodeBatch(feats), train.Labels)
	for i := 0; i < 5; i++ {
		m.RefineEpoch(hdEnc.EncodeBatch(feats), train.Labels)
	}
	acc := m.Accuracy(hdEnc.EncodeBatch(testFeats), test.Labels)
	if acc < 0.5 { // chance is 1/3
		t.Fatalf("HD on self-supervised features: accuracy %v, want > 0.5", acc)
	}
}

func TestDefaultConfigSane(t *testing.T) {
	cfg := DefaultConfig(16)
	if cfg.Temperature <= 0 || cfg.BatchSize < 2 || cfg.Epochs < 1 {
		t.Fatalf("bad defaults: %+v", cfg)
	}
	if math.IsNaN(cfg.LR) || cfg.LR <= 0 {
		t.Fatal("bad LR")
	}
}
