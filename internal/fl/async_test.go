package fl

import (
	"testing"
)

// asyncSetup builds an AsyncHDTrainer over the same data as hdSetup.
func asyncSetup(t *testing.T, numClients int, seed int64, delays []float64) *AsyncHDTrainer {
	t.Helper()
	base := hdSetup(t, numClients, seed)
	return &AsyncHDTrainer{
		Encoded:     base.Encoded,
		Labels:      base.Labels,
		TestEnc:     base.TestEnc,
		TestLabels:  base.TestLabels,
		NumClasses:  base.NumClasses,
		Part:        base.Part,
		Delay:       delays,
		Horizon:     100,
		LocalEpochs: 2,
		EvalEvery:   10,
		Seed:        seed,
	}
}

func TestAsyncLearns(t *testing.T) {
	delays := []float64{10, 12, 15, 11, 13}
	tr := asyncSetup(t, 5, 50, delays)
	res := tr.Run()
	if res.Merges == 0 {
		t.Fatal("no merges happened")
	}
	if res.FinalAccuracy() < 0.8 {
		t.Fatalf("async accuracy %v too low", res.FinalAccuracy())
	}
	if len(res.Trace) == 0 || res.Trace[len(res.Trace)-1].Time > tr.Horizon {
		t.Fatal("trace bounds wrong")
	}
}

func TestAsyncDeterministic(t *testing.T) {
	delays := []float64{10, 12, 15, 11, 13}
	a := asyncSetup(t, 5, 51, delays).Run()
	b := asyncSetup(t, 5, 51, delays).Run()
	if a.Merges != b.Merges {
		t.Fatal("merge counts differ")
	}
	for i := range a.Trace {
		if a.Trace[i].Accuracy != b.Trace[i].Accuracy {
			t.Fatal("runs must be deterministic")
		}
	}
}

// The point of async: a straggler no longer gates everyone. With one
// client 20x slower, async reaches target accuracy long before the first
// synchronous full round could even close.
func TestAsyncOutrunsStraggler(t *testing.T) {
	delays := []float64{10, 10, 10, 10, 200} // client 4 is a deep straggler
	tr := asyncSetup(t, 5, 52, delays)
	tr.Horizon = 200
	tr.EvalEvery = 5
	res := tr.Run()
	tAt := res.TimeToAccuracy(0.75)
	if tAt < 0 {
		t.Fatalf("never reached 0.75 (final %v)", res.FinalAccuracy())
	}
	// synchronous: the first round with all 5 clients closes at t=200
	if tAt >= 200 {
		t.Fatalf("async reached target at t=%v, no better than synchronous", tAt)
	}
}

func TestAsyncStalenessDiscount(t *testing.T) {
	delays := []float64{10, 10, 10, 10, 97}
	plain := asyncSetup(t, 5, 53, delays)
	plain.StalenessAlpha = 0
	disc := asyncSetup(t, 5, 53, delays)
	disc.StalenessAlpha = 1
	a := plain.Run()
	b := disc.Run()
	// both must learn; the discounted run downweights the straggler's
	// very stale delta rather than rejecting it
	if a.FinalAccuracy() < 0.7 || b.FinalAccuracy() < 0.7 {
		t.Fatalf("accuracies %v / %v too low", a.FinalAccuracy(), b.FinalAccuracy())
	}
}

func TestAsyncValidation(t *testing.T) {
	tr := asyncSetup(t, 5, 54, []float64{1, 2, 3, 4, 5})
	tr.Delay = []float64{1}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic for delay mismatch")
			}
		}()
		tr.Run()
	}()
	tr2 := asyncSetup(t, 5, 55, []float64{1, 2, 3, 4, 5})
	tr2.Horizon = 0
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero horizon")
		}
	}()
	tr2.Run()
}

func TestAsyncTimeToAccuracyMiss(t *testing.T) {
	res := &AsyncResult{Trace: []AsyncPoint{{Time: 1, Accuracy: 0.2}}}
	if res.TimeToAccuracy(0.9) != -1 {
		t.Fatal("unreached target must return -1")
	}
	empty := &AsyncResult{}
	if empty.FinalAccuracy() != 0 {
		t.Fatal("empty trace accuracy must be 0")
	}
}
