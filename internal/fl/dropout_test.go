package fl

import "testing"

func TestDropoutValidation(t *testing.T) {
	c := Config{NumClients: 2, ClientFraction: 1, LocalEpochs: 1, BatchSize: 1, Rounds: 1, DropoutProb: -0.1}
	if err := c.Validate(); err == nil {
		t.Fatal("negative dropout accepted")
	}
	c.DropoutProb = 1
	if err := c.Validate(); err == nil {
		t.Fatal("dropout=1 accepted (no round could ever close)")
	}
}

func TestHDDropoutReducesParticipants(t *testing.T) {
	clean := hdSetup(t, 6, 95)
	lossy := hdSetup(t, 6, 95)
	lossy.Cfg.DropoutProb = 0.5
	lossy.Cfg.Rounds = 10
	clean.Cfg.Rounds = 10
	hClean, _ := clean.Run()
	hLossy, _ := lossy.Run()
	var pClean, pLossy int
	for i := range hClean.Rounds {
		pClean += hClean.Rounds[i].Participants
		pLossy += hLossy.Rounds[i].Participants
	}
	if pLossy >= pClean {
		t.Fatalf("dropout should reduce delivered updates: %d vs %d", pLossy, pClean)
	}
	// HD training survives losing half the updates
	if hLossy.FinalAccuracy() < hClean.FinalAccuracy()-0.15 {
		t.Fatalf("50%% dropout broke HD training: %v vs %v",
			hLossy.FinalAccuracy(), hClean.FinalAccuracy())
	}
}

func TestDropoutDeterministic(t *testing.T) {
	a := hdSetup(t, 5, 96)
	b := hdSetup(t, 5, 96)
	a.Cfg.DropoutProb = 0.3
	b.Cfg.DropoutProb = 0.3
	b.Cfg.Parallel = 4
	hA, _ := a.Run()
	hB, _ := b.Run()
	for i := range hA.Rounds {
		if hA.Rounds[i].Participants != hB.Rounds[i].Participants ||
			hA.Rounds[i].TestAccuracy != hB.Rounds[i].TestAccuracy {
			t.Fatal("dropout must be deterministic and worker-count independent")
		}
	}
}
