package fl

import (
	"container/heap"
	"fmt"

	"fhdnn/internal/dataset"
	"fhdnn/internal/fedcore"
	"fhdnn/internal/hdc"
	"fhdnn/internal/tensor"
)

// AsyncHDTrainer simulates asynchronous federated bundling: there are no
// rounds and no barrier — every client trains at its own pace and the
// server folds each update in the moment it arrives, discounted by its
// staleness (FedBuff/FedAsync style). Synchronous FedAvg pays the
// straggler tax measured by the fleet experiment; asynchronous aggregation
// is its standard antidote, and HD models suit it unusually well because
// aggregation is linear — a stale delta is still a valid bundle
// contribution.
//
// The simulation is event-driven over virtual time: client i finishes an
// iteration every Delay[i] seconds, uploads its *delta* against the global
// model it started from, and immediately starts the next iteration from
// the fresh global model.
type AsyncHDTrainer struct {
	Encoded    *tensor.Tensor // [nTrain, d]
	Labels     []int
	TestEnc    *tensor.Tensor
	TestLabels []int
	NumClasses int
	Part       dataset.Partition

	// Delay is each client's train+upload duration in virtual seconds.
	Delay []float64
	// Horizon is the simulated wall-clock budget.
	Horizon float64
	// LocalEpochs is the per-iteration refinement budget (paper E).
	LocalEpochs int
	// StalenessAlpha controls the discount w = 1/(1+staleness)^alpha,
	// where staleness counts server merges since the client fetched.
	// 0 disables discounting.
	StalenessAlpha float64
	// EvalEvery samples test accuracy every this many virtual seconds.
	EvalEvery float64
	Seed      int64
}

// AsyncPoint is one sample of the accuracy-versus-virtual-time trace.
type AsyncPoint struct {
	Time     float64
	Accuracy float64
	Merges   int
}

// AsyncResult is the outcome of an asynchronous run.
type AsyncResult struct {
	Trace  []AsyncPoint
	Merges int
	Model  *hdc.Model
}

// event is a client's pending upload.
type event struct {
	at     float64
	client int
	seq    int // tie-break for determinism
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Run executes the simulation.
func (t *AsyncHDTrainer) Run() *AsyncResult {
	n := len(t.Part)
	if n == 0 || len(t.Delay) != n {
		panic(fmt.Sprintf("fl: async needs one delay per client (%d clients, %d delays)", n, len(t.Delay)))
	}
	if t.Horizon <= 0 || t.LocalEpochs <= 0 {
		panic("fl: async needs a positive horizon and local epochs")
	}
	if t.EvalEvery <= 0 {
		t.EvalEvery = t.Horizon / 20
	}
	d := t.Encoded.Dim(1)
	global := hdc.NewModel(t.NumClasses, d)
	agg := &fedcore.AsyncStaleness{Alpha: t.StalenessAlpha}
	version := 0 // increments on every merge

	// per-client state: the version and snapshot it trained from
	baseVersion := make([]int, n)
	baseFlat := make([][]float32, n)
	bundled := make([]bool, n)

	h := &eventHeap{}
	heap.Init(h)
	for c := 0; c < n; c++ {
		if len(t.Part[c]) == 0 {
			continue
		}
		baseVersion[c] = version
		baseFlat[c] = append([]float32(nil), global.Flat()...)
		heap.Push(h, event{at: t.Delay[c], client: c, seq: c})
	}

	res := &AsyncResult{}
	nextEval := t.EvalEvery
	seq := n
	for h.Len() > 0 {
		ev := heap.Pop(h).(event)
		if ev.at > t.Horizon {
			break
		}
		for nextEval <= ev.at {
			res.Trace = append(res.Trace, AsyncPoint{
				Time:     nextEval,
				Accuracy: global.Accuracy(t.TestEnc, t.TestLabels),
				Merges:   res.Merges,
			})
			nextEval += t.EvalEvery
		}
		c := ev.client

		// client c trains from its snapshot
		local := hdc.NewModel(t.NumClasses, d)
		local.SetFlat(baseFlat[c])
		enc, labels := gatherShard(t.Encoded, t.Labels, t.Part[c])
		if !bundled[c] {
			local.OneShotTrain(enc, labels)
			bundled[c] = true
		}
		for e := 0; e < t.LocalEpochs; e++ {
			if wrong := local.RefineEpoch(enc, labels); wrong == 0 {
				break
			}
		}

		// merge the delta with staleness discount (fedcore.AsyncStaleness)
		gFlat := global.Flat()
		lFlat := local.Flat()
		delta := make([]float32, len(gFlat))
		for i := range delta {
			delta[i] = lFlat[i] - baseFlat[c][i]
		}
		agg.Add(fedcore.Update{Params: delta, Client: c, Staleness: version - baseVersion[c]})
		agg.Commit(gFlat)
		agg.Reset()
		version++
		res.Merges++

		// client immediately starts its next iteration from fresh state
		baseVersion[c] = version
		copy(baseFlat[c], gFlat)
		heap.Push(h, event{at: ev.at + t.Delay[c], client: c, seq: seq})
		seq++
	}
	for nextEval <= t.Horizon {
		res.Trace = append(res.Trace, AsyncPoint{
			Time:     nextEval,
			Accuracy: global.Accuracy(t.TestEnc, t.TestLabels),
			Merges:   res.Merges,
		})
		nextEval += t.EvalEvery
	}
	res.Model = global
	return res
}

// gatherShard copies one client's hypervectors.
func gatherShard(encoded *tensor.Tensor, labels []int, idx []int) (*tensor.Tensor, []int) {
	d := encoded.Dim(1)
	out := tensor.New(len(idx), d)
	y := make([]int, len(idx))
	for bi, i := range idx {
		copy(out.Data()[bi*d:(bi+1)*d], encoded.Data()[i*d:(i+1)*d])
		y[bi] = labels[i]
	}
	return out, y
}

// FinalAccuracy returns the last traced accuracy (0 with an empty trace).
func (r *AsyncResult) FinalAccuracy() float64 {
	if len(r.Trace) == 0 {
		return 0
	}
	return r.Trace[len(r.Trace)-1].Accuracy
}

// TimeToAccuracy returns the first traced virtual time at which accuracy
// reached target, or -1.
func (r *AsyncResult) TimeToAccuracy(target float64) float64 {
	for _, p := range r.Trace {
		if p.Accuracy >= target {
			return p.Time
		}
	}
	return -1
}
