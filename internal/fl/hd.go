package fl

import (
	"math/rand"
	"sort"

	"fhdnn/internal/dataset"
	"fhdnn/internal/fedcore"
	"fhdnn/internal/hdc"
	"fhdnn/internal/invariant"
	"fhdnn/internal/tensor"
)

// HDTrainer runs federated bundling (paper Sec. 3.4.2) over an HD model.
// Clients operate on pre-encoded hypervectors — in FHDnn the CNN feature
// extractor and HD encoder are frozen and shared, so encoding happens once
// up front, which is exactly the property that makes local training cheap.
//
// Aggregation is fedcore.Bundle: paper Eq. 1 (sum of client models)
// followed by a 1/N normalization. Cosine-similarity classification is
// scale-invariant, so the normalization changes no prediction; it only
// keeps prototype magnitudes bounded across hundreds of rounds.
//
// The round loop itself — sampling, parallel workers, dropout, uplink
// corruption, traffic accounting, evaluation pacing — is fedcore.Engine;
// this type only supplies the HD-specific local update and the partial
// transmission mask. Results are identical for any worker count.
type HDTrainer struct {
	Cfg        Config
	Encoded    *tensor.Tensor // [nTrain, d] encoded training hypervectors
	Labels     []int
	TestEnc    *tensor.Tensor // [nTest, d]
	TestLabels []int
	NumClasses int
	Part       dataset.Partition

	// BytesPerParam models the wire format of one prototype entry
	// (4 for int32/float32).
	BytesPerParam int
	// EvalEvery controls evaluation frequency (every round if <= 1).
	EvalEvery int
	// Adaptive selects similarity-weighted refinement
	// (hdc.Model.RefineEpochAdaptive) instead of the paper's fixed rule;
	// AdaptiveLR is its learning rate (default 1).
	Adaptive   bool
	AdaptiveLR float32
	// TransmitFrac in (0,1] enables coordinated partial updates: each
	// round the server draws a shared random subset containing this
	// fraction of the model's entries; clients upload only that subset
	// and the server leaves the remaining entries at their previous
	// global values. This cashes in the holographic-representation
	// property (paper Fig. 5) as a bandwidth knob. 0 or 1 disables it.
	TransmitFrac float64
	// Agg, when set, replaces the default fedcore.Bundle commit rule
	// with another aggregation policy — fedcore.Median, TrimmedMean, or
	// NormClip for Byzantine robustness. TransmitFrac masking is a
	// Bundle feature and cannot be combined with a custom Agg.
	Agg fedcore.Aggregator
	// TamperUpdate, when set, mutates a client's flat update in place
	// just before it leaves the client: the adversarial-client injection
	// hook (see internal/faults.Poisoner) the poisoning experiments use
	// to turn a chosen subset of clients Byzantine. global is the
	// read-only flat global vector the client trained from, the
	// reference a delta-level attack corrupts against.
	TamperUpdate func(round, id int, params, global []float32)
}

// Run executes federated bundling and returns the history and the final
// global model.
func (t *HDTrainer) Run() (*History, *hdc.Model) {
	if err := t.Cfg.Validate(); err != nil {
		panic(err)
	}
	if t.BytesPerParam == 0 {
		t.BytesPerParam = 4
	}
	d := t.Encoded.Dim(1)
	global := hdc.NewModel(t.NumClasses, d)
	bundled := make([]bool, t.Cfg.NumClients) // has the client one-shot trained yet?

	agg := t.Agg
	if agg == nil {
		agg = &fedcore.Bundle{}
	}
	hist := &History{}
	eng := &fedcore.Engine{
		Clients:       t.Cfg.NumClients,
		Fraction:      t.Cfg.ClientFraction,
		Rounds:        t.Cfg.Rounds,
		Seed:          t.Cfg.Seed,
		Parallel:      t.Cfg.Parallel,
		DropoutProb:   t.Cfg.DropoutProb,
		Uplink:        t.Cfg.Uplink,
		BytesPerParam: t.BytesPerParam,
		EvalEvery:     t.EvalEvery,
		SampleRNG:     clientRNG(t.Cfg.Seed, 0, -1),
		Agg:           agg,
		Global:        global.Flat(),
		// bundled[id] is only ever touched by the one worker handling
		// client id this round; ids within a round are distinct.
		Train: func(_, round, id int, _ *rand.Rand) (fedcore.Update, bool) {
			idx := t.Part[id]
			if len(idx) == 0 {
				return fedcore.Update{}, false
			}
			local := global.Clone()
			t.trainClient(local, id, idx, bundled)
			u := fedcore.Update{Params: local.Flat(), Samples: len(idx)}
			if t.TamperUpdate != nil {
				t.TamperUpdate(round, id, u.Params, global.Flat())
			}
			return u, true
		},
		Evaluate: func() float64 { return global.Accuracy(t.TestEnc, t.TestLabels) },
		OnRound: func(st fedcore.RoundStats) {
			hist.Append(RoundMetrics{
				Round:         st.Round,
				TestAccuracy:  st.TestAccuracy,
				Participants:  st.Participants,
				BytesUplinked: st.Bytes,
			})
		},
	}
	if t.TransmitFrac > 0 && t.TransmitFrac < 1 {
		b, ok := agg.(*fedcore.Bundle)
		if !ok {
			invariant.Fail("fl: TransmitFrac masking requires the default fedcore.Bundle aggregator")
		}
		// Clients still bundle full vectors locally, but only the shared
		// per-round subset travels and is refreshed in the global model.
		eng.BeginRound = func(round int) {
			b.Mask = sampleMask(clientRNG(t.Cfg.Seed, round, -2), t.NumClasses*d, t.TransmitFrac)
		}
		eng.WireCount = func(fedcore.Update) int { return len(b.Mask) }
	}
	eng.Run()
	return hist, global
}

// sampleMask draws a sorted subset of ceil(frac*n) distinct entry indices.
func sampleMask(rng *rand.Rand, n int, frac float64) []int {
	k := int(frac*float64(n) + 0.999999)
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	idx := rng.Perm(n)[:k]
	sort.Ints(idx)
	return idx
}

// trainClient performs the paper's local update (Sec. 3.4.1): one-shot
// bundling on the client's first participation, then E epochs of iterative
// refinement. Batch size B plays no role — HD training is per-example and
// order-insensitive in the bundling step, which is why the paper reports B
// has no influence on FHDnn.
func (t *HDTrainer) trainClient(local *hdc.Model, id int, idx []int, bundled []bool) {
	enc, labels := t.gather(idx)
	if !bundled[id] {
		local.OneShotTrain(enc, labels)
		bundled[id] = true
	}
	for e := 0; e < t.Cfg.LocalEpochs; e++ {
		var wrong int
		if t.Adaptive {
			lr := t.AdaptiveLR
			if lr == 0 {
				lr = 1
			}
			wrong = local.RefineEpochAdaptive(enc, labels, lr)
		} else {
			wrong = local.RefineEpoch(enc, labels)
		}
		if wrong == 0 {
			break
		}
	}
}

// gather builds the [len(idx), d] batch of this client's hypervectors.
func (t *HDTrainer) gather(idx []int) (*tensor.Tensor, []int) {
	d := t.Encoded.Dim(1)
	out := tensor.New(len(idx), d)
	labels := make([]int, len(idx))
	for bi, i := range idx {
		copy(out.Data()[bi*d:(bi+1)*d], t.Encoded.Data()[i*d:(i+1)*d])
		labels[bi] = t.Labels[i]
	}
	return out, labels
}
