package fl

import (
	"math/rand"
	"sort"
	"sync"

	"fhdnn/internal/dataset"
	"fhdnn/internal/hdc"
	"fhdnn/internal/tensor"
)

// HDTrainer runs federated bundling (paper Sec. 3.4.2) over an HD model.
// Clients operate on pre-encoded hypervectors — in FHDnn the CNN feature
// extractor and HD encoder are frozen and shared, so encoding happens once
// up front, which is exactly the property that makes local training cheap.
//
// Aggregation follows paper Eq. 1 (sum of client models) followed by a 1/N
// normalization. Cosine-similarity classification is scale-invariant, so
// the normalization changes no prediction; it only keeps prototype
// magnitudes bounded across hundreds of rounds.
//
// Clients are simulated by Cfg.Workers() goroutines; results are identical
// for any worker count.
type HDTrainer struct {
	Cfg        Config
	Encoded    *tensor.Tensor // [nTrain, d] encoded training hypervectors
	Labels     []int
	TestEnc    *tensor.Tensor // [nTest, d]
	TestLabels []int
	NumClasses int
	Part       dataset.Partition

	// BytesPerParam models the wire format of one prototype entry
	// (4 for int32/float32).
	BytesPerParam int
	// EvalEvery controls evaluation frequency (every round if <= 1).
	EvalEvery int
	// Adaptive selects similarity-weighted refinement
	// (hdc.Model.RefineEpochAdaptive) instead of the paper's fixed rule;
	// AdaptiveLR is its learning rate (default 1).
	Adaptive   bool
	AdaptiveLR float32
	// TransmitFrac in (0,1] enables coordinated partial updates: each
	// round the server draws a shared random subset containing this
	// fraction of the model's entries; clients upload only that subset
	// and the server leaves the remaining entries at their previous
	// global values. This cashes in the holographic-representation
	// property (paper Fig. 5) as a bandwidth knob. 0 or 1 disables it.
	TransmitFrac float64
}

// Run executes federated bundling and returns the history and the final
// global model.
func (t *HDTrainer) Run() (*History, *hdc.Model) {
	if err := t.Cfg.Validate(); err != nil {
		panic(err)
	}
	if t.BytesPerParam == 0 {
		t.BytesPerParam = 4
	}
	if t.EvalEvery < 1 {
		t.EvalEvery = 1
	}
	d := t.Encoded.Dim(1)
	sampleRNG := clientRNG(t.Cfg.Seed, 0, -1)
	global := hdc.NewModel(t.NumClasses, d)
	bundled := make([]bool, t.Cfg.NumClients) // has the client one-shot trained yet?

	partial := t.TransmitFrac > 0 && t.TransmitFrac < 1

	hist := &History{}
	for round := 1; round <= t.Cfg.Rounds; round++ {
		ids := SampleClients(sampleRNG, t.Cfg.NumClients, t.Cfg.ClientFraction)
		received := make([][]float32, len(ids))
		var mask []int // shared subset of entries transmitted this round
		if partial {
			mask = sampleMask(clientRNG(t.Cfg.Seed, round, -2), t.NumClasses*d, t.TransmitFrac)
		}

		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < t.Cfg.Workers(); w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for ji := range jobs {
					id := ids[ji]
					idx := t.Part[id]
					if len(idx) == 0 {
						continue
					}
					local := global.Clone()
					t.trainClient(local, id, idx, bundled)
					crng := clientRNG(t.Cfg.Seed, round, id)
					if t.Cfg.dropped(crng) {
						continue // update lost in transit
					}
					received[ji] = t.Cfg.Uplink.Transmit(local.Flat(), crng)
				}
			}()
		}
		for ji := range ids {
			jobs <- ji
		}
		close(jobs)
		wg.Wait()

		sum := make([]float64, t.NumClasses*d)
		var bytes int64
		participants := 0
		for _, r := range received {
			if r == nil {
				continue
			}
			for i, v := range r {
				sum[i] += float64(v)
			}
			n := len(r)
			if partial {
				n = len(mask)
			}
			bytes += updateWireBytes(t.Cfg.Uplink, n, t.BytesPerParam)
			participants++
		}
		if participants > 0 {
			inv := 1 / float64(participants)
			flat := global.Flat()
			if partial {
				// only the shared subset is refreshed; the rest keeps
				// its previous global value
				for _, i := range mask {
					flat[i] = float32(sum[i] * inv)
				}
			} else {
				for i := range flat {
					flat[i] = float32(sum[i] * inv)
				}
			}
		}
		m := RoundMetrics{Round: round, Participants: participants, BytesUplinked: bytes}
		if round%t.EvalEvery == 0 || round == t.Cfg.Rounds {
			m.TestAccuracy = global.Accuracy(t.TestEnc, t.TestLabels)
		} else if len(hist.Rounds) > 0 {
			m.TestAccuracy = hist.Rounds[len(hist.Rounds)-1].TestAccuracy
		}
		hist.Append(m)
	}
	return hist, global
}

// sampleMask draws a sorted subset of ceil(frac*n) distinct entry indices.
func sampleMask(rng *rand.Rand, n int, frac float64) []int {
	k := int(frac*float64(n) + 0.999999)
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	idx := rng.Perm(n)[:k]
	sort.Ints(idx)
	return idx
}

// trainClient performs the paper's local update (Sec. 3.4.1): one-shot
// bundling on the client's first participation, then E epochs of iterative
// refinement. Batch size B plays no role — HD training is per-example and
// order-insensitive in the bundling step, which is why the paper reports B
// has no influence on FHDnn. bundled[id] is only ever touched by the one
// goroutine working on client id in this round.
func (t *HDTrainer) trainClient(local *hdc.Model, id int, idx []int, bundled []bool) {
	enc, labels := t.gather(idx)
	if !bundled[id] {
		local.OneShotTrain(enc, labels)
		bundled[id] = true
	}
	for e := 0; e < t.Cfg.LocalEpochs; e++ {
		var wrong int
		if t.Adaptive {
			lr := t.AdaptiveLR
			if lr == 0 {
				lr = 1
			}
			wrong = local.RefineEpochAdaptive(enc, labels, lr)
		} else {
			wrong = local.RefineEpoch(enc, labels)
		}
		if wrong == 0 {
			break
		}
	}
}

// gather builds the [len(idx), d] batch of this client's hypervectors.
func (t *HDTrainer) gather(idx []int) (*tensor.Tensor, []int) {
	d := t.Encoded.Dim(1)
	out := tensor.New(len(idx), d)
	labels := make([]int, len(idx))
	for bi, i := range idx {
		copy(out.Data()[bi*d:(bi+1)*d], t.Encoded.Data()[i*d:(i+1)*d])
		labels[bi] = t.Labels[i]
	}
	return out, labels
}
