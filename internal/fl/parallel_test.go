package fl

import (
	"math/rand"
	"testing"

	"fhdnn/internal/channel"
	"fhdnn/internal/nn"
)

// Parallel simulation must be bit-identical to sequential: client
// randomness is keyed by (seed, round, id) and aggregation is ordered.
func TestHDParallelMatchesSequential(t *testing.T) {
	seq := hdSetup(t, 6, 77)
	par := hdSetup(t, 6, 77)
	par.Cfg.Parallel = 4
	par.Cfg.Uplink = channel.AWGN{SNRdB: 15}
	seq.Cfg.Uplink = channel.AWGN{SNRdB: 15}
	hSeq, mSeq := seq.Run()
	hPar, mPar := par.Run()
	if !mSeq.Prototypes.Equal(mPar.Prototypes, 0) {
		t.Fatal("parallel HD training must produce identical models")
	}
	a, b := hSeq.Accuracies(), hPar.Accuracies()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("round %d: %v vs %v", i+1, a[i], b[i])
		}
	}
}

func TestCNNParallelMatchesSequential(t *testing.T) {
	train, test, part := smallCNNSetup(t, 4)
	build := func(rng *rand.Rand) Network {
		return nn.NewMNISTCNN(rng, nn.MNISTCNNConfig{
			InChannels: 1, ImgSize: 8, NumClasses: 3, C1: 2, C2: 4, Hidden: 8})
	}
	run := func(workers int) []float32 {
		tr := &CNNTrainer{
			Cfg: Config{NumClients: 4, ClientFraction: 0.75, LocalEpochs: 1, BatchSize: 10,
				Rounds: 3, Seed: 9, Parallel: workers,
				Uplink: channel.PacketLoss{Rate: 0.1, PacketBytes: 64}},
			Build: build, Train: train, Test: test, Part: part, LR: 0.05, Momentum: 0.9,
		}
		_, net := tr.Run()
		return nn.FlattenParams(net.Params())
	}
	a, b := run(1), run(3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("weight %d differs between sequential and parallel runs", i)
		}
	}
}

func TestWorkersDefault(t *testing.T) {
	c := Config{}
	if c.Workers() != 1 {
		t.Fatalf("Workers() = %d, want 1", c.Workers())
	}
	c.Parallel = 8
	if c.Workers() != 8 {
		t.Fatalf("Workers() = %d, want 8", c.Workers())
	}
}

func TestClientRNGIndependence(t *testing.T) {
	a := clientRNG(1, 2, 3)
	b := clientRNG(1, 2, 3)
	if a.Int63() != b.Int63() {
		t.Fatal("same key must give same stream")
	}
	// different round or id must diverge immediately with high probability
	c := clientRNG(1, 3, 3)
	d := clientRNG(1, 2, 4)
	base := clientRNG(1, 2, 3).Int63()
	if c.Int63() == base && d.Int63() == base {
		t.Fatal("client streams should differ across rounds and ids")
	}
}
