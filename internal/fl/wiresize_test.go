package fl

import (
	"testing"

	"fhdnn/internal/channel"
)

// fakeSized is an uplink with a custom wire size.
type fakeSized struct {
	channel.Perfect
	perValue int
}

func (f fakeSized) WireBytes(n int) int { return n * f.perValue }

func TestUpdateWireBytes(t *testing.T) {
	if got := updateWireBytes(channel.Perfect{}, 100, 4); got != 400 {
		t.Fatalf("default accounting = %d, want 400", got)
	}
	if got := updateWireBytes(fakeSized{perValue: 2}, 100, 4); got != 200 {
		t.Fatalf("WireSizer accounting = %d, want 200", got)
	}
}

func TestTrainerUsesWireSizer(t *testing.T) {
	tr := hdSetup(t, 4, 90)
	tr.Cfg.Uplink = fakeSized{perValue: 1} // 1 byte per prototype entry
	hist, model := tr.Run()
	perClient := int64(model.NumParams())
	for _, r := range hist.Rounds {
		if r.BytesUplinked != perClient*int64(r.Participants) {
			t.Fatalf("round %d bytes %d, want %d per client", r.Round, r.BytesUplinked, perClient)
		}
	}
}

func TestHDAdaptiveOptionRuns(t *testing.T) {
	tr := hdSetup(t, 4, 91)
	tr.Adaptive = true
	tr.AdaptiveLR = 0.8
	hist, _ := tr.Run()
	if hist.FinalAccuracy() < 0.7 {
		t.Fatalf("adaptive federated accuracy %v too low", hist.FinalAccuracy())
	}
}
