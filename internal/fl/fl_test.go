package fl

import (
	"math"
	"math/rand"
	"testing"

	"fhdnn/internal/channel"
	"fhdnn/internal/dataset"
	"fhdnn/internal/hdc"
	"fhdnn/internal/nn"
	"fhdnn/internal/tensor"
)

func TestConfigValidate(t *testing.T) {
	good := Config{NumClients: 10, ClientFraction: 0.2, LocalEpochs: 1, BatchSize: 8, Rounds: 5}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if good.Uplink == nil {
		t.Fatal("Validate must default the uplink")
	}
	bad := []Config{
		{NumClients: 0, ClientFraction: 0.2, LocalEpochs: 1, BatchSize: 8, Rounds: 5},
		{NumClients: 10, ClientFraction: 0, LocalEpochs: 1, BatchSize: 8, Rounds: 5},
		{NumClients: 10, ClientFraction: 1.5, LocalEpochs: 1, BatchSize: 8, Rounds: 5},
		{NumClients: 10, ClientFraction: 0.2, LocalEpochs: 0, BatchSize: 8, Rounds: 5},
		{NumClients: 10, ClientFraction: 0.2, LocalEpochs: 1, BatchSize: 0, Rounds: 5},
		{NumClients: 10, ClientFraction: 0.2, LocalEpochs: 1, BatchSize: 8, Rounds: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestSampleClients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ids := SampleClients(rng, 100, 0.2)
	if len(ids) != 20 {
		t.Fatalf("sampled %d clients, want 20", len(ids))
	}
	seen := map[int]bool{}
	for _, id := range ids {
		if id < 0 || id >= 100 || seen[id] {
			t.Fatalf("bad client id %d", id)
		}
		seen[id] = true
	}
	if got := SampleClients(rng, 10, 0.01); len(got) != 1 {
		t.Fatal("must sample at least one client")
	}
	if got := SampleClients(rng, 5, 1.0); len(got) != 5 {
		t.Fatal("frac=1 must sample everyone")
	}
}

func TestHistoryHelpers(t *testing.T) {
	h := &History{}
	h.Append(RoundMetrics{Round: 1, TestAccuracy: 0.3, BytesUplinked: 100})
	h.Append(RoundMetrics{Round: 2, TestAccuracy: 0.8, BytesUplinked: 100})
	h.Append(RoundMetrics{Round: 3, TestAccuracy: 0.7, BytesUplinked: 100})
	if h.FinalAccuracy() != 0.7 || h.BestAccuracy() != 0.8 {
		t.Fatal("accuracy helpers wrong")
	}
	if h.RoundsToAccuracy(0.75) != 2 {
		t.Fatalf("RoundsToAccuracy = %d", h.RoundsToAccuracy(0.75))
	}
	if h.RoundsToAccuracy(0.95) != -1 {
		t.Fatal("unreachable target must return -1")
	}
	if h.TotalBytes() != 300 {
		t.Fatalf("TotalBytes = %d", h.TotalBytes())
	}
	if len(h.Accuracies()) != 3 || h.Accuracies()[0] != 0.3 {
		t.Fatal("Accuracies wrong")
	}
	empty := &History{}
	if empty.FinalAccuracy() != 0 || empty.BestAccuracy() != 0 {
		t.Fatal("empty history accuracy must be 0")
	}
}

// smallCNNSetup builds a tiny image dataset and partition for CNN FedAvg
// tests.
func smallCNNSetup(t *testing.T, numClients int) (*dataset.Dataset, *dataset.Dataset, dataset.Partition) {
	t.Helper()
	cfg := dataset.ImageConfig{
		Name: "tiny", Classes: 3, Channels: 1, Size: 8,
		TrainPerClass: 20, TestPerClass: 10,
		Noise: 0.3, Shift: 1, GainStd: 0.1, Seed: 99,
	}
	train, test := dataset.GenerateImages(cfg)
	part := dataset.PartitionIID(train.Len(), numClients, rand.New(rand.NewSource(1)))
	return train, test, part
}

func TestCNNFedAvgLearns(t *testing.T) {
	train, test, part := smallCNNSetup(t, 4)
	trainer := &CNNTrainer{
		Cfg: Config{NumClients: 4, ClientFraction: 0.5, LocalEpochs: 2, BatchSize: 10, Rounds: 8, Seed: 5},
		Build: func(rng *rand.Rand) Network {
			return nn.NewMNISTCNN(rng, nn.MNISTCNNConfig{
				InChannels: 1, ImgSize: 8, NumClasses: 3, C1: 4, C2: 8, Hidden: 16})
		},
		Train: train, Test: test, Part: part,
		LR: 0.05, Momentum: 0.9,
	}
	hist, net := trainer.Run()
	if len(hist.Rounds) != 8 {
		t.Fatalf("got %d rounds", len(hist.Rounds))
	}
	if acc := hist.FinalAccuracy(); acc < 0.6 {
		t.Fatalf("FedAvg failed to learn: accuracy %v", acc)
	}
	if got := EvalNetwork(net, test, 16); math.Abs(got-hist.FinalAccuracy()) > 1e-9 {
		t.Fatal("returned network must match final accuracy")
	}
	if hist.Rounds[0].BytesUplinked <= 0 {
		t.Fatal("bytes accounting missing")
	}
}

func TestCNNFedAvgDeterministic(t *testing.T) {
	train, test, part := smallCNNSetup(t, 4)
	build := func(rng *rand.Rand) Network {
		return nn.NewMNISTCNN(rng, nn.MNISTCNNConfig{
			InChannels: 1, ImgSize: 8, NumClasses: 3, C1: 2, C2: 4, Hidden: 8})
	}
	run := func() []float64 {
		tr := &CNNTrainer{
			Cfg:   Config{NumClients: 4, ClientFraction: 0.5, LocalEpochs: 1, BatchSize: 10, Rounds: 3, Seed: 7},
			Build: build, Train: train, Test: test, Part: part, LR: 0.05, Momentum: 0.9,
		}
		h, _ := tr.Run()
		return h.Accuracies()
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce the same run")
		}
	}
}

func TestCNNFedAvgPacketLossHurts(t *testing.T) {
	train, test, part := smallCNNSetup(t, 4)
	build := func(rng *rand.Rand) Network {
		return nn.NewMNISTCNN(rng, nn.MNISTCNNConfig{
			InChannels: 1, ImgSize: 8, NumClasses: 3, C1: 4, C2: 8, Hidden: 16})
	}
	clean := &CNNTrainer{
		Cfg:   Config{NumClients: 4, ClientFraction: 0.5, LocalEpochs: 2, BatchSize: 10, Rounds: 8, Seed: 5},
		Build: build, Train: train, Test: test, Part: part, LR: 0.05, Momentum: 0.9,
	}
	lossy := &CNNTrainer{
		Cfg: Config{NumClients: 4, ClientFraction: 0.5, LocalEpochs: 2, BatchSize: 10, Rounds: 8, Seed: 5,
			Uplink: channel.PacketLoss{Rate: 0.5, PacketBytes: 64}},
		Build: build, Train: train, Test: test, Part: part, LR: 0.05, Momentum: 0.9,
	}
	hClean, _ := clean.Run()
	hLossy, _ := lossy.Run()
	if hLossy.FinalAccuracy() >= hClean.FinalAccuracy() {
		t.Fatalf("50%% packet loss should hurt the CNN: clean %v vs lossy %v",
			hClean.FinalAccuracy(), hLossy.FinalAccuracy())
	}
}

// hdSetup encodes a Gaussian-cluster dataset for HD federated tests.
func hdSetup(t *testing.T, numClients int, seed int64) *HDTrainer {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	train := dataset.GenerateVectors(dataset.VectorConfig{
		Name: "v", Classes: 5, Features: 16, PerClass: 40, ClassStd: 2, SampleStd: 1.0, Seed: seed})
	test := dataset.GenerateVectors(dataset.VectorConfig{
		Name: "v", Classes: 5, Features: 16, PerClass: 10, ClassStd: 2, SampleStd: 1.0, Seed: seed})
	enc := hdc.NewEncoder(rng, 1024, 16)
	part := dataset.PartitionIID(train.Len(), numClients, rng)
	return &HDTrainer{
		Cfg:        Config{NumClients: numClients, ClientFraction: 0.5, LocalEpochs: 2, BatchSize: 10, Rounds: 6, Seed: seed},
		Encoded:    enc.EncodeBatch(train.X),
		Labels:     train.Labels,
		TestEnc:    enc.EncodeBatch(test.X),
		TestLabels: test.Labels,
		NumClasses: 5,
		Part:       part,
	}
}

// Same class means for train/test: regenerate with the same seed so means
// match; GenerateVectors derives means from the seed.
func TestHDFederatedLearnsFast(t *testing.T) {
	tr := hdSetup(t, 5, 42)
	hist, model := tr.Run()
	if len(hist.Rounds) != 6 {
		t.Fatalf("rounds = %d", len(hist.Rounds))
	}
	// HD one-shot bundling should reach high accuracy in very few rounds.
	if hist.Rounds[0].TestAccuracy < 0.7 {
		t.Fatalf("HD round-1 accuracy %v, want fast convergence", hist.Rounds[0].TestAccuracy)
	}
	if model == nil || model.K != 5 {
		t.Fatal("missing final model")
	}
}

func TestHDFederatedRobustToPacketLoss(t *testing.T) {
	clean := hdSetup(t, 5, 43)
	lossy := hdSetup(t, 5, 43)
	lossy.Cfg.Uplink = channel.PacketLoss{Rate: 0.3, PacketBytes: 256}
	hClean, _ := clean.Run()
	hLossy, _ := lossy.Run()
	if hLossy.FinalAccuracy() < hClean.FinalAccuracy()-0.1 {
		t.Fatalf("HD should tolerate 30%% packet loss: clean %v vs lossy %v",
			hClean.FinalAccuracy(), hLossy.FinalAccuracy())
	}
}

func TestHDFederatedDeterministic(t *testing.T) {
	a, _ := hdSetup(t, 5, 44).Run()
	b, _ := hdSetup(t, 5, 44).Run()
	accA, accB := a.Accuracies(), b.Accuracies()
	for i := range accA {
		if accA[i] != accB[i] {
			t.Fatal("HD runs must be reproducible")
		}
	}
}

func TestHDFederatedBytesAccounting(t *testing.T) {
	tr := hdSetup(t, 5, 45)
	hist, model := tr.Run()
	perClient := int64(model.NumParams() * 4)
	for _, r := range hist.Rounds {
		if r.BytesUplinked != perClient*int64(r.Participants) {
			t.Fatalf("round %d: bytes %d, want %d x %d", r.Round, r.BytesUplinked, perClient, r.Participants)
		}
	}
}

func TestEvalEverySkipsEvaluations(t *testing.T) {
	tr := hdSetup(t, 5, 46)
	tr.EvalEvery = 3
	hist, _ := tr.Run()
	// rounds 1,2 copy the previous accuracy (0 for round 1 — no earlier value)
	if hist.Rounds[0].TestAccuracy != 0 {
		t.Fatalf("round 1 should be unevaluated, got %v", hist.Rounds[0].TestAccuracy)
	}
	if hist.Rounds[2].TestAccuracy == 0 {
		t.Fatal("round 3 should be evaluated")
	}
	if hist.Rounds[len(hist.Rounds)-1].TestAccuracy == 0 {
		t.Fatal("final round must always be evaluated")
	}
}

func TestHDNonIIDStillLearns(t *testing.T) {
	tr := hdSetup(t, 10, 47)
	// overwrite the partition with a pathological shard split
	rng := rand.New(rand.NewSource(48))
	tr.Part = dataset.PartitionShards(tr.Labels, 10, 2, rng)
	tr.Cfg.Rounds = 10
	hist, _ := tr.Run()
	if hist.BestAccuracy() < 0.6 {
		t.Fatalf("non-IID HD accuracy %v too low", hist.BestAccuracy())
	}
}

func TestEvalNetworkEmptyDataset(t *testing.T) {
	empty := &dataset.Dataset{Name: "e", X: tensor.New(0, 1), Labels: nil, NumClasses: 2}
	if EvalNetwork(nil, empty, 4) != 0 {
		t.Fatal("empty dataset accuracy must be 0")
	}
}
