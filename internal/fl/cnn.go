package fl

import (
	"math/rand"
	"sync"

	"fhdnn/internal/dataset"
	"fhdnn/internal/nn"
	"fhdnn/internal/tensor"
)

// Network is any CNN trainable by FedAvg; both *nn.Sequential and
// *nn.ResNet satisfy it.
type Network interface {
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	Backward(grad *tensor.Tensor) *tensor.Tensor
	Params() []*nn.Param
}

// CNNTrainer runs FedAvg (McMahan et al.) over a CNN: each round the
// sampled clients copy the global weights, run E local epochs of SGD, and
// upload their weights through the (possibly lossy) uplink; the server
// averages the received weights, weighted by local dataset size.
//
// Clients are simulated by Cfg.Workers() goroutines; each client's
// randomness is derived from (seed, round, id), so results do not depend
// on the worker count.
type CNNTrainer struct {
	Cfg   Config
	Build func(rng *rand.Rand) Network // architecture factory
	Train *dataset.Dataset
	Test  *dataset.Dataset
	Part  dataset.Partition

	LR       float64
	Momentum float64

	// EvalEvery controls how often test accuracy is measured (every round
	// if <= 1). Evaluation dominates runtime for big test sets.
	EvalEvery int
	// BytesPerParam models the wire format of one weight (4 for float32).
	BytesPerParam int
}

// cnnClientResult is one client's contribution to a round.
type cnnClientResult struct {
	weight   float64 // local dataset size
	loss     float64
	received []float32
	bytes    int64
}

// Run executes the configured number of rounds and returns the metric
// history together with the trained global network.
func (t *CNNTrainer) Run() (*History, Network) {
	if err := t.Cfg.Validate(); err != nil {
		panic(err)
	}
	if t.BytesPerParam == 0 {
		t.BytesPerParam = 4
	}
	if t.EvalEvery < 1 {
		t.EvalEvery = 1
	}
	sampleRNG := rand.New(rand.NewSource(t.Cfg.Seed))
	global := t.Build(rand.New(rand.NewSource(t.Cfg.Seed + 1)))
	globalFlat := nn.FlattenParams(global.Params())

	workers := t.Cfg.Workers()
	locals := make([]Network, workers)
	for w := range locals {
		// all workers share the same (irrelevant) init; weights are
		// overwritten from the global model before every client run
		locals[w] = t.Build(rand.New(rand.NewSource(t.Cfg.Seed + 1)))
	}

	hist := &History{}
	for round := 1; round <= t.Cfg.Rounds; round++ {
		ids := SampleClients(sampleRNG, t.Cfg.NumClients, t.Cfg.ClientFraction)
		results := make([]cnnClientResult, len(ids))

		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(local Network) {
				defer wg.Done()
				for ji := range jobs {
					id := ids[ji]
					idx := t.Part[id]
					if len(idx) == 0 {
						continue
					}
					crng := clientRNG(t.Cfg.Seed, round, id)
					nn.SetFlatParams(local.Params(), globalFlat)
					loss := t.trainClient(local, idx, crng)
					if t.Cfg.dropped(crng) {
						continue // update lost in transit
					}
					update := nn.FlattenParams(local.Params())
					results[ji] = cnnClientResult{
						weight:   float64(len(idx)),
						loss:     loss,
						received: t.Cfg.Uplink.Transmit(update, crng),
						bytes:    updateWireBytes(t.Cfg.Uplink, len(update), t.BytesPerParam),
					}
				}
			}(locals[w])
		}
		for ji := range ids {
			jobs <- ji
		}
		close(jobs)
		wg.Wait()

		// Aggregate in client order for determinism.
		sumFlat := make([]float64, len(globalFlat))
		var totalW, lossSum float64
		var bytes int64
		participants := 0
		for _, r := range results {
			if r.received == nil {
				continue
			}
			for i, v := range r.received {
				sumFlat[i] += r.weight * float64(v)
			}
			totalW += r.weight
			lossSum += r.loss
			bytes += r.bytes
			participants++
		}
		if totalW > 0 {
			inv := 1 / totalW
			for i := range globalFlat {
				globalFlat[i] = float32(sumFlat[i] * inv)
			}
		}
		nn.SetFlatParams(global.Params(), globalFlat)

		m := RoundMetrics{Round: round, Participants: participants, BytesUplinked: bytes}
		if participants > 0 {
			m.TrainLoss = lossSum / float64(participants)
		}
		if round%t.EvalEvery == 0 || round == t.Cfg.Rounds {
			m.TestAccuracy = EvalNetwork(global, t.Test, 64)
		} else if len(hist.Rounds) > 0 {
			m.TestAccuracy = hist.Rounds[len(hist.Rounds)-1].TestAccuracy
		}
		hist.Append(m)
	}
	return hist, global
}

// trainClient runs E epochs of minibatch SGD on one client's shard and
// returns the mean loss of the final epoch.
func (t *CNNTrainer) trainClient(net Network, idx []int, rng *rand.Rand) float64 {
	opt := nn.NewSGD(t.LR, t.Momentum, 0)
	var lastLoss float64
	for epoch := 0; epoch < t.Cfg.LocalEpochs; epoch++ {
		perm := make([]int, len(idx))
		for i, p := range rng.Perm(len(idx)) {
			perm[i] = idx[p]
		}
		var epochLoss float64
		batches := dataset.Batches(len(perm), t.Cfg.BatchSize, perm)
		for _, b := range batches {
			x, labels := t.Train.Gather(b)
			nn.ZeroGrad(net.Params())
			logits := net.Forward(x, true)
			loss, grad := nn.CrossEntropy(logits, labels)
			net.Backward(grad)
			opt.Step(net.Params())
			epochLoss += loss
		}
		lastLoss = epochLoss / float64(len(batches))
	}
	return lastLoss
}

// EvalNetwork measures classification accuracy of net on ds using the given
// evaluation batch size.
func EvalNetwork(net Network, ds *dataset.Dataset, batch int) float64 {
	if ds.Len() == 0 {
		return 0
	}
	correct := 0
	for _, b := range dataset.Batches(ds.Len(), batch, nil) {
		x, labels := ds.Gather(b)
		logits := net.Forward(x, false)
		k := logits.Dim(1)
		for s := range b {
			row := logits.Data()[s*k : (s+1)*k]
			best, bi := row[0], 0
			for i, v := range row[1:] {
				if v > best {
					best, bi = v, i+1
				}
			}
			if bi == labels[s] {
				correct++
			}
		}
	}
	return float64(correct) / float64(ds.Len())
}
