package fl

import (
	"math/rand"

	"fhdnn/internal/dataset"
	"fhdnn/internal/fedcore"
	"fhdnn/internal/nn"
	"fhdnn/internal/tensor"
)

// Network is any CNN trainable by FedAvg; both *nn.Sequential and
// *nn.ResNet satisfy it.
type Network interface {
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	Backward(grad *tensor.Tensor) *tensor.Tensor
	Params() []*nn.Param
}

// CNNTrainer runs FedAvg (McMahan et al.) over a CNN: each round the
// sampled clients copy the global weights, run E local epochs of SGD, and
// upload their weights through the (possibly lossy) uplink; the server
// averages the received weights, weighted by local dataset size
// (fedcore.FedAvg).
//
// The round loop is fedcore.Engine; this type supplies the SGD local
// update and keeps one model replica per worker. Each client's randomness
// is derived from (seed, round, id), so results do not depend on the
// worker count.
type CNNTrainer struct {
	Cfg   Config
	Build func(rng *rand.Rand) Network // architecture factory
	Train *dataset.Dataset
	Test  *dataset.Dataset
	Part  dataset.Partition

	LR       float64
	Momentum float64

	// EvalEvery controls how often test accuracy is measured (every round
	// if <= 1). Evaluation dominates runtime for big test sets.
	EvalEvery int
	// BytesPerParam models the wire format of one weight (4 for float32).
	BytesPerParam int
}

// Run executes the configured number of rounds and returns the metric
// history together with the trained global network.
func (t *CNNTrainer) Run() (*History, Network) {
	if err := t.Cfg.Validate(); err != nil {
		panic(err)
	}
	if t.BytesPerParam == 0 {
		t.BytesPerParam = 4
	}
	global := t.Build(rand.New(rand.NewSource(t.Cfg.Seed + 1)))
	globalFlat := nn.FlattenParams(global.Params())

	locals := make([]Network, t.Cfg.Workers())
	for w := range locals {
		// all workers share the same (irrelevant) init; weights are
		// overwritten from the global model before every client run
		locals[w] = t.Build(rand.New(rand.NewSource(t.Cfg.Seed + 1)))
	}

	hist := &History{}
	eng := &fedcore.Engine{
		Clients:       t.Cfg.NumClients,
		Fraction:      t.Cfg.ClientFraction,
		Rounds:        t.Cfg.Rounds,
		Seed:          t.Cfg.Seed,
		Parallel:      t.Cfg.Parallel,
		DropoutProb:   t.Cfg.DropoutProb,
		Uplink:        t.Cfg.Uplink,
		BytesPerParam: t.BytesPerParam,
		EvalEvery:     t.EvalEvery,
		SampleRNG:     rand.New(rand.NewSource(t.Cfg.Seed)),
		Agg:           &fedcore.FedAvg{},
		Global:        globalFlat,
		Train: func(worker, _, id int, rng *rand.Rand) (fedcore.Update, bool) {
			idx := t.Part[id]
			if len(idx) == 0 {
				return fedcore.Update{}, false
			}
			local := locals[worker]
			nn.SetFlatParams(local.Params(), globalFlat)
			loss := t.trainClient(local, idx, rng)
			return fedcore.Update{
				Params:  nn.FlattenParams(local.Params()),
				Samples: len(idx),
				Loss:    loss,
			}, true
		},
		AfterCommit: func(int) { nn.SetFlatParams(global.Params(), globalFlat) },
		Evaluate:    func() float64 { return EvalNetwork(global, t.Test, 64) },
		OnRound: func(st fedcore.RoundStats) {
			hist.Append(RoundMetrics{
				Round:         st.Round,
				TestAccuracy:  st.TestAccuracy,
				TrainLoss:     st.MeanLoss,
				Participants:  st.Participants,
				BytesUplinked: st.Bytes,
			})
		},
	}
	eng.Run()
	return hist, global
}

// trainClient runs E epochs of minibatch SGD on one client's shard and
// returns the mean loss of the final epoch.
func (t *CNNTrainer) trainClient(net Network, idx []int, rng *rand.Rand) float64 {
	opt := nn.NewSGD(t.LR, t.Momentum, 0)
	var lastLoss float64
	for epoch := 0; epoch < t.Cfg.LocalEpochs; epoch++ {
		perm := make([]int, len(idx))
		for i, p := range rng.Perm(len(idx)) {
			perm[i] = idx[p]
		}
		var epochLoss float64
		batches := dataset.Batches(len(perm), t.Cfg.BatchSize, perm)
		for _, b := range batches {
			x, labels := t.Train.Gather(b)
			nn.ZeroGrad(net.Params())
			logits := net.Forward(x, true)
			loss, grad := nn.CrossEntropy(logits, labels)
			net.Backward(grad)
			opt.Step(net.Params())
			epochLoss += loss
		}
		lastLoss = epochLoss / float64(len(batches))
	}
	return lastLoss
}

// EvalNetwork measures classification accuracy of net on ds using the given
// evaluation batch size.
func EvalNetwork(net Network, ds *dataset.Dataset, batch int) float64 {
	if ds.Len() == 0 {
		return 0
	}
	correct := 0
	for _, b := range dataset.Batches(ds.Len(), batch, nil) {
		x, labels := ds.Gather(b)
		logits := net.Forward(x, false)
		k := logits.Dim(1)
		for s := range b {
			row := logits.Data()[s*k : (s+1)*k]
			best, bi := row[0], 0
			for i, v := range row[1:] {
				if v > best {
					best, bi = v, i+1
				}
			}
			if bi == labels[s] {
				correct++
			}
		}
	}
	return float64(correct) / float64(ds.Len())
}
