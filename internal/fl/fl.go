// Package fl is the federated learning framework: round orchestration with
// partial client participation, FedAvg over CNN weights (the paper's
// baseline) and federated bundling over HD class prototypes (the paper's
// Eq. 1), with every client upload passed through a configurable unreliable
// uplink channel.
package fl

import (
	"fmt"
	"math/rand"

	"fhdnn/internal/channel"
	"fhdnn/internal/fedcore"
)

// Config holds the federated hyperparameters common to both trainers,
// using the paper's notation: C is the fraction of clients sampled each
// round, E the number of local epochs, B the local batch size.
type Config struct {
	NumClients     int
	ClientFraction float64 // C
	LocalEpochs    int     // E
	BatchSize      int     // B
	Rounds         int
	Seed           int64
	// Uplink corrupts each client's transmitted update; nil means perfect.
	Uplink channel.Channel
	// Parallel is the number of worker goroutines simulating clients
	// concurrently (<= 1 means sequential). Results are bit-identical
	// regardless of worker count: every client derives its randomness
	// from (Seed, round, client id) and updates are aggregated in client
	// order.
	Parallel int
	// DropoutProb is the probability that a sampled client's update never
	// reaches the server at all (device crash, total link outage) — the
	// whole-update analogue of packet loss. The round proceeds with the
	// survivors.
	DropoutProb float64
}

// Workers returns the effective worker count.
func (c *Config) Workers() int {
	if c.Parallel < 1 {
		return 1
	}
	return c.Parallel
}

// WireSizer is optionally implemented by uplink channels whose on-the-wire
// representation differs from raw float32 (e.g. compressed updates); the
// trainers use it for traffic accounting when present. It is an alias for
// fedcore.WireSizer — the round engine owns the accounting rule.
type WireSizer = fedcore.WireSizer

// updateWireBytes returns the transmitted size of an n-value update over
// the given uplink at the given raw bytes-per-parameter. It delegates to
// fedcore so the simulator and the flnet wire share one sizing rule.
func updateWireBytes(uplink channel.Channel, n, bytesPerParam int) int64 {
	return fedcore.UpdateWireBytes(uplink, n, bytesPerParam)
}

// clientRNG derives the deterministic random stream for one client in one
// round (fedcore.ClientRNG; kept as a local name for the trainers).
func clientRNG(seed int64, round, id int) *rand.Rand {
	return fedcore.ClientRNG(seed, round, id)
}

// Validate checks the configuration and fills defaults.
func (c *Config) Validate() error {
	if c.NumClients <= 0 {
		return fmt.Errorf("fl: NumClients must be positive, got %d", c.NumClients)
	}
	if c.ClientFraction <= 0 || c.ClientFraction > 1 {
		return fmt.Errorf("fl: ClientFraction must be in (0,1], got %g", c.ClientFraction)
	}
	if c.LocalEpochs <= 0 {
		return fmt.Errorf("fl: LocalEpochs must be positive, got %d", c.LocalEpochs)
	}
	if c.BatchSize <= 0 {
		return fmt.Errorf("fl: BatchSize must be positive, got %d", c.BatchSize)
	}
	if c.Rounds <= 0 {
		return fmt.Errorf("fl: Rounds must be positive, got %d", c.Rounds)
	}
	if c.DropoutProb < 0 || c.DropoutProb >= 1 {
		return fmt.Errorf("fl: DropoutProb must be in [0,1), got %g", c.DropoutProb)
	}
	if c.Uplink == nil {
		c.Uplink = channel.Perfect{}
	}
	return nil
}

// SampleClients picks max(1, round(frac*n)) distinct client ids.
func SampleClients(rng *rand.Rand, n int, frac float64) []int {
	return fedcore.SampleClients(rng, n, frac)
}

// RoundMetrics records one communication round.
type RoundMetrics struct {
	Round         int
	TestAccuracy  float64
	TrainLoss     float64 // mean local loss of participants (CNN only)
	Participants  int
	BytesUplinked int64 // sum over participants this round
}

// History is the metric trace of a federated run.
type History struct {
	Rounds []RoundMetrics
}

// Append records one round.
func (h *History) Append(m RoundMetrics) { h.Rounds = append(h.Rounds, m) }

// FinalAccuracy returns the last round's test accuracy (0 if empty).
func (h *History) FinalAccuracy() float64 {
	if len(h.Rounds) == 0 {
		return 0
	}
	return h.Rounds[len(h.Rounds)-1].TestAccuracy
}

// BestAccuracy returns the maximum test accuracy across rounds.
func (h *History) BestAccuracy() float64 {
	best := 0.0
	for _, r := range h.Rounds {
		if r.TestAccuracy > best {
			best = r.TestAccuracy
		}
	}
	return best
}

// RoundsToAccuracy returns the 1-based round at which test accuracy first
// reached target, or -1 if it never did.
func (h *History) RoundsToAccuracy(target float64) int {
	for _, r := range h.Rounds {
		if r.TestAccuracy >= target {
			return r.Round
		}
	}
	return -1
}

// TotalBytes returns the cumulative uplink traffic of the run.
func (h *History) TotalBytes() int64 {
	var n int64
	for _, r := range h.Rounds {
		n += r.BytesUplinked
	}
	return n
}

// Accuracies returns the per-round accuracy series (for plotting/report
// code).
func (h *History) Accuracies() []float64 {
	out := make([]float64, len(h.Rounds))
	for i, r := range h.Rounds {
		out[i] = r.TestAccuracy
	}
	return out
}
