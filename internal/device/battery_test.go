package device

import (
	"testing"

	"fhdnn/internal/link"
)

func TestBatteryJoules(t *testing.T) {
	b := Battery{CapacityWh: 10}
	if b.Joules() != 36000 {
		t.Fatalf("Joules = %v", b.Joules())
	}
}

func TestRoundsOnCharge(t *testing.T) {
	b := Battery{CapacityWh: 1, IdlePowerW: 0} // 3600 J
	// 100 J per round, no idle, no radio
	if got := b.RoundsOnCharge(100, 10, 0, 0); got != 36 {
		t.Fatalf("rounds = %d, want 36", got)
	}
	// idle drain during the round reduces the count
	b.IdlePowerW = 1
	if got := b.RoundsOnCharge(100, 10, 0, 0); got != 32 { // 110 J/round
		t.Fatalf("rounds with idle = %d, want 32", got)
	}
}

func TestRoundsOnChargeValidation(t *testing.T) {
	b := Battery{CapacityWh: 1}
	for _, f := range []func(){
		func() { b.RoundsOnCharge(-1, 0, 0, 0) },
		func() { b.RoundsOnCharge(0, 0, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

// End-to-end energy advantage: per-round savings compound with the round
// advantage, reproducing the paper's "lowers client computation costs by
// 6x" framing at deployment level.
func TestEnergyToTargetCompounds(t *testing.T) {
	p := JetsonNano()
	ref := PaperReference()
	battery := Battery{CapacityWh: 50, IdlePowerW: 0.5}
	lte := link.PaperLTE()
	upFHD := link.UploadTime(400_000, lte.ErrorAdmittingRate).Seconds()
	upCNN := link.UploadTime(22_000_000, lte.ErrorFreeRate).Seconds()

	rows := EnergyToTarget(p, ref, battery, 25, 75, upFHD, upCNN, 2.0)
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	fhd, cnn := rows[0], rows[1]
	if fhd.Model != "FHDnn" || cnn.Model != "ResNet" {
		t.Fatal("row order")
	}
	ratio := cnn.TotalJ / fhd.TotalJ
	// Jetson per-round energy advantage ~5x, round advantage 3x, plus the
	// radio: expect >= 10x end to end.
	if ratio < 10 {
		t.Fatalf("end-to-end energy ratio %v, want >= 10", ratio)
	}
	if fhd.BatteryFrac >= cnn.BatteryFrac {
		t.Fatal("FHDnn must consume a smaller battery fraction")
	}
	if fhd.RoundsOnCell <= cnn.RoundsOnCell {
		t.Fatal("FHDnn must sustain more rounds per charge")
	}
}

func TestEnergyToTargetValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	EnergyToTarget(JetsonNano(), PaperReference(), Battery{CapacityWh: 1}, 0, 10, 1, 1, 1)
}

func TestCommonBatteries(t *testing.T) {
	bs := CommonBatteries()
	if len(bs) < 2 {
		t.Fatal("need reference batteries")
	}
	for name, b := range bs {
		if b.CapacityWh <= 0 {
			t.Fatalf("%s has no capacity", name)
		}
	}
}
