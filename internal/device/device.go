// Package device models edge-device compute time and energy for federated
// client workloads, reproducing Table 1 of the FHDnn paper. The original
// measurements were taken on a Raspberry Pi 3b and an NVIDIA Jetson; since
// that hardware is unavailable here, each device is an analytic model —
// effective training and inference throughputs plus power draw — calibrated
// once against the paper's measured numbers. The model's value is that it
// scales: changing local epochs, dataset size, architecture width, or HD
// dimensionality moves time and energy the way the real hardware would to
// first order.
package device

import (
	"fmt"

	"fhdnn/internal/nn"
)

// Profile is a calibrated edge-device model. Throughputs are "effective"
// (measured FLOPs per second on the respective workload class), which folds
// in memory traffic, framework overhead, and (for the Jetson) GPU batching
// efficiency.
type Profile struct {
	Name string
	// TrainGFLOPS is the sustained throughput on CNN training
	// (forward+backward+update).
	TrainGFLOPS float64
	// InferGFLOPS is the sustained throughput on inference-only work
	// (frozen feature extraction and HD arithmetic).
	InferGFLOPS float64
	// TrainPowerW / InferPowerW are the average power draws in each mode.
	TrainPowerW float64
	InferPowerW float64
}

// Workload is a client-side compute bill in FLOPs, split by mode.
type Workload struct {
	TrainFLOPs float64 // backprop-style work
	InferFLOPs float64 // forward-only + HD work
}

// Add returns the sum of two workloads.
func (w Workload) Add(o Workload) Workload {
	return Workload{TrainFLOPs: w.TrainFLOPs + o.TrainFLOPs, InferFLOPs: w.InferFLOPs + o.InferFLOPs}
}

// Time returns the modeled execution time in seconds.
func (p Profile) Time(w Workload) float64 {
	if p.TrainGFLOPS <= 0 || p.InferGFLOPS <= 0 {
		panic(fmt.Sprintf("device: profile %q not calibrated", p.Name))
	}
	return w.TrainFLOPs/(p.TrainGFLOPS*1e9) + w.InferFLOPs/(p.InferGFLOPS*1e9)
}

// Energy returns the modeled energy in joules.
func (p Profile) Energy(w Workload) float64 {
	tTrain := w.TrainFLOPs / (p.TrainGFLOPS * 1e9)
	tInfer := w.InferFLOPs / (p.InferGFLOPS * 1e9)
	return tTrain*p.TrainPowerW + tInfer*p.InferPowerW
}

// ---- FLOP accounting -------------------------------------------------

// ConvForwardFLOPs counts one convolution forward pass (2 FLOPs per MAC).
func ConvForwardFLOPs(inC, outC, outH, outW, k int) float64 {
	return 2 * float64(outC) * float64(outH) * float64(outW) * float64(inC) * float64(k) * float64(k)
}

// LinearForwardFLOPs counts one dense forward pass.
func LinearForwardFLOPs(in, out int) float64 { return 2 * float64(in) * float64(out) }

// BackwardFactor is the standard approximation that a training step costs
// ~3x a forward pass (forward + input gradient + weight gradient).
const BackwardFactor = 3.0

// ResNetForwardFLOPs walks the ResNet configuration and sums per-sample
// forward FLOPs for square inputs of the given size.
func ResNetForwardFLOPs(cfg nn.ResNetConfig, imgSize int) float64 {
	total := ConvForwardFLOPs(cfg.InChannels, cfg.BaseWidth, imgSize, imgSize, 3)
	inC := cfg.BaseWidth
	width := cfg.BaseWidth
	size := imgSize
	blocks := cfg.Blocks
	if len(blocks) == 0 {
		blocks = []int{2, 2, 2, 2}
	}
	for stage, nBlocks := range blocks {
		stride := 2
		if stage == 0 {
			stride = 1
		}
		for b := 0; b < nBlocks; b++ {
			s := 1
			if b == 0 {
				s = stride
			}
			outSize := size / s
			total += ConvForwardFLOPs(inC, width, outSize, outSize, 3)
			total += ConvForwardFLOPs(width, width, outSize, outSize, 3)
			if s != 1 || inC != width {
				total += ConvForwardFLOPs(inC, width, outSize, outSize, 1)
			}
			inC = width
			size = outSize
		}
		width *= 2
	}
	total += LinearForwardFLOPs(inC, cfg.NumClasses)
	return total
}

// MNISTCNNForwardFLOPs sums per-sample forward FLOPs of the paper's MNIST
// baseline.
func MNISTCNNForwardFLOPs(cfg nn.MNISTCNNConfig) float64 {
	s := cfg.ImgSize
	total := ConvForwardFLOPs(cfg.InChannels, cfg.C1, s, s, 3)
	s /= 2
	total += ConvForwardFLOPs(cfg.C1, cfg.C2, s, s, 3)
	s /= 2
	total += LinearForwardFLOPs(cfg.C2*s*s, cfg.Hidden)
	total += LinearForwardFLOPs(cfg.Hidden, cfg.NumClasses)
	return total
}

// HDEncodeFLOPs counts one random-projection encoding (d x n matrix-vector
// product).
func HDEncodeFLOPs(d, n int) float64 { return 2 * float64(d) * float64(n) }

// HDTrainFLOPs counts one-shot bundling plus refine epochs for `samples`
// examples over k classes: each refine epoch computes k cosine
// similarities per sample and possibly two prototype updates.
func HDTrainFLOPs(d, k, samples, refineEpochs int) float64 {
	bundle := float64(samples) * float64(d)
	perEpoch := float64(samples) * (2*float64(k)*float64(d) + 2*float64(d))
	return bundle + float64(refineEpochs)*perEpoch
}

// ---- Client workload bills -------------------------------------------

// CNNClientWorkload bills one round of FedAvg local training: E epochs of
// forward+backward over the client's samples.
func CNNClientWorkload(forwardFLOPs float64, samples, epochs int) Workload {
	return Workload{TrainFLOPs: forwardFLOPs * BackwardFactor * float64(samples) * float64(epochs)}
}

// FHDnnClientWorkload bills one round of FHDnn local training: one frozen
// feature-extraction pass per sample (features are cached across epochs),
// HD encoding, and HD bundling/refinement.
func FHDnnClientWorkload(extractorForwardFLOPs float64, d, n, k, samples, refineEpochs int) Workload {
	infer := extractorForwardFLOPs*float64(samples) +
		HDEncodeFLOPs(d, n)*float64(samples) +
		HDTrainFLOPs(d, k, samples, refineEpochs)
	return Workload{InferFLOPs: infer}
}

// ---- Calibrated profiles ----------------------------------------------

// ReferenceWorkload is the Table 1 scenario used for calibration: one
// client's local training in the paper's CIFAR-10 setup — 500 local samples
// (50000 examples over 100 clients), E=2 local epochs, full-width ResNet-18
// on 32x32x3 inputs, HD dimension 10000.
type ReferenceWorkload struct {
	Samples      int
	Epochs       int
	ImgSize      int
	HDDim        int
	NumClasses   int
	FeatureDim   int
	ResNetConfig nn.ResNetConfig
}

// PaperReference returns the Table 1 calibration scenario.
func PaperReference() ReferenceWorkload {
	return ReferenceWorkload{
		Samples: 500, Epochs: 2, ImgSize: 32, HDDim: 10000,
		NumClasses: 10, FeatureDim: 512,
		ResNetConfig: nn.DefaultResNet18(3, 10),
	}
}

// CNNWorkload bills the reference CNN client round.
func (r ReferenceWorkload) CNNWorkload() Workload {
	fwd := ResNetForwardFLOPs(r.ResNetConfig, r.ImgSize)
	return CNNClientWorkload(fwd, r.Samples, r.Epochs)
}

// FHDnnWorkload bills the reference FHDnn client round.
func (r ReferenceWorkload) FHDnnWorkload() Workload {
	fwd := ResNetForwardFLOPs(r.ResNetConfig, r.ImgSize)
	return FHDnnClientWorkload(fwd, r.HDDim, r.FeatureDim, r.NumClasses, r.Samples, r.Epochs)
}

// Table1Measurement holds one row of the paper's Table 1.
type Table1Measurement struct {
	FHDnnSec, ResNetSec       float64
	FHDnnJoules, ResNetJoules float64
}

// PaperTable1 returns the measured values from the paper.
func PaperTable1() map[string]Table1Measurement {
	return map[string]Table1Measurement{
		"Raspberry Pi":  {FHDnnSec: 858.72, ResNetSec: 1328.04, FHDnnJoules: 4418.4, ResNetJoules: 6742.8},
		"Nvidia Jetson": {FHDnnSec: 15.96, ResNetSec: 90.55, FHDnnJoules: 96.17, ResNetJoules: 497.572},
	}
}

// CalibrateProfile fits a Profile so that the reference workloads reproduce
// a Table 1 row exactly.
func CalibrateProfile(name string, ref ReferenceWorkload, m Table1Measurement) Profile {
	cnn := ref.CNNWorkload()
	fhd := ref.FHDnnWorkload()
	return Profile{
		Name:        name,
		TrainGFLOPS: cnn.TrainFLOPs / m.ResNetSec / 1e9,
		InferGFLOPS: fhd.InferFLOPs / m.FHDnnSec / 1e9,
		TrainPowerW: m.ResNetJoules / m.ResNetSec,
		InferPowerW: m.FHDnnJoules / m.FHDnnSec,
	}
}

// RaspberryPi3 returns the calibrated Raspberry Pi Model 3b profile.
func RaspberryPi3() Profile {
	return CalibrateProfile("Raspberry Pi", PaperReference(), PaperTable1()["Raspberry Pi"])
}

// JetsonNano returns the calibrated NVIDIA Jetson profile.
func JetsonNano() Profile {
	return CalibrateProfile("Nvidia Jetson", PaperReference(), PaperTable1()["Nvidia Jetson"])
}
