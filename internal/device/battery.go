package device

import "fmt"

// Battery models the energy reservoir of a battery-operated edge device —
// the constraint that motivates the whole paper (Sec. 1: "battery operated
// edge devices", Sec. 2.2: "limited power and computation budgets"). It
// converts the Table 1 per-round energies into deployment-level questions:
// how many federated rounds does one charge allow, and does the device
// survive the whole training run?
type Battery struct {
	// CapacityWh is the usable battery capacity in watt-hours.
	CapacityWh float64
	// IdlePowerW drains continuously, independent of training.
	IdlePowerW float64
}

// Joules returns the capacity in joules.
func (b Battery) Joules() float64 { return b.CapacityWh * 3600 }

// CommonBatteries, for context: a phone-class 10 Wh pack and a small
// 3.7 V / 2 Ah IoT cell (~7.4 Wh).
func CommonBatteries() map[string]Battery {
	return map[string]Battery{
		"IoT 2Ah cell": {CapacityWh: 7.4, IdlePowerW: 0.3},
		"10Wh pack":    {CapacityWh: 10, IdlePowerW: 0.5},
	}
}

// RoundsOnCharge returns how many federated rounds the battery sustains,
// given the per-round training energy and duration on this device plus the
// per-round uplink airtime at the given radio power. Returns 0 if even one
// round does not fit.
func (b Battery) RoundsOnCharge(roundEnergyJ, roundSec, uplinkSec, radioPowerW float64) int {
	if roundEnergyJ < 0 || roundSec < 0 || uplinkSec < 0 {
		panic("device: negative round cost")
	}
	perRound := roundEnergyJ + b.IdlePowerW*roundSec + (radioPowerW+b.IdlePowerW)*uplinkSec
	if perRound <= 0 {
		panic("device: round consumes no energy")
	}
	return int(b.Joules() / perRound)
}

// TrainingEnergyRow is one line of the energy-to-target comparison: what a
// full federated training run costs one client end to end.
type TrainingEnergyRow struct {
	Model        string
	Rounds       int
	PerRoundJ    float64
	TotalJ       float64
	BatteryFrac  float64 // fraction of the battery consumed
	RoundsOnCell int     // rounds a full charge would sustain
}

// EnergyToTarget combines a device profile, per-round workloads, and the
// measured rounds-to-convergence of each model into the number that
// matters in the field: joules (and battery fraction) to reach target
// accuracy. The paper's per-round advantage (1.5-6x) compounds with the
// ~3x round advantage into roughly an order of magnitude end to end.
func EnergyToTarget(p Profile, ref ReferenceWorkload, battery Battery,
	fhdnnRounds, cnnRounds int, uplinkSecFHDnn, uplinkSecCNN, radioPowerW float64) []TrainingEnergyRow {
	if fhdnnRounds <= 0 || cnnRounds <= 0 {
		panic(fmt.Sprintf("device: rounds must be positive, got %d/%d", fhdnnRounds, cnnRounds))
	}
	rows := make([]TrainingEnergyRow, 0, 2)
	add := func(model string, w Workload, rounds int, uplinkSec float64) {
		perRound := p.Energy(w) + radioPowerW*uplinkSec
		total := perRound * float64(rounds)
		rows = append(rows, TrainingEnergyRow{
			Model:        model,
			Rounds:       rounds,
			PerRoundJ:    perRound,
			TotalJ:       total,
			BatteryFrac:  total / battery.Joules(),
			RoundsOnCell: battery.RoundsOnCharge(p.Energy(w), p.Time(w), uplinkSec, radioPowerW),
		})
	}
	add("FHDnn", ref.FHDnnWorkload(), fhdnnRounds, uplinkSecFHDnn)
	add("ResNet", ref.CNNWorkload(), cnnRounds, uplinkSecCNN)
	return rows
}
