package device

import (
	"math"
	"testing"

	"fhdnn/internal/nn"
)

func TestConvForwardFLOPs(t *testing.T) {
	// 2 * outC*outH*outW * inC*k^2
	got := ConvForwardFLOPs(3, 8, 4, 4, 3)
	want := 2.0 * 8 * 4 * 4 * 3 * 9
	if got != want {
		t.Fatalf("ConvForwardFLOPs = %v, want %v", got, want)
	}
}

func TestLinearForwardFLOPs(t *testing.T) {
	if got := LinearForwardFLOPs(512, 10); got != 10240 {
		t.Fatalf("LinearForwardFLOPs = %v", got)
	}
}

func TestResNet18FLOPsMatchLiterature(t *testing.T) {
	// CIFAR ResNet-18 is commonly quoted at ~0.56 GMACs = ~1.1 GFLOPs
	// per forward pass at 32x32.
	got := ResNetForwardFLOPs(nn.DefaultResNet18(3, 10), 32)
	if got < 1.0e9 || got > 1.3e9 {
		t.Fatalf("ResNet-18 forward FLOPs = %.3g, want ~1.1e9", got)
	}
}

func TestResNetFLOPsScaleWithWidth(t *testing.T) {
	full := ResNetForwardFLOPs(nn.DefaultResNet18(3, 10), 32)
	tiny := ResNetForwardFLOPs(nn.TinyResNet18(3, 10), 32)
	// FLOPs scale ~quadratically with width (64 -> 8 is 8x narrower).
	ratio := full / tiny
	if ratio < 30 || ratio > 90 {
		t.Fatalf("width scaling ratio %v, want ~64", ratio)
	}
}

func TestMNISTCNNFLOPs(t *testing.T) {
	got := MNISTCNNForwardFLOPs(nn.DefaultMNISTCNN())
	if got <= 0 {
		t.Fatal("MNIST CNN FLOPs must be positive")
	}
	// must be far smaller than ResNet-18
	if got > ResNetForwardFLOPs(nn.DefaultResNet18(3, 10), 32) {
		t.Fatal("MNIST CNN cannot cost more than ResNet-18")
	}
}

func TestHDFLOPs(t *testing.T) {
	if got := HDEncodeFLOPs(10000, 512); got != 2*10000*512 {
		t.Fatalf("HDEncodeFLOPs = %v", got)
	}
	tr := HDTrainFLOPs(1000, 10, 100, 2)
	if tr <= 0 {
		t.Fatal("HDTrainFLOPs must be positive")
	}
	// more refine epochs cost more
	if HDTrainFLOPs(1000, 10, 100, 4) <= tr {
		t.Fatal("refine epochs must increase cost")
	}
}

func TestWorkloadBills(t *testing.T) {
	cnn := CNNClientWorkload(1e9, 500, 2)
	if cnn.TrainFLOPs != 3e12 || cnn.InferFLOPs != 0 {
		t.Fatalf("CNN workload = %+v", cnn)
	}
	fhd := FHDnnClientWorkload(1e9, 10000, 512, 10, 500, 2)
	if fhd.TrainFLOPs != 0 || fhd.InferFLOPs <= 500e9 {
		t.Fatalf("FHDnn workload = %+v", fhd)
	}
	sum := cnn.Add(fhd)
	if sum.TrainFLOPs != cnn.TrainFLOPs || sum.InferFLOPs != fhd.InferFLOPs {
		t.Fatal("Add wrong")
	}
}

// The calibration must reproduce Table 1 exactly by construction.
func TestCalibrationReproducesTable1(t *testing.T) {
	ref := PaperReference()
	for name, m := range PaperTable1() {
		p := CalibrateProfile(name, ref, m)
		cnnTime := p.Time(ref.CNNWorkload())
		fhdTime := p.Time(ref.FHDnnWorkload())
		if math.Abs(cnnTime-m.ResNetSec) > 1e-6*m.ResNetSec {
			t.Fatalf("%s: CNN time %v, want %v", name, cnnTime, m.ResNetSec)
		}
		if math.Abs(fhdTime-m.FHDnnSec) > 1e-6*m.FHDnnSec {
			t.Fatalf("%s: FHDnn time %v, want %v", name, fhdTime, m.FHDnnSec)
		}
		cnnE := p.Energy(ref.CNNWorkload())
		fhdE := p.Energy(ref.FHDnnWorkload())
		if math.Abs(cnnE-m.ResNetJoules) > 1e-6*m.ResNetJoules {
			t.Fatalf("%s: CNN energy %v, want %v", name, cnnE, m.ResNetJoules)
		}
		if math.Abs(fhdE-m.FHDnnJoules) > 1e-6*m.FHDnnJoules {
			t.Fatalf("%s: FHDnn energy %v, want %v", name, fhdE, m.FHDnnJoules)
		}
	}
}

func TestCalibratedProfilesArePlausible(t *testing.T) {
	rpi := RaspberryPi3()
	jetson := JetsonNano()
	// The Jetson must be much faster than the Pi in both modes.
	if jetson.TrainGFLOPS <= rpi.TrainGFLOPS || jetson.InferGFLOPS <= rpi.InferGFLOPS {
		t.Fatalf("Jetson should outpace the Pi: %+v vs %+v", jetson, rpi)
	}
	// Power draws should be single-digit watts for both boards.
	for _, p := range []Profile{rpi, jetson} {
		for _, w := range []float64{p.TrainPowerW, p.InferPowerW} {
			if w < 1 || w > 20 {
				t.Fatalf("%s power %v W implausible", p.Name, w)
			}
		}
	}
}

// Scaling property: doubling local epochs roughly doubles CNN time but
// increases FHDnn time only mildly (features are cached; only refinement
// repeats). This is the Table 1 mechanism.
func TestEpochScalingAsymmetry(t *testing.T) {
	ref := PaperReference()
	p := JetsonNano()

	cnn1 := ref.CNNWorkload()
	ref2 := ref
	ref2.Epochs = 4
	cnn2 := ref2.CNNWorkload()
	if r := p.Time(cnn2) / p.Time(cnn1); math.Abs(r-2) > 1e-9 {
		t.Fatalf("CNN epoch scaling = %v, want 2", r)
	}

	fhd1 := ref.FHDnnWorkload()
	fhd2 := ref2.FHDnnWorkload()
	r := p.Time(fhd2) / p.Time(fhd1)
	if r > 1.5 {
		t.Fatalf("FHDnn epoch scaling = %v, want close to 1 (cached features)", r)
	}
}

func TestUncalibratedProfilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Profile{Name: "empty"}.Time(Workload{TrainFLOPs: 1})
}
